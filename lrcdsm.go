// Package lrcdsm is a release-consistent software distributed shared
// memory (DSM) simulator reproducing Dwarkadas, Keleher, Cox and
// Zwaenepoel, "Evaluation of Release Consistent Software Distributed
// Shared Memory on Emerging Network Technology" (ISCA 1993).
//
// It provides an execution-driven simulation of a page-based
// multiple-writer DSM under five protocols — eager invalidate (EI), eager
// update (EU), lazy invalidate (LI), lazy update (LU), and the paper's new
// lazy hybrid (LH) — over models of a 10 Mbit/s Ethernet and ATM crossbar
// networks, with the paper's software-overhead and diff cost model.
//
// A minimal program:
//
//	cfg := lrcdsm.DefaultConfig()
//	cfg.Protocol = lrcdsm.LH
//	cfg.Procs = 4
//	sys, _ := lrcdsm.NewSystem(cfg)
//	counter := sys.Alloc(8)
//	lock := sys.NewLock()
//	stats, _ := sys.Run(func(p *lrcdsm.Proc) {
//		for i := 0; i < 100; i++ {
//			p.Lock(lock)
//			p.WriteI64(counter, p.ReadI64(counter)+1)
//			p.Unlock(lock)
//			p.Compute(5000)
//		}
//	})
//	fmt.Println(stats, sys.PeekI64(counter))
//
// Shared memory is allocated before Run with Alloc/AllocPage and
// initialized with InitF64/InitI64; workers access it through the typed
// Read/Write methods on Proc and synchronize with Lock/Unlock/Barrier.
// PeekF64/PeekI64 read the authoritative final memory image after the run.
package lrcdsm

import (
	"lrcdsm/internal/core"
	"lrcdsm/internal/network"
	"lrcdsm/internal/page"
	"lrcdsm/internal/trace"
	"lrcdsm/internal/vc"
)

// Core simulation types, re-exported from the implementation.
type (
	// Config describes one simulated DSM system.
	Config = core.Config
	// Protocol selects one of the five release-consistency protocols.
	Protocol = core.Protocol
	// System is one simulated DSM machine.
	System = core.System
	// Proc is a simulated processor; application workers receive one.
	Proc = core.Proc
	// Addr is a byte address in the shared address space.
	Addr = core.Addr
	// RunStats aggregates everything measured during a run.
	RunStats = core.RunStats
	// NetworkParams configures the interconnect model.
	NetworkParams = network.Params
	// ProcStats is one processor's share of a run (time breakdown).
	ProcStats = core.ProcStats
	// TraceLog is the protocol event log (enable via Config.TraceCapacity;
	// read back with System.Trace after the run).
	TraceLog = trace.Log
	// TraceEvent is one recorded protocol event.
	TraceEvent = trace.Event

	// Observer receives protocol-level events as a run executes: set
	// Config.Observer to instrument interval closes, diff applications,
	// page-copy adoptions and barrier departures without importing the
	// internal packages.
	Observer = core.Observer
	// PageID identifies a shared page in Observer callbacks.
	PageID = page.ID
	// VC is the vector timestamp handed to Observer callbacks.
	VC = vc.VC
	// ResultRegion names a shared-memory range whose final contents are
	// schedule-independent, for cross-run memory comparison.
	ResultRegion = core.ResultRegion
)

// The five protocols, in the paper's presentation order.
const (
	LH = core.LH
	LI = core.LI
	LU = core.LU
	EI = core.EI
	EU = core.EU
)

// Protocols lists all five protocols.
var Protocols = core.Protocols

// NewSystem builds a DSM system from the configuration.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// DefaultConfig returns the paper's base configuration: 16 processors at
// 40 MHz, 4096-byte pages, 100 Mbit/s ATM, normal software overhead.
func DefaultConfig() Config { return core.DefaultConfig() }

// ParseProtocol converts a protocol name ("LH", "li", ...) to a Protocol.
func ParseProtocol(s string) (Protocol, error) { return core.ParseProtocol(s) }

// Ethernet10 returns the paper's 10 Mbit/s Ethernet model, with or without
// the collision/backoff penalty.
func Ethernet10(clockMHz float64, collisions bool) NetworkParams {
	return network.Ethernet10(clockMHz, collisions)
}

// ATMNet returns a crossbar ATM network of the given link bandwidth.
func ATMNet(bandwidthMbps, clockMHz float64) NetworkParams {
	return network.ATMNet(bandwidthMbps, clockMHz)
}

// IdealNet returns a contention-free network of the given bandwidth.
func IdealNet(bandwidthMbps, clockMHz float64) NetworkParams {
	return network.IdealNet(bandwidthMbps, clockMHz)
}
