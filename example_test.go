package lrcdsm_test

import (
	"fmt"

	"lrcdsm"
)

// A lock-protected shared counter on a 4-processor DSM under the lazy
// hybrid protocol: the canonical release-consistency pattern.
func Example() {
	cfg := lrcdsm.DefaultConfig()
	cfg.Protocol = lrcdsm.LH
	cfg.Procs = 4

	sys, err := lrcdsm.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	counter := sys.Alloc(8)
	lock := sys.NewLock()

	_, err = sys.Run(func(p *lrcdsm.Proc) {
		for i := 0; i < 100; i++ {
			p.Lock(lock)
			p.WriteI64(counter, p.ReadI64(counter)+1)
			p.Unlock(lock)
			p.Compute(5000)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(sys.PeekI64(counter))
	// Output: 400
}

// countingObserver tallies two protocol events; the remaining hooks are
// no-ops. Any type with the Observer methods can be attached via
// Config.Observer — no internal packages required.
type countingObserver struct {
	intervals, diffs int
}

func (o *countingObserver) TwinCreated(int, lrcdsm.PageID)                            {}
func (o *countingObserver) IntervalClosed(int, int32, lrcdsm.VC, []lrcdsm.PageID)     { o.intervals++ }
func (o *countingObserver) EagerFlushed(int, int32, []lrcdsm.PageID)                  {}
func (o *countingObserver) ClockAdvanced(int, lrcdsm.VC)                              {}
func (o *countingObserver) DiffApplied(int, lrcdsm.PageID, int, int32, lrcdsm.VC)     {}
func (o *countingObserver) CopyAdopted(proc int, pg lrcdsm.PageID, _ []int32, _ lrcdsm.VC) {
	o.diffs++
}
func (o *countingObserver) BarrierDeparted(int, int64, lrcdsm.VC) {}

// Instrumenting a run: an Observer receives protocol events as they
// happen, and a bounded trace log records them for post-run inspection.
func ExampleObserver() {
	cfg := lrcdsm.DefaultConfig()
	cfg.Protocol = lrcdsm.LI
	cfg.Procs = 2
	cfg.TraceCapacity = 4096
	obs := &countingObserver{}
	cfg.Observer = obs

	sys, err := lrcdsm.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	counter := sys.Alloc(8)
	lock := sys.NewLock()
	_, err = sys.Run(func(p *lrcdsm.Proc) {
		for i := 0; i < 10; i++ {
			p.Lock(lock)
			p.WriteI64(counter, p.ReadI64(counter)+1)
			p.Unlock(lock)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("intervals observed:", obs.intervals > 0)
	fmt.Println("copies adopted:", obs.diffs > 0)
	fmt.Println("trace captured events:", len(sys.Trace().Events()) > 0)
	// Output:
	// intervals observed: true
	// copies adopted: true
	// trace captured events: true
}

// Barrier-synchronized phases: processor 0's writes become visible to
// every processor after the barrier, under any of the five protocols.
func ExampleProc_Barrier() {
	cfg := lrcdsm.DefaultConfig()
	cfg.Protocol = lrcdsm.EI
	cfg.Procs = 3

	sys, err := lrcdsm.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	data := sys.AllocPage(8)
	bar := sys.NewBarrier()

	_, err = sys.Run(func(p *lrcdsm.Proc) {
		if p.ID() == 0 {
			p.WriteF64(data, 42)
		}
		p.Barrier(bar)
		if p.ReadF64(data) != 42 {
			panic("stale read after barrier")
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("all processors observed the write")
	// Output: all processors observed the write
}
