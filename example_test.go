package lrcdsm_test

import (
	"fmt"

	"lrcdsm"
)

// A lock-protected shared counter on a 4-processor DSM under the lazy
// hybrid protocol: the canonical release-consistency pattern.
func Example() {
	cfg := lrcdsm.DefaultConfig()
	cfg.Protocol = lrcdsm.LH
	cfg.Procs = 4

	sys, err := lrcdsm.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	counter := sys.Alloc(8)
	lock := sys.NewLock()

	_, err = sys.Run(func(p *lrcdsm.Proc) {
		for i := 0; i < 100; i++ {
			p.Lock(lock)
			p.WriteI64(counter, p.ReadI64(counter)+1)
			p.Unlock(lock)
			p.Compute(5000)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(sys.PeekI64(counter))
	// Output: 400
}

// Barrier-synchronized phases: processor 0's writes become visible to
// every processor after the barrier, under any of the five protocols.
func ExampleProc_Barrier() {
	cfg := lrcdsm.DefaultConfig()
	cfg.Protocol = lrcdsm.EI
	cfg.Procs = 3

	sys, err := lrcdsm.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	data := sys.AllocPage(8)
	bar := sys.NewBarrier()

	_, err = sys.Run(func(p *lrcdsm.Proc) {
		if p.ID() == 0 {
			p.WriteF64(data, 42)
		}
		p.Barrier(bar)
		if p.ReadF64(data) != 42 {
			panic("stale read after barrier")
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("all processors observed the write")
	// Output: all processors observed the write
}
