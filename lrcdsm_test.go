package lrcdsm_test

import (
	"strings"
	"testing"

	"lrcdsm"
)

// TestFacadeCounter exercises the whole public API surface end to end:
// config, system construction, allocation, initialization, locks,
// barriers, typed access, statistics and the final memory image.
func TestFacadeCounter(t *testing.T) {
	for _, prot := range lrcdsm.Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			cfg := lrcdsm.DefaultConfig()
			cfg.Protocol = prot
			cfg.Procs = 4
			cfg.Net = lrcdsm.ATMNet(100, 40)
			sys, err := lrcdsm.NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			counter := sys.Alloc(8)
			sum := sys.AllocPage(8)
			sys.InitF64(sum, 1.5)
			lock := sys.NewLock()
			bar := sys.NewBarrier()
			stats, err := sys.Run(func(p *lrcdsm.Proc) {
				for i := 0; i < 25; i++ {
					p.Lock(lock)
					p.WriteI64(counter, p.ReadI64(counter)+1)
					p.Unlock(lock)
					p.Compute(2000)
				}
				p.Barrier(bar)
				if p.ID() == 0 {
					p.WriteF64(sum, p.ReadF64(sum)+float64(p.N()))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := sys.PeekI64(counter); got != 100 {
				t.Errorf("counter = %d, want 100", got)
			}
			if got := sys.PeekF64(sum); got != 5.5 {
				t.Errorf("sum = %v, want 5.5", got)
			}
			if stats.Msgs == 0 || stats.Cycles == 0 {
				t.Errorf("stats look empty: %v", stats)
			}
			if len(stats.PerProc) != 4 {
				t.Errorf("per-proc stats = %d entries", len(stats.PerProc))
			}
		})
	}
}

// TestFacadeTrace enables event tracing through the public configuration
// and checks the log renders.
func TestFacadeTrace(t *testing.T) {
	cfg := lrcdsm.DefaultConfig()
	cfg.Procs = 2
	cfg.TraceCapacity = 64
	sys, err := lrcdsm.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.Alloc(8)
	lk := sys.NewLock()
	if _, err := sys.Run(func(p *lrcdsm.Proc) {
		p.Lock(lk)
		p.WriteI64(a, int64(p.ID()))
		p.Unlock(lk)
	}); err != nil {
		t.Fatal(err)
	}
	log := sys.Trace()
	if !log.Enabled() {
		t.Fatal("trace not enabled")
	}
	evs := log.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	var sb strings.Builder
	log.Dump(&sb)
	if !strings.Contains(sb.String(), "lock-req") {
		t.Errorf("dump missing lock events:\n%s", sb.String())
	}
}

// TestFacadeParseProtocol round-trips protocol names.
func TestFacadeParseProtocol(t *testing.T) {
	for _, p := range lrcdsm.Protocols {
		got, err := lrcdsm.ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProtocol(%v) = %v, %v", p, got, err)
		}
	}
}

// TestFacadeNetworks builds every network constructor.
func TestFacadeNetworks(t *testing.T) {
	nets := []lrcdsm.NetworkParams{
		lrcdsm.Ethernet10(40, true),
		lrcdsm.Ethernet10(40, false),
		lrcdsm.ATMNet(100, 40),
		lrcdsm.IdealNet(1000, 40),
	}
	for _, n := range nets {
		cfg := lrcdsm.DefaultConfig()
		cfg.Procs = 2
		cfg.Net = n
		sys, err := lrcdsm.NewSystem(cfg)
		if err != nil {
			t.Fatalf("%v: %v", n.Kind, err)
		}
		a := sys.Alloc(8)
		if _, err := sys.Run(func(p *lrcdsm.Proc) {
			if p.ID() == 1 {
				_ = p.ReadI64(a)
			}
		}); err != nil {
			t.Fatalf("%v: %v", n.Kind, err)
		}
	}
}
