// Package network provides the timing models of the interconnects studied
// by the paper: a 10 Mbit/s Ethernet (a single shared medium, with and
// without a collision/backoff penalty) and ATM LANs modelled as a crossbar
// switch (processors communicate concurrently and interfere only when
// sending to a common destination). An ideal contention-free network is
// provided for upper-bound and testing purposes.
//
// All times are expressed in processor cycles; the conversion from wire
// seconds uses the configured processor clock, so raising the processor
// speed makes the network proportionally more expensive in cycles — exactly
// the effect studied in Section 6.5 of the paper.
package network

import (
	"fmt"
	"math"

	"lrcdsm/internal/sim"
)

// Kind selects a network model.
type Kind int

const (
	// EthernetColl is the shared 10 Mbit/s medium including a collision /
	// exponential-backoff penalty under load ("10 Mbit Ethernet w/ Coll").
	EthernetColl Kind = iota
	// EthernetNoColl is the shared medium with pure FIFO arbitration and no
	// collision penalty ("10 Mbit Ethernet w/o Coll").
	EthernetNoColl
	// ATM is a crossbar switch: per-source and per-destination link
	// serialization only.
	ATM
	// Ideal has no contention at all: wire time plus latency.
	Ideal
)

func (k Kind) String() string {
	switch k {
	case EthernetColl:
		return "ethernet+coll"
	case EthernetNoColl:
		return "ethernet"
	case ATM:
		return "atm"
	case Ideal:
		return "ideal"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Params configures a network model.
type Params struct {
	Kind          Kind
	BandwidthMbps float64 // link (ATM) or medium (Ethernet) bandwidth
	LatencyMicros float64 // propagation / switch latency per message
	ClockMHz      float64 // processor clock, for cycle conversion
	HeaderBytes   int     // per-frame header added to the payload on the wire
	SlotMicros    float64 // Ethernet contention slot (backoff unit)
}

// DefaultHeaderBytes is the wire framing charged per message in addition to
// the shared-data payload. Reported data volumes count payload only,
// matching the paper's accounting.
const DefaultHeaderBytes = 64

// Ethernet10 returns the paper's 10 Mbit/s Ethernet.
func Ethernet10(clockMHz float64, collisions bool) Params {
	k := EthernetNoColl
	if collisions {
		k = EthernetColl
	}
	return Params{
		Kind:          k,
		BandwidthMbps: 10,
		LatencyMicros: 5,
		ClockMHz:      clockMHz,
		HeaderBytes:   DefaultHeaderBytes,
		SlotMicros:    51.2,
	}
}

// ATMNet returns a crossbar ATM network of the given link bandwidth.
func ATMNet(bandwidthMbps, clockMHz float64) Params {
	return Params{
		Kind:          ATM,
		BandwidthMbps: bandwidthMbps,
		LatencyMicros: 10,
		ClockMHz:      clockMHz,
		HeaderBytes:   DefaultHeaderBytes,
	}
}

// IdealNet returns a contention-free network of the given bandwidth.
func IdealNet(bandwidthMbps, clockMHz float64) Params {
	return Params{
		Kind:          Ideal,
		BandwidthMbps: bandwidthMbps,
		LatencyMicros: 10,
		ClockMHz:      clockMHz,
		HeaderBytes:   DefaultHeaderBytes,
	}
}

// Stats accumulates network-level counters for a run.
type Stats struct {
	Frames      int64
	WireBytes   int64    // payload + headers actually on the wire
	WaitCycles  sim.Time // cycles senders spent waiting for the medium/links
	BusyCycles  sim.Time // cycles the medium (Ethernet) or links (ATM) were busy
	Backoffs    int64    // Ethernet collision-mode backoff episodes
}

// Network models message timing. Send is called in global timestamp order
// (guaranteed by the simulation engine), computes when the message is
// delivered at dst's interface, and updates contention state.
type Network interface {
	// Send presents a message of payloadBytes from src to dst at time now
	// (after the sender's software overhead has been charged). It returns
	// the delivery time at dst (before the receiver's software overhead) and
	// the cycles spent waiting for the medium.
	Send(now sim.Time, src, dst, payloadBytes int) (deliver, wait sim.Time)
	Stats() *Stats
}

// New builds a network model from parameters.
func New(p Params) Network {
	base := base{p: p, latency: microsToCycles(p.LatencyMicros, p.ClockMHz)}
	switch p.Kind {
	case EthernetColl, EthernetNoColl:
		return &ethernet{base: base, collisions: p.Kind == EthernetColl,
			slot: microsToCycles(p.SlotMicros, p.ClockMHz)}
	case ATM:
		return &atm{base: base, outFree: map[int]sim.Time{}}
	case Ideal:
		return &ideal{base: base}
	}
	panic(fmt.Sprintf("network: unknown kind %v", p.Kind))
}

type base struct {
	p       Params
	latency sim.Time
	stats   Stats
}

func (b *base) Stats() *Stats { return &b.stats }

// wireCycles converts a payload size to transmission cycles on the wire,
// including the frame header.
func (b *base) wireCycles(payloadBytes int) sim.Time {
	bytes := payloadBytes + b.p.HeaderBytes
	bits := float64(bytes) * 8
	cycles := bits * b.p.ClockMHz / b.p.BandwidthMbps
	return sim.Time(math.Ceil(cycles))
}

func (b *base) account(payloadBytes int, wire, wait sim.Time) {
	b.stats.Frames++
	b.stats.WireBytes += int64(payloadBytes + b.p.HeaderBytes)
	b.stats.BusyCycles += wire
	b.stats.WaitCycles += wait
}

func microsToCycles(us, clockMHz float64) sim.Time {
	return sim.Time(math.Ceil(us * clockMHz))
}

// ethernet is a single shared medium. Transmissions serialize FIFO; in
// collision mode, a sender that finds the medium busy pays an additional
// backoff penalty that grows exponentially with the number of stations
// already waiting — a deterministic stand-in for CSMA/CD binary exponential
// backoff (the paper: "actual network collisions as well as the effect of
// protocols like exponential backoff").
type ethernet struct {
	base
	collisions bool
	slot       sim.Time
	freeAt     sim.Time
	pending    []sim.Time // start times of queued transmissions, pruned lazily
}

func (e *ethernet) Send(now sim.Time, src, dst, payloadBytes int) (sim.Time, sim.Time) {
	wire := e.wireCycles(payloadBytes)
	start := now
	if e.freeAt > start {
		start = e.freeAt
	}
	if e.collisions && start > now {
		// count stations currently contending (queued to start after now)
		k := 0
		live := e.pending[:0]
		for _, s := range e.pending {
			if s > now {
				live = append(live, s)
				k++
			}
		}
		e.pending = live
		if k > 0 {
			if k > 6 {
				k = 6
			}
			penalty := e.slot * sim.Time((int(1)<<k)-1) / 2
			start += penalty
			e.stats.Backoffs++
		}
	}
	e.pending = append(e.pending, start)
	e.freeAt = start + wire
	wait := start - now
	e.account(payloadBytes, wire, wait)
	return start + wire + e.latency, wait
}

// atm is a crossbar switch modelled exactly as the paper describes:
// "processors in an ATM network can communicate concurrently and interfere
// only when they try to send to a common destination" — transmissions
// serialize on the destination's output link only.
type atm struct {
	base
	outFree map[int]sim.Time
}

func (a *atm) Send(now sim.Time, src, dst, payloadBytes int) (sim.Time, sim.Time) {
	wire := a.wireCycles(payloadBytes)
	start := now
	if t := a.outFree[dst]; t > start {
		start = t
	}
	end := start + wire
	a.outFree[dst] = end
	wait := start - now
	a.account(payloadBytes, wire, wait)
	return end + a.latency, wait
}

// ideal has unlimited parallel capacity.
type ideal struct {
	base
}

func (i *ideal) Send(now sim.Time, src, dst, payloadBytes int) (sim.Time, sim.Time) {
	wire := i.wireCycles(payloadBytes)
	i.account(payloadBytes, wire, 0)
	return now + wire + i.latency, 0
}
