package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lrcdsm/internal/sim"
)

func eth(coll bool) Network { return New(Ethernet10(40, coll)) }
func atm100() Network       { return New(ATMNet(100, 40)) }

func TestWireTimeScalesWithSize(t *testing.T) {
	n := New(IdealNet(10, 40))
	d1, _ := n.Send(0, 0, 1, 0)
	d2, _ := n.Send(0, 0, 1, 4096)
	// 4096 bytes at 10 Mbit/s, 40 MHz: 4096*8*4 cycles more than header-only.
	extra := d2 - d1
	want := sim.Time(4096 * 8 * 4)
	if extra != want {
		t.Errorf("extra wire cycles = %d, want %d", extra, want)
	}
}

func TestWireTimeScalesWithClock(t *testing.T) {
	slow := New(IdealNet(10, 20))
	fast := New(IdealNet(10, 80))
	ds, _ := slow.Send(0, 0, 1, 1024)
	df, _ := fast.Send(0, 0, 1, 1024)
	if df <= ds {
		t.Errorf("faster clock must cost more cycles: slow=%d fast=%d", ds, df)
	}
}

func TestEthernetSerializes(t *testing.T) {
	n := eth(false)
	d1, w1 := n.Send(0, 0, 1, 1000)
	d2, w2 := n.Send(0, 2, 3, 1000)
	if w1 != 0 {
		t.Errorf("first send waited %d", w1)
	}
	if w2 <= 0 {
		t.Errorf("second concurrent send should wait, waited %d", w2)
	}
	if d2 <= d1 {
		t.Errorf("serialized sends must deliver in order: %d then %d", d1, d2)
	}
}

func TestEthernetIdleNoWait(t *testing.T) {
	n := eth(false)
	d1, _ := n.Send(0, 0, 1, 100)
	_, w := n.Send(d1+100000, 2, 3, 100)
	if w != 0 {
		t.Errorf("idle medium should not make sender wait, waited %d", w)
	}
}

func TestEthernetCollisionsWorse(t *testing.T) {
	run := func(coll bool) sim.Time {
		n := eth(coll)
		var last sim.Time
		for i := 0; i < 16; i++ {
			d, _ := n.Send(0, i, (i+1)%16, 1000)
			if d > last {
				last = d
			}
		}
		return last
	}
	if run(true) <= run(false) {
		t.Errorf("collision mode should finish later under load")
	}
	n := eth(true)
	for i := 0; i < 8; i++ {
		n.Send(0, i, 15, 500)
	}
	if n.Stats().Backoffs == 0 {
		t.Errorf("expected backoff episodes under simultaneous load")
	}
}

func TestATMDisjointPairsParallel(t *testing.T) {
	n := atm100()
	d1, w1 := n.Send(0, 0, 1, 4096)
	d2, w2 := n.Send(0, 2, 3, 4096)
	if w1 != 0 || w2 != 0 {
		t.Errorf("disjoint pairs should not wait: %d %d", w1, w2)
	}
	if d1 != d2 {
		t.Errorf("identical disjoint sends should deliver together: %d vs %d", d1, d2)
	}
}

func TestATMOutputPortContention(t *testing.T) {
	n := atm100()
	_, w1 := n.Send(0, 0, 5, 4096)
	_, w2 := n.Send(0, 1, 5, 4096)
	if w1 != 0 {
		t.Errorf("first sender waited %d", w1)
	}
	if w2 <= 0 {
		t.Errorf("second sender to same destination should wait")
	}
}

func TestATMSameSourceParallel(t *testing.T) {
	// The paper's crossbar model: interference only at common destinations,
	// so one source's sends to distinct destinations proceed in parallel.
	n := atm100()
	_, w1 := n.Send(0, 4, 0, 4096)
	_, w2 := n.Send(0, 4, 1, 4096)
	if w1 != 0 || w2 != 0 {
		t.Errorf("distinct destinations must not wait: w1=%d w2=%d", w1, w2)
	}
}

func TestATMFasterThanEthernetForBulk(t *testing.T) {
	e, a := eth(false), atm100()
	var de, da sim.Time
	for i := 0; i < 8; i++ {
		d, _ := e.Send(0, i, i+8, 4096)
		if d > de {
			de = d
		}
		d, _ = a.Send(0, i, i+8, 4096)
		if d > da {
			da = d
		}
	}
	if da >= de {
		t.Errorf("ATM should beat Ethernet for parallel bulk: atm=%d eth=%d", da, de)
	}
}

func TestStatsAccumulate(t *testing.T) {
	n := atm100()
	n.Send(0, 0, 1, 1000)
	n.Send(0, 0, 1, 2000)
	s := n.Stats()
	if s.Frames != 2 {
		t.Errorf("frames = %d", s.Frames)
	}
	if s.WireBytes != 3000+2*DefaultHeaderBytes {
		t.Errorf("wire bytes = %d", s.WireBytes)
	}
	if s.BusyCycles <= 0 {
		t.Errorf("busy cycles = %d", s.BusyCycles)
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{EthernetColl, EthernetNoColl, ATM, Ideal} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}

// Property: delivery time is never before now + wire time, and wait is
// non-negative, for any model and any monotone sequence of sends.
func TestQuickDeliveryMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nets := []Network{eth(true), eth(false), atm100(), New(IdealNet(1000, 40))}
		n := nets[r.Intn(len(nets))]
		now := sim.Time(0)
		for i := 0; i < 50; i++ {
			now += sim.Time(r.Intn(1000))
			size := r.Intn(5000)
			d, w := n.Send(now, r.Intn(8), r.Intn(8), size)
			if w < 0 || d < now {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: on the contention-free ideal network, latency is independent of
// traffic history.
func TestQuickIdealHistoryFree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := New(IdealNet(100, 40))
		size := r.Intn(4096)
		d0, _ := n.Send(1000, 0, 1, size)
		for i := 0; i < 20; i++ {
			n.Send(1000+sim.Time(i), r.Intn(4), r.Intn(4), r.Intn(4096))
		}
		d1, _ := n.Send(1000, 0, 1, size)
		return d0 == d1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
