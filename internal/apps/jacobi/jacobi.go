// Package jacobi implements the paper's coarse-grained workload: an
// iterative Jacobi/SOR relaxation on a 512×512 grid of float64 values,
// partitioned in contiguous row bands with barrier synchronization between
// iterations. With 4096-byte pages one grid row is exactly one page, so
// processors share only the boundary rows of their bands — the "regular
// nearest-neighbor sharing" that makes all five protocols perform about
// the same on this program.
package jacobi

import (
	"fmt"

	"lrcdsm/internal/core"
)

// Params configures the workload.
type Params struct {
	N           int   // grid dimension (N×N)
	Iters       int   // relaxation sweeps
	PointCycles int64 // private computation charged per grid point
}

// Default returns the paper's configuration: a 512×512 grid.
func Default() Params { return Params{N: 512, Iters: 10, PointCycles: 10} }

// Small returns a scaled-down configuration for tests.
func Small() Params { return Params{N: 32, Iters: 4, PointCycles: 10} }

// App is one configured Jacobi instance.
type App struct {
	p    Params
	src  core.Addr
	dst  core.Addr
	bar  int
}

// New returns a Jacobi instance with the given parameters.
func New(p Params) *App { return &App{p: p} }

// Name implements the harness App interface.
func (j *App) Name() string { return "jacobi" }

// Configure allocates and initializes the two grids: the top edge is held
// at 1.0, everything else starts at 0.
func (j *App) Configure(s core.Mem) {
	n := j.p.N
	j.src = s.AllocPage(n * n * 8)
	j.dst = s.AllocPage(n * n * 8)
	for c := 0; c < n; c++ {
		s.InitF64(j.src+core.Addr(8*c), 1.0)
		s.InitF64(j.dst+core.Addr(8*c), 1.0)
	}
	j.bar = s.NewBarrier()
}

// band returns the half-open interior row range assigned to processor id.
func (j *App) band(id, procs int) (int, int) {
	interior := j.p.N - 2
	lo := 1 + id*interior/procs
	hi := 1 + (id+1)*interior/procs
	return lo, hi
}

// Worker runs the relaxation on one processor.
func (j *App) Worker(p core.Worker) {
	n := j.p.N
	lo, hi := j.band(p.ID(), p.N())
	src, dst := j.src, j.dst
	at := func(base core.Addr, r, c int) core.Addr {
		return base + core.Addr(8*(r*n+c))
	}
	for it := 0; it < j.p.Iters; it++ {
		for r := lo; r < hi; r++ {
			for c := 1; c < n-1; c++ {
				v := 0.25 * (p.ReadF64(at(src, r-1, c)) +
					p.ReadF64(at(src, r+1, c)) +
					p.ReadF64(at(src, r, c-1)) +
					p.ReadF64(at(src, r, c+1)))
				p.WriteF64(at(dst, r, c), v)
				p.Compute(j.p.PointCycles)
			}
		}
		p.Barrier(j.bar)
		src, dst = dst, src
	}
}

// ResultRegions declares the final grid for the runtime invariant
// checker's memory-equivalence comparison. The parallel computation reads
// only barrier-ordered values, so the grid is bit-exact across schedules.
func (j *App) ResultRegions() []core.ResultRegion {
	final := j.src
	if j.p.Iters%2 == 1 {
		final = j.dst
	}
	return []core.ResultRegion{{Name: "grid", Base: final, Words: j.p.N * j.p.N}}
}

// Verify recomputes the relaxation sequentially and compares the final
// grid bit for bit (the parallel computation reads only barrier-ordered
// values, so results must be identical).
func (j *App) Verify(s core.Peeker) error {
	n := j.p.N
	a := make([][]float64, n)
	b := make([][]float64, n)
	for r := 0; r < n; r++ {
		a[r] = make([]float64, n)
		b[r] = make([]float64, n)
	}
	for c := 0; c < n; c++ {
		a[0][c] = 1.0
		b[0][c] = 1.0
	}
	for it := 0; it < j.p.Iters; it++ {
		for r := 1; r < n-1; r++ {
			for c := 1; c < n-1; c++ {
				b[r][c] = 0.25 * (a[r-1][c] + a[r+1][c] + a[r][c-1] + a[r][c+1])
			}
		}
		a, b = b, a
	}
	// After Iters swaps, `a` holds the final grid; the shared counterpart
	// is src if Iters is even, dst if odd — but both start identical and
	// swap in lockstep, so recompute which shared grid holds the result.
	final := j.src
	if j.p.Iters%2 == 1 {
		final = j.dst
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			got := s.PeekF64(final + core.Addr(8*(r*n+c)))
			if got != a[r][c] {
				return fmt.Errorf("jacobi: grid[%d][%d] = %v, want %v", r, c, got, a[r][c])
			}
		}
	}
	return nil
}
