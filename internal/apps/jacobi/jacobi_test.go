package jacobi

import (
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/network"
)

func cfg(prot core.Protocol, procs int) core.Config {
	c := core.DefaultConfig()
	c.Protocol = prot
	c.Procs = procs
	c.Net = network.ATMNet(100, core.DefaultClockMHz)
	c.MaxSharedBytes = 8 << 20
	return c
}

func runJacobi(t *testing.T, prot core.Protocol, procs int, p Params) *core.RunStats {
	t.Helper()
	s, err := core.NewSystem(cfg(prot, procs))
	if err != nil {
		t.Fatal(err)
	}
	app := New(p)
	app.Configure(s)
	st, err := s.Run(func(p *core.Proc) { app.Worker(p) })
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(s); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCorrectAllProtocols(t *testing.T) {
	for _, prot := range core.Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			runJacobi(t, prot, 4, Small())
		})
	}
}

func TestSingleProcessor(t *testing.T) {
	st := runJacobi(t, core.LH, 1, Small())
	if st.Msgs != 0 {
		t.Errorf("1-proc run sent %d messages", st.Msgs)
	}
}

func TestParallelSpeedup(t *testing.T) {
	p := Params{N: 64, Iters: 4, PointCycles: 200}
	t1 := runJacobi(t, core.LH, 1, p).Cycles
	t4 := runJacobi(t, core.LH, 4, p).Cycles
	if float64(t1)/float64(t4) < 1.5 {
		t.Errorf("speedup at 4 procs = %.2f, want > 1.5", float64(t1)/float64(t4))
	}
}

func TestOddIterationParity(t *testing.T) {
	runJacobi(t, core.LI, 3, Params{N: 32, Iters: 3, PointCycles: 10})
}

func TestBoundaryRowsShared(t *testing.T) {
	// With one row per page and contiguous bands, only boundary pages move.
	st := runJacobi(t, core.LI, 4, Params{N: 32, Iters: 4, PointCycles: 10})
	if st.AccessMisses == 0 {
		t.Error("expected boundary misses")
	}
}

func TestBandPartitionCoversInterior(t *testing.T) {
	j := New(Params{N: 100, Iters: 1})
	covered := make([]bool, 100)
	for id := 0; id < 7; id++ {
		lo, hi := j.band(id, 7)
		for r := lo; r < hi; r++ {
			if covered[r] {
				t.Fatalf("row %d assigned twice", r)
			}
			covered[r] = true
		}
	}
	for r := 1; r < 99; r++ {
		if !covered[r] {
			t.Fatalf("row %d unassigned", r)
		}
	}
	if covered[0] || covered[99] {
		t.Fatal("boundary rows must not be assigned")
	}
}
