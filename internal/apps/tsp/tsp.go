// Package tsp implements the paper's second coarse-grained workload: a
// branch-and-bound traveling salesman solver over a shared queue of partial
// tours. The global tour queue is protected by a lock ("fully 10% of a
// 16-processor execution is wasted waiting for the queue lock"); the global
// minimum is read *without* synchronization to prune searches and is only
// lock-protected for updates, so lazy protocols may prune against a stale
// bound and explore more unpromising tours — the effect that makes the
// eager protocols slightly faster on TSP.
package tsp

import (
	"fmt"
	"sort"

	"lrcdsm/internal/core"
)

// Params configures the workload.
type Params struct {
	Cities      int   // tour length; the paper uses 18-city tours
	PrefixDepth int   // cities fixed per queued partial tour
	NodeCycles  int64 // private computation charged per search-tree node
	Seed        int64
}

// Default returns the paper's configuration (18-city tours).
func Default() Params { return Params{Cities: 18, PrefixDepth: 3, NodeCycles: 40, Seed: 1} }

// Small returns a scaled-down configuration for tests.
func Small() Params { return Params{Cities: 10, PrefixDepth: 2, NodeCycles: 40, Seed: 1} }

// App is one configured TSP instance.
type App struct {
	p    Params
	dist [][]int64

	minEdge     []int64 // cheapest edge incident to each city
	twoEdgeHalf []int64 // (two cheapest incident edges)/2, for lower bounds
	greedyBound int64   // nearest-neighbor tour length, the initial bound

	tasks  [][]int8 // partial tours, fixed order
	tasksA core.Addr
	nextA  core.Addr
	minA   core.Addr

	queueLock int
	minLock   int

	// host-side instrumentation
	NodesVisited []int64 // per processor, filled during Run
}

// New returns a TSP instance with a deterministic seeded distance matrix.
func New(p Params) *App {
	a := &App{p: p}
	n := p.Cities
	a.dist = make([][]int64, n)
	for i := range a.dist {
		a.dist[i] = make([]int64, n)
	}
	// xorshift-seeded symmetric distances in [1, 100]
	s := uint64(p.Seed)*2685821657736338717 + 1442695040888963407
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := int64(next()%100) + 1
			a.dist[i][j] = d
			a.dist[j][i] = d
		}
	}
	a.minEdge = make([]int64, n)
	a.twoEdgeHalf = make([]int64, n)
	for i := 0; i < n; i++ {
		best, second := int64(1<<40), int64(1<<40)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			switch d := a.dist[i][j]; {
			case d < best:
				best, second = d, best
			case d < second:
				second = d
			}
		}
		a.minEdge[i] = best
		a.twoEdgeHalf[i] = (best + second) / 2
	}
	a.greedyBound = a.greedyTour()
	a.buildTasks()
	// The paper's queue is a priority queue of partial tours: workers take
	// the most promising (lowest lower-bound) tour first.
	sort.SliceStable(a.tasks, func(i, j int) bool {
		bi := a.lowerBound(a.prefixLen(a.tasks[i]), visitedMask(a.tasks[i]))
		bj := a.lowerBound(a.prefixLen(a.tasks[j]), visitedMask(a.tasks[j]))
		return bi < bj
	})
	return a
}

// visitedMask returns the bitmask of cities on a partial tour.
func visitedMask(t []int8) uint32 {
	var m uint32
	for _, c := range t {
		m |= 1 << uint(c)
	}
	return m
}

// greedyTour returns the length of the nearest-neighbor tour from city 0,
// used as the initial global bound (as real branch-and-bound codes do).
func (a *App) greedyTour() int64 {
	n := a.p.Cities
	visited := make([]bool, n)
	visited[0] = true
	cur, total := 0, int64(0)
	for step := 1; step < n; step++ {
		best, bd := -1, int64(1<<40)
		for c := 1; c < n; c++ {
			if !visited[c] && a.dist[cur][c] < bd {
				best, bd = c, a.dist[cur][c]
			}
		}
		visited[best] = true
		total += bd
		cur = best
	}
	return total + a.dist[cur][0]
}

// buildTasks enumerates all partial tours of PrefixDepth cities starting at
// city 0, in deterministic order.
func (a *App) buildTasks() {
	var rec func(prefix []int8)
	rec = func(prefix []int8) {
		if len(prefix) == a.p.PrefixDepth {
			t := make([]int8, len(prefix))
			copy(t, prefix)
			a.tasks = append(a.tasks, t)
			return
		}
		for c := int8(1); c < int8(a.p.Cities); c++ {
			used := false
			for _, u := range prefix {
				if u == c {
					used = true
					break
				}
			}
			if !used {
				rec(append(prefix, c))
			}
		}
	}
	rec([]int8{0})
}

// Name implements the harness App interface.
func (a *App) Name() string { return "tsp" }

// Configure allocates the shared distance matrix, task array, task cursor
// and global minimum.
func (a *App) Configure(s core.Mem) {
	n := a.p.Cities
	// Shared read-only copy of the distance matrix.
	distA := s.AllocPage(n * n * 8)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.InitI64(distA+core.Addr(8*(i*n+j)), a.dist[i][j])
		}
	}
	// Tasks, flattened: PrefixDepth cities each.
	a.tasksA = s.AllocPage(len(a.tasks) * a.p.PrefixDepth * 8)
	for t, task := range a.tasks {
		for i, c := range task {
			s.InitI64(a.tasksA+core.Addr(8*(t*a.p.PrefixDepth+i)), int64(c))
		}
	}
	a.nextA = s.AllocPage(8)
	a.minA = s.AllocPage(8)
	s.InitI64(a.minA, a.greedyBound+1) // nearest-neighbor initial bound
	a.queueLock = s.NewLock()
	a.minLock = s.NewLock()
	a.NodesVisited = make([]int64, s.Procs())
}

// prefixLen returns the path length of a partial tour.
func (a *App) prefixLen(task []int8) int64 {
	var l int64
	for i := 1; i < len(task); i++ {
		l += a.dist[task[i-1]][task[i]]
	}
	return l
}

// lowerBound returns prefix length plus half the sum of the two cheapest
// edges incident to each remaining city — the classic admissible
// branch-and-bound lower bound.
func (a *App) lowerBound(curLen int64, visited uint32) int64 {
	lb := curLen
	for c := 0; c < a.p.Cities; c++ {
		if visited&(1<<uint(c)) == 0 {
			lb += a.twoEdgeHalf[c]
		}
	}
	return lb
}

// Worker runs the branch-and-bound search on one processor.
func (a *App) Worker(p core.Worker) {
	n := a.p.Cities
	nTasks := int64(len(a.tasks))
	for {
		// Dequeue a promising task, holding the queue lock while checking
		// the topmost tour against the (now fresh) bound, as in the paper.
		p.Lock(a.queueLock)
		var task []int8
		for {
			ti := p.ReadI64(a.nextA)
			if ti >= nTasks {
				break
			}
			p.WriteI64(a.nextA, ti+1)
			t := make([]int8, a.p.PrefixDepth)
			for i := range t {
				t[i] = int8(p.ReadI64(a.tasksA + core.Addr(8*(int(ti)*a.p.PrefixDepth+i))))
			}
			visited := visitedMask(t)
			// The bound may be stale (the queue lock does not synchronize
			// with bound updates) — stale bounds are only ever too large,
			// which prunes less but never incorrectly.
			best := p.ReadI64(a.minA)
			if a.lowerBound(a.prefixLen(t), visited) < best {
				task = t
				break
			}
			// unpromising: remove another tour while still holding the lock
		}
		p.Unlock(a.queueLock)
		if task == nil {
			return
		}
		var visited uint32
		for _, c := range task {
			visited |= 1 << uint(c)
		}
		path := make([]int8, n)
		copy(path, task)
		a.search(p, path, len(task), visited, a.prefixLen(task))
	}
}

// search explores the subtree below a partial tour. The global bound is
// read unsynchronized at every node; updates re-check under the lock.
func (a *App) search(p core.Worker, path []int8, depth int, visited uint32, curLen int64) {
	a.NodesVisited[p.ID()]++
	p.Compute(a.p.NodeCycles)
	n := a.p.Cities
	best := p.ReadI64(a.minA) // possibly stale under lazy protocols
	if a.lowerBound(curLen, visited) >= best {
		return
	}
	if depth == n {
		total := curLen + a.dist[path[n-1]][0]
		if total < best {
			p.Lock(a.minLock)
			if fresh := p.ReadI64(a.minA); total < fresh {
				p.WriteI64(a.minA, total)
			}
			p.Unlock(a.minLock)
		}
		return
	}
	last := path[depth-1]
	for c := int8(1); c < int8(n); c++ {
		if visited&(1<<uint(c)) != 0 {
			continue
		}
		path[depth] = c
		a.search(p, path, depth+1, visited|1<<uint(c), curLen+a.dist[last][c])
	}
}

// SequentialBest solves the instance with the same bounding logic, host
// side, returning the optimal tour length.
func (a *App) SequentialBest() int64 {
	n := a.p.Cities
	best := a.greedyBound + 1
	path := make([]int8, n)
	path[0] = 0
	var rec func(depth int, visited uint32, curLen int64)
	rec = func(depth int, visited uint32, curLen int64) {
		if a.lowerBound(curLen, visited) >= best {
			return
		}
		if depth == n {
			if t := curLen + a.dist[path[n-1]][0]; t < best {
				best = t
			}
			return
		}
		last := path[depth-1]
		for c := int8(1); c < int8(n); c++ {
			if visited&(1<<uint(c)) == 0 {
				path[depth] = c
				rec(depth+1, visited|1<<uint(c), curLen+a.dist[last][c])
			}
		}
	}
	rec(1, 1, 0)
	return best
}

// Verify checks that the parallel search found the true optimum.
// ResultRegions declares the global minimum for the runtime invariant
// checker: branch-and-bound always converges to the optimum tour length
// regardless of exploration order, so the word is schedule-independent.
// (The task queue and cursor are deliberately excluded — they are
// schedule-dependent.)
func (a *App) ResultRegions() []core.ResultRegion {
	return []core.ResultRegion{{Name: "min", Base: a.minA, Words: 1}}
}

func (a *App) Verify(s core.Peeker) error {
	want := a.SequentialBest()
	got := s.PeekI64(a.minA)
	if got != want {
		return fmt.Errorf("tsp: found %d, optimum is %d", got, want)
	}
	return nil
}

// TotalNodes returns the number of search nodes visited across processors
// (larger under lazy protocols when stale bounds prune less).
func (a *App) TotalNodes() int64 {
	var t int64
	for _, n := range a.NodesVisited {
		t += n
	}
	return t
}
