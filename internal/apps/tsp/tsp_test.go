package tsp

import (
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/network"
)

func cfg(prot core.Protocol, procs int) core.Config {
	c := core.DefaultConfig()
	c.Protocol = prot
	c.Procs = procs
	c.Net = network.ATMNet(100, core.DefaultClockMHz)
	c.MaxSharedBytes = 8 << 20
	return c
}

func runTSP(t *testing.T, prot core.Protocol, procs int, p Params) (*App, *core.RunStats) {
	t.Helper()
	s, err := core.NewSystem(cfg(prot, procs))
	if err != nil {
		t.Fatal(err)
	}
	app := New(p)
	app.Configure(s)
	st, err := s.Run(func(p *core.Proc) { app.Worker(p) })
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(s); err != nil {
		t.Fatal(err)
	}
	return app, st
}

func TestFindsOptimumAllProtocols(t *testing.T) {
	for _, prot := range core.Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			runTSP(t, prot, 4, Small())
		})
	}
}

func TestSingleProcessor(t *testing.T) {
	app, st := runTSP(t, core.LH, 1, Small())
	if st.Msgs != 0 {
		t.Errorf("1-proc run sent %d messages", st.Msgs)
	}
	if app.TotalNodes() == 0 {
		t.Error("no nodes visited")
	}
}

func TestDifferentSeedsDifferentInstances(t *testing.T) {
	a := New(Params{Cities: 9, PrefixDepth: 2, NodeCycles: 1, Seed: 1})
	b := New(Params{Cities: 9, PrefixDepth: 2, NodeCycles: 1, Seed: 2})
	if a.SequentialBest() == b.SequentialBest() {
		t.Skip("seeds coincide; acceptable but unusual")
	}
}

func TestTaskEnumeration(t *testing.T) {
	a := New(Params{Cities: 6, PrefixDepth: 3, NodeCycles: 1, Seed: 1})
	// 5 * 4 prefixes of the form [0, x, y]
	if len(a.tasks) != 20 {
		t.Fatalf("tasks = %d, want 20", len(a.tasks))
	}
	seen := map[[3]int8]bool{}
	for _, task := range a.tasks {
		if task[0] != 0 {
			t.Fatalf("task %v does not start at city 0", task)
		}
		key := [3]int8{task[0], task[1], task[2]}
		if seen[key] {
			t.Fatalf("duplicate task %v", task)
		}
		seen[key] = true
	}
}

func TestStaleBoundCostsNodes(t *testing.T) {
	// Eager protocols publish the bound at every release, so lazy runs
	// should visit at least as many nodes (the paper's TSP effect). With a
	// small instance the difference may be zero, so only assert ordering.
	p := Params{Cities: 11, PrefixDepth: 2, NodeCycles: 40, Seed: 3}
	lazyApp, _ := runTSP(t, core.LI, 4, p)
	eagerApp, _ := runTSP(t, core.EU, 4, p)
	if eagerApp.TotalNodes() > lazyApp.TotalNodes() {
		t.Logf("note: eager visited more nodes (%d > %d) on this instance",
			eagerApp.TotalNodes(), lazyApp.TotalNodes())
	}
}

func TestSymmetricDistances(t *testing.T) {
	a := New(Small())
	for i := 0; i < a.p.Cities; i++ {
		if a.dist[i][i] != 0 {
			t.Fatalf("dist[%d][%d] = %d", i, i, a.dist[i][i])
		}
		for j := 0; j < a.p.Cities; j++ {
			if a.dist[i][j] != a.dist[j][i] {
				t.Fatalf("asymmetric at %d,%d", i, j)
			}
			if i != j && a.dist[i][j] <= 0 {
				t.Fatalf("non-positive distance at %d,%d", i, j)
			}
		}
	}
}
