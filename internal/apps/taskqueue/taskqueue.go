// Package taskqueue implements the self-scheduling workload promoted
// from examples/taskqueue: a lock-protected shared queue of task
// indices with a global result accumulator — the fine-grained
// synchronization pattern that makes Cholesky-like workloads hard for
// software DSMs. The task granularity knob sweeps the computation-to-
// synchronization ratio: below a threshold, speedup evaporates no
// matter the protocol, the paper's conclusion that synchronization is
// the residual bottleneck.
package taskqueue

import (
	"fmt"

	"lrcdsm/internal/core"
)

// Params configures the workload.
type Params struct {
	Tasks int   // queue length; task t contributes t to the result
	Grain int64 // private computation cycles per task
}

// Default returns the example's configuration: 200 coarse tasks.
func Default() Params { return Params{Tasks: 200, Grain: 100_000} }

// Small returns a scaled-down configuration for tests.
func Small() Params { return Params{Tasks: 24, Grain: 200} }

// App is one configured task-queue instance.
type App struct {
	p      Params
	next   core.Addr // queue head: next undequeued task index
	result core.Addr // accumulator: sum of completed task indices
	qlock  int
	rlock  int
}

// New returns a task-queue instance with the given parameters.
func New(p Params) *App { return &App{p: p} }

// Name implements the harness App interface.
func (a *App) Name() string { return "taskqueue" }

// Configure allocates the queue head and the accumulator on separate
// pages (they are protected by different locks, and sharing a page
// would add false sharing the workload doesn't mean to measure).
func (a *App) Configure(s core.Mem) {
	a.next = s.AllocPage(8)
	a.result = s.AllocPage(8)
	a.qlock = s.NewLock()
	a.rlock = s.NewLock()
}

// Worker dequeues tasks until the queue runs dry: each dequeue and each
// accumulation is one lock acquire, so a task costs two synchronization
// operations plus Grain cycles of private compute.
func (a *App) Worker(p core.Worker) {
	tasks := int64(a.p.Tasks)
	for {
		p.Lock(a.qlock)
		t := p.ReadI64(a.next)
		if t < tasks {
			p.WriteI64(a.next, t+1)
		}
		p.Unlock(a.qlock)
		if t >= tasks {
			return
		}
		p.Compute(a.p.Grain) // the "task"
		p.Lock(a.rlock)
		p.WriteI64(a.result, p.ReadI64(a.result)+t)
		p.Unlock(a.rlock)
	}
}

// ResultRegions declares the accumulator and the drained queue head for
// the runtime invariant checker: whatever the dequeue interleaving,
// every task runs exactly once, so both words are schedule-independent.
func (a *App) ResultRegions() []core.ResultRegion {
	return []core.ResultRegion{
		{Name: "result", Base: a.result, Words: 1},
		{Name: "queue-head", Base: a.next, Words: 1},
	}
}

// Verify checks that every task ran exactly once: the accumulator holds
// the closed-form sum 0+1+...+(Tasks-1) and the queue head stopped at
// Tasks.
func (a *App) Verify(s core.Peeker) error {
	want := int64(a.p.Tasks) * int64(a.p.Tasks-1) / 2
	if got := s.PeekI64(a.result); got != want {
		return fmt.Errorf("taskqueue: result %d, want %d", got, want)
	}
	if got := s.PeekI64(a.next); got != int64(a.p.Tasks) {
		return fmt.Errorf("taskqueue: queue head %d, want %d", got, a.p.Tasks)
	}
	return nil
}
