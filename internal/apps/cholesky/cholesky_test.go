package cholesky

import (
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/network"
)

func cfg(prot core.Protocol, procs int) core.Config {
	c := core.DefaultConfig()
	c.Protocol = prot
	c.Procs = procs
	c.Net = network.ATMNet(100, core.DefaultClockMHz)
	c.MaxSharedBytes = 16 << 20
	return c
}

func runChol(t *testing.T, prot core.Protocol, procs int, p Params) *core.RunStats {
	t.Helper()
	s, err := core.NewSystem(cfg(prot, procs))
	if err != nil {
		t.Fatal(err)
	}
	app := New(p)
	app.Configure(s)
	st, err := s.Run(func(p *core.Proc) { app.Worker(p) })
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(s); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCorrectAllProtocols(t *testing.T) {
	for _, prot := range core.Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			runChol(t, prot, 4, Small())
		})
	}
}

func TestSingleProcessor(t *testing.T) {
	st := runChol(t, core.LH, 1, Small())
	if st.Msgs != 0 {
		t.Errorf("1-proc run sent %d messages", st.Msgs)
	}
}

func TestSynchronizationDominates(t *testing.T) {
	// The paper: for Cholesky, ~96% of messages are for synchronization
	// and most of each processor's time goes to lock acquisition.
	st := runChol(t, core.LH, 4, Small())
	if st.SyncShare() < 0.5 {
		t.Errorf("sync share = %.2f, expected lock traffic to dominate", st.SyncShare())
	}
	if st.LockAcquires == 0 {
		t.Error("no lock acquisitions")
	}
}

func TestDependencyCounts(t *testing.T) {
	a := New(Params{Grid: 4, FlopCycles: 1, SpinCycles: 10})
	counts := a.nmodInit()
	if counts[0] != 0 {
		t.Errorf("column 0 must be initially ready, nmod=%d", counts[0])
	}
	// total updates equals total off-diagonal nonzeros
	var total, offdiag int64
	for _, c := range counts {
		total += c
	}
	offdiag = int64(a.sym.NNZ() - a.N())
	if total != offdiag {
		t.Errorf("Σnmod = %d, want %d", total, offdiag)
	}
}

func TestReadCoherence(t *testing.T) {
	// Fully synchronized program: every read must be HB-fresh.
	for _, prot := range core.Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			c := cfg(prot, 4)
			c.DebugCheckReads = true
			s, err := core.NewSystem(c)
			if err != nil {
				t.Fatal(err)
			}
			app := New(Params{Grid: 6, FlopCycles: 4, SpinCycles: 200})
			app.Configure(s)
			if _, err := s.Run(func(p *core.Proc) { app.Worker(p) }); err != nil {
				t.Fatal(err)
			}
			if err := app.Verify(s); err != nil {
				t.Fatal(err)
			}
		})
	}
}
