// Package cholesky implements the paper's fine-grained workload, an
// analogue of SPLASH Cholesky: parallel factorization of a sparse symmetric
// positive definite matrix using a task-queue approach. Locks are used to
// dequeue tasks as well as to protect access to columns of data; the sheer
// frequency of synchronization relative to computation (~4,000 cycles
// between off-node synchronization operations) is what limits speedup to
// ~1.3 regardless of protocol. The paper's `bcsstk14` input is substituted
// by a grid Laplacian of comparable order (see internal/spd).
package cholesky

import (
	"fmt"
	"math"

	"lrcdsm/internal/core"
	"lrcdsm/internal/spd"
)

// Params configures the workload.
type Params struct {
	Grid       int   // the matrix is the Grid×Grid Laplacian (Grid² columns)
	FlopCycles int64 // private computation per updated factor entry
	SpinCycles int64 // backoff between task-queue polls
}

// Default approximates the paper's bcsstk14 run (1806 columns): a 42×42
// grid gives 1764.
func Default() Params { return Params{Grid: 42, FlopCycles: 4, SpinCycles: 500} }

// Small returns a scaled-down configuration for tests.
func Small() Params { return Params{Grid: 8, FlopCycles: 4, SpinCycles: 500} }

// App is one configured Cholesky instance.
type App struct {
	p   Params
	a   *spd.Matrix
	sym *spd.Symbolic

	rowpos []map[int32]int32

	valsA  core.Addr // factor values, aligned with sym structure
	nmodA  core.Addr // per-column remaining update counts
	queueA core.Addr // ring buffer of ready columns
	headA  core.Addr
	tailA  core.Addr
	doneA  core.Addr

	qlock   int
	colLock int // base id; column j's lock is colLock + j
}

// New builds an instance: matrix, symbolic factorization, dependency counts.
func New(p Params) *App {
	a := &App{p: p}
	a.a = spd.GridLaplacian(p.Grid)
	a.sym = spd.Analyze(a.a)
	n := a.a.N
	a.rowpos = make([]map[int32]int32, n)
	for j := 0; j < n; j++ {
		a.rowpos[j] = a.sym.RowPos(j)
	}
	return a
}

// Name implements the harness App interface.
func (a *App) Name() string { return "cholesky" }

// N returns the matrix order.
func (a *App) N() int { return a.a.N }

// nmodInit returns the initial per-column dependency counts: the number of
// columns k < j whose completion updates column j (L[j][k] != 0).
func (a *App) nmodInit() []int64 {
	n := a.a.N
	counts := make([]int64, n)
	for k := 0; k < n; k++ {
		for p := a.sym.Colptr[k] + 1; p < a.sym.Colptr[k+1]; p++ {
			counts[a.sym.Rowidx[p]]++
		}
	}
	return counts
}

// Configure allocates and initializes the shared factor, dependency counts
// and task queue.
func (a *App) Configure(s core.Mem) {
	n := a.a.N
	a.valsA = s.AllocPage(a.sym.NNZ() * 8)
	// scatter A into the factor structure
	for j := 0; j < n; j++ {
		for p := a.a.Colptr[j]; p < a.a.Colptr[j+1]; p++ {
			off := a.rowpos[j][a.a.Rowidx[p]]
			s.InitF64(a.valsA+core.Addr(8*(int(a.sym.Colptr[j])+int(off))), a.a.Values[p])
		}
	}
	a.nmodA = s.AllocPage(n * 8)
	counts := a.nmodInit()
	ready := 0
	a.queueA = s.AllocPage(n * 8)
	for j := 0; j < n; j++ {
		s.InitI64(a.nmodA+core.Addr(8*j), counts[j])
		if counts[j] == 0 {
			s.InitI64(a.queueA+core.Addr(8*ready), int64(j))
			ready++
		}
	}
	a.headA = s.AllocPage(8)
	a.tailA = s.AllocPage(8)
	a.doneA = s.AllocPage(8)
	s.InitI64(a.tailA, int64(ready))
	a.qlock = s.NewLock()
	a.colLock = s.NewLocks(n)
}

func (a *App) valAddr(off int32) core.Addr { return a.valsA + core.Addr(8*off) }

// Worker factorizes columns from the shared task queue.
func (a *App) Worker(p core.Worker) {
	n := int64(a.a.N)
	for {
		// Dequeue a ready column (or observe completion).
		p.Lock(a.qlock)
		if p.ReadI64(a.doneA) >= n {
			p.Unlock(a.qlock)
			return
		}
		k := int64(-1)
		head := p.ReadI64(a.headA)
		if head < p.ReadI64(a.tailA) {
			k = p.ReadI64(a.queueA + core.Addr(8*head))
			p.WriteI64(a.headA, head+1)
		}
		p.Unlock(a.qlock)
		if k < 0 {
			p.Compute(a.p.SpinCycles)
			continue
		}

		a.cdiv(p, int32(k))
		// Fan out updates to every dependent column.
		for q := a.sym.Colptr[k] + 1; q < a.sym.Colptr[k+1]; q++ {
			j := a.sym.Rowidx[q]
			p.Lock(a.colLock + int(j))
			a.cmod(p, j, int32(k))
			nm := p.ReadI64(a.nmodA+core.Addr(8*int64(j))) - 1
			p.WriteI64(a.nmodA+core.Addr(8*int64(j)), nm)
			p.Unlock(a.colLock + int(j))
			if nm == 0 {
				p.Lock(a.qlock)
				tail := p.ReadI64(a.tailA)
				p.WriteI64(a.queueA+core.Addr(8*tail), int64(j))
				p.WriteI64(a.tailA, tail+1)
				p.Unlock(a.qlock)
			}
		}
		p.Lock(a.qlock)
		p.WriteI64(a.doneA, p.ReadI64(a.doneA)+1)
		p.Unlock(a.qlock)
	}
}

// cdiv performs the column division on shared memory. The column is
// complete (all updates applied), and this worker exclusively owns it.
func (a *App) cdiv(p core.Worker, k int32) {
	p.Lock(a.colLock + int(k))
	base := a.sym.Colptr[k]
	d := math.Sqrt(p.ReadF64(a.valAddr(base)))
	p.WriteF64(a.valAddr(base), d)
	for q := base + 1; q < a.sym.Colptr[k+1]; q++ {
		p.WriteF64(a.valAddr(q), p.ReadF64(a.valAddr(q))/d)
		p.Compute(a.p.FlopCycles)
	}
	p.Unlock(a.colLock + int(k))
}

// cmod applies completed column k's update to column j. Caller holds
// column j's lock; column k is immutable after its cdiv.
func (a *App) cmod(p core.Worker, j, k int32) {
	var start int32 = -1
	for q := a.sym.Colptr[k]; q < a.sym.Colptr[k+1]; q++ {
		if a.sym.Rowidx[q] == j {
			start = q
			break
		}
	}
	ljk := p.ReadF64(a.valAddr(start))
	pos := a.rowpos[j]
	cbase := a.sym.Colptr[j]
	for q := start; q < a.sym.Colptr[k+1]; q++ {
		i := a.sym.Rowidx[q]
		dst := a.valAddr(cbase + pos[i])
		p.WriteF64(dst, p.ReadF64(dst)-ljk*p.ReadF64(a.valAddr(q)))
		p.Compute(a.p.FlopCycles)
	}
}

// ResultRegions declares the factor values for the runtime invariant
// checker: column updates commute up to floating-point rounding, so the
// comparison against the 1-processor reference uses the checker's
// relative float tolerance. The work queue and cursors are excluded —
// task assignment is schedule-dependent.
func (a *App) ResultRegions() []core.ResultRegion {
	return []core.ResultRegion{{Name: "factor", Base: a.valsA,
		Words: a.sym.NNZ(), Float: true}}
}

// Verify compares the shared factor against the sequential reference
// within a tolerance (parallel update order differs in rounding).
func (a *App) Verify(s core.Peeker) error {
	want := spd.Factor(a.a, a.sym)
	const tol = 1e-9
	for i, w := range want {
		got := s.PeekF64(a.valsA + core.Addr(8*i))
		if math.Abs(got-w) > tol*(1+math.Abs(w)) {
			return fmt.Errorf("cholesky: L value %d = %v, want %v", i, got, w)
		}
	}
	return nil
}
