// Package water implements the paper's medium-grained workload, an
// analogue of SPLASH Water: an N-body molecular dynamics simulation whose
// data is primarily an array of molecules, each protected by a lock.
// During each step, the force vectors of all molecules within a spherical
// cutoff range of a molecule are updated to reflect the molecule's
// influence. In combination with the small size of the molecule record
// relative to a page, this creates a large amount of false sharing, and
// the migratory per-molecule locking during the force phase is what lets
// the lazy hybrid protocol shine (far fewer access misses and messages).
package water

import (
	"fmt"
	"math"

	"lrcdsm/internal/core"
)

// molWords is the size of one molecule record in 8-byte words: position[3],
// velocity[3], force[3], and 18 words of predictor-corrector derivative
// state (SPLASH Water keeps several orders of derivatives per molecule,
// making the record a substantial fraction of a kilobyte — the interplay of
// record size and page size is what produces the program's false sharing).
const molWords = 27

// Params configures the workload.
type Params struct {
	Molecules  int     // the paper runs the SPLASH default of 288
	Steps      int     // the paper runs 2 steps
	Cutoff     float64 // interaction cutoff radius (box is the unit cube)
	PairCycles int64   // private computation charged per interacting pair
	MoveCycles int64   // private computation charged per molecule update
	Seed       int64
}

// Default returns the paper's configuration: 288 molecules for 2 steps.
// PairCycles is calibrated so that the cycles between off-node
// synchronization operations land near the paper's ~19,200 (a SPLASH Water
// pair interaction computes 9 site-site terms with expensive math).
func Default() Params {
	return Params{Molecules: 288, Steps: 2, Cutoff: 0.3, PairCycles: 8000, MoveCycles: 2000, Seed: 1}
}

// Small returns a scaled-down configuration for tests.
func Small() Params {
	return Params{Molecules: 48, Steps: 2, Cutoff: 0.4, PairCycles: 8000, MoveCycles: 2000, Seed: 1}
}

// App is one configured Water instance.
type App struct {
	p        Params
	mol      core.Addr // packed molecule array (intentional false sharing)
	lockBase int       // one lock per molecule
	bar      int
	initPos  [][3]float64
	initVel  [][3]float64
}

// New returns a Water instance with deterministic initial conditions.
func New(p Params) *App {
	a := &App{p: p}
	s := uint64(p.Seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1_000_003) / 1_000_003.0
	}
	for i := 0; i < p.Molecules; i++ {
		a.initPos = append(a.initPos, [3]float64{next(), next(), next()})
		a.initVel = append(a.initVel, [3]float64{
			(next() - 0.5) * 0.01, (next() - 0.5) * 0.01, (next() - 0.5) * 0.01})
	}
	return a
}

// Name implements the harness App interface.
func (a *App) Name() string { return "water" }

// addr returns the shared address of field w of molecule i.
func (a *App) addr(i, w int) core.Addr { return a.mol + core.Addr(8*(i*molWords+w)) }

// Configure allocates the packed molecule array and per-molecule locks.
func (a *App) Configure(s core.Mem) {
	a.mol = s.AllocPage(a.p.Molecules * molWords * 8)
	for i := 0; i < a.p.Molecules; i++ {
		for d := 0; d < 3; d++ {
			s.InitF64(a.addr(i, d), a.initPos[i][d])
			s.InitF64(a.addr(i, 3+d), a.initVel[i][d])
		}
	}
	a.lockBase = s.NewLocks(a.p.Molecules)
	a.bar = s.NewBarrier()
}

// block returns the half-open molecule range owned by processor id.
func (a *App) block(id, procs int) (int, int) {
	return id * a.p.Molecules / procs, (id + 1) * a.p.Molecules / procs
}

// pairForce is the (deterministic) inter-molecular force contribution
// along each axis for a pair at squared distance d2 within the cutoff.
func pairForce(dx, dy, dz, d2, cutoff2 float64) (fx, fy, fz float64) {
	k := 1.0/d2 - 1.0/cutoff2
	return k * dx, k * dy, k * dz
}

// Worker runs the simulation on one processor.
func (a *App) Worker(p core.Worker) {
	lo, hi := a.block(p.ID(), p.N())
	n := a.p.Molecules
	cutoff2 := a.p.Cutoff * a.p.Cutoff
	const dt = 1e-3
	for step := 0; step < a.p.Steps; step++ {
		// Phase 1: pairwise forces. Pair (i,j), i<j, handled by i's owner;
		// both accumulators are updated under the molecules' locks
		// (migratory data).
		for i := lo; i < hi; i++ {
			xi := p.ReadF64(a.addr(i, 0))
			yi := p.ReadF64(a.addr(i, 1))
			zi := p.ReadF64(a.addr(i, 2))
			for j := i + 1; j < n; j++ {
				dx := xi - p.ReadF64(a.addr(j, 0))
				dy := yi - p.ReadF64(a.addr(j, 1))
				dz := zi - p.ReadF64(a.addr(j, 2))
				d2 := dx*dx + dy*dy + dz*dz
				if d2 >= cutoff2 || d2 == 0 {
					continue
				}
				fx, fy, fz := pairForce(dx, dy, dz, d2, cutoff2)
				p.Compute(a.p.PairCycles)
				p.Lock(a.lockBase + i)
				p.WriteF64(a.addr(i, 6), p.ReadF64(a.addr(i, 6))+fx)
				p.WriteF64(a.addr(i, 7), p.ReadF64(a.addr(i, 7))+fy)
				p.WriteF64(a.addr(i, 8), p.ReadF64(a.addr(i, 8))+fz)
				p.Unlock(a.lockBase + i)
				p.Lock(a.lockBase + j)
				p.WriteF64(a.addr(j, 6), p.ReadF64(a.addr(j, 6))-fx)
				p.WriteF64(a.addr(j, 7), p.ReadF64(a.addr(j, 7))-fy)
				p.WriteF64(a.addr(j, 8), p.ReadF64(a.addr(j, 8))-fz)
				p.Unlock(a.lockBase + j)
			}
		}
		p.Barrier(a.bar)

		// Phase 2: owners integrate velocities and positions, update the
		// predictor-corrector derivative state, and clear their force
		// accumulators for the next step.
		for i := lo; i < hi; i++ {
			p.Compute(a.p.MoveCycles)
			for d := 0; d < 3; d++ {
				v := p.ReadF64(a.addr(i, 3+d)) + dt*p.ReadF64(a.addr(i, 6+d))
				p.WriteF64(a.addr(i, 3+d), v)
				p.WriteF64(a.addr(i, d), p.ReadF64(a.addr(i, d))+dt*v)
				// derivative chain: higher orders relax toward the force
				f := p.ReadF64(a.addr(i, 6+d))
				for k := 0; k < 6; k++ {
					w := 9 + k*3 + d
					prev := p.ReadF64(a.addr(i, w))
					p.WriteF64(a.addr(i, w), 0.5*(prev+f))
				}
				p.WriteF64(a.addr(i, 6+d), 0)
			}
		}
		p.Barrier(a.bar)
	}
}

// Reference computes the final positions, velocities and derivative state
// sequentially. Force accumulation order differs from the parallel run, so
// comparisons use a tolerance.
func (a *App) Reference() (pos, vel [][3]float64, deriv [][18]float64) {
	n := a.p.Molecules
	cutoff2 := a.p.Cutoff * a.p.Cutoff
	const dt = 1e-3
	pos = make([][3]float64, n)
	vel = make([][3]float64, n)
	copy(pos, a.initPos)
	copy(vel, a.initVel)
	force := make([][3]float64, n)
	deriv = make([][18]float64, n)
	for step := 0; step < a.p.Steps; step++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := pos[i][0] - pos[j][0]
				dy := pos[i][1] - pos[j][1]
				dz := pos[i][2] - pos[j][2]
				d2 := dx*dx + dy*dy + dz*dz
				if d2 >= cutoff2 || d2 == 0 {
					continue
				}
				fx, fy, fz := pairForce(dx, dy, dz, d2, cutoff2)
				force[i][0] += fx
				force[i][1] += fy
				force[i][2] += fz
				force[j][0] -= fx
				force[j][1] -= fy
				force[j][2] -= fz
			}
		}
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				vel[i][d] += dt * force[i][d]
				pos[i][d] += dt * vel[i][d]
				for k := 0; k < 6; k++ {
					w := k*3 + d
					deriv[i][w] = 0.5 * (deriv[i][w] + force[i][d])
				}
				force[i][d] = 0
			}
		}
	}
	return pos, vel, deriv
}

// ResultRegions declares the molecule array for the runtime invariant
// checker. Force accumulation order varies with the schedule, so the
// comparison against the 1-processor reference uses the checker's
// relative float tolerance.
func (a *App) ResultRegions() []core.ResultRegion {
	return []core.ResultRegion{{Name: "molecules", Base: a.mol,
		Words: a.p.Molecules * molWords, Float: true}}
}

// Verify compares the final shared state with the sequential reference.
func (a *App) Verify(s core.Peeker) error {
	pos, vel, deriv := a.Reference()
	const tol = 1e-9
	closeEnough := func(x, y float64) bool {
		return math.Abs(x-y) <= tol*(1+math.Abs(y))
	}
	for i := 0; i < a.p.Molecules; i++ {
		for d := 0; d < 3; d++ {
			if got := s.PeekF64(a.addr(i, d)); !closeEnough(got, pos[i][d]) {
				return fmt.Errorf("water: pos[%d][%d] = %v, want %v", i, d, got, pos[i][d])
			}
			if got := s.PeekF64(a.addr(i, 3+d)); !closeEnough(got, vel[i][d]) {
				return fmt.Errorf("water: vel[%d][%d] = %v, want %v", i, d, got, vel[i][d])
			}
		}
		for w := 0; w < 18; w++ {
			if got := s.PeekF64(a.addr(i, 9+w)); !closeEnough(got, deriv[i][w]) {
				return fmt.Errorf("water: deriv[%d][%d] = %v, want %v", i, w, got, deriv[i][w])
			}
		}
	}
	return nil
}
