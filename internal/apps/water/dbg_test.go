package water

import (
	"testing"

	"lrcdsm/internal/core"
)

// TestReadCoherence runs Water with the core's read-coherence checker: the
// program is fully synchronized, so every shared read must return the
// happened-before-latest value.
func TestReadCoherence(t *testing.T) {
	for _, prot := range core.Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			c := cfg(prot, 4)
			c.DebugCheckReads = true
			s, err := core.NewSystem(c)
			if err != nil {
				t.Fatal(err)
			}
			app := New(Small())
			app.Configure(s)
			if _, err := s.Run(func(p *core.Proc) { app.Worker(p) }); err != nil {
				t.Fatal(err)
			}
		})
	}
}
