package water

import (
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/network"
)

func cfg(prot core.Protocol, procs int) core.Config {
	c := core.DefaultConfig()
	c.Protocol = prot
	c.Procs = procs
	c.Net = network.ATMNet(100, core.DefaultClockMHz)
	c.MaxSharedBytes = 8 << 20
	return c
}

func runWater(t *testing.T, prot core.Protocol, procs int, p Params) *core.RunStats {
	t.Helper()
	s, err := core.NewSystem(cfg(prot, procs))
	if err != nil {
		t.Fatal(err)
	}
	app := New(p)
	app.Configure(s)
	st, err := s.Run(func(p *core.Proc) { app.Worker(p) })
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(s); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCorrectAllProtocols(t *testing.T) {
	for _, prot := range core.Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			runWater(t, prot, 4, Small())
		})
	}
}

func TestSingleProcessor(t *testing.T) {
	st := runWater(t, core.LH, 1, Small())
	if st.Msgs != 0 {
		t.Errorf("1-proc run sent %d messages", st.Msgs)
	}
}

func TestInteractionsExist(t *testing.T) {
	a := New(Small())
	pos, _, _ := a.Reference()
	moved := false
	for i := range pos {
		if pos[i] != a.initPos[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("no molecule moved; cutoff too small for the test to be meaningful")
	}
}

func TestFalseSharingPresent(t *testing.T) {
	// 9-word molecules pack ~56 per 4096-byte page: concurrent writers on
	// one page are the norm, so twins must be created on multiple procs.
	st := runWater(t, core.LH, 4, Small())
	if st.TwinsCreated == 0 {
		t.Error("no twins created")
	}
	if st.LockAcquires == 0 {
		t.Error("no lock traffic")
	}
}

// The paper's headline Water result: EU sends an order of magnitude more
// messages than the lazy protocols, because releases cause updates to be
// sent to many other processors.
func TestEUSendsMoreMessagesThanLH(t *testing.T) {
	p := Small()
	lh := runWater(t, core.LH, 4, p)
	eu := runWater(t, core.EU, 4, p)
	if eu.Msgs <= lh.Msgs {
		t.Errorf("EU msgs (%d) should exceed LH msgs (%d)", eu.Msgs, lh.Msgs)
	}
}

func TestBlockPartitionCovers(t *testing.T) {
	a := New(Params{Molecules: 97, Steps: 1, Cutoff: 0.3})
	covered := make([]bool, 97)
	for id := 0; id < 5; id++ {
		lo, hi := a.block(id, 5)
		for i := lo; i < hi; i++ {
			if covered[i] {
				t.Fatalf("molecule %d assigned twice", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("molecule %d unassigned", i)
		}
	}
}
