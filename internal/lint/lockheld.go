package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"lrcdsm/internal/lint/analysis"
)

// LockHeld flags blocking operations executed while a sync.Mutex or
// sync.RWMutex is held — the deadlock shape the live runtime's
// distributed lock forwarding and tree-barrier fan-out make easy to
// introduce: a dispatcher handler that sends (or waits) under Node.mu
// can deadlock against a peer doing the same, and at minimum stalls
// every other goroutine contending for the mutex for a full network
// round trip. The engine's discipline is release-then-send: compute the
// outbound message under the lock, drop the lock, transmit.
//
// Blocking operations are: channel sends and receives, `select`
// statements without a `default` case, ranging over a channel,
// time.Sleep, (*sync.WaitGroup).Wait, (*sync.Cond).Wait outside the
// canonical for-loop idiom, and — matched by name, the way poolsafe
// matches FreeTwin — the project's transport and RPC entry points:
// Send/Recv methods (transport.Transport and its wrappers) and the
// node's rpc/send/trySend/awaitRetry helpers.
//
// The analysis is intra-procedural and flow-insensitive across
// branches, like poolsafe: within each straight-line statement sequence
// it tracks receivers of Lock/RLock calls until the matching
// Unlock/RUnlock; branch bodies see a private copy of that state. A
// `defer mu.Unlock()` intentionally does NOT clear the held state — the
// mutex stays held for the rest of the function, so a blocking
// operation after it is still a hold-across-block. Function literals
// are analyzed as their own scope with no held mutexes (a goroutine
// body does not inherit its creator's locks). Intentional holds (a
// condition-variable style wait protocol) carry a
// //dsmlint:ignore lockheld <reason> annotation.
var LockHeld = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "flags blocking operations (channel ops, selects, transport sends, RPC waits) while a mutex is held",
	Run:  runLockHeld,
}

// blockingMethodNames are project call points that block on the network
// or a peer reply, matched by name on any receiver (the live node's
// helpers are unexported, so type identity is not available to fixture
// code; name matching mirrors poolsafe's FreeTwin convention).
var blockingMethodNames = map[string]string{
	"Send":       "transport send",
	"Recv":       "transport receive",
	"rpc":        "blocking RPC",
	"send":       "message send",
	"trySend":    "message send",
	"awaitRetry": "RPC reply wait",
}

func runLockHeld(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					ls := &lockScan{pass: pass}
					ls.block(fn.Body.List, newLockState(), false)
				}
				return true // descend: nested literals get their own scope
			case *ast.FuncLit:
				ls := &lockScan{pass: pass}
				ls.block(fn.Body.List, newLockState(), false)
				return true
			}
			return true
		})
	}
	return nil
}

// lockState tracks, per straight-line sequence, which mutexes are held:
// expression key of the receiver -> position of the Lock call.
type lockState struct {
	held map[string]token.Pos
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

// any returns one held mutex (key and Lock position), or "" if none.
// With several held, the earliest-locked is reported for determinism.
func (s *lockState) any() (string, token.Pos) {
	var key string
	var pos token.Pos
	for k, p := range s.held {
		if key == "" || p < pos {
			key, pos = k, p
		}
	}
	return key, pos
}

type lockScan struct {
	pass *analysis.Pass
}

// block walks stmts in order, mutating st. inFor reports whether the
// sequence is (transitively) inside a for/range body — the context in
// which sync.Cond.Wait is the legitimate idiom.
func (p *lockScan) block(stmts []ast.Stmt, st *lockState, inFor bool) {
	for _, stmt := range stmts {
		p.stmt(stmt, st, inFor)
	}
}

func (p *lockScan) stmt(stmt ast.Stmt, st *lockState, inFor bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		p.trackLockCalls(s.X, st)
		p.scanBlocking(s.X, st, inFor)
	case *ast.SendStmt:
		if key, pos := st.any(); key != "" {
			p.pass.Reportf(s.Arrow, "channel send while %s is held (locked at %s)", key, p.pass.Fset.Position(pos))
		}
		p.scanBlocking(s.Value, st, inFor)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			p.scanBlocking(rhs, st, inFor)
		}
	case *ast.DeferStmt:
		// A deferred Unlock runs at function exit: the mutex stays held
		// through the remainder of the body, so held state is untouched.
		// The deferred call itself does not run here either.
	case *ast.GoStmt:
		// The spawned goroutine does not hold this goroutine's locks;
		// its body was analyzed as its own scope.
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			p.scanBlocking(r, st, inFor)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			p.stmt(s.Init, st, inFor)
		}
		p.scanBlocking(s.Cond, st, inFor)
		p.block(s.Body.List, st.clone(), inFor)
		if s.Else != nil {
			p.stmt(s.Else, st.clone(), inFor)
		}
	case *ast.ForStmt:
		sub := st.clone()
		if s.Init != nil {
			p.stmt(s.Init, sub, inFor)
		}
		if s.Cond != nil {
			p.scanBlocking(s.Cond, sub, inFor)
		}
		p.block(s.Body.List, sub, true)
		if s.Post != nil {
			p.stmt(s.Post, sub, true)
		}
	case *ast.RangeStmt:
		if tv, ok := p.pass.TypesInfo.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				if key, pos := st.any(); key != "" {
					p.pass.Reportf(s.For, "range over channel while %s is held (locked at %s)", key, p.pass.Fset.Position(pos))
				}
			}
		}
		p.scanBlocking(s.X, st, inFor)
		p.block(s.Body.List, st.clone(), true)
	case *ast.BlockStmt:
		p.block(s.List, st.clone(), inFor)
	case *ast.SwitchStmt:
		if s.Init != nil {
			p.stmt(s.Init, st, inFor)
		}
		if s.Tag != nil {
			p.scanBlocking(s.Tag, st, inFor)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				p.block(cc.Body, st.clone(), inFor)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				p.block(cc.Body, st.clone(), inFor)
			}
		}
	case *ast.SelectStmt:
		// A select with a default case never blocks; without one it
		// parks the goroutine until a communication is ready.
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			if key, pos := st.any(); key != "" {
				p.pass.Reportf(s.Select, "select without default while %s is held (locked at %s)", key, p.pass.Fset.Position(pos))
			}
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				p.block(cc.Body, st.clone(), inFor)
			}
		}
	case *ast.LabeledStmt:
		p.stmt(s.Stmt, st, inFor)
	default:
		if stmt != nil {
			if n, ok := stmt.(ast.Node); ok {
				p.scanBlocking(n, st, inFor)
			}
		}
	}
}

// trackLockCalls updates held state for mu.Lock/RLock/Unlock/RUnlock
// expression statements.
func (p *lockScan) trackLockCalls(e ast.Expr, st *lockState) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	name, recv := mutexMethod(p.pass.TypesInfo, call)
	if recv == "" {
		return
	}
	switch name {
	case "Lock", "RLock":
		st.held[recv] = call.Pos()
	case "Unlock", "RUnlock":
		delete(st.held, recv)
	}
}

// scanBlocking reports blocking operations inside expression n while a
// mutex is held: channel receives, and calls from the blocking set.
func (p *lockScan) scanBlocking(n ast.Node, st *lockState, inFor bool) {
	key, lockPos := st.any()
	if key == "" {
		// Still walk for lock tracking? No: Lock/Unlock only tracked as
		// statements; nothing to do with no mutex held.
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false // its body is a separate scope
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				p.pass.Reportf(x.OpPos, "channel receive while %s is held (locked at %s)", key, p.pass.Fset.Position(lockPos))
			}
		case *ast.CallExpr:
			if what, pos, ok := p.blockingCall(x, inFor); ok {
				p.pass.Reportf(pos, "%s while %s is held (locked at %s)", what, key, p.pass.Fset.Position(lockPos))
			}
		}
		return true
	})
}

// blockingCall classifies a call as blocking: time.Sleep,
// sync.WaitGroup.Wait, sync.Cond.Wait outside a for loop, or a
// name-matched transport/RPC entry point.
func (p *lockScan) blockingCall(call *ast.CallExpr, inFor bool) (string, token.Pos, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", token.NoPos, false
	}
	fn, ok := p.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", token.NoPos, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return "", token.NoPos, false
	}
	if sig.Recv() == nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
			return "time.Sleep", sel.Pos(), true
		}
		return "", token.NoPos, false
	}
	// Methods: sync.Cond.Wait / sync.WaitGroup.Wait by type, the
	// transport/RPC set by name.
	if fn.Name() == "Wait" {
		switch recvNamed(sig) {
		case "sync.WaitGroup":
			return "sync.WaitGroup.Wait", sel.Pos(), true
		case "sync.Cond":
			if !inFor {
				return "sync.Cond.Wait outside a for loop", sel.Pos(), true
			}
			return "", token.NoPos, false
		}
	}
	if what, ok := blockingMethodNames[fn.Name()]; ok {
		return what + " " + sel.Sel.Name, sel.Pos(), true
	}
	return "", token.NoPos, false
}

// recvNamed returns "pkgpath.TypeName" of a method's receiver type
// (dereferencing a pointer receiver), or "".
func recvNamed(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// mutexMethod reports a sync.Mutex / sync.RWMutex method call: the
// method name and the receiver's expression key ("" if not a mutex
// method or the receiver has no stable key).
func mutexMethod(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	switch recvNamed(sig) {
	case "sync.Mutex", "sync.RWMutex":
	default:
		return "", ""
	}
	key := exprKey(sel.X)
	if key == "" {
		return "", ""
	}
	return fn.Name(), key
}
