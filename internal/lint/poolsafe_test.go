package lint_test

import (
	"testing"

	"lrcdsm/internal/lint"
	"lrcdsm/internal/lint/linttest"
)

func TestPoolSafe(t *testing.T) {
	linttest.Run(t, "testdata", lint.PoolSafe, "poolsafe")
}
