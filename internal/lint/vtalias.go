package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"lrcdsm/internal/lint/analysis"
)

// VTAlias flags vector timestamps, write-notice slices, and whole
// messages that arrive from a decoded wire frame and are stored into
// long-lived state without a clone. A decoded *wire.Msg is shared
// between goroutines in two ways the type system cannot see: self-sends
// deliver a shallow copy whose slices alias the sender's message, and a
// frame retained past its handler (cached replies, gated flushes,
// barrier aggregation) outlives the dispatcher turn that owned it.
// Storing `m.VT` or `nt.Pages` into node state therefore creates
// cross-goroutine aliasing that the race detector only catches when a
// schedule happens to expose a concurrent write.
//
// Taint starts at values of the wire package's message types (wire.Msg,
// wire.Notice, wire.Interval, wire.Diff): function parameters of those
// types (or slices of them), results of calls returning them (an RPC
// reply is a decoded frame), and range variables over tainted slices.
// Field selections and slicing propagate taint; assignment to a local
// propagates it poolsafe-style through straight-line code. Locally
// constructed composite literals are clean — a message this function
// built is owned by it.
//
// A diagnostic fires when a tainted value is stored where it outlives
// the function: assigned through a selector or index (node state,
// struct fields), appended into such a location, or placed in a
// composite-literal field. Passing a tainted value to a call is clean —
// callees that store their arguments are analyzed (and flagged)
// themselves. Cloning idioms launder taint: `append([]T(nil), x...)` of
// a scalar-element slice copies the elements, and any other call result
// is treated as owned by the caller. Sites where the aliasing is
// intentional and single-threaded carry //dsmlint:ignore vtalias with a
// written reason.
var VTAlias = &analysis.Analyzer{
	Name: "vtalias",
	Doc:  "flags wire-frame slices and messages stored into long-lived state without cloning",
	Run:  runVTAlias,
}

func runVTAlias(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			vs := &vtScan{pass: pass, tainted: map[string]token.Pos{}}
			vs.seedParams(fn.Type)
			vs.block(fn.Body.List)
		}
	}
	return nil
}

type vtScan struct {
	pass *analysis.Pass
	// tainted maps expression keys (idents, selector chains) known to
	// alias wire-frame memory to the position that tainted them.
	tainted map[string]token.Pos
}

// isWireStruct reports whether t is (a pointer to) a named type declared
// in a package whose import path ends in "wire" — the live codec's
// message vocabulary.
func isWireStruct(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "wire" || len(path) > 5 && path[len(path)-5:] == "/wire"
}

// isWireSlice reports a slice/array of wire structs ([]wire.Notice).
func isWireSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	return ok && isWireStruct(sl.Elem())
}

// aliasable reports whether a value of type t can alias other memory
// (so storing it shares state) — slices, maps, pointers, channels, and
// structs containing any of those. Basic scalars and strings are not.
func aliasable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasable(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// seedParams taints the function's wire-typed parameters.
func (v *vtScan) seedParams(ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := v.pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if isWireStruct(obj.Type()) || isWireSlice(obj.Type()) {
				v.tainted[name.Name] = name.Pos()
			}
		}
	}
}

func (v *vtScan) block(stmts []ast.Stmt) {
	for _, stmt := range stmts {
		v.stmt(stmt)
	}
}

func (v *vtScan) stmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			v.scanLiteralSinks(rhs)
		}
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			}
			key := exprKey(lhs)
			if key != "" {
				delete(v.tainted, key)
			}
			if rhs == nil {
				continue
			}
			pos, taint := v.taintOf(rhs)
			if !taint {
				continue
			}
			switch lhs.(type) {
			case *ast.Ident:
				if key != "" && key != "_" {
					v.tainted[key] = pos
				}
			case *ast.SelectorExpr, *ast.IndexExpr:
				v.pass.Reportf(rhs.Pos(),
					"%s aliases a decoded wire frame; clone it before storing into %s",
					types.ExprString(rhs), types.ExprString(lhs))
			}
		}
	case *ast.ExprStmt:
		v.scanLiteralSinks(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			v.scanLiteralSinks(r)
		}
	case *ast.DeferStmt:
		v.scanLiteralSinks(s.Call)
	case *ast.GoStmt:
		v.scanLiteralSinks(s.Call)
	case *ast.SendStmt:
		v.scanLiteralSinks(s.Value)
	case *ast.IfStmt:
		if s.Init != nil {
			v.stmt(s.Init)
		}
		v.branch(s.Body.List)
		if s.Else != nil {
			v.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			v.stmt(s.Init)
		}
		v.branch(s.Body.List)
	case *ast.RangeStmt:
		// Ranging over a tainted slice of wire structs taints the value
		// variable (each element's inner slices alias the frame).
		saved := v.snapshot()
		if _, taint := v.taintOf(s.X); taint {
			if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
				v.tainted[id.Name] = id.Pos()
			}
		}
		v.block(s.Body.List)
		v.tainted = saved
	case *ast.BlockStmt:
		v.branch(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			v.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				v.branch(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				v.branch(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				v.branch(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		v.stmt(s.Stmt)
	}
}

func (v *vtScan) snapshot() map[string]token.Pos {
	c := make(map[string]token.Pos, len(v.tainted))
	for k, p := range v.tainted {
		c[k] = p
	}
	return c
}

// branch analyzes a nested block with a private copy of the taint set.
func (v *vtScan) branch(stmts []ast.Stmt) {
	saved := v.snapshot()
	v.block(stmts)
	v.tainted = saved
}

// scanLiteralSinks reports tainted values placed into composite-literal
// fields anywhere inside n — building a struct around an aliased slice
// stores it just as surely as a field assignment does. Function-literal
// bodies are their own scope and are skipped.
func (v *vtScan) scanLiteralSinks(n ast.Node) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		lit, ok := node.(*ast.CompositeLit)
		if !ok {
			return true
		}
		// A wire-struct literal is a fresh message this function owns;
		// embedding tainted slices in it re-publishes frame memory all
		// the same (cached replies, retained releases), so it is a sink
		// too — but only for keyed struct fields, where the store is
		// explicit.
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if _, taint := v.taintOf(kv.Value); taint {
				v.pass.Reportf(kv.Value.Pos(),
					"%s aliases a decoded wire frame; clone it before storing into a %s literal",
					types.ExprString(kv.Value), types.ExprString(lit.Type))
			}
		}
		return true
	})
}

// taintOf reports whether e aliases wire-frame memory, and the position
// of the original taint source.
func (v *vtScan) taintOf(e ast.Expr) (token.Pos, bool) {
	// A value whose type cannot alias anything is never tainted.
	if tv, ok := v.pass.TypesInfo.Types[e]; ok && tv.Type != nil && !aliasable(tv.Type) {
		return token.NoPos, false
	}
	switch x := e.(type) {
	case *ast.Ident:
		if pos, ok := v.tainted[x.Name]; ok {
			return pos, true
		}
	case *ast.SelectorExpr:
		// Field read off a tainted base, or off any wire-struct value
		// that is itself tainted (m.Interval.VT chains through).
		if pos, ok := v.tainted[exprKey(x)]; ok {
			return pos, true
		}
		if pos, taint := v.taintOf(x.X); taint {
			return pos, true
		}
	case *ast.ParenExpr:
		return v.taintOf(x.X)
	case *ast.StarExpr:
		return v.taintOf(x.X)
	case *ast.UnaryExpr:
		return v.taintOf(x.X)
	case *ast.SliceExpr:
		return v.taintOf(x.X)
	case *ast.IndexExpr:
		return v.taintOf(x.X)
	case *ast.TypeAssertExpr:
		return v.taintOf(x.X)
	case *ast.CallExpr:
		return v.taintOfCall(x)
	}
	return token.NoPos, false
}

// wireSourceFuncs name the calls that produce frames from the network,
// matched by name like lockheld's blocking set: an RPC reply and a
// decoded frame alias transport memory, while a constructor that merely
// returns a wire type builds a message this function owns.
var wireSourceFuncs = map[string]bool{"rpc": true, "Decode": true, "Recv": true}

// taintOfCall handles the two call forms that matter: append (which
// propagates or launders taint depending on element type) and the
// frame-producing calls in wireSourceFuncs. Every other call result is
// owned by the caller.
func (v *vtScan) taintOfCall(call *ast.CallExpr) (token.Pos, bool) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if len(call.Args) == 0 {
			return token.NoPos, false
		}
		if call.Ellipsis != token.NoPos && len(call.Args) == 2 {
			// append(dst, src...) copies src's elements: for scalar
			// elements ([]int32, []byte) that is a real clone; for wire
			// structs the copies still alias their inner slices.
			pos, taint := v.taintOf(call.Args[1])
			if !taint {
				return token.NoPos, false
			}
			if tv, ok := v.pass.TypesInfo.Types[call.Args[1]]; ok && tv.Type != nil {
				if sl, ok := tv.Type.Underlying().(*types.Slice); ok && !aliasable(sl.Elem()) {
					return token.NoPos, false // element copy of scalars: clean
				}
			}
			return pos, true
		}
		// append(dst, elem, ...): storing a tainted element aliases it.
		for _, a := range call.Args[1:] {
			if pos, taint := v.taintOf(a); taint {
				return pos, true
			}
		}
		// A tainted destination slice keeps its taint through append.
		return v.taintOf(call.Args[0])
	}
	var callee string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = fun.Name
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
	}
	if wireSourceFuncs[callee] {
		if tv, ok := v.pass.TypesInfo.Types[call]; ok && tv.Type != nil {
			if isWireStruct(tv.Type) || isWireSlice(tv.Type) {
				return call.Pos(), true
			}
		}
	}
	return token.NoPos, false
}
