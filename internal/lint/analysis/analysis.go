// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects the
// type-checked syntax of one package and reports Diagnostics through its
// Pass. The build environment bakes in only the standard library, so the
// dsmlint suite is built on this framework instead of x/tools; the API
// surface is kept deliberately close so analyzers could be ported to the
// real framework by changing imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dsmlint:ignore annotations. By convention it is lowercase.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then details.
	Doc string

	// Run applies the analyzer to a single package and reports findings
	// via pass.Report. A non-nil error aborts the analysis of the package
	// (it means the analyzer itself failed, not that the code is bad).
	Run func(pass *Pass) error
}

// Pass provides an analyzer with the type-checked syntax of one package
// and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}
