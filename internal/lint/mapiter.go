package lint

import (
	"go/ast"
	"go/types"

	"lrcdsm/internal/lint/analysis"
)

// MapIter flags `range` statements over maps inside the simulation
// packages. Go randomizes map iteration order, so any map range whose body
// does more than collect keys for sorting makes the simulation — which must
// be bit-for-bit reproducible for the paper's protocol comparison to mean
// anything — depend on runtime hash seeds.
//
// The one iteration shape that is allowed without annotation is the
// canonical collect-then-sort idiom: a body consisting solely of
// appending the key (and/or value) to a slice, e.g.
//
//	keys := make([]page.ID, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Slice(keys, ...)
//
// Any other body (sends, state mutation keyed on iteration order,
// arithmetic with early exit) must either iterate a sorted key slice or
// carry a //dsmlint:ignore mapiter <reason> annotation explaining why the
// order cannot be observed.
var MapIter = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flags nondeterministic map iteration in simulation packages",
	Run:  runMapIter,
}

func runMapIter(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollectLoop(rs) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s has nondeterministic iteration order; iterate sorted keys instead",
				types.ExprString(rs.X))
			return true
		})
	}
	return nil
}

// isKeyCollectLoop reports whether the range body only appends the
// iteration variables to slices — the collect-then-sort idiom, whose
// result is order-independent once sorted.
func isKeyCollectLoop(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	iterVars := map[string]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			iterVars[id.Name] = true
		}
	}
	if len(iterVars) == 0 {
		return false
	}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 2 {
			return false
		}
		// append's first argument must be the assignment target
		// (x = append(x, ...)) and every appended element must be an
		// iteration variable.
		if types.ExprString(call.Args[0]) != types.ExprString(as.Lhs[0]) {
			return false
		}
		for _, arg := range call.Args[1:] {
			id, ok := arg.(*ast.Ident)
			if !ok || !iterVars[id.Name] {
				return false
			}
		}
	}
	return true
}
