// Package lint is the dsmlint analyzer suite: project-specific static
// checks that guard the two properties the simulator's results depend on —
// bit-for-bit deterministic execution (mapiter, simclock) and sound reuse
// of pooled buffers on the hot path (poolsafe).
//
// A finding can be suppressed with an annotation on the same line or the
// line above:
//
//	//dsmlint:ignore <analyzer> <reason>
//
// The reason is mandatory by convention: every suppression in the tree
// should say why the flagged pattern is safe.
package lint

import (
	"go/token"
	"sort"
	"strings"

	"lrcdsm/internal/lint/analysis"
	"lrcdsm/internal/lint/loader"
)

// All is the full dsmlint suite.
var All = []*analysis.Analyzer{MapIter, SimClock, PoolSafe}

// DeterminismPkgs are the import paths (and their subpackages) whose code
// runs inside — or drives — the deterministic simulation. The determinism
// analyzers (mapiter, simclock) apply only here; poolsafe applies
// everywhere. The live runtime (lrcdsm/internal/live and its
// subpackages) is deliberately NOT listed: it runs real goroutines over
// real transports, where wall-clock time and schedule-dependent map
// iteration are legitimate.
var DeterminismPkgs = []string{
	"lrcdsm/internal/sim",
	"lrcdsm/internal/core",
	"lrcdsm/internal/page",
	"lrcdsm/internal/harness",
}

// determinismScoped names the analyzers restricted to DeterminismPkgs.
var determinismScoped = map[string]bool{
	MapIter.Name:  true,
	SimClock.Name: true,
}

// InDeterminismScope reports whether pkgPath falls under DeterminismPkgs.
func InDeterminismScope(pkgPath string) bool {
	for _, p := range DeterminismPkgs {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// AnalyzersFor returns the analyzers applicable to the given package.
func AnalyzersFor(pkgPath string) []*analysis.Analyzer {
	var as []*analysis.Analyzer
	for _, a := range All {
		if determinismScoped[a.Name] && !InDeterminismScope(pkgPath) {
			continue
		}
		as = append(as, a)
	}
	return as
}

// RunAnalyzer applies one analyzer to one loaded package and returns its
// surviving diagnostics, sorted by position, with //dsmlint:ignore
// annotations already filtered out.
func RunAnalyzer(a *analysis.Analyzer, pkg *loader.Package) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	ig := buildIgnoreIndex(pkg)
	var kept []analysis.Diagnostic
	for _, d := range diags {
		if !ig.ignored(pkg.Fset, a.Name, d.Pos) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// ignoreIndex records, per file and line, which analyzers are suppressed
// by a //dsmlint:ignore annotation on that line.
type ignoreIndex map[string]map[int]map[string]bool

func buildIgnoreIndex(pkg *loader.Package) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "dsmlint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "dsmlint:ignore"))
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					idx[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = map[string]bool{}
					byLine[pos.Line] = names
				}
				names[fields[0]] = true
			}
		}
	}
	return idx
}

// ignored reports whether an annotation for analyzer name covers pos:
// the annotation may sit on the diagnostic's line or the line above.
func (idx ignoreIndex) ignored(fset *token.FileSet, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	byLine, ok := idx[p.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		if names, ok := byLine[line]; ok && names[name] {
			return true
		}
	}
	return false
}
