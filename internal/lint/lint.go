// Package lint is the dsmlint analyzer suite: project-specific static
// checks that guard the properties the repo's results depend on —
// bit-for-bit deterministic simulation (mapiter, simclock), sound reuse
// of pooled buffers on the hot path (poolsafe), and the live runtime's
// concurrency and protocol invariants (lockheld, vtalias, wiredrift).
//
// A finding can be suppressed with an annotation on the same line or the
// line above:
//
//	//dsmlint:ignore <analyzer> <reason>
//
// The reason is mandatory: the driver reports any annotation that names
// no known analyzer or gives no reason (see SuppressionDiagnostics), so
// every suppression in the tree says why the flagged pattern is safe.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"lrcdsm/internal/lint/analysis"
	"lrcdsm/internal/lint/loader"
)

// All is the full dsmlint suite.
var All = []*analysis.Analyzer{MapIter, SimClock, PoolSafe, LockHeld, VTAlias, WireDrift}

// DeterminismPkgs are the import paths (and their subpackages) whose code
// runs inside — or drives — the deterministic simulation. The determinism
// analyzers (mapiter, simclock) apply only here; poolsafe applies
// everywhere. The live runtime (lrcdsm/internal/live and its
// subpackages) is deliberately NOT listed: it runs real goroutines over
// real transports, where wall-clock time and schedule-dependent map
// iteration are legitimate.
var DeterminismPkgs = []string{
	"lrcdsm/internal/sim",
	"lrcdsm/internal/core",
	"lrcdsm/internal/page",
	"lrcdsm/internal/harness",
}

// determinismScoped names the analyzers restricted to DeterminismPkgs.
var determinismScoped = map[string]bool{
	MapIter.Name:  true,
	SimClock.Name: true,
}

// LivePkgs are the import paths (and their subpackages) that make up the
// live runtime: real goroutines over real transports. The concurrency
// analyzers (lockheld, vtalias) apply only here — the simulator is
// single-threaded by construction, so holding a mutex across a channel
// operation or aliasing a decoded frame cannot occur there.
var LivePkgs = []string{
	"lrcdsm/internal/live",
}

// liveScoped names the analyzers restricted to LivePkgs.
var liveScoped = map[string]bool{
	LockHeld.Name: true,
	VTAlias.Name:  true,
}

// WireCodecPkg is the one package whose codec tables wiredrift audits.
const WireCodecPkg = "lrcdsm/internal/live/wire"

// InDeterminismScope reports whether pkgPath falls under DeterminismPkgs.
func InDeterminismScope(pkgPath string) bool {
	return underAny(pkgPath, DeterminismPkgs)
}

// InLiveScope reports whether pkgPath falls under LivePkgs.
func InLiveScope(pkgPath string) bool {
	return underAny(pkgPath, LivePkgs)
}

func underAny(pkgPath string, roots []string) bool {
	for _, p := range roots {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// AnalyzersFor returns the analyzers applicable to the given package.
func AnalyzersFor(pkgPath string) []*analysis.Analyzer {
	var as []*analysis.Analyzer
	for _, a := range All {
		if determinismScoped[a.Name] && !InDeterminismScope(pkgPath) {
			continue
		}
		if liveScoped[a.Name] && !InLiveScope(pkgPath) {
			continue
		}
		if a.Name == WireDrift.Name && pkgPath != WireCodecPkg {
			continue
		}
		as = append(as, a)
	}
	return as
}

// RunAnalyzer applies one analyzer to one loaded package and returns its
// surviving diagnostics, sorted by position, with //dsmlint:ignore
// annotations already filtered out.
func RunAnalyzer(a *analysis.Analyzer, pkg *loader.Package) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	ig := buildIgnoreIndex(pkg)
	var kept []analysis.Diagnostic
	for _, d := range diags {
		if !ig.ignored(pkg.Fset, a.Name, d.Pos) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// ignoreIndex records, per file and line, which analyzers are suppressed
// by a //dsmlint:ignore annotation on that line.
type ignoreIndex map[string]map[int]map[string]bool

// eachIgnoreAnnotation calls fn for every //dsmlint:ignore comment in the
// package with the annotation's position and its whitespace-split fields
// (analyzer name first, reason words after).
func eachIgnoreAnnotation(pkg *loader.Package, fn func(pos token.Pos, fields []string)) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "dsmlint:ignore") {
					continue
				}
				fn(c.Pos(), strings.Fields(strings.TrimPrefix(text, "dsmlint:ignore")))
			}
		}
	}
}

func buildIgnoreIndex(pkg *loader.Package) ignoreIndex {
	idx := ignoreIndex{}
	eachIgnoreAnnotation(pkg, func(cpos token.Pos, fields []string) {
		if len(fields) == 0 {
			return
		}
		pos := pkg.Fset.Position(cpos)
		byLine := idx[pos.Filename]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			idx[pos.Filename] = byLine
		}
		names := byLine[pos.Line]
		if names == nil {
			names = map[string]bool{}
			byLine[pos.Line] = names
		}
		names[fields[0]] = true
	})
	return idx
}

// SuppressionDiagnostics enforces the suppression contract over one
// package: every //dsmlint:ignore annotation must name a known analyzer
// and give a reason. Malformed annotations are reported as diagnostics
// from the pseudo-analyzer "ignore" — they cannot themselves be
// suppressed, because a bare annotation silently disabling a check is
// exactly the drift this guards against.
func SuppressionDiagnostics(pkg *loader.Package) []analysis.Diagnostic {
	known := map[string]bool{}
	for _, a := range All {
		known[a.Name] = true
	}
	var diags []analysis.Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, analysis.Diagnostic{
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
			Analyzer: "ignore",
		})
	}
	eachIgnoreAnnotation(pkg, func(pos token.Pos, fields []string) {
		switch {
		case len(fields) == 0:
			report(pos, "dsmlint:ignore names no analyzer: use //dsmlint:ignore <analyzer> <reason>")
		case !known[fields[0]]:
			report(pos, "dsmlint:ignore names unknown analyzer %q", fields[0])
		case len(fields) < 2:
			report(pos, "dsmlint:ignore %s gives no reason: every suppression must say why the pattern is safe", fields[0])
		}
	})
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

// ignored reports whether an annotation for analyzer name covers pos:
// the annotation may sit on the diagnostic's line or the line above.
func (idx ignoreIndex) ignored(fset *token.FileSet, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	byLine, ok := idx[p.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		if names, ok := byLine[line]; ok && names[name] {
			return true
		}
	}
	return false
}
