package lint_test

import (
	"testing"

	"lrcdsm/internal/lint"
	"lrcdsm/internal/lint/linttest"
)

func TestVTAlias(t *testing.T) {
	linttest.Run(t, "testdata", lint.VTAlias, "vtalias")
}
