package lint_test

import (
	"testing"

	"lrcdsm/internal/lint"
	"lrcdsm/internal/lint/linttest"
)

func TestSimClock(t *testing.T) {
	linttest.Run(t, "testdata", lint.SimClock, "simclock")
}
