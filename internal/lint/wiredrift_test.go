package lint_test

import (
	"testing"

	"lrcdsm/internal/lint"
	"lrcdsm/internal/lint/linttest"
)

func TestWireDrift(t *testing.T) {
	linttest.Run(t, "testdata", lint.WireDrift, "wiredrift", "wiredriftok")
}
