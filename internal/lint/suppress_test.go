package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"lrcdsm/internal/lint"
	"lrcdsm/internal/lint/loader"
)

// TestSuppressionContract verifies the driver rejects //dsmlint:ignore
// annotations that name no analyzer, an unknown analyzer, or give no
// reason — and accepts a well-formed one silently.
func TestSuppressionContract(t *testing.T) {
	moduleDir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(moduleDir, filepath.Join("testdata", "src", "ignorebare"), "ignorebare")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := lint.SuppressionDiagnostics(pkg)
	if len(diags) != 3 {
		for _, d := range diags {
			t.Logf("got: %s: %s", pkg.Fset.Position(d.Pos), d.Message)
		}
		t.Fatalf("got %d diagnostics, want 3", len(diags))
	}
	wants := []string{
		"names no analyzer",
		"gives no reason",
		"unknown analyzer \"nosuchanalyzer\"",
	}
	for i, want := range wants {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, want)
		}
		if diags[i].Analyzer != "ignore" {
			t.Errorf("diagnostic %d analyzer = %q, want \"ignore\"", i, diags[i].Analyzer)
		}
	}
}
