package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lrcdsm/internal/lint/analysis"
)

// PoolSafe flags lifetime bugs around pooled objects: using a sync.Pool
// object (or a page twin from the page package's free list) after it has
// been returned with Put/FreeTwin, returning such an object after freeing
// it, double-frees, and sync.Pool-backed buffers escaping through return
// values (the pool may hand the same buffer to another goroutine while the
// caller still holds it).
//
// The analysis is intra-procedural and flow-insensitive across branches:
// within each straight-line statement sequence it tracks expressions
// assigned from pool.Get (and page.NewTwin) and expressions passed to
// pool.Put / page.FreeTwin; a branch body is analyzed with a private copy
// of that state. `defer pool.Put(x)` is understood to free x at function
// exit, not at the defer statement. Ownership-transferring constructors
// (a function that intentionally returns a pooled buffer to its caller)
// carry a //dsmlint:ignore poolsafe <reason> annotation.
var PoolSafe = &analysis.Analyzer{
	Name: "poolsafe",
	Doc:  "flags use-after-Put, double-free and return-escape of pooled objects",
	Run:  runPoolSafe,
}

func runPoolSafe(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					ps := &poolScan{pass: pass}
					ps.block(fn.Body.List, newPoolState())
				}
				return false // bodies of nested literals handled below
			case *ast.FuncLit:
				ps := &poolScan{pass: pass}
				ps.block(fn.Body.List, newPoolState())
				return false
			}
			return true
		})
	}
	return nil
}

// poolState tracks, per straight-line sequence, which expressions hold
// pooled objects and which have been returned to their pool.
type poolState struct {
	pooled map[string]token.Pos // expr -> position of the Get that produced it
	freed  map[string]token.Pos // expr -> position of the Put/FreeTwin
}

func newPoolState() *poolState {
	return &poolState{pooled: map[string]token.Pos{}, freed: map[string]token.Pos{}}
}

func (s *poolState) clone() *poolState {
	c := newPoolState()
	for k, v := range s.pooled {
		c.pooled[k] = v
	}
	for k, v := range s.freed {
		c.freed[k] = v
	}
	return c
}

// clearKey forgets everything known about key and any of its selector
// children (reassigning v invalidates v.field knowledge too).
func (s *poolState) clearKey(key string) {
	for k := range s.pooled {
		if k == key || strings.HasPrefix(k, key+".") {
			delete(s.pooled, k)
		}
	}
	for k := range s.freed {
		if k == key || strings.HasPrefix(k, key+".") {
			delete(s.freed, k)
		}
	}
}

type poolScan struct {
	pass *analysis.Pass
}

// exprKey returns a stable name for an ident or selector chain
// ("sc", "ps.twin"); "" for anything else.
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	}
	return ""
}

// block walks stmts in order, mutating st.
func (p *poolScan) block(stmts []ast.Stmt, st *poolState) {
	for _, stmt := range stmts {
		p.stmt(stmt, st)
	}
}

func (p *poolScan) stmt(stmt ast.Stmt, st *poolState) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			p.scanUses(rhs, st)
		}
		p.markFrees(stmt, st)
		for i, lhs := range s.Lhs {
			key := exprKey(lhs)
			if key == "" {
				p.scanUses(lhs, st)
				continue
			}
			if _, freed := st.freed[key]; !freed {
				// Writing a field of a freed object is a use; overwriting
				// the freed expression itself re-establishes it.
				p.scanFieldWrite(lhs, st)
			}
			st.clearKey(key)
			if len(s.Rhs) == len(s.Lhs) {
				if pos, ok := pooledSource(p.pass, s.Rhs[i], st); ok {
					st.pooled[key] = pos
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			p.scanUses(res, st)
			if key := exprKey(res); key != "" {
				if _, ok := st.pooled[key]; ok {
					p.pass.Reportf(res.Pos(),
						"pooled object %s escapes via return value; the pool may reuse it while the caller still holds it", key)
				}
			}
		}
	case *ast.DeferStmt:
		// Arguments are evaluated now, but a deferred Put frees the
		// object only at function exit; later uses are fine.
		p.scanUses(s.Call, st)
	case *ast.ExprStmt:
		p.scanUses(s.X, st)
		p.markFrees(stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			p.stmt(s.Init, st)
		}
		p.scanUses(s.Cond, st)
		p.block(s.Body.List, st.clone())
		if s.Else != nil {
			p.stmt(s.Else, st.clone())
		}
	case *ast.ForStmt:
		sub := st.clone()
		if s.Init != nil {
			p.stmt(s.Init, sub)
		}
		if s.Cond != nil {
			p.scanUses(s.Cond, sub)
		}
		p.block(s.Body.List, sub)
		if s.Post != nil {
			p.stmt(s.Post, sub)
		}
	case *ast.RangeStmt:
		p.scanUses(s.X, st)
		p.block(s.Body.List, st.clone())
	case *ast.BlockStmt:
		p.block(s.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			p.stmt(s.Init, st)
		}
		if s.Tag != nil {
			p.scanUses(s.Tag, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				p.block(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				p.block(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				p.block(cc.Body, st.clone())
			}
		}
	case *ast.LabeledStmt:
		p.stmt(s.Stmt, st)
	case *ast.GoStmt:
		p.scanUses(s.Call, st)
	case *ast.DeclStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.IncDecStmt, *ast.SendStmt:
		if n, ok := stmt.(ast.Node); ok {
			p.scanUses(n, st)
			p.markFrees(stmt, st)
		}
	default:
		if stmt != nil {
			p.scanUses(stmt, st)
			p.markFrees(stmt, st)
		}
	}
}

// scanFieldWrite reports a write through a freed base: lhs is v.field
// (or deeper) with v freed.
func (p *poolScan) scanFieldWrite(lhs ast.Expr, st *poolState) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := exprKey(sel.X)
	if base == "" {
		return
	}
	if _, ok := st.freed[base]; ok {
		p.pass.Reportf(lhs.Pos(), "write to %s after %s was returned to its pool", exprKey(lhs), base)
	}
}

// scanUses reports reads of freed expressions inside n.
func (p *poolScan) scanUses(n ast.Node, st *poolState) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false // analyzed as its own scope
		}
		e, ok := node.(ast.Expr)
		if !ok {
			return true
		}
		key := exprKey(e)
		if key == "" {
			return true
		}
		if pos, freed := st.freed[key]; freed {
			p.pass.Reportf(e.Pos(), "use of %s after it was returned to its pool at %s",
				key, p.pass.Fset.Position(pos))
		}
		return false // don't re-report the selector's base
	})
}

// markFrees records Put/FreeTwin calls contained in stmt.
func (p *poolScan) markFrees(stmt ast.Stmt, st *poolState) {
	ast.Inspect(stmt, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		var arg ast.Expr
		switch {
		case isPoolMethod(p.pass.TypesInfo, call, "Put") && len(call.Args) == 1:
			arg = call.Args[0]
		case isNamedFunc(p.pass.TypesInfo, call, "FreeTwin") && len(call.Args) == 1:
			arg = call.Args[0]
		default:
			return true
		}
		if key := exprKey(arg); key != "" {
			st.freed[key] = call.Pos()
			delete(st.pooled, key)
		}
		return true
	})
}

// pooledSource reports whether rhs yields a pooled object: a sync.Pool
// Get call (possibly type-asserted), a page.NewTwin call, or an alias of
// an expression already known to be pooled.
func pooledSource(pass *analysis.Pass, rhs ast.Expr, st *poolState) (token.Pos, bool) {
	e := rhs
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if isPoolMethod(pass.TypesInfo, call, "Get") {
			return call.Pos(), true
		}
		return token.NoPos, false
	}
	if key := exprKey(e); key != "" {
		if pos, ok := st.pooled[key]; ok {
			return pos, true
		}
	}
	return token.NoPos, false
}

// isPoolMethod reports whether call invokes sync.Pool's method name.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isNamedFunc reports whether call's callee is a function with the given
// name (in any package — the page free list and fixture stand-ins alike).
func isNamedFunc(info *types.Info, call *ast.CallExpr, name string) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	if id.Name != name {
		return false
	}
	fn, ok := info.Uses[id].(*types.Func)
	return ok && fn.Name() == name
}
