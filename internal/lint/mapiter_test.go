package lint_test

import (
	"testing"

	"lrcdsm/internal/lint"
	"lrcdsm/internal/lint/linttest"
)

func TestMapIter(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapIter, "mapiter")
}
