package lint_test

import (
	"testing"

	"lrcdsm/internal/lint"
	"lrcdsm/internal/lint/linttest"
)

func TestLockHeld(t *testing.T) {
	linttest.Run(t, "testdata", lint.LockHeld, "lockheld")
}
