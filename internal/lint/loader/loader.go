// Package loader parses and type-checks Go packages for the dsmlint
// analyzers without golang.org/x/tools. Imports are resolved through
// compiler export data obtained from `go list -export`, which compiles
// dependencies locally and therefore works with no network and no
// pre-installed package archives.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
}

// goList runs `go list` with the given arguments in dir and decodes the
// JSON stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportMap builds an import-path -> export-data-file map for the packages
// (and their dependencies) matching the patterns. `go list -export`
// compiles everything it lists, so the map covers both standard-library
// and module-local imports.
func exportMap(dir string, patterns []string) (map[string]string, error) {
	entries, err := goList(dir, append([]string{"-export", "-deps", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			m[e.ImportPath] = e.Export
		}
	}
	return m, nil
}

// newImporter returns a types.Importer that serves imports from the given
// export-data map.
func newImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load parses and type-checks the non-test Go files of every package
// matching the patterns (e.g. "./..."), resolved relative to dir, which
// must lie inside a module.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath,Name,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports, err := exportMap(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files, err := parseFiles(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("loader: type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: t.ImportPath, Name: t.Name, Dir: t.Dir,
			Fset: fset, Files: files, Types: tpkg, Info: info,
		})
	}
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory as the standalone
// package pkgPath. It is used for analyzer test fixtures under testdata,
// which are not part of any module; their imports (standard library only,
// plus anything already compiled into the module's dependency graph) are
// resolved from moduleDir.
func LoadDir(moduleDir, dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}
	// Collect the fixture's imports and obtain export data for them.
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil || p == "unsafe" || seen[p] {
				continue
			}
			seen[p] = true
			imports = append(imports, p)
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		sort.Strings(imports)
		exports, err = exportMap(moduleDir, imports)
		if err != nil {
			return nil, err
		}
	}
	imp := newImporter(fset, exports)
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath, Name: tpkg.Name(), Dir: dir,
		Fset: fset, Files: files, Types: tpkg, Info: info,
	}, nil
}
