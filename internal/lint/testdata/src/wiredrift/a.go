// Fixture for the wiredrift analyzer: a codec whose hand-maintained
// tables have drifted from the Kind enum. KData never got a fields
// entry, KAck never got a name, the Version bumps to 5 and 6 opened no
// firstV5Kind/firstV6Kind bands (the consensus- and snapshot-frame
// bands in the live codec), firstV2Kind's version gate is missing from
// Decode, and firstV3Kind points at a kind below the v2 band.
package wiredrift

import "errors"

type Kind uint8

type fieldSet struct{ pg, vt bool }

const Version = 6 // want "wire version 6 has no firstV5Kind band marker" "wire version 6 has no firstV6Kind band marker"

const (
	KHello Kind = 1
	KData  Kind = 2 // want "wire kind KData has no fields entry"
	KAck   Kind = 3 // want "wire kind KAck has no kindNames entry"
	KLate  Kind = 4

	kindEnd Kind = 5

	firstV2Kind Kind = KLate // want "band marker firstV2Kind is not checked in Decode"
	firstV3Kind Kind = KData // want "band marker firstV3Kind .2. does not follow firstV2Kind .4."
	firstV4Kind Kind = KAck
)

var fields = map[Kind]fieldSet{
	KHello: {},
	KAck:   {pg: true},
	KLate:  {vt: true},
}

var kindNames = [kindEnd]string{
	KHello: "hello", KData: "data", KLate: "late",
}

var errTooNew = errors.New("wiredrift: kind too new for version")

func Decode(b []byte) (Kind, error) {
	if len(b) < 2 {
		return 0, errors.New("wiredrift: short frame")
	}
	k, v := Kind(b[0]), int(b[1])
	if v < 3 && k >= firstV3Kind {
		return 0, errTooNew
	}
	if v < 4 && k >= firstV4Kind {
		return 0, errTooNew
	}
	if _, ok := fields[k]; !ok {
		return 0, errors.New("wiredrift: unknown kind")
	}
	return k, nil
}
