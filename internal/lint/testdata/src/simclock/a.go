// Fixture for the simclock analyzer: wall-clock reads and the unseeded
// global rand source are flagged inside simulation code; pure time
// arithmetic, methods, and explicitly seeded generators are not.
package simclock

import (
	"math/rand"
	"time"
)

func badNow() int64 {
	t := time.Now() // want "time.Now reads the host clock"
	return t.UnixNano()
}

func badSleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host clock"
}

func badSince(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since reads the host clock"
}

func badGlobalRand() int {
	return rand.Intn(10) // want "rand.Intn draws from the unseeded global source"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "rand.Shuffle draws from the unseeded global source"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func goodSeeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

func goodDurationMath(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}

func goodTimeMethods(t time.Time) time.Duration {
	return t.Sub(time.Unix(0, 0))
}

func goodAnnotated() int64 {
	return time.Now().UnixNano() //dsmlint:ignore simclock fixture demonstrating suppression
}
