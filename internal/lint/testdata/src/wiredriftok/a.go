// Fixture for the wiredrift analyzer: a fully wired codec. Every kind
// has a fields entry and a name, every version past the first has a
// band marker — including the v5 consensus band and the v6 snapshot
// band mirroring the live codec's vote/append and snapshot-install
// frames — the markers partition the enum in order, and Decode gates
// each band. No diagnostics expected.
package wiredriftok

import "errors"

type Kind uint8

type fieldSet struct{ pg, vt bool }

const Version = 6

const (
	KHello  Kind = 1
	KData   Kind = 2
	KAck    Kind = 3
	KJoin   Kind = 4
	KVote   Kind = 5
	KAppend Kind = 6
	KSnap   Kind = 7

	kindEnd Kind = 8

	firstV2Kind Kind = KData
	firstV3Kind Kind = KAck
	firstV4Kind Kind = KJoin
	firstV5Kind Kind = KVote
	firstV6Kind Kind = KSnap
)

var fields = map[Kind]fieldSet{
	KHello:  {},
	KData:   {pg: true},
	KAck:    {vt: true},
	KJoin:   {pg: true, vt: true},
	KVote:   {vt: true},
	KAppend: {pg: true},
	KSnap:   {pg: true, vt: true},
}

var kindNames = [kindEnd]string{
	KHello: "hello", KData: "data", KAck: "ack",
	KJoin: "join", KVote: "vote", KAppend: "append",
	KSnap: "snap",
}

var errTooNew = errors.New("wiredriftok: kind too new for version")

func Decode(b []byte) (Kind, error) {
	if len(b) < 2 {
		return 0, errors.New("wiredriftok: short frame")
	}
	k, v := Kind(b[0]), int(b[1])
	if v < 2 && k >= firstV2Kind {
		return 0, errTooNew
	}
	if v < 3 && k >= firstV3Kind {
		return 0, errTooNew
	}
	if v < 4 && k >= firstV4Kind {
		return 0, errTooNew
	}
	if v < 5 && k >= firstV5Kind {
		return 0, errTooNew
	}
	if v < 6 && k >= firstV6Kind {
		return 0, errTooNew
	}
	if _, ok := fields[k]; !ok {
		return 0, errors.New("wiredriftok: unknown kind")
	}
	return k, nil
}
