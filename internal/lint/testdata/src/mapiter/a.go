// Fixture for the mapiter analyzer: map ranges whose body observes
// iteration order are flagged; the collect-then-sort idiom and non-map
// ranges are not.
package mapiter

import "sort"

func badSum(m map[int]string) int {
	total := 0
	for k := range m { // want "range over map m has nondeterministic iteration order"
		total += k
	}
	return total
}

func badSend(m map[string]int, ch chan string) {
	for k, v := range m { // want "nondeterministic iteration order"
		if v > 0 {
			ch <- k
		}
	}
}

func badFirst(m map[int]int) (int, bool) {
	for k := range m { // want "nondeterministic iteration order"
		return k, true
	}
	return 0, false
}

func goodCollectKeys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func goodCollectBoth(m map[string]int) ([]string, []int) {
	var keys []string
	var vals []int
	for k, v := range m {
		keys = append(keys, k)
		vals = append(vals, v)
	}
	sort.Strings(keys)
	sort.Ints(vals)
	return keys, vals
}

func goodSlice(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

func goodAnnotated(m map[int]int) int {
	n := 0
	for range m { //dsmlint:ignore mapiter commutative count; order unobservable
		n++
	}
	return n
}
