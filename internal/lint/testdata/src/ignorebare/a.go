// Fixture for the suppression contract: //dsmlint:ignore annotations
// must name a known analyzer and give a reason. The driver reports the
// three malformed shapes below; the well-formed annotation at the end
// is silent.
package ignorebare

var sink []byte

//dsmlint:ignore
func bareAnnotation() {
	sink = nil
}

//dsmlint:ignore poolsafe
func reasonlessAnnotation() {
	sink = nil
}

//dsmlint:ignore nosuchanalyzer the analyzer name is made up
func unknownAnalyzer() {
	sink = nil
}

//dsmlint:ignore poolsafe ownership of the buffer transfers to the caller
func wellFormed() {
	sink = nil
}
