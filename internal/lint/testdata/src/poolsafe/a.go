// Fixture for the poolsafe analyzer: use-after-Put, double-free,
// writes through freed objects, and pooled buffers escaping via return
// are flagged; the defer-Put idiom, branch-local frees, and explicit
// reassignment are not.
package poolsafe

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 64) }}

type scratch struct{ n int }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// FreeTwin stands in for the page package's free-list release function;
// poolsafe recognizes it by name.
func FreeTwin(b []byte) {
	bufPool.Put(b)
}

func badUseAfterPut() byte {
	b := bufPool.Get().([]byte)
	bufPool.Put(b)
	return b[0] // want "use of b after it was returned to its pool"
}

func badDoubleFree() {
	b := bufPool.Get().([]byte)
	bufPool.Put(b)
	bufPool.Put(b) // want "use of b after it was returned to its pool"
}

func badUseAfterFreeTwin() byte {
	b := bufPool.Get().([]byte)
	FreeTwin(b)
	return b[0] // want "use of b after it was returned to its pool"
}

func badFieldWrite() {
	sc := scratchPool.Get().(*scratch)
	scratchPool.Put(sc)
	sc.n = 1 // want "write to sc.n after sc was returned to its pool"
}

func badEscape() []byte {
	b := bufPool.Get().([]byte)
	return b // want "pooled object b escapes via return value"
}

func badAliasEscape() []byte {
	b := bufPool.Get().([]byte)
	c := b
	return c // want "pooled object c escapes via return value"
}

func badDeferEscape() []byte {
	b := bufPool.Get().([]byte)
	defer bufPool.Put(b)
	return b // want "pooled object b escapes via return value"
}

func goodLocalUse() byte {
	b := bufPool.Get().([]byte)
	b[0] = 1
	x := b[0]
	bufPool.Put(b)
	return x
}

func goodDeferPut() byte {
	b := bufPool.Get().([]byte)
	defer bufPool.Put(b)
	b[0] = 2
	return b[0]
}

func goodBranchLocalFree(cond bool) byte {
	b := bufPool.Get().([]byte)
	if cond {
		bufPool.Put(b)
		return 0
	}
	x := b[0]
	bufPool.Put(b)
	return x
}

func goodReassign() byte {
	b := bufPool.Get().([]byte)
	bufPool.Put(b)
	b = make([]byte, 8)
	return b[0]
}

func goodAnnotatedTransfer() []byte {
	b := bufPool.Get().([]byte)
	return b //dsmlint:ignore poolsafe ownership transfers to the caller
}
