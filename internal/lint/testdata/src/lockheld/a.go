// Fixture for the lockheld analyzer: channel operations, blocking
// selects, time.Sleep, transport sends and condition waits under a held
// mutex are flagged; the release-then-send discipline, nonblocking
// selects, goroutine bodies, and the canonical Cond.Wait loop are not.
package lockheld

import (
	"sync"
	"time"
)

// conn stands in for the live transport; lockheld recognizes its
// Send/Recv methods by name, like poolsafe recognizes FreeTwin.
type conn struct{}

func (c *conn) Send(b []byte) error { return nil }
func (c *conn) Recv() []byte        { return nil }

func badSendUnderLock(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 // want "channel send while mu is held"
	mu.Unlock()
}

func badRecvUnderDeferredUnlock(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	return <-ch // want "channel receive while mu is held"
}

func badSelectUnderLock(mu *sync.Mutex, a, b chan int) {
	mu.Lock()
	select { // want "select without default while mu is held"
	case <-a:
	case <-b:
	}
	mu.Unlock()
}

func badSleepUnderRLock(mu *sync.RWMutex, n *int) {
	mu.RLock()
	time.Sleep(time.Millisecond) // want "time.Sleep while mu is held"
	_ = *n
	mu.RUnlock()
}

func badTransportSendUnderLock(c *conn, mu *sync.Mutex) {
	mu.Lock()
	c.Send(nil) // want "transport send Send while mu is held"
	mu.Unlock()
}

func badCondWaitOutsideLoop(mu *sync.Mutex, cond *sync.Cond) {
	mu.Lock()
	cond.Wait() // want "sync.Cond.Wait outside a for loop while mu is held"
	mu.Unlock()
}

func goodReleaseThenSend(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	v := 1
	mu.Unlock()
	ch <- v
}

func goodSelectWithDefault(mu *sync.Mutex, a chan int) {
	mu.Lock()
	defer mu.Unlock()
	select {
	case <-a:
	default:
	}
}

func goodCondWaitInLoop(mu *sync.Mutex, cond *sync.Cond, ready func() bool) {
	mu.Lock()
	for !ready() {
		cond.Wait()
	}
	mu.Unlock()
}

func goodGoroutineSends(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	go func() { ch <- 1 }()
	mu.Unlock()
}

func goodBranchLocalUnlock(mu *sync.Mutex, ch chan int, urgent bool) {
	mu.Lock()
	if urgent {
		mu.Unlock()
		ch <- 1
		return
	}
	mu.Unlock()
	ch <- 2
}

func goodAnnotatedHold(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 //dsmlint:ignore lockheld the receiver never takes this mutex and the buffer is sized for the send
	mu.Unlock()
}
