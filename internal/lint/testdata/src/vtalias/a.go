// Fixture for the vtalias analyzer: vector timestamps, notice slices
// and whole messages from decoded frames stored into long-lived state
// without a clone are flagged; explicit clones, locally constructed
// messages, and pass-through calls are not.
package vtalias

import "lrcdsm/internal/live/wire"

// state stands in for a node's long-lived synchronization state.
type state struct {
	lastVT  []int32
	notices []wire.Notice
	cache   map[int64]*wire.Msg
	log     [][]int32
}

func (s *state) badStoreVT(m *wire.Msg) {
	s.lastVT = m.VT // want "m.VT aliases a decoded wire frame"
}

func (s *state) badAppendNotices(m *wire.Msg) {
	s.notices = append(s.notices, m.Notices...) // want "clone it before storing into s.notices"
}

func (s *state) badCacheMsg(m *wire.Msg) {
	s.cache[m.Token] = m // want "m aliases a decoded wire frame"
}

func (s *state) badLiteralEmbed(m *wire.Msg) *wire.Msg {
	return &wire.Msg{Kind: m.Kind, VT: m.VT} // want "clone it before storing into a wire.Msg literal"
}

func (s *state) badLocalAliasThenStore(m *wire.Msg) {
	vt := m.VT
	s.lastVT = vt // want "vt aliases a decoded wire frame"
}

func (s *state) badRangeNoticePages(m *wire.Msg) {
	for _, nt := range m.Notices {
		s.log = append(s.log, nt.Pages) // want "clone it before storing into s.log"
	}
}

func (s *state) goodCloneVT(m *wire.Msg) {
	s.lastVT = append([]int32(nil), m.VT...)
}

func (s *state) goodCloneNotices(m *wire.Msg) {
	for _, nt := range m.Notices {
		cp := wire.Notice{Writer: nt.Writer, Index: nt.Index, Pages: append([]int32(nil), nt.Pages...)}
		s.notices = append(s.notices, cp)
	}
}

func (s *state) goodLocalConstruct(nn int) *wire.Msg {
	g := &wire.Msg{Kind: wire.KLockGrant, VT: make([]int32, nn)}
	s.cache[1] = g
	return g
}

func (s *state) goodPassThrough(m *wire.Msg, send func(*wire.Msg) error) error {
	return send(m)
}

func (s *state) goodReassignedLocal(m *wire.Msg) {
	vt := m.VT
	vt = make([]int32, len(vt))
	s.lastVT = vt
}

func (s *state) goodAnnotatedRetention(m *wire.Msg) {
	//dsmlint:ignore vtalias this cache is read-only after the store and re-encoded verbatim for retransmissions
	s.cache[m.Token] = m
}
