// Package linttest runs dsmlint analyzers against testdata fixtures, in
// the spirit of golang.org/x/tools/go/analysis/analysistest: fixture files
// mark expected findings with trailing comments of the form
//
//	code // want "regexp"
//
// A line that triggers several diagnostics lists several quoted
// patterns after one want marker, one per diagnostic. The harness fails
// the test for every unmatched expectation and every unexpected
// diagnostic.
package linttest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"lrcdsm/internal/lint"
	"lrcdsm/internal/lint/analysis"
	"lrcdsm/internal/lint/loader"
)

var (
	wantRe    = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
	wantPatRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each package directory under <testdata>/src and applies the
// analyzer, checking diagnostics against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	moduleDir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := loader.LoadDir(moduleDir, dir, name)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		expects := collectExpectations(t, pkg)
		diags, err := lint.RunAnalyzer(a, pkg)
		if err != nil {
			t.Fatalf("%s: analyzer failed on %s: %v", a.Name, name, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !consume(expects, pos, d.Message) {
				t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			}
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
			}
		}
	}
}

func collectExpectations(t *testing.T, pkg *loader.Package) []*expectation {
	t.Helper()
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pm := range wantPatRe.FindAllStringSubmatch(m[1], -1) {
					pat := strings.ReplaceAll(pm[1], `\"`, `"`)
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return expects
}

func consume(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.pattern.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// Describe formats a diagnostic position for error messages.
func Describe(fset *token.FileSet, d analysis.Diagnostic) string {
	p := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: %s: %s", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
}
