package lint

import (
	"go/ast"
	"go/types"

	"lrcdsm/internal/lint/analysis"
)

// SimClock flags wall-clock and global-randomness use inside simulation
// packages. The simulator's clock is virtual (sim.Time); reading the host
// clock or drawing from math/rand's unseeded global source inside the
// simulation makes runs irreproducible. Timing real executions (progress
// reporting, benchmarks) belongs in cmd/ or _test.go files, and randomness
// belongs to explicitly seeded generators (the apps use seeded splitmix
// constants for exactly this reason).
var SimClock = &analysis.Analyzer{
	Name: "simclock",
	Doc:  "flags wall-clock time and unseeded randomness in simulation packages",
	Run:  runSimClock,
}

// wallClockFuncs are the package time functions that observe or depend on
// the host's real clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandFuncs are the math/rand constructors that take an explicit
// source or seed; everything else at package level draws from the global
// (unseeded, shared) source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runSimClock(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. Time.Sub) are not global state
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the host clock; simulation code must use virtual time (sim.Time)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the unseeded global source; use an explicitly seeded generator", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
