package lint_test

import (
	"testing"

	"lrcdsm/internal/lint"
)

func TestAnalyzersForScoping(t *testing.T) {
	names := func(pkgPath string) map[string]bool {
		m := map[string]bool{}
		for _, a := range lint.AnalyzersFor(pkgPath) {
			m[a.Name] = true
		}
		return m
	}

	sim := names("lrcdsm/internal/core")
	for _, want := range []string{"mapiter", "simclock", "poolsafe"} {
		if !sim[want] {
			t.Errorf("internal/core: analyzer %s missing", want)
		}
	}

	cmd := names("lrcdsm/cmd/experiments")
	if cmd["mapiter"] || cmd["simclock"] {
		t.Errorf("cmd/experiments: determinism analyzers should not apply, got %v", cmd)
	}
	if !cmd["poolsafe"] {
		t.Errorf("cmd/experiments: poolsafe should apply everywhere")
	}

	// The live runtime uses real time and real concurrency; the
	// determinism analyzers must not fire there.
	for _, pkg := range []string{
		"lrcdsm/internal/live",
		"lrcdsm/internal/live/node",
		"lrcdsm/internal/live/transport",
		"lrcdsm/internal/live/wire",
		"lrcdsm/cmd/dsmd",
	} {
		got := names(pkg)
		if got["mapiter"] || got["simclock"] {
			t.Errorf("%s: determinism analyzers should not apply, got %v", pkg, got)
		}
		if !got["poolsafe"] {
			t.Errorf("%s: poolsafe should still apply", pkg)
		}
		if lint.InDeterminismScope(pkg) {
			t.Errorf("%s should be outside determinism scope", pkg)
		}
	}

	if !lint.InDeterminismScope("lrcdsm/internal/sim") {
		t.Errorf("internal/sim should be in determinism scope")
	}
	if lint.InDeterminismScope("lrcdsm/internal/simulator") {
		t.Errorf("prefix match must respect path boundaries")
	}

	// The live-runtime concurrency analyzers apply under internal/live
	// and nowhere else: the simulator is single-threaded by construction,
	// so a "mutex held across a send" cannot happen there, and flagging
	// it would only breed suppressions.
	for _, pkg := range []string{
		"lrcdsm/internal/live",
		"lrcdsm/internal/live/node",
		"lrcdsm/internal/live/transport",
		"lrcdsm/internal/live/wire",
	} {
		got := names(pkg)
		if !got["lockheld"] || !got["vtalias"] {
			t.Errorf("%s: live concurrency analyzers should apply, got %v", pkg, got)
		}
		if !lint.InLiveScope(pkg) {
			t.Errorf("%s should be in live scope", pkg)
		}
	}
	for _, pkg := range []string{"lrcdsm/internal/core", "lrcdsm/cmd/dsmd", "lrcdsm/internal/livery"} {
		got := names(pkg)
		if got["lockheld"] || got["vtalias"] {
			t.Errorf("%s: live concurrency analyzers should not apply, got %v", pkg, got)
		}
	}

	// wiredrift audits exactly the wire codec package: its checks are
	// structural over that package's tables and meaningless anywhere else.
	if got := names("lrcdsm/internal/live/wire"); !got["wiredrift"] {
		t.Errorf("internal/live/wire: wiredrift should apply, got %v", got)
	}
	for _, pkg := range []string{"lrcdsm/internal/live/node", "lrcdsm/internal/core"} {
		if got := names(pkg); got["wiredrift"] {
			t.Errorf("%s: wiredrift should apply only to the wire package, got %v", pkg, got)
		}
	}
}
