package lint_test

import (
	"testing"

	"lrcdsm/internal/lint"
)

func TestAnalyzersForScoping(t *testing.T) {
	names := func(pkgPath string) map[string]bool {
		m := map[string]bool{}
		for _, a := range lint.AnalyzersFor(pkgPath) {
			m[a.Name] = true
		}
		return m
	}

	sim := names("lrcdsm/internal/core")
	for _, want := range []string{"mapiter", "simclock", "poolsafe"} {
		if !sim[want] {
			t.Errorf("internal/core: analyzer %s missing", want)
		}
	}

	cmd := names("lrcdsm/cmd/experiments")
	if cmd["mapiter"] || cmd["simclock"] {
		t.Errorf("cmd/experiments: determinism analyzers should not apply, got %v", cmd)
	}
	if !cmd["poolsafe"] {
		t.Errorf("cmd/experiments: poolsafe should apply everywhere")
	}

	if !lint.InDeterminismScope("lrcdsm/internal/sim") {
		t.Errorf("internal/sim should be in determinism scope")
	}
	if lint.InDeterminismScope("lrcdsm/internal/simulator") {
		t.Errorf("prefix match must respect path boundaries")
	}
}
