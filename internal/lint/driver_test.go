package lint_test

import (
	"testing"

	"lrcdsm/internal/lint"
)

func TestAnalyzersForScoping(t *testing.T) {
	names := func(pkgPath string) map[string]bool {
		m := map[string]bool{}
		for _, a := range lint.AnalyzersFor(pkgPath) {
			m[a.Name] = true
		}
		return m
	}

	sim := names("lrcdsm/internal/core")
	for _, want := range []string{"mapiter", "simclock", "poolsafe"} {
		if !sim[want] {
			t.Errorf("internal/core: analyzer %s missing", want)
		}
	}

	cmd := names("lrcdsm/cmd/experiments")
	if cmd["mapiter"] || cmd["simclock"] {
		t.Errorf("cmd/experiments: determinism analyzers should not apply, got %v", cmd)
	}
	if !cmd["poolsafe"] {
		t.Errorf("cmd/experiments: poolsafe should apply everywhere")
	}

	// The live runtime uses real time and real concurrency; the
	// determinism analyzers must not fire there.
	for _, pkg := range []string{
		"lrcdsm/internal/live",
		"lrcdsm/internal/live/node",
		"lrcdsm/internal/live/transport",
		"lrcdsm/internal/live/wire",
		"lrcdsm/cmd/dsmd",
	} {
		got := names(pkg)
		if got["mapiter"] || got["simclock"] {
			t.Errorf("%s: determinism analyzers should not apply, got %v", pkg, got)
		}
		if !got["poolsafe"] {
			t.Errorf("%s: poolsafe should still apply", pkg)
		}
		if lint.InDeterminismScope(pkg) {
			t.Errorf("%s should be outside determinism scope", pkg)
		}
	}

	if !lint.InDeterminismScope("lrcdsm/internal/sim") {
		t.Errorf("internal/sim should be in determinism scope")
	}
	if lint.InDeterminismScope("lrcdsm/internal/simulator") {
		t.Errorf("prefix match must respect path boundaries")
	}
}
