package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"lrcdsm/internal/lint/analysis"
)

// WireDrift machine-checks the wire codec's hand-maintained
// compatibility matrix so a new message kind (codec v5's batching
// frames, and everything after) cannot silently ship half-wired. The
// codec is table-driven: Encode and Decode both walk the `fields` map,
// String() reads `kindNames`, and Decode's version gates compare
// against the firstV2Kind/firstV3Kind/firstV4Kind band markers. Each of
// those tables is updated by hand when a kind is added, and nothing but
// convention keeps them in sync with the Kind enum.
//
// For a package declaring a `Kind` type (the analyzer is scoped to
// lrcdsm/internal/live/wire by the driver), wiredrift verifies:
//
//   - every exported Kind constant below kindEnd has a `fields` entry —
//     the single table both Encode and Decode dispatch on, so a missing
//     entry means Encode panics and Decode rejects the kind;
//   - every such constant has a non-empty `kindNames` entry, so
//     diagnostics and stats never print a bare "kind(N)";
//   - a firstV{N}Kind band marker exists for every wire version 2
//     through Version — bumping Version without opening a band is how a
//     new kind ends up decodable from frames too old to carry it;
//   - the band markers are strictly increasing and inside the enum, so
//     a kind inserted mid-enum (renumbering everything after it, a wire
//     compatibility break) trips the ordering check;
//   - every band marker is referenced inside Decode — the version gate
//     is the only consumer, so an unreferenced marker means the gate
//     for that band is missing.
var WireDrift = &analysis.Analyzer{
	Name: "wiredrift",
	Doc:  "verifies every wire Kind has fields/name entries and sits behind its version gate",
	Run:  runWireDrift,
}

func runWireDrift(pass *analysis.Pass) error {
	scope := pass.Pkg.Scope()
	kindObj := scope.Lookup("Kind")
	if kindObj == nil {
		return nil // not a codec package; nothing to check
	}
	kindType, ok := kindObj.(*types.TypeName)
	if !ok {
		return nil
	}

	// Enumerate the Kind constants: the exported enum members, the
	// kindEnd sentinel, and the firstV*Kind band markers.
	type kindConst struct {
		obj *types.Const
		val int64
		pos token.Pos
	}
	var kinds []kindConst
	bands := map[int]kindConst{} // wire version -> firstV{N}Kind
	var kindEnd *kindConst
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), kindType.Type()) {
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok {
			continue
		}
		kc := kindConst{obj: c, val: v, pos: c.Pos()}
		switch {
		case name == "kindEnd":
			kcCopy := kc
			kindEnd = &kcCopy
		case strings.HasPrefix(name, "firstV") && strings.HasSuffix(name, "Kind"):
			if n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "firstV"), "Kind")); err == nil {
				bands[n] = kc
			}
		case c.Exported():
			kinds = append(kinds, kc)
		}
	}
	if len(kinds) == 0 {
		return nil
	}

	fieldsKeys := compositeKeyVals(pass, "fields")
	nameKeys := compositeKeyVals(pass, "kindNames")
	decodeRefs := identsUsedIn(pass, "Decode")
	version, versionPos := intConst(pass, "Version")

	for _, k := range kinds {
		if kindEnd != nil && k.val >= kindEnd.val {
			continue
		}
		name := k.obj.Name()
		if _, ok := fieldsKeys[k.val]; !ok {
			pass.Reportf(k.pos, "wire kind %s has no fields entry: Encode panics and Decode rejects it", name)
		}
		if s, ok := nameKeys[k.val]; !ok || s == "" {
			pass.Reportf(k.pos, "wire kind %s has no kindNames entry: String() falls back to kind(%d)", name, k.val)
		}
	}

	// Version bands: one marker per wire version past the first, in
	// strictly increasing kind order, each enforced in Decode.
	if version > 1 {
		var prev *kindConst
		for v := 2; v <= version; v++ {
			band, ok := bands[v]
			if !ok {
				pass.Reportf(versionPos, "wire version %d has no firstV%dKind band marker: v%d kinds would decode from older frames", version, v, v)
				continue
			}
			if prev != nil && band.val <= prev.val {
				pass.Reportf(band.pos, "band marker %s (%d) does not follow %s (%d): version bands must partition the enum in order",
					band.obj.Name(), band.val, prev.obj.Name(), prev.val)
			}
			if kindEnd != nil && band.val >= kindEnd.val {
				pass.Reportf(band.pos, "band marker %s (%d) lies outside the kind enum", band.obj.Name(), band.val)
			}
			if !decodeRefs[band.obj.Name()] {
				pass.Reportf(band.pos, "band marker %s is not checked in Decode: its version gate is missing", band.obj.Name())
			}
			bandCopy := band
			prev = &bandCopy
		}
	}
	return nil
}

// compositeKeyVals returns the keys of the package-level composite
// literal named varName (the `fields` map or `kindNames` array): a map
// from each key constant's value to the entry's string value (for
// string-valued literals) or "" otherwise. Nil keys map is returned as
// empty if the variable does not exist.
func compositeKeyVals(pass *analysis.Pass, varName string) map[int64]string {
	out := map[int64]string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != varName || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						ktv, ok := pass.TypesInfo.Types[kv.Key]
						if !ok || ktv.Value == nil {
							continue
						}
						kval, ok := constant.Int64Val(constant.ToInt(ktv.Value))
						if !ok {
							continue
						}
						sval := ""
						if vtv, ok := pass.TypesInfo.Types[kv.Value]; ok && vtv.Value != nil && vtv.Value.Kind() == constant.String {
							sval = constant.StringVal(vtv.Value)
						} else if vtv.Value == nil {
							sval = "\x01" // non-constant entry: present, non-empty
						}
						out[kval] = sval
					}
				}
			}
		}
	}
	return out
}

// identsUsedIn returns the set of identifier names referenced inside
// the body of the package-level function funcName.
func identsUsedIn(pass *analysis.Pass, funcName string) map[string]bool {
	out := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Name.Name != funcName || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					out[id.Name] = true
				}
				return true
			})
		}
	}
	return out
}

// intConst returns the value and position of the package-level integer
// constant named name (0 and NoPos if absent).
func intConst(pass *analysis.Pass, name string) (int, token.Pos) {
	c, ok := pass.Pkg.Scope().Lookup(name).(*types.Const)
	if !ok {
		return 0, token.NoPos
	}
	v, ok := constant.Int64Val(constant.ToInt(c.Val()))
	if !ok {
		return 0, token.NoPos
	}
	return int(v), c.Pos()
}
