package recover

import (
	"errors"
	"reflect"
	"testing"
)

func sampleNode(ep int64, node int32) *NodeSnapshot {
	return &NodeSnapshot{
		Episode: ep,
		Node:    node,
		VT:      []int32{3, 1, 4, 1},
		Pages: []PageImage{
			{Page: 0, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}, HomeVT: []int32{1, 0, 2, 0}},
			{Page: 7, Data: make([]byte, 4096), HomeVT: []int32{0, 0, 0, 1}},
		},
	}
}

func sampleManager(ep int64) *ManagerSnapshot {
	return &ManagerSnapshot{
		Episode: ep,
		VT:      []int32{3, 1, 4, 1},
		LockVT:  [][]int32{nil, {2, 0, 1, 0}, nil},
		Log: [][]LogRec{
			{{Pages: []int32{0, 1}}, {Pages: []int32{2}}},
			{},
			{{Pages: nil}},
			{{Pages: []int32{5}}},
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ns := sampleNode(4, 2)
	got, err := DecodeNode(EncodeNode(ns))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ns, got) {
		t.Errorf("node snapshot round trip mismatch:\n got %+v\nwant %+v", got, ns)
	}
	ms := sampleManager(4)
	gotM, err := DecodeManager(EncodeManager(ms))
	if err != nil {
		t.Fatal(err)
	}
	// Empty Log rows decode as empty (not nil) only when allocated; accept
	// structural equality after normalizing nils.
	if gotM.Episode != ms.Episode || !reflect.DeepEqual(gotM.VT, ms.VT) || !reflect.DeepEqual(gotM.LockVT, ms.LockVT) {
		t.Errorf("manager snapshot round trip mismatch:\n got %+v\nwant %+v", gotM, ms)
	}
	if len(gotM.Log) != len(ms.Log) {
		t.Fatalf("log rows = %d, want %d", len(gotM.Log), len(ms.Log))
	}
	for w := range ms.Log {
		if len(gotM.Log[w]) != len(ms.Log[w]) {
			t.Fatalf("log[%d] = %d recs, want %d", w, len(gotM.Log[w]), len(ms.Log[w]))
		}
		for i := range ms.Log[w] {
			if !reflect.DeepEqual(gotM.Log[w][i].Pages, ms.Log[w][i].Pages) {
				t.Errorf("log[%d][%d] = %v, want %v", w, i, gotM.Log[w][i].Pages, ms.Log[w][i].Pages)
			}
		}
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	nb := EncodeNode(sampleNode(1, 0))
	mb := EncodeManager(sampleManager(1))
	for i := 0; i < len(nb); i++ {
		if _, err := DecodeNode(nb[:i]); err == nil {
			t.Fatalf("truncated node snapshot (%d/%d bytes) decoded", i, len(nb))
		}
	}
	for i := 0; i < len(mb); i++ {
		if _, err := DecodeManager(mb[:i]); err == nil {
			t.Fatalf("truncated manager snapshot (%d/%d bytes) decoded", i, len(mb))
		}
	}
	if _, err := DecodeNode(append(nb, 0)); err == nil {
		t.Error("node snapshot with trailing byte decoded")
	}
	if _, err := DecodeManager(append(mb, 0)); err == nil {
		t.Error("manager snapshot with trailing byte decoded")
	}
	if _, err := DecodeNode(mb); err == nil {
		t.Error("manager bytes decoded as node snapshot")
	}
	bad := append([]byte(nil), nb...)
	bad[4] = 99 // version
	if _, err := DecodeNode(bad); err == nil {
		t.Error("unknown snapshot version decoded")
	}
}

// storeContract exercises the Store interface contract shared by both
// implementations.
func storeContract(t *testing.T, st Store) {
	t.Helper()
	if _, err := st.GetNode(1, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store GetNode err = %v, want ErrNotFound", err)
	}
	if _, err := st.GetManager(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store GetManager err = %v, want ErrNotFound", err)
	}
	if _, ok := st.LatestNode(0); ok {
		t.Fatal("empty store claims a latest episode")
	}

	for _, ep := range []int64{2, 4, 6} {
		for n := int32(0); n < 3; n++ {
			if err := st.PutNode(sampleNode(ep, n)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.PutManager(sampleManager(ep)); err != nil {
			t.Fatal(err)
		}
	}

	got, err := st.GetNode(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleNode(4, 2)) {
		t.Errorf("GetNode(4,2) mismatch: %+v", got)
	}
	// Mutating the returned snapshot must not corrupt the store.
	got.Pages[0].Data[0] = 0xFF
	again, _ := st.GetNode(4, 2)
	if again.Pages[0].Data[0] == 0xFF {
		t.Error("store aliases returned snapshot buffers")
	}

	if ep, ok := st.LatestNode(1); !ok || ep != 6 {
		t.Errorf("LatestNode(1) = %d,%v want 6,true", ep, ok)
	}
	if _, err := st.GetManager(6); err != nil {
		t.Errorf("GetManager(6): %v", err)
	}

	if err := st.Prune(2); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetNode(2, 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("pruned episode 2 still present (err %v)", err)
	}
	if _, err := st.GetManager(2); !errors.Is(err, ErrNotFound) {
		t.Errorf("pruned manager episode 2 still present (err %v)", err)
	}
	if _, err := st.GetNode(4, 1); err != nil {
		t.Errorf("kept episode 4 missing after prune: %v", err)
	}
	if _, err := st.GetNode(6, 0); err != nil {
		t.Errorf("kept episode 6 missing after prune: %v", err)
	}
}

func TestMemStore(t *testing.T) { storeContract(t, NewMemStore()) }

func TestDirStore(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, st)
}

// TestDirStorePersistence checks a reopened DirStore still serves
// snapshots written by the previous instance — the property a restarted
// node's local restore depends on.
func TestDirStorePersistence(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutNode(sampleNode(8, 1)); err != nil {
		t.Fatal(err)
	}
	st2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ep, ok := st2.LatestNode(1); !ok || ep != 8 {
		t.Fatalf("reopened LatestNode = %d,%v want 8,true", ep, ok)
	}
	got, err := st2.GetNode(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleNode(8, 1)) {
		t.Error("reopened snapshot mismatch")
	}
}
