// Package recover holds the barrier-aligned checkpoint layer of the live
// DSM runtime: the snapshot types a node and the manager capture at
// flagged barrier episodes, a binary codec for them, and the pluggable
// CheckpointStore they are written to (in-memory for tests and soaks, a
// directory of files for real deployments).
//
// A checkpoint of episode E is consistent by construction — see
// DESIGN.md §11: every node captures its homed pages right after
// departing barrier E, when every interval of the pre-E phase has been
// applied at its home and no post-E flush has been (the capture gate
// defers them), so the union of the homes' snapshots plus the manager's
// snapshot is exactly the LRC-committed state at the barrier cut.
//
// Files importing this package alongside the builtin recover() should
// alias it (the import shadows the builtin in that file).
package recover

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNotFound is returned when a store holds no snapshot for the
// requested episode.
var ErrNotFound = errors.New("recover: snapshot not found")

// PageImage is one checkpointed shared page: its committed contents at
// the barrier cut and the per-writer interval versions applied to it
// (the home's homeVT), from which the restored home rebuilds its
// version accounting.
type PageImage struct {
	Page   int32
	Data   []byte
	HomeVT []int32
}

// NodeSnapshot is one node's share of a checkpoint: the pages it homes
// and the merged vector time of the barrier episode.
type NodeSnapshot struct {
	Episode int64
	Node    int32
	VT      []int32
	Pages   []PageImage
}

// Bytes returns the snapshot's payload size (page data only), the
// number the CheckpointBytes counter accumulates.
func (s *NodeSnapshot) Bytes() int64 {
	var n int64
	for i := range s.Pages {
		n += int64(len(s.Pages[i].Data))
	}
	return n
}

// LogRec is one interval's write notices in the manager's global log
// (the neutral form of the manager's internal record).
type LogRec struct {
	Pages []int32
}

// ManagerSnapshot is the manager's share of a checkpoint: the barrier
// episode counter, the merged vector time, each lock's release-time
// vector time, and the global interval log up to the cut.
type ManagerSnapshot struct {
	Episode int64
	VT      []int32
	LockVT  [][]int32 // nil entry: lock never released
	Log     [][]LogRec
}

// Store is a checkpoint store. Implementations must be safe for
// concurrent use: the worker goroutines of several nodes write their
// snapshots independently, and the manager's dispatcher reads replicas
// while serving a rejoin.
type Store interface {
	// PutNode stores (or overwrites) a node snapshot.
	PutNode(s *NodeSnapshot) error
	// GetNode returns the snapshot of (episode, node), or ErrNotFound.
	GetNode(episode int64, node int) (*NodeSnapshot, error)
	// LatestNode returns the newest episode stored for node, or false.
	LatestNode(node int) (int64, bool)
	// PutManager stores (or overwrites) a manager snapshot.
	PutManager(s *ManagerSnapshot) error
	// GetManager returns the manager snapshot of episode, or ErrNotFound.
	GetManager(episode int64) (*ManagerSnapshot, error)
	// Prune drops all but the newest keep episodes' snapshots.
	Prune(keep int) error
}

// ---- in-memory store ----

// MemStore is the in-process Store used by tests, soaks and the
// supervisor's default configuration.
type MemStore struct {
	mu    sync.Mutex
	nodes map[int64]map[int]*NodeSnapshot
	mgrs  map[int64]*ManagerSnapshot
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		nodes: make(map[int64]map[int]*NodeSnapshot),
		mgrs:  make(map[int64]*ManagerSnapshot),
	}
}

// PutNode implements Store. The snapshot is deep-copied, so the caller
// may keep mutating its buffers.
func (st *MemStore) PutNode(s *NodeSnapshot) error {
	cp := cloneNode(s)
	st.mu.Lock()
	defer st.mu.Unlock()
	m := st.nodes[s.Episode]
	if m == nil {
		m = make(map[int]*NodeSnapshot)
		st.nodes[s.Episode] = m
	}
	m[int(s.Node)] = cp
	return nil
}

// GetNode implements Store.
func (st *MemStore) GetNode(episode int64, node int) (*NodeSnapshot, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.nodes[episode][node]
	if s == nil {
		return nil, fmt.Errorf("%w: episode %d node %d", ErrNotFound, episode, node)
	}
	return cloneNode(s), nil
}

// LatestNode implements Store.
func (st *MemStore) LatestNode(node int) (int64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	best, ok := int64(0), false
	for ep, m := range st.nodes {
		if m[node] != nil && (!ok || ep > best) {
			best, ok = ep, true
		}
	}
	return best, ok
}

// PutManager implements Store.
func (st *MemStore) PutManager(s *ManagerSnapshot) error {
	cp := cloneManager(s)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.mgrs[s.Episode] = cp
	return nil
}

// GetManager implements Store.
func (st *MemStore) GetManager(episode int64) (*ManagerSnapshot, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.mgrs[episode]
	if s == nil {
		return nil, fmt.Errorf("%w: episode %d manager", ErrNotFound, episode)
	}
	return cloneManager(s), nil
}

// Prune implements Store.
func (st *MemStore) Prune(keep int) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	eps := make(map[int64]bool)
	for ep := range st.nodes {
		eps[ep] = true
	}
	for ep := range st.mgrs {
		eps[ep] = true
	}
	for _, ep := range pruneList(eps, keep) {
		delete(st.nodes, ep)
		delete(st.mgrs, ep)
	}
	return nil
}

// pruneList returns the episodes to drop: all but the newest keep.
func pruneList(eps map[int64]bool, keep int) []int64 {
	all := make([]int64, 0, len(eps))
	for ep := range eps {
		all = append(all, ep)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	if len(all) <= keep {
		return nil
	}
	return all[keep:]
}

func cloneNode(s *NodeSnapshot) *NodeSnapshot {
	cp := &NodeSnapshot{Episode: s.Episode, Node: s.Node, VT: cloneI32(s.VT)}
	cp.Pages = make([]PageImage, len(s.Pages))
	for i, p := range s.Pages {
		cp.Pages[i] = PageImage{Page: p.Page, Data: append([]byte(nil), p.Data...), HomeVT: cloneI32(p.HomeVT)}
	}
	return cp
}

func cloneManager(s *ManagerSnapshot) *ManagerSnapshot {
	cp := &ManagerSnapshot{Episode: s.Episode, VT: cloneI32(s.VT)}
	cp.LockVT = make([][]int32, len(s.LockVT))
	for i, vt := range s.LockVT {
		cp.LockVT[i] = cloneI32(vt)
	}
	cp.Log = make([][]LogRec, len(s.Log))
	for w, recs := range s.Log {
		cp.Log[w] = make([]LogRec, len(recs))
		for i, r := range recs {
			cp.Log[w][i] = LogRec{Pages: cloneI32(r.Pages)}
		}
	}
	return cp
}

func cloneI32(v []int32) []int32 {
	if v == nil {
		return nil
	}
	return append([]int32(nil), v...)
}
