package recover

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// DirStore is an on-disk Store: one file per snapshot under a
// directory, named ep<episode>-node<k>.ckpt / ep<episode>-mgr.ckpt.
// Writes go through a temp file and rename, so a crash mid-write never
// leaves a truncated snapshot behind a valid name.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

func (st *DirStore) nodePath(episode int64, node int) string {
	return filepath.Join(st.dir, fmt.Sprintf("ep%d-node%d.ckpt", episode, node))
}

func (st *DirStore) mgrPath(episode int64) string {
	return filepath.Join(st.dir, fmt.Sprintf("ep%d-mgr.ckpt", episode))
}

func (st *DirStore) write(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	return nil
}

// PutNode implements Store.
func (st *DirStore) PutNode(s *NodeSnapshot) error {
	return st.write(st.nodePath(s.Episode, int(s.Node)), EncodeNode(s))
}

// GetNode implements Store.
func (st *DirStore) GetNode(episode int64, node int) (*NodeSnapshot, error) {
	b, err := os.ReadFile(st.nodePath(episode, node))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: episode %d node %d", ErrNotFound, episode, node)
	}
	if err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	return DecodeNode(b)
}

// LatestNode implements Store.
func (st *DirStore) LatestNode(node int) (int64, bool) {
	best, ok := int64(0), false
	for _, ep := range st.episodes() {
		if _, err := os.Stat(st.nodePath(ep, node)); err == nil && (!ok || ep > best) {
			best, ok = ep, true
		}
	}
	return best, ok
}

// PutManager implements Store.
func (st *DirStore) PutManager(s *ManagerSnapshot) error {
	return st.write(st.mgrPath(s.Episode), EncodeManager(s))
}

// GetManager implements Store.
func (st *DirStore) GetManager(episode int64) (*ManagerSnapshot, error) {
	b, err := os.ReadFile(st.mgrPath(episode))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: episode %d manager", ErrNotFound, episode)
	}
	if err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	return DecodeManager(b)
}

// Prune implements Store.
func (st *DirStore) Prune(keep int) error {
	eps := st.episodes()
	sort.Slice(eps, func(i, j int) bool { return eps[i] > eps[j] })
	if len(eps) <= keep {
		return nil
	}
	drop := make(map[int64]bool)
	for _, ep := range eps[keep:] {
		drop[ep] = true
	}
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	for _, e := range ents {
		if ep, ok := episodeOf(e.Name()); ok && drop[ep] {
			if err := os.Remove(filepath.Join(st.dir, e.Name())); err != nil {
				return fmt.Errorf("recover: %w", err)
			}
		}
	}
	return nil
}

// episodes lists the distinct episodes present in the directory.
func (st *DirStore) episodes() []int64 {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	seen := make(map[int64]bool)
	for _, e := range ents {
		if ep, ok := episodeOf(e.Name()); ok {
			seen[ep] = true
		}
	}
	out := make([]int64, 0, len(seen))
	for ep := range seen {
		out = append(out, ep)
	}
	return out
}

// episodeOf parses the episode out of a snapshot file name.
func episodeOf(name string) (int64, bool) {
	if !strings.HasPrefix(name, "ep") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	rest := name[2:]
	i := strings.IndexByte(rest, '-')
	if i < 0 {
		return 0, false
	}
	ep, err := strconv.ParseInt(rest[:i], 10, 64)
	if err != nil {
		return 0, false
	}
	return ep, true
}
