package recover

import (
	"encoding/binary"
	"fmt"
)

// The snapshot files' binary format: a 4-byte magic, a format version,
// then the snapshot fields in little-endian fixed-width encoding (the
// same conventions as the wire codec). Decode is strict and total.
const (
	nodeMagic    = "LRCN"
	managerMagic = "LRCM"
	codecVersion = 1
)

// maxSnapshot bounds the decodable snapshot size, mirroring the wire
// codec's MaxFrame discipline.
const maxSnapshot = 1 << 30

// EncodeNode serializes a node snapshot.
func EncodeNode(s *NodeSnapshot) []byte {
	w := swriter{b: make([]byte, 0, 64+int(s.Bytes()))}
	w.b = append(w.b, nodeMagic...)
	w.u32(codecVersion)
	w.i64(s.Episode)
	w.i32(s.Node)
	w.i32slice(s.VT)
	w.u32(uint32(len(s.Pages)))
	for i := range s.Pages {
		p := &s.Pages[i]
		w.i32(p.Page)
		w.bytes(p.Data)
		w.i32slice(p.HomeVT)
	}
	return w.b
}

// DecodeNode parses a node snapshot, returning an error — never
// panicking — on malformed input.
func DecodeNode(b []byte) (*NodeSnapshot, error) {
	r, err := newReader(b, nodeMagic)
	if err != nil {
		return nil, err
	}
	s := &NodeSnapshot{}
	s.Episode = r.i64()
	s.Node = r.i32()
	s.VT = r.i32slice()
	n := r.count(12)
	for i := 0; i < n && r.err == nil; i++ {
		var p PageImage
		p.Page = r.i32()
		p.Data = r.bytes()
		p.HomeVT = r.i32slice()
		s.Pages = append(s.Pages, p)
	}
	return s, r.fin()
}

// EncodeManager serializes a manager snapshot.
func EncodeManager(s *ManagerSnapshot) []byte {
	w := swriter{b: make([]byte, 0, 256)}
	w.b = append(w.b, managerMagic...)
	w.u32(codecVersion)
	w.i64(s.Episode)
	w.i32slice(s.VT)
	w.u32(uint32(len(s.LockVT)))
	for _, vt := range s.LockVT {
		if vt == nil {
			w.u8(0)
			continue
		}
		w.u8(1)
		w.i32slice(vt)
	}
	w.u32(uint32(len(s.Log)))
	for _, recs := range s.Log {
		w.u32(uint32(len(recs)))
		for _, rec := range recs {
			w.i32slice(rec.Pages)
		}
	}
	return w.b
}

// DecodeManager parses a manager snapshot.
func DecodeManager(b []byte) (*ManagerSnapshot, error) {
	r, err := newReader(b, managerMagic)
	if err != nil {
		return nil, err
	}
	s := &ManagerSnapshot{}
	s.Episode = r.i64()
	s.VT = r.i32slice()
	nl := r.count(1)
	for i := 0; i < nl && r.err == nil; i++ {
		if r.u8() == 1 {
			s.LockVT = append(s.LockVT, r.i32slice())
		} else {
			s.LockVT = append(s.LockVT, nil)
		}
	}
	nw := r.count(4)
	for w := 0; w < nw && r.err == nil; w++ {
		ni := r.count(4)
		recs := make([]LogRec, 0, ni)
		for i := 0; i < ni && r.err == nil; i++ {
			recs = append(recs, LogRec{Pages: r.i32slice()})
		}
		s.Log = append(s.Log, recs)
	}
	return s, r.fin()
}

// ---- writer ----

type swriter struct{ b []byte }

func (w *swriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *swriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *swriter) i32(v int32)  { w.u32(uint32(v)) }
func (w *swriter) i64(v int64)  { w.b = binary.LittleEndian.AppendUint64(w.b, uint64(v)) }

func (w *swriter) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}

func (w *swriter) i32slice(v []int32) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.i32(x)
	}
}

// ---- reader ----

type sreader struct {
	b   []byte
	off int
	err error
}

func newReader(b []byte, magic string) (*sreader, error) {
	if len(b) > maxSnapshot {
		return nil, fmt.Errorf("recover: snapshot of %d bytes exceeds bound", len(b))
	}
	if len(b) < len(magic)+4 || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("recover: bad snapshot magic")
	}
	r := &sreader{b: b, off: len(magic)}
	if v := r.u32(); r.err == nil && v != codecVersion {
		return nil, fmt.Errorf("recover: unknown snapshot version %d", v)
	}
	return r, r.err
}

func (r *sreader) fin() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("recover: %d trailing bytes in snapshot", len(r.b)-r.off)
	}
	return nil
}

func (r *sreader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.b)-r.off < n {
		r.err = fmt.Errorf("recover: truncated snapshot at offset %d", r.off)
		return false
	}
	return true
}

func (r *sreader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *sreader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *sreader) i32() int32 { return int32(r.u32()) }

func (r *sreader) i64() int64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return int64(v)
}

// count validates an element count against the bytes remaining, assuming
// at least minBytes per element.
func (r *sreader) count(minBytes int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(minBytes) > int64(len(r.b)-r.off) {
		r.err = fmt.Errorf("recover: oversized count %d in snapshot", n)
		return 0
	}
	return int(n)
}

func (r *sreader) bytes() []byte {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b[r.off:r.off+n])
	r.off += n
	return v
}

func (r *sreader) i32slice() []int32 {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = r.i32()
	}
	return v
}
