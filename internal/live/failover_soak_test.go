package live

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
	"lrcdsm/internal/live/chaos"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/live/wire"
	"lrcdsm/internal/page"
)

// failoverConfig is chaosConfig with a heartbeat timeout small enough
// that a leader election (randomized timeout derived from it) resolves
// in well under a second, instead of the soak default's tens of
// seconds. Liveness false positives are kept at bay by the 50ms
// heartbeat beacon.
func failoverConfig(nodes int, prot core.Protocol) Config {
	cfg := chaosConfig(nodes, prot, nil)
	cfg.HeartbeatTimeout = 2 * time.Second
	return cfg
}

// runAppFailover executes one workload on a supervised quorum cluster
// under a crash schedule that may kill node 0 — the coordinator — and
// returns the finished cluster and stats.
func runAppFailover(t *testing.T, name string, prot core.Protocol, nodes int,
	inner transport.Network, fcfg chaos.Config, opts RecoverOptions) (*Cluster, *Stats, *chaos.Net) {
	t.Helper()
	app, err := harness.NewApp(name, harness.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	var cl *Cluster
	fcfg.OnCrash = func(n int, d time.Duration) { cl.Kill(n, d) }
	nw := chaos.WrapNet(inner, fcfg)
	cfg := failoverConfig(nodes, prot)
	cfg.Net = nw
	cl, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app.Configure(cl)
	stats, err := cl.RunSupervised(func(w core.Worker) { app.Worker(w) }, opts)
	if err != nil {
		t.Fatalf("%s/%v/%dn failover run: %v (faults %+v)", name, prot, nodes, err, nw.Counters())
	}
	if err := app.Verify(cl); err != nil {
		t.Fatalf("%s/%v/%dn failed verification after failover: %v", name, prot, nodes, err)
	}
	return cl, stats, nw
}

// failoverChecks asserts the run actually exercised a coordinator
// failover: the kill fired, the supervisor restarted the victim, and
// the surviving replicas elected a new leader.
func failoverChecks(t *testing.T, stats *Stats, nw *chaos.Net) {
	t.Helper()
	if nw.Counters().Crashes == 0 {
		t.Fatal("crash schedule fired no kills — the soak exercised nothing")
	}
	if stats.Restarts == 0 {
		t.Error("kill fired but the supervisor recorded no restarts")
	}
	if stats.Total.ConsensusElections == 0 {
		t.Error("coordinator died but no replica recorded an election")
	}
	if stats.Total.ConsensusCommits == 0 {
		t.Error("replicated manager recorded no committed commands")
	}
	t.Logf("failover: terms=%d elections=%d commits=%d redirects=%d restarts=%d",
		stats.Total.ConsensusTerms, stats.Total.ConsensusElections,
		stats.Total.ConsensusCommits, stats.Total.LeaderRedirects, stats.Restarts)
}

// TestFailoverSoakInproc is the tentpole's end-to-end claim: all four
// paper workloads, both protocols, on a 4-node quorum cluster whose
// node 0 — barrier root, static coordinator, bootstrap leader — is
// killed mid-run. The survivors elect a new leader, roll the cluster
// back to the stable checkpoint committed on the replicated log,
// restart node 0, and still produce results byte-equal to a fault-free
// 1-node reference.
func TestFailoverSoakInproc(t *testing.T) {
	// Local send counts on node 0 include its consensus append beacons,
	// so even the lock-only apps (whose node 0 may otherwise go quiet)
	// reach the threshold while their run is in flight.
	atOp := map[string]int64{"jacobi": 30, "water": 100, "cholesky": 600, "tsp": 10}
	for _, name := range harness.AppNames {
		for _, prot := range []core.Protocol{core.LI, core.LH} {
			name, prot := name, prot
			t.Run(fmt.Sprintf("%s/%v", name, prot), func(t *testing.T) {
				t.Parallel()
				fcfg := chaos.Config{Seed: 11, Crashes: []chaos.Crash{
					{Node: 0, AtOp: atOp[name], Local: true, RestartAfter: 5 * time.Millisecond},
				}}
				opts := RecoverOptions{
					MaxRestarts:     4,
					CheckpointEvery: 1,
					Replicate:       true,
					Seed:            11,
				}
				got, stats, nw := runAppFailover(t, name, prot, 4, transport.NewInprocNet(4), fcfg, opts)
				failoverChecks(t, stats, nw)
				compareToReference(t, name, prot, got)
			})
		}
	}
}

// ckptConfirmKiller kills node 0 the moment the nth checkpoint
// confirmation leaves a surviving node's transport — the tightest
// window in the recovery protocol: the confirmation is committed on
// the quorum (or lost with the leader) while the sender blocks on the
// ack, so the failover must either serve the retry from the new leader
// or re-commit it idempotently.
type ckptConfirmKiller struct {
	kill  func()
	n     int64
	seen  atomic.Int64
	fired atomic.Bool
}

func (k *ckptConfirmKiller) MsgSent(from, to int, kind wire.Kind, bytes int) {
	if kind != wire.KCkptDone || from == 0 {
		return
	}
	if k.seen.Add(1) >= k.n && k.fired.CompareAndSwap(false, true) {
		k.kill()
	}
}

func (k *ckptConfirmKiller) PageFault(int, page.ID)                 {}
func (k *ckptConfirmKiller) IntervalClosed(int, int32, []page.ID)   {}
func (k *ckptConfirmKiller) DiffApplied(int, page.ID, int, int32)   {}
func (k *ckptConfirmKiller) Invalidated(int, page.ID)               {}
func (k *ckptConfirmKiller) BarrierDeparted(int, int64)             {}

// TestFailoverMidConfirm kills the coordinator exactly when a
// checkpoint confirmation is in flight to it, and the run must still
// finish byte-identical to the reference.
func TestFailoverMidConfirm(t *testing.T) {
	app, err := harness.NewApp("jacobi", harness.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	var cl *Cluster
	killer := &ckptConfirmKiller{n: 5}
	killer.kill = func() { cl.Kill(0, 5*time.Millisecond) }
	nw := chaos.WrapNet(transport.NewInprocNet(4), chaos.Config{Seed: 12})
	cfg := failoverConfig(4, core.LH)
	cfg.Net = nw
	cfg.Observer = killer
	cl, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app.Configure(cl)
	stats, err := cl.RunSupervised(func(w core.Worker) { app.Worker(w) }, RecoverOptions{
		MaxRestarts: 4, CheckpointEvery: 1, Replicate: true, Seed: 12,
	})
	if err != nil {
		t.Fatalf("jacobi/LH mid-confirm failover: %v", err)
	}
	if err := app.Verify(cl); err != nil {
		t.Fatalf("verification after mid-confirm failover: %v", err)
	}
	if !killer.fired.Load() {
		t.Fatal("run finished before the fifth checkpoint confirmation — kill never fired")
	}
	if stats.Restarts == 0 {
		t.Error("kill fired but the supervisor recorded no restarts")
	}
	if stats.Total.ConsensusElections == 0 {
		t.Error("coordinator died mid-confirm but no replica recorded an election")
	}
	compareToReference(t, "jacobi", core.LH, cl)
}

// TestFailoverSoakTCP repeats a coordinator kill over real loopback
// sockets with frame faults in the mix, so leader re-resolution and
// the rejoin handshake run against TCP re-dial.
func TestFailoverSoakTCP(t *testing.T) {
	inner, err := transport.NewTCPLoopbackNet(4, transport.TCPOptions{
		DialBackoff:  time.Millisecond,
		DialAttempts: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	fcfg := chaos.Config{
		Seed:  13,
		DropP: 0.01,
		DupP:  0.02,
		Crashes: []chaos.Crash{
			{Node: 0, AtOp: 30, Local: true, RestartAfter: 5 * time.Millisecond},
		},
	}
	opts := RecoverOptions{
		MaxRestarts:     4,
		CheckpointEvery: 1,
		Replicate:       true,
		Seed:            13,
	}
	got, stats, nw := runAppFailover(t, "jacobi", core.LH, 4, inner, fcfg, opts)
	failoverChecks(t, stats, nw)
	compareToReference(t, "jacobi", core.LH, got)
}
