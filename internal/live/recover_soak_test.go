package live

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
	"lrcdsm/internal/live/chaos"
	"lrcdsm/internal/live/node"
	ckpt "lrcdsm/internal/live/recover"
	"lrcdsm/internal/live/transport"
)

// crashSchedule places two mid-run kills of node 2 (never the manager)
// per workload, calibrated to each app's cross-node message volume so
// both fire while real work is in flight. (The op counter only sees
// frames that traverse a transport — the manager node's RPCs to itself
// bypass it — so lock-heavy apps get low thresholds.)
//
// tsp is the odd one out: its satellite workers finish after a handful
// of RPCs while node 0 grinds on, so a cluster-wide threshold can land
// after the victim's worker already returned — a kill the supervisor
// rightly ignores. Counting the victim's own sends (Local) pins the
// first kill inside its worker and the second inside rejoin/replay.
func crashSchedule(app string) []chaos.Crash {
	if app == "tsp" {
		return []chaos.Crash{
			{Node: 2, AtOp: 1, Local: true, RestartAfter: 5 * time.Millisecond},
			{Node: 2, AtOp: 6, Local: true, RestartAfter: 5 * time.Millisecond},
		}
	}
	ops := map[string][2]int64{
		"jacobi":   {25, 50},
		"water":    {1000, 2200},
		"cholesky": {1000, 4000},
	}[app]
	return []chaos.Crash{
		{Node: 2, AtOp: ops[0], RestartAfter: 5 * time.Millisecond},
		{Node: 2, AtOp: ops[1], RestartAfter: 5 * time.Millisecond},
	}
}

// runAppSupervised executes one workload under a crash schedule on a
// supervised cluster and returns the finished cluster and stats.
func runAppSupervised(t *testing.T, name string, prot core.Protocol, nodes int,
	inner transport.Network, fcfg chaos.Config, opts RecoverOptions) (*Cluster, *Stats, *chaos.Net) {
	t.Helper()
	app, err := harness.NewApp(name, harness.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	var cl *Cluster
	fcfg.OnCrash = func(n int, d time.Duration) { cl.Kill(n, d) }
	nw := chaos.WrapNet(inner, fcfg)
	cfg := chaosConfig(nodes, prot, nil)
	cfg.Net = nw
	cl, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app.Configure(cl)
	stats, err := cl.RunSupervised(func(w core.Worker) { app.Worker(w) }, opts)
	if err != nil {
		t.Fatalf("%s/%v/%dn supervised run: %v (faults %+v)", name, prot, nodes, err, nw.Counters())
	}
	if err := app.Verify(cl); err != nil {
		t.Fatalf("%s/%v/%dn failed verification after recovery: %v", name, prot, nodes, err)
	}
	return cl, stats, nw
}

// TestRecoverySoakInproc is the tentpole's end-to-end claim: all four
// paper workloads, both protocols, on a 4-node cluster whose node 2 is
// killed twice mid-run — and the cluster checkpoints, rolls back,
// restarts the victim and still produces results byte-equal to a
// fault-free 1-node reference.
func TestRecoverySoakInproc(t *testing.T) {
	for _, name := range harness.AppNames {
		for _, prot := range []core.Protocol{core.LI, core.LH} {
			name, prot := name, prot
			t.Run(fmt.Sprintf("%s/%v", name, prot), func(t *testing.T) {
				t.Parallel()
				fcfg := chaos.Config{Seed: 1, Crashes: crashSchedule(name)}
				opts := RecoverOptions{
					MaxRestarts:     4,
					CheckpointEvery: 1,
					Replicate:       true,
					Seed:            1,
				}
				got, stats, nw := runAppSupervised(t, name, prot, 4, transport.NewInprocNet(4), fcfg, opts)
				if c := nw.Counters().Crashes; c == 0 {
					t.Fatal("crash schedule fired no kills — the soak exercised nothing")
				}
				if stats.Restarts == 0 {
					t.Error("kills fired but the supervisor recorded no restarts")
				}
				if stats.RecoveryNs == 0 && stats.Restarts > 0 {
					t.Error("restarts recorded but no recovery time")
				}
				// Barrier apps checkpoint at every episode; the lock-only
				// apps (no barriers) legitimately roll back to the initial
				// image instead.
				if name == "jacobi" || name == "water" {
					if stats.Total.CheckpointsTaken == 0 {
						t.Error("barrier app completed recovery without taking any checkpoints")
					}
					if stats.Total.CheckpointBytes == 0 {
						t.Error("checkpoints taken but no bytes recorded")
					}
				}
				compareToReference(t, name, prot, got)
			})
		}
	}
}

// TestRecoverySoakTCP repeats the crash-recovery soak over real loopback
// sockets with frame faults in the mix, so rejoin runs against the TCP
// boot-id handshake and re-dial path.
func TestRecoverySoakTCP(t *testing.T) {
	for _, tc := range []struct {
		app  string
		prot core.Protocol
	}{
		{"jacobi", core.LH},
		{"tsp", core.LI},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%s/%v", tc.app, tc.prot), func(t *testing.T) {
			t.Parallel()
			inner, err := transport.NewTCPLoopbackNet(4, transport.TCPOptions{
				DialBackoff:  time.Millisecond,
				DialAttempts: 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			fcfg := chaos.Config{
				Seed:     2,
				DropP:    0.01,
				DupP:     0.02,
				Crashes:  crashSchedule(tc.app),
			}
			opts := RecoverOptions{
				MaxRestarts:     4,
				CheckpointEvery: 1,
				Replicate:       true,
				Seed:            2,
			}
			got, stats, nw := runAppSupervised(t, tc.app, tc.prot, 4, inner, fcfg, opts)
			if nw.Counters().Crashes == 0 {
				t.Fatal("crash schedule fired no kills over TCP")
			}
			if stats.Restarts == 0 {
				t.Error("kills fired but the supervisor recorded no restarts")
			}
			compareToReference(t, tc.app, tc.prot, got)
		})
	}
}

// TestRecoveryLostStore kills a node AND discards its checkpoint store,
// forcing the rejoin to stream the stable snapshot back from the
// manager's replica chunk by chunk.
func TestRecoveryLostStore(t *testing.T) {
	fcfg := chaos.Config{Seed: 3, Crashes: []chaos.Crash{
		{Node: 2, AtOp: 50, RestartAfter: 5 * time.Millisecond},
	}}
	opts := RecoverOptions{
		MaxRestarts:      4,
		CheckpointEvery:  1,
		Replicate:        true,
		Seed:             3,
		LoseStoreOnCrash: true,
	}
	got, stats, nw := runAppSupervised(t, "jacobi", core.LH, 4, transport.NewInprocNet(4), fcfg, opts)
	if nw.Counters().Crashes == 0 {
		t.Fatal("crash schedule fired no kills")
	}
	if stats.Restarts == 0 {
		t.Error("kill fired but no restart recorded")
	}
	compareToReference(t, "jacobi", core.LH, got)
}

// TestRecoveryDirStore runs one crash-recovery cycle with on-disk
// checkpoint stores, proving the serialized snapshot round-trips through
// a real filesystem during recovery.
func TestRecoveryDirStore(t *testing.T) {
	stores := make([]ckpt.Store, 4)
	for i := range stores {
		s, err := ckpt.NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	fcfg := chaos.Config{Seed: 4, Crashes: []chaos.Crash{
		{Node: 1, AtOp: 40, RestartAfter: 0},
	}}
	opts := RecoverOptions{
		MaxRestarts:     2,
		CheckpointEvery: 1,
		Stores:          stores,
		Seed:            4,
	}
	got, stats, _ := runAppSupervised(t, "jacobi", core.LI, 4, transport.NewInprocNet(4), fcfg, opts)
	if stats.Restarts == 0 {
		t.Error("kill fired but no restart recorded")
	}
	compareToReference(t, "jacobi", core.LI, got)
}

// TestRecoveryLockHomeCrash kills node 1 — the home of tsp's min-cost
// lock (lock 1 homes at 1 % 4) — twice, mid-handoff traffic, so the
// rollback must rebuild a lock home whose owner pointer and grant
// caches died with it. The recovered run must still match the
// fault-free 1-node reference byte for byte.
func TestRecoveryLockHomeCrash(t *testing.T) {
	for _, prot := range []core.Protocol{core.LI, core.LH} {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			t.Parallel()
			fcfg := chaos.Config{Seed: 8, Crashes: []chaos.Crash{
				{Node: 1, AtOp: 1, Local: true, RestartAfter: 5 * time.Millisecond},
				{Node: 1, AtOp: 6, Local: true, RestartAfter: 5 * time.Millisecond},
			}}
			opts := RecoverOptions{
				MaxRestarts:     4,
				CheckpointEvery: 1,
				Replicate:       true,
				Seed:            8,
			}
			got, stats, nw := runAppSupervised(t, "tsp", prot, 4, transport.NewInprocNet(4), fcfg, opts)
			if nw.Counters().Crashes == 0 {
				t.Fatal("crash schedule fired no kills")
			}
			if stats.Restarts == 0 {
				t.Error("kills fired but the supervisor recorded no restarts")
			}
			compareToReference(t, "tsp", prot, got)
		})
	}
}

// TestPartitionHealSupervised runs a supervised cluster through a
// transient partition window that heals on its own: retransmission must
// ride it out without the supervisor burning a restart.
func TestPartitionHealSupervised(t *testing.T) {
	fcfg := chaos.Config{
		Seed: 5,
		Partitions: []chaos.Partition{
			{A: 0, B: 3, From: 50 * time.Millisecond, Dur: 200 * time.Millisecond},
		},
	}
	opts := RecoverOptions{MaxRestarts: 2, CheckpointEvery: 1, Seed: 5}
	got, stats, _ := runAppSupervised(t, "water", core.LH, 4, transport.NewInprocNet(4), fcfg, opts)
	if stats.Restarts != 0 {
		t.Errorf("transient partition burned %d restarts; retries should have ridden it out", stats.Restarts)
	}
	compareToReference(t, "water", core.LH, got)
}

// TestRestartBudgetExhausted is the degradation claim: with the restart
// budget set to zero, a killed node must produce the same structured
// PeerDownError abort a recovery-free cluster reports — quickly, via
// heartbeat detection, not by riding out the RPC deadline.
func TestRestartBudgetExhausted(t *testing.T) {
	app, err := harness.NewApp("jacobi", harness.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	var cl *Cluster
	fcfg := chaos.Config{
		Seed:    6,
		Crashes: []chaos.Crash{{Node: 2, AtOp: 25}},
		OnCrash: func(n int, d time.Duration) { cl.Kill(n, d) },
	}
	nw := chaos.WrapNet(transport.NewInprocNet(4), fcfg)
	cfg := chaosConfig(4, core.LH, nil)
	cfg.Net = nw
	cfg.RPCTimeout = 30 * time.Second
	cfg.HeartbeatInterval = 25 * time.Millisecond
	cfg.HeartbeatTimeout = 250 * time.Millisecond
	cl, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app.Configure(cl)

	t0 := time.Now()
	_, runErr := cl.RunSupervised(func(w core.Worker) { app.Worker(w) }, RecoverOptions{MaxRestarts: 0})
	elapsed := time.Since(t0)

	if runErr == nil {
		t.Fatal("killed node with zero restart budget reported success")
	}
	var pd *node.PeerDownError
	if !errors.As(runErr, &pd) {
		t.Fatalf("want *node.PeerDownError, got %T: %v", runErr, runErr)
	}
	if pd.Node != 2 {
		t.Errorf("suspect node = %d, want 2 (the killed node)", pd.Node)
	}
	if elapsed > 10*time.Second {
		t.Errorf("abort took %v — heartbeat detection did not convert the kill", elapsed)
	}
	t.Logf("degraded to structured abort in %v: %v", elapsed, runErr)
}
