package live

import (
	"fmt"
	"testing"

	"lrcdsm/internal/check"
	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
)

// TestTaskQueueOnInprocCluster runs the promoted task-queue workload on
// the live runtime — 4 nodes against a 1-node reference, both
// protocols. The queue is pure lock traffic (two acquires per task), so
// this doubles as a stress of the decentralized lock plane under
// self-scheduling contention.
func TestTaskQueueOnInprocCluster(t *testing.T) {
	for _, prot := range []core.Protocol{core.LI, core.LH} {
		prot := prot
		t.Run(fmt.Sprintf("%v", prot), func(t *testing.T) {
			t.Parallel()
			got, stats := runApp(t, "taskqueue", prot, 4, nil)
			ref, _ := runApp(t, "taskqueue", prot, 1, nil)

			app, err := harness.NewApp("taskqueue", harness.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			ra, ok := app.(harness.ResultApp)
			if !ok {
				t.Fatal("taskqueue does not declare result regions")
			}
			if vs := check.CompareRegions(got, ref, ra.ResultRegions()); len(vs) > 0 {
				for _, v := range vs {
					t.Errorf("region mismatch: %s", v.String())
				}
			}
			if stats.Total.LockAcquires == 0 {
				t.Error("task queue ran without lock acquires")
			}
		})
	}
}
