package live

import (
	"reflect"
	"testing"

	"lrcdsm/internal/live/node"
)

// TestAddStatsAccumulatesEveryCounter guards the hand-maintained sum in
// addStats against drift: a counter added to node.Stats — like the
// consensus_terms/elections/commits and leader_redirects counters the
// replicated control plane reports — but not to addStats would silently
// vanish from cluster totals (and from dsmd -json). Every field gets a
// distinct nonzero value; the accumulated total must carry all of them.
func TestAddStatsAccumulatesEveryCounter(t *testing.T) {
	var src node.Stats
	rv := reflect.ValueOf(&src).Elem()
	for i := 0; i < rv.NumField(); i++ {
		switch f := rv.Field(i); f.Kind() {
		case reflect.Int64, reflect.Int:
			f.SetInt(int64(i + 1))
		default:
			t.Fatalf("node.Stats field %s has kind %s; extend this test for it",
				rv.Type().Field(i).Name, f.Kind())
		}
	}
	var dst node.Stats
	addStats(&dst, &src)
	addStats(&dst, &src)
	dv := reflect.ValueOf(&dst).Elem()
	for i := 0; i < rv.NumField(); i++ {
		if rv.Type().Field(i).Name == "Node" {
			continue // identity, not a counter — totals keep their own
		}
		if got, want := dv.Field(i).Int(), 2*rv.Field(i).Int(); got != want {
			t.Errorf("addStats drops %s: got %d, want %d (add it to the sum)",
				rv.Type().Field(i).Name, got, want)
		}
	}
}
