package live

import (
	"fmt"
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
)

// TestAppsAtScale runs all four paper workloads on 8- and 16-node
// in-process clusters under both protocols and compares the declared
// result regions against a 1-node reference of the same engine. These
// sizes exist because of the decentralized synchronization plane: with
// the old node-0 manager every lock and barrier serialized through one
// dispatcher and 16-node runs were not worth having. The tree barrier
// (depth 4 at 16 nodes) and home-distributed locks are what this test
// holds to the same byte-exactness bar as the 4-node runs.
func TestAppsAtScale(t *testing.T) {
	for _, nodes := range []int{8, 16} {
		for _, name := range harness.AppNames {
			for _, prot := range []core.Protocol{core.LI, core.LH} {
				nodes, name, prot := nodes, name, prot
				t.Run(fmt.Sprintf("%dn/%s/%v", nodes, name, prot), func(t *testing.T) {
					t.Parallel()
					got, stats := runApp(t, name, prot, nodes, nil)
					if stats.Total.BarrierEpisodes == 0 && stats.Total.LockAcquires == 0 {
						t.Errorf("%d-node run synchronized nothing", nodes)
					}
					compareToReference(t, name, prot, got)
				})
			}
		}
	}
}
