package transport

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPNet is the Network over TCP transports: it remembers the cluster's
// address list so a crashed node's transport can be rebuilt on the same
// address with a bumped boot id.
type TCPNet struct {
	addrs []string
	opts  TCPOptions

	mu    sync.Mutex
	nodes []*TCP
	boots []uint32
}

// NewTCPLoopbackNet builds an n-node loopback TCP network whose nodes
// can be rejoined after a crash.
func NewTCPLoopbackNet(n int, opts TCPOptions) (*TCPNet, error) {
	ts, err := NewTCPLoopback(n, opts)
	if err != nil {
		return nil, err
	}
	nw := &TCPNet{opts: opts, nodes: make([]*TCP, n), boots: make([]uint32, n), addrs: make([]string, n)}
	for i, t := range ts {
		nw.nodes[i] = t.(*TCP)
		nw.addrs[i] = nw.nodes[i].Addr()
	}
	return nw, nil
}

// Transports implements Network.
func (nw *TCPNet) Transports() []Transport {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	ts := make([]Transport, len(nw.nodes))
	for i, t := range nw.nodes {
		ts[i] = t
	}
	return ts
}

// Rejoin implements Network: it closes node i's transport, rebinds its
// listen address (retrying briefly while the old listener's close
// settles), and returns a fresh incarnation with a bumped boot id.
func (nw *TCPNet) Rejoin(i int) (Transport, error) {
	nw.mu.Lock()
	if i < 0 || i >= len(nw.nodes) {
		nw.mu.Unlock()
		return nil, fmt.Errorf("transport: tcp rejoin of invalid node %d", i)
	}
	nw.nodes[i].Close()
	nw.boots[i]++
	addr := nw.addrs[i] // addrs is immutable after construction
	boot := nw.boots[i]
	nw.mu.Unlock()
	// Rebind with the lock released: the retry loop can sleep for up to a
	// second while the old listener's close settles, and holding mu that
	// long would stall Transports and Close for the whole cluster.
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: rebind %s for node %d: %w", addr, i, err)
	}
	t := newTCPNode(i, nw.addrs, ln, nw.opts, boot)
	nw.mu.Lock()
	nw.nodes[i] = t
	nw.mu.Unlock()
	return t, nil
}

// Close implements Network.
func (nw *TCPNet) Close() error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for _, t := range nw.nodes {
		t.Close()
	}
	return nil
}
