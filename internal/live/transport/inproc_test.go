package transport

import (
	"fmt"
	"sync"
	"testing"
)

func TestInprocDelivery(t *testing.T) {
	ts := NewInprocNetwork(3)
	defer func() {
		for _, x := range ts {
			x.Close()
		}
	}()
	if ts[1].Self() != 1 || ts[1].N() != 3 {
		t.Fatalf("identity: self=%d n=%d", ts[1].Self(), ts[1].N())
	}
	if err := ts[0].Send(2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	f, err := ts[2].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.From != 0 || string(f.Payload) != "hi" {
		t.Fatalf("got frame %+v", f)
	}
}

func TestInprocInvalidPeer(t *testing.T) {
	ts := NewInprocNetwork(2)
	defer ts[0].Close()
	defer ts[1].Close()
	if err := ts[0].Send(0, nil); err == nil {
		t.Error("send to self succeeded")
	}
	if err := ts[0].Send(5, nil); err == nil {
		t.Error("send to out-of-range peer succeeded")
	}
}

// TestInprocOrderingUnderConcurrency checks per-pair FIFO with many
// concurrent senders (run under -race this also exercises the memory
// model of the channel fabric).
func TestInprocOrderingUnderConcurrency(t *testing.T) {
	const n, msgs = 4, 200
	ts := NewInprocNetwork(n)
	defer func() {
		for _, x := range ts {
			x.Close()
		}
	}()
	var wg sync.WaitGroup
	for s := 1; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				if err := ts[s].Send(0, []byte(fmt.Sprintf("%d:%d", s, i))); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	next := make([]int, n)
	for got := 0; got < (n-1)*msgs; got++ {
		f, err := ts[0].Recv()
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%d:%d", f.From, next[f.From])
		if string(f.Payload) != want {
			t.Fatalf("out of order from %d: got %q want %q", f.From, f.Payload, want)
		}
		next[f.From]++
	}
	wg.Wait()
}

func TestInprocClose(t *testing.T) {
	ts := NewInprocNetwork(2)
	ts[1].Close()
	if _, err := ts[1].Recv(); err != ErrClosed {
		t.Fatalf("Recv after close: %v", err)
	}
	// A dead destination loses the frame silently — the protocol layer's
	// retransmission and failure detection handle it — while the sender's
	// own closed transport is an error.
	if err := ts[0].Send(1, []byte("x")); err != nil {
		t.Fatalf("Send to closed peer: %v, want silent drop", err)
	}
	ts[0].Close()
	if err := ts[0].Send(1, []byte("x")); err != ErrClosed {
		t.Fatalf("Send on closed transport: %v, want ErrClosed", err)
	}
}

// TestInprocRejoin replaces a node's transport mid-network: frames sent
// to the old incarnation's inbox are lost, the new incarnation receives
// subsequent traffic, and the old handle stays closed.
func TestInprocRejoin(t *testing.T) {
	nw := NewInprocNet(3)
	defer nw.Close()
	ts := nw.Transports()

	if err := ts[0].Send(1, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	fresh, err := nw.Rejoin(1)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Self() != 1 || fresh.N() != 3 {
		t.Fatalf("rejoined identity: self=%d n=%d", fresh.Self(), fresh.N())
	}
	// The old incarnation drains what it already held, then reports closed;
	// nothing sent after the rejoin reaches it.
	if f, err := ts[1].Recv(); err != nil || string(f.Payload) != "lost" {
		t.Fatalf("old incarnation drain: %v %+v", err, f)
	}
	if _, err := ts[1].Recv(); err != ErrClosed {
		t.Fatalf("old incarnation Recv: %v, want ErrClosed", err)
	}
	if err := ts[0].Send(1, []byte("hello again")); err != nil {
		t.Fatal(err)
	}
	f, err := fresh.Recv()
	if err != nil || string(f.Payload) != "hello again" {
		t.Fatalf("new incarnation recv: %v %+v", err, f)
	}
	// The new incarnation can send, too.
	if err := fresh.Send(0, []byte("back")); err != nil {
		t.Fatal(err)
	}
	if f, err := ts[0].Recv(); err != nil || string(f.Payload) != "back" {
		t.Fatalf("recv from rejoined node: %v %+v", err, f)
	}
}
