package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrame bounds a received frame's claimed length; anything larger is
// treated as a corrupt stream and the connection is dropped.
const maxFrame = 64 << 20

// TCPOptions tunes the TCP transport's dialing and I/O behaviour. The
// zero value selects the defaults.
type TCPOptions struct {
	// DialTimeout bounds one dial attempt (default 2s).
	DialTimeout time.Duration
	// DialBackoff is the delay after the first failed dial attempt; it
	// doubles per retry up to DialMaxBackoff (defaults 20ms / 1s).
	DialBackoff    time.Duration
	DialMaxBackoff time.Duration
	// DialAttempts is the number of connect attempts per Send before the
	// error is surfaced (default 8).
	DialAttempts int
	// WriteTimeout bounds one frame write (default 10s).
	WriteTimeout time.Duration
	// Dial replaces net.DialTimeout, for tests that inject dial failures.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.DialBackoff <= 0 {
		o.DialBackoff = 20 * time.Millisecond
	}
	if o.DialMaxBackoff <= 0 {
		o.DialMaxBackoff = time.Second
	}
	if o.DialAttempts <= 0 {
		o.DialAttempts = 8
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.Dial == nil {
		o.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return o
}

// TCP is the TCP transport of one node. Each ordered peer pair uses one
// outbound connection, established lazily on first Send and re-dialed
// with exponential backoff after failures. Frames carry a per-peer
// sequence number so a retransmission after a dropped connection is
// de-duplicated at the receiver (exactly-once delivery per surviving
// run, at-least-once on the wire).
type TCP struct {
	self  int
	addrs []string
	opts  TCPOptions
	ln    net.Listener

	// boot numbers this transport incarnation (0 for the original). It is
	// carried in the connection hello: a receiver seeing a higher boot id
	// from a peer resets that peer's sequence de-duplication, so a
	// restarted node — whose sequence numbers restart at 1 — is not
	// silently discarded as a replay of its previous life.
	boot uint32

	inbox chan Frame
	done  chan struct{}
	once  sync.Once

	mu    sync.Mutex // guards conns, seq, accepted
	conns map[int]net.Conn
	seq   map[int]uint64
	// sendLocks serializes Sends per destination: a frame's sequence
	// number must reach the wire in sequence order or the receiver's
	// de-duplication would discard reordered (not duplicated) frames.
	sendLocks []sync.Mutex

	recvMu   sync.Mutex // guards lastSeq, lastBoot
	lastSeq  map[int]uint64
	lastBoot map[int]uint32

	acceptWG sync.WaitGroup
	accepted map[net.Conn]bool
}

// NewTCPNode builds the transport of node self in a cluster whose node i
// listens on addrs[i]. It starts listening immediately; peers are dialed
// lazily on first Send.
func NewTCPNode(self int, addrs []string, opts TCPOptions) (*TCP, error) {
	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("transport: node %d listen %s: %w", self, addrs[self], err)
	}
	return newTCPNode(self, addrs, ln, opts, 0), nil
}

func newTCPNode(self int, addrs []string, ln net.Listener, opts TCPOptions, boot uint32) *TCP {
	t := &TCP{
		self:     self,
		addrs:    addrs,
		opts:     opts.withDefaults(),
		ln:       ln,
		boot:     boot,
		inbox:    make(chan Frame, inboxDepth),
		done:     make(chan struct{}),
		conns:    make(map[int]net.Conn),
		seq:      make(map[int]uint64),
		lastSeq:  make(map[int]uint64),
		lastBoot: make(map[int]uint32),
		accepted: make(map[net.Conn]bool),
		sendLocks: make([]sync.Mutex, len(addrs)),
	}
	t.acceptWG.Add(1)
	go t.acceptLoop()
	return t
}

// NewTCPLoopback builds an n-node cluster on ephemeral loopback ports and
// returns one transport per node. Listeners are bound before any node
// starts, so the address list is complete from the outset.
func NewTCPLoopback(n int, opts TCPOptions) ([]Transport, error) {
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("transport: loopback listen: %w", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ts := make([]Transport, n)
	for i := 0; i < n; i++ {
		ts[i] = newTCPNode(i, addrs, lns[i], opts, 0)
	}
	return ts, nil
}

// Addr returns the node's listen address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Self implements Transport.
func (t *TCP) Self() int { return t.self }

// N implements Transport.
func (t *TCP) N() int { return len(t.addrs) }

// Send implements Transport. On a write failure the connection is torn
// down and the frame is retransmitted over a fresh connection (dialed
// with retry and exponential backoff); the receiver de-duplicates by
// sequence number, so a frame that did arrive before the drop is not
// delivered twice.
func (t *TCP) Send(to int, payload []byte) error {
	if to < 0 || to >= len(t.addrs) || to == t.self {
		return fmt.Errorf("transport: tcp send to invalid peer %d", to)
	}
	t.sendLocks[to].Lock()
	defer t.sendLocks[to].Unlock()
	t.mu.Lock()
	t.seq[to]++
	seq := t.seq[to]
	t.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := t.peerConn(to)
		if err != nil {
			return err
		}
		if err = t.writeFrame(conn, seq, payload); err == nil {
			return nil
		}
		lastErr = err
		t.dropConn(to, conn)
		if t.closed() {
			return ErrClosed
		}
	}
	return fmt.Errorf("transport: send to %d: %w", to, lastErr)
}

// writeFrame serializes one frame: 8-byte sequence, 4-byte length,
// payload. Writes hold a per-connection deadline.
func (t *TCP) writeFrame(conn net.Conn, seq uint64, payload []byte) error {
	hdr := make([]byte, 12, 12+len(payload))
	binary.BigEndian.PutUint64(hdr, seq)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(payload)))
	conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	_, err := conn.Write(append(hdr, payload...))
	return err
}

// peerConn returns the established outbound connection for a peer,
// dialing with retry and exponential backoff if there is none.
func (t *TCP) peerConn(to int) (net.Conn, error) {
	t.mu.Lock()
	if c := t.conns[to]; c != nil {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	backoff := t.opts.DialBackoff
	var lastErr error
	for attempt := 0; attempt < t.opts.DialAttempts; attempt++ {
		if t.closed() {
			return nil, ErrClosed
		}
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-t.done:
				return nil, ErrClosed
			}
			backoff *= 2
			if backoff > t.opts.DialMaxBackoff {
				backoff = t.opts.DialMaxBackoff
			}
		}
		conn, err := t.opts.Dial(t.addrs[to], t.opts.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		// Handshake: identify ourselves (node id + boot) so the acceptor
		// can attribute inbound frames and fence replays across restarts.
		var hello [8]byte
		binary.BigEndian.PutUint32(hello[:4], uint32(t.self))
		binary.BigEndian.PutUint32(hello[4:], t.boot)
		conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
		if _, err := conn.Write(hello[:]); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		conn.SetWriteDeadline(time.Time{})
		t.mu.Lock()
		if old := t.conns[to]; old != nil {
			// A concurrent Send raced us to the dial; keep the first.
			t.mu.Unlock()
			conn.Close()
			return old, nil
		}
		t.conns[to] = conn
		t.mu.Unlock()
		return conn, nil
	}
	return nil, fmt.Errorf("transport: dial peer %d (%s) after %d attempts: %w",
		to, t.addrs[to], t.opts.DialAttempts, lastErr)
}

// ResetPeer implements PeerResetter: it severs the established outbound
// connection to a peer, as a crashed link would. The next Send re-dials
// and retransmits; receiver-side sequence de-duplication keeps delivery
// exactly-once.
func (t *TCP) ResetPeer(to int) {
	t.mu.Lock()
	c := t.conns[to]
	delete(t.conns, to)
	t.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// dropConn removes a failed outbound connection so the next Send
// re-dials.
func (t *TCP) dropConn(to int, conn net.Conn) {
	t.mu.Lock()
	if t.conns[to] == conn {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	conn.Close()
}

// acceptLoop admits inbound peer connections for the transport's
// lifetime.
func (t *TCP) acceptLoop() {
	defer t.acceptWG.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.accepted == nil {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = true
		t.mu.Unlock()
		t.acceptWG.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes frames off one inbound connection, de-duplicating by
// per-peer sequence number, until the stream errors or closes. A partial
// frame at the tail of a dropped connection is discarded silently — the
// sender retransmits it with the same sequence number on its next
// connection.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.acceptWG.Done()
	defer func() {
		t.mu.Lock()
		if t.accepted != nil {
			delete(t.accepted, conn)
		}
		t.mu.Unlock()
		conn.Close()
	}()
	var hello [8]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	from := int(binary.BigEndian.Uint32(hello[:4]))
	boot := binary.BigEndian.Uint32(hello[4:])
	if from < 0 || from >= len(t.addrs) {
		return
	}
	t.recvMu.Lock()
	switch last := t.lastBoot[from]; {
	case boot > last:
		// A restarted incarnation: its sequence numbers restart at 1, so
		// the old de-duplication watermark would discard every frame.
		t.lastBoot[from] = boot
		t.lastSeq[from] = 0
	case boot < last:
		// A connection from a dead incarnation that dialed before the
		// restart; its frames are stale by definition.
		t.recvMu.Unlock()
		return
	}
	t.recvMu.Unlock()
	hdr := make([]byte, 12)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		seq := binary.BigEndian.Uint64(hdr)
		size := binary.BigEndian.Uint32(hdr[8:])
		if size > maxFrame {
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		t.recvMu.Lock()
		dup := seq <= t.lastSeq[from]
		if !dup {
			t.lastSeq[from] = seq
		}
		t.recvMu.Unlock()
		if dup {
			continue
		}
		select {
		case t.inbox <- Frame{From: from, Payload: payload}:
		case <-t.done:
			return
		}
	}
}

// Recv implements Transport.
func (t *TCP) Recv() (Frame, error) {
	select {
	case f := <-t.inbox:
		return f, nil
	case <-t.done:
		select {
		case f := <-t.inbox:
			return f, nil
		default:
			return Frame{}, ErrClosed
		}
	}
}

func (t *TCP) closed() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.once.Do(func() {
		close(t.done)
		t.ln.Close()
		t.mu.Lock()
		for _, c := range t.conns {
			c.Close()
		}
		t.conns = map[int]net.Conn{}
		for c := range t.accepted {
			c.Close()
		}
		t.accepted = nil
		t.mu.Unlock()
	})
	return nil
}
