package transport

import (
	"fmt"
	"sync"
)

// inboxDepth bounds each node's inbound queue. The protocol's dispatchers
// drain their inboxes continuously, so the depth only has to absorb
// bursts (a barrier fan-in of N arrivals, a batch of diff flushes).
const inboxDepth = 4096

// InprocNet is an in-process network: one transport slot per node, with
// Rejoin replacing a slot by a fresh incarnation (the crashed node's old
// inbox is abandoned, like frames lost on a dead host).
type InprocNet struct {
	mu    sync.RWMutex
	slots []*Inproc
}

// NewInprocNet builds a fully connected n-node in-process network.
func NewInprocNet(n int) *InprocNet {
	nw := &InprocNet{slots: make([]*Inproc, n)}
	for i := range nw.slots {
		nw.slots[i] = newInproc(nw, i, n)
	}
	return nw
}

// NewInprocNetwork builds an n-node in-process network and returns one
// transport per node (the historical flat-slice constructor).
func NewInprocNetwork(n int) []Transport { return NewInprocNet(n).Transports() }

// Transports implements Network.
func (nw *InprocNet) Transports() []Transport {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	ts := make([]Transport, len(nw.slots))
	for i, s := range nw.slots {
		ts[i] = s
	}
	return ts
}

// Rejoin implements Network: it closes node i's current transport and
// replaces it with a fresh incarnation. Frames in the old inbox are
// dropped — exactly what a crash does — and concurrent Sends race
// harmlessly: they deliver to whichever incarnation the slot held when
// they looked it up, and a closed incarnation drops silently.
func (nw *InprocNet) Rejoin(i int) (Transport, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if i < 0 || i >= len(nw.slots) {
		return nil, fmt.Errorf("transport: inproc rejoin of invalid node %d", i)
	}
	nw.slots[i].Close()
	fresh := newInproc(nw, i, len(nw.slots))
	nw.slots[i] = fresh
	return fresh, nil
}

// Close implements Network.
func (nw *InprocNet) Close() error {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	for _, s := range nw.slots {
		s.Close()
	}
	return nil
}

func (nw *InprocNet) peer(i int) *Inproc {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.slots[i]
}

// Inproc is one node's in-process transport: an inbox channel fed by the
// peers' Sends through the network's slot table.
type Inproc struct {
	net  *InprocNet
	self int
	n    int

	inbox chan Frame
	done  chan struct{}
	once  sync.Once
}

func newInproc(nw *InprocNet, self, n int) *Inproc {
	return &Inproc{net: nw, self: self, n: n, inbox: make(chan Frame, inboxDepth), done: make(chan struct{})}
}

// Self implements Transport.
func (t *Inproc) Self() int { return t.self }

// N implements Transport.
func (t *Inproc) N() int { return t.n }

// Send implements Transport. A send to a closed or replaced peer is
// dropped silently and reports success — the in-process analogue of
// writing to a dead host's address: the network accepts the frame and
// nobody receives it. Only the sender's own closed transport is an
// error; the protocol layer recovers lost frames by retransmission and
// converts genuinely dead peers into structured failures.
func (t *Inproc) Send(to int, payload []byte) error {
	if to < 0 || to >= t.n || to == t.self {
		return fmt.Errorf("transport: inproc send to invalid peer %d", to)
	}
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	p := t.net.peer(to)
	select {
	case <-p.done:
		return nil // dead destination: the frame is lost, not an error
	default:
	}
	select {
	case <-t.done:
		return ErrClosed
	case <-p.done:
		return nil
	case p.inbox <- Frame{From: t.self, Payload: payload}:
		return nil
	}
}

// Recv implements Transport.
func (t *Inproc) Recv() (Frame, error) {
	select {
	case f := <-t.inbox:
		return f, nil
	case <-t.done:
		// Drain anything already enqueued so shutdown never drops frames
		// a peer believes delivered.
		select {
		case f := <-t.inbox:
			return f, nil
		default:
			return Frame{}, ErrClosed
		}
	}
}

// Close implements Transport.
func (t *Inproc) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}
