package transport

import (
	"fmt"
	"sync"
)

// inboxDepth bounds each node's inbound queue. The protocol's dispatchers
// drain their inboxes continuously, so the depth only has to absorb
// bursts (a barrier fan-in of N arrivals, a batch of diff flushes).
const inboxDepth = 4096

// Inproc is an in-process transport: every node owns one inbox channel
// and Send enqueues directly into the destination's inbox.
type Inproc struct {
	self  int
	peers []*Inproc

	inbox chan Frame
	done  chan struct{}
	once  sync.Once
}

// NewInprocNetwork builds a fully connected n-node in-process network and
// returns one transport per node.
func NewInprocNetwork(n int) []Transport {
	nodes := make([]*Inproc, n)
	for i := range nodes {
		nodes[i] = &Inproc{self: i, peers: nodes, inbox: make(chan Frame, inboxDepth), done: make(chan struct{})}
	}
	ts := make([]Transport, n)
	for i, nd := range nodes {
		ts[i] = nd
	}
	return ts
}

// Self implements Transport.
func (t *Inproc) Self() int { return t.self }

// N implements Transport.
func (t *Inproc) N() int { return len(t.peers) }

// Send implements Transport.
func (t *Inproc) Send(to int, payload []byte) error {
	if to < 0 || to >= len(t.peers) || to == t.self {
		return fmt.Errorf("transport: inproc send to invalid peer %d", to)
	}
	p := t.peers[to]
	// Prefer the closed verdict when it is already decidable: the select
	// below picks randomly among ready cases, and an enqueue into a
	// closed peer's inbox would be silently dropped.
	select {
	case <-t.done:
		return ErrClosed
	case <-p.done:
		return ErrClosed
	default:
	}
	select {
	case <-t.done:
		return ErrClosed
	case <-p.done:
		return ErrClosed
	case p.inbox <- Frame{From: t.self, Payload: payload}:
		return nil
	}
}

// Recv implements Transport.
func (t *Inproc) Recv() (Frame, error) {
	select {
	case f := <-t.inbox:
		return f, nil
	case <-t.done:
		// Drain anything already enqueued so shutdown never drops frames
		// a peer believes delivered.
		select {
		case f := <-t.inbox:
			return f, nil
		default:
			return Frame{}, ErrClosed
		}
	}
}

// Close implements Transport.
func (t *Inproc) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}
