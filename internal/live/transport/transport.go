// Package transport moves encoded wire frames between live DSM nodes.
//
// Two implementations share the Transport interface: Inproc connects the
// nodes of one process through channels (the default for tests and race
// runs), and TCP connects them through length-prefixed frames over
// per-peer connections with dial retry, deadlines and exponential
// backoff. The protocol engine is transport-agnostic: it encodes every
// message with the wire codec even in-process, so the codec is exercised
// on every run.
package transport

import "errors"

// Frame is one received payload and its sender.
type Frame struct {
	From    int
	Payload []byte
}

// Transport connects one node to its peers. Send and Recv are safe for
// concurrent use; payload ownership transfers on Send.
type Transport interface {
	// Self returns this node's id in [0, N); N the cluster size.
	Self() int
	N() int
	// Send delivers payload to peer `to`. Frames from one sender to one
	// receiver arrive in order; there is no cross-peer ordering.
	Send(to int, payload []byte) error
	// Recv blocks until a frame arrives or the transport closes.
	Recv() (Frame, error)
	// Close tears the transport down; pending and future Recv calls
	// return ErrClosed.
	Close() error
}

// ErrClosed is returned once a transport is shut down.
var ErrClosed = errors.New("transport: closed")

// Network owns the transports of a whole cluster and can rebuild one
// node's transport after a crash. Rejoin(i) closes node i's current
// transport (if still open) and returns a fresh incarnation bound to the
// same identity — and, for TCP, the same address with a bumped boot id,
// so receivers reset their per-peer sequence de-duplication instead of
// discarding the new incarnation's frames. The supervisor
// (internal/live) drives recovery through this interface.
type Network interface {
	// Transports returns the current transport of every node.
	Transports() []Transport
	// Rejoin replaces node i's transport with a fresh incarnation.
	Rejoin(i int) (Transport, error)
	// Close tears the whole network down.
	Close() error
}

// PeerResetter is implemented by transports whose per-peer connections
// can be forcibly severed mid-run — the TCP transport closes the
// established outbound connection so the next Send must re-dial and
// retransmit. Fault injection (internal/live/chaos) uses it to exercise
// the reconnect path; connectionless transports simply don't implement
// it.
type PeerResetter interface {
	ResetPeer(to int)
}
