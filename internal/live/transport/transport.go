// Package transport moves encoded wire frames between live DSM nodes.
//
// Two implementations share the Transport interface: Inproc connects the
// nodes of one process through channels (the default for tests and race
// runs), and TCP connects them through length-prefixed frames over
// per-peer connections with dial retry, deadlines and exponential
// backoff. The protocol engine is transport-agnostic: it encodes every
// message with the wire codec even in-process, so the codec is exercised
// on every run.
package transport

import "errors"

// Frame is one received payload and its sender.
type Frame struct {
	From    int
	Payload []byte
}

// Transport connects one node to its peers. Send and Recv are safe for
// concurrent use; payload ownership transfers on Send.
type Transport interface {
	// Self returns this node's id in [0, N); N the cluster size.
	Self() int
	N() int
	// Send delivers payload to peer `to`. Frames from one sender to one
	// receiver arrive in order; there is no cross-peer ordering.
	Send(to int, payload []byte) error
	// Recv blocks until a frame arrives or the transport closes.
	Recv() (Frame, error)
	// Close tears the transport down; pending and future Recv calls
	// return ErrClosed.
	Close() error
}

// ErrClosed is returned once a transport is shut down.
var ErrClosed = errors.New("transport: closed")

// PeerResetter is implemented by transports whose per-peer connections
// can be forcibly severed mid-run — the TCP transport closes the
// established outbound connection so the next Send must re-dial and
// retransmit. Fault injection (internal/live/chaos) uses it to exercise
// the reconnect path; connectionless transports simply don't implement
// it.
type PeerResetter interface {
	ResetPeer(to int)
}
