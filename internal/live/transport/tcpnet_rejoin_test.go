package transport

import (
	"net"
	"testing"
	"time"
)

// TestRejoinRetriesWithoutBlockingNetwork is the regression test for
// the lockheld finding in TCPNet.Rejoin: the rebind retry loop (up to
// ~1s of time.Sleep while the old listener's close settles) must run
// with nw.mu released, so Transports and Close stay responsive for the
// rest of the cluster while one node rejoins.
func TestRejoinRetriesWithoutBlockingNetwork(t *testing.T) {
	nw, err := NewTCPLoopbackNet(2, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	// Close node 1's transport and squat on its address so Rejoin's
	// rebind keeps failing and the retry loop actually spins.
	addr := nw.Transports()[1].(*TCP).Addr()
	nw.Transports()[1].Close()
	squatter, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := nw.Rejoin(1)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // Rejoin is inside its retry loop now

	start := time.Now()
	nw.Transports()
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("Transports blocked %v while Rejoin was retrying its rebind", elapsed)
	}

	squatter.Close() // release the address; the rejoin must now succeed
	if err := <-done; err != nil {
		t.Fatalf("Rejoin after address freed: %v", err)
	}
}
