package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fastOpts() TCPOptions {
	return TCPOptions{
		DialTimeout:    time.Second,
		DialBackoff:    time.Millisecond,
		DialMaxBackoff: 20 * time.Millisecond,
		DialAttempts:   10,
		WriteTimeout:   2 * time.Second,
	}
}

func closeAll(ts []Transport) {
	for _, t := range ts {
		t.Close()
	}
}

func TestTCPDelivery(t *testing.T) {
	ts, err := NewTCPLoopback(3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(ts)
	for i := 0; i < 10; i++ {
		if err := ts[1].Send(2, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		f, err := ts[2].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if f.From != 1 || string(f.Payload) != fmt.Sprintf("m%d", i) {
			t.Fatalf("frame %d: %+v", i, f)
		}
	}
}

// TestTCPDialRetry injects dial failures for the first attempts and
// requires Send to succeed via retry with backoff.
func TestTCPDialRetry(t *testing.T) {
	var fails atomic.Int32
	fails.Store(3)
	opts := fastOpts()
	opts.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		if fails.Add(-1) >= 0 {
			return nil, errors.New("injected dial failure")
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
	ts, err := NewTCPLoopback(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(ts)
	if err := ts[0].Send(1, []byte("after retries")); err != nil {
		t.Fatalf("send did not survive injected dial failures: %v", err)
	}
	f, err := ts[1].Recv()
	if err != nil || string(f.Payload) != "after retries" {
		t.Fatalf("recv: %v %+v", err, f)
	}
	if fails.Load() >= 0 {
		t.Fatalf("dial func not exercised enough: %d", fails.Load())
	}
}

// TestTCPDialGivesUp bounds the retry loop: with every dial failing the
// error must surface after DialAttempts.
func TestTCPDialGivesUp(t *testing.T) {
	opts := fastOpts()
	opts.DialAttempts = 3
	var attempts atomic.Int32
	opts.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		attempts.Add(1)
		return nil, errors.New("permanent failure")
	}
	ts, err := NewTCPLoopback(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(ts)
	if err := ts[0].Send(1, []byte("x")); err == nil {
		t.Fatal("send succeeded with all dials failing")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("dial attempts = %d, want 3", got)
	}
}

// TestTCPReconnectAfterDrop kills the established connection mid-run and
// requires the next Send to re-dial and deliver, without duplicating the
// frames that already arrived.
func TestTCPReconnectAfterDrop(t *testing.T) {
	// Track live outbound conns so the test can sever them.
	var mu sync.Mutex
	var conns []net.Conn
	opts := fastOpts()
	opts.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
		return c, err
	}
	ts, err := NewTCPLoopback(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(ts)

	if err := ts[0].Send(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if f, err := ts[1].Recv(); err != nil || string(f.Payload) != "before" {
		t.Fatalf("recv before drop: %v %+v", err, f)
	}

	// Sever the established connection under the transport.
	mu.Lock()
	for _, c := range conns {
		c.Close()
	}
	mu.Unlock()

	// The next sends must transparently reconnect. The first write may
	// "succeed" into a dead socket before the OS reports the reset, so
	// send a few frames; sequence numbers de-duplicate any retransmits.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		if err := ts[0].Send(1, []byte(fmt.Sprintf("after%d", i))); err != nil {
			t.Fatalf("send after drop: %v", err)
		}
		f, err := ts[1].Recv()
		if err != nil {
			t.Fatalf("recv after drop: %v", err)
		}
		if string(f.Payload) == fmt.Sprintf("after%d", i) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reconnect did not deliver within deadline")
		}
	}
}

// TestTCPManyConcurrentSenders stresses per-pair ordering across real
// sockets under -race.
func TestTCPManyConcurrentSenders(t *testing.T) {
	const n, msgs = 3, 100
	ts, err := NewTCPLoopback(n, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(ts)
	var wg sync.WaitGroup
	for s := 1; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				if err := ts[s].Send(0, []byte(fmt.Sprintf("%d:%d", s, i))); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	next := make([]int, n)
	for got := 0; got < (n-1)*msgs; got++ {
		f, err := ts[0].Recv()
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%d:%d", f.From, next[f.From])
		if string(f.Payload) != want {
			t.Fatalf("out of order from %d: got %q want %q", f.From, f.Payload, want)
		}
		next[f.From]++
	}
	wg.Wait()
}

// stallConn wraps a connection so one designated Write emits only a
// frame prefix and then stalls past the write deadline, simulating a
// network that wedges mid-frame.
type stallConn struct {
	net.Conn
	armed *atomic.Bool
	stall time.Duration
}

func (c *stallConn) Write(b []byte) (int, error) {
	if c.armed.CompareAndSwap(true, false) && len(b) > 6 {
		n, err := c.Conn.Write(b[:6]) // partial header reaches the wire
		if err != nil {
			return n, err
		}
		time.Sleep(c.stall) // ride past the write deadline
		m, err := c.Conn.Write(b[6:])
		return n + m, err // deadline-exceeded from the real conn
	}
	return c.Conn.Write(b)
}

// TestTCPWriteDeadlineMidFrame expires the write deadline with half a
// frame on the wire: Send must tear the connection down, re-dial and
// retransmit, and the receiver must deliver the frame exactly once
// (the partial tail is discarded, the retransmission is not treated as
// a duplicate).
func TestTCPWriteDeadlineMidFrame(t *testing.T) {
	var armed atomic.Bool
	opts := fastOpts()
	opts.WriteTimeout = 50 * time.Millisecond
	opts.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return &stallConn{Conn: c, armed: &armed, stall: 200 * time.Millisecond}, nil
	}
	ts, err := NewTCPLoopback(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(ts)

	if err := ts[0].Send(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	armed.Store(true)
	if err := ts[0].Send(1, []byte("b")); err != nil {
		t.Fatalf("send across a mid-frame deadline expiry: %v", err)
	}
	if err := ts[0].Send(1, []byte("c")); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a", "b", "c"} {
		f, err := ts[1].Recv()
		if err != nil || string(f.Payload) != want {
			t.Fatalf("want %q exactly once, got %q (err %v)", want, f.Payload, err)
		}
	}
	// No stray duplicate of "b" behind "c".
	select {
	case f := <-func() chan Frame {
		ch := make(chan Frame, 1)
		go func() {
			if fr, err := ts[1].Recv(); err == nil {
				ch <- fr
			}
		}()
		return ch
	}():
		t.Fatalf("unexpected extra frame %q after retransmission", f.Payload)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestTCPDuplicateSuppressionAfterReconnect plays a raw peer that
// reconnects and retransmits already-delivered sequence numbers — the
// receiver must suppress them and accept only the new frame.
func TestTCPDuplicateSuppressionAfterReconnect(t *testing.T) {
	ts, err := NewTCPLoopback(2, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(ts)
	addr := ts[1].(*TCP).Addr()

	frame := func(seq uint64, payload string) []byte {
		b := make([]byte, 12+len(payload))
		binary.BigEndian.PutUint64(b, seq)
		binary.BigEndian.PutUint32(b[8:], uint32(len(payload)))
		copy(b[12:], payload)
		return b
	}
	dial := func() net.Conn {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		var hello [8]byte // claim to be node 0, boot 0
		if _, err := c.Write(hello[:]); err != nil {
			t.Fatal(err)
		}
		return c
	}

	c1 := dial()
	c1.Write(frame(1, "a"))
	c1.Write(frame(2, "b"))
	// Both must arrive before the "crash", or the reconnect could race
	// ahead of the first connection's readLoop.
	for _, want := range []string{"a", "b"} {
		f, err := ts[1].Recv()
		if err != nil || string(f.Payload) != want {
			t.Fatalf("first connection: want %q, got %q (err %v)", want, f.Payload, err)
		}
	}
	c1.Close()

	// Reconnect and conservatively retransmit everything, like a sender
	// that cannot know how much of its tail was delivered.
	c2 := dial()
	defer c2.Close()
	c2.Write(frame(1, "a"))
	c2.Write(frame(2, "b"))
	c2.Write(frame(3, "c"))

	f, err := ts[1].Recv()
	if err != nil || string(f.Payload) != "c" {
		t.Fatalf("after reconnect: want only %q, got %q (err %v)", "c", f.Payload, err)
	}
}

func TestTCPClose(t *testing.T) {
	ts, err := NewTCPLoopback(2, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ts[0].Close()
	ts[1].Close()
	if _, err := ts[0].Recv(); err != ErrClosed {
		t.Fatalf("Recv after close: %v", err)
	}
}

// TestTCPNetRejoin crashes a node and rebuilds it on the same address
// with a bumped boot id. The fresh incarnation's sequence numbers restart
// at 1; without the boot id in the hello, the receiver's duplicate
// suppression would silently discard everything it sends.
func TestTCPNetRejoin(t *testing.T) {
	nw, err := NewTCPLoopbackNet(3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	ts := nw.Transports()

	// Advance node 1's sequence numbers at node 0 past what the fresh
	// incarnation will start with.
	for i := 0; i < 5; i++ {
		if err := ts[1].Send(0, []byte(fmt.Sprintf("pre%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if f, err := ts[0].Recv(); err != nil || string(f.Payload) != fmt.Sprintf("pre%d", i) {
			t.Fatalf("warm-up recv %d: %q err %v", i, f.Payload, err)
		}
	}
	oldAddr := ts[1].(*TCP).Addr()

	fresh, err := nw.Rejoin(1)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Self() != 1 || fresh.N() != 3 {
		t.Fatalf("rejoined identity: self=%d n=%d", fresh.Self(), fresh.N())
	}
	if got := fresh.(*TCP).Addr(); got != oldAddr {
		t.Fatalf("rejoined on %s, want original address %s", got, oldAddr)
	}
	if _, err := ts[1].Recv(); err != ErrClosed {
		t.Fatalf("old incarnation Recv: %v, want ErrClosed", err)
	}

	// Seq restarts at 1 in the new incarnation; the boot bump must reset
	// the receiver's de-dup state so this is delivered, not dropped.
	if err := fresh.Send(0, []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	if f, err := ts[0].Recv(); err != nil || string(f.Payload) != "reborn" {
		t.Fatalf("recv from rejoined node: %q err %v", f.Payload, err)
	}
	// And traffic toward the new incarnation re-dials its rebound listener.
	if err := ts[2].Send(1, []byte("welcome back")); err != nil {
		t.Fatal(err)
	}
	if f, err := fresh.Recv(); err != nil || string(f.Payload) != "welcome back" {
		t.Fatalf("rejoined node recv: %q err %v", f.Payload, err)
	}
}
