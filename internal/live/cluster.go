// Package live runs DSM applications on a real concurrent runtime: one
// goroutine-backed node per processor (internal/live/node) connected by
// a pluggable transport (internal/live/transport). A Cluster implements
// the same engine-neutral core.Mem / core.Worker / core.Peeker
// interfaces as the deterministic simulator, so the four paper workloads
// run unchanged on either engine and their results can be cross-checked.
package live

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live/node"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/page"
)

// Config parameterizes a live cluster.
type Config struct {
	// Nodes is the cluster size (one worker goroutine per node).
	Nodes int
	// PageSize is the shared page size (power of two; default 4096).
	PageSize int
	// MaxSharedBytes bounds the shared address space (default 64 MiB).
	MaxSharedBytes int
	// Protocol selects the acquire-side behaviour: core.LH (default, the
	// paper's hybrid — cached pages are refreshed with diffs pulled from
	// their home) or core.LI (noticed pages are invalidated).
	Protocol core.Protocol
	// Transports, when non-nil, supplies one transport per node (e.g.
	// transport.NewTCPLoopback). Nil selects the in-process transport.
	Transports []transport.Transport
	// Net, when non-nil, supplies the whole network instead of
	// Transports. RunSupervised requires it: recovery rebuilds a crashed
	// node's transport through Network.Rejoin.
	Net transport.Network
	// Observer, when non-nil, receives protocol events from every node.
	Observer node.Observer
	// RPCTimeout bounds every remote wait (default 30s).
	RPCTimeout time.Duration
	// RetryBase / RetryMax shape the per-RPC retransmission backoff
	// (defaults 200ms / 2s). Lower them when running under fault
	// injection so recovery fits in a test budget.
	RetryBase time.Duration
	RetryMax  time.Duration
	// HeartbeatInterval / HeartbeatTimeout parameterize failure
	// detection (defaults 1s / 10s): every non-manager node beacons the
	// manager at the interval, and the manager aborts the cluster when a
	// peer has been silent past the timeout. A negative timeout disables
	// detection.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
}

// Stats is the outcome of a live run: per-node protocol counters, their
// sum, and the real elapsed time.
type Stats struct {
	Nodes     int          `json:"nodes"`
	Protocol  string       `json:"protocol"`
	ElapsedNs int64        `json:"elapsed_ns"`
	PerNode   []node.Stats `json:"per_node"`
	Total     node.Stats   `json:"total"`

	// Traffic balance: the largest per-node share of the cluster's sent
	// messages and which node holds it. A centralized coordinator shows
	// up here as one node owning most of the traffic; the distributed
	// sync plane should keep this near 1/Nodes.
	MaxMsgFrac float64 `json:"max_msg_frac"`
	MaxMsgNode int     `json:"max_msg_node"`

	// Recovery outcome (RunSupervised only). Total folds in the counters
	// of killed engine incarnations, so it can exceed the sum of PerNode.
	Restarts   int64 `json:"restarts,omitempty"`
	RecoveryNs int64 `json:"recovery_ns,omitempty"`
}

// Cluster is a live DSM machine. Like core.System it is used once:
// allocate and initialize shared memory (core.Mem), call Run, then read
// results back (core.Peeker).
type Cluster struct {
	cfg       Config
	pageShift uint

	brk    core.Addr
	allocs [][2]page.ID
	nlocks int
	nbars  int
	init   map[page.ID][]byte

	mu    sync.Mutex // guards nodes/trs against Kill during construction
	nodes []*node.Node
	trs   []transport.Transport
	final []byte
	ran   bool

	// Crash plumbing (see supervisor.go): Kill records the event here and
	// RunSupervised drains it; crashPending marks a rollback in flight so
	// worker failures during it are forgiven.
	crashCh      chan crashEvent
	crashPending atomic.Bool
}

type crashEvent struct {
	victim       int
	restartAfter time.Duration
}

var (
	_ core.Mem    = (*Cluster)(nil)
	_ core.Peeker = (*Cluster)(nil)
)

// New builds a live cluster from the configuration.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("live: Nodes = %d, want >= 1", cfg.Nodes)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = core.DefaultPageSize
	}
	if cfg.PageSize < 64 || cfg.PageSize&(cfg.PageSize-1) != 0 {
		return nil, fmt.Errorf("live: PageSize = %d, want power of two >= 64", cfg.PageSize)
	}
	if cfg.MaxSharedBytes == 0 {
		cfg.MaxSharedBytes = 64 << 20
	}
	if cfg.Protocol != core.LI && cfg.Protocol != core.LH {
		return nil, fmt.Errorf("live: protocol %v not supported (want LI or LH)", cfg.Protocol)
	}
	if cfg.Transports != nil && len(cfg.Transports) != cfg.Nodes {
		return nil, fmt.Errorf("live: %d transports for %d nodes", len(cfg.Transports), cfg.Nodes)
	}
	if cfg.Net != nil && cfg.Transports != nil {
		return nil, fmt.Errorf("live: set Net or Transports, not both")
	}
	c := &Cluster{cfg: cfg, init: make(map[page.ID][]byte), crashCh: make(chan crashEvent, 4*cfg.Nodes)}
	for ps := cfg.PageSize; ps > 1; ps >>= 1 {
		c.pageShift++
	}
	return c, nil
}

// Procs implements core.Mem.
func (c *Cluster) Procs() int { return c.cfg.Nodes }

func (c *Cluster) pageOf(a core.Addr) page.ID { return page.ID(a >> c.pageShift) }

// Alloc implements core.Mem: it reserves n bytes (8-byte aligned).
func (c *Cluster) Alloc(n int) core.Addr {
	a := (c.brk + 7) &^ 7
	c.brk = a + core.Addr(n)
	if int(c.brk) > c.cfg.MaxSharedBytes {
		panic(fmt.Sprintf("live: shared memory exhausted (%d > %d)", c.brk, c.cfg.MaxSharedBytes))
	}
	c.allocs = append(c.allocs, [2]page.ID{c.pageOf(a), c.pageOf(c.brk - 1)})
	return a
}

// AllocPage implements core.Mem: it reserves n bytes on a fresh page.
func (c *Cluster) AllocPage(n int) core.Addr {
	ps := core.Addr(c.cfg.PageSize)
	a := (c.brk + ps - 1) &^ (ps - 1)
	c.brk = a + core.Addr(n)
	if int(c.brk) > c.cfg.MaxSharedBytes {
		panic(fmt.Sprintf("live: shared memory exhausted (%d > %d)", c.brk, c.cfg.MaxSharedBytes))
	}
	c.allocs = append(c.allocs, [2]page.ID{c.pageOf(a), c.pageOf(c.brk - 1)})
	return a
}

// NewLock implements core.Mem.
func (c *Cluster) NewLock() int {
	id := c.nlocks
	c.nlocks++
	return id
}

// NewLocks implements core.Mem.
func (c *Cluster) NewLocks(n int) int {
	id := c.nlocks
	c.nlocks += n
	return id
}

// NewBarrier implements core.Mem.
func (c *Cluster) NewBarrier() int {
	id := c.nbars
	c.nbars++
	return id
}

func (c *Cluster) initPage(pg page.ID) []byte {
	b := c.init[pg]
	if b == nil {
		b = make([]byte, c.cfg.PageSize)
		c.init[pg] = b
	}
	return b
}

// InitU64 implements core.Mem: it stores a word into the initial image.
func (c *Cluster) InitU64(a core.Addr, v uint64) {
	if c.ran {
		panic("live: Init after Run")
	}
	page.Buf(c.initPage(c.pageOf(a))).PutU64(int(a)&(c.cfg.PageSize-1), v)
}

// InitF64 implements core.Mem.
func (c *Cluster) InitF64(a core.Addr, v float64) { c.InitU64(a, math.Float64bits(v)) }

// InitI64 implements core.Mem.
func (c *Cluster) InitI64(a core.Addr, v int64) { c.InitU64(a, uint64(v)) }

// homeAssignment mirrors the simulator's static page-ownership policy:
// within each allocation, pages are block-assigned across the nodes
// (first allocation wins for pages shared by small allocations), so a
// band-partitioned array is homed at the nodes that use it.
func (c *Cluster) homeAssignment(npages int) []int32 {
	homes := make([]int32, npages)
	for i := range homes {
		homes[i] = -1
	}
	for _, r := range c.allocs {
		span := int(r[1]-r[0]) + 1
		for pg := r[0]; pg <= r[1]; pg++ {
			if homes[pg] == -1 {
				homes[pg] = int32(int(pg-r[0]) * c.cfg.Nodes / span)
			}
		}
	}
	for pg := range homes {
		if homes[pg] == -1 {
			homes[pg] = int32(pg % c.cfg.Nodes)
		}
	}
	return homes
}

// nodeConfig builds the per-node engine configuration shared by Run and
// RunSupervised; rc is nil when recovery is disabled.
func (c *Cluster) nodeConfig(npages int, homes []int32, rc *node.RecoverConfig) node.Config {
	return node.Config{
		PageSize:   c.cfg.PageSize,
		NPages:     npages,
		Homes:      homes,
		Init:       c.init,
		NLocks:     c.nlocks,
		NBars:      c.nbars,
		Protocol:   c.cfg.Protocol,
		Observer:   c.cfg.Observer,
		RPCTimeout: c.cfg.RPCTimeout,

		RetryBase:         c.cfg.RetryBase,
		RetryMax:          c.cfg.RetryMax,
		HeartbeatInterval: c.cfg.HeartbeatInterval,
		HeartbeatTimeout:  c.cfg.HeartbeatTimeout,
		Recover:           rc,
	}
}

// Run executes worker on every node concurrently and returns the run's
// statistics. Shared memory must be allocated and initialized first; the
// initial image is placed at each page's home, and all other nodes start
// with no copies.
func (c *Cluster) Run(worker func(core.Worker)) (*Stats, error) {
	if c.ran {
		return nil, fmt.Errorf("live: Cluster already ran")
	}
	c.ran = true
	if c.brk == 0 {
		return nil, fmt.Errorf("live: no shared memory allocated")
	}
	npages := int(c.pageOf(c.brk-1)) + 1
	homes := c.homeAssignment(npages)

	trs := c.cfg.Transports
	if c.cfg.Net != nil {
		trs = c.cfg.Net.Transports()
	}
	if trs == nil {
		trs = transport.NewInprocNetwork(c.cfg.Nodes)
	}
	nodes := make([]*node.Node, c.cfg.Nodes)
	for i := range nodes {
		nodes[i] = node.New(trs[i], c.nodeConfig(npages, homes, nil))
	}
	c.mu.Lock()
	c.nodes = nodes
	c.trs = trs
	c.mu.Unlock()
	for _, nd := range nodes {
		nd.Start()
	}

	// abort tears the cluster down once, so one node's failure unblocks
	// every other node's waits instead of letting them ride out their
	// RPC timeouts.
	var abortOnce sync.Once
	abort := func() {
		abortOnce.Do(func() {
			for _, nd := range c.nodes {
				nd.Close()
			}
			for _, tr := range trs {
				tr.Close()
			}
		})
	}

	t0 := time.Now()
	errs := make([]error, c.cfg.Nodes)
	var wg sync.WaitGroup
	for i, nd := range c.nodes {
		wg.Add(1)
		go func(i int, nd *node.Node) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if re, ok := r.(interface{ Unwrap() error }); ok {
						errs[i] = re.Unwrap()
					} else {
						errs[i] = fmt.Errorf("live: node %d worker panic: %v\n%s", i, r, debug.Stack())
					}
					abort()
				}
			}()
			worker(nd)
			// Flush the last interval so the homes hold final memory.
			nd.FinalFlush()
		}(i, nd)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	for _, nd := range c.nodes {
		if err := nd.Err(); err != nil {
			errs = append(errs, err)
		}
	}
	firstErr := pickErr(errs)
	if firstErr == nil {
		// Gather the final image from the homes before teardown.
		c.final = make([]byte, c.brk)
		for pg := 0; pg < npages; pg++ {
			img := c.nodes[homes[pg]].HomePage(page.ID(pg))
			off := pg << c.pageShift
			copy(c.final[off:], img)
		}
	}
	abort()
	for _, nd := range c.nodes {
		nd.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}

	st := &Stats{
		Nodes:     c.cfg.Nodes,
		Protocol:  c.cfg.Protocol.String(),
		ElapsedNs: elapsed.Nanoseconds(),
	}
	for _, nd := range c.nodes {
		s := nd.Stats()
		st.PerNode = append(st.PerNode, s)
		addStats(&st.Total, &s)
	}
	st.Total.Node = -1
	st.computeBalance()
	return st, nil
}

// StatsSnapshot returns the protocol counters of the cluster's current
// engines, safe to call while a run is in flight (dsmd uses it to dump
// state when a wall-clock deadline expires). Elapsed time and the
// recovery totals are only known once the run returns, so they are zero
// here.
func (c *Cluster) StatsSnapshot() *Stats {
	c.mu.Lock()
	nds := append([]*node.Node(nil), c.nodes...)
	c.mu.Unlock()
	st := &Stats{Nodes: c.cfg.Nodes, Protocol: c.cfg.Protocol.String()}
	for _, nd := range nds {
		if nd == nil {
			continue
		}
		s := nd.Stats()
		st.PerNode = append(st.PerNode, s)
		addStats(&st.Total, &s)
	}
	st.Total.Node = -1
	st.computeBalance()
	return st
}

// computeBalance fills MaxMsgFrac/MaxMsgNode from the per-node message
// counters.
func (st *Stats) computeBalance() {
	st.MaxMsgFrac, st.MaxMsgNode = 0, -1
	if st.Total.MsgsSent == 0 {
		return
	}
	for i := range st.PerNode {
		f := float64(st.PerNode[i].MsgsSent) / float64(st.Total.MsgsSent)
		if f > st.MaxMsgFrac {
			st.MaxMsgFrac, st.MaxMsgNode = f, st.PerNode[i].Node
		}
	}
}

// pickErr selects the error to surface from a failed run. The manager's
// failure-detection verdict (*node.PeerDownError) names the suspect node
// and its pending operation, so it wins over the secondary
// *node.RemoteAbortError panics it triggers on every other node; absent
// one, the first error wins.
func pickErr(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var pd *node.PeerDownError
		if errors.As(err, &pd) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// addStats accumulates src's counters into dst.
func addStats(dst, src *node.Stats) {
	dst.MsgsSent += src.MsgsSent
	dst.MsgsRecv += src.MsgsRecv
	dst.BytesSent += src.BytesSent
	dst.BytesRecv += src.BytesRecv
	dst.DataBytes += src.DataBytes
	dst.SharedReads += src.SharedReads
	dst.SharedWrites += src.SharedWrites
	dst.PageFaults += src.PageFaults
	dst.PageFetches += src.PageFetches
	dst.DiffPulls += src.DiffPulls
	dst.TwinsCreated += src.TwinsCreated
	dst.DiffsCreated += src.DiffsCreated
	dst.DiffsApplied += src.DiffsApplied
	dst.DiffBytes += src.DiffBytes
	dst.Intervals += src.Intervals
	dst.Invalidations += src.Invalidations
	dst.LockAcquires += src.LockAcquires
	dst.BarrierEpisodes += src.BarrierEpisodes
	dst.LockLocalAcquires += src.LockLocalAcquires
	dst.LockForwards += src.LockForwards
	dst.LockHandoffs += src.LockHandoffs
	dst.LogSegFetches += src.LogSegFetches
	dst.RPCRetries += src.RPCRetries
	dst.DupRequests += src.DupRequests
	dst.DupReplies += src.DupReplies
	dst.HeartbeatsSent += src.HeartbeatsSent
	dst.HeartbeatsRecv += src.HeartbeatsRecv
	dst.CheckpointsTaken += src.CheckpointsTaken
	dst.CheckpointBytes += src.CheckpointBytes
	dst.StaleFrames += src.StaleFrames
	dst.LockWaitNs += src.LockWaitNs
	dst.BarrierWaitNs += src.BarrierWaitNs
	dst.FaultWaitNs += src.FaultWaitNs
	dst.FlushWaitNs += src.FlushWaitNs
	dst.ServeGets += src.ServeGets
	dst.ServePuts += src.ServePuts
	dst.ServeLockWaitNs += src.ServeLockWaitNs
	dst.ConsensusTerms += src.ConsensusTerms
	dst.ConsensusElections += src.ConsensusElections
	dst.ConsensusCommits += src.ConsensusCommits
	dst.LeaderRedirects += src.LeaderRedirects
	dst.ConsensusCompactions += src.ConsensusCompactions
	dst.ConsensusSnapInstalls += src.ConsensusSnapInstalls
	dst.ConsensusConfChanges += src.ConsensusConfChanges
	dst.ConsensusSlotQuarantines += src.ConsensusSlotQuarantines
	dst.ConsensusLaneDrops += src.ConsensusLaneDrops
	dst.MgrCacheEvictions += src.MgrCacheEvictions
}

// PeekU64 implements core.Peeker: before Run it reads the initial image,
// after a successful Run the final image gathered from the homes.
func (c *Cluster) PeekU64(a core.Addr) uint64 {
	if c.final != nil {
		return page.Buf(c.final).U64(int(a))
	}
	b := c.init[c.pageOf(a)]
	if b == nil {
		return 0
	}
	return page.Buf(b).U64(int(a) & (c.cfg.PageSize - 1))
}

// PeekF64 implements core.Peeker.
func (c *Cluster) PeekF64(a core.Addr) float64 { return math.Float64frombits(c.PeekU64(a)) }

// PeekI64 implements core.Peeker.
func (c *Cluster) PeekI64(a core.Addr) int64 { return int64(c.PeekU64(a)) }

// Brk returns the top of the shared allocation.
func (c *Cluster) Brk() core.Addr { return c.brk }

// PageSize returns the cluster's configured page size in bytes.
func (c *Cluster) PageSize() int { return c.cfg.PageSize }
