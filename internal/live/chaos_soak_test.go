package live

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"lrcdsm/internal/check"
	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
	"lrcdsm/internal/live/chaos"
	"lrcdsm/internal/live/node"
	"lrcdsm/internal/live/transport"
)

// chaosOpts are the recovery knobs used by the soak tests: aggressive
// retransmission so the injected faults resolve inside a test budget,
// and a heartbeat cadence fast enough that failure detection is
// exercised (but with a timeout generous enough that retry stalls are
// never mistaken for death).
func chaosConfig(nodes int, prot core.Protocol, trs []transport.Transport) Config {
	return Config{
		Nodes:             nodes,
		Protocol:          prot,
		Transports:        trs,
		RPCTimeout:        60 * time.Second,
		RetryBase:         10 * time.Millisecond,
		RetryMax:          100 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  30 * time.Second,
	}
}

// runAppChaos executes one workload on a cluster whose transports are
// wrapped with the given fault schedule and returns the finished
// cluster, the run stats and the injected-fault totals.
func runAppChaos(t *testing.T, name string, prot core.Protocol, nodes int,
	inner []transport.Transport, fcfg chaos.Config) (*Cluster, *Stats, chaos.Counters) {
	t.Helper()
	app, err := harness.NewApp(name, harness.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if inner == nil {
		inner = transport.NewInprocNetwork(nodes)
	}
	wrapped := chaos.WrapAll(inner, fcfg)
	c, err := New(chaosConfig(nodes, prot, chaos.Transports(wrapped)))
	if err != nil {
		t.Fatal(err)
	}
	app.Configure(c)
	stats, err := c.Run(func(w core.Worker) { app.Worker(w) })
	faults := chaos.SumCounters(wrapped)
	if err != nil {
		t.Fatalf("%s/%v/%dn under %+v faults: %v", name, prot, nodes, faults, err)
	}
	if err := app.Verify(c); err != nil {
		t.Fatalf("%s/%v/%dn failed verification under faults: %v", name, prot, nodes, err)
	}
	return c, stats, faults
}

// compareToReference checks the faulty run's declared result regions
// word-for-word against a fault-free 1-node run of the same engine.
func compareToReference(t *testing.T, name string, prot core.Protocol, got *Cluster) {
	t.Helper()
	ref, _ := runApp(t, name, prot, 1, nil)
	app, err := harness.NewApp(name, harness.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	ra, ok := app.(harness.ResultApp)
	if !ok {
		t.Fatalf("%s does not declare result regions", name)
	}
	if vs := check.CompareRegions(got, ref, ra.ResultRegions()); len(vs) > 0 {
		for i, v := range vs {
			if i >= 5 {
				t.Errorf("... and %d more", len(vs)-5)
				break
			}
			t.Errorf("region mismatch under faults: %s", v.String())
		}
	}
}

// TestChaosSoakInproc is the tentpole's end-to-end claim: all four paper
// workloads, both protocols, on a 4-node cluster whose every frame may
// be dropped, duplicated or reordered — and the computed results still
// match a fault-free 1-node reference exactly.
func TestChaosSoakInproc(t *testing.T) {
	for _, name := range harness.AppNames {
		for _, prot := range []core.Protocol{core.LI, core.LH} {
			name, prot := name, prot
			t.Run(fmt.Sprintf("%s/%v", name, prot), func(t *testing.T) {
				t.Parallel()
				fcfg := chaos.Config{
					Seed:     1,
					DropP:    0.03,
					DupP:     0.05,
					DelayP:   0.10,
					DelayMax: 2 * time.Millisecond,
				}
				got, stats, faults := runAppChaos(t, name, prot, 4, nil, fcfg)
				if faults.Total() == 0 {
					t.Fatal("soak injected no faults — the schedule is not exercising anything")
				}
				if faults.Dropped > 0 && stats.Total.RPCRetries == 0 {
					t.Errorf("%d drops injected but no RPC retransmissions recorded", faults.Dropped)
				}
				if faults.Duplicated > 0 && stats.Total.DupRequests+stats.Total.DupReplies == 0 {
					t.Errorf("%d duplicates injected but none de-duplicated", faults.Duplicated)
				}
				compareToReference(t, name, prot, got)
			})
		}
	}
}

// TestChaosSoakTCP repeats the soak over real loopback sockets with
// connection resets in the mix, so the re-dial + retransmit + receiver
// de-duplication path runs under protocol load.
func TestChaosSoakTCP(t *testing.T) {
	for _, tc := range []struct {
		app  string
		prot core.Protocol
	}{
		{"jacobi", core.LH},
		{"tsp", core.LI},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%s/%v", tc.app, tc.prot), func(t *testing.T) {
			t.Parallel()
			inner, err := transport.NewTCPLoopback(4, transport.TCPOptions{
				DialBackoff:  time.Millisecond,
				DialAttempts: 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			fcfg := chaos.Config{
				Seed:     2,
				DropP:    0.02,
				DupP:     0.03,
				DelayP:   0.05,
				DelayMax: 2 * time.Millisecond,
				ResetP:   0.08,
			}
			got, _, faults := runAppChaos(t, tc.app, tc.prot, 4, inner, fcfg)
			if faults.Resets == 0 {
				t.Error("TCP soak forced no connection resets")
			}
			compareToReference(t, tc.app, tc.prot, got)
		})
	}
}

// TestPartitionAbortsFast is the failure-detection claim: with one node
// partitioned away from node 0 forever — and node 0 is both the failure
// detector and the partitioned peer's barrier-tree parent, so the run
// genuinely cannot progress — the run must not ride out the 30s RPC
// timeout. The heartbeat monitor must convert the silence into a
// structured cluster-wide abort naming the suspect node and its pending
// operation. (A partition that does not cut the synchronization tree,
// e.g. 0<->3 on four nodes, no longer necessarily stalls the run at all
// with the sync plane distributed; TestPartitionOffTreeCompletes covers
// that side.)
func TestPartitionAbortsFast(t *testing.T) {
	app, err := harness.NewApp("jacobi", harness.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	inner := transport.NewInprocNetwork(4)
	wrapped := chaos.WrapAll(inner, chaos.Config{
		Partitions: []chaos.Partition{{A: 0, B: 1}}, // Dur 0: forever
	})
	cfg := chaosConfig(4, core.LH, chaos.Transports(wrapped))
	cfg.RPCTimeout = 30 * time.Second
	cfg.RetryBase = 10 * time.Millisecond
	cfg.HeartbeatInterval = 25 * time.Millisecond
	cfg.HeartbeatTimeout = 250 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app.Configure(c)

	t0 := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(func(w core.Worker) { app.Worker(w) })
		done <- err
	}()
	var runErr error
	select {
	case runErr = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("partitioned run hung instead of aborting")
	}
	elapsed := time.Since(t0)

	if runErr == nil {
		t.Fatal("partitioned run reported success")
	}
	var pd *node.PeerDownError
	if !errors.As(runErr, &pd) {
		t.Fatalf("want *node.PeerDownError, got %T: %v", runErr, runErr)
	}
	if pd.Node != 1 {
		t.Errorf("suspect node = %d, want 1 (the partitioned peer)", pd.Node)
	}
	if pd.Pending == "" {
		t.Error("abort names no pending operation")
	}
	if pd.Silence < cfg.HeartbeatTimeout {
		t.Errorf("declared down after %v of silence, before the %v timeout", pd.Silence, cfg.HeartbeatTimeout)
	}
	// Failure must come from the heartbeat monitor, not the RPC timeout.
	if elapsed > 10*time.Second {
		t.Errorf("abort took %v — heartbeat detection (timeout %v) did not fire", elapsed, cfg.HeartbeatTimeout)
	}
	t.Logf("aborted in %v: %v", elapsed, runErr)
}

// TestPartitionOffTreeCompletes is the decentralization dividend: a
// permanent partition between two nodes that share no synchronization
// edge (0 and 3 are neither tree parent/child nor home/user of each
// other's pages in a band-partitioned workload) no longer stalls the
// run at all — under the old centralized manager every node needed node
// 0 for every lock and barrier, so this exact schedule used to deadlock
// until failure detection killed the cluster. The results must still
// match the fault-free 1-node reference.
func TestPartitionOffTreeCompletes(t *testing.T) {
	inner := transport.NewInprocNetwork(4)
	fcfg := chaos.Config{
		Partitions: []chaos.Partition{{A: 0, B: 3}}, // Dur 0: forever
	}
	got, _, _ := runAppChaos(t, "jacobi", core.LH, 4, inner, fcfg)
	compareToReference(t, "jacobi", core.LH, got)
}

// TestLockHomeHolderPartition aims transient partitions at the
// distributed lock plane's hard case: the home (node 1 for lock 1) cut
// off from requesters and from the probable owner it must forward to.
// While a window is open, a request forwarded to an unreachable owner
// is lost and the requester-retry -> home-re-forward -> owner-re-grant
// chain must ride it out after the heal; through it all the lock must
// stay mutually exclusive, which the exact final count proves.
func TestLockHomeHolderPartition(t *testing.T) {
	for _, prot := range []core.Protocol{core.LI, core.LH} {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			t.Parallel()
			const iters = 3000
			inner := transport.NewInprocNetwork(4)
			wrapped := chaos.WrapAll(inner, chaos.Config{
				Seed: 7,
				Partitions: []chaos.Partition{
					{A: 1, B: 2, From: 0, Dur: 150 * time.Millisecond},
					{A: 1, B: 0, From: 200 * time.Millisecond, Dur: 150 * time.Millisecond},
					{A: 1, B: 3, From: 400 * time.Millisecond, Dur: 150 * time.Millisecond},
				},
			})
			c, err := New(chaosConfig(4, prot, chaos.Transports(wrapped)))
			if err != nil {
				t.Fatal(err)
			}
			a := c.Alloc(8)
			c.NewLock() // lock 0 (homed at 0), unused
			lk := c.NewLock()
			if lk != 1 {
				t.Fatalf("lock id = %d, want 1 (homed at node 1)", lk)
			}
			c.InitU64(a, 0)
			stats, err := c.Run(func(w core.Worker) {
				for i := 0; i < iters; i++ {
					w.Lock(lk)
					w.WriteU64(a, w.ReadU64(a)+1)
					w.Unlock(lk)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := c.PeekU64(a); got != 4*iters {
				t.Fatalf("counter = %d, want %d — lock plane lost mutual exclusion or updates", got, 4*iters)
			}
			if stats.Total.LockHandoffs == 0 {
				t.Error("contended run recorded no lock handoffs")
			}
			if stats.Total.RPCRetries == 0 {
				t.Error("partition windows forced no retransmissions")
			}
		})
	}
}
