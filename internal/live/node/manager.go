package node

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	ckpt "lrcdsm/internal/live/recover"
	"lrcdsm/internal/live/wire"
	"lrcdsm/internal/vc"
)

// manager is the recovery coordinator and failure detector colocated
// with node 0. Locks, barriers and the interval log are distributed
// across the cluster (see sync.go); what remains centralized is the
// membership-flavored machinery that genuinely needs a single point of
// authority: checkpoint confirmation tracking, snapshot replication,
// the crash/rejoin handshake, and liveness sweeps.
//
// Requests are de-duplicated per client before any state changes: a
// node's worker issues manager RPCs strictly sequentially with strictly
// increasing tokens, so a request whose token is not newer than the
// client's last is a retransmission — the cached reply is re-sent (the
// original was lost) or, while the original is still pending, the
// duplicate is simply dropped. That makes every manager operation
// idempotent under the node layer's retransmission schedule.
//
// All manager state is owned by node 0's dispatcher goroutine; no
// locking is needed.
type manager struct {
	n  *Node
	nn int

	// clients[w] is the request de-duplication state of node w.
	clients []mclient

	// Recovery state (only used when the node's RecoverConfig is set).
	// recovering[w] marks a peer mid-recovery: liveness skips it and a
	// KJoinReq from it is expected. incarnations[w] is the newest
	// incarnation w announced. ckptConfirmed[w] is the newest checkpoint
	// episode w confirmed durably stored; the stable checkpoint is their
	// minimum (0 = the initial image, always available).
	recovering    []bool
	incarnations  []uint32
	ckptConfirmed []int64
	// resumeEpisode/resumeVT describe the checkpoint the cluster last
	// rolled back to, handed to joiners in KJoinGrant.
	resumeEpisode int64
	resumeVT      vc.VC
	// push[w] assembles a snapshot blob w is streaming in KSnapPush
	// chunks; joinBlob[w] is the encoded replica being served back to a
	// rejoining w in KSnapChunk replies.
	push     []*pushAsm
	joinBlob [][]byte
}

// pushAsm reassembles one node's replicated snapshot from its chunks.
// Chunks arrive strictly in order: the pusher streams them as blocking
// RPCs and the client table drops retransmissions.
type pushAsm struct {
	episode int64
	nchunks int32
	next    int32
	buf     []byte
}

// replyCacheCap bounds each client's cached-reply window. A worker has
// at most one manager RPC outstanding, so one slot would suffice for
// liveness; the window absorbs deep retransmission storms re-asking for
// recently answered tokens without letting a hot client grow the cache
// without bound.
const replyCacheCap = 32

// mclient is one node's request de-duplication state: the newest token
// seen from it and a bounded cache of recent replies, keyed by token
// (a pending request has no entry yet). The oldest token is evicted
// once the cache exceeds replyCacheCap.
type mclient struct {
	lastTok int64
	replies map[int64]*wire.Msg
	order   []int64 // cached tokens, oldest first
}

func (c *mclient) cache(m *wire.Msg) {
	if c.replies == nil {
		c.replies = make(map[int64]*wire.Msg)
	}
	if _, ok := c.replies[m.Token]; !ok {
		c.order = append(c.order, m.Token)
		if len(c.order) > replyCacheCap {
			delete(c.replies, c.order[0])
			c.order = c.order[1:]
		}
	}
	//dsmlint:ignore vtalias cached replies are immutable after construction: they are only re-encoded for retransmission, never written
	c.replies[m.Token] = m
}

func newManager(n *Node) *manager {
	return &manager{
		n:             n,
		nn:            n.nn,
		clients:       make([]mclient, n.nn),
		recovering:    make([]bool, n.nn),
		incarnations:  make([]uint32, n.nn),
		ckptConfirmed: make([]int64, n.nn),
		push:          make([]*pushAsm, n.nn),
		joinBlob:      make([][]byte, n.nn),
	}
}

func (g *manager) handle(m *wire.Msg) {
	if g.dropDup(m) {
		return
	}
	switch m.Kind {
	case wire.KJoinReq:
		g.joinReq(m)
	case wire.KSnapReq:
		g.snapReq(m)
	case wire.KSnapPush:
		g.snapPush(m)
	case wire.KResume:
		g.resume(m)
	case wire.KCkptDone:
		g.ckptDone(m)
	}
}

// dropDup filters retransmitted requests before they can mutate manager
// state, re-serving the cached reply when the original was already
// answered. It reports true when the message was a duplicate.
func (g *manager) dropDup(m *wire.Msg) bool {
	c := &g.clients[m.From]
	if m.Token > c.lastTok {
		c.lastTok = m.Token
		return false
	}
	atomic.AddInt64(&g.n.stats.DupRequests, 1)
	if r, ok := c.replies[m.Token]; ok {
		g.n.send(int(m.From), r)
	}
	return true
}

// reply sends a response to a client and caches it for retransmitted
// requests (bounded per client by replyCacheCap).
func (g *manager) reply(to int32, m *wire.Msg) {
	c := &g.clients[to]
	if m.Token <= c.lastTok {
		c.cache(m)
	}
	g.n.send(int(to), m)
}

// ---- checkpoint and rejoin ----

// ckptDone records a node's confirmation that it durably stored its
// snapshot for an episode.
func (g *manager) ckptDone(m *wire.Msg) {
	w := int(m.From)
	if m.Episode > g.ckptConfirmed[w] {
		g.ckptConfirmed[w] = m.Episode
	}
	g.reply(m.From, &wire.Msg{Kind: wire.KAck, Token: m.Token})
}

// stableCkpt is the newest episode every node has confirmed; the
// rollback target a recovery restores.
func (g *manager) stableCkpt() int64 {
	stable := g.ckptConfirmed[0]
	for _, e := range g.ckptConfirmed[1:] {
		if e < stable {
			stable = e
		}
	}
	return stable
}

// snapPush assembles a replicated snapshot streamed by a node, one
// chunk per (acknowledged, de-duplicated) RPC, and stores it once
// complete.
func (g *manager) snapPush(m *wire.Msg) {
	w := int(m.From)
	a := g.push[w]
	if a == nil || a.episode != m.Episode {
		a = &pushAsm{episode: m.Episode, nchunks: m.NChunks}
		g.push[w] = a
	}
	if m.Chunk != a.next {
		g.abort(fmt.Errorf("manager: snapshot chunk %d from %d, want %d", m.Chunk, w, a.next))
		return
	}
	a.buf = append(a.buf, m.Data...)
	a.next++
	if a.next == a.nchunks {
		g.push[w] = nil
		snap, err := ckpt.DecodeNode(a.buf)
		if err != nil {
			g.abort(fmt.Errorf("manager: replicated snapshot from %d: %w", w, err))
			return
		}
		if err := g.n.cfg.Recover.Store.PutNode(snap); err != nil {
			g.abort(fmt.Errorf("manager: storing replica of %d: %w", w, err))
			return
		}
	}
	g.reply(m.From, &wire.Msg{Kind: wire.KAck, Token: m.Token})
}

// joinReq admits a restarted node: the grant names the checkpoint
// episode the cluster rolled back to, its merged vector time, and — when
// the manager holds a replica of the joiner's snapshot — how many chunks
// the joiner may stream with KSnapReq if its own store is gone.
func (g *manager) joinReq(m *wire.Msg) {
	w := int(m.From)
	g.incarnations[w] = m.Incarnation
	reply := &wire.Msg{
		Kind: wire.KJoinGrant, Token: m.Token,
		Incarnation: m.Incarnation, Episode: g.resumeEpisode,
	}
	if g.resumeVT != nil {
		reply.VT = g.resumeVT.Clone()
	}
	if g.resumeEpisode > 0 {
		if snap, err := g.n.cfg.Recover.Store.GetNode(g.resumeEpisode, w); err == nil {
			blob := ckpt.EncodeNode(snap)
			g.joinBlob[w] = blob
			reply.NChunks = int32((len(blob) + snapChunkSize - 1) / snapChunkSize)
		}
	}
	g.reply(m.From, reply)
}

// snapReq serves one chunk of the joiner's replicated snapshot.
func (g *manager) snapReq(m *wire.Msg) {
	w := int(m.From)
	blob := g.joinBlob[w]
	lo := int(m.Chunk) * snapChunkSize
	if blob == nil || lo < 0 || lo >= len(blob) {
		g.abort(fmt.Errorf("manager: snapshot chunk %d requested by %d, have %d bytes", m.Chunk, w, len(blob)))
		return
	}
	hi := lo + snapChunkSize
	if hi > len(blob) {
		hi = len(blob)
	}
	g.reply(m.From, &wire.Msg{
		Kind: wire.KSnapChunk, Token: m.Token,
		Episode: m.Episode, Chunk: m.Chunk, Data: blob[lo:hi],
	})
}

// resume re-arms liveness for a rejoined node and ends its recovery.
func (g *manager) resume(m *wire.Msg) {
	w := int(m.From)
	g.recovering[w] = false
	g.joinBlob[w] = nil
	if g.n.lastHeard != nil {
		atomic.StoreInt64(&g.n.lastHeard[w], time.Now().UnixNano())
	}
	g.reply(m.From, &wire.Msg{Kind: wire.KAck, Token: m.Token})
}

// resetTo rolls the manager back to checkpoint episode k (0 = pristine):
// the resume point handed to joiners is read from the manager snapshot,
// client de-duplication is cleared for the new epoch, and victim is
// marked recovering. The distributed synchronization state is reset on
// each node by ResetToCheckpoint, not here. Runs on the dispatcher via
// Node.Control.
func (g *manager) resetTo(k int64, victim int) error {
	var ms *ckpt.ManagerSnapshot
	if k > 0 {
		var err error
		if ms, err = g.n.cfg.Recover.Store.GetManager(k); err != nil {
			return fmt.Errorf("manager: checkpoint %d: %w", k, err)
		}
	}
	for i := range g.clients {
		g.clients[i] = mclient{}
	}
	g.resumeEpisode = k
	g.resumeVT = nil
	if ms != nil {
		g.resumeVT = vc.VC(ms.VT).Clone()
	}
	for w := range g.recovering {
		g.recovering[w] = false
	}
	if victim >= 0 && victim < g.nn {
		g.recovering[victim] = true
	}
	// Confirmations past the rollback point refer to episodes the
	// re-execution will reach (and re-store) again; clamping keeps the
	// stable computation conservative.
	for w := range g.ckptConfirmed {
		if g.ckptConfirmed[w] > k {
			g.ckptConfirmed[w] = k
		}
	}
	for w := range g.push {
		g.push[w] = nil
	}
	for w := range g.joinBlob {
		g.joinBlob[w] = nil
	}
	now := time.Now().UnixNano()
	for w := range g.n.lastHeard {
		atomic.StoreInt64(&g.n.lastHeard[w], now)
	}
	return nil
}

// ---- failure detection ----

// checkLiveness sweeps the per-peer last-heard stamps; a peer silent
// past HeartbeatTimeout is presumed dead and the whole cluster is
// aborted with a structured error naming it and its pending
// synchronization — a clean fast failure instead of N workers each
// riding out an RPC timeout. Runs on the dispatcher goroutine, which
// owns the manager state the verdict describes.
func (g *manager) checkLiveness() {
	now := time.Now().UnixNano()
	for w := 1; w < g.nn; w++ {
		if g.recovering[w] {
			continue // its silence is expected; KResume re-arms it
		}
		silence := time.Duration(now - atomic.LoadInt64(&g.n.lastHeard[w]))
		if silence <= g.n.cfg.HeartbeatTimeout {
			continue
		}
		perr := &PeerDownError{Node: w, Silence: silence, Pending: g.pendingFor(w)}
		// With a supervisor attached, hand the failure over instead of
		// aborting: marking the peer recovering stops this sweep from
		// re-firing while the rollback is organized.
		if rc := g.n.cfg.Recover; rc != nil && rc.OnPeerDown != nil {
			g.recovering[w] = true
			if rc.OnPeerDown(perr) {
				continue
			}
			g.recovering[w] = false
		}
		g.abort(perr)
		return
	}
}

// pendingFor describes a node's synchronization state as far as node 0
// can see it, for the failure verdict. With the sync plane distributed,
// node 0 knows the probable owners of the locks homed here and the
// arrival state of the root barrier aggregation — a partial but useful
// picture (a silent peer that owns a home-0 lock or whose subtree the
// root still awaits is exactly the interesting case).
func (g *manager) pendingFor(w int) string {
	n := g.n
	var parts []string
	n.mu.Lock()
	for id := range n.sy.locks {
		lk := &n.sy.locks[id]
		if n.lockHome(id) == n.id && int(lk.owner) == w {
			parts = append(parts, fmt.Sprintf("probably owns lock %d", id))
		}
	}
	if b := &n.sy.bar; b.arrived != nil && w != n.id {
		// The root sees w through the child-of-root subtree containing it.
		anc := w
		for anc > 2 {
			anc = (anc - 1) / 2
		}
		if _, ok := b.arrived[int32(anc)]; !ok {
			parts = append(parts, fmt.Sprintf("barrier %d episode %d awaits its subtree (%d/%d arrivals at root)",
				b.barrier, b.episode, len(b.arrived), 1+len(n.barChildren())))
		}
	}
	n.mu.Unlock()
	if len(parts) == 0 {
		return "no pending synchronization"
	}
	return strings.Join(parts, "; ")
}

// abort fails this node with err and broadcasts it so every peer
// unblocks immediately instead of waiting out its own timeout.
func (g *manager) abort(err error) { g.n.abortCluster(err) }
