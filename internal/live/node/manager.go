package node

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lrcdsm/internal/live/consensus"
	ckpt "lrcdsm/internal/live/recover"
	"lrcdsm/internal/live/wire"
)

// manager is the recovery coordinator and failure detector. Locks,
// barriers and the interval log are distributed across the cluster (see
// sync.go); what remains centralized is the membership-flavored
// machinery that genuinely needs a single point of authority:
// checkpoint confirmation tracking, snapshot replication, the
// crash/rejoin handshake, and liveness sweeps.
//
// That authority is no longer pinned to node 0. When the manager quorum
// is active (RecoverConfig.Consensus on a cluster of three or more),
// every node runs a manager replica and the authoritative state lives
// in a replicated state machine (mstate) driven by commands committed
// on a consensus log (internal/live/consensus): the elected leader
// serves requests by proposing the corresponding command and replying
// only after commit, a non-leader replica answers every manager request
// with KNotLeader and the current leader hint, and a leader crash
// triggers an election instead of an abort. Without the quorum the
// manager stays on node 0 and commands apply directly — same state
// machine, no log.
//
// Requests are de-duplicated per client before any state changes: a
// node's worker issues manager RPCs strictly sequentially with strictly
// increasing tokens, so a request whose token is not newer than the
// client's last is a retransmission — the cached reply is re-sent (the
// original was lost) or, while the original is still pending, the
// duplicate is simply dropped. The dedup tables, chunk assemblers and
// join blobs are leader-local (guarded by cmu, not replicated): every
// command is idempotent and a client whose leader died retries at the
// new one with fresh tokens, so serving state never needs to agree
// across replicas.
type manager struct {
	n  *Node
	nn int

	// st is the replicated state machine; rep the consensus replica
	// driving it (nil when the quorum is inactive).
	st  *mstate
	rep *consensus.Rep

	// Leader-local serving state, guarded by cmu (the dispatcher serves
	// requests while commit callbacks reply from the consensus
	// goroutine). clients is the request de-duplication state, keyed by
	// (origin node, token lane) — each lane issues tokens from its own
	// monotonic sequence, so a supervisor RPC on the conf lane cannot
	// shadow a worker's lane-0 tokens — and LRU-bounded by
	// clientCacheCap. push[w] assembles a snapshot blob w is streaming
	// in KSnapPush chunks; joinBlob[w] is the encoded replica served
	// back to a rejoining w in KSnapChunk replies; both chunk caches are
	// LRU-bounded by blobCacheCap (an evicted stream self-heals: the
	// client is redirected and restarts from chunk 0, a rejoining node
	// re-runs its join handshake). suspect[w] marks a peer this leader
	// already reported down, so one silence fires one verdict.
	cmu        sync.Mutex
	clients    map[clientKey]*mclient
	clientSeen []clientKey
	push       map[int]*pushAsm
	pushSeen   []int
	joinBlob   map[int][]byte
	joinSeen   []int
	suspect    []bool
}

// clientKey names one dedup stream: one token lane of one node.
type clientKey struct {
	from int32
	lane int64
}

// pushAsm reassembles one node's replicated snapshot from its chunks.
// Chunks arrive strictly in order: the pusher streams them as blocking
// RPCs and the client table drops retransmissions. Chunk 0 always
// starts a fresh assembly, so a stream restarted after a leader change
// cannot collide with a stale half.
type pushAsm struct {
	episode int64
	nchunks int32
	next    int32
	buf     []byte
}

// replyCacheCap bounds each client's cached-reply window. A worker has
// at most one manager RPC outstanding, so one slot would suffice for
// liveness; the window absorbs deep retransmission storms re-asking for
// recently answered tokens without letting a hot client grow the cache
// without bound.
const replyCacheCap = 32

// clientCacheCap bounds the dedup table across (node, lane) streams;
// blobCacheCap bounds the snapshot-chunk caches (inbound push
// assemblies and outbound join blobs, independently). Both follow the
// reply-cache discipline: oldest-first eviction, and an evicted stream
// re-establishes itself — a client whose dedup entry aged out simply
// starts a fresh token window, an evicted chunk stream is redirected
// and restarts from chunk 0.
const (
	clientCacheCap = 256
	blobCacheCap   = 8
)

// mclient is one node's request de-duplication state: the newest token
// seen from it and a bounded cache of recent replies, keyed by token
// (a pending request has no entry yet). The oldest token is evicted
// once the cache exceeds replyCacheCap.
type mclient struct {
	lastTok int64
	replies map[int64]*wire.Msg
	order   []int64 // cached tokens, oldest first
}

func (c *mclient) cache(m *wire.Msg) {
	if c.replies == nil {
		c.replies = make(map[int64]*wire.Msg)
	}
	if _, ok := c.replies[m.Token]; !ok {
		c.order = append(c.order, m.Token)
		if len(c.order) > replyCacheCap {
			delete(c.replies, c.order[0])
			c.order = c.order[1:]
		}
	}
	//dsmlint:ignore vtalias cached replies are immutable after construction: they are only re-encoded for retransmission, never written
	c.replies[m.Token] = m
}

func newManager(n *Node) *manager {
	return &manager{
		n:        n,
		nn:       n.nn,
		st:       newMstate(n.nn),
		clients:  map[clientKey]*mclient{},
		push:     map[int]*pushAsm{},
		joinBlob: map[int][]byte{},
		suspect:  make([]bool, n.nn),
	}
}

// client returns (creating if needed) the dedup state for the token's
// (origin, lane) stream, evicting the least-recently-created stream
// past clientCacheCap. Caller holds cmu.
func (g *manager) client(from int32, tok int64) *mclient {
	k := clientKey{from: from, lane: tok >> laneShift}
	c := g.clients[k]
	if c == nil {
		c = &mclient{}
		g.clients[k] = c
		g.clientSeen = append(g.clientSeen, k)
		if len(g.clientSeen) > clientCacheCap {
			delete(g.clients, g.clientSeen[0])
			g.clientSeen = g.clientSeen[1:]
		}
	}
	return c
}

// touchSeen moves w to the most-recent end of an LRU order slice.
func touchSeen(order []int, w int) []int {
	for i, v := range order {
		if v == w {
			return append(append(order[:i:i], order[i+1:]...), w)
		}
	}
	return append(order, w)
}

// dropSeen removes w from an LRU order slice.
func dropSeen(order []int, w int) []int {
	for i, v := range order {
		if v == w {
			return append(order[:i], order[i+1:]...)
		}
	}
	return order
}

// setPush installs (or clears, a == nil) node w's inbound snapshot
// assembly, evicting the least-recently-touched one past blobCacheCap.
// Caller holds cmu.
func (g *manager) setPush(w int, a *pushAsm) {
	if a == nil {
		delete(g.push, w)
		g.pushSeen = dropSeen(g.pushSeen, w)
		return
	}
	g.push[w] = a
	g.pushSeen = touchSeen(g.pushSeen, w)
	if len(g.pushSeen) > blobCacheCap {
		ev := g.pushSeen[0]
		g.pushSeen = g.pushSeen[1:]
		delete(g.push, ev)
		atomic.AddInt64(&g.n.stats.MgrCacheEvictions, 1)
	}
}

// setJoinBlob installs (or clears) the outbound join blob served to a
// rejoining node w, with the same LRU bound. Caller holds cmu.
func (g *manager) setJoinBlob(w int, blob []byte) {
	if blob == nil {
		delete(g.joinBlob, w)
		g.joinSeen = dropSeen(g.joinSeen, w)
		return
	}
	g.joinBlob[w] = blob
	g.joinSeen = touchSeen(g.joinSeen, w)
	if len(g.joinSeen) > blobCacheCap {
		ev := g.joinSeen[0]
		g.joinSeen = g.joinSeen[1:]
		delete(g.joinBlob, ev)
		atomic.AddInt64(&g.n.stats.MgrCacheEvictions, 1)
	}
}

// isLeader reports whether this replica currently serves manager
// requests (trivially true without a quorum).
func (g *manager) isLeader() bool {
	return g.rep == nil || g.rep.Leader().IsLeader
}

func (g *manager) handle(m *wire.Msg) {
	if g.rep != nil {
		if info := g.rep.Leader(); !info.IsLeader {
			g.n.send(int(m.From), &wire.Msg{
				Kind: wire.KNotLeader, Token: m.Token,
				Term: info.Term, Leader: int32(info.Leader),
			})
			return
		}
	}
	if g.dropDup(m) {
		return
	}
	switch m.Kind {
	case wire.KJoinReq:
		g.joinReq(m)
	case wire.KSnapReq:
		g.snapReq(m)
	case wire.KSnapPush:
		g.snapPush(m)
	case wire.KResume:
		g.resume(m)
	case wire.KCkptDone:
		g.ckptDone(m)
	case wire.KMgrSnap:
		g.mgrSnap(m)
	case wire.KConfChange:
		g.confChange(m)
	}
}

// dropDup filters retransmitted requests before they can mutate manager
// state, re-serving the cached reply when the original was already
// answered. It reports true when the message was a duplicate.
func (g *manager) dropDup(m *wire.Msg) bool {
	g.cmu.Lock()
	c := g.client(m.From, m.Token)
	if m.Token > c.lastTok {
		c.lastTok = m.Token
		g.cmu.Unlock()
		return false
	}
	r, ok := c.replies[m.Token]
	g.cmu.Unlock()
	atomic.AddInt64(&g.n.stats.DupRequests, 1)
	if ok {
		g.n.send(int(m.From), r)
	}
	return true
}

// reply sends a response to a client and caches it for retransmitted
// requests (bounded per client by replyCacheCap).
func (g *manager) reply(to int32, m *wire.Msg) {
	g.cmu.Lock()
	c := g.client(to, m.Token)
	if m.Token <= c.lastTok {
		// Cache a copy, not the outbound message itself: send rewrites
		// envelope fields (From, Epoch) in place, and with a replicated
		// manager this send runs on the consensus apply goroutine while
		// the dispatcher may concurrently re-serve the cached reply.
		cp := *m
		c.cache(&cp)
	}
	g.cmu.Unlock()
	g.n.send(int(to), m)
}

// redirect answers a request whose leader-local serving state straddled
// a leader change (a chunk stream split across replicas): the client
// restarts the whole exchange at the named leader — possibly this very
// node — from a clean slate.
func (g *manager) redirect(m *wire.Msg) {
	ldr, term := g.n.id, int64(0)
	if g.rep != nil {
		info := g.rep.Leader()
		ldr, term = info.Leader, info.Term
	}
	g.n.send(int(m.From), &wire.Msg{
		Kind: wire.KNotLeader, Token: m.Token, Term: term, Leader: int32(ldr),
	})
}

// ---- command plumbing ----

// propose routes a command through the replicated log when the quorum
// is active — done fires from the consensus goroutine after the commit
// applied locally — or applies it directly and fires done synchronously
// when it is not.
func (g *manager) propose(cmd []byte, done func(error)) {
	if g.rep == nil {
		done(g.applyCmd(cmd))
		return
	}
	g.rep.Propose(cmd, done)
}

// applyCmd decodes and applies one committed command, then performs the
// per-replica side effects that hang off it: persisting the manager's
// half of a checkpoint to this replica's own store, and re-arming
// leader-local serving state on reset/resume. Runs on the consensus
// goroutine (every replica, in log order) or synchronously on the
// dispatcher when the quorum is inactive.
func (g *manager) applyCmd(cmd []byte) error {
	c, err := decodeCmd(cmd)
	if err != nil {
		return err
	}
	if err := g.st.apply(c); err != nil {
		return err
	}
	switch c.op {
	case opMgrSnap:
		if rc := g.n.cfg.Recover; rc != nil {
			snap := &ckpt.ManagerSnapshot{Episode: c.episode, VT: append([]int32(nil), c.vt...)}
			if err := rc.Store.PutManager(snap); err != nil {
				return fmt.Errorf("manager: storing checkpoint %d: %w", c.episode, err)
			}
		}
	case opResume:
		w := int(c.node)
		g.cmu.Lock()
		g.setJoinBlob(w, nil)
		g.cmu.Unlock()
		g.heard(w)
	case opReset:
		g.cmu.Lock()
		g.clients = map[clientKey]*mclient{}
		g.clientSeen = nil
		g.push = map[int]*pushAsm{}
		g.pushSeen = nil
		g.joinBlob = map[int][]byte{}
		g.joinSeen = nil
		for w := range g.suspect {
			g.suspect[w] = false
		}
		g.cmu.Unlock()
		if n := g.n; n.lastHeard != nil {
			now := time.Now().UnixNano()
			for w := range n.lastHeard {
				atomic.StoreInt64(&n.lastHeard[w], now)
			}
		}
	}
	return nil
}

// commitReply builds a proposal callback that answers the client once
// the command commits. A proposal that dies with the leadership
// (deposed, stopped, or a full proposal queue) is dropped silently: the
// client's retransmission re-resolves the leader and re-proposes.
func (g *manager) commitReply(from int32, build func() *wire.Msg) func(error) {
	return func(err error) {
		if err != nil {
			if errors.Is(err, consensus.ErrNotLeader) || errors.Is(err, consensus.ErrDeposed) ||
				errors.Is(err, consensus.ErrStopped) || errors.Is(err, consensus.ErrBusy) {
				return
			}
			g.abort(err)
			return
		}
		g.reply(from, build())
	}
}

// ---- checkpoint and rejoin ----

// ckptDone records a node's confirmation that it durably stored its
// snapshot for an episode, acknowledged once the confirmation commits.
func (g *manager) ckptDone(m *wire.Msg) {
	from, tok := m.From, m.Token
	g.propose(encodeCkptDone(m.From, m.Episode), g.commitReply(from, func() *wire.Msg {
		return &wire.Msg{Kind: wire.KAck, Token: tok}
	}))
}

// mgrSnap commits the manager's half of a flagged barrier episode — its
// merged vector time — proposed by the barrier root (node 0, wherever
// the leader is). The root holds the episode's releases until this ack.
func (g *manager) mgrSnap(m *wire.Msg) {
	from, tok := m.From, m.Token
	g.propose(encodeMgrSnap(m.Episode, m.VT), g.commitReply(from, func() *wire.Msg {
		return &wire.Msg{Kind: wire.KAck, Token: tok}
	}))
}

// snapPush assembles a replicated snapshot streamed by a node, one
// chunk per (acknowledged, de-duplicated) RPC, and stores it once
// complete. Snapshot replication is leader-local store traffic, not
// replicated state: a stream cut by a leader change is redirected and
// restarts from chunk 0 at the new leader.
func (g *manager) snapPush(m *wire.Msg) {
	w := int(m.From)
	g.cmu.Lock()
	a := g.push[w]
	if m.Chunk == 0 || a == nil || a.episode != m.Episode {
		a = &pushAsm{episode: m.Episode, nchunks: m.NChunks}
	}
	if m.Chunk != a.next {
		g.setPush(w, nil)
		g.cmu.Unlock()
		g.redirect(m)
		return
	}
	a.buf = append(a.buf, m.Data...)
	a.next++
	var done []byte
	if a.next == a.nchunks {
		done = a.buf
		g.setPush(w, nil)
	} else {
		g.setPush(w, a) // LRU touch; an evicted stream restarts at chunk 0
	}
	g.cmu.Unlock()
	if done != nil {
		snap, err := ckpt.DecodeNode(done)
		if err != nil {
			g.abort(fmt.Errorf("manager: replicated snapshot from %d: %w", w, err))
			return
		}
		if err := g.n.cfg.Recover.Store.PutNode(snap); err != nil {
			g.abort(fmt.Errorf("manager: storing replica of %d: %w", w, err))
			return
		}
	}
	g.reply(m.From, &wire.Msg{Kind: wire.KAck, Token: m.Token})
}

// joinReq admits a restarted node: once its incarnation commits, the
// grant names the checkpoint episode the cluster rolled back to, its
// merged vector time, and — when this replica's store holds a copy of
// the joiner's snapshot — how many chunks the joiner may stream with
// KSnapReq if its own store is gone.
func (g *manager) joinReq(m *wire.Msg) {
	w := int(m.From)
	from, tok, inc := m.From, m.Token, m.Incarnation
	g.propose(encodeJoin(m.From, inc), g.commitReply(from, func() *wire.Msg {
		k, rvt := g.st.resumePoint()
		reply := &wire.Msg{
			Kind: wire.KJoinGrant, Token: tok,
			Incarnation: inc, Episode: k, VT: rvt,
		}
		if k > 0 {
			if snap, err := g.n.cfg.Recover.Store.GetNode(k, w); err == nil {
				blob := ckpt.EncodeNode(snap)
				g.cmu.Lock()
				g.setJoinBlob(w, blob)
				g.cmu.Unlock()
				reply.NChunks = int32((len(blob) + snapChunkSize - 1) / snapChunkSize)
			}
		}
		return reply
	}))
}

// snapReq serves one chunk of the joiner's replicated snapshot. A
// leader granted after a failover has no blob for the joiner — the
// redirect sends it back to re-run the join handshake here.
func (g *manager) snapReq(m *wire.Msg) {
	w := int(m.From)
	g.cmu.Lock()
	blob := g.joinBlob[w]
	if blob != nil {
		g.joinSeen = touchSeen(g.joinSeen, w) // an active stream stays resident
	}
	g.cmu.Unlock()
	if blob == nil {
		// No blob for the joiner — granted by a different leader, or
		// evicted under cache pressure: re-run the join handshake here.
		g.redirect(m)
		return
	}
	lo := int(m.Chunk) * snapChunkSize
	if lo < 0 || lo >= len(blob) {
		g.abort(fmt.Errorf("manager: snapshot chunk %d requested by %d, have %d bytes", m.Chunk, w, len(blob)))
		return
	}
	hi := lo + snapChunkSize
	if hi > len(blob) {
		hi = len(blob)
	}
	g.reply(m.From, &wire.Msg{
		Kind: wire.KSnapChunk, Token: m.Token,
		Episode: m.Episode, Chunk: m.Chunk, Data: blob[lo:hi],
	})
}

// resume re-arms liveness for a rejoined node and ends its recovery,
// committed so every replica agrees the peer is live again.
func (g *manager) resume(m *wire.Msg) {
	from, tok := m.From, m.Token
	g.propose(encodeResume(m.From), g.commitReply(from, func() *wire.Msg {
		return &wire.Msg{Kind: wire.KAck, Token: tok}
	}))
}

// confChange commits a single-server voting-membership change (add or
// remove the replica named by ReqFrom) through the consensus log. The
// leader rejects a second change while one is uncommitted, and a change
// that would shrink the quorum below usefulness, with a reasoned
// KConfAck; transient leadership errors are dropped so the client's
// retransmission re-resolves the leader.
func (g *manager) confChange(m *wire.Msg) {
	from, tok := m.From, m.Token
	if g.rep == nil {
		g.reply(from, &wire.Msg{
			Kind: wire.KConfAck, Token: tok, Err: "manager: no consensus quorum active",
		})
		return
	}
	g.rep.ProposeConf(m.Flag == 1, int(m.ReqFrom), func(err error) {
		if err != nil {
			if errors.Is(err, consensus.ErrNotLeader) || errors.Is(err, consensus.ErrDeposed) ||
				errors.Is(err, consensus.ErrStopped) || errors.Is(err, consensus.ErrBusy) {
				return
			}
			g.reply(from, &wire.Msg{Kind: wire.KConfAck, Token: tok, Err: err.Error()})
			return
		}
		g.reply(from, &wire.Msg{Kind: wire.KConfAck, Token: tok, Flag: 1})
	})
}

// heard re-stamps a peer's liveness clock (after its resume commits).
func (g *manager) heard(w int) {
	if n := g.n; n.lastHeard != nil && w >= 0 && w < len(n.lastHeard) {
		atomic.StoreInt64(&n.lastHeard[w], time.Now().UnixNano())
	}
}

// ---- failure detection ----

// checkLiveness sweeps the per-peer last-heard stamps; a peer silent
// past HeartbeatTimeout is presumed dead and the whole cluster is
// aborted with a structured error naming it and its pending
// synchronization — a clean fast failure instead of N workers each
// riding out an RPC timeout — unless a supervisor takes the hand-off.
// Only the leader judges: every node beacons at the leader, so only its
// stamps mean anything, and a deposed leader's verdict frames are
// term-fenced by the receivers. A leader that cannot hear a majority
// withholds verdicts entirely — it is probably the partitioned one, and
// the quorum's next leader will judge it instead.
func (g *manager) checkLiveness() {
	if !g.isLeader() {
		return
	}
	now := time.Now().UnixNano()
	if g.rep != nil {
		heard := 1 // self
		for w := 0; w < g.nn; w++ {
			if w == g.n.id {
				continue
			}
			if time.Duration(now-atomic.LoadInt64(&g.n.lastHeard[w])) <= g.n.cfg.HeartbeatTimeout {
				heard++
			}
		}
		if heard <= g.nn/2 {
			return
		}
	}
	for w := 0; w < g.nn; w++ {
		if w == g.n.id {
			continue
		}
		if g.st.isRecovering(w) {
			continue // its silence is expected; KResume re-arms it
		}
		g.cmu.Lock()
		sus := g.suspect[w]
		g.cmu.Unlock()
		if sus {
			continue // already reported; the rollback will reset this
		}
		silence := time.Duration(now - atomic.LoadInt64(&g.n.lastHeard[w]))
		if silence <= g.n.cfg.HeartbeatTimeout {
			continue
		}
		perr := &PeerDownError{Node: w, Silence: silence, Pending: g.pendingFor(w)}
		// With a supervisor attached, hand the failure over instead of
		// aborting: marking the peer suspect stops this sweep from
		// re-firing while the rollback is organized.
		if rc := g.n.cfg.Recover; rc != nil && rc.OnPeerDown != nil {
			g.cmu.Lock()
			g.suspect[w] = true
			g.cmu.Unlock()
			if rc.OnPeerDown(perr) {
				continue
			}
			g.cmu.Lock()
			g.suspect[w] = false
			g.cmu.Unlock()
		}
		g.abort(perr)
		return
	}
}

// pendingFor describes a node's synchronization state as far as this
// node can see it, for the failure verdict. With the sync plane
// distributed, the leader knows the probable owners of the locks homed
// here and the arrival state of its share of the barrier tree — a
// partial but useful picture (a silent peer that owns a local lock or
// whose subtree is still awaited is exactly the interesting case).
func (g *manager) pendingFor(w int) string {
	n := g.n
	var parts []string
	n.mu.Lock()
	for id := range n.sy.locks {
		lk := &n.sy.locks[id]
		if n.lockHome(id) == n.id && int(lk.owner) == w {
			parts = append(parts, fmt.Sprintf("probably owns lock %d", id))
		}
	}
	if b := &n.sy.bar; b.arrived != nil && w != n.id {
		// The root sees w through the child-of-root subtree containing it.
		anc := w
		for anc > 2 {
			anc = (anc - 1) / 2
		}
		if _, ok := b.arrived[int32(anc)]; !ok {
			parts = append(parts, fmt.Sprintf("barrier %d episode %d awaits its subtree (%d/%d arrivals at root)",
				b.barrier, b.episode, len(b.arrived), 1+len(n.barChildren())))
		}
	}
	n.mu.Unlock()
	if len(parts) == 0 {
		return "no pending synchronization"
	}
	return strings.Join(parts, "; ")
}

// abort fails this node with err and broadcasts it so every peer
// unblocks immediately instead of waiting out its own timeout.
func (g *manager) abort(err error) { g.n.abortCluster(err) }
