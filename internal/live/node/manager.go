package node

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	ckpt "lrcdsm/internal/live/recover"
	"lrcdsm/internal/live/wire"
	"lrcdsm/internal/vc"
)

// manager is the centralized synchronization service colocated with
// node 0. It serializes lock grants, collects barrier arrivals, and
// keeps the global interval log: every closed interval is reported
// exactly once (on the lock release or barrier arrival that ends it), so
// the manager can compute, for any grant, the write notices between the
// acquirer's vector time and the grant's vector time.
//
// Requests are de-duplicated per client before any state changes: a
// node's worker issues manager RPCs strictly sequentially with strictly
// increasing tokens, so a request whose token is not newer than the
// client's last is a retransmission — the cached reply is re-sent (the
// original was lost) or, while the original is still pending, the
// duplicate is simply dropped. That makes every manager operation
// idempotent under the node layer's retransmission schedule.
//
// All manager state is owned by node 0's dispatcher goroutine; no
// locking is needed.
type manager struct {
	n  *Node
	nn int

	locks  []mlock
	lockVT []vc.VC // vector time of each lock's last release
	bars   []mbar

	episode int64

	// clients[w] is the request de-duplication state of node w.
	clients []mclient

	// log[w] holds writer w's intervals in index order (index i at
	// position i-1). Per-writer indices are contiguous because a node
	// ticks its clock only when closing a non-empty interval, and
	// reports it with the same message.
	log [][]ivalRec

	// Recovery state (only used when the node's RecoverConfig is set).
	// recovering[w] marks a peer mid-recovery: liveness skips it and a
	// KJoinReq from it is expected. incarnations[w] is the newest
	// incarnation w announced. ckptConfirmed[w] is the newest checkpoint
	// episode w confirmed durably stored; the stable checkpoint is their
	// minimum (0 = the initial image, always available).
	recovering    []bool
	incarnations  []uint32
	ckptConfirmed []int64
	// resumeEpisode/resumeVT describe the checkpoint the cluster last
	// rolled back to, handed to joiners in KJoinGrant.
	resumeEpisode int64
	resumeVT      vc.VC
	// push[w] assembles a snapshot blob w is streaming in KSnapPush
	// chunks; joinBlob[w] is the encoded replica being served back to a
	// rejoining w in KSnapChunk replies.
	push     []*pushAsm
	joinBlob [][]byte
}

// pushAsm reassembles one node's replicated snapshot from its chunks.
// Chunks arrive strictly in order: the pusher streams them as blocking
// RPCs and the client table drops retransmissions.
type pushAsm struct {
	episode int64
	nchunks int32
	next    int32
	buf     []byte
}

type ivalRec struct {
	pages []int32
}

type mlock struct {
	held    bool
	holder  int32
	waiters []waiter
}

type waiter struct {
	from  int32
	token int64
	vt    []int32
}

type mbar struct {
	arrivals []waiter
}

// replyCacheCap bounds each client's cached-reply window. A worker has
// at most one manager RPC outstanding, so one slot would suffice for
// liveness; the window absorbs deep retransmission storms re-asking for
// recently answered tokens without letting a hot client grow the cache
// without bound.
const replyCacheCap = 32

// mclient is one node's request de-duplication state: the newest token
// seen from it and a bounded cache of recent replies, keyed by token
// (a pending request — e.g. queued on a held lock — has no entry yet).
// The oldest token is evicted once the cache exceeds replyCacheCap.
type mclient struct {
	lastTok int64
	replies map[int64]*wire.Msg
	order   []int64 // cached tokens, oldest first
}

func (c *mclient) cache(m *wire.Msg) {
	if c.replies == nil {
		c.replies = make(map[int64]*wire.Msg)
	}
	if _, ok := c.replies[m.Token]; !ok {
		c.order = append(c.order, m.Token)
		if len(c.order) > replyCacheCap {
			delete(c.replies, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.replies[m.Token] = m
}

func newManager(n *Node) *manager {
	return &manager{
		n:             n,
		nn:            n.nn,
		locks:         make([]mlock, n.cfg.NLocks),
		lockVT:        make([]vc.VC, n.cfg.NLocks),
		bars:          make([]mbar, n.cfg.NBars),
		clients:       make([]mclient, n.nn),
		log:           make([][]ivalRec, n.nn),
		recovering:    make([]bool, n.nn),
		incarnations:  make([]uint32, n.nn),
		ckptConfirmed: make([]int64, n.nn),
		push:          make([]*pushAsm, n.nn),
		joinBlob:      make([][]byte, n.nn),
	}
}

func (g *manager) handle(m *wire.Msg) {
	if g.dropDup(m) {
		return
	}
	switch m.Kind {
	case wire.KLockReq:
		g.lockReq(m)
	case wire.KLockRelease:
		g.lockRelease(m)
	case wire.KBarArrive:
		g.barArrive(m)
	case wire.KJoinReq:
		g.joinReq(m)
	case wire.KSnapReq:
		g.snapReq(m)
	case wire.KSnapPush:
		g.snapPush(m)
	case wire.KResume:
		g.resume(m)
	case wire.KCkptDone:
		g.ckptDone(m)
	}
}

// dropDup filters retransmitted requests before they can mutate manager
// state, re-serving the cached reply when the original was already
// answered. It reports true when the message was a duplicate.
func (g *manager) dropDup(m *wire.Msg) bool {
	c := &g.clients[m.From]
	if m.Token > c.lastTok {
		c.lastTok = m.Token
		return false
	}
	atomic.AddInt64(&g.n.stats.DupRequests, 1)
	if r, ok := c.replies[m.Token]; ok {
		g.n.send(int(m.From), r)
	}
	return true
}

// reply sends a response to a client and caches it for retransmitted
// requests (bounded per client by replyCacheCap).
func (g *manager) reply(to int32, m *wire.Msg) {
	c := &g.clients[to]
	if m.Token <= c.lastTok {
		c.cache(m)
	}
	g.n.send(int(to), m)
}

// recordInterval appends a reported interval to the global log, checking
// the per-writer contiguity invariant the notice computation relies on.
// An interval at or below the log's head is a retransmission the client
// table already answered once — recorded exactly once, skipped here as
// defense in depth.
func (g *manager) recordInterval(iv *wire.Interval) {
	if iv == nil {
		return
	}
	w := int(iv.Writer)
	want := int32(len(g.log[w]) + 1)
	if iv.Index < want {
		return
	}
	if iv.Index > want {
		g.n.fail(fmt.Errorf("manager: writer %d reported interval %d, want %d", w, iv.Index, want))
		return
	}
	g.log[w] = append(g.log[w], ivalRec{pages: iv.Pages})
}

// noticesBetween returns the write notices of every interval covered by
// to but not by from: exactly what an acquirer joining `to` is missing.
func (g *manager) noticesBetween(from, to []int32) []wire.Notice {
	var out []wire.Notice
	for w := 0; w < g.nn; w++ {
		var lo, hi int32
		if w < len(from) {
			lo = from[w]
		}
		if w < len(to) {
			hi = to[w]
		}
		for idx := lo + 1; idx <= hi; idx++ {
			out = append(out, wire.Notice{Writer: int32(w), Index: idx, Pages: g.log[w][idx-1].pages})
		}
	}
	return out
}

func (g *manager) lockReq(m *wire.Msg) {
	lk := &g.locks[m.Lock]
	if lk.held {
		lk.waiters = append(lk.waiters, waiter{from: m.From, token: m.Token, vt: m.VT})
		return
	}
	lk.held = true
	lk.holder = m.From
	g.grant(int(m.Lock), m.From, m.Token, m.VT)
}

func (g *manager) lockRelease(m *wire.Msg) {
	g.recordInterval(m.Interval)
	lk := &g.locks[m.Lock]
	if !lk.held || lk.holder != m.From {
		g.n.fail(fmt.Errorf("manager: release of lock %d by %d, held=%v holder=%d", m.Lock, m.From, lk.held, lk.holder))
		return
	}
	g.lockVT[m.Lock] = vc.VC(m.VT).Clone()
	lk.held = false
	g.reply(m.From, &wire.Msg{Kind: wire.KReleaseAck, Token: m.Token, Lock: m.Lock})
	if len(lk.waiters) == 0 {
		return
	}
	w := lk.waiters[0]
	lk.waiters = lk.waiters[1:]
	lk.held = true
	lk.holder = w.from
	g.grant(int(m.Lock), w.from, w.token, w.vt)
}

// grant hands a lock to an acquirer: the grant carries the lock's
// release-time vector time and the write notices between the acquirer's
// time and it.
func (g *manager) grant(lock int, to int32, token int64, reqVT []int32) {
	gvt := g.lockVT[lock]
	if gvt == nil {
		gvt = vc.New(g.nn)
	}
	g.reply(to, &wire.Msg{
		Kind:    wire.KLockGrant,
		Token:   token,
		Lock:    int32(lock),
		VT:      gvt.Clone(),
		Notices: g.noticesBetween(reqVT, gvt),
	})
}

func (g *manager) barArrive(m *wire.Msg) {
	g.recordInterval(m.Interval)
	b := &g.bars[m.Barrier]
	b.arrivals = append(b.arrivals, waiter{from: m.From, token: m.Token, vt: m.VT})
	if len(b.arrivals) < g.nn {
		return
	}
	g.episode++
	merged := vc.New(g.nn)
	for _, a := range b.arrivals {
		merged.Join(a.vt)
	}
	// A flagged episode captures the manager's half of the checkpoint
	// before any departure: by the time a node can snapshot (after its
	// depart) or confirm, the manager snapshot it pairs with exists.
	if rc := g.n.cfg.Recover; rc != nil && rc.Every > 0 && g.episode%rc.Every == 0 {
		g.captureManager(merged)
	}
	for _, a := range b.arrivals {
		g.reply(a.from, &wire.Msg{
			Kind:    wire.KBarDepart,
			Token:   a.token,
			Barrier: m.Barrier,
			Episode: g.episode,
			VT:      merged.Clone(),
			Notices: g.noticesBetween(a.vt, merged),
		})
	}
	b.arrivals = nil
}

// ---- checkpoint and rejoin ----

// captureManager snapshots the manager's synchronization state at the
// just-completed (flagged) episode into the store.
func (g *manager) captureManager(merged vc.VC) {
	snap := &ckpt.ManagerSnapshot{
		Episode: g.episode,
		VT:      merged.Clone(),
		LockVT:  make([][]int32, len(g.lockVT)),
		Log:     make([][]ckpt.LogRec, g.nn),
	}
	for i, lv := range g.lockVT {
		if lv != nil {
			snap.LockVT[i] = lv.Clone()
		}
	}
	for w := range g.log {
		for _, r := range g.log[w] {
			snap.Log[w] = append(snap.Log[w], ckpt.LogRec{Pages: append([]int32(nil), r.pages...)})
		}
	}
	if err := g.n.cfg.Recover.Store.PutManager(snap); err != nil {
		g.abort(fmt.Errorf("manager: storing checkpoint %d: %w", g.episode, err))
	}
}

// ckptDone records a node's confirmation that it durably stored its
// snapshot for an episode.
func (g *manager) ckptDone(m *wire.Msg) {
	w := int(m.From)
	if m.Episode > g.ckptConfirmed[w] {
		g.ckptConfirmed[w] = m.Episode
	}
	g.reply(m.From, &wire.Msg{Kind: wire.KAck, Token: m.Token})
}

// stableCkpt is the newest episode every node has confirmed; the
// rollback target a recovery restores.
func (g *manager) stableCkpt() int64 {
	stable := g.ckptConfirmed[0]
	for _, e := range g.ckptConfirmed[1:] {
		if e < stable {
			stable = e
		}
	}
	return stable
}

// snapPush assembles a replicated snapshot streamed by a node, one
// chunk per (acknowledged, de-duplicated) RPC, and stores it once
// complete.
func (g *manager) snapPush(m *wire.Msg) {
	w := int(m.From)
	a := g.push[w]
	if a == nil || a.episode != m.Episode {
		a = &pushAsm{episode: m.Episode, nchunks: m.NChunks}
		g.push[w] = a
	}
	if m.Chunk != a.next {
		g.abort(fmt.Errorf("manager: snapshot chunk %d from %d, want %d", m.Chunk, w, a.next))
		return
	}
	a.buf = append(a.buf, m.Data...)
	a.next++
	if a.next == a.nchunks {
		g.push[w] = nil
		snap, err := ckpt.DecodeNode(a.buf)
		if err != nil {
			g.abort(fmt.Errorf("manager: replicated snapshot from %d: %w", w, err))
			return
		}
		if err := g.n.cfg.Recover.Store.PutNode(snap); err != nil {
			g.abort(fmt.Errorf("manager: storing replica of %d: %w", w, err))
			return
		}
	}
	g.reply(m.From, &wire.Msg{Kind: wire.KAck, Token: m.Token})
}

// joinReq admits a restarted node: the grant names the checkpoint
// episode the cluster rolled back to, its merged vector time, and — when
// the manager holds a replica of the joiner's snapshot — how many chunks
// the joiner may stream with KSnapReq if its own store is gone.
func (g *manager) joinReq(m *wire.Msg) {
	w := int(m.From)
	g.incarnations[w] = m.Incarnation
	reply := &wire.Msg{
		Kind: wire.KJoinGrant, Token: m.Token,
		Incarnation: m.Incarnation, Episode: g.resumeEpisode,
	}
	if g.resumeVT != nil {
		reply.VT = g.resumeVT.Clone()
	}
	if g.resumeEpisode > 0 {
		if snap, err := g.n.cfg.Recover.Store.GetNode(g.resumeEpisode, w); err == nil {
			blob := ckpt.EncodeNode(snap)
			g.joinBlob[w] = blob
			reply.NChunks = int32((len(blob) + snapChunkSize - 1) / snapChunkSize)
		}
	}
	g.reply(m.From, reply)
}

// snapReq serves one chunk of the joiner's replicated snapshot.
func (g *manager) snapReq(m *wire.Msg) {
	w := int(m.From)
	blob := g.joinBlob[w]
	lo := int(m.Chunk) * snapChunkSize
	if blob == nil || lo < 0 || lo >= len(blob) {
		g.abort(fmt.Errorf("manager: snapshot chunk %d requested by %d, have %d bytes", m.Chunk, w, len(blob)))
		return
	}
	hi := lo + snapChunkSize
	if hi > len(blob) {
		hi = len(blob)
	}
	g.reply(m.From, &wire.Msg{
		Kind: wire.KSnapChunk, Token: m.Token,
		Episode: m.Episode, Chunk: m.Chunk, Data: blob[lo:hi],
	})
}

// resume re-arms liveness for a rejoined node and ends its recovery.
func (g *manager) resume(m *wire.Msg) {
	w := int(m.From)
	g.recovering[w] = false
	g.joinBlob[w] = nil
	if g.n.lastHeard != nil {
		atomic.StoreInt64(&g.n.lastHeard[w], time.Now().UnixNano())
	}
	g.reply(m.From, &wire.Msg{Kind: wire.KAck, Token: m.Token})
}

// resetTo rolls the manager back to checkpoint episode k (0 = pristine):
// locks free, barriers empty, the interval log and lock vector times
// restored from the manager snapshot, client de-duplication cleared for
// the new epoch, and victim marked recovering. Runs on the dispatcher
// via Node.Control.
func (g *manager) resetTo(k int64, victim int) error {
	var ms *ckpt.ManagerSnapshot
	if k > 0 {
		var err error
		if ms, err = g.n.cfg.Recover.Store.GetManager(k); err != nil {
			return fmt.Errorf("manager: checkpoint %d: %w", k, err)
		}
	}
	for i := range g.locks {
		g.locks[i] = mlock{}
	}
	for i := range g.lockVT {
		g.lockVT[i] = nil
		if ms != nil && i < len(ms.LockVT) && ms.LockVT[i] != nil {
			g.lockVT[i] = vc.VC(ms.LockVT[i]).Clone()
		}
	}
	for i := range g.bars {
		g.bars[i] = mbar{}
	}
	g.episode = k
	for i := range g.clients {
		g.clients[i] = mclient{}
	}
	g.log = make([][]ivalRec, g.nn)
	if ms != nil {
		for w := range ms.Log {
			for _, r := range ms.Log[w] {
				g.log[w] = append(g.log[w], ivalRec{pages: append([]int32(nil), r.Pages...)})
			}
		}
	}
	g.resumeEpisode = k
	g.resumeVT = nil
	if ms != nil {
		g.resumeVT = vc.VC(ms.VT).Clone()
	}
	for w := range g.recovering {
		g.recovering[w] = false
	}
	if victim >= 0 && victim < g.nn {
		g.recovering[victim] = true
	}
	// Confirmations past the rollback point refer to episodes the
	// re-execution will reach (and re-store) again; clamping keeps the
	// stable computation conservative.
	for w := range g.ckptConfirmed {
		if g.ckptConfirmed[w] > k {
			g.ckptConfirmed[w] = k
		}
	}
	for w := range g.push {
		g.push[w] = nil
	}
	for w := range g.joinBlob {
		g.joinBlob[w] = nil
	}
	now := time.Now().UnixNano()
	for w := range g.n.lastHeard {
		atomic.StoreInt64(&g.n.lastHeard[w], now)
	}
	return nil
}

// ---- failure detection ----

// checkLiveness sweeps the per-peer last-heard stamps; a peer silent
// past HeartbeatTimeout is presumed dead and the whole cluster is
// aborted with a structured error naming it and its pending
// synchronization — a clean fast failure instead of N workers each
// riding out an RPC timeout. Runs on the dispatcher goroutine, which
// owns the manager state the verdict describes.
func (g *manager) checkLiveness() {
	now := time.Now().UnixNano()
	for w := 1; w < g.nn; w++ {
		if g.recovering[w] {
			continue // its silence is expected; KResume re-arms it
		}
		silence := time.Duration(now - atomic.LoadInt64(&g.n.lastHeard[w]))
		if silence <= g.n.cfg.HeartbeatTimeout {
			continue
		}
		perr := &PeerDownError{Node: w, Silence: silence, Pending: g.pendingFor(w)}
		// With a supervisor attached, hand the failure over instead of
		// aborting: marking the peer recovering stops this sweep from
		// re-firing while the rollback is organized.
		if rc := g.n.cfg.Recover; rc != nil && rc.OnPeerDown != nil {
			g.recovering[w] = true
			if rc.OnPeerDown(perr) {
				continue
			}
			g.recovering[w] = false
		}
		g.abort(perr)
		return
	}
}

// pendingFor describes a node's synchronization state as the manager
// sees it, for the failure verdict.
func (g *manager) pendingFor(w int) string {
	var parts []string
	for id := range g.locks {
		lk := &g.locks[id]
		if lk.held && int(lk.holder) == w {
			parts = append(parts, fmt.Sprintf("holds lock %d", id))
		}
		for _, wt := range lk.waiters {
			if int(wt.from) == w {
				parts = append(parts, fmt.Sprintf("waiting for lock %d", id))
			}
		}
	}
	for id := range g.bars {
		n := len(g.bars[id].arrivals)
		if n == 0 {
			continue
		}
		arrived := false
		for _, a := range g.bars[id].arrivals {
			if int(a.from) == w {
				arrived = true
				break
			}
		}
		if !arrived {
			parts = append(parts, fmt.Sprintf("barrier %d awaits it (%d/%d arrived)", id, n, g.nn))
		}
	}
	if len(parts) == 0 {
		return "no pending synchronization"
	}
	return strings.Join(parts, "; ")
}

// abort fails this node with err and broadcasts it so every peer
// unblocks immediately instead of waiting out its own timeout. The
// broadcast is best-effort — a peer the abort cannot reach (the dead or
// partitioned one) is torn down by the cluster anyway.
func (g *manager) abort(err error) {
	msg := &wire.Msg{Kind: wire.KAbort, Err: err.Error()}
	for p := 0; p < g.nn; p++ {
		if p != g.n.id {
			g.n.send(p, msg)
		}
	}
	g.n.fail(err)
}
