package node

import (
	"fmt"

	"lrcdsm/internal/live/wire"
	"lrcdsm/internal/vc"
)

// manager is the centralized synchronization service colocated with
// node 0. It serializes lock grants, collects barrier arrivals, and
// keeps the global interval log: every closed interval is reported
// exactly once (on the lock release or barrier arrival that ends it), so
// the manager can compute, for any grant, the write notices between the
// acquirer's vector time and the grant's vector time.
//
// All manager state is owned by node 0's dispatcher goroutine; no
// locking is needed.
type manager struct {
	n  *Node
	nn int

	locks  []mlock
	lockVT []vc.VC // vector time of each lock's last release
	bars   []mbar

	episode int64

	// log[w] holds writer w's intervals in index order (index i at
	// position i-1). Per-writer indices are contiguous because a node
	// ticks its clock only when closing a non-empty interval, and
	// reports it with the same message.
	log [][]ivalRec
}

type ivalRec struct {
	pages []int32
}

type mlock struct {
	held    bool
	holder  int32
	waiters []waiter
}

type waiter struct {
	from  int32
	token int64
	vt    []int32
}

type mbar struct {
	arrivals []waiter
}

func newManager(n *Node) *manager {
	return &manager{
		n:      n,
		nn:     n.nn,
		locks:  make([]mlock, n.cfg.NLocks),
		lockVT: make([]vc.VC, n.cfg.NLocks),
		bars:   make([]mbar, n.cfg.NBars),
		log:    make([][]ivalRec, n.nn),
	}
}

func (g *manager) handle(m *wire.Msg) {
	switch m.Kind {
	case wire.KLockReq:
		g.lockReq(m)
	case wire.KLockRelease:
		g.lockRelease(m)
	case wire.KBarArrive:
		g.barArrive(m)
	}
}

// recordInterval appends a reported interval to the global log, checking
// the per-writer contiguity invariant the notice computation relies on.
func (g *manager) recordInterval(iv *wire.Interval) {
	if iv == nil {
		return
	}
	w := int(iv.Writer)
	if want := int32(len(g.log[w]) + 1); iv.Index != want {
		g.n.fail(fmt.Errorf("manager: writer %d reported interval %d, want %d", w, iv.Index, want))
		return
	}
	g.log[w] = append(g.log[w], ivalRec{pages: iv.Pages})
}

// noticesBetween returns the write notices of every interval covered by
// to but not by from: exactly what an acquirer joining `to` is missing.
func (g *manager) noticesBetween(from, to []int32) []wire.Notice {
	var out []wire.Notice
	for w := 0; w < g.nn; w++ {
		var lo, hi int32
		if w < len(from) {
			lo = from[w]
		}
		if w < len(to) {
			hi = to[w]
		}
		for idx := lo + 1; idx <= hi; idx++ {
			out = append(out, wire.Notice{Writer: int32(w), Index: idx, Pages: g.log[w][idx-1].pages})
		}
	}
	return out
}

func (g *manager) lockReq(m *wire.Msg) {
	lk := &g.locks[m.Lock]
	if lk.held {
		lk.waiters = append(lk.waiters, waiter{from: m.From, token: m.Token, vt: m.VT})
		return
	}
	lk.held = true
	lk.holder = m.From
	g.grant(int(m.Lock), m.From, m.Token, m.VT)
}

func (g *manager) lockRelease(m *wire.Msg) {
	g.recordInterval(m.Interval)
	lk := &g.locks[m.Lock]
	if !lk.held || lk.holder != m.From {
		g.n.fail(fmt.Errorf("manager: release of lock %d by %d, held=%v holder=%d", m.Lock, m.From, lk.held, lk.holder))
		return
	}
	g.lockVT[m.Lock] = vc.VC(m.VT).Clone()
	lk.held = false
	if len(lk.waiters) == 0 {
		return
	}
	w := lk.waiters[0]
	lk.waiters = lk.waiters[1:]
	lk.held = true
	lk.holder = w.from
	g.grant(int(m.Lock), w.from, w.token, w.vt)
}

// grant hands a lock to an acquirer: the grant carries the lock's
// release-time vector time and the write notices between the acquirer's
// time and it.
func (g *manager) grant(lock int, to int32, token int64, reqVT []int32) {
	gvt := g.lockVT[lock]
	if gvt == nil {
		gvt = vc.New(g.nn)
	}
	reply := &wire.Msg{
		Kind:    wire.KLockGrant,
		Token:   token,
		Lock:    int32(lock),
		VT:      gvt.Clone(),
		Notices: g.noticesBetween(reqVT, gvt),
	}
	g.n.send(int(to), reply)
}

func (g *manager) barArrive(m *wire.Msg) {
	g.recordInterval(m.Interval)
	b := &g.bars[m.Barrier]
	b.arrivals = append(b.arrivals, waiter{from: m.From, token: m.Token, vt: m.VT})
	if len(b.arrivals) < g.nn {
		return
	}
	g.episode++
	merged := vc.New(g.nn)
	for _, a := range b.arrivals {
		merged.Join(a.vt)
	}
	for _, a := range b.arrivals {
		reply := &wire.Msg{
			Kind:    wire.KBarDepart,
			Token:   a.token,
			Barrier: m.Barrier,
			Episode: g.episode,
			VT:      merged.Clone(),
			Notices: g.noticesBetween(a.vt, merged),
		}
		g.n.send(int(a.from), reply)
	}
	b.arrivals = nil
}
