package node

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"lrcdsm/internal/live/wire"
	"lrcdsm/internal/vc"
)

// manager is the centralized synchronization service colocated with
// node 0. It serializes lock grants, collects barrier arrivals, and
// keeps the global interval log: every closed interval is reported
// exactly once (on the lock release or barrier arrival that ends it), so
// the manager can compute, for any grant, the write notices between the
// acquirer's vector time and the grant's vector time.
//
// Requests are de-duplicated per client before any state changes: a
// node's worker issues manager RPCs strictly sequentially with strictly
// increasing tokens, so a request whose token is not newer than the
// client's last is a retransmission — the cached reply is re-sent (the
// original was lost) or, while the original is still pending, the
// duplicate is simply dropped. That makes every manager operation
// idempotent under the node layer's retransmission schedule.
//
// All manager state is owned by node 0's dispatcher goroutine; no
// locking is needed.
type manager struct {
	n  *Node
	nn int

	locks  []mlock
	lockVT []vc.VC // vector time of each lock's last release
	bars   []mbar

	episode int64

	// clients[w] is the request de-duplication state of node w.
	clients []mclient

	// log[w] holds writer w's intervals in index order (index i at
	// position i-1). Per-writer indices are contiguous because a node
	// ticks its clock only when closing a non-empty interval, and
	// reports it with the same message.
	log [][]ivalRec
}

type ivalRec struct {
	pages []int32
}

type mlock struct {
	held    bool
	holder  int32
	waiters []waiter
}

type waiter struct {
	from  int32
	token int64
	vt    []int32
}

type mbar struct {
	arrivals []waiter
}

// mclient is one node's request de-duplication state: the newest token
// seen from it and, once sent, the reply to that token (nil while the
// request is still pending, e.g. queued on a held lock).
type mclient struct {
	lastTok int64
	reply   *wire.Msg
}

func newManager(n *Node) *manager {
	return &manager{
		n:       n,
		nn:      n.nn,
		locks:   make([]mlock, n.cfg.NLocks),
		lockVT:  make([]vc.VC, n.cfg.NLocks),
		bars:    make([]mbar, n.cfg.NBars),
		clients: make([]mclient, n.nn),
		log:     make([][]ivalRec, n.nn),
	}
}

func (g *manager) handle(m *wire.Msg) {
	if g.dropDup(m) {
		return
	}
	switch m.Kind {
	case wire.KLockReq:
		g.lockReq(m)
	case wire.KLockRelease:
		g.lockRelease(m)
	case wire.KBarArrive:
		g.barArrive(m)
	}
}

// dropDup filters retransmitted requests before they can mutate manager
// state, re-serving the cached reply when the original was already
// answered. It reports true when the message was a duplicate.
func (g *manager) dropDup(m *wire.Msg) bool {
	c := &g.clients[m.From]
	if m.Token > c.lastTok {
		c.lastTok, c.reply = m.Token, nil
		return false
	}
	atomic.AddInt64(&g.n.stats.DupRequests, 1)
	if m.Token == c.lastTok && c.reply != nil {
		g.n.send(int(m.From), c.reply)
	}
	return true
}

// reply sends a response to a client and caches it for retransmitted
// requests. The cache holds at most one reply per client, which
// suffices: a worker has at most one manager RPC outstanding, and its
// next request (a strictly newer token) releases the slot.
func (g *manager) reply(to int32, m *wire.Msg) {
	c := &g.clients[to]
	if m.Token == c.lastTok {
		c.reply = m
	}
	g.n.send(int(to), m)
}

// recordInterval appends a reported interval to the global log, checking
// the per-writer contiguity invariant the notice computation relies on.
// An interval at or below the log's head is a retransmission the client
// table already answered once — recorded exactly once, skipped here as
// defense in depth.
func (g *manager) recordInterval(iv *wire.Interval) {
	if iv == nil {
		return
	}
	w := int(iv.Writer)
	want := int32(len(g.log[w]) + 1)
	if iv.Index < want {
		return
	}
	if iv.Index > want {
		g.n.fail(fmt.Errorf("manager: writer %d reported interval %d, want %d", w, iv.Index, want))
		return
	}
	g.log[w] = append(g.log[w], ivalRec{pages: iv.Pages})
}

// noticesBetween returns the write notices of every interval covered by
// to but not by from: exactly what an acquirer joining `to` is missing.
func (g *manager) noticesBetween(from, to []int32) []wire.Notice {
	var out []wire.Notice
	for w := 0; w < g.nn; w++ {
		var lo, hi int32
		if w < len(from) {
			lo = from[w]
		}
		if w < len(to) {
			hi = to[w]
		}
		for idx := lo + 1; idx <= hi; idx++ {
			out = append(out, wire.Notice{Writer: int32(w), Index: idx, Pages: g.log[w][idx-1].pages})
		}
	}
	return out
}

func (g *manager) lockReq(m *wire.Msg) {
	lk := &g.locks[m.Lock]
	if lk.held {
		lk.waiters = append(lk.waiters, waiter{from: m.From, token: m.Token, vt: m.VT})
		return
	}
	lk.held = true
	lk.holder = m.From
	g.grant(int(m.Lock), m.From, m.Token, m.VT)
}

func (g *manager) lockRelease(m *wire.Msg) {
	g.recordInterval(m.Interval)
	lk := &g.locks[m.Lock]
	if !lk.held || lk.holder != m.From {
		g.n.fail(fmt.Errorf("manager: release of lock %d by %d, held=%v holder=%d", m.Lock, m.From, lk.held, lk.holder))
		return
	}
	g.lockVT[m.Lock] = vc.VC(m.VT).Clone()
	lk.held = false
	g.reply(m.From, &wire.Msg{Kind: wire.KReleaseAck, Token: m.Token, Lock: m.Lock})
	if len(lk.waiters) == 0 {
		return
	}
	w := lk.waiters[0]
	lk.waiters = lk.waiters[1:]
	lk.held = true
	lk.holder = w.from
	g.grant(int(m.Lock), w.from, w.token, w.vt)
}

// grant hands a lock to an acquirer: the grant carries the lock's
// release-time vector time and the write notices between the acquirer's
// time and it.
func (g *manager) grant(lock int, to int32, token int64, reqVT []int32) {
	gvt := g.lockVT[lock]
	if gvt == nil {
		gvt = vc.New(g.nn)
	}
	g.reply(to, &wire.Msg{
		Kind:    wire.KLockGrant,
		Token:   token,
		Lock:    int32(lock),
		VT:      gvt.Clone(),
		Notices: g.noticesBetween(reqVT, gvt),
	})
}

func (g *manager) barArrive(m *wire.Msg) {
	g.recordInterval(m.Interval)
	b := &g.bars[m.Barrier]
	b.arrivals = append(b.arrivals, waiter{from: m.From, token: m.Token, vt: m.VT})
	if len(b.arrivals) < g.nn {
		return
	}
	g.episode++
	merged := vc.New(g.nn)
	for _, a := range b.arrivals {
		merged.Join(a.vt)
	}
	for _, a := range b.arrivals {
		g.reply(a.from, &wire.Msg{
			Kind:    wire.KBarDepart,
			Token:   a.token,
			Barrier: m.Barrier,
			Episode: g.episode,
			VT:      merged.Clone(),
			Notices: g.noticesBetween(a.vt, merged),
		})
	}
	b.arrivals = nil
}

// ---- failure detection ----

// checkLiveness sweeps the per-peer last-heard stamps; a peer silent
// past HeartbeatTimeout is presumed dead and the whole cluster is
// aborted with a structured error naming it and its pending
// synchronization — a clean fast failure instead of N workers each
// riding out an RPC timeout. Runs on the dispatcher goroutine, which
// owns the manager state the verdict describes.
func (g *manager) checkLiveness() {
	now := time.Now().UnixNano()
	for w := 1; w < g.nn; w++ {
		silence := time.Duration(now - atomic.LoadInt64(&g.n.lastHeard[w]))
		if silence <= g.n.cfg.HeartbeatTimeout {
			continue
		}
		g.abort(&PeerDownError{Node: w, Silence: silence, Pending: g.pendingFor(w)})
		return
	}
}

// pendingFor describes a node's synchronization state as the manager
// sees it, for the failure verdict.
func (g *manager) pendingFor(w int) string {
	var parts []string
	for id := range g.locks {
		lk := &g.locks[id]
		if lk.held && int(lk.holder) == w {
			parts = append(parts, fmt.Sprintf("holds lock %d", id))
		}
		for _, wt := range lk.waiters {
			if int(wt.from) == w {
				parts = append(parts, fmt.Sprintf("waiting for lock %d", id))
			}
		}
	}
	for id := range g.bars {
		n := len(g.bars[id].arrivals)
		if n == 0 {
			continue
		}
		arrived := false
		for _, a := range g.bars[id].arrivals {
			if int(a.from) == w {
				arrived = true
				break
			}
		}
		if !arrived {
			parts = append(parts, fmt.Sprintf("barrier %d awaits it (%d/%d arrived)", id, n, g.nn))
		}
	}
	if len(parts) == 0 {
		return "no pending synchronization"
	}
	return strings.Join(parts, "; ")
}

// abort fails this node with err and broadcasts it so every peer
// unblocks immediately instead of waiting out its own timeout. The
// broadcast is best-effort — a peer the abort cannot reach (the dead or
// partitioned one) is torn down by the cluster anyway.
func (g *manager) abort(err error) {
	msg := &wire.Msg{Kind: wire.KAbort, Err: err.Error()}
	for p := 0; p < g.nn; p++ {
		if p != g.n.id {
			g.n.send(p, msg)
		}
	}
	g.n.fail(err)
}
