package node

import (
	"testing"
	"time"
)

// TestJitterBounds draws many samples and checks every one lands in the
// documented [d/2, d] window.
func TestJitterBounds(t *testing.T) {
	n := &Node{id: 3}
	n.rngState.Store(0x5eed)
	const d = 80 * time.Millisecond
	for i := 0; i < 10_000; i++ {
		w := n.jitter(d)
		if w < d/2 || w > d {
			t.Fatalf("draw %d: jitter(%v) = %v outside [%v, %v]", i, d, w, d/2, d)
		}
	}
}

// TestJitterSpread is the satellite's point: retransmission schedules
// must decorrelate, so the draws have to actually spread across the
// window rather than cluster. Bucket the window into eighths and demand
// every bucket gets a nontrivial share.
func TestJitterSpread(t *testing.T) {
	n := &Node{id: 1}
	n.rngState.Store(1)
	const (
		d       = 128 * time.Millisecond
		draws   = 8_000
		buckets = 8
	)
	var hist [buckets]int
	span := d - d/2
	for i := 0; i < draws; i++ {
		w := n.jitter(d)
		b := int((w - d/2) * buckets / (span + 1))
		hist[b]++
	}
	// A uniform draw puts draws/buckets in each; demand at least a
	// quarter of that so a mixer collapsing to a few values fails loud.
	min := draws / buckets / 4
	for b, c := range hist {
		if c < min {
			t.Fatalf("bucket %d got %d of %d draws (< %d): jitter distribution collapsed %v",
				b, c, draws, min, hist)
		}
	}
}

// TestJitterTinyDelays verifies sub-millisecond waits pass through
// unjittered — there is nothing to decorrelate at that scale and the
// fast path must not divide them to zero.
func TestJitterTinyDelays(t *testing.T) {
	n := &Node{id: 0}
	for _, d := range []time.Duration{0, time.Microsecond, time.Millisecond} {
		if got := n.jitter(d); got != d {
			t.Fatalf("jitter(%v) = %v, want pass-through", d, got)
		}
	}
}

// TestJitterDistinctNodes checks two nodes with identical mixer state
// still draw different schedules — the node id is folded into the hash
// so lockstep restarts don't re-synchronize.
func TestJitterDistinctNodes(t *testing.T) {
	a, b := &Node{id: 0}, &Node{id: 1}
	a.rngState.Store(42)
	b.rngState.Store(42)
	const d = 64 * time.Millisecond
	same := 0
	for i := 0; i < 100; i++ {
		if a.jitter(d) == b.jitter(d) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("%d/100 draws identical across nodes — id not decorrelating", same)
	}
}
