package node_test

import (
	"encoding/binary"
	"strings"
	"sync"
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live/node"
	"lrcdsm/internal/live/transport"
)

// startNodes builds and starts an n-node cluster with the given shared
// layout, returning the nodes and a teardown function.
func startNodes(t *testing.T, cfg node.Config, n int) ([]*node.Node, func()) {
	t.Helper()
	trs := transport.NewInprocNetwork(n)
	nodes := make([]*node.Node, n)
	for i := range nodes {
		nodes[i] = node.New(trs[i], cfg)
		nodes[i].Start()
	}
	return nodes, func() {
		for _, nd := range nodes {
			nd.Close()
		}
		for _, tr := range trs {
			tr.Close()
		}
		for _, nd := range nodes {
			nd.Wait()
		}
	}
}

// TestLockCounter hammers one lock-protected counter from every node and
// checks mutual exclusion end to end: no increment may be lost.
func TestLockCounter(t *testing.T) {
	const nn, iters = 3, 50
	cfg := node.Config{
		PageSize: 256, NPages: 1, Homes: []int32{0},
		NLocks: 1, NBars: 1, Protocol: core.LI,
	}
	nodes, stop := startNodes(t, cfg, nn)
	defer stop()

	var wg sync.WaitGroup
	for _, nd := range nodes {
		wg.Add(1)
		go func(w *node.Node) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				w.Lock(0)
				w.WriteU64(0, w.ReadU64(0)+1)
				w.Unlock(0)
			}
			w.Barrier(0)
			w.FinalFlush()
		}(nd)
	}
	wg.Wait()
	img := nodes[0].HomePage(0)
	if got := binary.LittleEndian.Uint64(img); got != nn*iters {
		t.Fatalf("counter = %d, want %d", got, nn*iters)
	}
}

// TestHomeLogPruneFallback drives one writer far past the home's diff
// log capacity while the other node holds a stale copy; the staleness
// forces the eventual LH pull to fall back to a full page fetch, which
// must still produce the right value.
func TestHomeLogPruneFallback(t *testing.T) {
	const writes = 100 // > homeLogCap
	cfg := node.Config{
		PageSize: 256, NPages: 1, Homes: []int32{0},
		NLocks: 1, NBars: 2, Protocol: core.LH,
	}
	nodes, stop := startNodes(t, cfg, 2)
	defer stop()

	var wg sync.WaitGroup
	var got uint64
	wg.Add(2)
	go func() { // node 0: the writer (and home)
		defer wg.Done()
		w := nodes[0]
		w.Barrier(0)
		for i := 0; i < writes; i++ {
			w.Lock(0)
			w.WriteU64(0, w.ReadU64(0)+1)
			w.Unlock(0)
		}
		w.Barrier(1)
	}()
	go func() { // node 1: faults a copy in, goes stale, then catches up
		defer wg.Done()
		w := nodes[1]
		if v := w.ReadU64(0); v != 0 {
			t.Errorf("initial read = %d, want 0", v)
		}
		w.Barrier(0)
		w.Barrier(1)
		got = w.ReadU64(0)
	}()
	wg.Wait()
	if got != writes {
		t.Fatalf("reader saw %d, want %d", got, writes)
	}
	s := nodes[1].Stats()
	if s.DiffPulls == 0 {
		t.Error("reader issued no LH diff pulls")
	}
	if s.PageFetches < 2 {
		t.Errorf("reader page fetches = %d, want >= 2 (initial fault + pruned-log fallback)", s.PageFetches)
	}
}

// TestRPCTimeoutSurfaces checks that a dead peer turns into a bounded
// error instead of a hang: node 1 exists but never serves requests.
func TestRPCTimeoutSurfaces(t *testing.T) {
	cfg := node.Config{
		PageSize: 256, NPages: 1, Homes: []int32{1},
		NLocks: 1, NBars: 1, Protocol: core.LI,
		RPCTimeout: 200 * time.Millisecond,
	}
	trs := transport.NewInprocNetwork(2)
	n0 := node.New(trs[0], cfg)
	n0.Start()
	defer func() {
		n0.Close()
		trs[0].Close()
		trs[1].Close()
		n0.Wait()
	}()

	errc := make(chan string, 1)
	go func() {
		defer func() {
			r := recover()
			if r == nil {
				errc <- ""
				return
			}
			if re, ok := r.(interface{ Unwrap() error }); ok {
				errc <- re.Unwrap().Error()
			} else {
				panic(r)
			}
		}()
		n0.ReadU64(0) // faults to node 1, which never answers
	}()
	select {
	case msg := <-errc:
		if !strings.Contains(msg, "timeout") {
			t.Fatalf("fault against dead peer: got %q, want rpc timeout", msg)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fault against dead peer hung past its RPC timeout")
	}
}
