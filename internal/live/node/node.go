// Package node implements one node of the live DSM runtime: a
// goroutine-backed lazy-release-consistency engine executing the same
// protocol concepts the simulator models — twins, word diffs, vector
// timestamps, write notices — over a real transport.
//
// The live protocol is home-based LRC. Every page has a statically
// assigned home node. A release (lock release or barrier arrival) closes
// the write interval: each dirtied page is diffed against its twin and
// the diffs are flushed to the pages' homes; the release blocks until
// every home acknowledges. Because the release does not complete until
// the homes are current, any interval that happened-before an acquire is
// already applied at the homes when the acquirer learns of it, so a
// fault can always be satisfied with a full copy from the home (LI) and
// an update pull can always be satisfied from the home's diff log (LH).
//
// Synchronization is decentralized (see sync.go): locks are home-based
// with TreadMarks-style ownership forwarding so grants travel directly
// from last holder to next requester, barriers combine up a fan-in tree
// rooted at node 0 and release down it, and the write notices a grant
// or release carries come from per-writer interval logs — each node
// keeps its own log authoritatively and peers replicate segments on
// demand. Node 0 retains only the recovery manager (join/checkpoint
// coordination) and the liveness monitor.
//
// Each node runs three goroutine roles: the worker (application code,
// calling the core.Worker operations), a pump draining the transport
// (routing replies straight to waiting requesters), and a dispatcher
// serving requests (page fetches, diff pulls, flushes, and — on node
// 0 — the manager). Workers never hold the node mutex across a message
// wait, and only the worker invalidates its own pages, so faults cannot
// race an invalidation.
package node

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live/consensus"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/live/wire"
	"lrcdsm/internal/page"
	"lrcdsm/internal/vc"
)

// homeLogCap bounds the per-page diff log a home keeps for LH update
// pulls. When the log overflows, the oldest entries are pruned and a
// puller that needs them falls back to a full page copy.
const homeLogCap = 64

// inqDepth bounds the dispatcher's request queue. Requests in flight are
// bounded by a small multiple of the cluster size (each worker has at
// most one fault plus one flush fan-out outstanding), so this never
// fills in practice.
const inqDepth = 8192

// Config parameterizes one live node. All nodes of a cluster must be
// built with identical PageSize, NPages, Homes, NLocks, NBars and
// Protocol.
type Config struct {
	// PageSize is the shared page size in bytes (a power of two).
	PageSize int
	// NPages is the number of shared pages backing the address space.
	NPages int
	// Homes maps each page to its home node.
	Homes []int32
	// Init holds the initial contents of nonzero pages; each node
	// installs the pages it homes.
	Init map[page.ID][]byte
	// NLocks and NBars size the manager's lock and barrier tables.
	NLocks, NBars int
	// Protocol selects the acquire-side behaviour: core.LI invalidates
	// noticed pages, core.LH refreshes cached copies by pulling diffs
	// from the home. Other protocols are not supported live.
	Protocol core.Protocol
	// Observer, when non-nil, receives protocol events.
	Observer Observer
	// RPCTimeout bounds every remote wait (default 30s); exceeding it
	// fails the run instead of hanging.
	RPCTimeout time.Duration
	// RetryBase is the delay before the first retransmission of an
	// unanswered RPC (default 200ms); it doubles per attempt up to
	// RetryMax (default 2s). Retransmits reuse the request's token, and
	// every receiver de-duplicates by it, so retries are idempotent. The
	// total wait stays bounded by RPCTimeout.
	RetryBase time.Duration
	RetryMax  time.Duration
	// HeartbeatInterval is the period of each node's liveness beacon to
	// the manager (default 1s). HeartbeatTimeout is the silence after
	// which the manager presumes a peer dead and aborts the whole cluster
	// with a PeerDownError (default 10s). A negative HeartbeatTimeout
	// disables failure detection.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Recover, when non-nil, enables barrier-aligned checkpointing and
	// the crash/rejoin protocol (see recover.go). Nil keeps the node's
	// behaviour identical to a recovery-free build: no epoch fencing, no
	// checkpoint capture, and peer death aborts the cluster.
	Recover *RecoverConfig
}

// lpage is one node's view of one shared page.
type lpage struct {
	data  page.Buf
	twin  page.Buf
	valid bool
	// copyVT[w] is the highest interval index of writer w whose
	// modifications to this page are incorporated in data.
	copyVT vc.VC

	// Home-side state (only on the page's home node).
	log     []wire.Diff // recent diffs, in application order
	logBase vc.VC       // highest interval index per writer pruned from log
	homeVT  vc.VC       // highest interval index per writer applied here
}

// runError wraps a fatal protocol error panicking out of a worker
// operation; the cluster recovers it at the worker goroutine boundary
// (via the Unwrap method, keeping the type itself unexported).
type runError struct{ err error }

func (e runError) Unwrap() error { return e.err }

func (e runError) String() string { return e.err.Error() }

// Node is one live DSM node.
type Node struct {
	cfg       Config
	id        int
	nn        int
	pageShift uint
	tr        transport.Transport
	obs       Observer

	mu    sync.Mutex
	vt    vc.VC
	pages []lpage
	mod   []page.ID
	// sy is this node's share of the distributed synchronization plane
	// (locks homed here or owned here, barrier-tree aggregation,
	// per-writer interval knowledge). Guarded by mu.
	sy *syncState

	// Capture-gate state (under mu; see recover.go). While gateEpisode is
	// non-zero, incoming flushes stamped with that episode or later are
	// buffered in gated — unapplied and unacknowledged — until the
	// worker's checkpoint capture completes.
	gateEpisode int64
	gated       []*wire.Msg

	// Worker-private recovery state: the worker's count of departed
	// barrier episodes (stamps outgoing flushes, flags checkpoint
	// episodes) and the replay machinery (see recover.go). Only the
	// worker goroutine touches these.
	barsDone      int64
	replaying     bool
	replayTarget  int64
	replayScratch map[page.ID]page.Buf

	// epoch is the cluster recovery epoch this engine currently belongs
	// to; the pump and dispatcher fence frames from other epochs when
	// recovery is enabled. incarnation numbers this engine's restarts.
	epoch       atomic.Uint32
	incarnation uint32

	// Worker interrupt: the supervisor arms it to roll every worker back
	// for recovery. intrFlag is the fast path checked on every shared
	// access; intrCh unblocks workers parked in RPC waits.
	intrMu   sync.Mutex
	intrFlag atomic.Bool
	intrCh   chan struct{}
	intrErr  error

	// ctl runs functions on the dispatcher goroutine, which owns the
	// manager state the supervisor must read and reset.
	ctl chan func()

	inq chan *wire.Msg

	pmu     sync.Mutex
	pending map[int64]chan *wire.Msg
	nextTok int64

	// mgr is non-nil on node 0 (the static manager) and, when the
	// manager quorum is active, on every node (each holds a replica;
	// the elected leader serves).
	mgr *manager

	// leaderHint is this node's cache of the manager quorum's current
	// leader, updated by the local replica's leadership changes and by
	// KNotLeader redirects. Always 0 when the quorum is inactive.
	leaderHint atomic.Int32

	// repOut holds one buffered outbound lane per peer for consensus
	// frames. The replica's event loop must never block on a send — a
	// TCP dial to a dead peer stalls for dial-retry backoff, which would
	// freeze elections — so Send enqueues here (drop-on-full) and a
	// per-peer drainer goroutine does the actual transport write.
	repOut []chan *wire.Msg

	// rngState seeds the retry-jitter mixer (see jitter).
	rngState atomic.Uint64

	// lastHeard[w] (manager replicas only) is the unix-nano time this
	// node last received any frame from peer w; the pump stamps it, the
	// liveness monitor reads it. Accessed with atomics.
	lastHeard []int64
	// hbCheck wakes the dispatcher to run a liveness sweep, so the check
	// reads manager state from the goroutine that owns it.
	hbCheck chan struct{}

	stats Stats

	done      chan struct{}
	closeOnce sync.Once
	errMu     sync.Mutex
	err       error
	wg        sync.WaitGroup
}

// Compile-time check: a Node is a drop-in worker handle for the apps.
var _ core.Worker = (*Node)(nil)

// New builds (but does not start) a node over the given transport. The
// transport's Self/N define the node's identity and cluster size.
func New(tr transport.Transport, cfg Config) *Node {
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 30 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 200 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 10 * time.Second
	}
	n := &Node{
		cfg:     cfg,
		id:      tr.Self(),
		nn:      tr.N(),
		tr:      tr,
		obs:     cfg.Observer,
		vt:      vc.New(tr.N()),
		pages:   make([]lpage, cfg.NPages),
		inq:     make(chan *wire.Msg, inqDepth),
		pending: make(map[int64]chan *wire.Msg),
		intrCh:  make(chan struct{}),
		ctl:     make(chan func()),
		done:    make(chan struct{}),
		sy:      newSyncState(cfg.NLocks, tr.N()),
	}
	if rc := cfg.Recover; rc != nil {
		n.epoch.Store(rc.Epoch)
		n.incarnation = rc.Incarnation
	}
	for ps := cfg.PageSize; ps > 1; ps >>= 1 {
		n.pageShift++
	}
	n.stats.Node = n.id
	// Home pages are resident and valid from the start; everything else
	// starts invalid and is fetched on first use.
	for pg := range n.pages {
		ps := &n.pages[pg]
		ps.copyVT = vc.New(n.nn)
		if int(cfg.Homes[pg]) != n.id {
			continue
		}
		ps.data = page.NewBuf(cfg.PageSize)
		if init, ok := cfg.Init[page.ID(pg)]; ok {
			copy(ps.data, init)
		}
		ps.valid = true
		ps.homeVT = vc.New(n.nn)
		ps.logBase = vc.New(n.nn)
	}
	if n.id == 0 || n.consensusOn() {
		n.mgr = newManager(n)
		n.lastHeard = make([]int64, n.nn)
		n.hbCheck = make(chan struct{}, 1)
	}
	if n.consensusOn() {
		rc := cfg.Recover
		n.leaderHint.Store(int32(rc.LeaderHint))
		// The election timeout rides the failure-detection budget: well
		// under the heartbeat timeout, so a failover completes before
		// anyone's silence verdict could fire, but long enough that a
		// busy leader's appends keep elections quiet.
		et := n.cfg.HeartbeatTimeout / 4
		if et < 100*time.Millisecond {
			et = 100 * time.Millisecond
		}
		// Outbound consensus frames go through one buffered lane per
		// peer, drained by a dedicated goroutine: a send to a dead peer
		// can stall in the transport's dial retries for hundreds of
		// milliseconds, and the replica's event loop must never block on
		// it (a candidate stuck dialing the dead leader cannot collect
		// votes, and every survivor stalling in lock-step livelocks the
		// election). Per-peer lanes preserve per-peer ordering; a full
		// lane drops, like the wire would — the protocol is self-retrying.
		n.repOut = make([]chan *wire.Msg, n.nn)
		for p := range n.repOut {
			if p != n.id {
				n.repOut[p] = make(chan *wire.Msg, 64)
			}
		}
		// Compaction is on by default: an unbounded runtime must hold a
		// bounded log. Negative disables it (tests that want full replay).
		ce := rc.CompactEvery
		if ce == 0 {
			ce = 512
		} else if ce < 0 {
			ce = 0
		}
		n.mgr.rep = consensus.New(consensus.Config{
			Self:            n.id,
			N:               n.nn,
			Voters:          rc.Voters,
			ElectionTimeout: et,
			Seed:            rc.Seed + int64(rc.Incarnation)*7919,
			CompactEvery:    ce,
			Send:            n.consensusSend,
			Apply: func(_ int64, cmd []byte) {
				if err := n.mgr.applyCmd(cmd); err != nil {
					n.abortCluster(err)
				}
			},
			SnapshotState: func() []byte { return n.mgr.st.encodeState() },
			InstallState: func(app []byte) {
				if err := n.mgr.st.restoreState(app); err != nil {
					n.abortCluster(err)
				}
			},
			LeaderChange: func(_ int64, leader int, _ bool) {
				if leader >= 0 {
					n.leaderHint.Store(int32(leader))
				}
			},
			Bootstrap: true, // ignored once the Stable slot holds a term
			Counters: consensus.Counters{
				Terms:        &n.stats.ConsensusTerms,
				Elections:    &n.stats.ConsensusElections,
				Commits:      &n.stats.ConsensusCommits,
				Compactions:  &n.stats.ConsensusCompactions,
				SnapInstalls: &n.stats.ConsensusSnapInstalls,
				ConfChanges:  &n.stats.ConsensusConfChanges,
				Quarantines:  &n.stats.ConsensusSlotQuarantines,
			},
		}, rc.Consensus)
	}
	return n
}

// consensusSend enqueues one outbound consensus frame on its peer's
// buffered lane. A full lane drops the frame — the replica's event loop
// must never block on a stalled transport, and the protocol is
// self-retrying — but never silently: ConsensusLaneDrops counts every
// discarded frame so sustained backpressure is visible in the stats.
func (n *Node) consensusSend(to int, m *wire.Msg) {
	if to < 0 || to >= n.nn || to == n.id || n.repOut[to] == nil {
		return
	}
	select {
	case n.repOut[to] <- m:
	default:
		atomic.AddInt64(&n.stats.ConsensusLaneDrops, 1)
	}
}

// consensusOn reports whether this node participates in the replicated
// manager quorum: a durable replica slot is configured and the cluster
// has at least three nodes (a two-node "quorum" cannot outlive the very
// failure it exists to survive, so the static node-0 manager is kept).
func (n *Node) consensusOn() bool {
	rc := n.cfg.Recover
	return rc != nil && rc.Consensus != nil && n.nn >= 3
}

// Start launches the node's pump and dispatcher goroutines, plus the
// liveness machinery on clusters of more than one node: every non-zero
// node beats a heartbeat at the manager, and the manager sweeps for
// silent peers.
func (n *Node) Start() {
	n.wg.Add(2)
	go n.pump()
	go n.dispatch()
	if g := n.mgr; g != nil && g.rep != nil {
		g.rep.Start()
		for p, lane := range n.repOut {
			if lane == nil {
				continue
			}
			n.wg.Add(1)
			go func(p int, lane chan *wire.Msg) {
				defer n.wg.Done()
				for {
					select {
					case m := <-lane:
						n.send(p, m)
					case <-n.done:
						return
					}
				}
			}(p, lane)
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			<-n.done
			g.rep.Stop()
		}()
	}
	if n.nn < 2 {
		return
	}
	if n.mgr != nil {
		now := time.Now().UnixNano()
		for w := range n.lastHeard {
			atomic.StoreInt64(&n.lastHeard[w], now)
		}
		if n.cfg.HeartbeatTimeout > 0 {
			n.wg.Add(1)
			go n.monitor()
		}
		if !n.consensusOn() {
			return // the static manager never beacons
		}
	}
	n.wg.Add(1)
	go n.heartbeat()
}

// heartbeat beats a periodic liveness beacon at the manager until
// shutdown: node 0 classically, the quorum's current leader when the
// replicated manager is active (a beacon to itself is skipped while
// this node leads). Losses are tolerated: the manager's timeout spans
// many intervals, so only sustained silence — a dead or partitioned
// node — trips detection.
func (n *Node) heartbeat() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			to := int(n.leaderHint.Load())
			if to < 0 || to >= n.nn {
				to = 0
			}
			if to == n.id {
				continue
			}
			n.send(to, &wire.Msg{Kind: wire.KHeartbeat})
			atomic.AddInt64(&n.stats.HeartbeatsSent, 1)
		case <-n.done:
			return
		}
	}
}

// monitor (manager replicas only) periodically wakes the dispatcher to
// sweep for silent peers; the sweep itself runs on the dispatcher
// goroutine and only acts while this replica leads.
func (n *Node) monitor() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			select {
			case n.hbCheck <- struct{}{}:
			default:
			}
		case <-n.done:
			return
		}
	}
}

// Close shuts the node down. It does not close the transport (the
// cluster owns it).
func (n *Node) Close() { n.fail(nil) }

// Err returns the first fatal error the node hit, if any.
func (n *Node) Err() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return n.err
}

// Wait blocks until the pump and dispatcher have exited (after Close and
// the transport's Close).
func (n *Node) Wait() { n.wg.Wait() }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats { return n.stats.Snapshot() }

// CountServe credits serving-path activity (internal/serve) to this
// node's counters. Safe from any goroutine.
func (n *Node) CountServe(gets, puts, lockWaitNs int64) {
	if gets != 0 {
		n.stats.add(&n.stats.ServeGets, gets)
	}
	if puts != 0 {
		n.stats.add(&n.stats.ServePuts, puts)
	}
	if lockWaitNs != 0 {
		n.stats.add(&n.stats.ServeLockWaitNs, lockWaitNs)
	}
}

// Replaying reports whether the node is re-executing suppressed work
// toward its replay target after a rollback. Worker-goroutine use only
// (the field is worker-private, like barsDone).
func (n *Node) Replaying() bool { return n.replaying }

// LaneWorker returns a view of this node for one additional requester
// goroutine (a serving executor): lock acquires issue their RPCs on a
// private token lane, preserving the strictly-increasing,
// one-outstanding invariant the receivers' per-(origin, lane) duplicate
// windows rely on. lane must be positive, below 1<<15, and used by one
// goroutine at a time; lane 0 is the node's own worker goroutine.
// Goroutines sharing a node must never acquire the same lock
// concurrently, and their releases must be externally serialized (the
// release vector time covers every interval the node closed, so an
// unacknowledged flush from a concurrent release could otherwise be
// read stale under another release's grant).
func (n *Node) LaneWorker(lane int) core.Worker {
	return laneWorker{Node: n, lane: int64(lane)}
}

// laneWorker overrides the one operation whose request tokens must be
// laned; everything else delegates to the node.
type laneWorker struct {
	*Node
	lane int64
}

func (lw laneWorker) Lock(id int) { lw.Node.lockLane(id, lw.lane) }

func (n *Node) fail(err error) {
	if err != nil {
		n.errMu.Lock()
		if n.err == nil {
			n.err = err
		}
		n.errMu.Unlock()
	}
	n.closeOnce.Do(func() { close(n.done) })
}

// ---- core.Worker ----

// ID implements core.Worker.
func (n *Node) ID() int { return n.id }

// N implements core.Worker.
func (n *Node) N() int { return n.nn }

// Compute implements core.Worker. Simulated computation has no live
// analogue: the real work is the protocol itself.
func (n *Node) Compute(int64) {}

func (n *Node) locate(a core.Addr) (page.ID, int) {
	if n.intrFlag.Load() {
		n.panicInterrupted()
	}
	pg := page.ID(a >> n.pageShift)
	if int(pg) >= n.cfg.NPages {
		panic(runError{fmt.Errorf("node %d: address %d beyond shared space", n.id, a)})
	}
	return pg, int(a) & (n.cfg.PageSize - 1)
}

// ReadU64 implements core.Worker.
func (n *Node) ReadU64(a core.Addr) uint64 {
	pg, off := n.locate(a)
	if n.replaying {
		return n.scratchPage(pg).U64(off)
	}
	atomic.AddInt64(&n.stats.SharedReads, 1)
	n.mu.Lock()
	ps := &n.pages[pg]
	for !ps.valid {
		n.mu.Unlock()
		n.fault(pg)
		n.mu.Lock()
	}
	v := ps.data.U64(off)
	n.mu.Unlock()
	return v
}

// WriteU64 implements core.Worker.
func (n *Node) WriteU64(a core.Addr, v uint64) {
	pg, off := n.locate(a)
	if n.replaying {
		n.scratchPage(pg).PutU64(off, v)
		return
	}
	atomic.AddInt64(&n.stats.SharedWrites, 1)
	n.mu.Lock()
	ps := &n.pages[pg]
	for !ps.valid {
		n.mu.Unlock()
		n.fault(pg)
		n.mu.Lock()
	}
	if ps.twin == nil {
		ps.twin = page.NewTwin(ps.data)
		n.mod = append(n.mod, pg)
		atomic.AddInt64(&n.stats.TwinsCreated, 1)
	}
	ps.data.PutU64(off, v)
	n.mu.Unlock()
}

// ReadF64 implements core.Worker.
func (n *Node) ReadF64(a core.Addr) float64 { return math.Float64frombits(n.ReadU64(a)) }

// WriteF64 implements core.Worker.
func (n *Node) WriteF64(a core.Addr, v float64) { n.WriteU64(a, math.Float64bits(v)) }

// ReadI64 implements core.Worker.
func (n *Node) ReadI64(a core.Addr) int64 { return int64(n.ReadU64(a)) }

// WriteI64 implements core.Worker.
func (n *Node) WriteI64(a core.Addr, v int64) { n.WriteU64(a, uint64(v)) }

// Lock, Unlock and Barrier (core.Worker) live in sync.go with the rest
// of the distributed synchronization plane.

// FinalFlush closes the last write interval after the worker returns, so
// the homes hold the final memory image. The interval is not reported to
// the manager: nothing synchronizes after it.
func (n *Node) FinalFlush() { n.closeInterval() }

// HomePage returns a copy of the committed contents of a page homed at
// this node.
func (n *Node) HomePage(pg page.ID) []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	ps := &n.pages[pg]
	src := ps.data
	if ps.twin != nil {
		src = ps.twin
	}
	out := make([]byte, len(src))
	copy(out, src)
	return out
}

// ---- fault handling ----

// fault fetches a full copy of pg from its home and installs it,
// rebasing any uncommitted local writes (twin present) on top.
func (n *Node) fault(pg page.ID) {
	home := int(n.cfg.Homes[pg])
	if home == n.id {
		panic(runError{fmt.Errorf("node %d: fault on home page %d", n.id, pg)})
	}
	atomic.AddInt64(&n.stats.PageFaults, 1)
	if n.obs != nil {
		n.obs.PageFault(n.id, pg)
	}
	t0 := time.Now()
	reply := n.rpc(home, &wire.Msg{Kind: wire.KPageReq, Page: int32(pg)})
	atomic.AddInt64(&n.stats.FaultWaitNs, time.Since(t0).Nanoseconds())
	n.installPage(pg, reply.Data, reply.VT)
	atomic.AddInt64(&n.stats.PageFetches, 1)
}

// installPage overwrites the local copy with a fresh home copy. When the
// page has a twin — uncommitted local writes, possible under false
// sharing — those writes are re-applied on top and the twin is reset to
// the fresh copy, so the eventual diff carries exactly the local writes.
func (n *Node) installPage(pg page.ID, data []byte, homeVT []int32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ps := &n.pages[pg]
	if ps.data == nil {
		ps.data = page.NewBuf(n.cfg.PageSize)
	}
	if ps.twin != nil {
		own := page.MakeDiff(pg, ps.twin, ps.data)
		copy(ps.data, data)
		copy(ps.twin, data)
		own.Apply(ps.data)
	} else {
		copy(ps.data, data)
	}
	ps.copyVT.Join(homeVT)
	ps.valid = true
}

// ---- interval close and flush ----

// closeInterval ends the current write interval, if any writes happened:
// it diffs every dirtied page, flushes the diffs to the pages' homes,
// and blocks until every home acknowledges. Returning only after the
// acks is what makes the homes a consistent source: an interval that
// happened-before an acquire is applied at its homes before the acquire
// can observe it.
func (n *Node) closeInterval() *wire.Interval {
	n.mu.Lock()
	if len(n.mod) == 0 {
		n.mu.Unlock()
		return nil
	}
	idx := n.vt.Tick(n.id)
	pages := make([]int32, 0, len(n.mod))
	perHome := make(map[int][]wire.Diff)
	var diffBytes int64
	for _, pg := range n.mod {
		ps := &n.pages[pg]
		d := page.MakeDiff(pg, ps.twin, ps.data)
		page.FreeTwin(ps.twin)
		ps.twin = nil
		diffBytes += int64(d.SizeBytes())
		wd := wire.Diff{Writer: int32(n.id), Index: idx, D: d}
		if home := int(n.cfg.Homes[pg]); home == n.id {
			n.homeRecordLocked(ps, wd, false)
		} else {
			perHome[home] = append(perHome[home], wd)
		}
		ps.copyVT.Set(n.id, idx)
		pages = append(pages, int32(pg))
	}
	n.mod = n.mod[:0]
	iv := &wire.Interval{Writer: int32(n.id), Index: idx, VT: n.vt.Clone(), Pages: pages}
	// The closed interval extends this node's authoritative per-writer
	// log: the source every lock grant, barrier release, and on-demand
	// segment fetch draws its write notices from.
	n.recordOwnIntervalLocked(idx, pages)
	n.mu.Unlock()

	atomic.AddInt64(&n.stats.Intervals, 1)
	atomic.AddInt64(&n.stats.DiffsCreated, int64(len(pages)))
	atomic.AddInt64(&n.stats.DiffBytes, diffBytes)
	if n.obs != nil {
		ids := make([]page.ID, len(pages))
		for i, p := range pages {
			ids[i] = page.ID(p)
		}
		n.obs.IntervalClosed(n.id, idx, ids)
	}

	// Flush to every remote home in parallel, then wait for all acks.
	// Each flight keeps its request message so an unacknowledged flush is
	// retransmitted under the same token; the home's per-writer version
	// checks make re-application a no-op.
	t0 := time.Now()
	type flight struct {
		to int
		m  *wire.Msg
		ch chan *wire.Msg
	}
	flights := make([]flight, 0, len(perHome))
	for home, diffs := range perHome {
		tok, ch := n.newToken()
		// The Episode stamp is the sender's departed-barrier count: a home
		// holding a capture gate for episode E applies flushes stamped
		// below E (pre-cut) and buffers the rest (post-cut).
		m := &wire.Msg{Kind: wire.KWriteNotices, Token: tok, Episode: n.barsDone, Diffs: diffs}
		n.trySend(home, m)
		flights = append(flights, flight{home, m, ch})
	}
	for _, f := range flights {
		n.awaitRetry(f.to, f.m, f.ch)
	}
	if len(flights) > 0 {
		atomic.AddInt64(&n.stats.FlushWaitNs, time.Since(t0).Nanoseconds())
	}
	return iv
}

// homeRecordLocked records one interval diff at the home: updates the
// home version vector and appends to the page's diff log (pruning the
// oldest entries past homeLogCap). applyData additionally applies the
// diff to the resident copy — and its twin, keeping the committed view
// consistent — which the home's own intervals do not need.
func (n *Node) homeRecordLocked(ps *lpage, wd wire.Diff, applyData bool) {
	if applyData {
		wd.D.Apply(ps.data)
		if ps.twin != nil {
			wd.D.Apply(ps.twin)
		}
	}
	//dsmlint:ignore vtalias Decode allocates fresh payload buffers per frame and the frame is not retained elsewhere, so the home log's entries are sole owners
	ps.log = append(ps.log, wd)
	if len(ps.log) > homeLogCap {
		drop := len(ps.log) - homeLogCap
		for _, old := range ps.log[:drop] {
			if old.Index > ps.logBase.Get(int(old.Writer)) {
				ps.logBase.Set(int(old.Writer), old.Index)
			}
		}
		ps.log = append(ps.log[:0], ps.log[drop:]...)
	}
	w := int(wd.Writer)
	if wd.Index > ps.homeVT.Get(w) {
		ps.homeVT.Set(w, wd.Index)
	}
	if wd.Index > ps.copyVT.Get(w) {
		ps.copyVT.Set(w, wd.Index)
	}
}

// ---- acquire-side notice processing ----

// applyNotices back-fills any notice gaps from the writers' logs,
// records the learned intervals, joins the granted vector time, and
// processes the write notices: under LI noticed pages are invalidated;
// under LH cached copies are refreshed by pulling the missing diffs
// from the home (uncached pages just stay invalid). Pages homed here
// are already current — their diffs arrived before the grant could
// happen.
func (n *Node) applyNotices(grantVT []int32, notices []wire.Notice) {
	notices = n.fillNotices(grantVT, notices)
	var pulls []page.ID
	pulled := make(map[page.ID]bool)
	n.mu.Lock()
	n.recordKnowledgeLocked(notices)
	n.vt.Join(grantVT)
	for _, nt := range notices {
		w := int(nt.Writer)
		for _, p32 := range nt.Pages {
			pg := page.ID(p32)
			if int(n.cfg.Homes[pg]) == n.id {
				continue
			}
			ps := &n.pages[pg]
			if ps.copyVT.CoversInterval(w, nt.Index) {
				continue
			}
			if !ps.valid {
				continue
			}
			if n.cfg.Protocol == core.LH {
				if !pulled[pg] {
					pulled[pg] = true
					pulls = append(pulls, pg)
				}
				continue
			}
			ps.valid = false
			atomic.AddInt64(&n.stats.Invalidations, 1)
			if n.obs != nil {
				n.obs.Invalidated(n.id, pg)
			}
		}
	}
	n.mu.Unlock()
	for _, pg := range pulls {
		n.pullDiffs(pg)
	}
}

// pullDiffs brings the cached copy of pg up to date from its home (LH
// update path): the home serves the diffs past our coverage from its
// log, or a full copy if the log was pruned past it.
func (n *Node) pullDiffs(pg page.ID) {
	n.mu.Lock()
	have := n.pages[pg].copyVT.Clone()
	n.mu.Unlock()
	atomic.AddInt64(&n.stats.DiffPulls, 1)
	reply := n.rpc(int(n.cfg.Homes[pg]), &wire.Msg{Kind: wire.KDiffReq, Page: int32(pg), VT: have})
	if reply.Data != nil {
		n.installPage(pg, reply.Data, reply.VT)
		atomic.AddInt64(&n.stats.PageFetches, 1)
		return
	}
	n.mu.Lock()
	ps := &n.pages[pg]
	applied := int64(0)
	for _, wd := range reply.Diffs {
		w := int(wd.Writer)
		if ps.copyVT.CoversInterval(w, wd.Index) {
			continue
		}
		wd.D.Apply(ps.data)
		if ps.twin != nil {
			wd.D.Apply(ps.twin)
		}
		applied++
		if n.obs != nil {
			n.obs.DiffApplied(n.id, pg, w, wd.Index)
		}
	}
	ps.copyVT.Join(reply.VT)
	ps.valid = true
	n.mu.Unlock()
	atomic.AddInt64(&n.stats.DiffsApplied, applied)
}

// ---- messaging ----

// isReply reports whether a kind is a response routed straight to a
// waiting requester (bypassing the dispatcher queue).
func isReply(k wire.Kind) bool {
	switch k {
	case wire.KPageReply, wire.KDiffReply, wire.KAck, wire.KLockGrant, wire.KBarDepart, wire.KReleaseAck,
		wire.KJoinGrant, wire.KSnapChunk, wire.KLogSegResp, wire.KNotLeader, wire.KConfAck:
		return true
	}
	return false
}

// laneShift partitions the token space: the low 48 bits carry the
// node's strictly-increasing sequence (shared by every goroutine), the
// high bits a per-goroutine lane id. Receivers' duplicate windows key
// on (origin, lane), so concurrent requester goroutines — the serving
// executors — don't interleave tokens inside one monotonic window.
const laneShift = 48

func (n *Node) newToken() (int64, chan *wire.Msg) { return n.newLaneToken(0) }

func (n *Node) newLaneToken(lane int64) (int64, chan *wire.Msg) {
	ch := make(chan *wire.Msg, 1)
	n.pmu.Lock()
	n.nextTok++
	tok := lane<<laneShift | n.nextTok
	n.pending[tok] = ch
	n.pmu.Unlock()
	return tok, ch
}

// rpc sends a request and blocks for its reply, retransmitting with
// bounded exponential backoff while none arrives. Retries reuse the
// request's token: receivers de-duplicate by (From, Token) — the manager
// through its per-client table, homes through per-writer version checks
// — so a retransmitted request is never executed twice, and a late
// duplicate reply finds its token already resolved and is dropped.
func (n *Node) rpc(to int, m *wire.Msg) *wire.Msg { return n.rpcLane(to, m, 0) }

// rpcLane is rpc with the request's token stamped into a lane (see
// laneShift); the reply carries the token back, so routing and reply
// de-duplication are lane-oblivious.
func (n *Node) rpcLane(to int, m *wire.Msg, lane int64) *wire.Msg {
	tok, ch := n.newLaneToken(lane)
	m.Token = tok
	n.trySend(to, m)
	return n.awaitRetry(to, m, ch)
}

// jitter draws a uniform duration in [d/2, d] from a lock-free
// splitmix-style mixer, decorrelating the retransmission schedules of
// workers that all lost replies to the same event (a died leader, a
// dropped batch): synchronized retry storms re-collide, jittered ones
// spread. Safe from any goroutine.
func (n *Node) jitter(d time.Duration) time.Duration {
	if d <= time.Millisecond {
		return d
	}
	x := n.rngState.Add(0x9e3779b97f4a7c15) + uint64(n.id)<<32
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	half := uint64(d) / 2
	return time.Duration(half + x%(half+1))
}

// awaitRetry blocks for the reply to m (already sent once under its
// token), retransmitting on a jittered backoff schedule. A node failure
// aborts the worker via runError; exceeding RPCTimeout fails the run
// with an error naming the operation and peer instead of hanging.
func (n *Node) awaitRetry(to int, m *wire.Msg, ch chan *wire.Msg) *wire.Msg {
	deadline := time.Now().Add(n.cfg.RPCTimeout)
	backoff := n.cfg.RetryBase
	timer := time.NewTimer(n.jitter(backoff))
	defer timer.Stop()
	intr := n.intrChan()
	for attempt := 0; ; {
		select {
		case r := <-ch:
			return r
		case <-intr:
			n.panicInterrupted()
		case <-n.done:
			// A reply may have been routed concurrently with shutdown.
			select {
			case r := <-ch:
				return r
			default:
			}
			err := n.Err()
			if err == nil {
				err = fmt.Errorf("node %d: shut down while waiting for %v reply from %d", n.id, m.Kind, to)
			}
			panic(runError{err})
		case <-timer.C:
		}
		if !time.Now().Before(deadline) {
			panic(runError{fmt.Errorf("node %d: rpc timeout: %v to node %d after %v (token %d, %d retransmissions)",
				n.id, m.Kind, to, n.cfg.RPCTimeout, m.Token, attempt)})
		}
		attempt++
		if attempt > 255 {
			m.Attempt = 255
		} else {
			m.Attempt = uint8(attempt)
		}
		atomic.AddInt64(&n.stats.RPCRetries, 1)
		n.trySend(to, m)
		backoff *= 2
		if backoff > n.cfg.RetryMax {
			backoff = n.cfg.RetryMax
		}
		wait := n.jitter(backoff)
		if rem := time.Until(deadline); rem < wait {
			wait = rem
			if wait <= 0 {
				wait = time.Millisecond
			}
		}
		timer.Reset(wait)
	}
}

// rpcTry sends a request and waits at most wait for its reply,
// retransmitting on the same jittered schedule as rpc but returning
// (nil, false) on expiry instead of failing the run — for callers that
// re-resolve their target and retry as a fresh request (mgrRPC chasing
// the quorum's leader). The pending token is withdrawn on expiry, so a
// straggling reply is dropped as a duplicate. The request's token is
// stamped into lane (see laneShift), so concurrent requesters — the
// worker on lane 0, the supervisor's membership RPCs on confLane — each
// keep their own monotonic dedup window at the receiver.
func (n *Node) rpcTry(to int, m *wire.Msg, wait time.Duration, lane int64) (*wire.Msg, bool) {
	tok, ch := n.newLaneToken(lane)
	m.Token = tok
	n.trySend(to, m)
	deadline := time.Now().Add(wait)
	backoff := n.cfg.RetryBase
	timer := time.NewTimer(n.jitter(backoff))
	defer timer.Stop()
	intr := n.intrChan()
	for attempt := 0; ; {
		select {
		case r := <-ch:
			return r, true
		case <-intr:
			n.withdraw(tok)
			n.panicInterrupted()
		case <-n.done:
			select {
			case r := <-ch:
				return r, true
			default:
			}
			err := n.Err()
			if err == nil {
				err = fmt.Errorf("node %d: shut down while waiting for %v reply from %d", n.id, m.Kind, to)
			}
			panic(runError{err})
		case <-timer.C:
		}
		if !time.Now().Before(deadline) {
			n.withdraw(tok)
			// The reply may have raced the withdrawal.
			select {
			case r := <-ch:
				return r, true
			default:
			}
			return nil, false
		}
		attempt++
		if attempt > 255 {
			m.Attempt = 255
		} else {
			m.Attempt = uint8(attempt)
		}
		atomic.AddInt64(&n.stats.RPCRetries, 1)
		n.trySend(to, m)
		backoff *= 2
		if backoff > n.cfg.RetryMax {
			backoff = n.cfg.RetryMax
		}
		w := n.jitter(backoff)
		if rem := time.Until(deadline); rem < w {
			w = rem
			if w <= 0 {
				w = time.Millisecond
			}
		}
		timer.Reset(w)
	}
}

// withdraw abandons a pending token so a late reply is dropped instead
// of landing on a reused channel.
func (n *Node) withdraw(tok int64) {
	n.pmu.Lock()
	delete(n.pending, tok)
	n.pmu.Unlock()
}

// trySend transmits m, treating transport errors as transient — the
// retransmission schedule recovers from them — except a closed
// transport, which means the cluster is shutting down.
func (n *Node) trySend(to int, m *wire.Msg) {
	err := n.send(to, m)
	if err == nil || !errors.Is(err, transport.ErrClosed) {
		return
	}
	if e := n.Err(); e != nil {
		err = e
	}
	panic(runError{fmt.Errorf("node %d: %v to %d aborted: %w", n.id, m.Kind, to, err)})
}

// send encodes and transmits m. Messages to self bypass the transport:
// replies are routed to their waiter, requests join the dispatcher
// queue (node 0's worker talking to its own manager).
func (n *Node) send(to int, m *wire.Msg) error {
	m.From = int32(n.id)
	if n.cfg.Recover != nil {
		m.Epoch = n.epoch.Load()
	}
	if to == n.id {
		atomic.AddInt64(&n.stats.MsgsSent, 1)
		atomic.AddInt64(&n.stats.MsgsRecv, 1)
		// Deliver a shallow copy: a retransmission mutates the sender's
		// Msg (From, Attempt) while the dispatcher may still hold this
		// delivery, exactly as a wire transport would re-encode it.
		mc := *m
		if isReply(mc.Kind) {
			n.routeReply(&mc)
			return nil
		}
		select {
		case n.inq <- &mc:
			return nil
		case <-n.done:
			return transport.ErrClosed
		}
	}
	b := wire.Encode(m)
	atomic.AddInt64(&n.stats.MsgsSent, 1)
	atomic.AddInt64(&n.stats.BytesSent, int64(len(b)))
	if len(m.Data) > 0 {
		atomic.AddInt64(&n.stats.DataBytes, int64(len(m.Data)))
	}
	for i := range m.Diffs {
		atomic.AddInt64(&n.stats.DataBytes, int64(m.Diffs[i].D.SizeBytes()))
	}
	if n.obs != nil {
		n.obs.MsgSent(n.id, to, m.Kind, len(b))
	}
	// Transport errors are not fatal: a request's retransmission schedule
	// recovers from transient failures, a lost reply is re-served when
	// the requester retries, and a genuinely dead peer is converted into
	// a clean abort by the RPC timeout or the manager's failure detector.
	return n.tr.Send(to, b)
}

func (n *Node) routeReply(m *wire.Msg) {
	n.pmu.Lock()
	ch := n.pending[m.Token]
	delete(n.pending, m.Token)
	n.pmu.Unlock()
	if ch != nil {
		ch <- m
		return
	}
	// No waiter: a duplicate or late reply to a token already resolved
	// (its first copy won, or the RPC timed out). Dropping it here is the
	// requester-side half of retry idempotence.
	atomic.AddInt64(&n.stats.DupReplies, 1)
}

// pump drains the transport for the node's lifetime, routing replies to
// their waiters and requests to the dispatcher.
func (n *Node) pump() {
	defer n.wg.Done()
	for {
		f, err := n.tr.Recv()
		if err != nil {
			return
		}
		m, err := wire.Decode(f.Payload)
		if err != nil {
			n.fail(fmt.Errorf("node %d: bad frame from %d: %w", n.id, f.From, err))
			return
		}
		atomic.AddInt64(&n.stats.MsgsRecv, 1)
		atomic.AddInt64(&n.stats.BytesRecv, int64(len(f.Payload)))
		// Epoch fence: a frame from a previous recovery epoch — a delayed
		// or retransmitted message from before a rollback, possibly from a
		// dead incarnation whose tokens collide with the live one's — must
		// not reach the waiter tables or the dispatcher.
		if n.cfg.Recover != nil && m.Epoch != n.epoch.Load() {
			atomic.AddInt64(&n.stats.StaleFrames, 1)
			continue
		}
		// Any frame proves its sender alive; the manager's liveness sweep
		// reads these stamps.
		if n.lastHeard != nil && f.From >= 0 && f.From < len(n.lastHeard) {
			atomic.StoreInt64(&n.lastHeard[f.From], time.Now().UnixNano())
		}
		if m.Kind == wire.KHeartbeat {
			atomic.AddInt64(&n.stats.HeartbeatsRecv, 1)
			continue // carries nothing beyond the liveness stamp
		}
		// Consensus traffic bypasses the dispatcher: the replica runs its
		// own event loop and its protocol is self-retrying, so a full
		// inbox may simply drop.
		switch m.Kind {
		case wire.KVoteReq, wire.KVoteResp, wire.KAppend, wire.KAppendAck,
			wire.KSnapInstall, wire.KSnapAck:
			if g := n.mgr; g != nil && g.rep != nil {
				g.rep.Deliver(m)
			}
			continue
		}
		if isReply(m.Kind) {
			n.routeReply(m)
			continue
		}
		select {
		case n.inq <- m:
		case <-n.done:
			return
		}
	}
}

// dispatch serves protocol requests — and, on the manager, liveness
// sweeps — until shutdown.
func (n *Node) dispatch() {
	defer n.wg.Done()
	for {
		select {
		case m := <-n.inq:
			n.handle(m)
		case fn := <-n.ctl:
			fn()
		case <-n.hbCheck:
			if n.mgr != nil {
				n.mgr.checkLiveness()
			}
		case <-n.done:
			return
		}
	}
}

func (n *Node) handle(m *wire.Msg) {
	// Re-check the epoch fence: the epoch may have been bumped after the
	// pump queued this message but before the dispatcher got to it.
	if n.cfg.Recover != nil && m.Epoch != n.epoch.Load() {
		atomic.AddInt64(&n.stats.StaleFrames, 1)
		return
	}
	switch m.Kind {
	case wire.KPageReq:
		n.handlePageReq(m)
	case wire.KDiffReq:
		n.handleDiffReq(m)
	case wire.KWriteNotices:
		n.handleWriteNotices(m)
	case wire.KAbort:
		// Term fence: a deposed leader's stale silence verdict must not
		// kill a cluster that already moved on to a newer term.
		if g := n.mgr; g != nil && g.rep != nil && m.Term > 0 && m.Term < g.rep.Leader().Term {
			atomic.AddInt64(&n.stats.StaleFrames, 1)
			return
		}
		n.fail(&RemoteAbortError{From: int(m.From), Reason: m.Err})
	case wire.KLockReq:
		n.handleLockReq(m)
	case wire.KLockForward:
		n.handleLockForward(m)
	case wire.KBarArrive:
		n.handleBarArrive(m)
	case wire.KBarRelease:
		n.handleBarRelease(m)
	case wire.KLogSegReq:
		n.handleLogSegReq(m)
	case wire.KJoinReq, wire.KSnapReq, wire.KSnapPush, wire.KResume, wire.KCkptDone, wire.KMgrSnap,
		wire.KConfChange:
		if n.mgr == nil {
			n.fail(fmt.Errorf("node %d: manager message %v at non-manager", n.id, m.Kind))
			return
		}
		n.mgr.handle(m)
	default:
		n.fail(fmt.Errorf("node %d: unexpected request kind %v", n.id, m.Kind))
	}
}

// handlePageReq serves a full committed copy of a page homed here. When
// the local worker has uncommitted writes (a twin exists), the twin is
// the committed view — remote diffs are applied to both data and twin.
func (n *Node) handlePageReq(m *wire.Msg) {
	pg := page.ID(m.Page)
	n.mu.Lock()
	ps := &n.pages[pg]
	src := ps.data
	if ps.twin != nil {
		src = ps.twin
	}
	data := make([]byte, len(src))
	copy(data, src)
	hvt := ps.homeVT.Clone()
	n.mu.Unlock()
	reply := &wire.Msg{Kind: wire.KPageReply, Token: m.Token, Page: m.Page, VT: hvt, Data: data}
	if err := n.send(int(m.From), reply); err != nil {
		return
	}
}

// handleDiffReq serves the diffs of a page homed here that the requester
// (whose per-writer coverage is m.VT) is missing. If the log has been
// pruned past the requester's coverage, a full copy is served instead.
func (n *Node) handleDiffReq(m *wire.Msg) {
	pg := page.ID(m.Page)
	n.mu.Lock()
	ps := &n.pages[pg]
	pruned := false
	for w := 0; w < n.nn; w++ {
		var have int32
		if w < len(m.VT) {
			have = m.VT[w]
		}
		if have < ps.logBase.Get(w) {
			pruned = true
			break
		}
	}
	reply := &wire.Msg{Kind: wire.KDiffReply, Token: m.Token, Page: m.Page, VT: ps.homeVT.Clone()}
	if pruned {
		src := ps.data
		if ps.twin != nil {
			src = ps.twin
		}
		reply.Data = make([]byte, len(src))
		copy(reply.Data, src)
	} else {
		for _, wd := range ps.log {
			if w := int(wd.Writer); w < len(m.VT) && wd.Index <= m.VT[w] {
				continue
			}
			reply.Diffs = append(reply.Diffs, wd)
		}
	}
	n.mu.Unlock()
	if err := n.send(int(m.From), reply); err != nil {
		return
	}
}

// handleWriteNotices applies a remote interval's diffs to the pages
// homed here and acknowledges. The sender's release blocks on this ack,
// retransmitting while it is missing, so a diff the home already holds
// (by its per-writer version) is skipped: re-applying it could clobber a
// newer write that landed on the same words in between.
func (n *Node) handleWriteNotices(m *wire.Msg) {
	var applied, dups int64
	n.mu.Lock()
	// Capture gate: a flush from a sender that already departed the
	// flagged episode is post-cut — buffer it unapplied and, crucially,
	// unacknowledged, so the sender keeps retransmitting while the
	// checkpoint captures the pre-barrier state. The capture drains the
	// buffer (re-applications are version-checked no-ops).
	if n.gateEpisode > 0 && m.Episode >= n.gateEpisode {
		//dsmlint:ignore vtalias the gated frame is buffered whole and untouched until the capture drains it; the dispatcher owns decoded frames outright
		n.gated = append(n.gated, m)
		n.mu.Unlock()
		return
	}
	for i := range m.Diffs {
		wd := m.Diffs[i]
		ps := &n.pages[wd.D.Page]
		if wd.Index <= ps.homeVT.Get(int(wd.Writer)) {
			dups++
			continue
		}
		n.homeRecordLocked(ps, wd, true)
		applied++
		if n.obs != nil {
			n.obs.DiffApplied(n.id, wd.D.Page, int(wd.Writer), wd.Index)
		}
	}
	n.mu.Unlock()
	atomic.AddInt64(&n.stats.DiffsApplied, applied)
	if dups > 0 {
		atomic.AddInt64(&n.stats.DupRequests, dups)
	}
	// Always ack — including pure duplicates, whose original ack was lost.
	if err := n.send(int(m.From), &wire.Msg{Kind: wire.KAck, Token: m.Token}); err != nil {
		return
	}
}
