package node

import (
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/live/wire"
)

// TestReplyCacheBounded hammers the manager with far more RPCs than the
// reply cache holds, then with retransmission storms of recent and
// ancient tokens, and checks the per-client dedup state stays bounded by
// replyCacheCap throughout — the cache must be an LRU window, not a
// leak.
func TestReplyCacheBounded(t *testing.T) {
	const rounds = 200 // 2 RPCs per round: far beyond replyCacheCap
	cfg := Config{
		PageSize: 256, NPages: 1, Homes: []int32{0},
		NLocks: 1, NBars: 1, Protocol: core.LI,
		HeartbeatTimeout: -1,
	}
	trs := transport.NewInprocNetwork(2)
	nodes := []*Node{New(trs[0], cfg), New(trs[1], cfg)}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
		for _, tr := range trs {
			tr.Close()
		}
		for _, nd := range nodes {
			nd.Wait()
		}
	}()

	for i := 0; i < rounds; i++ {
		nodes[1].Lock(0)
		nodes[1].Unlock(0)
	}

	cacheState := func() (lastTok int64, replies, order int) {
		if err := nodes[0].Control(func() {
			c := &nodes[0].mgr.clients[1]
			lastTok, replies, order = c.lastTok, len(c.replies), len(c.order)
		}); err != nil {
			t.Fatal(err)
		}
		return
	}

	lastTok, replies, order := cacheState()
	if lastTok < rounds*2 {
		t.Fatalf("lastTok = %d after %d RPCs", lastTok, rounds*2)
	}
	if replies > replyCacheCap || order > replyCacheCap {
		t.Fatalf("reply cache grew past the bound: %d replies / %d order entries (cap %d)",
			replies, order, replyCacheCap)
	}
	if replies != order {
		t.Fatalf("replies (%d) and eviction order (%d) disagree", replies, order)
	}

	// Sustained retransmission storm: re-ask for the most recent tokens
	// over and over. Every one must be answered from the cache without
	// growing it.
	dup0 := nodes[0].Stats().DupRequests
	for storm := 0; storm < 3; storm++ {
		for tok := lastTok - 5; tok <= lastTok; tok++ {
			if err := nodes[1].send(0, &wire.Msg{Kind: wire.KLockReq, Token: tok, Lock: 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// An ancient token, long evicted: deduplicated but unanswerable.
	if err := nodes[1].send(0, &wire.Msg{Kind: wire.KLockReq, Token: 1, Lock: 0}); err != nil {
		t.Fatal(err)
	}
	wantDups := dup0 + 3*6 + 1
	deadline := time.Now().Add(2 * time.Second)
	for nodes[0].Stats().DupRequests < wantDups {
		if time.Now().After(deadline) {
			t.Fatalf("DupRequests = %d, want %d — retransmits not deduplicated",
				nodes[0].Stats().DupRequests, wantDups)
		}
		time.Sleep(time.Millisecond)
	}

	if _, replies, order := cacheState(); replies > replyCacheCap || order > replyCacheCap {
		t.Fatalf("retransmission storm grew the cache: %d replies / %d order entries (cap %d)",
			replies, order, replyCacheCap)
	}

	// The cluster must still be live after the storm.
	done := make(chan struct{})
	go func() {
		nodes[1].Lock(0)
		nodes[1].Unlock(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lock RPC hung after retransmission storm")
	}
}
