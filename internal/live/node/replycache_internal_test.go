package node

import (
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/live/wire"
)

// TestReplyCacheBounded hammers the distributed lock plane with far more
// acquires than the reply cache holds — alternating owners so every
// acquire exercises the home's forward/inline-grant paths — then with
// retransmission storms of recent and ancient tokens against both the
// home and the owner, and checks the per-peer dedup state stays bounded
// by replyCacheCap throughout: the cache must be an LRU window, not a
// leak, on every node that grants.
func TestReplyCacheBounded(t *testing.T) {
	const rounds = 400 // alternating acquirers: 200 tokens per node, far beyond replyCacheCap
	cfg := Config{
		PageSize: 256, NPages: 1, Homes: []int32{0},
		NLocks: 1, NBars: 1, Protocol: core.LI,
		HeartbeatTimeout: -1,
	}
	trs := transport.NewInprocNetwork(2)
	nodes := []*Node{New(trs[0], cfg), New(trs[1], cfg)}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
		for _, tr := range trs {
			tr.Close()
		}
		for _, nd := range nodes {
			nd.Wait()
		}
	}()

	// Lock 0 homes at node 0. Alternating acquirers means node 1's
	// requests are inline-accepted by the home-owner and node 0's own
	// requests are forwarded to node 1 — both grant paths cache replies.
	for i := 0; i < rounds; i++ {
		nodes[i%2].Lock(0)
		nodes[i%2].Unlock(0)
	}

	cacheState := func(at, peer int) (lastTok int64, replies, order int) {
		nd := nodes[at]
		nd.mu.Lock()
		c := nd.sy.clients[peer].lane(0)
		lastTok, replies, order = c.lastTok, len(c.replies), len(c.order)
		nd.mu.Unlock()
		return
	}

	last1, replies, order := cacheState(0, 1)
	if last1 < rounds/2 {
		t.Fatalf("home's lastTok for node 1 = %d after %d acquires", last1, rounds/2)
	}
	if replies > replyCacheCap || order > replyCacheCap {
		t.Fatalf("home reply cache grew past the bound: %d replies / %d order entries (cap %d)",
			replies, order, replyCacheCap)
	}
	if replies != order {
		t.Fatalf("replies (%d) and eviction order (%d) disagree", replies, order)
	}
	last0, replies0, order0 := cacheState(1, 0)
	if last0 < rounds/2 {
		t.Fatalf("owner's lastTok for node 0 = %d after %d forwarded acquires", last0, rounds/2)
	}
	if replies0 > replyCacheCap || order0 > replyCacheCap {
		t.Fatalf("owner reply cache grew past the bound: %d replies / %d order entries (cap %d)",
			replies0, order0, replyCacheCap)
	}

	// Sustained retransmission storms. Recent node-1 tokens re-asked at
	// the home must be answered from its grant cache; re-delivered node-0
	// requests must re-drive the cached forward to the owner, whose own
	// dedup re-serves the cached grant; an ancient, long-evicted token is
	// deduplicated but unanswerable. None of it may grow any cache.
	dup0 := nodes[0].Stats().DupRequests
	dup1 := nodes[1].Stats().DupRequests
	for storm := 0; storm < 3; storm++ {
		for tok := last1 - 5; tok <= last1; tok++ {
			if err := nodes[1].send(0, &wire.Msg{Kind: wire.KLockReq, Token: tok, Lock: 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for tok := last0 - 5; tok <= last0; tok++ {
		if err := nodes[0].send(0, &wire.Msg{Kind: wire.KLockReq, Token: tok, Lock: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := nodes[1].send(0, &wire.Msg{Kind: wire.KLockReq, Token: 1, Lock: 0}); err != nil {
		t.Fatal(err)
	}
	// Node 0 dedups 3x6 node-1 retransmissions, 6 of its own re-delivered
	// requests, and the ancient token; node 1 dedups at least the
	// re-forward of node 0's newest request.
	wantDup0 := dup0 + 3*6 + 6 + 1
	wantDup1 := dup1 + 1
	deadline := time.Now().Add(2 * time.Second)
	for nodes[0].Stats().DupRequests < wantDup0 || nodes[1].Stats().DupRequests < wantDup1 {
		if time.Now().After(deadline) {
			t.Fatalf("DupRequests = %d/%d, want %d/%d — retransmits not deduplicated",
				nodes[0].Stats().DupRequests, nodes[1].Stats().DupRequests, wantDup0, wantDup1)
		}
		time.Sleep(time.Millisecond)
	}

	if _, replies, order := cacheState(0, 1); replies > replyCacheCap || order > replyCacheCap {
		t.Fatalf("retransmission storm grew the home cache: %d replies / %d order entries (cap %d)",
			replies, order, replyCacheCap)
	}
	if _, replies, order := cacheState(1, 0); replies > replyCacheCap || order > replyCacheCap {
		t.Fatalf("retransmission storm grew the owner cache: %d replies / %d order entries (cap %d)",
			replies, order, replyCacheCap)
	}

	// The cluster must still be live after the storm, whoever acquires.
	done := make(chan struct{})
	go func() {
		nodes[1].Lock(0)
		nodes[1].Unlock(0)
		nodes[0].Lock(0)
		nodes[0].Unlock(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lock RPC hung after retransmission storm")
	}
}
