package node

import (
	"fmt"
	"sync/atomic"
	"time"

	"lrcdsm/internal/live/consensus"
	ckpt "lrcdsm/internal/live/recover"
	"lrcdsm/internal/live/wire"
	"lrcdsm/internal/page"
	"lrcdsm/internal/vc"
)

// snapChunkSize is the payload size of one KSnapPush/KSnapChunk frame
// when a serialized snapshot is streamed to or from the manager.
const snapChunkSize = 32 << 10

// keepCheckpoints bounds how many checkpoint episodes a node's store
// retains. The stable checkpoint lags the newest by at most one episode
// (KCkptDone is an acknowledged RPC inside the barrier, so no node can
// be a full checkpoint period ahead of an unconfirmed peer), so pruning
// to the newest few can never drop the episode a recovery would pick.
const keepCheckpoints = 4

// RecoverConfig enables barrier-aligned checkpointing and the
// crash/rejoin protocol on a node.
type RecoverConfig struct {
	// Store receives this node's snapshots. On the manager it also holds
	// the manager snapshots and, with Replicate, the peers' replicas.
	Store ckpt.Store
	// Every takes a checkpoint at each barrier episode divisible by it;
	// non-positive disables capture (the epoch fence stays active).
	Every int64
	// Replicate streams every non-manager snapshot to the manager's
	// store, so a node that loses its own store (disk gone with the
	// host) can still rejoin by pulling chunks from the manager.
	Replicate bool
	// Epoch is the cluster recovery epoch this engine starts in;
	// Incarnation counts the node's restarts (0 for the original).
	Epoch       uint32
	Incarnation uint32
	// OnPeerDown, on the manager, intercepts failure detection: return
	// true to hand the failure to the supervisor (the peer is marked
	// recovering and the cluster keeps running), false to abort as a
	// recovery-free cluster would. Called on the dispatcher goroutine;
	// it must not block. With the quorum active, set it on every node —
	// any replica can be elected to judge.
	OnPeerDown func(err *PeerDownError) bool

	// Consensus, when non-nil on a cluster of three or more nodes,
	// activates the replicated manager: this node runs a consensus
	// replica over the given durable slot (term, vote, log), manager
	// requests chase the elected leader, and a manager crash fails over
	// instead of aborting. The supervisor owns the slots so a restarted
	// incarnation resumes from its persisted term and can never vote
	// twice in one term.
	Consensus *consensus.Stable
	// LeaderHint seeds the node's leader cache (a rejoining node is told
	// the leader that granted its rollback).
	LeaderHint int
	// Seed drives the replica's randomized election timers.
	Seed int64
	// CompactEvery folds the consensus replica's applied log prefix into
	// a snapshot and truncates it once it exceeds this many entries.
	// 0 takes the default (512); negative disables compaction.
	CompactEvery int64
	// Voters names the initial voting membership of the quorum (nil:
	// every node). Non-voting nodes still run replicas and can be
	// promoted at runtime with ChangeMembership.
	Voters []int
}

// RollbackError marks a worker unwound deliberately so the cluster can
// roll back to a checkpoint; the supervisor forgives it.
type RollbackError struct {
	// Victim is the crashed node that triggered the rollback.
	Victim int
}

func (e *RollbackError) Error() string {
	return fmt.Sprintf("node: rolled back for recovery of node %d", e.Victim)
}

// ---- worker interrupt ----

// InterruptWorker unwinds this node's worker out of whatever it is doing
// — including RPC waits — with err. The engine (pump, dispatcher,
// heartbeat) keeps running; the worker panics out at its next shared
// access or wait and the interrupt stays armed until ClearInterrupt.
func (n *Node) InterruptWorker(err error) {
	n.intrMu.Lock()
	defer n.intrMu.Unlock()
	if n.intrFlag.Load() {
		return
	}
	n.intrErr = err
	n.intrFlag.Store(true)
	close(n.intrCh)
}

// ClearInterrupt re-arms the interrupt for the next round. Call only
// with no worker running.
func (n *Node) ClearInterrupt() {
	n.intrMu.Lock()
	defer n.intrMu.Unlock()
	if !n.intrFlag.Load() {
		return
	}
	n.intrCh = make(chan struct{})
	n.intrErr = nil
	n.intrFlag.Store(false)
}

func (n *Node) intrChan() chan struct{} {
	n.intrMu.Lock()
	defer n.intrMu.Unlock()
	return n.intrCh
}

func (n *Node) panicInterrupted() {
	n.intrMu.Lock()
	err := n.intrErr
	n.intrMu.Unlock()
	if err == nil {
		err = &RollbackError{Victim: -1}
	}
	panic(runError{err})
}

// ---- epoch ----

// SetEpoch moves the engine to recovery epoch e: frames stamped with any
// other epoch are fenced from then on. The supervisor bumps every
// surviving engine before resetting any state, so in-flight pre-rollback
// traffic cannot touch post-rollback state.
func (n *Node) SetEpoch(e uint32) { n.epoch.Store(e) }

// ---- replay ----

// BeginReplay puts the worker into replay mode up to barrier episode
// target: shared accesses go to a private scratch space, locks are
// no-ops and barriers only count, so re-executing the app function
// rebuilds the worker's private state (loop counters, cursors) without
// touching the restored shared state. Call before launching the worker.
func (n *Node) BeginReplay(target int64) {
	n.barsDone = 0
	n.replayTarget = target
	n.replaying = target > 0
	n.replayScratch = nil
	if n.replaying {
		n.replayScratch = make(map[page.ID]page.Buf)
	}
}

// scratchPage returns the worker-local replay copy of pg, seeded from
// the configured initial image on first touch. Worker-only: no locking.
func (n *Node) scratchPage(pg page.ID) page.Buf {
	b := n.replayScratch[pg]
	if b == nil {
		b = page.NewBuf(n.cfg.PageSize)
		if init, ok := n.cfg.Init[pg]; ok {
			copy(b, init)
		}
		n.replayScratch[pg] = b
	}
	return b
}

// replayBarrier counts a barrier during replay; reaching the target
// episode drops the worker back into live execution.
func (n *Node) replayBarrier() {
	if n.intrFlag.Load() {
		n.panicInterrupted()
	}
	n.barsDone++
	if n.barsDone >= n.replayTarget {
		n.replaying = false
		n.replayScratch = nil
	}
}

// ---- manager RPC (leader resolution) ----

// mgrRPC issues one manager request at the current leader, following
// KNotLeader redirects and rotating targets through silence, within the
// node's RPCTimeout. Each attempt is a fresh request under a fresh
// token — manager commands are idempotent, so a duplicate execution
// after a lost reply converges — and every redirect both counts and
// updates the node's leader cache. When the quorum is inactive the
// manager is statically node 0 and this is a plain rpc.
func (n *Node) mgrRPC(m *wire.Msg) *wire.Msg {
	r := n.mgrRPCRedirect(m)
	if r.Kind == wire.KNotLeader {
		// Exhausted RPCTimeout without ever reaching a settled leader.
		panic(runError{fmt.Errorf("node %d: manager rpc %v gave up chasing the leader after %v",
			n.id, m.Kind, n.cfg.RPCTimeout)})
	}
	return r
}

// mgrRPCRedirect is mgrRPC for stream steps (snapshot chunks) whose
// leader-local serving state cannot survive a leader change: instead of
// silently retrying a redirected request at the new leader — whose
// assembler or join blob knows nothing of the stream — the final
// KNotLeader is returned so the caller restarts the whole exchange.
// Transient redirects during an unsettled election are still absorbed.
func (n *Node) mgrRPCRedirect(m *wire.Msg) *wire.Msg { return n.mgrRPCLane(m, 0) }

// mgrRPCLane is mgrRPCRedirect with the requests issued on a token lane
// of their own, for callers running concurrently with the worker's
// lane-0 manager RPCs (the supervisor's membership changes).
func (n *Node) mgrRPCLane(m *wire.Msg, lane int64) *wire.Msg {
	if !n.consensusOn() {
		return n.rpcLane(0, m, lane)
	}
	deadline := time.Now().Add(n.cfg.RPCTimeout)
	perTry := 4 * n.cfg.RetryMax
	if perTry < 250*time.Millisecond {
		perTry = 250 * time.Millisecond
	}
	if lane == confLane && perTry > 500*time.Millisecond {
		// Membership changes are already retried by their caller (the
		// supervisor's promotion loop): chase each candidate leader
		// briefly instead of camping on a dead or unsettled replica for
		// the full retransmission budget.
		perTry = 500 * time.Millisecond
	}
	to := int(n.leaderHint.Load())
	if to < 0 || to >= n.nn {
		to = 0
	}
	backoff := n.cfg.RetryBase
	var last *wire.Msg
	for {
		wait := perTry
		if rem := time.Until(deadline); rem < wait {
			wait = rem
		}
		if wait <= 0 {
			if last != nil {
				return last
			}
			panic(runError{fmt.Errorf("node %d: manager rpc timeout: %v after %v (last target %d)",
				n.id, m.Kind, n.cfg.RPCTimeout, to)})
		}
		req := *m
		r, ok := n.rpcTry(to, &req, wait, lane)
		if ok && r.Kind != wire.KNotLeader {
			return r
		}
		if ok {
			atomic.AddInt64(&n.stats.LeaderRedirects, 1)
			last = r
			if ldr := int(r.Leader); ldr >= 0 && ldr < n.nn && ldr != to {
				to = ldr
			} else if ldr == to {
				// The replica named itself: its serving state is reset and
				// the caller must restart the exchange here.
				n.leaderHint.Store(int32(to))
				return r
			} else {
				to = (to + 1) % n.nn
			}
			n.leaderHint.Store(int32(to))
		} else {
			to = (to + 1) % n.nn
		}
		// Brief jittered pause so an unsettled election is not hammered.
		select {
		case <-time.After(n.jitter(backoff)):
		case <-n.intrChan():
			n.panicInterrupted()
		case <-n.done:
			panic(runError{n.closedErr()})
		}
		backoff *= 2
		if backoff > n.cfg.RetryMax {
			backoff = n.cfg.RetryMax
		}
	}
}

// ---- checkpoint capture ----

// captureCheckpoint runs on the worker right after departing a flagged
// barrier episode: it snapshots the pages homed here (plus the merged
// vector time) into the store, then lets the buffered post-cut flushes
// through, replicates to the manager if configured, and confirms the
// checkpoint so the manager can advance the stable episode.
func (n *Node) captureCheckpoint(episode int64) {
	rc := n.cfg.Recover
	n.mu.Lock()
	snap := &ckpt.NodeSnapshot{Episode: episode, Node: int32(n.id), VT: n.vt.Clone()}
	for pg := range n.pages {
		if int(n.cfg.Homes[pg]) != n.id {
			continue
		}
		ps := &n.pages[pg]
		src := ps.data
		if ps.twin != nil {
			src = ps.twin
		}
		snap.Pages = append(snap.Pages, ckpt.PageImage{
			Page:   int32(pg),
			Data:   append([]byte(nil), src...),
			HomeVT: ps.homeVT.Clone(),
		})
	}
	gated := n.gated
	n.gated = nil
	n.gateEpisode = 0
	n.mu.Unlock()

	if err := rc.Store.PutNode(snap); err != nil {
		panic(runError{fmt.Errorf("node %d: storing checkpoint %d: %w", n.id, episode, err)})
	}
	atomic.AddInt64(&n.stats.CheckpointsTaken, 1)
	atomic.AddInt64(&n.stats.CheckpointBytes, snap.Bytes())

	// Drain the gated flushes first — their senders are blocked on these
	// acks. A retransmitted copy buffered twice re-applies as a no-op
	// through the per-writer version checks.
	for _, m := range gated {
		n.handleWriteNotices(m)
	}

	if rc.Replicate && (n.id != 0 || n.consensusOn()) {
		n.pushSnapshot(episode, ckpt.EncodeNode(snap))
	}
	n.mgrRPC(&wire.Msg{Kind: wire.KCkptDone, Episode: episode})
	if err := rc.Store.Prune(keepCheckpoints); err != nil {
		panic(runError{fmt.Errorf("node %d: pruning checkpoints: %w", n.id, err)})
	}
}

// pushSnapshot streams an encoded snapshot to the manager's store in
// KSnapPush chunks. The chunks are leader-local state: a stream the
// leader died under is answered with a redirect and restarts from chunk
// 0 at the new leader (whose chunk-0 reset discards any stale half). A
// leader pushing to itself is a plain store round-trip through its own
// dispatcher.
func (n *Node) pushSnapshot(episode int64, blob []byte) {
	total := int32((len(blob) + snapChunkSize - 1) / snapChunkSize)
restart:
	for {
		for i := int32(0); i < total; i++ {
			lo := int(i) * snapChunkSize
			hi := lo + snapChunkSize
			if hi > len(blob) {
				hi = len(blob)
			}
			r := n.mgrRPCRedirect(&wire.Msg{
				Kind: wire.KSnapPush, Episode: episode,
				Chunk: i, NChunks: total,
				Data: blob[lo:hi],
			})
			if r.Kind == wire.KNotLeader {
				continue restart
			}
		}
		return
	}
}

// ---- rollback and rejoin ----

// ResetToCheckpoint rolls this node's shared state back to snap (nil
// means the initial image, episode 0): homed pages take the snapshot
// contents and version accounting, every cached copy is invalidated,
// open write intervals are discarded, the vector time becomes the
// snapshot's, and this node's share of the distributed synchronization
// plane restarts at the checkpoint cut (see syncState.reset). Call only
// with the worker stopped.
func (n *Node) ResetToCheckpoint(snap *ckpt.NodeSnapshot) {
	imgs := make(map[page.ID]*ckpt.PageImage)
	if snap != nil {
		for i := range snap.Pages {
			imgs[page.ID(snap.Pages[i].Page)] = &snap.Pages[i]
		}
	}
	n.mu.Lock()
	if snap != nil {
		n.vt = vc.VC(snap.VT).Clone()
	} else {
		n.vt = vc.New(n.nn)
	}
	for pg := range n.pages {
		ps := &n.pages[pg]
		if ps.twin != nil {
			page.FreeTwin(ps.twin)
			ps.twin = nil
		}
		ps.log = nil
		if int(n.cfg.Homes[pg]) != n.id {
			ps.valid = false
			ps.copyVT = vc.New(n.nn)
			continue
		}
		if ps.data == nil {
			ps.data = page.NewBuf(n.cfg.PageSize)
		}
		if img := imgs[page.ID(pg)]; img != nil {
			copy(ps.data, img.Data)
			ps.homeVT = vc.VC(img.HomeVT).Clone()
		} else {
			for i := range ps.data {
				ps.data[i] = 0
			}
			if init, ok := n.cfg.Init[page.ID(pg)]; ok {
				copy(ps.data, init)
			}
			ps.homeVT = vc.New(n.nn)
		}
		// The diff log restarts empty with its base at the restored
		// version: a puller behind the base falls back to a full copy.
		ps.logBase = ps.homeVT.Clone()
		ps.copyVT = ps.homeVT.Clone()
		ps.valid = true
	}
	n.mod = n.mod[:0]
	n.gateEpisode = 0
	n.gated = nil
	var episode int64
	if snap != nil {
		episode = snap.Episode
	}
	n.sy.reset(episode, n.vt, n.id)
	n.mu.Unlock()

	n.pmu.Lock()
	n.pending = make(map[int64]chan *wire.Msg)
	n.pmu.Unlock()
}

// JoinCluster runs a restarted node's rejoin handshake: it announces
// itself to the manager, restores the checkpoint the cluster rolled back
// to — from its own store if it survived the crash, else streamed from
// the manager's replica — resumes liveness, and arms replay up to the
// checkpoint episode. Call on a freshly built engine after Start, before
// launching the worker.
func (n *Node) JoinCluster() (err error) {
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(runError)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("node %d: rejoin: %w", n.id, re.err)
		}
	}()
	rc := n.cfg.Recover
	localBest := int64(-1)
	if ep, ok := rc.Store.LatestNode(n.id); ok {
		localBest = ep
	}
rejoin:
	for {
		grant := n.mgrRPC(&wire.Msg{Kind: wire.KJoinReq, Incarnation: n.incarnation, Episode: localBest})
		k := grant.Episode
		var snap *ckpt.NodeSnapshot
		if k > 0 {
			if s, gerr := rc.Store.GetNode(k, n.id); gerr == nil {
				snap = s
			} else if grant.NChunks > 0 {
				var blob []byte
				for i := int32(0); i < grant.NChunks; i++ {
					r := n.mgrRPCRedirect(&wire.Msg{Kind: wire.KSnapReq, Episode: k, Chunk: i})
					if r.Kind == wire.KNotLeader {
						// The granting leader died mid-stream; its successor
						// holds no join blob. Re-run the whole handshake.
						continue rejoin
					}
					blob = append(blob, r.Data...)
				}
				if snap, err = ckpt.DecodeNode(blob); err != nil {
					return fmt.Errorf("node %d: decoding streamed snapshot %d: %w", n.id, k, err)
				}
				// Keep the restored snapshot locally so the next stable-episode
				// accounting and a repeated crash stay honest.
				if err = rc.Store.PutNode(snap); err != nil {
					return fmt.Errorf("node %d: storing streamed snapshot %d: %w", n.id, k, err)
				}
			} else {
				return fmt.Errorf("node %d: checkpoint %d neither local nor at manager", n.id, k)
			}
		}
		n.ResetToCheckpoint(snap)
		n.mgrRPC(&wire.Msg{Kind: wire.KResume, Incarnation: n.incarnation})
		n.BeginReplay(k)
		return nil
	}
}

// ---- dispatcher control ----

// Control runs fn on the dispatcher goroutine — the owner of all manager
// state — and waits for it. It fails instead of blocking when the node
// is shut down.
func (n *Node) Control(fn func()) error {
	ran := make(chan struct{})
	wrapped := func() { fn(); close(ran) }
	select {
	case n.ctl <- wrapped:
	case <-n.done:
		return n.closedErr()
	}
	select {
	case <-ran:
		return nil
	case <-n.done:
		// The dispatcher may have picked fn up right before shutdown.
		select {
		case <-ran:
			return nil
		default:
			return n.closedErr()
		}
	}
}

func (n *Node) closedErr() error {
	if err := n.Err(); err != nil {
		return err
	}
	return fmt.Errorf("node %d: shut down", n.id)
}

// awaitCommit proposes cmd on this node's manager and blocks for the
// commit (or the direct apply when the quorum is inactive), bounded by
// RPCTimeout and the node's shutdown.
func (n *Node) awaitCommit(cmd []byte) error {
	errc := make(chan error, 1)
	n.mgr.propose(cmd, func(err error) { errc <- err })
	select {
	case err := <-errc:
		return err
	case <-n.done:
		return n.closedErr()
	case <-time.After(n.cfg.RPCTimeout):
		return fmt.Errorf("node %d: manager command did not commit within %v", n.id, n.cfg.RPCTimeout)
	}
}

// StableCheckpoint returns the newest checkpoint episode every node has
// confirmed durably stored (0 = the initial image). Manager node only —
// with the quorum active, the current leader. A noop is committed first
// as a read barrier, so the answer reflects everything any previous
// leader acknowledged.
func (n *Node) StableCheckpoint() (int64, error) {
	if n.mgr == nil {
		return 0, fmt.Errorf("node %d: not the manager", n.id)
	}
	if err := n.awaitCommit(nil); err != nil {
		return 0, err
	}
	return n.mgr.st.stable(), nil
}

// ResetManager rolls the manager's replicated state back to checkpoint
// episode k and marks victim as recovering: its silence is expected,
// its rejoin is awaited, and liveness skips it until KResume. Manager
// node only — with the quorum active, the current leader, and the reset
// commits on the quorum before returning. Call after SetEpoch on every
// surviving engine.
func (n *Node) ResetManager(k int64, victim int) error {
	if n.mgr == nil {
		return fmt.Errorf("node %d: not the manager", n.id)
	}
	return n.awaitCommit(encodeReset(int32(victim), k))
}

// ConsensusLeader reports this node's view of the manager quorum: the
// current term's leader (-1 while an election is unsettled) and whether
// this node is it. ok is false when the quorum is inactive.
func (n *Node) ConsensusLeader() (leader int, isLeader bool, ok bool) {
	g := n.mgr
	if g == nil || g.rep == nil {
		return 0, n.id == 0, false
	}
	info := g.rep.Leader()
	return info.Leader, info.IsLeader, true
}

// ConsensusVoters reports this node's current view of the quorum's
// voting membership (nil when the quorum is inactive).
func (n *Node) ConsensusVoters() []int {
	if g := n.mgr; g != nil && g.rep != nil {
		return g.rep.Leader().Voters
	}
	return nil
}

// confLane is the token lane of membership-change RPCs: the supervisor
// issues them concurrently with the worker's lane-0 manager RPCs, and
// each lane keeps its own monotonic dedup window at the leader.
const confLane int64 = 0x3F0C

// ChangeMembership commits a single-server change to the quorum's
// voting membership through the current leader: add (or remove) node
// target as a voter. It follows leader redirects like any manager RPC
// and returns an error when the quorum is inactive, the change is
// rejected (one change at a time; a removal may not shrink the voting
// set below three), or no settled leader was reached in time. Safe to
// call from supervisor goroutines while the worker runs.
func (n *Node) ChangeMembership(add bool, target int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(runError)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("node %d: membership change: %w", n.id, re.err)
		}
	}()
	if !n.consensusOn() {
		return fmt.Errorf("node %d: membership change without an active quorum", n.id)
	}
	m := &wire.Msg{Kind: wire.KConfChange, ReqFrom: int32(target)}
	if add {
		m.Flag = 1
	}
	r := n.mgrRPCLane(m, confLane)
	if r.Kind == wire.KNotLeader {
		return fmt.Errorf("node %d: membership change gave up chasing the leader", n.id)
	}
	if r.Flag != 1 {
		return fmt.Errorf("node %d: membership change rejected: %s", n.id, r.Err)
	}
	return nil
}
