package node

import (
	"fmt"
	"time"
)

// PeerDownError is the manager's structured verdict when heartbeat-based
// failure detection declares a peer dead: the cluster aborts with this
// error instead of letting every blocked worker ride out its RPC
// timeout. It names the suspect node, how long it has been silent, and
// the synchronization state the manager believes it holds or owes.
type PeerDownError struct {
	// Node is the suspect node's id.
	Node int
	// Silence is how long the manager has heard nothing from it.
	Silence time.Duration
	// Pending describes the suspect's synchronization state as the
	// manager sees it (held locks, missing barrier arrivals), or
	// "no pending synchronization" when it owes nothing.
	Pending string
}

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("manager: node %d presumed down (silent %v; %s)",
		e.Node, e.Silence.Round(time.Millisecond), e.Pending)
}

// RemoteAbortError wraps an abort broadcast received from another node,
// preserving which node initiated the shutdown and why.
type RemoteAbortError struct {
	// From is the node that broadcast the abort.
	From int
	// Reason is the initiating node's error text.
	Reason string
}

func (e *RemoteAbortError) Error() string {
	return fmt.Sprintf("aborted by node %d: %s", e.From, e.Reason)
}
