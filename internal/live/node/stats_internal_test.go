package node

import (
	"reflect"
	"testing"
)

// TestSnapshotCopiesEveryCounter guards Snapshot's hand-maintained copy
// list against drift: a counter added to Stats but not to the list
// would silently read zero in every report. Every field gets a distinct
// nonzero value; the snapshot must carry all of them.
func TestSnapshotCopiesEveryCounter(t *testing.T) {
	var s Stats
	rv := reflect.ValueOf(&s).Elem()
	for i := 0; i < rv.NumField(); i++ {
		switch f := rv.Field(i); f.Kind() {
		case reflect.Int64, reflect.Int:
			f.SetInt(int64(i + 1))
		default:
			t.Fatalf("Stats field %s has kind %s; extend this test for it", rv.Type().Field(i).Name, f.Kind())
		}
	}
	snap := s.Snapshot()
	sv := reflect.ValueOf(snap)
	for i := 0; i < rv.NumField(); i++ {
		if got, want := sv.Field(i).Int(), rv.Field(i).Int(); got != want {
			t.Errorf("Snapshot drops %s: got %d, want %d (add it to the copy list)",
				rv.Type().Field(i).Name, got, want)
		}
	}
}
