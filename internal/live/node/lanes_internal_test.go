package node

import (
	"sync"
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live/transport"
)

// TestLaneConcurrentAcquires pins the token-lane fix: a node's lock-req
// dedup window is per (origin, lane), so several goroutines of one node
// may have sync RPCs in flight at once as long as each uses its own
// LaneWorker. Before lanes, the per-origin window was a single monotonic
// token — two interleaved acquires from one node could deliver the
// higher token first, and the lower one (plus all its retransmissions)
// was dropped as a duplicate forever, hanging the acquirer. Each lane
// sticks to its own lock (mirroring the serve dispatcher's shard
// pinning); what's concurrent is distinct locks per node, which is
// exactly the interleaving that used to break the window.
func TestLaneConcurrentAcquires(t *testing.T) {
	const (
		lanes  = 4
		rounds = 100
	)
	cfg := Config{
		PageSize: 256, NPages: 1, Homes: []int32{0},
		NLocks: lanes, NBars: 1, Protocol: core.LI,
		HeartbeatTimeout: -1,
		RPCTimeout:       10 * time.Second, // fail fast if dedup regresses
	}
	trs := transport.NewInprocNetwork(2)
	nodes := []*Node{New(trs[0], cfg), New(trs[1], cfg)}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
		for _, tr := range trs {
			tr.Close()
		}
		for _, nd := range nodes {
			nd.Wait()
		}
	}()

	// Every lane of both nodes contends on its lock with the matching
	// lane of the other node, so each home keeps granting and forwarding
	// requests whose tokens interleave across the origin's lanes.
	errc := make(chan any, 2*lanes)
	var wg sync.WaitGroup
	for _, nd := range nodes {
		for l := 0; l < lanes; l++ {
			wg.Add(1)
			go func(nd *Node, l int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						errc <- r
					}
				}()
				w := nd.LaneWorker(l + 1)
				for i := 0; i < rounds; i++ {
					w.Lock(l)
					nd.Unlock(l)
				}
			}(nd, l)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("laned acquires hung — per-lane dedup windows broken")
	}
	close(errc)
	for r := range errc {
		t.Fatalf("laned acquire failed: %v", r)
	}

	// The token's lane field must not collapse into one window: node 0
	// homes locks 0 and 2, so it must have tracked separate per-lane
	// clients for node 1's lanes 1 and 3 (lock l is driven by lane l+1).
	nodes[0].mu.Lock()
	nlanes := len(nodes[0].sy.clients[1].lanes)
	nodes[0].mu.Unlock()
	if nlanes < 2 {
		t.Fatalf("home tracked %d lanes for node 1, want >= 2", nlanes)
	}
}
