package node

import (
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/live/wire"
)

// Regression tests for the vtalias findings in the distributed lock
// plane: state retained past a dispatcher turn (a queued successor, a
// learned interval log) must own its memory, not alias the decoded
// frame that delivered it — over the in-process transport a self-sent
// frame's slices are shared with the sender's copy of the message.

func newUnstartedNode(t *testing.T) *Node {
	t.Helper()
	cfg := Config{
		PageSize: 256, NPages: 1, Homes: []int32{0},
		NLocks: 1, NBars: 1, Protocol: core.LI,
		HeartbeatTimeout: -1,
	}
	trs := transport.NewInprocNetwork(3)
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	// The node is never started: handlers run synchronously on the test
	// goroutine, so the paths that would send are avoided by keeping the
	// lock held (the successor is queued, not granted).
	return New(trs[0], cfg)
}

func TestLockReqClonesRequesterVT(t *testing.T) {
	n := newUnstartedNode(t)
	lk := &n.sy.locks[0]
	lk.owner = 0 // home's probable owner is this node itself
	lk.owned = true
	lk.held = true // worker inside the critical section: request is queued

	m := &wire.Msg{Kind: wire.KLockReq, From: 1, Token: 1, Lock: 0, VT: []int32{7, 3, 0}}
	n.handleLockReq(m)
	if lk.succ == nil {
		t.Fatal("request was not queued as successor")
	}
	m.VT[0] = 99 // the requester's copy of the frame moves on
	if got := lk.succ.vt[0]; got != 7 {
		t.Fatalf("queued successor VT[0] = %d after frame mutation, want 7 (must be cloned)", got)
	}
}

func TestLockForwardClonesRequesterVT(t *testing.T) {
	n := newUnstartedNode(t)
	lk := &n.sy.locks[0]
	lk.owned = true
	lk.held = true

	m := &wire.Msg{Kind: wire.KLockForward, ReqFrom: 2, Token: 1, Lock: 0, VT: []int32{5, 0, 2}}
	n.handleLockForward(m)
	if lk.succ == nil {
		t.Fatal("forwarded request was not queued as successor")
	}
	m.VT[2] = 99
	if got := lk.succ.vt[2]; got != 2 {
		t.Fatalf("queued successor VT[2] = %d after frame mutation, want 2 (must be cloned)", got)
	}
}

func TestRecordKnowledgeClonesNoticePages(t *testing.T) {
	n := newUnstartedNode(t)
	pages := []int32{1, 2, 3}
	n.mu.Lock()
	n.recordKnowledgeLocked([]wire.Notice{{Writer: 1, Index: 1, Pages: pages}})
	n.mu.Unlock()

	k := &n.sy.know[1]
	if len(k.recs) != 1 {
		t.Fatalf("learned log has %d records, want 1", len(k.recs))
	}
	pages[0] = 99 // the frame's page list is reused after the handler
	if got := k.recs[0][0]; got != 1 {
		t.Fatalf("learned log page[0] = %d after frame mutation, want 1 (must be cloned)", got)
	}
}
