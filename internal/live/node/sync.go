package node

// sync.go is the node's slice of the decentralized synchronization
// plane that replaced the centralized manager's lock, barrier and
// interval-log duties.
//
// Locks are home-based with ownership forwarding (the TreadMarks
// scheme): every lock has a static home node (lockHome) that tracks a
// probable owner. An acquire goes to the home, which either grants
// directly (a never-owned lock has an empty history, so a zero vector
// time is exact) or forwards the request to the probable owner and
// repoints the pointer at the requester — collapsing the chain so each
// node sees at most one pending successor per lock. The owner hands the
// lock straight to the successor with the release-time vector time and
// the write notices the successor is missing, computed from its own
// per-writer knowledge. Re-acquiring a lock this node still owns, and
// releasing with no successor queued, are local operations with zero
// messages.
//
// Barriers combine up a binary fan-in tree rooted at node 0: each
// worker delivers its arrival (with its own new interval notices) to
// its local dispatcher, dispatchers aggregate their subtree and forward
// one combined arrival to the parent, and the root fans the release —
// merged vector time plus the episode's full notice set — back down.
// Node 0's per-episode message degree drops from N-1 to its tree
// degree.
//
// Interval knowledge is per-writer: each node appends its own closed
// intervals to an authoritative local log (never pruned within an
// epoch) and records what it learns from grants and releases in capped
// learned logs. A granter whose learned log has pruned an interval the
// grant needs simply omits it; the acquirer detects the gap against the
// grant vector time and back-fills it from the writer's own log with a
// KLogSegReq — on-demand segment replication instead of a global log.
//
// Idempotence: a worker's RPC tokens are strictly increasing and a
// worker blocked on a lock or barrier sends nothing newer, so every
// node de-duplicates by (origin, token) — the home against requesters
// (re-sending the cached grant or re-forwarding), the owner against
// forwarded requests (re-sending the cached handoff grant), and the
// barrier aggregation against repeated arrivals (re-forwarding the
// aggregate up, or re-serving the release after it). Retransmission is
// driven entirely by the blocked requester's retry schedule.
//
// All of this state is guarded by Node.mu: the worker's fast paths, the
// dispatcher's handlers and the supervisor's checkpoint reset touch it
// from different goroutines.

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"lrcdsm/internal/live/wire"
	"lrcdsm/internal/vc"
)

// learnedKnowCap bounds each learned per-writer knowledge log. A node's
// own log is authoritative and never pruned within an epoch; learned
// logs only save the granter a segment fetch, so pruning them is safe.
const learnedKnowCap = 1024

// lockHome maps a lock to its static home node.
func (n *Node) lockHome(id int) int { return id % n.nn }

// barParent is this node's parent in the barrier tree (root: node 0).
func (n *Node) barParent() int { return (n.id - 1) / 2 }

// barChildren lists this node's children in the barrier tree.
func (n *Node) barChildren() []int {
	var out []int
	for _, c := range []int{2*n.id + 1, 2*n.id + 2} {
		if c < n.nn {
			out = append(out, c)
		}
	}
	return out
}

// syncState is one node's share of the distributed synchronization
// plane. Guarded by Node.mu.
type syncState struct {
	locks   []dlock
	know    []knowLog
	clients []lclients

	// Barrier tree state: the episode currently aggregating, the last
	// released episode, and the retained release for re-serving
	// duplicate arrivals that surface after it.
	bar         barAgg
	relEpisode  int64
	lastRelease *wire.Msg
	// lastBarIdx is this node's own interval index at its last barrier
	// departure: the base of the own-notice set the next arrival carries.
	lastBarIdx int32
}

// dlock is one lock's local state. The home fields are meaningful on
// the lock's home node, the owner fields wherever the lock currently
// lives; on a lock homed at its owner both sets are in play.
type dlock struct {
	// owner is the home's probable-owner pointer (-1 = never granted).
	owner int32
	// owned marks this node as the lock's current owner; held marks the
	// worker inside the critical section. An owned, unheld lock with no
	// successor is re-acquirable and releasable with zero messages.
	owned bool
	held  bool
	// relVT is this node's vector time at its last release of the lock —
	// the grant time a handoff carries.
	relVT []int32
	// succ is the forwarded successor to hand the lock to at release.
	// The home's chain collapsing guarantees at most one.
	succ *fwdReq
}

type fwdReq struct {
	from  int32
	token int64
	vt    []int32
}

// lclient extends the per-peer de-duplication window with the home's
// forward cache: a retransmitted request whose forward (not reply) was
// the action gets the forward re-sent to the same probable owner.
type lclient struct {
	mclient
	fwdTok int64
	fwdTo  int32
	fwd    *wire.Msg
}

// lclients holds one origin node's de-duplication windows, one per
// token lane. The window's "token <= lastTok means duplicate" logic
// needs tokens that are strictly increasing with at most one
// outstanding — true per requester goroutine, not per node once a
// serving node runs several executor goroutines. Each executor stamps
// its lane into the token's high bits (Node.LaneWorker), restoring the
// invariant lane by lane. Plain workers use lane 0.
type lclients struct {
	lanes map[int64]*lclient
}

// lane returns (creating on demand) the window for tok's lane.
func (cs *lclients) lane(tok int64) *lclient {
	l := tok >> laneShift
	c := cs.lanes[l]
	if c == nil {
		if cs.lanes == nil {
			cs.lanes = make(map[int64]*lclient)
		}
		c = &lclient{}
		cs.lanes[l] = c
	}
	return c
}

// knowLog is one writer's interval knowledge: recs[i] holds the pages
// of interval base+1+i. The contiguous prefix (0, base] has been pruned
// (learned logs only); coverage always reaches at least this node's
// vector time entry for the writer.
type knowLog struct {
	base int32
	recs [][]int32
}

func (k *knowLog) covered() int32           { return k.base + int32(len(k.recs)) }
func (k *knowLog) pages(idx int32) []int32  { return k.recs[idx-k.base-1] }

// barAgg accumulates one barrier episode's arrivals from this node's
// worker and tree children.
type barAgg struct {
	episode int64
	barrier int32
	arrived map[int32]int64 // arriver -> token (meaningful for self)
	vt      vc.VC
	notices []wire.Notice
	agg     *wire.Msg // the aggregate sent up (non-root), for re-sends
}

func newSyncState(nlocks, nn int) *syncState {
	sy := &syncState{
		locks:   make([]dlock, nlocks),
		know:    make([]knowLog, nn),
		clients: make([]lclients, nn),
	}
	for i := range sy.locks {
		sy.locks[i].owner = -1
	}
	return sy
}

// reset rolls the sync plane back to a checkpoint cut: locks restart
// unowned at their homes (every release before the checkpoint barrier
// happened-before its merged vector time, so a zero-time first grant
// loses nothing), barrier aggregation restarts at the checkpoint
// episode, and per-writer knowledge restarts at the snapshot vector
// time. Caller holds Node.mu.
func (sy *syncState) reset(episode int64, vt vc.VC, self int) {
	for i := range sy.locks {
		sy.locks[i] = dlock{owner: -1}
	}
	for w := range sy.know {
		sy.know[w] = knowLog{base: vt.Get(w)}
	}
	for i := range sy.clients {
		sy.clients[i] = lclients{}
	}
	sy.bar = barAgg{}
	sy.relEpisode = episode
	sy.lastRelease = nil
	sy.lastBarIdx = vt.Get(self)
}

// ---- worker side: locks ----

// Lock implements core.Worker. Re-acquiring a lock this node still owns
// with no successor queued is purely local; otherwise the request goes
// to the lock's home, which grants directly (never-owned) or forwards
// to the probable owner, whose grant arrives with the release-time
// vector time and the write notices this node is missing.
func (n *Node) Lock(id int) { n.lockLane(id, 0) }

// lockLane is Lock with an explicit token lane — concurrent serving
// executors acquire on private lanes (see lclients) so their
// interleaved tokens don't trip the per-origin duplicate windows.
func (n *Node) lockLane(id int, lane int64) {
	if n.replaying {
		return // replay re-derives private state only; locks are moot
	}
	t0 := time.Now()
	n.mu.Lock()
	lk := &n.sy.locks[id]
	if lk.owned && lk.succ == nil {
		lk.held = true
		n.mu.Unlock()
		atomic.AddInt64(&n.stats.LockAcquires, 1)
		atomic.AddInt64(&n.stats.LockLocalAcquires, 1)
		atomic.AddInt64(&n.stats.LockWaitNs, time.Since(t0).Nanoseconds())
		return
	}
	reqVT := n.vt.Clone()
	n.mu.Unlock()
	reply := n.rpcLane(n.lockHome(id), &wire.Msg{Kind: wire.KLockReq, Lock: int32(id), VT: reqVT}, lane)
	n.applyNotices(reply.VT, reply.Notices)
	n.mu.Lock()
	lk.owned = true
	lk.held = true
	lk.relVT = nil
	n.mu.Unlock()
	atomic.AddInt64(&n.stats.LockAcquires, 1)
	atomic.AddInt64(&n.stats.LockWaitNs, time.Since(t0).Nanoseconds())
}

// Unlock implements core.Worker: it closes the write interval (flushing
// its diffs home and blocking on the acks — the release is complete
// before the lock can move) and, if a successor was forwarded here,
// hands the lock straight to it. With no successor the lock stays
// owned in place and the release costs zero messages.
func (n *Node) Unlock(id int) {
	if n.replaying {
		return
	}
	n.closeInterval()
	n.mu.Lock()
	lk := &n.sy.locks[id]
	lk.held = false
	lk.relVT = n.vt.Clone()
	var g *wire.Msg
	var to int32
	if s := lk.succ; s != nil {
		lk.succ = nil
		lk.owned = false
		g, to = n.buildGrantLocked(id, s), s.from
	}
	n.mu.Unlock()
	if g != nil {
		atomic.AddInt64(&n.stats.LockHandoffs, 1)
		n.send(int(to), g)
	}
}

// buildGrantLocked builds (and caches, for retransmitted requests) the
// grant handing lock id to successor s: the last release's vector time
// and the notices between the successor's time and it, from local
// knowledge. Caller holds Node.mu.
func (n *Node) buildGrantLocked(id int, s *fwdReq) *wire.Msg {
	lk := &n.sy.locks[id]
	g := &wire.Msg{
		Kind:    wire.KLockGrant,
		Token:   s.token,
		Lock:    int32(id),
		VT:      append([]int32(nil), lk.relVT...),
		Notices: n.noticesBetweenLocked(s.vt, lk.relVT),
	}
	n.sy.clients[s.from].lane(s.token).cache(g)
	return g
}

// ---- dispatcher side: locks ----

// handleLockReq serves an acquire at the lock's home: grant directly if
// the lock was never owned, accept in place if the home itself is the
// probable owner, else forward to the owner and repoint at the
// requester.
func (n *Node) handleLockReq(m *wire.Msg) {
	n.mu.Lock()
	c := n.sy.clients[m.From].lane(m.Token)
	if m.Token <= c.lastTok {
		var out *wire.Msg
		to := int(m.From)
		if r, ok := c.replies[m.Token]; ok {
			out = r
		} else if c.fwd != nil && c.fwdTok == m.Token {
			out, to = c.fwd, int(c.fwdTo)
		}
		n.mu.Unlock()
		atomic.AddInt64(&n.stats.DupRequests, 1)
		if out != nil {
			n.send(to, out)
		}
		return
	}
	c.lastTok = m.Token
	lk := &n.sy.locks[m.Lock]
	prev := lk.owner
	lk.owner = m.From
	if prev < 0 {
		// Never owned: the lock's history is empty, so a zero vector time
		// and no notices are exact.
		g := &wire.Msg{Kind: wire.KLockGrant, Token: m.Token, Lock: m.Lock, VT: make([]int32, n.nn)}
		c.cache(g)
		n.mu.Unlock()
		atomic.AddInt64(&n.stats.LockHandoffs, 1)
		n.send(int(m.From), g)
		return
	}
	// The queued successor can outlive this handler by a whole critical
	// section; give it its own copy of the requester's vector time rather
	// than retaining the decoded frame's slice (which, over the in-process
	// transport, the sender's copy of the message still shares).
	s := &fwdReq{from: m.From, token: m.Token, vt: append([]int32(nil), m.VT...)}
	if int(prev) == n.id {
		out, to := n.acceptForwardLocked(int(m.Lock), s)
		n.mu.Unlock()
		if out != nil {
			atomic.AddInt64(&n.stats.LockHandoffs, 1)
			n.send(to, out)
		}
		return
	}
	//dsmlint:ignore vtalias the forward is encoded before the handler returns and only re-encoded on retransmit; nothing mutates the carried VT
	fwd := &wire.Msg{Kind: wire.KLockForward, Token: m.Token, Lock: m.Lock, ReqFrom: m.From, VT: m.VT}
	c.fwdTok, c.fwdTo, c.fwd = m.Token, prev, fwd
	n.mu.Unlock()
	atomic.AddInt64(&n.stats.LockForwards, 1)
	n.send(int(prev), fwd)
}

// handleLockForward serves a forwarded acquire at the probable owner.
func (n *Node) handleLockForward(m *wire.Msg) {
	n.mu.Lock()
	c := n.sy.clients[m.ReqFrom].lane(m.Token)
	if m.Token <= c.lastTok {
		r := c.replies[m.Token]
		n.mu.Unlock()
		atomic.AddInt64(&n.stats.DupRequests, 1)
		if r != nil {
			n.send(int(m.ReqFrom), r)
		}
		return
	}
	c.lastTok = m.Token
	// As in handleLockReq: the successor may be queued past this handler's
	// lifetime, so it owns a copy of the requester's vector time.
	out, to := n.acceptForwardLocked(int(m.Lock), &fwdReq{from: m.ReqFrom, token: m.Token, vt: append([]int32(nil), m.VT...)})
	n.mu.Unlock()
	if out != nil {
		atomic.AddInt64(&n.stats.LockHandoffs, 1)
		n.send(to, out)
	}
}

// acceptForwardLocked takes a (de-duplicated) forwarded request at the
// probable owner: a released-in-place lock is granted immediately;
// otherwise — the worker holds it, or this node's own grant is still in
// flight — the successor is queued for handoff at the next release.
// Caller holds Node.mu; the returned message is sent after unlocking.
func (n *Node) acceptForwardLocked(id int, s *fwdReq) (*wire.Msg, int) {
	lk := &n.sy.locks[id]
	if lk.owned && !lk.held && lk.succ == nil {
		lk.owned = false
		return n.buildGrantLocked(id, s), int(s.from)
	}
	if lk.succ != nil {
		n.fail(fmt.Errorf("node %d: second successor %d for lock %d (have %d) — home chain collapse violated",
			n.id, s.from, id, lk.succ.from))
		return nil, 0
	}
	lk.succ = s
	return nil, 0
}

// ---- worker side: barriers ----

// Barrier implements core.Worker: the worker closes its write interval
// and delivers its arrival — with notices for its own intervals since
// the last episode — to its local dispatcher, which aggregates the
// subtree up the barrier tree. The departure arrives with the merged
// vector time and the episode's full notice set.
func (n *Node) Barrier(id int) {
	if n.replaying {
		n.replayBarrier()
		return
	}
	// A flagged episode closes a checkpoint cut at this barrier. The
	// capture gate goes up before the arrival is sent: every flush this
	// node receives from a peer that already departed the episode (its
	// stamp >= gateEpisode) is buffered until the capture is done, so the
	// snapshot sees exactly the pre-barrier state. Flushes stamped below
	// the gate belong to intervals that happened-before the barrier and
	// apply normally — causality guarantees they were all acknowledged
	// before this node's own departure.
	episodeNext := n.barsDone + 1
	flagged := false
	if rc := n.cfg.Recover; rc != nil && rc.Every > 0 && episodeNext%rc.Every == 0 {
		flagged = true
		n.mu.Lock()
		n.gateEpisode = episodeNext
		n.mu.Unlock()
	}
	n.closeInterval()
	n.mu.Lock()
	k := &n.sy.know[n.id]
	var own []wire.Notice
	for idx := n.sy.lastBarIdx + 1; idx <= k.covered(); idx++ {
		own = append(own, wire.Notice{Writer: int32(n.id), Index: idx, Pages: k.pages(idx)})
	}
	vtSnap := n.vt.Clone()
	n.mu.Unlock()
	t0 := time.Now()
	reply := n.rpc(n.id, &wire.Msg{
		Kind: wire.KBarArrive, Barrier: int32(id), Episode: episodeNext,
		VT: vtSnap, Notices: own,
	})
	n.applyNotices(reply.VT, reply.Notices)
	n.mu.Lock()
	n.sy.lastBarIdx = n.vt.Get(n.id)
	n.mu.Unlock()
	atomic.AddInt64(&n.stats.BarrierEpisodes, 1)
	atomic.AddInt64(&n.stats.BarrierWaitNs, time.Since(t0).Nanoseconds())
	if n.obs != nil {
		n.obs.BarrierDeparted(n.id, reply.Episode)
	}
	n.barsDone++
	if flagged {
		n.captureCheckpoint(reply.Episode)
	}
}

// ---- dispatcher side: barriers ----

// handleBarArrive aggregates one arrival (the local worker's, or a
// child subtree's) into the pending episode. A complete subtree is
// forwarded up; at the root a complete episode is released down.
func (n *Node) handleBarArrive(m *wire.Msg) {
	n.mu.Lock()
	sy := n.sy
	if m.Episode <= sy.relEpisode {
		// Already released: a lost release or a straggling retransmission.
		// Re-serve the newest release — unless it is older than the
		// arrival's episode, which happens at the root while a flagged
		// episode's manager commit is still in flight (relEpisode has
		// moved, lastRelease has not): serving the stale release would
		// unblock the arriver with the previous episode's state. Drop and
		// let the commit's own fan-out (or the next retransmission)
		// deliver the right one.
		rel := sy.lastRelease
		n.mu.Unlock()
		atomic.AddInt64(&n.stats.DupRequests, 1)
		if rel == nil || rel.Episode < m.Episode {
			return
		}
		if int(m.From) == n.id {
			n.send(n.id, departFrom(rel, m.Token))
		} else {
			cp := *rel
			n.send(int(m.From), &cp)
		}
		return
	}
	b := &sy.bar
	if b.arrived == nil {
		*b = barAgg{episode: m.Episode, barrier: m.Barrier, arrived: map[int32]int64{}, vt: vc.New(n.nn)}
	}
	if b.episode != m.Episode || b.barrier != m.Barrier {
		n.mu.Unlock()
		n.fail(fmt.Errorf("node %d: arrival for barrier %d episode %d while aggregating barrier %d episode %d",
			n.id, m.Barrier, m.Episode, b.barrier, b.episode))
		return
	}
	if _, dup := b.arrived[m.From]; dup {
		// A retransmission while the episode is still pending. On an inner
		// node the aggregate (or the original arrival's loss) may be what
		// is stuck — push the subtree's state up again.
		agg := b.agg
		n.mu.Unlock()
		atomic.AddInt64(&n.stats.DupRequests, 1)
		if agg != nil {
			n.send(n.barParent(), agg)
		}
		return
	}
	b.arrived[m.From] = m.Token
	b.vt.Join(m.VT)
	//dsmlint:ignore vtalias arrivals are decoded fresh per frame and the aggregate is read-only once built; recordKnowledgeLocked clones what it keeps
	b.notices = append(b.notices, m.Notices...)
	if len(b.arrived) < 1+len(n.barChildren()) {
		n.mu.Unlock()
		return
	}
	if n.id != 0 {
		agg := &wire.Msg{
			Kind: wire.KBarArrive, Barrier: b.barrier, Episode: b.episode,
			VT: b.vt.Clone(), Notices: b.notices,
		}
		b.agg = agg
		n.mu.Unlock()
		n.send(n.barParent(), agg)
		return
	}
	// Root: the episode is complete across the cluster.
	episode := b.episode
	barrier := b.barrier
	merged := b.vt.Clone()
	notices := b.notices
	selfTok := b.arrived[int32(n.id)]
	rel := &wire.Msg{Kind: wire.KBarRelease, Barrier: barrier, Episode: episode, VT: merged, Notices: notices}
	sy.relEpisode = episode
	sy.bar = barAgg{}
	rc := n.cfg.Recover
	flagged := rc != nil && rc.Every > 0 && episode%rc.Every == 0
	if !flagged {
		sy.lastRelease = rel
		n.mu.Unlock()
		n.fanRelease(rel, selfTok)
		return
	}
	// A flagged episode commits the root's half of the checkpoint — the
	// episode number and merged vector time — before any release
	// escapes: by the time a node can snapshot (after its depart) or
	// confirm, the manager snapshot it pairs with exists on the quorum.
	// lastRelease still names the previous episode meanwhile, so a
	// duplicate arrival for this one is dropped instead of re-served
	// early (see the stale-release path above).
	n.mu.Unlock()
	if !n.consensusOn() {
		// Static manager: the root is the manager; apply directly.
		if err := n.mgr.applyCmd(encodeMgrSnap(episode, merged)); err != nil {
			n.abortCluster(fmt.Errorf("node %d: storing manager checkpoint %d: %w", n.id, episode, err))
			return
		}
		n.mu.Lock()
		sy.lastRelease = rel
		n.mu.Unlock()
		n.fanRelease(rel, selfTok)
		return
	}
	// Replicated manager: the root (statically node 0) may not be the
	// leader, and the dispatcher must not block on a quorum round-trip —
	// a helper goroutine chases the leader with KMgrSnap and fans the
	// releases out once the commit is acknowledged. A rollback that
	// lands meanwhile supersedes the episode: the epoch moves and the
	// sync plane resets, so the release is quietly abandoned.
	startEpoch := n.epoch.Load()
	go func() {
		for {
			committed := func() (ok bool) {
				defer func() {
					if r := recover(); r != nil {
						if _, isRun := r.(runError); !isRun {
							panic(r)
						}
						// Interrupted, timed out (e.g. a partition outlasting
						// the RPC deadline) or shut down mid-chase: report
						// failure and let the loop decide whether the episode
						// is still worth chasing.
						ok = false
					}
				}()
				n.mgrRPC(&wire.Msg{Kind: wire.KMgrSnap, Episode: episode, VT: merged})
				return true
			}()
			superseded := func() bool {
				select {
				case <-n.done:
					return true
				default:
				}
				if n.epoch.Load() != startEpoch {
					return true
				}
				n.mu.Lock()
				defer n.mu.Unlock()
				return n.sy.relEpisode != episode ||
					(n.sy.lastRelease != nil && n.sy.lastRelease.Episode >= episode)
			}
			if !committed {
				if superseded() {
					return
				}
				// Still the current episode: duplicate arrivals are dropped
				// while lastRelease is nil, so nothing else will re-fire the
				// commit — keep chasing until it lands or a rollback (or
				// teardown) supersedes the episode.
				time.Sleep(10 * time.Millisecond)
				continue
			}
			n.mu.Lock()
			if n.epoch.Load() != startEpoch || n.sy.relEpisode != episode ||
				(n.sy.lastRelease != nil && n.sy.lastRelease.Episode >= episode) {
				n.mu.Unlock()
				return
			}
			n.sy.lastRelease = rel
			n.mu.Unlock()
			n.fanRelease(rel, selfTok)
			return
		}
	}()
}

// fanRelease sends a completed episode's release to the root's
// children and the local worker's synthesized depart. Call without
// Node.mu held, after publishing lastRelease under it.
func (n *Node) fanRelease(rel *wire.Msg, selfTok int64) {
	for _, c := range n.barChildren() {
		cp := *rel
		n.send(c, &cp)
	}
	n.send(n.id, departFrom(rel, selfTok))
}

// handleBarRelease fans a completed episode down: remember it for
// re-serving, release the local worker, and forward to the children.
func (n *Node) handleBarRelease(m *wire.Msg) {
	n.mu.Lock()
	sy := n.sy
	if m.Episode <= sy.relEpisode {
		n.mu.Unlock()
		atomic.AddInt64(&n.stats.DupRequests, 1)
		return
	}
	selfTok, ok := sy.bar.arrived[int32(n.id)]
	if !ok {
		n.mu.Unlock()
		n.fail(fmt.Errorf("node %d: release for barrier %d episode %d without a local arrival",
			n.id, m.Barrier, m.Episode))
		return
	}
	sy.relEpisode = m.Episode
	//dsmlint:ignore vtalias the release frame is kept only for re-serving duplicate arrivals, re-encoded verbatim and never written
	sy.lastRelease = m
	sy.bar = barAgg{}
	n.mu.Unlock()
	for _, c := range n.barChildren() {
		cp := *m
		n.send(c, &cp)
	}
	n.send(n.id, departFrom(m, selfTok))
}

// departFrom synthesizes the local worker's departure reply from a
// release message.
func departFrom(rel *wire.Msg, token int64) *wire.Msg {
	return &wire.Msg{
		Kind: wire.KBarDepart, Token: token, Barrier: rel.Barrier, Episode: rel.Episode,
		//dsmlint:ignore vtalias the depart is consumed synchronously by the local worker, which clones via recordKnowledgeLocked before retaining
		VT: append([]int32(nil), rel.VT...), Notices: rel.Notices,
	}
}

// ---- per-writer interval knowledge ----

// recordOwnIntervalLocked appends a just-closed interval to this node's
// authoritative log. Caller holds Node.mu; idx is the fresh tick.
func (n *Node) recordOwnIntervalLocked(idx int32, pages []int32) {
	k := &n.sy.know[n.id]
	if idx != k.covered()+1 {
		n.fail(fmt.Errorf("node %d: own interval %d, log covers %d", n.id, idx, k.covered()))
		return
	}
	k.recs = append(k.recs, pages)
}

// recordKnowledgeLocked folds notices learned from a grant or release
// into the per-writer logs, pruning learned logs past learnedKnowCap.
// Caller holds Node.mu.
func (n *Node) recordKnowledgeLocked(notices []wire.Notice) {
	if len(notices) == 0 {
		return
	}
	perW := make(map[int32][]wire.Notice)
	for _, nt := range notices {
		if int(nt.Writer) == n.id {
			continue // own log is authoritative
		}
		// The page lists survive in sy.know long after the frame that
		// carried them; clone here — the one chokepoint every learned
		// notice passes through — so the logs own their memory.
		cp := wire.Notice{Writer: nt.Writer, Index: nt.Index, Pages: append([]int32(nil), nt.Pages...)}
		perW[nt.Writer] = append(perW[nt.Writer], cp)
	}
	for w, nts := range perW {
		sort.Slice(nts, func(i, j int) bool { return nts[i].Index < nts[j].Index })
		k := &n.sy.know[w]
		for _, nt := range nts {
			cov := k.covered()
			if nt.Index <= cov {
				continue
			}
			if nt.Index > cov+1 {
				n.fail(fmt.Errorf("node %d: notice gap for writer %d: have %d, got %d", n.id, w, cov, nt.Index))
				return
			}
			k.recs = append(k.recs, nt.Pages)
		}
		if len(k.recs) > learnedKnowCap {
			drop := len(k.recs) - learnedKnowCap
			k.base += int32(drop)
			k.recs = append(k.recs[:0], k.recs[drop:]...)
		}
	}
}

// noticesBetweenLocked returns the write notices of every interval
// covered by to but not by from, from local knowledge. Intervals the
// learned logs have pruned are omitted — the acquirer back-fills them
// from the writers' own logs. Caller holds Node.mu.
func (n *Node) noticesBetweenLocked(from, to []int32) []wire.Notice {
	var out []wire.Notice
	for w := 0; w < n.nn; w++ {
		var lo, hi int32
		if w < len(from) {
			lo = from[w]
		}
		if w < len(to) {
			hi = to[w]
		}
		k := &n.sy.know[w]
		for idx := lo + 1; idx <= hi; idx++ {
			if idx <= k.base {
				continue
			}
			if idx > k.covered() {
				n.fail(fmt.Errorf("node %d: knowledge of writer %d ends at %d, grant needs %d",
					n.id, w, k.covered(), idx))
				return out
			}
			out = append(out, wire.Notice{Writer: int32(w), Index: idx, Pages: k.pages(idx)})
		}
	}
	return out
}

// fillNotices back-fills the gaps between this node's vector time and
// the grant time that the provided notices do not cover (the granter's
// learned log had pruned them), fetching each missing run from the
// writer's own authoritative log.
func (n *Node) fillNotices(grantVT []int32, notices []wire.Notice) []wire.Notice {
	n.mu.Lock()
	myvt := n.vt.Clone()
	n.mu.Unlock()
	var have map[int32]map[int32]bool
	for _, nt := range notices {
		if have == nil {
			have = make(map[int32]map[int32]bool)
		}
		s := have[nt.Writer]
		if s == nil {
			s = make(map[int32]bool)
			have[nt.Writer] = s
		}
		s[nt.Index] = true
	}
	type segRun struct {
		w      int
		lo, hi int32 // (lo, hi]
	}
	var runs []segRun
	for w := 0; w < n.nn; w++ {
		if w == n.id {
			continue
		}
		var lo, hi int32
		if w < len(myvt) {
			lo = myvt[w]
		}
		if w < len(grantVT) {
			hi = grantVT[w]
		}
		s := have[int32(w)]
		start := int32(0)
		for idx := lo + 1; idx <= hi+1; idx++ {
			missing := idx <= hi && !s[idx]
			if missing && start == 0 {
				start = idx
			} else if !missing && start != 0 {
				runs = append(runs, segRun{w, start - 1, idx - 1})
				start = 0
			}
		}
	}
	for _, r := range runs {
		atomic.AddInt64(&n.stats.LogSegFetches, 1)
		reply := n.rpc(r.w, &wire.Msg{Kind: wire.KLogSegReq, Lo: r.lo, Hi: r.hi})
		notices = append(notices, reply.Notices...)
	}
	return notices
}

// handleLogSegReq serves a segment (Lo, Hi] of this node's own interval
// log. The request is read-only, so it is served statelessly: a
// retransmission just gets a fresh identical reply.
func (n *Node) handleLogSegReq(m *wire.Msg) {
	n.mu.Lock()
	k := &n.sy.know[n.id]
	var out []wire.Notice
	for idx := m.Lo + 1; idx <= m.Hi; idx++ {
		if idx <= k.base || idx > k.covered() {
			n.mu.Unlock()
			n.fail(fmt.Errorf("node %d: segment (%d,%d] outside own log (%d,%d]",
				n.id, m.Lo, m.Hi, k.base, k.covered()))
			return
		}
		out = append(out, wire.Notice{Writer: int32(n.id), Index: idx, Pages: k.pages(idx)})
	}
	n.mu.Unlock()
	n.send(int(m.From), &wire.Msg{Kind: wire.KLogSegResp, Token: m.Token, Lo: m.Lo, Hi: m.Hi, Notices: out})
}

// ---- cluster abort ----

// abortCluster fails this node with err and broadcasts it so every peer
// unblocks immediately instead of waiting out its own timeout. The
// broadcast is best-effort — a peer the abort cannot reach (the dead or
// partitioned one) is torn down by the cluster anyway.
func (n *Node) abortCluster(err error) {
	msg := &wire.Msg{Kind: wire.KAbort, Err: err.Error()}
	// Stamp the quorum term so receivers can fence an abort from a
	// deposed leader whose cluster view is stale.
	if g := n.mgr; g != nil && g.rep != nil {
		msg.Term = g.rep.Leader().Term
	}
	for p := 0; p < n.nn; p++ {
		if p != n.id {
			n.send(p, msg)
		}
	}
	n.fail(err)
}
