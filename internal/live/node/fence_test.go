package node_test

import (
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live/node"
	ckpt "lrcdsm/internal/live/recover"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/live/wire"
)

// TestIncarnationFencing models the delayed-frame hazard after a rejoin:
// the cluster has rolled forward to recovery epoch 1, and frames from a
// node's previous incarnation (stamped epoch 0) surface late. Every such
// frame — whatever its kind — must be fenced at the dispatcher without
// touching protocol state, while current-epoch traffic flows normally.
func TestIncarnationFencing(t *testing.T) {
	trs := transport.NewInprocNetwork(2)
	mgr := node.New(trs[0], node.Config{
		PageSize: 256, NPages: 2, Homes: []int32{0, 0},
		NLocks: 2, NBars: 1, Protocol: core.LI,
		HeartbeatTimeout: -1,
		Recover:          &node.RecoverConfig{Store: ckpt.NewMemStore(), Every: 1, Epoch: 1},
	})
	mgr.Start()
	defer func() {
		mgr.Close()
		for _, tr := range trs {
			tr.Close()
		}
		mgr.Wait()
	}()
	raw := trs[1] // node 1 is driven by hand, frame by frame

	// Frames a previous incarnation could plausibly have left in flight:
	// synchronization requests, data requests, flushes, liveness beacons
	// and recovery handshake traffic.
	stale := []struct {
		name string
		msg  *wire.Msg
	}{
		{"lock-req", &wire.Msg{Kind: wire.KLockReq, Token: 1, Lock: 0}},
		{"lock-release", &wire.Msg{Kind: wire.KLockRelease, Token: 2, Lock: 0, Interval: &wire.Interval{}}},
		{"bar-arrive", &wire.Msg{Kind: wire.KBarArrive, Token: 3, Barrier: 0, Interval: &wire.Interval{}}},
		{"page-req", &wire.Msg{Kind: wire.KPageReq, Token: 4, Page: 0}},
		{"write-notices", &wire.Msg{Kind: wire.KWriteNotices, Token: 5}},
		{"heartbeat", &wire.Msg{Kind: wire.KHeartbeat, Token: 6}},
		{"join-req", &wire.Msg{Kind: wire.KJoinReq, Token: 7, Incarnation: 1}},
		{"ckpt-done", &wire.Msg{Kind: wire.KCkptDone, Token: 8, Episode: 1}},
	}
	for i, tc := range stale {
		tc.msg.From = 1
		tc.msg.Epoch = 0 // the previous incarnation's epoch
		if err := raw.Send(0, wire.Encode(tc.msg)); err != nil {
			t.Fatalf("%s: send: %v", tc.name, err)
		}
		want := int64(i + 1)
		deadline := time.Now().Add(2 * time.Second)
		for mgr.Stats().StaleFrames < want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: stale frame not fenced (StaleFrames = %d, want %d)",
					tc.name, mgr.Stats().StaleFrames, want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// A current-epoch lock request must now be granted immediately: had
	// any stale frame been processed, the stale lock-req would hold lock
	// 0 and this request would queue behind it forever.
	grantReq := &wire.Msg{Kind: wire.KLockReq, From: 1, Token: 1, Lock: 0, Epoch: 1}
	if err := raw.Send(0, wire.Encode(grantReq)); err != nil {
		t.Fatal(err)
	}
	recvCh := make(chan *wire.Msg, 1)
	go func() {
		f, err := raw.Recv()
		if err != nil {
			return
		}
		m, err := wire.Decode(f.Payload)
		if err != nil {
			return
		}
		recvCh <- m
	}()
	select {
	case m := <-recvCh:
		if m.Kind != wire.KLockGrant || m.Token != 1 {
			t.Fatalf("reply = %v token %d, want lock-grant token 1", m.Kind, m.Token)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("current-epoch lock request got no grant — a stale frame mutated manager state")
	}

	// Fencing must leave the request-dedup path untouched: none of the
	// stale tokens may have advanced the client's window.
	if dup := mgr.Stats().DupRequests; dup != 0 {
		t.Errorf("stale frames were routed into dedup (DupRequests = %d, want 0)", dup)
	}
	if sf := mgr.Stats().StaleFrames; sf != int64(len(stale)) {
		t.Errorf("StaleFrames = %d, want exactly %d", sf, len(stale))
	}
}
