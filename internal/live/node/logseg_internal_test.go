package node

import (
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live/transport"
)

// TestLogSegmentFetchOnPrunedGrant forces the on-demand interval-log
// replication path that ordinary runs rarely touch: a lock grant whose
// piggybacked notices cannot cover the requester's knowledge gap
// because the granter's *learned* log of a third writer has been pruned
// past learnedKnowCap. The requester must detect the gap and fetch the
// missing segment from the writer itself, whose own log is
// authoritative and never pruned within an epoch.
func TestLogSegmentFetchOnPrunedGrant(t *testing.T) {
	// Enough rounds that node 1's learned log of node 0's intervals is
	// pruned well past the cap by the time node 2 first acquires.
	const rounds = learnedKnowCap + 300
	cfg := Config{
		PageSize: 256, NPages: 1, Homes: []int32{0},
		NLocks: 3, NBars: 1, Protocol: core.LI,
		HeartbeatTimeout: -1,
	}
	trs := transport.NewInprocNetwork(3)
	nodes := []*Node{New(trs[0], cfg), New(trs[1], cfg), New(trs[2], cfg)}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
		for _, tr := range trs {
			tr.Close()
		}
		for _, nd := range nodes {
			nd.Wait()
		}
	}()

	// Nodes 0 and 1 ping-pong the lock; every node-0 critical section
	// writes, so each closes an interval node 1 learns from the grant.
	// Node 2 stays out entirely, falling rounds/2 intervals behind.
	a := core.Addr(0)
	var writes uint64
	for i := 0; i < 2*rounds; i++ {
		nd := nodes[i%2]
		nd.Lock(0)
		if i%2 == 0 {
			nd.WriteU64(a, nd.ReadU64(a)+1)
			writes++
		}
		nd.Unlock(0)
	}
	// The loop ends with node 1 as last holder, so node 2's acquire is
	// forwarded by the home (node 0) to node 1, and node 1 builds the
	// grant from its pruned learned log.
	nodes[2].Lock(0)
	got := nodes[2].ReadU64(a)
	nodes[2].Unlock(0)

	if got != writes {
		t.Errorf("node 2 read %d after acquiring, want %d — grant gap not healed", got, writes)
	}
	if f := nodes[2].Stats().LogSegFetches; f == 0 {
		t.Error("pruned grant forced no log-segment fetch — the gap path never ran")
	}
	// The writer served the segment from its own authoritative log;
	// nothing on node 0's side should have counted a fetch.
	if f := nodes[0].Stats().LogSegFetches; f != 0 {
		t.Errorf("writer recorded %d fetches; only requesters fetch", f)
	}
}
