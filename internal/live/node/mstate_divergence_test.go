package node

import (
	"bytes"
	"testing"
)

// mstateLog is a command history exercising every opcode, including the
// duplications and re-applies a leader change produces: confirmations
// arriving twice, a snapshot re-committed after a retry, a rollback
// clamping confirmations, and enough snapshots to trigger pruning.
func mstateLog(nn int) [][]byte {
	vt := func(base int32) []int32 {
		v := make([]int32, nn)
		for i := range v {
			v[i] = base + int32(i)
		}
		return v
	}
	var log [][]byte
	log = append(log, nil) // leader-change noop
	for e := int64(1); e <= int64(keepCheckpoints)+2; e++ {
		log = append(log, encodeMgrSnap(e, vt(int32(10*e))))
		for w := 0; w < nn; w++ {
			log = append(log, encodeCkptDone(int32(w), e))
		}
		// A retried proposal commits the same facts twice.
		log = append(log, encodeMgrSnap(e, vt(int32(10*e))))
		log = append(log, encodeCkptDone(0, e))
	}
	log = append(log, encodeJoin(2, 7))
	log = append(log, encodeReset(2, int64(keepCheckpoints)))
	log = append(log, encodeJoin(2, 8))
	log = append(log, encodeResume(2))
	log = append(log, []byte{}) // empty = noop too
	return log
}

// TestMstateReplicaDivergence drives several fresh replicas through the
// same command log and demands byte-identical encoded state — the
// property the whole replicated-manager design leans on: agreement on
// the log is agreement on the state.
func TestMstateReplicaDivergence(t *testing.T) {
	const nn, replicas = 4, 5
	log := mstateLog(nn)
	var ref []byte
	for r := 0; r < replicas; r++ {
		s := newMstate(nn)
		for i, raw := range log {
			c, err := decodeCmd(raw)
			if err != nil {
				t.Fatalf("replica %d: decode cmd %d: %v", r, i, err)
			}
			if err := s.apply(c); err != nil {
				t.Fatalf("replica %d: apply cmd %d: %v", r, i, err)
			}
		}
		enc := s.encodeState()
		if r == 0 {
			ref = enc
			continue
		}
		if !bytes.Equal(enc, ref) {
			t.Fatalf("replica %d diverged: %d bytes vs %d reference\n got %x\nwant %x",
				r, len(enc), len(ref), enc, ref)
		}
	}
	if len(ref) == 0 {
		t.Fatal("encoded state is empty — nothing was compared")
	}
}

// TestMstateEncodeRoundsStable re-encodes the same replica twice; map
// iteration order must not leak into the bytes.
func TestMstateEncodeRoundsStable(t *testing.T) {
	s := newMstate(4)
	for _, raw := range mstateLog(4) {
		c, err := decodeCmd(raw)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.apply(c); err != nil {
			t.Fatal(err)
		}
	}
	a, b := s.encodeState(), s.encodeState()
	if !bytes.Equal(a, b) {
		t.Fatalf("same state encoded differently across calls:\n %x\n %x", a, b)
	}
}

// TestMstateApplyIdempotent re-applies the full log to a replica that
// already holds its outcome; the state must not move.
func TestMstateApplyIdempotent(t *testing.T) {
	s := newMstate(4)
	log := mstateLog(4)
	run := func() {
		for _, raw := range log {
			c, err := decodeCmd(raw)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.apply(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	run()
	first := s.encodeState()
	run()
	if second := s.encodeState(); !bytes.Equal(first, second) {
		t.Fatalf("re-applying the log moved the state:\n %x\n %x", first, second)
	}
}
