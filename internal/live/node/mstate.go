package node

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"lrcdsm/internal/vc"
)

// mstate is the manager's replicated state machine: every
// membership-flavored fact the recovery protocol depends on — which
// checkpoint episodes each node confirmed, the incarnation each node
// announced, who is mid-recovery, the resume point the cluster last
// rolled back to, and the merged vector time of every recent flagged
// barrier episode. Mutations happen only through apply, driven by
// commands committed on the consensus log (or applied directly when the
// quorum is inactive), so every replica that applies the same command
// sequence holds byte-identical state (see encodeState). Leader-local
// serving state — request dedup, snapshot chunk assembly, join blobs —
// deliberately lives outside, in the manager: it never needs to agree
// across replicas because every command is idempotent and clients retry
// with fresh tokens.
type mstate struct {
	mu sync.Mutex
	nn int

	// ckptConfirmed[w] is the newest checkpoint episode w confirmed
	// durably stored; the stable checkpoint is their minimum.
	ckptConfirmed []int64
	// incarnations[w] is the newest incarnation w announced in a join.
	incarnations []uint32
	// recovering[w] marks a peer mid-recovery: liveness skips it and a
	// KJoinReq from it is expected.
	recovering []bool
	// resumeEpisode/resumeVT describe the checkpoint the cluster last
	// rolled back to, handed to joiners in KJoinGrant.
	resumeEpisode int64
	resumeVT      vc.VC
	// mgrVTs[e] is the merged vector time of flagged barrier episode e —
	// the manager's half of checkpoint e, committed before any release
	// of that episode escapes the root. Pruned to the newest
	// keepCheckpoints episodes, mirroring the per-node stores.
	mgrVTs map[int64][]int32
}

func newMstate(nn int) *mstate {
	return &mstate{
		nn:            nn,
		ckptConfirmed: make([]int64, nn),
		incarnations:  make([]uint32, nn),
		recovering:    make([]bool, nn),
		mgrVTs:        map[int64][]int32{},
	}
}

// Command opcodes. A nil/empty command is a noop (the consensus layer's
// leader-change entries and read barriers).
const (
	opCkptDone byte = 1 + iota // node confirmed checkpoint episode
	opMgrSnap                  // merged VT of a flagged episode
	opJoin                     // node announced an incarnation
	opResume                   // node finished its rejoin
	opReset                    // cluster rolled back to an episode
)

// mcmd is one decoded manager command.
type mcmd struct {
	op      byte
	node    int32
	episode int64
	inc     uint32
	vt      []int32
}

func encodeCkptDone(node int32, episode int64) []byte {
	b := make([]byte, 13)
	b[0] = opCkptDone
	binary.LittleEndian.PutUint32(b[1:], uint32(node))
	binary.LittleEndian.PutUint64(b[5:], uint64(episode))
	return b
}

func encodeMgrSnap(episode int64, vt []int32) []byte {
	b := make([]byte, 13+4*len(vt))
	b[0] = opMgrSnap
	binary.LittleEndian.PutUint64(b[1:], uint64(episode))
	binary.LittleEndian.PutUint32(b[9:], uint32(len(vt)))
	for i, v := range vt {
		binary.LittleEndian.PutUint32(b[13+4*i:], uint32(v))
	}
	return b
}

func encodeJoin(node int32, inc uint32) []byte {
	b := make([]byte, 9)
	b[0] = opJoin
	binary.LittleEndian.PutUint32(b[1:], uint32(node))
	binary.LittleEndian.PutUint32(b[5:], inc)
	return b
}

func encodeResume(node int32) []byte {
	b := make([]byte, 5)
	b[0] = opResume
	binary.LittleEndian.PutUint32(b[1:], uint32(node))
	return b
}

func encodeReset(victim int32, episode int64) []byte {
	b := make([]byte, 13)
	b[0] = opReset
	binary.LittleEndian.PutUint32(b[1:], uint32(victim))
	binary.LittleEndian.PutUint64(b[5:], uint64(episode))
	return b
}

func decodeCmd(b []byte) (mcmd, error) {
	var c mcmd
	if len(b) == 0 {
		return c, nil // noop
	}
	c.op = b[0]
	short := func() (mcmd, error) {
		return c, fmt.Errorf("manager: command op %d truncated (%d bytes)", c.op, len(b))
	}
	switch c.op {
	case opCkptDone, opReset:
		if len(b) < 13 {
			return short()
		}
		c.node = int32(binary.LittleEndian.Uint32(b[1:]))
		c.episode = int64(binary.LittleEndian.Uint64(b[5:]))
	case opMgrSnap:
		if len(b) < 13 {
			return short()
		}
		c.episode = int64(binary.LittleEndian.Uint64(b[1:]))
		k := int(binary.LittleEndian.Uint32(b[9:]))
		if len(b) < 13+4*k {
			return short()
		}
		c.vt = make([]int32, k)
		for i := range c.vt {
			c.vt[i] = int32(binary.LittleEndian.Uint32(b[13+4*i:]))
		}
	case opJoin:
		if len(b) < 9 {
			return short()
		}
		c.node = int32(binary.LittleEndian.Uint32(b[1:]))
		c.inc = binary.LittleEndian.Uint32(b[5:])
	case opResume:
		if len(b) < 5 {
			return short()
		}
		c.node = int32(binary.LittleEndian.Uint32(b[1:]))
	default:
		return c, fmt.Errorf("manager: unknown command op %d", c.op)
	}
	return c, nil
}

// apply mutates the state with one decoded command. Every command is
// idempotent — re-applying after a leader change or a duplicated
// proposal converges on the same state — and deterministic, so replicas
// applying the same log agree byte-for-byte.
func (s *mstate) apply(c mcmd) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch c.op {
	case 0: // noop
	case opCkptDone:
		if w := int(c.node); w >= 0 && w < s.nn && c.episode > s.ckptConfirmed[w] {
			s.ckptConfirmed[w] = c.episode
		}
	case opMgrSnap:
		s.mgrVTs[c.episode] = append([]int32(nil), c.vt...)
		if len(s.mgrVTs) > keepCheckpoints {
			eps := make([]int64, 0, len(s.mgrVTs))
			for e := range s.mgrVTs {
				eps = append(eps, e)
			}
			sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
			for _, e := range eps[:len(eps)-keepCheckpoints] {
				delete(s.mgrVTs, e)
			}
		}
	case opJoin:
		if w := int(c.node); w >= 0 && w < s.nn {
			s.incarnations[w] = c.inc
		}
	case opResume:
		if w := int(c.node); w >= 0 && w < s.nn {
			s.recovering[w] = false
		}
	case opReset:
		k := c.episode
		s.resumeEpisode = k
		s.resumeVT = nil
		if k > 0 {
			vt, ok := s.mgrVTs[k]
			if !ok {
				return fmt.Errorf("manager: reset to episode %d without its committed snapshot", k)
			}
			s.resumeVT = vc.VC(vt).Clone()
		}
		for w := range s.recovering {
			s.recovering[w] = false
		}
		if v := int(c.node); v >= 0 && v < s.nn {
			s.recovering[v] = true
		}
		// Confirmations past the rollback point refer to episodes the
		// re-execution will reach (and re-store) again; clamping keeps
		// the stable computation conservative.
		for w := range s.ckptConfirmed {
			if s.ckptConfirmed[w] > k {
				s.ckptConfirmed[w] = k
			}
		}
	default:
		return fmt.Errorf("manager: unknown command op %d", c.op)
	}
	return nil
}

// stable is the newest episode every node has confirmed; the rollback
// target a recovery restores (0 = the initial image).
func (s *mstate) stable() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	stable := s.ckptConfirmed[0]
	for _, e := range s.ckptConfirmed[1:] {
		if e < stable {
			stable = e
		}
	}
	return stable
}

// resumePoint returns the checkpoint the cluster last rolled back to
// and a copy of its merged vector time (nil at episode 0).
func (s *mstate) resumePoint() (int64, []int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.resumeVT == nil {
		return s.resumeEpisode, nil
	}
	return s.resumeEpisode, s.resumeVT.Clone()
}

func (s *mstate) isRecovering(w int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovering[w]
}

// mgrVT returns the committed merged vector time of flagged episode e.
func (s *mstate) mgrVT(e int64) ([]int32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vt, ok := s.mgrVTs[e]
	if !ok {
		return nil, false
	}
	return append([]int32(nil), vt...), true
}

// encodeState serializes the full state deterministically (map keys
// sorted), so replicas can be compared byte-for-byte after applying the
// same command log.
func (s *mstate) encodeState() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b []byte
	u32 := func(v uint32) {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	u64 := func(v uint64) {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	u32(uint32(s.nn))
	for _, e := range s.ckptConfirmed {
		u64(uint64(e))
	}
	for _, i := range s.incarnations {
		u32(i)
	}
	for _, r := range s.recovering {
		if r {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	u64(uint64(s.resumeEpisode))
	u32(uint32(len(s.resumeVT)))
	for _, v := range s.resumeVT {
		u32(uint32(v))
	}
	eps := make([]int64, 0, len(s.mgrVTs))
	for e := range s.mgrVTs {
		eps = append(eps, e)
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
	u32(uint32(len(eps)))
	for _, e := range eps {
		u64(uint64(e))
		vt := s.mgrVTs[e]
		u32(uint32(len(vt)))
		for _, v := range vt {
			u32(uint32(v))
		}
	}
	return b
}

// restoreState replaces the state with a decoded encodeState image — a
// consensus snapshot install bringing a far-behind or re-seeded replica
// up without replaying the compacted log. The image's cluster size must
// match; any truncation or trailing bytes is an error and leaves the
// state untouched.
func (s *mstate) restoreState(b []byte) error {
	off := 0
	short := fmt.Errorf("manager: state image truncated (%d bytes)", len(b))
	u32 := func() (uint32, bool) {
		if len(b)-off < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(b)-off < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v, true
	}
	nn, ok := u32()
	if !ok {
		return short
	}
	if int(nn) != s.nn {
		return fmt.Errorf("manager: state image is for %d nodes, cluster has %d", nn, s.nn)
	}
	confirmed := make([]int64, s.nn)
	for w := range confirmed {
		e, ok := u64()
		if !ok {
			return short
		}
		confirmed[w] = int64(e)
	}
	incs := make([]uint32, s.nn)
	for w := range incs {
		i, ok := u32()
		if !ok {
			return short
		}
		incs[w] = i
	}
	if len(b)-off < s.nn {
		return short
	}
	rec := make([]bool, s.nn)
	for w := range rec {
		rec[w] = b[off+w] != 0
	}
	off += s.nn
	re, ok := u64()
	if !ok {
		return short
	}
	nvt, ok := u32()
	if !ok || int64(nvt)*4 > int64(len(b)-off) {
		return short
	}
	var rvt vc.VC
	for i := 0; i < int(nvt); i++ {
		v, _ := u32()
		rvt = append(rvt, int32(v))
	}
	neps, ok := u32()
	if !ok {
		return short
	}
	vts := map[int64][]int32{}
	for i := 0; i < int(neps); i++ {
		e, ok := u64()
		if !ok {
			return short
		}
		k, ok := u32()
		if !ok || int64(k)*4 > int64(len(b)-off) {
			return short
		}
		vt := make([]int32, k)
		for j := range vt {
			v, _ := u32()
			vt[j] = int32(v)
		}
		vts[int64(e)] = vt
	}
	if off != len(b) {
		return fmt.Errorf("manager: %d trailing state image bytes", len(b)-off)
	}
	s.mu.Lock()
	s.ckptConfirmed = confirmed
	s.incarnations = incs
	s.recovering = rec
	s.resumeEpisode = int64(re)
	s.resumeVT = rvt
	s.mgrVTs = vts
	s.mu.Unlock()
	return nil
}
