package node

import (
	"sync/atomic"

	"lrcdsm/internal/live/wire"
	"lrcdsm/internal/page"
)

// Stats counts one live node's protocol activity. The counters mirror the
// simulator's core.RunStats where a live equivalent exists (see the
// mapping table in DESIGN.md §9), so live runs and simulated runs report
// comparable numbers; wait times are real wall-clock nanoseconds instead
// of simulated cycles. All fields are updated with atomics — a node's
// worker, dispatcher and pump touch them concurrently.
type Stats struct {
	Node int `json:"node"`

	// Message counters (frames moved through the transport).
	MsgsSent  int64 `json:"msgs_sent"`
	MsgsRecv  int64 `json:"msgs_recv"`
	BytesSent int64 `json:"bytes_sent"`
	BytesRecv int64 `json:"bytes_recv"`

	// Shared-data movement: page images and diff payloads (the live
	// analogue of core.RunStats.DataBytes).
	DataBytes int64 `json:"data_bytes"`

	SharedReads  int64 `json:"shared_reads"`
	SharedWrites int64 `json:"shared_writes"`

	// Access faults and their resolution.
	PageFaults  int64 `json:"page_faults"`  // core: AccessMisses
	PageFetches int64 `json:"page_fetches"` // full-page copies installed
	DiffPulls   int64 `json:"diff_pulls"`   // LH update pulls issued

	TwinsCreated int64 `json:"twins_created"`
	DiffsCreated int64 `json:"diffs_created"`
	DiffsApplied int64 `json:"diffs_applied"`
	DiffBytes    int64 `json:"diff_bytes"` // payload bytes of created diffs

	Intervals     int64 `json:"intervals"` // closed write intervals
	Invalidations int64 `json:"invalidations"`

	LockAcquires    int64 `json:"lock_acquires"`
	BarrierEpisodes int64 `json:"barrier_episodes"`

	// Distributed-lock plane counters: acquires served entirely locally
	// (this node still owned the lock), requests a home forwarded to the
	// probable owner, grants handed out (first grants and owner-to-owner
	// handoffs), and interval-log segments fetched from a writer because
	// a grant's notices had a pruned gap.
	LockLocalAcquires int64 `json:"lock_local_acquires"`
	LockForwards      int64 `json:"lock_forwards"`
	LockHandoffs      int64 `json:"lock_handoffs"`
	LogSegFetches     int64 `json:"log_seg_fetches"`

	// Robustness counters: the retransmission and failure-detection
	// machinery's activity. All zero on a healthy network.
	RPCRetries     int64 `json:"rpc_retries"`     // requests retransmitted after a silent backoff window
	DupRequests    int64 `json:"dup_requests"`    // retransmitted requests de-duplicated at this node
	DupReplies     int64 `json:"dup_replies"`     // late/duplicate replies dropped (token already resolved)
	HeartbeatsSent int64 `json:"heartbeats_sent"` // liveness beacons sent to the manager
	HeartbeatsRecv int64 `json:"heartbeats_recv"` // beacons received (manager only)

	// Recovery counters: the checkpoint/rejoin machinery's activity. All
	// zero unless recovery is configured.
	CheckpointsTaken int64 `json:"checkpoints_taken"` // barrier-aligned snapshots captured
	CheckpointBytes  int64 `json:"checkpoint_bytes"`  // serialized snapshot bytes stored
	StaleFrames      int64 `json:"stale_frames"`      // frames fenced for carrying an old recovery epoch

	// Wall-clock waits, in nanoseconds (the live analogue of the
	// simulator's *WaitCycles).
	LockWaitNs    int64 `json:"lock_wait_ns"`
	BarrierWaitNs int64 `json:"barrier_wait_ns"`
	FaultWaitNs   int64 `json:"fault_wait_ns"`
	FlushWaitNs   int64 `json:"flush_wait_ns"`

	// Serving-path counters (internal/serve): get/put operations executed
	// on this node and the wall-clock time its executors spent waiting on
	// shard locks. All zero outside dsmserve runs.
	ServeGets       int64 `json:"serve_gets"`
	ServePuts       int64 `json:"serve_puts"`
	ServeLockWaitNs int64 `json:"serve_lock_waits_ns"`

	// Consensus-health counters: the replicated control plane's activity
	// on this node. Terms counts term advances this replica observed,
	// Elections the elections it stood for, Commits the log entries it
	// applied, and LeaderRedirects the not-leader redirects its manager
	// RPCs followed. All zero unless the manager quorum is active.
	ConsensusTerms     int64 `json:"consensus_terms"`
	ConsensusElections int64 `json:"consensus_elections"`
	ConsensusCommits   int64 `json:"consensus_commits"`
	LeaderRedirects    int64 `json:"leader_redirects"`

	// Long-haul control-plane counters. Compactions counts log prefixes
	// this replica folded into snapshots; SnapInstalls snapshots it
	// installed from a leader (catching up past compacted entries);
	// ConfChanges committed voting-membership changes it applied;
	// SlotQuarantines corrupt durable slots quarantined at load;
	// LaneDrops outbound consensus frames discarded on a full peer lane;
	// MgrCacheEvictions snapshot-chunk cache entries the manager evicted
	// under its LRU bound.
	ConsensusCompactions     int64 `json:"consensus_compactions"`
	ConsensusSnapInstalls    int64 `json:"consensus_snap_installs"`
	ConsensusConfChanges     int64 `json:"consensus_conf_changes"`
	ConsensusSlotQuarantines int64 `json:"consensus_slot_quarantines"`
	ConsensusLaneDrops       int64 `json:"consensus_lane_drops"`
	MgrCacheEvictions        int64 `json:"mgr_cache_evictions"`
}

func (s *Stats) add(f *int64, d int64) { atomic.AddInt64(f, d) }

// Snapshot returns a plain copy of the (atomically updated) counters.
func (s *Stats) Snapshot() Stats {
	var out Stats
	out.Node = s.Node
	for _, c := range []struct{ dst, src *int64 }{
		{&out.MsgsSent, &s.MsgsSent}, {&out.MsgsRecv, &s.MsgsRecv},
		{&out.BytesSent, &s.BytesSent}, {&out.BytesRecv, &s.BytesRecv},
		{&out.DataBytes, &s.DataBytes},
		{&out.SharedReads, &s.SharedReads}, {&out.SharedWrites, &s.SharedWrites},
		{&out.PageFaults, &s.PageFaults}, {&out.PageFetches, &s.PageFetches},
		{&out.DiffPulls, &s.DiffPulls},
		{&out.TwinsCreated, &s.TwinsCreated}, {&out.DiffsCreated, &s.DiffsCreated},
		{&out.DiffsApplied, &s.DiffsApplied}, {&out.DiffBytes, &s.DiffBytes},
		{&out.Intervals, &s.Intervals}, {&out.Invalidations, &s.Invalidations},
		{&out.LockAcquires, &s.LockAcquires}, {&out.BarrierEpisodes, &s.BarrierEpisodes},
		{&out.LockLocalAcquires, &s.LockLocalAcquires}, {&out.LockForwards, &s.LockForwards},
		{&out.LockHandoffs, &s.LockHandoffs}, {&out.LogSegFetches, &s.LogSegFetches},
		{&out.RPCRetries, &s.RPCRetries}, {&out.DupRequests, &s.DupRequests},
		{&out.DupReplies, &s.DupReplies},
		{&out.HeartbeatsSent, &s.HeartbeatsSent}, {&out.HeartbeatsRecv, &s.HeartbeatsRecv},
		{&out.CheckpointsTaken, &s.CheckpointsTaken}, {&out.CheckpointBytes, &s.CheckpointBytes},
		{&out.StaleFrames, &s.StaleFrames},
		{&out.LockWaitNs, &s.LockWaitNs}, {&out.BarrierWaitNs, &s.BarrierWaitNs},
		{&out.FaultWaitNs, &s.FaultWaitNs}, {&out.FlushWaitNs, &s.FlushWaitNs},
		{&out.ServeGets, &s.ServeGets}, {&out.ServePuts, &s.ServePuts},
		{&out.ServeLockWaitNs, &s.ServeLockWaitNs},
		{&out.ConsensusTerms, &s.ConsensusTerms}, {&out.ConsensusElections, &s.ConsensusElections},
		{&out.ConsensusCommits, &s.ConsensusCommits}, {&out.LeaderRedirects, &s.LeaderRedirects},
		{&out.ConsensusCompactions, &s.ConsensusCompactions}, {&out.ConsensusSnapInstalls, &s.ConsensusSnapInstalls},
		{&out.ConsensusConfChanges, &s.ConsensusConfChanges}, {&out.ConsensusSlotQuarantines, &s.ConsensusSlotQuarantines},
		{&out.ConsensusLaneDrops, &s.ConsensusLaneDrops}, {&out.MgrCacheEvictions, &s.MgrCacheEvictions},
	} {
		*c.dst = atomic.LoadInt64(c.src)
	}
	return out
}

// Observer receives protocol-level events from a live run, mirroring the
// simulator's core.Observer where the concepts coincide. Callbacks fire
// concurrently from node goroutines; implementations must be
// thread-safe and must not call back into the node.
type Observer interface {
	// MsgSent fires for every frame handed to the transport.
	MsgSent(from, to int, kind wire.Kind, bytes int)
	// PageFault fires when an access faults on an invalid page.
	PageFault(node int, pg page.ID)
	// IntervalClosed fires when a node closes a write interval.
	IntervalClosed(node int, idx int32, pages []page.ID)
	// DiffApplied fires when a node incorporates writer's interval idx
	// into its copy of pg (home application or hybrid pull).
	DiffApplied(node int, pg page.ID, writer int, idx int32)
	// Invalidated fires when a write notice invalidates a local copy.
	Invalidated(node int, pg page.ID)
	// BarrierDeparted fires when a node leaves a barrier episode.
	BarrierDeparted(node int, episode int64)
}
