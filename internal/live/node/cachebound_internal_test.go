package node

import (
	"sync/atomic"
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live/consensus"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/live/wire"
)

// TestConsensusLaneDropCounted pins the outbound-lane contract: a full
// per-peer consensus lane drops the frame — the protocol is
// self-retrying — but never silently. Every drop lands in the
// consensus_lane_drops counter so a soak can distinguish "healthy
// retransmission noise" from "a peer's lane is wedged". The node is
// built but never started, so no drain goroutine empties the lane and
// the 64-slot buffer fills deterministically.
func TestConsensusLaneDropCounted(t *testing.T) {
	cfg := Config{
		PageSize: 256, NPages: 1, Homes: []int32{0},
		NLocks: 1, NBars: 1, Protocol: core.LI,
		HeartbeatTimeout: -1,
		Recover:          &RecoverConfig{Consensus: consensus.NewStable()},
	}
	trs := transport.NewInprocNetwork(3)
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	nd := New(trs[0], cfg)

	m := &wire.Msg{Kind: wire.KAppend, Term: 1}
	for i := 0; i < 64; i++ {
		nd.consensusSend(1, m)
	}
	if got := atomic.LoadInt64(&nd.stats.ConsensusLaneDrops); got != 0 {
		t.Fatalf("lane drops after exactly filling the buffer = %d, want 0", got)
	}
	for i := 0; i < 3; i++ {
		nd.consensusSend(1, m)
	}
	if got := atomic.LoadInt64(&nd.stats.ConsensusLaneDrops); got != 3 {
		t.Fatalf("lane drops after overflowing = %d, want 3", got)
	}

	// Self sends and out-of-range peers are discarded without counting:
	// they are addressing errors, not congestion.
	nd.consensusSend(0, m)
	nd.consensusSend(-1, m)
	nd.consensusSend(99, m)
	if got := atomic.LoadInt64(&nd.stats.ConsensusLaneDrops); got != 3 {
		t.Fatalf("lane drops after non-lane sends = %d, want 3", got)
	}
}

// TestManagerBlobCachesBounded storms the manager's two snapshot-blob
// caches — inbound push assemblies and outbound join blobs — with far
// more concurrent streams than blobCacheCap and checks the LRU
// discipline: the maps never exceed the cap, the least-recently-touched
// entry is the one evicted, explicit clears drop entries without
// counting as evictions, and every forced eviction lands in
// mgr_cache_evictions.
func TestManagerBlobCachesBounded(t *testing.T) {
	nd := &Node{nn: 64}
	g := newManager(nd)

	// Push-assembly storm: 3x the cap, round-robin touches.
	for w := 0; w < 3*blobCacheCap; w++ {
		g.setPush(w, &pushAsm{})
		if len(g.push) > blobCacheCap {
			t.Fatalf("push cache grew to %d entries (cap %d)", len(g.push), blobCacheCap)
		}
	}
	if got := atomic.LoadInt64(&nd.stats.MgrCacheEvictions); got != 2*blobCacheCap {
		t.Fatalf("push evictions = %d, want %d", got, 2*blobCacheCap)
	}
	// The survivors are exactly the most recently touched cap-many.
	for w := 2 * blobCacheCap; w < 3*blobCacheCap; w++ {
		if g.push[w] == nil {
			t.Fatalf("recently touched push assembly %d was evicted", w)
		}
	}

	// Touching an old stream moves it off the eviction end.
	g.setPush(2*blobCacheCap, &pushAsm{}) // now most recent
	g.setPush(99, &pushAsm{})             // evicts 2*cap+1, not 2*cap
	if g.push[2*blobCacheCap] == nil {
		t.Fatal("touched push assembly was evicted ahead of older entries")
	}
	if g.push[2*blobCacheCap+1] != nil {
		t.Fatal("least-recently-touched push assembly survived past the cap")
	}

	// Completing a stream clears its slot without counting an eviction.
	before := atomic.LoadInt64(&nd.stats.MgrCacheEvictions)
	g.setPush(99, nil)
	if len(g.pushSeen) != blobCacheCap-1 {
		t.Fatalf("clear left %d tracked streams, want %d", len(g.pushSeen), blobCacheCap-1)
	}
	if got := atomic.LoadInt64(&nd.stats.MgrCacheEvictions); got != before {
		t.Fatalf("explicit clear bumped evictions: %d -> %d", before, got)
	}

	// Join-blob storm: same discipline on the outbound cache.
	for w := 0; w < 2*blobCacheCap; w++ {
		g.setJoinBlob(w, []byte{byte(w)})
		if len(g.joinBlob) > blobCacheCap {
			t.Fatalf("join cache grew to %d entries (cap %d)", len(g.joinBlob), blobCacheCap)
		}
	}
	if got := atomic.LoadInt64(&nd.stats.MgrCacheEvictions) - before; got != blobCacheCap {
		t.Fatalf("join evictions = %d, want %d", got, blobCacheCap)
	}
}
