package live

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live/consensus"
	"lrcdsm/internal/live/node"
	ckpt "lrcdsm/internal/live/recover"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/page"
)

// RecoverOptions parameterizes RunSupervised's crash-recovery policy.
type RecoverOptions struct {
	// MaxRestarts bounds how many node restarts the supervisor performs
	// before degrading to the structured abort a recovery-free cluster
	// produces. Zero or negative disables recovery entirely: the run
	// behaves like Run and a killed node aborts the cluster.
	MaxRestarts int
	// CheckpointEvery takes a barrier-aligned checkpoint at every episode
	// divisible by it (default 1: every barrier).
	CheckpointEvery int64
	// Replicate streams every non-manager checkpoint to the manager's
	// store, so a node whose own store dies with it can still rejoin.
	Replicate bool
	// Stores supplies one checkpoint store per node; nil selects fresh
	// in-memory stores.
	Stores []ckpt.Store
	// RestartDelay adds a seeded random delay in [0, RestartDelay) on top
	// of each crash event's own restart-after time.
	RestartDelay time.Duration
	// Seed drives the restart jitter (default 1).
	Seed int64
	// LoseStoreOnCrash replaces the victim's store with an empty one
	// before it rejoins, forcing the chunk-pull path from the manager's
	// replica (requires Replicate).
	LoseStoreOnCrash bool
	// Stables supplies one durable consensus slot per node; nil selects
	// fresh slots. Injecting them lets a harness inspect log growth or
	// corrupt a slot mid-run (integrity soaks).
	Stables []*consensus.Stable
	// CompactEvery is the consensus log-compaction threshold handed to
	// every replica (0: the node default of 512; negative: disabled).
	CompactEvery int64
	// Voters, when positive and below the cluster size, restricts the
	// initial voting membership to nodes [0, Voters); the rest run
	// non-voting replicas until promoted (AddReplicas, or
	// Node.ChangeMembership). Zero means every node votes.
	Voters int
	// AddReplicas schedules runtime membership growth: each entry
	// promotes Node to a voter once After has elapsed, retried through
	// whichever replica currently leads until the change commits.
	AddReplicas []ReplicaAdd
}

// ReplicaAdd schedules one runtime voter promotion.
type ReplicaAdd struct {
	Node  int
	After time.Duration
}

// Kill crashes node victim: its engine and transport are torn down
// mid-run, exactly as if the process died. Under RunSupervised the
// cluster rolls back to the last stable checkpoint and restarts the node
// after restartAfter; under Run the failure detector aborts the cluster.
// Safe to call from any goroutine (chaos schedules call it from Send).
func (c *Cluster) Kill(victim int, restartAfter time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if victim < 0 || victim >= len(c.nodes) || c.nodes[victim] == nil {
		return
	}
	c.crashPending.Store(true)
	// Queue the event before closing: by the time any worker can observe
	// the closure, the supervisor can already see the crash.
	select {
	case c.crashCh <- crashEvent{victim: victim, restartAfter: restartAfter}:
	default:
	}
	c.nodes[victim].Close()
	c.trs[victim].Close()
}

// runDegraded is RunSupervised with the restart budget exhausted from
// the start: no checkpointing, no rejoin. It differs from Run in one
// respect — a node killed through Kill dies like a separate process
// would, so its worker's own unwinding does not abort the cluster; the
// survivors keep running until the manager's failure detector converts
// the silence into the structured PeerDownError abort.
func (c *Cluster) runDegraded(worker func(core.Worker)) (*Stats, error) {
	if c.ran {
		return nil, fmt.Errorf("live: Cluster already ran")
	}
	c.ran = true
	if c.brk == 0 {
		return nil, fmt.Errorf("live: no shared memory allocated")
	}
	npages := int(c.pageOf(c.brk-1)) + 1
	homes := c.homeAssignment(npages)

	trs := c.cfg.Net.Transports()
	nodes := make([]*node.Node, c.cfg.Nodes)
	for i := range nodes {
		nodes[i] = node.New(trs[i], c.nodeConfig(npages, homes, nil))
	}
	c.mu.Lock()
	c.nodes = nodes
	c.trs = trs
	c.mu.Unlock()
	for _, nd := range nodes {
		nd.Start()
	}
	teardown := func() {
		for _, nd := range nodes {
			nd.Close()
		}
		for _, tr := range trs {
			tr.Close()
		}
	}

	t0 := time.Now()
	doneCh := make(chan []error, 1)
	errCh := make(chan int, c.cfg.Nodes)
	go func() {
		errs := make([]error, c.cfg.Nodes)
		var wg sync.WaitGroup
		for i, nd := range nodes {
			wg.Add(1)
			go func(i int, nd *node.Node) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						if re, ok := r.(interface{ Unwrap() error }); ok {
							errs[i] = re.Unwrap()
						} else {
							errs[i] = fmt.Errorf("live: node %d worker panic: %v\n%s", i, r, debug.Stack())
						}
						errCh <- i
					}
				}()
				worker(nd)
				nd.FinalFlush()
			}(i, nd)
		}
		wg.Wait()
		doneCh <- errs
	}()

	var roundErrs []error
wait:
	for {
		select {
		case <-errCh:
			select {
			case <-c.crashCh:
				// A killed node's worker unwound. Leave the survivors
				// running: the manager's heartbeat monitor will declare
				// the node down and abort the cluster with the verdict.
			default:
				// A genuine worker failure aborts the run, as Run would.
				teardown()
				roundErrs = <-doneCh
				break wait
			}
		case roundErrs = <-doneCh:
			break wait
		}
	}
	elapsed := time.Since(t0)
	for _, nd := range nodes {
		if err := nd.Err(); err != nil {
			roundErrs = append(roundErrs, err)
		}
	}
	firstErr := pickErr(roundErrs)
	if firstErr == nil {
		c.final = make([]byte, c.brk)
		for pg := 0; pg < npages; pg++ {
			img := nodes[homes[pg]].HomePage(page.ID(pg))
			off := pg << c.pageShift
			copy(c.final[off:], img)
		}
	}
	teardown()
	for _, nd := range nodes {
		nd.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	st := &Stats{
		Nodes:     c.cfg.Nodes,
		Protocol:  c.cfg.Protocol.String(),
		ElapsedNs: elapsed.Nanoseconds(),
	}
	for _, nd := range nodes {
		s := nd.Stats()
		st.PerNode = append(st.PerNode, s)
		addStats(&st.Total, &s)
	}
	st.Total.Node = -1
	st.computeBalance()
	return st, nil
}

// RunSupervised executes worker on every node like Run, but survives
// node crashes (Kill, or death detected by the manager's liveness
// machinery): the cluster rolls back to the last barrier-aligned
// checkpoint every node has confirmed, the victim rejoins with a fresh
// transport incarnation and restored state, and every worker re-executes
// — replaying its private state up to the checkpoint against a scratch
// image, then continuing live. Requires Config.Net.
func (c *Cluster) RunSupervised(worker func(core.Worker), opts RecoverOptions) (*Stats, error) {
	if c.cfg.Net == nil {
		return nil, fmt.Errorf("live: RunSupervised requires Config.Net (recovery rebuilds a crashed node's transport through Network.Rejoin)")
	}
	if opts.MaxRestarts <= 0 {
		// No restart budget: run without the recovery machinery so a
		// crash produces the structured PeerDownError abort.
		return c.runDegraded(worker)
	}
	if c.ran {
		return nil, fmt.Errorf("live: Cluster already ran")
	}
	c.ran = true
	if c.brk == 0 {
		return nil, fmt.Errorf("live: no shared memory allocated")
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	stores := opts.Stores
	if stores == nil {
		stores = make([]ckpt.Store, c.cfg.Nodes)
		for i := range stores {
			stores[i] = ckpt.NewMemStore()
		}
	}
	if len(stores) != c.cfg.Nodes {
		return nil, fmt.Errorf("live: %d checkpoint stores for %d nodes", len(stores), c.cfg.Nodes)
	}

	npages := int(c.pageOf(c.brk-1)) + 1
	homes := c.homeAssignment(npages)
	rng := rand.New(rand.NewSource(opts.Seed))

	var (
		epoch        uint32
		incarnations = make([]uint32, c.cfg.Nodes)
		restarts     atomic.Int64
	)
	// With three or more nodes the manager state machine is replicated
	// across every node through the consensus log, so a crashed
	// coordinator fails over instead of aborting the run. The durable
	// term/vote/log state outlives each node incarnation: a restarted
	// replica rejoins the quorum with its history intact.
	quorum := c.cfg.Nodes >= 3
	stables := opts.Stables
	if quorum && stables == nil {
		stables = make([]*consensus.Stable, c.cfg.Nodes)
		for i := range stables {
			stables[i] = consensus.NewStable()
		}
	}
	if quorum && len(stables) != c.cfg.Nodes {
		return nil, fmt.Errorf("live: %d consensus slots for %d nodes", len(stables), c.cfg.Nodes)
	}
	var voters []int
	if opts.Voters > 0 && opts.Voters < c.cfg.Nodes {
		if opts.Voters < 3 {
			return nil, fmt.Errorf("live: initial voting membership of %d is below a usable quorum", opts.Voters)
		}
		voters = make([]int, opts.Voters)
		for i := range voters {
			voters[i] = i
		}
	}
	leaderHint := 0
	rcFor := func(i int) *node.RecoverConfig {
		rc := &node.RecoverConfig{
			Store:        stores[i],
			Every:        opts.CheckpointEvery,
			Replicate:    opts.Replicate,
			Epoch:        epoch,
			Incarnation:  incarnations[i],
			Seed:         opts.Seed + int64(i+1)*104729,
			CompactEvery: opts.CompactEvery,
			Voters:       voters,
		}
		if quorum {
			rc.Consensus = stables[i]
			rc.LeaderHint = leaderHint
		}
		if i == 0 || quorum {
			rc.OnPeerDown = func(pe *node.PeerDownError) bool {
				// Dispatcher goroutine: hand the failure to the
				// supervisor while budget remains. A rollback already in
				// flight swallows the report — the victim is either the
				// same node or will be re-detected after recovery.
				if int(restarts.Load()) >= opts.MaxRestarts {
					return false
				}
				if c.crashPending.CompareAndSwap(false, true) {
					select {
					case c.crashCh <- crashEvent{victim: pe.Node}:
					default:
					}
				}
				return true
			}
		}
		return rc
	}

	trs := c.cfg.Net.Transports()
	nodes := make([]*node.Node, c.cfg.Nodes)
	for i := range nodes {
		nodes[i] = node.New(trs[i], c.nodeConfig(npages, homes, rcFor(i)))
	}
	c.mu.Lock()
	c.nodes = nodes
	c.trs = trs
	c.mu.Unlock()
	for _, nd := range nodes {
		nd.Start()
	}

	// Runtime membership growth: each scheduled promotion is retried
	// through the cluster's current engines until the change commits —
	// an unsettled election or a rollback in flight only delays it.
	confStop := make(chan struct{})
	defer close(confStop)
	if quorum {
		for _, ar := range opts.AddReplicas {
			go func(ar ReplicaAdd) {
				timer := time.NewTimer(ar.After)
				defer timer.Stop()
				select {
				case <-timer.C:
				case <-confStop:
					return
				}
				for {
					c.mu.Lock()
					nds := append([]*node.Node(nil), c.nodes...)
					c.mu.Unlock()
					for _, nd := range nds {
						if nd == nil {
							continue
						}
						if err := nd.ChangeMembership(true, ar.Node); err == nil {
							return
						}
					}
					select {
					case <-time.After(25 * time.Millisecond):
					case <-confStop:
						return
					}
				}
			}(ar)
		}
	}

	teardown := func() {
		c.mu.Lock()
		nds := append([]*node.Node(nil), c.nodes...)
		ts := append([]transport.Transport(nil), c.trs...)
		c.mu.Unlock()
		for _, nd := range nds {
			nd.Close()
		}
		for _, tr := range ts {
			tr.Close()
		}
	}

	// launch starts one worker per node; errCh fires once per worker
	// failure, doneCh once when the whole round has unwound.
	launch := func() (doneCh chan []error, errCh chan int) {
		doneCh = make(chan []error, 1)
		errCh = make(chan int, c.cfg.Nodes)
		go func() {
			errs := make([]error, c.cfg.Nodes)
			var wg sync.WaitGroup
			for i, nd := range nodes {
				wg.Add(1)
				go func(i int, nd *node.Node) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							if re, ok := r.(interface{ Unwrap() error }); ok {
								errs[i] = re.Unwrap()
							} else {
								errs[i] = fmt.Errorf("live: node %d worker panic: %v\n%s", i, r, debug.Stack())
							}
							errCh <- i
						}
					}()
					worker(nd)
					nd.FinalFlush()
				}(i, nd)
			}
			wg.Wait()
			doneCh <- errs
		}()
		return doneCh, errCh
	}

	fail := func(doneCh chan []error, roundErrs []error, err error) (*Stats, error) {
		teardown()
		if roundErrs == nil && doneCh != nil {
			roundErrs = <-doneCh
		}
		if err == nil {
			err = pickErr(roundErrs)
		}
		for _, nd := range nodes {
			nd.Wait()
		}
		return nil, err
	}

	// rollback reads the stable checkpoint and resets the replicated
	// manager state, addressing whichever replica currently leads. Under
	// a quorum the leader is re-resolved (and the calls retried) until a
	// surviving replica both claims leadership and commits the reset —
	// an election may still be in flight when the crash is handled, and
	// the first claimed leader can be deposed mid-proposal.
	rollback := func(victim int) (int64, error) {
		if !quorum {
			k, err := nodes[0].StableCheckpoint()
			if err != nil {
				return 0, fmt.Errorf("live: reading stable checkpoint: %w", err)
			}
			if err := nodes[0].ResetManager(k, victim); err != nil {
				return 0, fmt.Errorf("live: rolling manager back to episode %d: %w", k, err)
			}
			return k, nil
		}
		var lastErr error
		deadline := time.Now().Add(time.Minute)
		for time.Now().Before(deadline) {
			ldr := -1
			for i, nd := range nodes {
				if i == victim {
					continue
				}
				if _, isLeader, _ := nd.ConsensusLeader(); isLeader {
					ldr = i
					break
				}
			}
			if ldr < 0 {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			k, err := nodes[ldr].StableCheckpoint()
			if err == nil {
				err = nodes[ldr].ResetManager(k, victim)
			}
			if err == nil {
				leaderHint = ldr
				return k, nil
			}
			lastErr = err
			time.Sleep(50 * time.Millisecond)
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("no consensus leader elected among the survivors")
		}
		return 0, fmt.Errorf("live: rolling back after node %d crash: %w", victim, lastErr)
	}

	var (
		killedTotal node.Stats
		recoveryNs  int64
	)
	t0 := time.Now()
	for {
		doneCh, errCh := launch()
		var (
			ev        crashEvent
			crashed   bool
			roundErrs []error
		)
		select {
		case ev = <-c.crashCh:
			crashed = true
		case first := <-errCh:
			// A worker failed. If a crash event is already queued this
			// is (or races with) a rollback; otherwise it is a genuine
			// failure and the run aborts like Run would.
			select {
			case ev = <-c.crashCh:
				crashed = true
			default:
				teardown()
				roundErrs = <-doneCh
				for _, nd := range nodes {
					if err := nd.Err(); err != nil {
						roundErrs = append(roundErrs, err)
					}
				}
				err := pickErr(roundErrs)
				var pd *node.PeerDownError
				if !errors.As(err, &pd) && roundErrs[first] != nil {
					err = roundErrs[first]
				}
				for _, nd := range nodes {
					nd.Wait()
				}
				return nil, err
			}
		case roundErrs = <-doneCh:
			select {
			case ev = <-c.crashCh:
				// A crash landed as the round finished. If every worker
				// already completed cleanly the results are flushed and
				// final — the late crash changes nothing.
				crashed = pickErr(roundErrs) != nil
			default:
			}
			if !crashed {
				if err := pickErr(roundErrs); err != nil {
					return fail(nil, roundErrs, nil)
				}
				goto finished
			}
		}

		// ---- crash: roll back, rejoin, re-run ----
		if ev.victim == 0 && !quorum {
			return fail(doneCh, roundErrs, fmt.Errorf("live: manager (node 0) crashed and no quorum is configured (fewer than 3 nodes); manager recovery needs a replica to fail over to"))
		}
		if int(restarts.Load()) >= opts.MaxRestarts {
			return fail(doneCh, roundErrs, &node.PeerDownError{
				Node:    ev.victim,
				Pending: fmt.Sprintf("restart budget exhausted (%d restarts used)", restarts.Load()),
			})
		}
		restarts.Add(1)
		tRec := time.Now()

		// Unwind every worker; their rollback panics (and the victim's
		// death) are forgiven. Interrupting the victim's dead engine is
		// harmless and speeds up a compute-bound worker's exit.
		if roundErrs == nil {
			for _, nd := range nodes {
				nd.InterruptWorker(&node.RollbackError{Victim: ev.victim})
			}
			<-doneCh
		}

		// Fence the old epoch everywhere before touching any state, so
		// in-flight pre-rollback frames cannot land on rolled-back nodes.
		epoch++
		for i, nd := range nodes {
			if i != ev.victim {
				nd.SetEpoch(epoch)
			}
		}

		k, err := rollback(ev.victim)
		if err != nil {
			return fail(nil, nil, err)
		}
		for i, nd := range nodes {
			if i == ev.victim {
				continue
			}
			var snap *ckpt.NodeSnapshot
			if k > 0 {
				s, gerr := stores[i].GetNode(k, i)
				if gerr != nil {
					return fail(nil, nil, fmt.Errorf("live: node %d lost stable checkpoint %d: %w", i, k, gerr))
				}
				snap = s
			}
			nd.ResetToCheckpoint(snap)
			nd.ClearInterrupt()
			nd.BeginReplay(k)
		}

		// The killed incarnation's counters would vanish with the engine;
		// fold them into the run total.
		ks := nodes[ev.victim].Stats()
		addStats(&killedTotal, &ks)

		delay := ev.restartAfter
		if opts.RestartDelay > 0 {
			delay += time.Duration(rng.Int63n(int64(opts.RestartDelay)))
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if opts.LoseStoreOnCrash {
			stores[ev.victim] = ckpt.NewMemStore()
		}

		tr, err := c.cfg.Net.Rejoin(ev.victim)
		if err != nil {
			return fail(nil, nil, fmt.Errorf("live: rebuilding node %d transport: %w", ev.victim, err))
		}
		incarnations[ev.victim]++
		fresh := node.New(tr, c.nodeConfig(npages, homes, rcFor(ev.victim)))
		c.mu.Lock()
		c.nodes[ev.victim] = fresh
		c.trs[ev.victim] = tr
		nodes = c.nodes
		c.mu.Unlock()
		fresh.Start()
		if err := fresh.JoinCluster(); err != nil {
			if len(c.crashCh) > 0 {
				// Another crash landed during the handshake — possibly
				// killing the rejoining node itself. Let the next round's
				// crash handling roll back again from here.
				recoveryNs += time.Since(tRec).Nanoseconds()
				continue
			}
			return fail(nil, nil, fmt.Errorf("live: node %d rejoin: %w", ev.victim, err))
		}
		if len(c.crashCh) == 0 {
			c.crashPending.Store(false)
		}
		recoveryNs += time.Since(tRec).Nanoseconds()
	}

finished:
	elapsed := time.Since(t0)
	c.final = make([]byte, c.brk)
	for pg := 0; pg < npages; pg++ {
		img := nodes[homes[pg]].HomePage(page.ID(pg))
		off := pg << c.pageShift
		copy(c.final[off:], img)
	}
	teardown()
	for _, nd := range nodes {
		nd.Wait()
	}

	st := &Stats{
		Nodes:      c.cfg.Nodes,
		Protocol:   c.cfg.Protocol.String(),
		ElapsedNs:  elapsed.Nanoseconds(),
		Restarts:   restarts.Load(),
		RecoveryNs: recoveryNs,
	}
	for _, nd := range nodes {
		s := nd.Stats()
		st.PerNode = append(st.PerNode, s)
		addStats(&st.Total, &s)
	}
	addStats(&st.Total, &killedTotal)
	st.Total.Node = -1
	st.computeBalance()
	return st, nil
}
