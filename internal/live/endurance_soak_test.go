package live

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
	"lrcdsm/internal/live/chaos"
	"lrcdsm/internal/live/consensus"
	"lrcdsm/internal/live/transport"
)

// enduranceCompactEvery is the soak's compaction threshold, chosen low
// enough that every round compacts several times. The acceptance bound
// is 2x: the sampled consensus log must never hold more than twice this
// many entries.
const enduranceCompactEvery = 8

// enduranceEpisodes reads the cumulative barrier-episode target
// (cluster-wide, summed over nodes and rounds) from
// DSM_ENDURANCE_EPISODES, defaulting to 2000.
func enduranceEpisodes(t *testing.T) int64 {
	if s := os.Getenv("DSM_ENDURANCE_EPISODES"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("bad DSM_ENDURANCE_EPISODES %q: %v", s, err)
		}
		return n
	}
	return 2000
}

// logLenSampler polls every replica's durable slot and records the
// largest consensus log it ever observes, concurrently with the run.
type logLenSampler struct {
	stables []*consensus.Stable
	stop    chan struct{}
	done    chan int
}

func sampleLogLen(stables []*consensus.Stable) *logLenSampler {
	s := &logLenSampler{stables: stables, stop: make(chan struct{}), done: make(chan int, 1)}
	go func() {
		maxLen := 0
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				for _, st := range s.stables {
					if ll := st.LogLen(); ll > maxLen {
						maxLen = ll
					}
				}
			case <-s.stop:
				s.done <- maxLen
				return
			}
		}
	}()
	return s
}

func (s *logLenSampler) maxLen() int {
	close(s.stop)
	return <-s.done
}

// TestEndurance is the long-haul claim: the replicated control plane
// survives an unbounded sequence of runs — every round kills the
// coordinator at least once — without the consensus log, the durable
// slots, or the heap growing with time. Rounds rotate through all four
// paper workloads and both protocols; every fourth round grows the
// voting set from three to four mid-run, and every fourth round
// corrupts the coordinator's durable slot while it is down, so the
// restarted incarnation must quarantine the slot and be re-seeded by
// snapshot. Each round's results are checked byte-for-byte against a
// fault-free 1-node reference.
//
// The soak is opt-in (DSM_ENDURANCE=1): it runs until the cluster-wide
// barrier-episode count crosses DSM_ENDURANCE_EPISODES (default 2000),
// minutes of wall clock. `make endurance` wraps it with a race detector
// and a CI-sized episode budget.
func TestEndurance(t *testing.T) {
	if os.Getenv("DSM_ENDURANCE") == "" {
		t.Skip("set DSM_ENDURANCE=1 to run the long-haul soak")
	}
	target := enduranceEpisodes(t)
	atOp := map[string]int64{"jacobi": 30, "water": 100, "cholesky": 600, "tsp": 10}

	var (
		episodes     int64
		quarantines  int64
		confChanges  int64
		snapInstalls int64
		compactions  int64
	)
	// At least four rounds always run, so the membership and corruption
	// variants fire even under a tiny CI episode budget.
	for round := 0; episodes < target || round < 4; round++ {
		name := harness.AppNames[round%len(harness.AppNames)]
		prot := core.LI
		if round%2 == 1 {
			prot = core.LH
		}
		// Membership rounds ride cholesky (the longest run, latest kill):
		// the promotion must commit well before the coordinator dies.
		// Corruption rounds ride water and force an aggressive compaction
		// cadence, so the leader is guaranteed to hold a snapshot and the
		// quarantined replica is re-seeded by install, not plain replay.
		membership := round%4 == 3 // grow the voting set 3 -> 4 mid-run
		corrupt := round%4 == 2    // corrupt the coordinator's slot while it is down

		stables := make([]*consensus.Stable, 4)
		for i := range stables {
			stables[i] = consensus.NewStable()
		}
		ce := int64(enduranceCompactEvery)
		if corrupt {
			ce = 4
		}
		opts := RecoverOptions{
			MaxRestarts:     4,
			CheckpointEvery: 1,
			Replicate:       true,
			Seed:            int64(1000 + round),
			Stables:         stables,
			CompactEvery:    ce,
		}
		if membership {
			opts.Voters = 3
			opts.AddReplicas = []ReplicaAdd{{Node: 3, After: 5 * time.Millisecond}}
		}
		fcfg := chaos.Config{Seed: int64(round), Crashes: []chaos.Crash{
			{Node: 0, AtOp: atOp[name], Local: true, RestartAfter: 5 * time.Millisecond},
		}}

		app, err := harness.NewApp(name, harness.ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		var cl *Cluster
		fcfg.OnCrash = func(n int, d time.Duration) {
			cl.Kill(n, d)
			if corrupt && n == 0 {
				// The victim is down: tear its durable slot the way a
				// torn write would, before the supervisor revives it.
				stables[0].Corrupt()
			}
		}
		nw := chaos.WrapNet(transport.NewInprocNet(4), fcfg)
		cfg := failoverConfig(4, prot)
		cfg.Net = nw
		cl, err = New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		app.Configure(cl)

		sampler := sampleLogLen(stables)
		stats, runErr := cl.RunSupervised(func(w core.Worker) { app.Worker(w) }, opts)
		maxLog := sampler.maxLen()

		tag := fmt.Sprintf("round %d (%s/%v membership=%v corrupt=%v)", round, name, prot, membership, corrupt)
		if runErr != nil {
			t.Fatalf("%s: %v (faults %+v)", tag, runErr, nw.Counters())
		}
		if err := app.Verify(cl); err != nil {
			t.Fatalf("%s: verification: %v", tag, err)
		}
		if nw.Counters().Crashes == 0 {
			t.Fatalf("%s: coordinator kill never fired", tag)
		}
		if maxLog > 2*enduranceCompactEvery {
			t.Fatalf("%s: consensus log reached %d entries, bound is %d (2x compaction threshold)",
				tag, maxLog, 2*enduranceCompactEvery)
		}
		if membership && stats.Total.ConsensusConfChanges == 0 {
			t.Errorf("%s: membership round committed no config change", tag)
		}
		if corrupt {
			if stats.Total.ConsensusSlotQuarantines == 0 {
				t.Errorf("%s: corrupted slot was not quarantined", tag)
			}
			if stats.Total.ConsensusSnapInstalls == 0 {
				t.Errorf("%s: quarantined replica was not re-seeded by snapshot", tag)
			}
		}
		compareToReference(t, name, prot, cl)

		episodes += stats.Total.BarrierEpisodes
		quarantines += stats.Total.ConsensusSlotQuarantines
		confChanges += stats.Total.ConsensusConfChanges
		snapInstalls += stats.Total.ConsensusSnapInstalls
		compactions += stats.Total.ConsensusCompactions

		var ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms)
		t.Logf("%s: episodes %d/%d, maxlog %d, heap %d KiB, compactions %d",
			tag, episodes, target, maxLog, ms.HeapAlloc>>10, stats.Total.ConsensusCompactions)
		// The heap after GC must stay flat across rounds; a control
		// plane that leaks log entries or snapshot chunks trips this
		// long before an operator would notice.
		if ms.HeapAlloc > 512<<20 {
			t.Fatalf("%s: heap grew to %d MiB — the control plane is leaking", tag, ms.HeapAlloc>>20)
		}
	}
	t.Logf("endurance done: %d episodes, %d compactions, %d conf changes, %d quarantines, %d snapshot installs",
		episodes, compactions, confChanges, quarantines, snapInstalls)
	if compactions == 0 || quarantines == 0 || confChanges == 0 || snapInstalls == 0 {
		t.Errorf("soak exercised too little: compactions=%d quarantines=%d confChanges=%d snapInstalls=%d",
			compactions, quarantines, confChanges, snapInstalls)
	}
}
