package chaos

import (
	"testing"
	"time"

	"lrcdsm/internal/live/transport"
)

// pairOf builds a wrapped 2-node in-process network.
func pairOf(t *testing.T, cfg Config) []*Transport {
	t.Helper()
	ts := WrapAll(transport.NewInprocNetwork(2), cfg)
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
	})
	return ts
}

// TestDropIsSeededAndSilent checks that drops are injected at roughly
// the configured rate, report success, and replay identically for one
// seed.
func TestDropIsSeededAndSilent(t *testing.T) {
	const sends = 1000
	run := func() (delivered int, dropped int64) {
		ts := pairOf(t, Config{Seed: 7, DropP: 0.3})
		for i := 0; i < sends; i++ {
			if err := ts[0].Send(1, []byte{byte(i)}); err != nil {
				t.Fatalf("chaos send errored: %v", err)
			}
		}
		return sends - int(ts[0].Counters().Dropped), ts[0].Counters().Dropped
	}
	d1, c1 := run()
	d2, c2 := run()
	if c1 != c2 || d1 != d2 {
		t.Fatalf("same seed, different schedules: %d/%d vs %d/%d dropped", c1, sends, c2, sends)
	}
	if c1 < sends/5 || c1 > sends/2 {
		t.Fatalf("drop count %d wildly off a 30%% rate over %d sends", c1, sends)
	}
	// Every non-dropped frame must be receivable.
	ts := pairOf(t, Config{Seed: 7, DropP: 0.3})
	for i := 0; i < sends; i++ {
		ts[0].Send(1, []byte{byte(i)})
	}
	kept := sends - int(ts[0].Counters().Dropped)
	for i := 0; i < kept; i++ {
		if _, err := ts[1].Recv(); err != nil {
			t.Fatalf("recv %d/%d: %v", i, kept, err)
		}
	}
}

// TestDuplicateDelivers checks that duplicated frames really arrive
// twice at the inner transport's receiver.
func TestDuplicateDelivers(t *testing.T) {
	ts := pairOf(t, Config{Seed: 3, DupP: 1.0})
	if err := ts[0].Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		f, err := ts[1].Recv()
		if err != nil || string(f.Payload) != "x" {
			t.Fatalf("copy %d: %v %q", i, err, f.Payload)
		}
	}
	if got := ts[0].Counters().Duplicated; got != 1 {
		t.Fatalf("Duplicated = %d, want 1", got)
	}
}

// TestDelayedFrameStillArrives checks delay injection: the frame is held
// but not lost.
func TestDelayedFrameStillArrives(t *testing.T) {
	ts := pairOf(t, Config{Seed: 5, DelayP: 1.0, DelayMax: 5 * time.Millisecond})
	t0 := time.Now()
	if err := ts[0].Send(1, []byte("late")); err != nil {
		t.Fatal(err)
	}
	f, err := ts[1].Recv()
	if err != nil || string(f.Payload) != "late" {
		t.Fatalf("recv: %v %q", err, f.Payload)
	}
	if time.Since(t0) > time.Second {
		t.Fatal("delay far beyond DelayMax")
	}
	if got := ts[0].Counters().Delayed; got != 1 {
		t.Fatalf("Delayed = %d, want 1", got)
	}
}

// TestPartitionWindow checks that a partition drops frames only between
// the named pair and only inside its window.
func TestPartitionWindow(t *testing.T) {
	ts := WrapAll(transport.NewInprocNetwork(3),
		Config{Partitions: []Partition{{A: 0, B: 1, From: 0, Dur: 50 * time.Millisecond}}})
	defer func() {
		for _, tr := range ts {
			tr.Close()
		}
	}()
	// Inside the window: 0<->1 dead both directions, 0<->2 alive.
	ts[0].Send(1, []byte("cut"))
	ts[1].Send(0, []byte("cut"))
	if err := ts[0].Send(2, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if f, err := ts[2].Recv(); err != nil || string(f.Payload) != "ok" {
		t.Fatalf("unpartitioned pair affected: %v %q", err, f.Payload)
	}
	if got := ts[0].Counters().Partitioned + ts[1].Counters().Partitioned; got != 2 {
		t.Fatalf("Partitioned = %d, want 2", got)
	}
	// After the window closes the pair heals.
	time.Sleep(60 * time.Millisecond)
	if err := ts[0].Send(1, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if f, err := ts[1].Recv(); err != nil || string(f.Payload) != "healed" {
		t.Fatalf("partition did not heal: %v %q", err, f.Payload)
	}
}

// TestResetExercisesReconnect checks reset injection against the real
// TCP transport: the frame after a forced reset must still be delivered
// exactly once via re-dial.
func TestResetExercisesReconnect(t *testing.T) {
	inner, err := transport.NewTCPLoopback(2, transport.TCPOptions{
		DialBackoff:  time.Millisecond,
		DialAttempts: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := WrapAll(inner, Config{Seed: 11, ResetP: 1.0})
	defer func() {
		for _, tr := range ts {
			tr.Close()
		}
	}()
	for i := byte(0); i < 5; i++ {
		if err := ts[0].Send(1, []byte{i}); err != nil {
			t.Fatalf("send %d through forced resets: %v", i, err)
		}
		f, err := ts[1].Recv()
		if err != nil || len(f.Payload) != 1 || f.Payload[0] != i {
			t.Fatalf("recv %d: %v %v", i, err, f.Payload)
		}
	}
	if got := ts[0].Counters().Resets; got == 0 {
		t.Fatal("no resets counted with ResetP=1 over TCP")
	}
}

// TestCrashScheduleFiresOnce runs a crash schedule over the cluster-wide
// op count and requires each entry to fire exactly once, at or after its
// threshold, with the counter attributing each crash once.
func TestCrashScheduleFiresOnce(t *testing.T) {
	type ev struct {
		node  int
		after time.Duration
	}
	events := make(chan ev, 8)
	cfg := Config{
		Seed:    3,
		Crashes: []Crash{{Node: 1, AtOp: 5, RestartAfter: 10 * time.Millisecond}, {Node: 2, AtOp: 12}},
		OnCrash: func(node int, after time.Duration) { events <- ev{node, after} },
	}
	ts := WrapAll(transport.NewInprocNetwork(3), cfg)
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
	})
	for i := 0; i < 20; i++ {
		if err := ts[0].Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := map[int]ev{}
	for i := 0; i < 2; i++ {
		select {
		case e := <-events:
			got[e.node] = e
		case <-time.After(2 * time.Second):
			t.Fatalf("crash %d never fired", i)
		}
	}
	if e, ok := got[1]; !ok || e.after != 10*time.Millisecond {
		t.Fatalf("crash of node 1: %+v", got)
	}
	if _, ok := got[2]; !ok {
		t.Fatalf("crash of node 2 missing: %+v", got)
	}
	select {
	case e := <-events:
		t.Fatalf("crash entry fired twice: %+v", e)
	case <-time.After(50 * time.Millisecond):
	}
	if n := SumCounters(ts).Crashes; n != 2 {
		t.Fatalf("Crashes counter = %d, want 2", n)
	}
}

// TestNetRejoinKeepsSchedule checks the Network wrapper: rejoined
// incarnations stay fault-injected, already-fired crash entries stay
// fired, and counters accumulate across incarnations.
func TestNetRejoinKeepsSchedule(t *testing.T) {
	fired := make(chan int, 4)
	nw := WrapNet(transport.NewInprocNet(2), Config{
		Seed:    9,
		Crashes: []Crash{{Node: 1, AtOp: 3}},
		OnCrash: func(node int, _ time.Duration) { fired <- node },
	})
	t.Cleanup(func() { nw.Close() })
	ts := nw.Transports()
	for i := 0; i < 5; i++ {
		if err := ts[0].Send(1, nil); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case n := <-fired:
		if n != 1 {
			t.Fatalf("crashed node %d, want 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("scheduled crash never fired")
	}

	fresh, err := nw.Rejoin(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.(*Transport); !ok {
		t.Fatalf("rejoined transport is %T, not chaos-wrapped", fresh)
	}
	// More traffic through the new incarnation: the fired entry must not
	// re-fire, and the crash stays counted once across incarnations.
	for i := 0; i < 10; i++ {
		if err := nw.Transports()[0].Send(1, nil); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Send(0, nil); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case n := <-fired:
		t.Fatalf("crash entry re-fired for node %d after rejoin", n)
	case <-time.After(50 * time.Millisecond):
	}
	if n := nw.Counters().Crashes; n != 1 {
		t.Fatalf("Crashes across incarnations = %d, want 1", n)
	}
}
