// Package chaos is a fault-injecting transport middleware for the live
// DSM runtime: it wraps any transport.Transport and, driven by a seeded
// schedule, drops, delays, duplicates and reorders frames, severs
// per-peer connections, and partitions node pairs for configurable
// windows. The protocol engine above it is expected to survive every
// fault except a partition, which failure detection must convert into a
// clean structured abort — that expectation is what the chaos soak tests
// (internal/live) enforce.
//
// Faults are injected on the send side, before the inner transport
// assigns any sequence numbers, so the inner transport's own guarantees
// (per-peer ordering, reconnect retransmission) still hold for the
// frames that are let through — what the engine sees is a lossy,
// re-ordering, duplicating network, exactly the paper's protocols'
// worst case. Delayed frames intentionally break per-peer FIFO: a held
// frame lets younger frames pass it.
package chaos

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lrcdsm/internal/live/transport"
)

// Partition takes one node pair offline from each other for a window
// measured from the chaos transport's creation. A non-positive Dur
// partitions the pair forever.
type Partition struct {
	A, B int
	From time.Duration
	Dur  time.Duration
}

// Config parameterizes the fault schedule. Probabilities are per frame
// and independent; the zero value injects nothing.
type Config struct {
	// Seed drives the per-node fault schedule. Wrapped nodes derive
	// distinct streams from it, so one seed reproduces one cluster-wide
	// schedule (up to goroutine interleaving of the sends themselves).
	Seed int64
	// DropP silently discards a frame.
	DropP float64
	// DupP sends an extra copy of a frame.
	DupP float64
	// DelayP holds a frame for a uniform delay in (0, DelayMax] before
	// handing it to the inner transport — younger frames overtake it.
	DelayP   float64
	DelayMax time.Duration
	// ResetP severs the established connection to the destination before
	// sending, when the inner transport supports it (TCP); the send then
	// exercises the re-dial + retransmit path.
	ResetP float64
	// Partitions lists node pairs to take offline for windows.
	Partitions []Partition
}

// Counters reports how many faults one wrapped transport injected.
type Counters struct {
	Dropped     int64 `json:"dropped"`
	Duplicated  int64 `json:"duplicated"`
	Delayed     int64 `json:"delayed"`
	Resets      int64 `json:"resets"`
	Partitioned int64 `json:"partitioned"`
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Dropped += other.Dropped
	c.Duplicated += other.Duplicated
	c.Delayed += other.Delayed
	c.Resets += other.Resets
	c.Partitioned += other.Partitioned
}

// Total is the number of injected faults.
func (c Counters) Total() int64 {
	return c.Dropped + c.Duplicated + c.Delayed + c.Resets + c.Partitioned
}

// Transport wraps an inner transport with fault injection. Recv, Self, N
// and Close delegate untouched; Send runs the fault schedule.
type Transport struct {
	inner transport.Transport
	cfg   Config
	start time.Time

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	ctr Counters // atomic fields
}

var _ transport.Transport = (*Transport)(nil)

// Wrap builds a fault-injecting view of inner. The node's fault stream
// is derived from cfg.Seed and the node id, so a cluster wrapped with
// one config replays one schedule per seed.
func Wrap(inner transport.Transport, cfg Config) *Transport {
	return wrapAt(inner, cfg, time.Now())
}

// WrapAll wraps every transport of a cluster with one shared config and
// a common partition-window origin.
func WrapAll(inner []transport.Transport, cfg Config) []*Transport {
	start := time.Now()
	out := make([]*Transport, len(inner))
	for i, tr := range inner {
		out[i] = wrapAt(tr, cfg, start)
	}
	return out
}

// Transports converts a wrapped set to the interface slice a cluster
// config takes.
func Transports(ts []*Transport) []transport.Transport {
	out := make([]transport.Transport, len(ts))
	for i, t := range ts {
		out[i] = t
	}
	return out
}

// SumCounters totals the fault counters of a wrapped cluster.
func SumCounters(ts []*Transport) Counters {
	var sum Counters
	for _, t := range ts {
		sum.Add(t.Counters())
	}
	return sum
}

func wrapAt(inner transport.Transport, cfg Config, start time.Time) *Transport {
	// splitmix-style seed derivation keeps per-node streams uncorrelated
	// even for adjacent seeds/ids.
	s := uint64(cfg.Seed) + 0x9e3779b97f4a7c15*uint64(inner.Self()+1)
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	return &Transport{
		inner: inner,
		cfg:   cfg,
		start: start,
		rng:   rand.New(rand.NewSource(int64(s))),
	}
}

// Self implements transport.Transport.
func (t *Transport) Self() int { return t.inner.Self() }

// N implements transport.Transport.
func (t *Transport) N() int { return t.inner.N() }

// Recv implements transport.Transport.
func (t *Transport) Recv() (transport.Frame, error) { return t.inner.Recv() }

// Close implements transport.Transport. Frames still held by delay
// timers are sent into the closed inner transport and vanish — which is
// just one more drop.
func (t *Transport) Close() error { return t.inner.Close() }

// Counters returns a snapshot of the faults injected so far.
func (t *Transport) Counters() Counters {
	return Counters{
		Dropped:     atomic.LoadInt64(&t.ctr.Dropped),
		Duplicated:  atomic.LoadInt64(&t.ctr.Duplicated),
		Delayed:     atomic.LoadInt64(&t.ctr.Delayed),
		Resets:      atomic.LoadInt64(&t.ctr.Resets),
		Partitioned: atomic.LoadInt64(&t.ctr.Partitioned),
	}
}

// Send implements transport.Transport, running the fault schedule.
// Injected losses report success — a faulty network drops silently, and
// the protocol layer must recover by retransmission, not by error
// handling.
func (t *Transport) Send(to int, payload []byte) error {
	if t.partitioned(to) {
		atomic.AddInt64(&t.ctr.Partitioned, 1)
		return nil
	}
	t.mu.Lock()
	drop := t.cfg.DropP > 0 && t.rng.Float64() < t.cfg.DropP
	dup := t.cfg.DupP > 0 && t.rng.Float64() < t.cfg.DupP
	reset := t.cfg.ResetP > 0 && t.rng.Float64() < t.cfg.ResetP
	var delay time.Duration
	if t.cfg.DelayP > 0 && t.cfg.DelayMax > 0 && t.rng.Float64() < t.cfg.DelayP {
		delay = time.Duration(1 + t.rng.Int63n(int64(t.cfg.DelayMax)))
	}
	t.mu.Unlock()

	if drop {
		atomic.AddInt64(&t.ctr.Dropped, 1)
		return nil
	}
	if reset {
		if r, ok := t.inner.(transport.PeerResetter); ok {
			r.ResetPeer(to)
			atomic.AddInt64(&t.ctr.Resets, 1)
		}
	}
	if dup {
		atomic.AddInt64(&t.ctr.Duplicated, 1)
		t.inner.Send(to, payload)
	}
	if delay > 0 {
		atomic.AddInt64(&t.ctr.Delayed, 1)
		time.AfterFunc(delay, func() { t.inner.Send(to, payload) })
		return nil
	}
	return t.inner.Send(to, payload)
}

// partitioned reports whether the link to peer `to` is inside an active
// partition window.
func (t *Transport) partitioned(to int) bool {
	if len(t.cfg.Partitions) == 0 {
		return false
	}
	self, now := t.inner.Self(), time.Since(t.start)
	for _, p := range t.cfg.Partitions {
		if (p.A != self || p.B != to) && (p.B != self || p.A != to) {
			continue
		}
		if now >= p.From && (p.Dur <= 0 || now < p.From+p.Dur) {
			return true
		}
	}
	return false
}
