// Package chaos is a fault-injecting transport middleware for the live
// DSM runtime: it wraps any transport.Transport and, driven by a seeded
// schedule, drops, delays, duplicates and reorders frames, severs
// per-peer connections, and partitions node pairs for configurable
// windows. The protocol engine above it is expected to survive every
// fault except a partition, which failure detection must convert into a
// clean structured abort — that expectation is what the chaos soak tests
// (internal/live) enforce.
//
// Faults are injected on the send side, before the inner transport
// assigns any sequence numbers, so the inner transport's own guarantees
// (per-peer ordering, reconnect retransmission) still hold for the
// frames that are let through — what the engine sees is a lossy,
// re-ordering, duplicating network, exactly the paper's protocols'
// worst case. Delayed frames intentionally break per-peer FIFO: a held
// frame lets younger frames pass it.
package chaos

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lrcdsm/internal/live/transport"
)

// Partition takes one node pair offline from each other for a window
// measured from the chaos transport's creation. A non-positive Dur
// partitions the pair forever.
type Partition struct {
	A, B int
	From time.Duration
	Dur  time.Duration
}

// Config parameterizes the fault schedule. Probabilities are per frame
// and independent; the zero value injects nothing.
type Config struct {
	// Seed drives the per-node fault schedule. Wrapped nodes derive
	// distinct streams from it, so one seed reproduces one cluster-wide
	// schedule (up to goroutine interleaving of the sends themselves).
	Seed int64
	// DropP silently discards a frame.
	DropP float64
	// DupP sends an extra copy of a frame.
	DupP float64
	// DelayP holds a frame for a uniform delay in (0, DelayMax] before
	// handing it to the inner transport — younger frames overtake it.
	DelayP   float64
	DelayMax time.Duration
	// ResetP severs the established connection to the destination before
	// sending, when the inner transport supports it (TCP); the send then
	// exercises the re-dial + retransmit path.
	ResetP float64
	// Partitions lists node pairs to take offline for windows.
	Partitions []Partition
	// Crashes schedules whole-node failures on the cluster-wide operation
	// count (frames attempted through any wrapped transport). Each entry
	// fires OnCrash exactly once.
	Crashes []Crash
	// OnCrash is invoked (asynchronously) when a scheduled crash fires.
	// The supervisor wires this to kill-and-restart; tests can wire it to
	// anything. Nil disables the crash schedule.
	OnCrash func(node int, restartAfter time.Duration)
}

// Crash kills node Node when the cluster-wide operation count reaches
// AtOp, to be restarted after RestartAfter (non-positive means
// immediately). The operation count is the number of sends attempted
// through the wrapped cluster, so one seed and one schedule reproduce
// one crash point up to goroutine interleaving.
type Crash struct {
	Node         int
	AtOp         int64
	RestartAfter time.Duration
	// Local counts only frames sent by Node itself instead of the
	// cluster-wide total. A workload whose victim finishes its own work
	// early (tsp: the satellites make a handful of RPCs while node 0
	// grinds on) needs this to pin the kill inside the victim's active
	// lifetime regardless of how fast the rest of the cluster runs.
	Local bool
}

// sched is the cluster-shared crash schedule: one op counter and one
// fired flag per crash entry, shared by every wrapped transport of the
// cluster (and by rejoined incarnations through Net).
type sched struct {
	ops     atomic.Int64
	crashes []crashEntry
	onCrash func(int, time.Duration)
}

type crashEntry struct {
	c     Crash
	local atomic.Int64 // Local entries: the victim's own send count
	fired atomic.Bool
}

func newSched(cfg Config) *sched {
	if cfg.OnCrash == nil || len(cfg.Crashes) == 0 {
		return nil
	}
	s := &sched{crashes: make([]crashEntry, len(cfg.Crashes)), onCrash: cfg.OnCrash}
	for i, c := range cfg.Crashes {
		s.crashes[i].c = c
	}
	return s
}

// step advances the op counters for a send by node self and fires any
// crash entries whose threshold was crossed. It returns the number
// fired by this step.
func (s *sched) step(self int) int64 {
	op := s.ops.Add(1)
	var fired int64
	for i := range s.crashes {
		e := &s.crashes[i]
		at := op
		if e.c.Local {
			if self != e.c.Node {
				continue
			}
			at = e.local.Add(1)
		}
		if at >= e.c.AtOp && e.fired.CompareAndSwap(false, true) {
			fired++
			if e.c.Local {
				// The victim is killing itself mid-send: fire inline so it
				// cannot finish its work before the kill lands — the rest
				// of this Send already runs against the closed transport.
				// (Kill is non-blocking, so running it under the sender's
				// stack is safe.)
				s.onCrash(e.c.Node, e.c.RestartAfter)
				continue
			}
			// Fire asynchronously: the kill path closes transports, and
			// must not run under the sender's locks.
			go s.onCrash(e.c.Node, e.c.RestartAfter)
		}
	}
	return fired
}

// Counters reports how many faults one wrapped transport injected.
type Counters struct {
	Dropped     int64 `json:"dropped"`
	Duplicated  int64 `json:"duplicated"`
	Delayed     int64 `json:"delayed"`
	Resets      int64 `json:"resets"`
	Partitioned int64 `json:"partitioned"`
	Crashes     int64 `json:"crashes"`
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Dropped += other.Dropped
	c.Duplicated += other.Duplicated
	c.Delayed += other.Delayed
	c.Resets += other.Resets
	c.Partitioned += other.Partitioned
	c.Crashes += other.Crashes
}

// Total is the number of injected faults.
func (c Counters) Total() int64 {
	return c.Dropped + c.Duplicated + c.Delayed + c.Resets + c.Partitioned + c.Crashes
}

// Transport wraps an inner transport with fault injection. Recv, Self, N
// and Close delegate untouched; Send runs the fault schedule.
type Transport struct {
	inner transport.Transport
	cfg   Config
	start time.Time
	sched *sched // cluster-shared crash schedule; nil when disabled

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	ctr Counters // atomic fields
}

var _ transport.Transport = (*Transport)(nil)

// Wrap builds a fault-injecting view of inner. The node's fault stream
// is derived from cfg.Seed and the node id, so a cluster wrapped with
// one config replays one schedule per seed.
func Wrap(inner transport.Transport, cfg Config) *Transport {
	return wrapAt(inner, cfg, time.Now(), newSched(cfg))
}

// WrapAll wraps every transport of a cluster with one shared config, a
// common partition-window origin and one shared crash schedule.
func WrapAll(inner []transport.Transport, cfg Config) []*Transport {
	start := time.Now()
	sc := newSched(cfg)
	out := make([]*Transport, len(inner))
	for i, tr := range inner {
		out[i] = wrapAt(tr, cfg, start, sc)
	}
	return out
}

// Transports converts a wrapped set to the interface slice a cluster
// config takes.
func Transports(ts []*Transport) []transport.Transport {
	out := make([]transport.Transport, len(ts))
	for i, t := range ts {
		out[i] = t
	}
	return out
}

// SumCounters totals the fault counters of a wrapped cluster.
func SumCounters(ts []*Transport) Counters {
	var sum Counters
	for _, t := range ts {
		sum.Add(t.Counters())
	}
	return sum
}

func wrapAt(inner transport.Transport, cfg Config, start time.Time, sc *sched) *Transport {
	// splitmix-style seed derivation keeps per-node streams uncorrelated
	// even for adjacent seeds/ids.
	s := uint64(cfg.Seed) + 0x9e3779b97f4a7c15*uint64(inner.Self()+1)
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	return &Transport{
		inner: inner,
		cfg:   cfg,
		start: start,
		sched: sc,
		rng:   rand.New(rand.NewSource(int64(s))),
	}
}

// Self implements transport.Transport.
func (t *Transport) Self() int { return t.inner.Self() }

// N implements transport.Transport.
func (t *Transport) N() int { return t.inner.N() }

// Recv implements transport.Transport.
func (t *Transport) Recv() (transport.Frame, error) { return t.inner.Recv() }

// Close implements transport.Transport. Frames still held by delay
// timers are sent into the closed inner transport and vanish — which is
// just one more drop.
func (t *Transport) Close() error { return t.inner.Close() }

// Counters returns a snapshot of the faults injected so far.
func (t *Transport) Counters() Counters {
	return Counters{
		Dropped:     atomic.LoadInt64(&t.ctr.Dropped),
		Duplicated:  atomic.LoadInt64(&t.ctr.Duplicated),
		Delayed:     atomic.LoadInt64(&t.ctr.Delayed),
		Resets:      atomic.LoadInt64(&t.ctr.Resets),
		Partitioned: atomic.LoadInt64(&t.ctr.Partitioned),
		Crashes:     atomic.LoadInt64(&t.ctr.Crashes),
	}
}

// Send implements transport.Transport, running the fault schedule.
// Injected losses report success — a faulty network drops silently, and
// the protocol layer must recover by retransmission, not by error
// handling.
func (t *Transport) Send(to int, payload []byte) error {
	if t.sched != nil {
		// Crashes attribute to whichever transport's send crossed the
		// threshold, so summing per-transport counters counts each once.
		if fired := t.sched.step(t.inner.Self()); fired > 0 {
			atomic.AddInt64(&t.ctr.Crashes, fired)
		}
	}
	if t.partitioned(to) {
		atomic.AddInt64(&t.ctr.Partitioned, 1)
		return nil
	}
	t.mu.Lock()
	drop := t.cfg.DropP > 0 && t.rng.Float64() < t.cfg.DropP
	dup := t.cfg.DupP > 0 && t.rng.Float64() < t.cfg.DupP
	reset := t.cfg.ResetP > 0 && t.rng.Float64() < t.cfg.ResetP
	var delay time.Duration
	if t.cfg.DelayP > 0 && t.cfg.DelayMax > 0 && t.rng.Float64() < t.cfg.DelayP {
		delay = time.Duration(1 + t.rng.Int63n(int64(t.cfg.DelayMax)))
	}
	t.mu.Unlock()

	if drop {
		atomic.AddInt64(&t.ctr.Dropped, 1)
		return nil
	}
	if reset {
		if r, ok := t.inner.(transport.PeerResetter); ok {
			r.ResetPeer(to)
			atomic.AddInt64(&t.ctr.Resets, 1)
		}
	}
	if dup {
		atomic.AddInt64(&t.ctr.Duplicated, 1)
		t.inner.Send(to, payload)
	}
	if delay > 0 {
		atomic.AddInt64(&t.ctr.Delayed, 1)
		time.AfterFunc(delay, func() { t.inner.Send(to, payload) })
		return nil
	}
	return t.inner.Send(to, payload)
}

// partitioned reports whether the link to peer `to` is inside an active
// partition window.
func (t *Transport) partitioned(to int) bool {
	if len(t.cfg.Partitions) == 0 {
		return false
	}
	self, now := t.inner.Self(), time.Since(t.start)
	for _, p := range t.cfg.Partitions {
		if (p.A != self || p.B != to) && (p.B != self || p.A != to) {
			continue
		}
		if now >= p.From && (p.Dur <= 0 || now < p.From+p.Dur) {
			return true
		}
	}
	return false
}
