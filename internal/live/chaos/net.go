package chaos

import (
	"sync"

	"lrcdsm/internal/live/transport"
)

// Net wraps a whole transport.Network with fault injection so the
// supervisor's recovery path runs under the same chaos schedule as the
// original run: a rejoined node's fresh transport is wrapped with the
// same config, the same partition-window origin, and the same crash
// schedule (already-fired crash entries stay fired).
type Net struct {
	inner transport.Network
	cfg   Config
	sched *sched

	mu      sync.Mutex
	wrapped []*Transport
	retired Counters // counters of replaced incarnations
}

var _ transport.Network = (*Net)(nil)

// WrapNet builds a fault-injecting view of a whole network.
func WrapNet(inner transport.Network, cfg Config) *Net {
	ts := WrapAll(inner.Transports(), cfg)
	nw := &Net{inner: inner, cfg: cfg, wrapped: ts}
	if len(ts) > 0 {
		nw.sched = ts[0].sched
	}
	return nw
}

// Transports implements transport.Network.
func (nw *Net) Transports() []transport.Transport {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	out := make([]transport.Transport, len(nw.wrapped))
	for i, t := range nw.wrapped {
		out[i] = t
	}
	return out
}

// Wrapped returns the current fault-injecting transports, for counter
// inspection by tests and the dsmd report.
func (nw *Net) Wrapped() []*Transport {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]*Transport(nil), nw.wrapped...)
}

// Rejoin implements transport.Network: the fresh incarnation is wrapped
// with the same schedule, and the replaced wrapper's fault counters are
// folded into the network total.
func (nw *Net) Rejoin(i int) (transport.Transport, error) {
	fresh, err := nw.inner.Rejoin(i)
	if err != nil {
		return nil, err
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	old := nw.wrapped[i]
	nw.retired.Add(old.Counters())
	// Keep the original partition-window origin so "From" offsets stay
	// anchored at cluster start, not at each restart.
	t := wrapAt(fresh, nw.cfg, old.start, nw.sched)
	nw.wrapped[i] = t
	return t, nil
}

// Close implements transport.Network.
func (nw *Net) Close() error { return nw.inner.Close() }

// Counters totals the faults injected across every incarnation of every
// node's transport.
func (nw *Net) Counters() Counters {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	sum := nw.retired
	for _, t := range nw.wrapped {
		sum.Add(t.Counters())
	}
	return sum
}
