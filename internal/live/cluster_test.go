package live

import (
	"fmt"
	"testing"
	"time"

	"lrcdsm/internal/check"
	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
	"lrcdsm/internal/live/transport"
)

// runApp executes one workload on a live cluster and verifies its
// result, returning the finished cluster for memory comparison.
func runApp(t *testing.T, name string, prot core.Protocol, nodes int, trs []transport.Transport) (*Cluster, *Stats) {
	t.Helper()
	app, err := harness.NewApp(name, harness.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Nodes:      nodes,
		Protocol:   prot,
		Transports: trs,
		RPCTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	app.Configure(c)
	stats, err := c.Run(func(w core.Worker) { app.Worker(w) })
	if err != nil {
		t.Fatalf("%s/%v/%dn: %v", name, prot, nodes, err)
	}
	if err := app.Verify(c); err != nil {
		t.Fatalf("%s/%v/%dn failed verification: %v", name, prot, nodes, err)
	}
	return c, stats
}

// TestAppsOnInprocCluster is the live runtime's end-to-end correctness
// test: all four paper workloads on a 4-node in-process cluster under
// both supported protocols, with the declared result regions compared
// word-for-word (floats within tolerance) against a 1-node reference
// run of the same live engine.
func TestAppsOnInprocCluster(t *testing.T) {
	for _, name := range harness.AppNames {
		for _, prot := range []core.Protocol{core.LI, core.LH} {
			name, prot := name, prot
			t.Run(fmt.Sprintf("%s/%v", name, prot), func(t *testing.T) {
				t.Parallel()
				got, _ := runApp(t, name, prot, 4, nil)
				ref, _ := runApp(t, name, prot, 1, nil)

				app, err := harness.NewApp(name, harness.ScaleTest)
				if err != nil {
					t.Fatal(err)
				}
				ra, ok := app.(harness.ResultApp)
				if !ok {
					t.Fatalf("%s does not declare result regions", name)
				}
				if vs := check.CompareRegions(got, ref, ra.ResultRegions()); len(vs) > 0 {
					for i, v := range vs {
						if i >= 5 {
							t.Errorf("... and %d more", len(vs)-5)
							break
						}
						t.Errorf("region mismatch: %s", v.String())
					}
				}
			})
		}
	}
}

// TestProtocolCounters checks that the protocol actually exercised its
// machinery: LI invalidates, LH pulls diffs, and both move diffs to the
// homes at releases.
func TestProtocolCounters(t *testing.T) {
	_, li := runApp(t, "jacobi", core.LI, 4, nil)
	if li.Total.Invalidations == 0 {
		t.Error("LI run performed no invalidations")
	}
	if li.Total.PageFaults == 0 || li.Total.PageFetches == 0 {
		t.Errorf("LI run: faults=%d fetches=%d, want > 0", li.Total.PageFaults, li.Total.PageFetches)
	}
	if li.Total.DiffsCreated == 0 || li.Total.DiffsApplied == 0 {
		t.Errorf("LI run: diffs created=%d applied=%d, want > 0", li.Total.DiffsCreated, li.Total.DiffsApplied)
	}
	if li.Total.BarrierEpisodes == 0 {
		t.Error("LI jacobi crossed no barriers")
	}

	_, lh := runApp(t, "jacobi", core.LH, 4, nil)
	if lh.Total.DiffPulls == 0 {
		t.Error("LH run pulled no diffs")
	}
	if lh.Total.Invalidations >= li.Total.Invalidations {
		t.Errorf("LH invalidations (%d) should be fewer than LI (%d)",
			lh.Total.Invalidations, li.Total.Invalidations)
	}

	_, tsp := runApp(t, "tsp", core.LH, 4, nil)
	if tsp.Total.LockAcquires == 0 {
		t.Error("TSP acquired no locks")
	}
}

// TestWorkerPanicSurfaces checks that an application panic on one node
// aborts the whole run with an error instead of deadlocking the others.
func TestWorkerPanicSurfaces(t *testing.T) {
	c, err := New(Config{Nodes: 2, RPCTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	a := c.Alloc(64)
	bar := c.NewBarrier()
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(func(w core.Worker) {
			if w.ID() == 1 {
				panic("application bug")
			}
			w.WriteU64(a, 1)
			w.Barrier(bar)
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with panicking worker returned nil error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run with panicking worker hung")
	}
}

// TestConfigValidation covers the constructor's rejection paths.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Error("Nodes=0 accepted")
	}
	if _, err := New(Config{Nodes: 2, PageSize: 100}); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	if _, err := New(Config{Nodes: 2, Protocol: core.EI}); err == nil {
		t.Error("eager protocol accepted by live runtime")
	}
	if _, err := New(Config{Nodes: 2, Transports: make([]transport.Transport, 3)}); err == nil {
		t.Error("mismatched transport count accepted")
	}
	c, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(func(core.Worker) {}); err == nil {
		t.Error("run without allocations accepted")
	}
}
