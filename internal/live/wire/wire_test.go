package wire

import (
	"bytes"
	"reflect"
	"testing"

	"lrcdsm/internal/page"
)

// sampleMsgs returns one representative message per kind, with every
// optional field of that kind populated.
func sampleMsgs() []*Msg {
	diffs := []Diff{
		{Writer: 1, Index: 3, D: page.Diff{Page: 7, Runs: []page.Run{
			{Off: 0, Words: []uint64{1, 2, 3}},
			{Off: 200, Words: []uint64{0xdeadbeef}},
		}}},
		{Writer: 2, Index: 1, D: page.Diff{Page: 9}},
	}
	notices := []Notice{
		{Writer: 0, Index: 4, Pages: []int32{1, 2, 3}},
		{Writer: 3, Index: 1, Pages: nil},
	}
	ival := &Interval{Writer: 2, Index: 5, VT: []int32{1, 0, 5, 2}, Pages: []int32{4, 8}}
	entries := []Entry{
		{Term: 2, Cmd: []byte{1, 2, 3, 4}},
		{Term: 3, Cmd: nil},
	}
	return []*Msg{
		{Kind: KHello, From: 3, Token: 1},
		{Kind: KPageReq, From: 1, Token: 42, Page: 17},
		{Kind: KPageReply, From: 0, Token: 42, Page: 17, VT: []int32{3, 1, 0, 9}, Data: bytes.Repeat([]byte{0xab}, 4096)},
		{Kind: KDiffReq, From: 2, Token: 7, Page: 5, VT: []int32{0, 0, 2, 0}},
		{Kind: KDiffReply, From: 0, Token: 7, Page: 5, VT: []int32{1, 2, 3, 4}, Diffs: diffs},
		{Kind: KDiffReply, From: 0, Token: 8, Page: 5, VT: []int32{1, 2, 3, 4}, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Kind: KWriteNotices, From: 1, Token: 9, Epoch: 1, Episode: 6, Diffs: diffs, Interval: ival},
		{Kind: KAck, From: 0, Token: 9},
		{Kind: KLockReq, From: 3, Token: 10, Lock: 12, VT: []int32{0, 1, 2, 3}, Attempt: 2},
		{Kind: KLockGrant, From: 0, Token: 10, Lock: 12, VT: []int32{5, 5, 5, 5}, Notices: notices, Diffs: diffs},
		{Kind: KLockRelease, From: 3, Token: 11, Lock: 12, VT: []int32{6, 5, 5, 5}, Interval: ival},
		{Kind: KLockRelease, From: 3, Token: 12, Lock: 0, VT: []int32{6, 5, 5, 5}}, // no interval
		{Kind: KBarArrive, From: 2, Token: 13, Barrier: 1, Episode: 7, VT: []int32{1, 1, 1, 1}, Notices: notices, Interval: ival},
		{Kind: KBarDepart, From: 0, Token: 13, Barrier: 1, Episode: 4, VT: []int32{2, 2, 2, 2}, Notices: notices},
		{Kind: KReleaseAck, From: 0, Token: 11, Lock: 12},
		{Kind: KHeartbeat, From: 2, Epoch: 3},
		{Kind: KAbort, From: 0, Term: 7, Err: "manager: node 3 silent for 2s (pending: barrier 1)"},
		{Kind: KJoinReq, From: 3, Token: 1, Epoch: 2, Incarnation: 1, Episode: -1, Attempt: 1},
		{Kind: KJoinGrant, From: 0, Token: 1, Epoch: 2, Incarnation: 1, Episode: 4, VT: []int32{4, 4, 4, 4}, NChunks: 3},
		{Kind: KSnapReq, From: 3, Token: 2, Epoch: 2, Episode: 4, Chunk: 1},
		{Kind: KSnapChunk, From: 0, Token: 2, Epoch: 2, Episode: 4, Page: 7, Chunk: 1, NChunks: 3, VT: []int32{2, 0, 1, 4}, Data: bytes.Repeat([]byte{0x5a}, 256)},
		{Kind: KSnapPush, From: 1, Token: 5, Epoch: 1, Episode: 4, Page: 9, Chunk: 0, NChunks: 2, VT: []int32{1, 3, 0, 0}, Data: []byte{9, 8, 7}, Attempt: 2},
		{Kind: KResume, From: 3, Token: 3, Epoch: 2, Incarnation: 1, Episode: 4},
		{Kind: KCkptDone, From: 1, Token: 6, Epoch: 1, Episode: 4},
		{Kind: KLockForward, From: 0, Token: 21, Epoch: 2, Lock: 12, ReqFrom: 3, VT: []int32{0, 1, 2, 3}},
		{Kind: KBarRelease, From: 0, Token: 0, Epoch: 1, Barrier: 1, Episode: 9, VT: []int32{3, 3, 3, 3}, Notices: notices},
		{Kind: KLogSegReq, From: 2, Token: 30, Epoch: 1, Lo: 4, Hi: 9, Attempt: 1},
		{Kind: KLogSegResp, From: 1, Token: 30, Epoch: 1, Lo: 4, Hi: 9, Notices: notices},
		{Kind: KVoteReq, From: 2, Epoch: 1, Term: 5, LogIndex: 12, LogTerm: 4},
		{Kind: KVoteResp, From: 1, Epoch: 1, Term: 5, Flag: 1},
		{Kind: KAppend, From: 0, Epoch: 1, Term: 5, LogIndex: 12, LogTerm: 4, Commit: 10, Entries: entries},
		{Kind: KAppend, From: 0, Epoch: 1, Term: 6, LogIndex: 14, LogTerm: 5, Commit: 14}, // pure heartbeat
		{Kind: KAppendAck, From: 2, Epoch: 1, Term: 5, LogIndex: 14, Flag: 1},
		{Kind: KNotLeader, From: 2, Token: 31, Epoch: 1, Term: 5, Leader: 1},
		{Kind: KMgrSnap, From: 0, Token: 32, Epoch: 1, Episode: 9, VT: []int32{3, 3, 3, 3}, Attempt: 1},
		{Kind: KSnapInstall, From: 0, Epoch: 1, Term: 6, LogIndex: 512, LogTerm: 5, Chunk: 1, NChunks: 3, Data: bytes.Repeat([]byte{0xc3}, 64)},
		{Kind: KSnapAck, From: 2, Epoch: 1, Term: 6, LogIndex: 512, Chunk: 2, NChunks: 3, Flag: 1},
		{Kind: KConfChange, From: 3, Token: 40, Epoch: 2, Flag: 1, ReqFrom: 4, Attempt: 1},
		{Kind: KConfAck, From: 0, Token: 40, Epoch: 2, Flag: 1},
		{Kind: KConfAck, From: 0, Token: 41, Epoch: 2, Err: "consensus: a membership change is already pending"},
	}
}

// TestRoundTrip encodes and decodes one message of every kind and
// requires structural equality.
func TestRoundTrip(t *testing.T) {
	seen := map[Kind]bool{}
	for _, m := range sampleMsgs() {
		seen[m.Kind] = true
		b := Encode(m)
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", m.Kind, got, m)
		}
	}
	for k := KHello; k < kindEnd; k++ {
		if !seen[k] {
			t.Errorf("no round-trip sample for kind %v", k)
		}
	}
}

// TestDecodeTruncated decodes every strict prefix of every sample frame:
// each must fail cleanly (or, never, succeed with trailing garbage).
func TestDecodeTruncated(t *testing.T) {
	for _, m := range sampleMsgs() {
		b := Encode(m)
		for i := 0; i < len(b); i++ {
			if _, err := Decode(b[:i]); err == nil {
				t.Fatalf("%v: truncation to %d/%d bytes decoded successfully", m.Kind, i, len(b))
			}
		}
	}
}

// TestDecodeTrailing requires frames with appended garbage to fail.
func TestDecodeTrailing(t *testing.T) {
	for _, m := range sampleMsgs() {
		b := append(Encode(m), 0x00)
		if _, err := Decode(b); err == nil {
			t.Fatalf("%v: frame with trailing byte decoded successfully", m.Kind)
		}
	}
}

// TestDecodeMalformed covers version/kind/count rejections.
func TestDecodeMalformed(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty frame decoded")
	}
	if _, err := Decode([]byte{99, byte(KAck), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := Decode([]byte{Version, 0xEE, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("unknown kind accepted")
	}
	// A page reply whose data length claims far more than the frame holds.
	b := Encode(&Msg{Kind: KPageReply, Page: 1, VT: []int32{1}, Data: []byte{1, 2, 3}})
	// Patch the data length field (last 4+3 bytes are len+data).
	b[len(b)-7] = 0xff
	b[len(b)-6] = 0xff
	b[len(b)-5] = 0xff
	b[len(b)-4] = 0x7f
	if _, err := Decode(b); err == nil {
		t.Error("oversized data length accepted")
	}
	if _, err := Decode(make([]byte, MaxFrame+1)); err == nil {
		t.Error("frame above MaxFrame accepted")
	}
}

// cutV4 removes the v4-gated fields (the episode stamp and aggregated
// notices version 4 added to KBarArrive) from a full encoding of m,
// yielding the v3 layout of that kind. Offsets are computed from the
// kind's field set; only simple pre-v4 kinds carry these flags.
func cutV4(m *Msg, b []byte) []byte {
	fs := fields[m.Kind]
	if !fs.episode4 && !fs.notices4 {
		return b
	}
	off := 18 // version, kind, from, token, epoch
	if fs.attempt {
		off++
	}
	if fs.lock {
		off += 4
	}
	if fs.barrier {
		off += 4
	}
	if fs.episode4 {
		b = append(b[:off], b[off+8:]...)
	}
	if fs.notices4 {
		if fs.vt {
			off += 4 + 4*len(m.VT)
		}
		sz := 4
		for _, n := range m.Notices {
			sz += 12 + 4*len(n.Pages)
		}
		b = append(b[:off], b[off+sz:]...)
	}
	return b
}

// cutV5 removes the v5-gated fields (the fencing Term version 5 added
// to KAbort) from a full encoding of m, yielding the v4 layout of that
// kind. Only simple pre-v5 kinds carry the term5 flag.
func cutV5(m *Msg, b []byte) []byte {
	fs := fields[m.Kind]
	if !fs.term5 {
		return b
	}
	off := 18 // version, kind, from, token, epoch
	if fs.attempt {
		off++
	}
	if fs.incarn {
		off += 4
	}
	if fs.chunk {
		off += 8
	}
	return append(b[:off], b[off+8:]...)
}

// encodeV1 builds a version-1 frame for kinds that existed in v1: the
// same layout as Encode minus the v4/v5-gated fields, the Attempt byte
// version 2 added, and the Epoch word (plus, for flushes, the Episode
// stamp) version 3 added. The v1-v3 cuts sit contiguously after the
// (version, kind, from, token) prefix, so one cut suffices.
func encodeV1(m *Msg) []byte {
	b := cutV4(m, cutV5(m, Encode(m)))
	b[0] = 1
	fs := fields[m.Kind]
	cut := 4 // Epoch
	if fs.attempt {
		cut++
	}
	if fs.episode3 {
		cut += 8
	}
	return append(b[:14], b[14+cut:]...)
}

// encodeV2 builds a version-2 frame for kinds that existed in v2: the v3
// layout minus the Epoch word and the v3 Episode stamp (Attempt stays).
func encodeV2(m *Msg) []byte {
	b := cutV4(m, cutV5(m, Encode(m)))
	b[0] = 2
	fs := fields[m.Kind]
	b = append(b[:14], b[18:]...) // Epoch
	if fs.episode3 {
		off := 14
		if fs.attempt {
			off++
		}
		b = append(b[:off], b[off+8:]...)
	}
	return b
}

// encodeV3 builds a version-3 frame for kinds that existed in v3: the
// full layout minus the v4- and v5-gated fields.
func encodeV3(m *Msg) []byte {
	b := cutV4(m, cutV5(m, Encode(m)))
	b[0] = 3
	return b
}

// encodeV4 builds a version-4 frame for kinds that existed in v4: the
// full layout minus the v5-gated fields.
func encodeV4(m *Msg) []byte {
	b := cutV5(m, Encode(m))
	b[0] = 4
	return b
}

// TestDecodeV1Compat checks the versioning contract: a v1 frame of a v1
// kind still decodes (with Attempt zero), while the v2-only kinds are
// rejected when stamped as v1.
func TestDecodeV1Compat(t *testing.T) {
	for _, m := range sampleMsgs() {
		if m.Kind >= firstV2Kind {
			b := Encode(m)
			b[0] = 1
			if _, err := Decode(b); err == nil {
				t.Errorf("%v: v2-only kind accepted in a v1 frame", m.Kind)
			}
			continue
		}
		got, err := Decode(encodeV1(m))
		if err != nil {
			t.Errorf("%v: v1 frame rejected: %v", m.Kind, err)
			continue
		}
		want := *m
		want.Attempt = 0 // v1 frames have no Attempt field
		want.Epoch = 0   // nor an Epoch
		if fields[m.Kind].episode3 || fields[m.Kind].episode4 {
			want.Episode = 0
		}
		if fields[m.Kind].notices4 {
			want.Notices = nil
		}
		if !reflect.DeepEqual(&want, got) {
			t.Errorf("%v: v1 round trip mismatch:\n got %+v\nwant %+v", m.Kind, got, &want)
		}
	}
}

// TestDecodeV2Compat checks the v3 versioning contract: a v2 frame of a
// v2-or-older kind still decodes (with Epoch zero and, for flushes, no
// Episode stamp), while the v3-only recovery kinds are rejected when
// stamped as v2.
func TestDecodeV2Compat(t *testing.T) {
	for _, m := range sampleMsgs() {
		if m.Kind >= firstV3Kind {
			b := Encode(m)
			b[0] = 2
			if _, err := Decode(b); err == nil {
				t.Errorf("%v: v3-only kind accepted in a v2 frame", m.Kind)
			}
			continue
		}
		got, err := Decode(encodeV2(m))
		if err != nil {
			t.Errorf("%v: v2 frame rejected: %v", m.Kind, err)
			continue
		}
		want := *m
		want.Epoch = 0 // v2 frames have no Epoch field
		if fields[m.Kind].episode3 || fields[m.Kind].episode4 {
			want.Episode = 0
		}
		if fields[m.Kind].notices4 {
			want.Notices = nil
		}
		if fields[m.Kind].term5 {
			want.Term = 0
		}
		if !reflect.DeepEqual(&want, got) {
			t.Errorf("%v: v2 round trip mismatch:\n got %+v\nwant %+v", m.Kind, got, &want)
		}
	}
}

// TestDecodeV3Compat checks the v4 versioning contract: a v3 frame of a
// v3-or-older kind still decodes (without the v4 barrier episode stamp
// or aggregated notices), while the v4-only synchronization kinds are
// rejected when stamped as v3.
func TestDecodeV3Compat(t *testing.T) {
	for _, m := range sampleMsgs() {
		if m.Kind >= firstV4Kind {
			b := Encode(m)
			b[0] = 3
			if _, err := Decode(b); err == nil {
				t.Errorf("%v: v4-only kind accepted in a v3 frame", m.Kind)
			}
			continue
		}
		got, err := Decode(encodeV3(m))
		if err != nil {
			t.Errorf("%v: v3 frame rejected: %v", m.Kind, err)
			continue
		}
		want := *m
		if fields[m.Kind].episode4 {
			want.Episode = 0
		}
		if fields[m.Kind].notices4 {
			want.Notices = nil
		}
		if fields[m.Kind].term5 {
			want.Term = 0
		}
		if !reflect.DeepEqual(&want, got) {
			t.Errorf("%v: v3 round trip mismatch:\n got %+v\nwant %+v", m.Kind, got, &want)
		}
	}
}

// TestDecodeV4Compat checks the v5 versioning contract: a v4 frame of a
// v4-or-older kind still decodes (with the fencing Term zero), while
// the v5-only consensus kinds are rejected when stamped as v4.
func TestDecodeV4Compat(t *testing.T) {
	for _, m := range sampleMsgs() {
		if m.Kind >= firstV5Kind {
			b := Encode(m)
			b[0] = 4
			if _, err := Decode(b); err == nil {
				t.Errorf("%v: v5-only kind accepted in a v4 frame", m.Kind)
			}
			continue
		}
		got, err := Decode(encodeV4(m))
		if err != nil {
			t.Errorf("%v: v4 frame rejected: %v", m.Kind, err)
			continue
		}
		want := *m
		if fields[m.Kind].term5 {
			want.Term = 0
		}
		if !reflect.DeepEqual(&want, got) {
			t.Errorf("%v: v4 round trip mismatch:\n got %+v\nwant %+v", m.Kind, got, &want)
		}
	}
}

// encodeV5 builds a version-5 frame for kinds that existed in v5.
// Version 6 added no fields to pre-v6 kinds — only the four long-haul
// control-plane kinds — so the v5 layout is the full layout restamped.
func encodeV5(m *Msg) []byte {
	b := Encode(m)
	b[0] = 5
	return b
}

// TestDecodeV5Compat checks the v6 versioning contract: a v5 frame of a
// v5-or-older kind still decodes unchanged (v6 widened no existing
// kind), while the v6-only snapshot-transfer and membership kinds are
// rejected when stamped as v5.
func TestDecodeV5Compat(t *testing.T) {
	for _, m := range sampleMsgs() {
		if m.Kind >= firstV6Kind {
			b := Encode(m)
			b[0] = 5
			if _, err := Decode(b); err == nil {
				t.Errorf("%v: v6-only kind accepted in a v5 frame", m.Kind)
			}
			continue
		}
		got, err := Decode(encodeV5(m))
		if err != nil {
			t.Errorf("%v: v5 frame rejected: %v", m.Kind, err)
			continue
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v: v5 round trip mismatch:\n got %+v\nwant %+v", m.Kind, got, m)
		}
	}
}

// TestEncodeUnknownKindPanics pins the programming-error contract.
func TestEncodeUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode of unknown kind did not panic")
		}
	}()
	Encode(&Msg{Kind: 0xEE})
}
