package wire

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFuzzSeedCompleteness asserts every message kind has a FuzzDecode
// corpus seed and a truncated variant, so a new kind cannot ship
// unfuzzed: adding a Kind constant fails this test until the corpus
// covers it. Seeds are named seed-<kindname>[-<n>] with the truncated
// variant ending in "-truncated".
func TestFuzzSeedCompleteness(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	for k := Kind(1); k < kindEnd; k++ {
		kn := k.String()
		if strings.HasPrefix(kn, "kind(") {
			t.Errorf("kind %d has no name; kindNames is incomplete", k)
			continue
		}
		var seed, truncated bool
		for _, name := range names {
			if name == "seed-"+kn || strings.HasPrefix(name, "seed-"+kn+"-") {
				if strings.HasSuffix(name, "-truncated") {
					truncated = true
				} else {
					seed = true
				}
			}
		}
		if !seed {
			t.Errorf("kind %s has no fuzz corpus seed (want %s/seed-%s*)", kn, dir, kn)
		}
		if !truncated {
			t.Errorf("kind %s has no truncated corpus seed (want %s/seed-%s-*-truncated)", kn, dir, kn)
		}
	}
}
