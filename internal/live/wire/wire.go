// Package wire is the versioned binary codec of the live DSM runtime's
// message set. Every frame moved by a transport (in-process channel or
// TCP) is one encoded Msg: a fixed two-byte header (version, kind)
// followed by kind-dependent fields in little-endian fixed-width
// encoding.
//
// Decode is strict and total: truncated frames, unknown versions or
// kinds, oversized counts and trailing garbage all return an error and
// never panic or allocate unboundedly — element counts are validated
// against the bytes actually remaining before any slice is sized.
package wire

import (
	"encoding/binary"
	"fmt"

	"lrcdsm/internal/page"
)

// Version is the wire-format version stamped on every encoded frame.
// Version 2 added the robustness message set (release acks, heartbeats,
// aborts) and an Attempt retransmission counter on request kinds.
// Version 3 added the recovery layer: a cluster Epoch fence on every
// kind, the join/snapshot/resume kinds a restarted node uses to rejoin,
// and a sender-episode stamp on KWriteNotices so homes can gate
// post-checkpoint flushes during capture. Version 4 added the
// decentralized synchronization plane: lock-request forwarding from a
// lock's home to its probable owner, tree-barrier aggregation (an
// episode stamp and aggregated notices on KBarArrive, plus the
// KBarRelease fan-out kind), and on-demand per-writer interval-log
// segment replication. Version 5 added the replicated control plane:
// the consensus kinds (vote-req/vote-resp/append/append-ack) the
// manager quorum elects leaders and commits commands with, the
// not-leader redirect reply, the mgr-snap proposal carrying a barrier
// episode's merged vector time to the leader, and a Term stamp on
// KAbort so a deposed leader's stale abort verdicts are fenced.
// Version 6 added the long-haul control plane: chunked consensus
// snapshot installation (snap-install/snap-ack), with which a leader
// brings a far-behind or freshly seeded replica up after compacting
// its log, and the single-server membership-change RPC pair
// (conf-change/conf-ack) that grows or shrinks the voting quorum
// without a restart. Decode still accepts MinVersion frames — an old
// frame simply has none of the newer fields and cannot carry the newer
// kinds — so a rolling upgrade never wedges on the codec.
const (
	Version    = 6
	MinVersion = 1
)

// MaxFrame is the largest frame Decode accepts (and Encode will produce
// for any sane page size); a length-prefixed transport should enforce the
// same bound before buffering a frame.
const MaxFrame = 16 << 20

// Kind identifies a message type.
type Kind uint8

// The live protocol's message set. Page and diff traffic flows between a
// node and a page's home; lock and barrier traffic flows between a node
// and the centralized manager on node 0.
const (
	// KHello introduces a peer on a fresh transport connection.
	KHello Kind = iota + 1
	// KPageReq asks a page's home for a full current copy.
	KPageReq
	// KPageReply returns the home's copy and its per-writer version.
	KPageReply
	// KDiffReq asks a page's home for the diffs the requester's copy is
	// missing (lazy-hybrid update pulls).
	KDiffReq
	// KDiffReply returns the missing diffs — or, if the home has pruned
	// its diff log past the requester's version, a full copy.
	KDiffReply
	// KWriteNotices flushes a closed interval's write notices and the
	// diffs of the pages homed at the destination.
	KWriteNotices
	// KAck acknowledges a KWriteNotices flush.
	KAck
	// KLockReq asks the manager for a lock, carrying the requester's
	// vector time.
	KLockReq
	// KLockGrant hands the lock to a requester with the release-time
	// vector time and the write notices it is missing.
	KLockGrant
	// KLockRelease returns a lock to the manager, carrying the closed
	// interval (if any) and the releaser's vector time.
	KLockRelease
	// KBarArrive joins a barrier, carrying the closed interval and the
	// arriver's vector time.
	KBarArrive
	// KBarDepart releases a node from a barrier with the merged vector
	// time and the write notices it is missing.
	KBarDepart

	// Version 2 kinds (the robustness layer). firstV2Kind below must stay
	// in sync with the first of them.

	// KReleaseAck acknowledges a KLockRelease, making lock releases
	// retryable RPCs instead of fire-and-forget sends.
	KReleaseAck
	// KHeartbeat is a node's periodic liveness beacon to the manager.
	KHeartbeat
	// KAbort broadcasts a fatal cluster abort with a structured reason.
	KAbort

	// Version 3 kinds (the recovery layer). firstV3Kind below must stay
	// in sync with the first of them.

	// KJoinReq is a restarted node's request to rejoin the cluster,
	// carrying its new incarnation number and the newest checkpoint
	// episode it holds locally (-1 for none).
	KJoinReq
	// KJoinGrant admits a joiner: the checkpoint episode the cluster
	// resumed from, its merged vector time, and how many snapshot chunks
	// the manager's replica can stream if the joiner's store is blank.
	KJoinGrant
	// KSnapReq asks the manager's replica for one chunk of the joiner's
	// checkpoint.
	KSnapReq
	// KSnapChunk returns one checkpointed page (image + per-writer
	// version) of a node snapshot.
	KSnapChunk
	// KSnapPush replicates one checkpointed page from a home to the
	// manager's store (the inverse direction of KSnapChunk).
	KSnapPush
	// KResume tells the manager a rejoined node is live again, re-arming
	// its liveness accounting.
	KResume
	// KCkptDone confirms a node has durably stored its snapshot for an
	// episode; the manager's stable checkpoint is the minimum confirmed
	// episode across nodes.
	KCkptDone

	// Version 4 kinds (the decentralized synchronization plane).
	// firstV4Kind below must stay in sync with the first of them.

	// KLockForward relays a lock request from the lock's home to its
	// probable owner: Token and VT are the original requester's, ReqFrom
	// names the requester so the owner can grant to it directly.
	KLockForward
	// KBarRelease fans a completed barrier episode down the barrier tree
	// with the merged vector time and the episode's aggregated notices.
	KBarRelease
	// KLogSegReq asks a writer for its own interval log entries in the
	// index range (Lo, Hi] — the on-demand segment replication a grant
	// receiver uses when piggybacked notices skip pruned history.
	KLogSegReq
	// KLogSegResp returns the requested interval-log segment as notices.
	KLogSegResp

	// Version 5 kinds (the replicated control plane). firstV5Kind below
	// must stay in sync with the first of them.

	// KVoteReq is a candidate's request for a vote in Term, carrying the
	// position (LogIndex, LogTerm) of its last replicated-log entry so
	// voters can refuse a candidate with a stale log.
	KVoteReq
	// KVoteResp answers a vote request: Flag is 1 if the vote was
	// granted in Term.
	KVoteResp
	// KAppend is the leader's append-entries/heartbeat: Entries extend
	// the follower's log after the (LogIndex, LogTerm) match point, and
	// Commit advertises the leader's commit frontier.
	KAppend
	// KAppendAck answers an append: Flag is 1 on a match-point hit, and
	// LogIndex carries the follower's last matching index (on success)
	// or a back-up hint (on mismatch).
	KAppendAck
	// KNotLeader is a replica's redirect reply to a manager RPC it
	// cannot serve: Leader names the replica's current leader hint (-1
	// for unknown) so the client can re-resolve and retry.
	KNotLeader
	// KMgrSnap proposes a barrier episode's merged vector time to the
	// leader for quorum commit; the barrier root may not be the leader,
	// so the snapshot travels as an RPC before releases fan out.
	KMgrSnap

	// Version 6 kinds (the long-haul control plane). firstV6Kind below
	// must stay in sync with the first of them.

	// KSnapInstall streams one chunk of the leader's consensus snapshot
	// — the compacted committed prefix, folded into an encoded state
	// image — to a replica too far behind its truncated log: LogIndex
	// and LogTerm name the snapshot's position, Chunk/NChunks the
	// stream position, Data the chunk payload.
	KSnapInstall
	// KSnapAck answers a snapshot chunk: Flag is 1 once the snapshot at
	// LogIndex is fully installed, otherwise Chunk names the next chunk
	// the assembling replica expects (its cursor doubles as a resend
	// request after a drop).
	KSnapAck
	// KConfChange asks the manager leader to commit a single-server
	// membership change: Flag is 1 to add (0 to remove) the voting
	// replica named by ReqFrom. At most one change may be uncommitted
	// at a time.
	KConfChange
	// KConfAck answers a membership change: Flag is 1 once the change
	// committed, 0 with Err naming the rejection reason.
	KConfAck

	kindEnd
)

// firstV2Kind is the first kind that requires wire version 2; a v1 frame
// claiming such a kind is rejected.
const firstV2Kind = KReleaseAck

// firstV3Kind is the first kind that requires wire version 3.
const firstV3Kind = KJoinReq

// firstV4Kind is the first kind that requires wire version 4.
const firstV4Kind = KLockForward

// firstV5Kind is the first kind that requires wire version 5.
const firstV5Kind = KVoteReq

// firstV6Kind is the first kind that requires wire version 6.
const firstV6Kind = KSnapInstall

var kindNames = [...]string{
	KHello: "hello", KPageReq: "page-req", KPageReply: "page-reply",
	KDiffReq: "diff-req", KDiffReply: "diff-reply",
	KWriteNotices: "write-notices", KAck: "ack",
	KLockReq: "lock-req", KLockGrant: "lock-grant", KLockRelease: "lock-release",
	KBarArrive: "bar-arrive", KBarDepart: "bar-depart",
	KReleaseAck: "release-ack", KHeartbeat: "heartbeat", KAbort: "abort",
	KJoinReq: "join-req", KJoinGrant: "join-grant",
	KSnapReq: "snap-req", KSnapChunk: "snap-chunk", KSnapPush: "snap-push",
	KResume: "resume", KCkptDone: "ckpt-done",
	KLockForward: "lock-forward", KBarRelease: "bar-release",
	KLogSegReq: "log-seg-req", KLogSegResp: "log-seg-resp",
	KVoteReq: "vote-req", KVoteResp: "vote-resp",
	KAppend: "append", KAppendAck: "append-ack",
	KNotLeader: "not-leader", KMgrSnap: "mgr-snap",
	KSnapInstall: "snap-install", KSnapAck: "snap-ack",
	KConfChange: "conf-change", KConfAck: "conf-ack",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Notice is one interval's write notices: the pages writer's interval
// modified. Receivers invalidate (LI) or refresh (LH) those pages.
type Notice struct {
	Writer int32
	Index  int32
	Pages  []int32
}

// Diff is one page's modifications from one interval, tagged with its
// creator so receivers can track per-writer coverage.
type Diff struct {
	Writer int32
	Index  int32
	D      page.Diff
}

// Interval describes one closed interval: its creator, index, vector
// time, and the pages its write notices cover.
type Interval struct {
	Writer int32
	Index  int32
	VT     []int32
	Pages  []int32
}

// Entry is one replicated-log entry carried by KAppend: the term it was
// proposed in and the opaque encoded manager command.
type Entry struct {
	Term int64
	Cmd  []byte
}

// Msg is one live-protocol message. Only the fields relevant to its Kind
// are encoded; see the per-kind field lists in encode.
type Msg struct {
	Kind  Kind
	From  int32 // sending node
	Token int64 // request/reply correlation (the request ID retries reuse)

	// Attempt counts retransmissions of a request (0 on first send,
	// saturating at 255). Version 2 only: a v1 frame decodes as Attempt 0.
	Attempt uint8

	// Epoch is the cluster recovery epoch the sender belonged to when it
	// sent the frame. Every rollback bumps the epoch, so a delayed frame
	// from a node's previous incarnation — whose tokens restart at 1 and
	// would otherwise collide — is fenced off at the receiver. Version 3
	// only: an older frame decodes as Epoch 0.
	Epoch uint32

	// Incarnation numbers a node's restarts (0 for the original engine);
	// the manager authenticates join/resume requests against it.
	Incarnation uint32

	Lock    int32
	Barrier int32
	Episode int64
	Page    int32
	Chunk   int32  // snapshot chunk index (KSnapReq/KSnapChunk/KSnapPush)
	NChunks int32  // total chunks in the snapshot being streamed
	ReqFrom int32  // original requester of a forwarded lock request
	Lo, Hi  int32  // interval-log segment range (Lo, Hi] (KLogSeg*)
	Err     string // abort reason (KAbort)

	// Consensus fields (version 5). Term also stamps KAbort so a
	// deposed leader's stale abort is fenced at receivers.
	Term     int64 // sender's current term (consensus kinds, KAbort)
	LogIndex int64 // log position: last/prev/match index by kind
	LogTerm  int64 // term of the entry at LogIndex (KVoteReq/KAppend)
	Commit   int64 // leader's commit frontier (KAppend)
	Flag     uint8 // vote granted / append ok (KVoteResp/KAppendAck)
	Leader   int32 // redirect hint, -1 unknown (KNotLeader)

	VT       []int32 // vector time (requester VT, grant VT, page version)
	Data     []byte  // full page image (page/diff replies)
	Diffs    []Diff
	Notices  []Notice
	Interval *Interval // closed interval (release/arrive flushes)
	Entries  []Entry   // replicated-log entries (KAppend)
}

// fieldSet describes which optional fields a kind encodes, so the codec
// stays table-driven and every kind round-trips through one pair of
// routines.
type fieldSet struct {
	lock, barrier, episode, pg     bool
	vt, data, diffs, notices, ival bool
	// attempt marks retryable request kinds; the field was added in
	// version 2, so it is encoded always but decoded only from v2 frames.
	attempt bool
	errstr  bool
	// episode3 marks kinds that gained the Episode field in version 3
	// (the sender-episode stamp on flushes): encoded always, decoded only
	// from v3 frames. Kinds that carried Episode since v1 use episode.
	episode3 bool
	// incarn and chunk are v3-only field groups on v3-only kinds, so they
	// need no version gate of their own.
	incarn bool
	chunk  bool // Chunk + NChunks pair
	// episode4 and notices4 mark fields version 4 added to a pre-v4 kind
	// (the tree barrier's episode stamp and aggregated notices on
	// KBarArrive): encoded always, decoded only from v4 frames.
	episode4 bool
	notices4 bool
	// reqfrom and seg are v4-only field groups on v4-only kinds.
	reqfrom bool
	seg     bool // Lo + Hi pair
	// term5 marks the Term stamp version 5 added to a pre-v5 kind
	// (KAbort's fencing term): encoded always, decoded only from v5
	// frames. The remaining groups sit on v5-only kinds and need no
	// version gate of their own.
	term5   bool
	term    bool
	logidx  bool
	logterm bool
	commit  bool
	flag    bool
	leader  bool
	entries bool
}

var fields = map[Kind]fieldSet{
	KHello:        {},
	KPageReq:      {pg: true, attempt: true},
	KPageReply:    {pg: true, vt: true, data: true},
	KDiffReq:      {pg: true, vt: true, attempt: true},
	KDiffReply:    {pg: true, vt: true, data: true, diffs: true},
	KWriteNotices: {diffs: true, ival: true, attempt: true, episode3: true},
	KAck:          {},
	KLockReq:      {lock: true, vt: true, attempt: true},
	KLockGrant:    {lock: true, vt: true, notices: true, diffs: true},
	KLockRelease:  {lock: true, vt: true, ival: true, attempt: true},
	KBarArrive:    {barrier: true, vt: true, ival: true, attempt: true, episode4: true, notices4: true},
	KBarDepart:    {barrier: true, episode: true, vt: true, notices: true},
	KReleaseAck:   {lock: true},
	KHeartbeat:    {},
	KAbort:        {errstr: true, term5: true},
	KJoinReq:      {incarn: true, episode: true, attempt: true},
	KJoinGrant:    {incarn: true, episode: true, vt: true, chunk: true},
	KSnapReq:      {episode: true, chunk: true, attempt: true},
	KSnapChunk:    {episode: true, pg: true, chunk: true, vt: true, data: true},
	KSnapPush:     {episode: true, pg: true, chunk: true, vt: true, data: true, attempt: true},
	KResume:       {incarn: true, episode: true, attempt: true},
	KCkptDone:     {episode: true, attempt: true},
	KLockForward:  {lock: true, reqfrom: true, vt: true},
	KBarRelease:   {barrier: true, episode: true, vt: true, notices: true},
	KLogSegReq:    {seg: true, attempt: true},
	KLogSegResp:   {seg: true, notices: true},
	KVoteReq:      {term: true, logidx: true, logterm: true},
	KVoteResp:     {term: true, flag: true},
	KAppend:       {term: true, logidx: true, logterm: true, commit: true, entries: true},
	KAppendAck:    {term: true, logidx: true, flag: true},
	KNotLeader:    {term: true, leader: true},
	KMgrSnap:      {episode: true, vt: true, attempt: true},
	KSnapInstall:  {term: true, logidx: true, logterm: true, chunk: true, data: true},
	KSnapAck:      {term: true, logidx: true, chunk: true, flag: true},
	KConfChange:   {flag: true, reqfrom: true, attempt: true},
	KConfAck:      {flag: true, errstr: true},
}

// Encode serializes m into a fresh buffer.
func Encode(m *Msg) []byte {
	fs, ok := fields[m.Kind]
	if !ok {
		panic(fmt.Sprintf("wire: encode of unknown kind %v", m.Kind))
	}
	w := writer{b: make([]byte, 0, 64+len(m.Data))}
	w.u8(Version)
	w.u8(uint8(m.Kind))
	w.i32(m.From)
	w.i64(m.Token)
	w.u32(m.Epoch)
	if fs.attempt {
		w.u8(m.Attempt)
	}
	if fs.incarn {
		w.u32(m.Incarnation)
	}
	if fs.chunk {
		w.i32(m.Chunk)
		w.i32(m.NChunks)
	}
	if fs.term || fs.term5 {
		w.i64(m.Term)
	}
	if fs.logidx {
		w.i64(m.LogIndex)
	}
	if fs.logterm {
		w.i64(m.LogTerm)
	}
	if fs.commit {
		w.i64(m.Commit)
	}
	if fs.flag {
		w.u8(m.Flag)
	}
	if fs.leader {
		w.i32(m.Leader)
	}
	if fs.episode3 {
		w.i64(m.Episode)
	}
	if fs.errstr {
		w.bytes([]byte(m.Err))
	}
	if fs.lock {
		w.i32(m.Lock)
	}
	if fs.reqfrom {
		w.i32(m.ReqFrom)
	}
	if fs.seg {
		w.i32(m.Lo)
		w.i32(m.Hi)
	}
	if fs.barrier {
		w.i32(m.Barrier)
	}
	if fs.episode || fs.episode4 {
		w.i64(m.Episode)
	}
	if fs.pg {
		w.i32(m.Page)
	}
	if fs.vt {
		w.i32slice(m.VT)
	}
	if fs.data {
		w.bytes(m.Data)
	}
	if fs.diffs {
		w.u32(uint32(len(m.Diffs)))
		for i := range m.Diffs {
			w.diff(&m.Diffs[i])
		}
	}
	if fs.notices || fs.notices4 {
		w.u32(uint32(len(m.Notices)))
		for i := range m.Notices {
			n := &m.Notices[i]
			w.i32(n.Writer)
			w.i32(n.Index)
			w.i32slice(n.Pages)
		}
	}
	if fs.ival {
		if m.Interval == nil {
			w.u8(0)
		} else {
			w.u8(1)
			w.i32(m.Interval.Writer)
			w.i32(m.Interval.Index)
			w.i32slice(m.Interval.VT)
			w.i32slice(m.Interval.Pages)
		}
	}
	if fs.entries {
		w.u32(uint32(len(m.Entries)))
		for i := range m.Entries {
			w.i64(m.Entries[i].Term)
			w.bytes(m.Entries[i].Cmd)
		}
	}
	return w.b
}

// Decode parses one frame. It returns an error — never panics — on
// truncated, oversized, or malformed input.
func Decode(b []byte) (*Msg, error) {
	if len(b) > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", len(b))
	}
	r := reader{b: b}
	v := r.u8()
	if r.err == nil && (v < MinVersion || v > Version) {
		return nil, fmt.Errorf("wire: unknown version %d", v)
	}
	k := Kind(r.u8())
	fs, ok := fields[k]
	if r.err == nil && !ok {
		return nil, fmt.Errorf("wire: unknown kind %d", uint8(k))
	}
	if r.err == nil && v < 2 && k >= firstV2Kind {
		return nil, fmt.Errorf("wire: kind %v requires version 2, frame is version %d", k, v)
	}
	if r.err == nil && v < 3 && k >= firstV3Kind {
		return nil, fmt.Errorf("wire: kind %v requires version 3, frame is version %d", k, v)
	}
	if r.err == nil && v < 4 && k >= firstV4Kind {
		return nil, fmt.Errorf("wire: kind %v requires version 4, frame is version %d", k, v)
	}
	if r.err == nil && v < 5 && k >= firstV5Kind {
		return nil, fmt.Errorf("wire: kind %v requires version 5, frame is version %d", k, v)
	}
	if r.err == nil && v < 6 && k >= firstV6Kind {
		return nil, fmt.Errorf("wire: kind %v requires version 6, frame is version %d", k, v)
	}
	m := &Msg{Kind: k}
	m.From = r.i32()
	m.Token = r.i64()
	if v >= 3 {
		m.Epoch = r.u32()
	}
	if fs.attempt && v >= 2 {
		m.Attempt = r.u8()
	}
	if fs.incarn {
		m.Incarnation = r.u32()
	}
	if fs.chunk {
		m.Chunk = r.i32()
		m.NChunks = r.i32()
	}
	if fs.term || (fs.term5 && v >= 5) {
		m.Term = r.i64()
	}
	if fs.logidx {
		m.LogIndex = r.i64()
	}
	if fs.logterm {
		m.LogTerm = r.i64()
	}
	if fs.commit {
		m.Commit = r.i64()
	}
	if fs.flag {
		m.Flag = r.u8()
	}
	if fs.leader {
		m.Leader = r.i32()
	}
	if fs.episode3 && v >= 3 {
		m.Episode = r.i64()
	}
	if fs.errstr {
		if e := r.bytes(); len(e) > 0 {
			m.Err = string(e)
		}
	}
	if fs.lock {
		m.Lock = r.i32()
	}
	if fs.reqfrom {
		m.ReqFrom = r.i32()
	}
	if fs.seg {
		m.Lo = r.i32()
		m.Hi = r.i32()
	}
	if fs.barrier {
		m.Barrier = r.i32()
	}
	if fs.episode || (fs.episode4 && v >= 4) {
		m.Episode = r.i64()
	}
	if fs.pg {
		m.Page = r.i32()
	}
	if fs.vt {
		m.VT = r.i32slice()
	}
	if fs.data {
		m.Data = r.bytes()
	}
	if fs.diffs {
		n := r.count(9) // minimum bytes per encoded diff
		for i := 0; i < n && r.err == nil; i++ {
			m.Diffs = append(m.Diffs, r.diff())
		}
	}
	if fs.notices || (fs.notices4 && v >= 4) {
		n := r.count(12)
		for i := 0; i < n && r.err == nil; i++ {
			var nt Notice
			nt.Writer = r.i32()
			nt.Index = r.i32()
			nt.Pages = r.i32slice()
			m.Notices = append(m.Notices, nt)
		}
	}
	if fs.ival {
		if r.u8() == 1 && r.err == nil {
			iv := &Interval{}
			iv.Writer = r.i32()
			iv.Index = r.i32()
			iv.VT = r.i32slice()
			iv.Pages = r.i32slice()
			m.Interval = iv
		}
	}
	if fs.entries {
		n := r.count(12) // minimum bytes per encoded entry (term + len)
		for i := 0; i < n && r.err == nil; i++ {
			var e Entry
			e.Term = r.i64()
			e.Cmd = r.bytes()
			m.Entries = append(m.Entries, e)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %v", len(b)-r.off, k)
	}
	return m, nil
}

// ---- writer ----

type writer struct{ b []byte }

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }

func (w *writer) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}

func (w *writer) i32slice(v []int32) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.i32(x)
	}
}

func (w *writer) diff(d *Diff) {
	w.i32(d.Writer)
	w.i32(d.Index)
	w.i32(int32(d.D.Page))
	w.u32(uint32(len(d.D.Runs)))
	for _, r := range d.D.Runs {
		w.i32(r.Off)
		w.u32(uint32(len(r.Words)))
		for _, x := range r.Words {
			w.u64(x)
		}
	}
}

// ---- reader ----

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.b)-r.off < n {
		r.fail("truncated frame: need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32 { return int32(r.u32()) }
func (r *reader) i64() int64 { return int64(r.u64()) }

// count reads an element count and validates it against the bytes left,
// assuming each element occupies at least minBytes — an oversized count
// fails immediately instead of driving a huge allocation.
func (r *reader) count(minBytes int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(minBytes) > int64(len(r.b)-r.off) {
		r.fail("oversized count %d (%d bytes remain)", n, len(r.b)-r.off)
		return 0
	}
	return int(n)
}

func (r *reader) bytes() []byte {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b[r.off:r.off+n])
	r.off += n
	return v
}

func (r *reader) i32slice() []int32 {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = r.i32()
	}
	return v
}

func (r *reader) diff() Diff {
	var d Diff
	d.Writer = r.i32()
	d.Index = r.i32()
	d.D.Page = page.ID(r.i32())
	nr := r.count(8)
	for i := 0; i < nr && r.err == nil; i++ {
		var run page.Run
		run.Off = r.i32()
		nw := r.count(8)
		if r.err != nil {
			break
		}
		run.Words = make([]uint64, nw)
		for j := range run.Words {
			run.Words[j] = r.u64()
		}
		d.D.Runs = append(d.D.Runs, run)
	}
	return d
}
