package wire

import (
	"reflect"
	"testing"
)

// FuzzDecode feeds arbitrary frames to Decode. The property is totality:
// Decode must return (msg, nil) or (nil, err) without panicking, and any
// frame it accepts must re-encode to the identical byte string (the
// format has a single canonical encoding per message).
//
// The committed seed corpus under testdata/fuzz/FuzzDecode holds one
// valid frame per message kind plus malformed variants; `go test` always
// runs the corpus, `go test -fuzz=FuzzDecode` explores further.
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMsgs() {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, byte(KPageReply), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			if m != nil {
				t.Fatalf("Decode returned both a message and an error: %v", err)
			}
			return
		}
		re := Encode(m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("re-encode round trip mismatch:\n got %+v\nwant %+v", m2, m)
		}
	})
}
