package live

import (
	"testing"
	"time"

	"lrcdsm/internal/check"
	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
	"lrcdsm/internal/live/transport"
)

// TestTCPLoopbackSmoke runs a small Jacobi on a 2-node cluster over real
// TCP loopback sockets and compares the result regions against a 1-node
// in-process reference. A hard timeout turns a wedged protocol into a
// test failure instead of a hung suite.
func TestTCPLoopbackSmoke(t *testing.T) {
	const nodes = 2
	done := make(chan struct{})
	go func() {
		defer close(done)
		trs, err := transport.NewTCPLoopback(nodes, transport.TCPOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		got, stats := runApp(t, "jacobi", core.LH, nodes, trs)
		if t.Failed() {
			return
		}
		if stats.Total.BytesSent == 0 {
			t.Error("TCP run moved no bytes")
		}
		ref, _ := runApp(t, "jacobi", core.LH, 1, nil)
		app, err := harness.NewApp("jacobi", harness.ScaleTest)
		if err != nil {
			t.Error(err)
			return
		}
		ra := app.(harness.ResultApp)
		for _, v := range check.CompareRegions(got, ref, ra.ResultRegions()) {
			t.Errorf("region mismatch over TCP: %s", v.String())
		}
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("TCP loopback smoke test exceeded hard timeout")
	}
}
