// Package consensus is the replicated control plane's multi-decree log:
// a compact Raft-style replica that elects a leader with randomized
// timeouts, fences every proposal with its term, commits commands on a
// majority of the voting membership, and applies them in log order on
// every replica. It rides the live runtime's existing transport — the
// owning node feeds decoded consensus frames in through Deliver and
// supplies a Send callback for outbound ones — so the quorum shares the
// cluster's sockets, chaos middleware and epoch fencing.
//
// The log is compacted: once the applied prefix outgrows CompactEvery
// entries, the replica folds it into a snapshot (the deterministic
// encoding of the applied state machine, captured through the
// SnapshotState hook) and truncates the log behind it, so unbounded
// runtimes hold bounded memory. A replica whose next needed entry has
// been compacted away — a far-behind follower, or a freshly seeded
// one — is brought up by the leader with a chunked snapshot install
// (KSnapInstall/KSnapAck) instead of entry replay.
//
// The voting membership is dynamic: a committed single-server
// config-change entry adds or removes one voter at a time (ProposeConf,
// at most one change uncommitted at once), which keeps every old-quorum
// and new-quorum majority overlapping — the joint-safety property that
// makes one-at-a-time changes safe without joint consensus.
//
// Durable state (term, vote, snapshot, membership, log) lives in a
// Stable slot the supervisor owns outside the node engine, so a crashed
// node's fresh incarnation cannot vote twice in a term it already voted
// in or forget entries it acknowledged. Every slot is checksummed: a
// corrupt or torn slot is quarantined at load — the replica comes back
// empty, with its votes fenced until a leader re-seeds it through the
// snapshot-install flow — rather than silently diverging or panicking.
package consensus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lrcdsm/internal/live/wire"
)

// Proposals are rejected rather than queued when the replica cannot
// commit them; callers redirect to the current leader and retry.
var (
	ErrNotLeader = errors.New("consensus: not the leader")
	ErrDeposed   = errors.New("consensus: lost leadership before commit")
	ErrStopped   = errors.New("consensus: replica stopped")
	ErrBusy      = errors.New("consensus: proposal queue full")
	// ErrConfPending rejects a membership change while another is still
	// uncommitted: single-server changes are only safe one at a time.
	ErrConfPending = errors.New("consensus: a membership change is already pending")
	// ErrConfInvalid rejects a membership change naming a node outside
	// the cluster or shrinking the voting set below a usable quorum.
	ErrConfInvalid = errors.New("consensus: invalid membership change")
)

// snapChunk is the payload size of one KSnapInstall frame when a
// snapshot is streamed to a re-seeding replica.
const snapChunk = 32 << 10

// ---- durable slot ----

// durable is the decoded content of a Stable slot.
type durable struct {
	term      int64
	votedFor  int32
	snapIndex int64
	snapTerm  int64
	snapshot  []byte
	voters    []int32
	log       []wire.Entry
}

// Stable is one replica's durable consensus state, held as one encoded,
// checksummed blob. The supervisor holds one slot per node across
// restarts; a fresh incarnation loads the term it last voted in and the
// entries it last acknowledged, which is what makes a restarted replica
// safe to re-admit to the quorum. A slot whose checksum fails at load —
// a torn or corrupted write — is quarantined: the load returns empty
// state, the quarantine is counted, and the replica re-seeds from the
// leader instead of trusting bad bytes.
type Stable struct {
	mu          sync.Mutex
	blob        []byte
	quarantines int64

	// Summary fields mirrored out of the last save, so monitors can
	// sample log growth without decoding the blob.
	logLen    int
	snapIndex int64
}

// NewStable returns an empty slot (term 0, no vote, empty log).
func NewStable() *Stable { return &Stable{} }

// load decodes the slot, verifying its checksum. quarantined reports a
// corrupt slot: the returned state is empty and the slot is cleared.
func (s *Stable) load() (durable, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.blob == nil {
		return durable{votedFor: -1}, false
	}
	d, err := decodeSlot(s.blob)
	if err != nil {
		s.blob = nil
		s.logLen, s.snapIndex = 0, 0
		s.quarantines++
		return durable{votedFor: -1}, true
	}
	return d, false
}

func (s *Stable) save(d *durable) {
	b := encodeSlot(d)
	s.mu.Lock()
	s.blob = b
	s.logLen = len(d.log)
	s.snapIndex = d.snapIndex
	s.mu.Unlock()
}

// LogLen reports how many entries the slot's persisted log holds — the
// in-memory log length as of the replica's last persist.
func (s *Stable) LogLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logLen
}

// SnapIndex reports the persisted snapshot's log index (0 = none).
func (s *Stable) SnapIndex() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapIndex
}

// Quarantines reports how many corrupt loads this slot has quarantined.
func (s *Stable) Quarantines() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantines
}

// Corrupt flips one byte of the stored blob — a deliberately torn slot
// for integrity tests. It reports false if the slot is empty.
func (s *Stable) Corrupt() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.blob) == 0 {
		return false
	}
	b := append([]byte(nil), s.blob...)
	b[len(b)/2] ^= 0xFF
	s.blob = b
	return true
}

// encodeSlot serializes d with a trailing CRC32 over everything before
// it. decodeSlot is its strict inverse: any truncation, trailing bytes
// or checksum mismatch is an error, never a panic.
func encodeSlot(d *durable) []byte {
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u64(uint64(d.term))
	u32(uint32(d.votedFor))
	u64(uint64(d.snapIndex))
	u64(uint64(d.snapTerm))
	u32(uint32(len(d.voters)))
	for _, v := range d.voters {
		u32(uint32(v))
	}
	u32(uint32(len(d.snapshot)))
	b = append(b, d.snapshot...)
	u32(uint32(len(d.log)))
	for i := range d.log {
		u64(uint64(d.log[i].Term))
		u32(uint32(len(d.log[i].Cmd)))
		b = append(b, d.log[i].Cmd...)
	}
	u32(crc32.ChecksumIEEE(b))
	return b
}

func decodeSlot(b []byte) (durable, error) {
	var d durable
	if len(b) < 4 {
		return d, fmt.Errorf("consensus: slot of %d bytes is short", len(b))
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return d, fmt.Errorf("consensus: slot checksum mismatch")
	}
	off := 0
	fail := fmt.Errorf("consensus: slot truncated")
	u32 := func() (uint32, bool) {
		if len(body)-off < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(body)-off < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v, true
	}
	t, ok := u64()
	if !ok {
		return d, fail
	}
	d.term = int64(t)
	vf, ok := u32()
	if !ok {
		return d, fail
	}
	d.votedFor = int32(vf)
	si, ok1 := u64()
	st, ok2 := u64()
	if !ok1 || !ok2 {
		return d, fail
	}
	d.snapIndex, d.snapTerm = int64(si), int64(st)
	nv, ok := u32()
	if !ok || int64(nv)*4 > int64(len(body)-off) {
		return d, fail
	}
	for i := 0; i < int(nv); i++ {
		v, _ := u32()
		d.voters = append(d.voters, int32(v))
	}
	ns, ok := u32()
	if !ok || int(ns) > len(body)-off {
		return d, fail
	}
	if ns > 0 {
		d.snapshot = append([]byte(nil), body[off:off+int(ns)]...)
		off += int(ns)
	}
	nl, ok := u32()
	if !ok || int64(nl)*12 > int64(len(body)-off) {
		return d, fail
	}
	for i := 0; i < int(nl); i++ {
		et, ok := u64()
		if !ok {
			return d, fail
		}
		nc, ok := u32()
		if !ok || int(nc) > len(body)-off {
			return d, fail
		}
		var cmd []byte
		if nc > 0 {
			cmd = append([]byte(nil), body[off:off+int(nc)]...)
			off += int(nc)
		}
		d.log = append(d.log, wire.Entry{Term: int64(et), Cmd: cmd})
	}
	if off != len(body) {
		return d, fmt.Errorf("consensus: %d trailing slot bytes", len(body)-off)
	}
	return d, nil
}

// ---- snapshot blob ----

// encodeSnap wraps the application state image with the voting
// membership as of the snapshot index, so an installed snapshot seeds
// both the state machine and the receiver's config.
func encodeSnap(voters []int32, app []byte) []byte {
	b := make([]byte, 0, 8+4*len(voters)+len(app))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(voters)))
	for _, v := range voters {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(app)))
	b = append(b, app...)
	return b
}

func decodeSnap(b []byte) (voters []int32, app []byte, err error) {
	bad := fmt.Errorf("consensus: malformed snapshot blob (%d bytes)", len(b))
	if len(b) < 8 {
		return nil, nil, bad
	}
	nv := int(binary.LittleEndian.Uint32(b))
	off := 4
	if int64(nv)*4 > int64(len(b)-off-4) {
		return nil, nil, bad
	}
	for i := 0; i < nv; i++ {
		voters = append(voters, int32(binary.LittleEndian.Uint32(b[off:])))
		off += 4
	}
	na := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if na != len(b)-off {
		return nil, nil, bad
	}
	return voters, b[off:], nil
}

// ---- membership-change commands ----

// confMagic prefixes a consensus-internal config-change command in the
// replicated log; the application's Apply never sees these entries.
// Manager opcodes are small (see node/mstate.go), so the prefix cannot
// collide.
const confMagic byte = 0xC6

func encodeConfCmd(add bool, node int) []byte {
	b := make([]byte, 6)
	b[0] = confMagic
	if add {
		b[1] = 1
	}
	binary.LittleEndian.PutUint32(b[2:], uint32(node))
	return b
}

func decodeConfCmd(cmd []byte) (add bool, node int, ok bool) {
	if len(cmd) != 6 || cmd[0] != confMagic {
		return false, 0, false
	}
	return cmd[1] == 1, int(binary.LittleEndian.Uint32(cmd[2:])), true
}

// Counters points into the owning node's stat fields; nil pointers are
// skipped so tests can run replicas without a node.
type Counters struct {
	Terms, Elections, Commits *int64
	Compactions, SnapInstalls *int64
	ConfChanges, Quarantines  *int64
}

func bump(p *int64) {
	if p != nil {
		atomic.AddInt64(p, 1)
	}
}

// Config wires a replica to its node.
type Config struct {
	Self int
	N    int

	// Voters names the initial voting membership (nil: every node in
	// [0, N)). A non-voter still runs a replica — it applies what a
	// leader sends it and can be promoted by a committed config change —
	// but never campaigns and its vote is not counted. Ignored when the
	// Stable slot already persists a membership.
	Voters []int

	// ElectionTimeout is the base leader-silence window before a
	// follower stands for election; each deadline is drawn uniformly
	// from [T, 2T) so split votes break symmetry. HeartbeatEvery is the
	// leader's empty-append cadence and must be well under T.
	ElectionTimeout time.Duration
	HeartbeatEvery  time.Duration
	Seed            int64

	// CompactEvery folds the applied prefix into a snapshot and
	// truncates the log once it exceeds this many applied entries.
	// Non-positive disables compaction. Requires SnapshotState.
	CompactEvery int64

	// Send transmits one frame to a peer (never Self). It must not
	// block indefinitely; consensus tolerates dropped frames.
	Send func(to int, m *wire.Msg)
	// Apply consumes entry index (1-based) with its command bytes, in
	// log order, exactly once per replica lifetime. A nil/empty command
	// is a leadership no-op and is still delivered. Config-change
	// entries are consumed by the replica itself and never reach Apply.
	Apply func(index int64, cmd []byte)
	// SnapshotState captures the application state machine exactly as
	// of the applied prefix, deterministically encoded. Called from the
	// replica goroutine, synchronously with Apply.
	SnapshotState func() []byte
	// InstallState replaces the application state machine with a
	// snapshot image (the inverse of SnapshotState). Called from the
	// replica goroutine, and once from New when the slot holds a
	// snapshot.
	InstallState func(app []byte)
	// LeaderChange reports every observed leadership or term change.
	// Optional.
	LeaderChange func(term int64, leader int, isLeader bool)

	// Bootstrap seeds a cold cluster (empty Stable everywhere) with
	// node 0 as leader of term 1, skipping the startup election. A
	// replica restarting with non-empty state — or one whose slot was
	// quarantined — ignores it.
	Bootstrap bool

	Counters Counters
}

const (
	follower = iota
	candidate
	leader
)

// maxBatch bounds entries per append frame; a lagging follower catches
// up over successive acks rather than one giant frame.
const maxBatch = 64

type proposal struct {
	cmd  []byte
	conf bool
	done func(error)
}

// Info is a point-in-time leadership snapshot.
type Info struct {
	Term     int64
	Leader   int // -1 unknown
	IsLeader bool
	Voters   []int // sorted voting membership
}

// snapXfer is the leader's cursor into one outbound snapshot stream.
type snapXfer struct {
	index, term int64
	blob        []byte
	next        int32
}

// snapAsm reassembles an inbound snapshot stream on a follower.
type snapAsm struct {
	index, term int64
	nchunks     int32
	next        int32
	buf         []byte
}

// Rep is one consensus replica. All protocol state is owned by the
// event-loop goroutine; Deliver/Propose/Leader are safe from any
// goroutine.
type Rep struct {
	cfg Config
	st  *Stable
	rng *rand.Rand

	inbox chan *wire.Msg
	props chan proposal
	quit  chan struct{}
	done  chan struct{}
	once  sync.Once

	// Event-loop state.
	role     int
	term     int64
	votedFor int32
	log      []wire.Entry // entries (snapIndex, lastIndex]
	commit   int64
	applied  int64
	leader   int // current hint, -1 unknown
	votes    map[int]bool
	next     []int64
	match    []int64
	pending  map[int64][]func(error)
	electAt  time.Time // follower/candidate: election deadline
	beatAt   time.Time // leader: next heartbeat

	// Compaction state: the log is truncated at snapIndex, whose entry
	// had term snapTerm; snap is the encoded snapshot covering
	// [1, snapIndex].
	snapIndex int64
	snapTerm  int64
	snap      []byte

	// Membership state: the voting set, and the log index of an
	// uncommitted config change (0 = none; at most one at a time).
	voters      map[int]bool
	confPending int64

	// Snapshot streaming: per-peer outbound cursors (leader) and the
	// inbound assembly (follower).
	xfer map[int]*snapXfer
	asm  *snapAsm

	// fenced marks a replica whose slot was quarantined at load: it
	// must not vote or campaign — its lost slot may have held a vote
	// for the current term — and it refuses plain entry replay,
	// NACKing appends with Flag 2 until a leader re-seeds it with a
	// snapshot install (cut on demand if none exists yet).
	fenced bool

	info atomic.Value // Info
}

// New builds a replica over st. Call Start to run it.
func New(cfg Config, st *Stable) *Rep {
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 500 * time.Millisecond
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.ElectionTimeout / 10
	}
	r := &Rep{
		cfg:     cfg,
		st:      st,
		rng:     rand.New(rand.NewSource(cfg.Seed*1315423911 + int64(cfg.Self)<<8 + 1)),
		inbox:   make(chan *wire.Msg, 1024),
		props:   make(chan proposal, 256),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		leader:  -1,
		votes:   map[int]bool{},
		next:    make([]int64, cfg.N),
		match:   make([]int64, cfg.N),
		pending: map[int64][]func(error){},
		voters:  map[int]bool{},
		xfer:    map[int]*snapXfer{},
	}
	d, quarantined := st.load()
	if quarantined {
		r.fenced = true
		bump(cfg.Counters.Quarantines)
	}
	r.term, r.votedFor = d.term, d.votedFor
	r.snapIndex, r.snapTerm, r.snap = d.snapIndex, d.snapTerm, d.snapshot
	r.log = d.log
	r.commit, r.applied = d.snapIndex, d.snapIndex
	switch {
	case len(d.voters) > 0:
		for _, v := range d.voters {
			r.voters[int(v)] = true
		}
	case cfg.Voters != nil:
		for _, v := range cfg.Voters {
			if v >= 0 && v < cfg.N {
				r.voters[v] = true
			}
		}
	default:
		for p := 0; p < cfg.N; p++ {
			r.voters[p] = true
		}
	}
	if len(r.snap) > 0 && cfg.InstallState != nil {
		// The state machine resumes from the persisted snapshot; the log
		// suffix replays on top as commit advances.
		if _, app, err := decodeSnap(r.snap); err == nil {
			cfg.InstallState(app)
		}
	}
	if cfg.Bootstrap && !quarantined && r.term == 0 && len(r.log) == 0 && r.snapIndex == 0 {
		// Cold cluster: every replica deterministically agrees node 0
		// leads term 1, as if an election already ran.
		r.term, r.votedFor = 1, 0
		r.persist()
		if cfg.Self == 0 {
			r.role = leader
			r.leader = 0
		} else {
			r.leader = 0
		}
	}
	r.updateInfo()
	return r
}

// Start launches the event loop.
func (r *Rep) Start() {
	go r.run()
}

// Stop terminates the loop and fails outstanding proposals.
func (r *Rep) Stop() {
	r.once.Do(func() { close(r.quit) })
	<-r.done
}

// Deliver hands a decoded consensus frame to the replica. Never blocks:
// a full inbox drops the frame (retransmission is inherent — leaders
// re-append, candidates re-elect).
func (r *Rep) Deliver(m *wire.Msg) {
	select {
	case r.inbox <- m:
	case <-r.quit:
	default:
	}
}

// Propose submits a command for quorum commit. done fires exactly once,
// from the replica goroutine: nil after the command is committed and
// applied locally, or an error if this replica is not the leader, loses
// leadership first, or stops.
func (r *Rep) Propose(cmd []byte, done func(error)) {
	r.submit(proposal{cmd: cmd, done: done})
}

// ProposeConf submits a single-server membership change: add (or
// remove) node as a voter. At most one change may be uncommitted at a
// time (ErrConfPending); a change that would shrink the voting set
// below three or names a node outside the cluster is rejected
// (ErrConfInvalid). done fires like Propose's.
func (r *Rep) ProposeConf(add bool, node int, done func(error)) {
	r.submit(proposal{cmd: encodeConfCmd(add, node), conf: true, done: done})
}

func (r *Rep) submit(p proposal) {
	if p.done == nil {
		p.done = func(error) {}
	}
	select {
	case r.props <- p:
	case <-r.quit:
		p.done(ErrStopped)
	default:
		p.done(ErrBusy)
	}
}

// Leader reports the replica's current view of leadership.
func (r *Rep) Leader() Info {
	return r.info.Load().(Info)
}

func (r *Rep) run() {
	defer close(r.done)
	defer r.failPending(ErrStopped)
	if r.role == leader {
		r.broadcast()
		r.beatAt = time.Now().Add(r.cfg.HeartbeatEvery)
	} else {
		r.resetElectionTimer()
	}
	tick := r.cfg.HeartbeatEvery / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.quit:
			return
		case m := <-r.inbox:
			r.step(m)
		case p := <-r.props:
			r.propose(p)
		case <-ticker.C:
			r.tickTimers()
		}
	}
}

func (r *Rep) tickTimers() {
	now := time.Now()
	if r.role == leader {
		if now.After(r.beatAt) {
			r.broadcast()
			r.beatAt = now.Add(r.cfg.HeartbeatEvery)
		}
		return
	}
	if now.After(r.electAt) {
		r.startElection()
	}
}

func (r *Rep) resetElectionTimer() {
	t := r.cfg.ElectionTimeout
	r.electAt = time.Now().Add(t + time.Duration(r.rng.Int63n(int64(t))))
}

func (r *Rep) lastIndex() int64 { return r.snapIndex + int64(len(r.log)) }

// entryAt returns the entry at 1-based index i, which must lie in
// (snapIndex, lastIndex].
func (r *Rep) entryAt(i int64) *wire.Entry { return &r.log[i-r.snapIndex-1] }

func (r *Rep) termAt(i int64) int64 {
	switch {
	case i == r.snapIndex:
		return r.snapTerm
	case i <= r.snapIndex || i > r.lastIndex():
		return 0
	default:
		return r.entryAt(i).Term
	}
}

func (r *Rep) votersList() []int32 {
	vs := make([]int32, 0, len(r.voters))
	for v := range r.voters {
		vs = append(vs, int32(v))
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

func (r *Rep) persist() {
	r.st.save(&durable{
		term: r.term, votedFor: r.votedFor,
		snapIndex: r.snapIndex, snapTerm: r.snapTerm, snapshot: r.snap,
		voters: r.votersList(), log: r.log,
	})
}

func (r *Rep) updateInfo() {
	vs := make([]int, 0, len(r.voters))
	for v := range r.voters {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	r.info.Store(Info{Term: r.term, Leader: r.leader, IsLeader: r.role == leader, Voters: vs})
	if r.cfg.LeaderChange != nil {
		r.cfg.LeaderChange(r.term, r.leader, r.role == leader)
	}
}

// adoptTerm steps down into t's follower. ldr is the known leader of t
// (-1 when learned from a vote exchange).
func (r *Rep) adoptTerm(t int64, ldr int) {
	wasLeader := r.role == leader
	r.term, r.votedFor, r.role, r.leader = t, -1, follower, ldr
	r.votes = map[int]bool{}
	r.xfer = map[int]*snapXfer{}
	r.persist()
	bump(r.cfg.Counters.Terms)
	if wasLeader {
		r.failPending(ErrDeposed)
	}
	r.resetElectionTimer()
	r.updateInfo()
}

func (r *Rep) failPending(err error) {
	for idx, cbs := range r.pending {
		for _, cb := range cbs {
			cb(err)
		}
		delete(r.pending, idx)
	}
}

func (r *Rep) startElection() {
	if !r.voters[r.cfg.Self] || r.fenced {
		// A non-voter (or a quarantined replica awaiting its re-seed)
		// never campaigns; it waits for a leader to reach it.
		r.resetElectionTimer()
		return
	}
	r.role = candidate
	r.term++
	r.votedFor = int32(r.cfg.Self)
	r.leader = -1
	r.votes = map[int]bool{r.cfg.Self: true}
	r.persist()
	bump(r.cfg.Counters.Terms)
	bump(r.cfg.Counters.Elections)
	r.resetElectionTimer()
	r.updateInfo()
	if r.wonElection() {
		r.becomeLeader()
		return
	}
	for p := range r.voters {
		if p == r.cfg.Self {
			continue
		}
		r.cfg.Send(p, &wire.Msg{
			Kind: wire.KVoteReq, Term: r.term,
			LogIndex: r.lastIndex(), LogTerm: r.termAt(r.lastIndex()),
		})
	}
}

func (r *Rep) wonElection() bool { return 2*len(r.votes) > len(r.voters) }

func (r *Rep) becomeLeader() {
	r.role = leader
	r.leader = r.cfg.Self
	for p := 0; p < r.cfg.N; p++ {
		r.next[p] = r.lastIndex() + 1
		r.match[p] = 0
	}
	r.match[r.cfg.Self] = r.lastIndex()
	r.xfer = map[int]*snapXfer{}
	// Re-derive the one-pending-change gate from the uncommitted log
	// suffix: a config entry a dead leader appended is now ours to see
	// through before any new change is admitted.
	r.confPending = 0
	for i := r.commit + 1; i <= r.lastIndex(); i++ {
		if _, _, ok := decodeConfCmd(r.entryAt(i).Cmd); ok {
			r.confPending = i
		}
	}
	r.updateInfo()
	// Commit an entry of our own term immediately so the leader's
	// applied state machine is current before it serves reads.
	r.appendLocal(nil)
	r.broadcast()
	r.beatAt = time.Now().Add(r.cfg.HeartbeatEvery)
}

func (r *Rep) appendLocal(cmd []byte) int64 {
	r.log = append(r.log, wire.Entry{Term: r.term, Cmd: cmd})
	r.persist()
	idx := r.lastIndex()
	r.match[r.cfg.Self] = idx
	r.advanceCommit()
	return idx
}

func (r *Rep) propose(p proposal) {
	if r.role != leader {
		p.done(ErrNotLeader)
		return
	}
	if p.conf {
		add, nd, _ := decodeConfCmd(p.cmd)
		if err := r.confAllowed(add, nd); err != nil {
			p.done(err)
			return
		}
		if add == r.voters[nd] {
			p.done(nil) // already in the desired state
			return
		}
	}
	idx := r.appendLocal(p.cmd)
	if p.conf {
		r.confPending = idx
	}
	if r.pending[idx] != nil || idx > r.applied {
		r.pending[idx] = append(r.pending[idx], p.done)
	} else {
		// Single-replica quorum: the entry already committed and
		// applied inside appendLocal.
		p.done(nil)
		return
	}
	r.broadcast()
	r.beatAt = time.Now().Add(r.cfg.HeartbeatEvery)
}

func (r *Rep) confAllowed(add bool, nd int) error {
	if nd < 0 || nd >= r.cfg.N {
		return ErrConfInvalid
	}
	if r.confPending != 0 {
		return ErrConfPending
	}
	if !add && r.voters[nd] && len(r.voters) <= 3 {
		// Shrinking below three voters leaves a quorum that cannot
		// survive the failures it exists for.
		return ErrConfInvalid
	}
	return nil
}

func (r *Rep) broadcast() {
	for p := range r.voters {
		if p != r.cfg.Self {
			r.sendAppend(p)
		}
	}
	// Keep streaming to peers mid-snapshot-install even if a config
	// change just removed them from the voting set.
	for p := range r.xfer {
		if !r.voters[p] && p != r.cfg.Self {
			r.sendSnapshot(p)
		}
	}
}

func (r *Rep) sendAppend(to int) {
	prev := r.next[to] - 1
	if prev < 0 {
		prev = 0
	}
	if prev < r.snapIndex {
		// The entries the follower needs are compacted away: stream the
		// snapshot instead.
		r.sendSnapshot(to)
		return
	}
	var entries []wire.Entry
	if n := r.lastIndex() - prev; n > 0 {
		if n > maxBatch {
			n = maxBatch
		}
		base := prev - r.snapIndex
		entries = append(entries, r.log[base:base+n]...)
	}
	r.cfg.Send(to, &wire.Msg{
		Kind: wire.KAppend, Term: r.term,
		LogIndex: prev, LogTerm: r.termAt(prev),
		Commit: r.commit, Entries: entries,
	})
}

// sendSnapshot sends the next chunk of the leader's snapshot to a
// replica whose needed entries were compacted away. One chunk flies per
// ack (or heartbeat resend), so a slow receiver never sees an unbounded
// burst.
func (r *Rep) sendSnapshot(to int) {
	x := r.xfer[to]
	if x == nil || x.index != r.snapIndex {
		x = &snapXfer{index: r.snapIndex, term: r.snapTerm, blob: r.snap}
		r.xfer[to] = x
	}
	total := int32((len(x.blob) + snapChunk - 1) / snapChunk)
	if total == 0 {
		total = 1
	}
	if x.next >= total {
		x.next = total - 1
	}
	lo := int(x.next) * snapChunk
	hi := lo + snapChunk
	if hi > len(x.blob) {
		hi = len(x.blob)
	}
	var data []byte
	if lo < hi {
		data = x.blob[lo:hi]
	}
	r.cfg.Send(to, &wire.Msg{
		Kind: wire.KSnapInstall, Term: r.term,
		LogIndex: x.index, LogTerm: x.term,
		Chunk: x.next, NChunks: total, Data: data,
	})
}

func (r *Rep) advanceCommit() {
	for idx := r.commit + 1; idx <= r.lastIndex(); idx++ {
		if r.termAt(idx) != r.term {
			continue // only entries of the current term commit by counting
		}
		n := 0
		for p := range r.voters {
			if r.match[p] >= idx {
				n++
			}
		}
		if 2*n > len(r.voters) {
			r.commit = idx
		}
	}
	r.applyCommitted()
}

func (r *Rep) applyCommitted() {
	for r.applied < r.commit {
		r.applied++
		e := r.entryAt(r.applied)
		bump(r.cfg.Counters.Commits)
		if add, nd, ok := decodeConfCmd(e.Cmd); ok {
			r.applyConf(add, nd)
		} else if r.cfg.Apply != nil {
			r.cfg.Apply(r.applied, e.Cmd)
		}
		if r.confPending != 0 && r.applied >= r.confPending {
			r.confPending = 0
		}
		if cbs := r.pending[r.applied]; cbs != nil {
			delete(r.pending, r.applied)
			for _, cb := range cbs {
				cb(nil)
			}
		}
	}
	r.maybeCompact()
}

// applyConf applies a committed single-server membership change. The
// change takes effect at commit on every replica; because changes are
// serialized one at a time, any majority of the pre-change voters and
// any majority of the post-change voters overlap, so no two leaders can
// be elected by disjoint quorums across the transition.
func (r *Rep) applyConf(add bool, nd int) {
	if nd < 0 || nd >= r.cfg.N {
		return
	}
	changed := false
	if add {
		if !r.voters[nd] {
			r.voters[nd] = true
			changed = true
		}
	} else if r.voters[nd] {
		delete(r.voters, nd)
		changed = true
	}
	if !changed {
		return
	}
	bump(r.cfg.Counters.ConfChanges)
	r.persist()
	if r.role == leader && add && nd != r.cfg.Self {
		// Start replicating to the new voter; its empty log backs the
		// cursor up into the snapshot-install path if we have compacted.
		r.next[nd] = r.lastIndex() + 1
		r.match[nd] = 0
		r.sendAppend(nd)
	}
	if !add {
		delete(r.xfer, nd)
		if nd == r.cfg.Self && r.role == leader {
			// We removed ourselves: step down and let the remaining
			// voters elect.
			r.role, r.leader = follower, -1
			r.failPending(ErrDeposed)
			r.resetElectionTimer()
		}
	}
	r.updateInfo()
}

// maybeCompact folds the applied prefix into a snapshot and truncates
// the log once the prefix outgrows CompactEvery. Every replica compacts
// independently: the state machine is deterministic, so equal applied
// indexes mean equal snapshots.
func (r *Rep) maybeCompact() {
	ce := r.cfg.CompactEvery
	if ce <= 0 || r.applied-r.snapIndex < ce {
		return
	}
	r.compact()
}

// compact folds the applied prefix into a snapshot unconditionally;
// callers decide the cadence (the periodic CompactEvery threshold, or
// on demand when a fenced replica must be re-seeded and no snapshot
// exists yet).
func (r *Rep) compact() {
	if r.cfg.SnapshotState == nil || r.applied <= r.snapIndex {
		return
	}
	app := r.cfg.SnapshotState()
	r.snap = encodeSnap(r.votersList(), app)
	keep := r.applied - r.snapIndex
	r.snapTerm = r.termAt(r.applied)
	r.log = append([]wire.Entry(nil), r.log[keep:]...)
	r.snapIndex = r.applied
	r.persist()
	bump(r.cfg.Counters.Compactions)
}

func (r *Rep) step(m *wire.Msg) {
	if m.Term > r.term {
		ldr := -1
		if m.Kind == wire.KAppend || m.Kind == wire.KSnapInstall {
			ldr = int(m.From)
		}
		r.adoptTerm(m.Term, ldr)
	}
	switch m.Kind {
	case wire.KVoteReq:
		r.onVoteReq(m)
	case wire.KVoteResp:
		r.onVoteResp(m)
	case wire.KAppend:
		r.onAppend(m)
	case wire.KAppendAck:
		r.onAppendAck(m)
	case wire.KSnapInstall:
		r.onSnapInstall(m)
	case wire.KSnapAck:
		r.onSnapAck(m)
	}
}

func (r *Rep) onVoteReq(m *wire.Msg) {
	granted := false
	if m.Term == r.term && !r.fenced && (r.votedFor == -1 || r.votedFor == m.From) {
		last := r.lastIndex()
		upToDate := m.LogTerm > r.termAt(last) ||
			(m.LogTerm == r.termAt(last) && m.LogIndex >= last)
		if upToDate {
			granted = true
			if r.votedFor != m.From {
				r.votedFor = m.From
				r.persist()
			}
			r.resetElectionTimer()
		}
	}
	resp := &wire.Msg{Kind: wire.KVoteResp, Term: r.term}
	if granted {
		resp.Flag = 1
	}
	r.cfg.Send(int(m.From), resp)
}

func (r *Rep) onVoteResp(m *wire.Msg) {
	if r.role != candidate || m.Term != r.term || m.Flag != 1 {
		return
	}
	if !r.voters[int(m.From)] {
		return // only voters count toward the majority
	}
	r.votes[int(m.From)] = true
	if r.wonElection() {
		r.becomeLeader()
	}
}

// followLeader adopts m's sender as the legitimate leader of the
// current term (append and snapshot-install frames both prove it).
func (r *Rep) followLeader(m *wire.Msg) {
	if r.role != follower || r.leader != int(m.From) {
		wasLeader := r.role == leader
		r.role, r.leader = follower, int(m.From)
		r.votes = map[int]bool{}
		if wasLeader {
			r.failPending(ErrDeposed)
		}
		r.updateInfo()
	}
	r.resetElectionTimer()
}

func (r *Rep) onAppend(m *wire.Msg) {
	if m.Term < r.term {
		r.cfg.Send(int(m.From), &wire.Msg{Kind: wire.KAppendAck, Term: r.term})
		return
	}
	// m.Term == r.term: the sender is the legitimate leader of this term.
	r.followLeader(m)
	if r.fenced {
		// A quarantined slot means our durable history is gone: refuse
		// entry replay outright and demand a leader-certified snapshot
		// (Flag 2), so the re-seed never trusts replayed state against
		// an empty match point.
		r.cfg.Send(int(m.From), &wire.Msg{Kind: wire.KAppendAck, Term: r.term, Flag: 2})
		return
	}
	prev := m.LogIndex
	logTerm := m.LogTerm
	entries := m.Entries
	if prev < r.snapIndex {
		// Our snapshot already covers part of this append: skip the
		// entries the snapshot subsumes and rebase the match point onto
		// the snapshot boundary.
		skip := r.snapIndex - prev
		if skip >= int64(len(entries)) {
			r.cfg.Send(int(m.From), &wire.Msg{
				Kind: wire.KAppendAck, Term: r.term, LogIndex: r.snapIndex, Flag: 1,
			})
			return
		}
		logTerm = entries[skip-1].Term
		entries = entries[skip:]
		prev = r.snapIndex
	}
	if prev > r.lastIndex() || r.termAt(prev) != logTerm {
		// Match-point miss: back the leader up past our shorter/conflicting
		// suffix in one hop.
		hint := prev - 1
		if last := r.lastIndex(); hint > last {
			hint = last
		}
		if hint < r.snapIndex {
			hint = r.snapIndex
		}
		r.cfg.Send(int(m.From), &wire.Msg{
			Kind: wire.KAppendAck, Term: r.term, LogIndex: hint,
		})
		return
	}
	changed := false
	for i, e := range entries {
		idx := prev + int64(i) + 1
		if idx <= r.lastIndex() {
			if r.termAt(idx) == e.Term {
				continue
			}
			r.log = r.log[:idx-r.snapIndex-1] // conflict: truncate our divergent suffix
		}
		// Clone the command bytes: e.Cmd sub-slices the decoded frame,
		// and the log outlives the frame buffer by the whole run.
		r.log = append(r.log, wire.Entry{Term: e.Term, Cmd: append([]byte(nil), e.Cmd...)})
		changed = true
	}
	if changed {
		r.persist()
	}
	newLast := prev + int64(len(entries))
	if m.Commit > r.commit {
		c := m.Commit
		if last := r.lastIndex(); c > last {
			c = last
		}
		r.commit = c
		r.applyCommitted()
	}
	r.cfg.Send(int(m.From), &wire.Msg{
		Kind: wire.KAppendAck, Term: r.term, LogIndex: newLast, Flag: 1,
	})
}

func (r *Rep) onAppendAck(m *wire.Msg) {
	if r.role != leader || m.Term != r.term {
		return
	}
	from := int(m.From)
	if m.Flag == 2 {
		// A fenced replica refuses replay: it must be re-seeded from a
		// snapshot. Cut one on demand if the committed prefix has not
		// been compacted yet; with nothing applied there is nothing to
		// seed from, and the next heartbeat retries.
		if r.snapIndex == 0 {
			r.compact()
			if r.snapIndex == 0 {
				return
			}
		}
		r.next[from] = r.snapIndex + 1
		r.match[from] = 0
		r.sendSnapshot(from)
		return
	}
	if m.Flag == 1 {
		if m.LogIndex > r.match[from] {
			r.match[from] = m.LogIndex
		}
		if m.LogIndex+1 > r.next[from] {
			r.next[from] = m.LogIndex + 1
		}
		r.advanceCommit()
		if r.next[from] <= r.lastIndex() {
			r.sendAppend(from) // keep a lagging follower streaming
		}
		return
	}
	// Mismatch: adopt the follower's back-up hint and retry.
	hint := m.LogIndex + 1
	if hint < 1 {
		hint = 1
	}
	if hint < r.next[from] {
		r.next[from] = hint
	} else if r.next[from] > 1 {
		r.next[from]--
	}
	r.sendAppend(from)
}

func (r *Rep) onSnapInstall(m *wire.Msg) {
	if m.Term < r.term {
		r.cfg.Send(int(m.From), &wire.Msg{Kind: wire.KSnapAck, Term: r.term})
		return
	}
	r.followLeader(m)
	idx, tm := m.LogIndex, m.LogTerm
	if idx <= r.snapIndex || (idx <= r.lastIndex() && r.termAt(idx) == tm) {
		// Already covered: tell the leader to resume entry replication.
		r.cfg.Send(int(m.From), &wire.Msg{
			Kind: wire.KSnapAck, Term: r.term, LogIndex: idx, Flag: 1,
		})
		return
	}
	a := r.asm
	if m.Chunk == 0 && (a == nil || a.index != idx || a.term != tm) {
		a = &snapAsm{index: idx, term: tm, nchunks: m.NChunks}
		r.asm = a
	}
	if a == nil || a.index != idx || a.term != tm || m.Chunk != a.next {
		// Out of sync (dropped or duplicated chunk): tell the leader
		// which chunk the assembly actually needs.
		var next int32
		if a != nil && a.index == idx && a.term == tm {
			next = a.next
		}
		r.cfg.Send(int(m.From), &wire.Msg{
			Kind: wire.KSnapAck, Term: r.term, LogIndex: idx, Chunk: next,
		})
		return
	}
	a.buf = append(a.buf, m.Data...)
	a.next++
	if a.next < a.nchunks {
		r.cfg.Send(int(m.From), &wire.Msg{
			Kind: wire.KSnapAck, Term: r.term, LogIndex: idx, Chunk: a.next,
		})
		return
	}
	r.asm = nil
	r.installSnapshot(idx, tm, a.buf)
	r.cfg.Send(int(m.From), &wire.Msg{
		Kind: wire.KSnapAck, Term: r.term, LogIndex: idx, Chunk: a.next, Flag: 1,
	})
}

// installSnapshot replaces this replica's log prefix and state machine
// with a fully assembled leader snapshot. It also lifts the quarantine
// fence: the replica now holds leader-certified durable state again.
func (r *Rep) installSnapshot(idx, tm int64, blob []byte) {
	if idx <= r.applied {
		return
	}
	voters, app, err := decodeSnap(blob)
	if err != nil {
		return // corrupt transfer; the leader's resend will rebuild it
	}
	r.snapIndex, r.snapTerm, r.snap = idx, tm, blob
	r.log = nil
	r.commit, r.applied = idx, idx
	r.voters = map[int]bool{}
	for _, v := range voters {
		r.voters[int(v)] = true
	}
	if r.cfg.InstallState != nil {
		r.cfg.InstallState(app)
	}
	r.fenced = false
	r.persist()
	bump(r.cfg.Counters.SnapInstalls)
	r.updateInfo()
}

func (r *Rep) onSnapAck(m *wire.Msg) {
	if r.role != leader || m.Term != r.term {
		return
	}
	from := int(m.From)
	if m.Flag == 1 {
		delete(r.xfer, from)
		if m.LogIndex > r.match[from] {
			r.match[from] = m.LogIndex
		}
		if m.LogIndex+1 > r.next[from] {
			r.next[from] = m.LogIndex + 1
		}
		r.advanceCommit()
		if r.next[from] <= r.lastIndex() {
			r.sendAppend(from)
		}
		return
	}
	x := r.xfer[from]
	if x == nil {
		r.sendAppend(from) // re-derive entries vs snapshot from the cursor
		return
	}
	if x.index == m.LogIndex {
		x.next = m.Chunk
	}
	r.sendSnapshot(from)
}
