// Package consensus is the replicated control plane's multi-decree log:
// a compact Raft-style replica that elects a leader with randomized
// timeouts, fences every proposal with its term, commits commands on a
// majority of the full membership, and applies them in log order on
// every replica. It rides the live runtime's existing transport — the
// owning node feeds decoded consensus frames in through Deliver and
// supplies a Send callback for outbound ones — so the quorum shares the
// cluster's sockets, chaos middleware and epoch fencing.
//
// The log is never compacted: manager commands are tiny (a few dozen
// bytes) and arrive at checkpoint cadence, so even long soaks stay in
// the kilobytes. Durable state (term, vote, log) lives in a Stable slot
// the supervisor owns outside the node engine, so a crashed node's
// fresh incarnation cannot vote twice in a term it already voted in or
// forget entries it acknowledged.
package consensus

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lrcdsm/internal/live/wire"
)

// Proposals are rejected rather than queued when the replica cannot
// commit them; callers redirect to the current leader and retry.
var (
	ErrNotLeader = errors.New("consensus: not the leader")
	ErrDeposed   = errors.New("consensus: lost leadership before commit")
	ErrStopped   = errors.New("consensus: replica stopped")
	ErrBusy      = errors.New("consensus: proposal queue full")
)

// Stable is one replica's durable consensus state. The supervisor holds
// one slot per node across restarts; a fresh incarnation loads the term
// it last voted in and the entries it last acknowledged, which is what
// makes a restarted replica safe to re-admit to the quorum.
type Stable struct {
	mu       sync.Mutex
	term     int64
	votedFor int32
	log      []wire.Entry
}

// NewStable returns an empty slot (term 0, no vote, empty log).
func NewStable() *Stable { return &Stable{votedFor: -1} }

func (s *Stable) load() (int64, int32, []wire.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.term, s.votedFor, append([]wire.Entry(nil), s.log...)
}

func (s *Stable) save(term int64, votedFor int32, log []wire.Entry) {
	s.mu.Lock()
	s.term, s.votedFor = term, votedFor
	//dsmlint:ignore vtalias the replica clones command bytes out of decoded frames before they reach its log, and commands are immutable after creation; the slot and the replica share them read-only
	s.log = append(s.log[:0], log...)
	s.mu.Unlock()
}

// Counters points into the owning node's stat fields; nil pointers are
// skipped so tests can run replicas without a node.
type Counters struct {
	Terms, Elections, Commits *int64
}

func bump(p *int64) {
	if p != nil {
		atomic.AddInt64(p, 1)
	}
}

// Config wires a replica to its node.
type Config struct {
	Self int
	N    int

	// ElectionTimeout is the base leader-silence window before a
	// follower stands for election; each deadline is drawn uniformly
	// from [T, 2T) so split votes break symmetry. HeartbeatEvery is the
	// leader's empty-append cadence and must be well under T.
	ElectionTimeout time.Duration
	HeartbeatEvery  time.Duration
	Seed            int64

	// Send transmits one frame to a peer (never Self). It must not
	// block indefinitely; consensus tolerates dropped frames.
	Send func(to int, m *wire.Msg)
	// Apply consumes entry index (1-based) with its command bytes, in
	// log order, exactly once per replica lifetime. A nil/empty command
	// is a leadership no-op and is still delivered.
	Apply func(index int64, cmd []byte)
	// LeaderChange reports every observed leadership or term change.
	// Optional.
	LeaderChange func(term int64, leader int, isLeader bool)

	// Bootstrap seeds a cold cluster (empty Stable everywhere) with
	// node 0 as leader of term 1, skipping the startup election. A
	// replica restarting with non-empty state ignores it.
	Bootstrap bool

	Counters Counters
}

const (
	follower = iota
	candidate
	leader
)

// maxBatch bounds entries per append frame; a lagging follower catches
// up over successive acks rather than one giant frame.
const maxBatch = 64

type proposal struct {
	cmd  []byte
	done func(error)
}

// Info is a point-in-time leadership snapshot.
type Info struct {
	Term     int64
	Leader   int // -1 unknown
	IsLeader bool
}

// Rep is one consensus replica. All protocol state is owned by the
// event-loop goroutine; Deliver/Propose/Leader are safe from any
// goroutine.
type Rep struct {
	cfg Config
	st  *Stable
	rng *rand.Rand

	inbox chan *wire.Msg
	props chan proposal
	quit  chan struct{}
	done  chan struct{}
	once  sync.Once

	// Event-loop state.
	role     int
	term     int64
	votedFor int32
	log      []wire.Entry
	commit   int64
	applied  int64
	leader   int // current hint, -1 unknown
	votes    map[int]bool
	next     []int64
	match    []int64
	pending  map[int64][]func(error)
	electAt  time.Time // follower/candidate: election deadline
	beatAt   time.Time // leader: next heartbeat

	info atomic.Value // Info
}

// New builds a replica over st. Call Start to run it.
func New(cfg Config, st *Stable) *Rep {
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 500 * time.Millisecond
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.ElectionTimeout / 10
	}
	r := &Rep{
		cfg:     cfg,
		st:      st,
		rng:     rand.New(rand.NewSource(cfg.Seed*1315423911 + int64(cfg.Self)<<8 + 1)),
		inbox:   make(chan *wire.Msg, 1024),
		props:   make(chan proposal, 256),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		leader:  -1,
		votes:   map[int]bool{},
		next:    make([]int64, cfg.N),
		match:   make([]int64, cfg.N),
		pending: map[int64][]func(error){},
	}
	r.term, r.votedFor, r.log = st.load()
	if cfg.Bootstrap && r.term == 0 && len(r.log) == 0 {
		// Cold cluster: every replica deterministically agrees node 0
		// leads term 1, as if an election already ran.
		r.term, r.votedFor = 1, 0
		r.persist()
		if cfg.Self == 0 {
			r.role = leader
			r.leader = 0
		} else {
			r.leader = 0
		}
	}
	r.updateInfo()
	return r
}

// Start launches the event loop.
func (r *Rep) Start() {
	go r.run()
}

// Stop terminates the loop and fails outstanding proposals.
func (r *Rep) Stop() {
	r.once.Do(func() { close(r.quit) })
	<-r.done
}

// Deliver hands a decoded consensus frame to the replica. Never blocks:
// a full inbox drops the frame (retransmission is inherent — leaders
// re-append, candidates re-elect).
func (r *Rep) Deliver(m *wire.Msg) {
	select {
	case r.inbox <- m:
	case <-r.quit:
	default:
	}
}

// Propose submits a command for quorum commit. done fires exactly once,
// from the replica goroutine: nil after the command is committed and
// applied locally, or an error if this replica is not the leader, loses
// leadership first, or stops.
func (r *Rep) Propose(cmd []byte, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	select {
	case r.props <- proposal{cmd, done}:
	case <-r.quit:
		done(ErrStopped)
	default:
		done(ErrBusy)
	}
}

// Leader reports the replica's current view of leadership.
func (r *Rep) Leader() Info {
	return r.info.Load().(Info)
}

func (r *Rep) run() {
	defer close(r.done)
	defer r.failPending(ErrStopped)
	if r.role == leader {
		r.broadcast()
		r.beatAt = time.Now().Add(r.cfg.HeartbeatEvery)
	} else {
		r.resetElectionTimer()
	}
	tick := r.cfg.HeartbeatEvery / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.quit:
			return
		case m := <-r.inbox:
			r.step(m)
		case p := <-r.props:
			r.propose(p)
		case <-ticker.C:
			r.tickTimers()
		}
	}
}

func (r *Rep) tickTimers() {
	now := time.Now()
	if r.role == leader {
		if now.After(r.beatAt) {
			r.broadcast()
			r.beatAt = now.Add(r.cfg.HeartbeatEvery)
		}
		return
	}
	if now.After(r.electAt) {
		r.startElection()
	}
}

func (r *Rep) resetElectionTimer() {
	t := r.cfg.ElectionTimeout
	r.electAt = time.Now().Add(t + time.Duration(r.rng.Int63n(int64(t))))
}

func (r *Rep) lastIndex() int64 { return int64(len(r.log)) }

func (r *Rep) termAt(i int64) int64 {
	if i <= 0 || i > int64(len(r.log)) {
		return 0
	}
	return r.log[i-1].Term
}

func (r *Rep) persist() { r.st.save(r.term, r.votedFor, r.log) }

func (r *Rep) updateInfo() {
	r.info.Store(Info{Term: r.term, Leader: r.leader, IsLeader: r.role == leader})
	if r.cfg.LeaderChange != nil {
		r.cfg.LeaderChange(r.term, r.leader, r.role == leader)
	}
}

// adoptTerm steps down into t's follower. ldr is the known leader of t
// (-1 when learned from a vote exchange).
func (r *Rep) adoptTerm(t int64, ldr int) {
	wasLeader := r.role == leader
	r.term, r.votedFor, r.role, r.leader = t, -1, follower, ldr
	r.votes = map[int]bool{}
	r.persist()
	bump(r.cfg.Counters.Terms)
	if wasLeader {
		r.failPending(ErrDeposed)
	}
	r.resetElectionTimer()
	r.updateInfo()
}

func (r *Rep) failPending(err error) {
	for idx, cbs := range r.pending {
		for _, cb := range cbs {
			cb(err)
		}
		delete(r.pending, idx)
	}
}

func (r *Rep) startElection() {
	r.role = candidate
	r.term++
	r.votedFor = int32(r.cfg.Self)
	r.leader = -1
	r.votes = map[int]bool{r.cfg.Self: true}
	r.persist()
	bump(r.cfg.Counters.Terms)
	bump(r.cfg.Counters.Elections)
	r.resetElectionTimer()
	r.updateInfo()
	if r.wonElection() {
		r.becomeLeader()
		return
	}
	for p := 0; p < r.cfg.N; p++ {
		if p == r.cfg.Self {
			continue
		}
		r.cfg.Send(p, &wire.Msg{
			Kind: wire.KVoteReq, Term: r.term,
			LogIndex: r.lastIndex(), LogTerm: r.termAt(r.lastIndex()),
		})
	}
}

func (r *Rep) wonElection() bool { return len(r.votes) > r.cfg.N/2 }

func (r *Rep) becomeLeader() {
	r.role = leader
	r.leader = r.cfg.Self
	for p := 0; p < r.cfg.N; p++ {
		r.next[p] = r.lastIndex() + 1
		r.match[p] = 0
	}
	r.match[r.cfg.Self] = r.lastIndex()
	r.updateInfo()
	// Commit an entry of our own term immediately so the leader's
	// applied state machine is current before it serves reads.
	r.appendLocal(nil)
	r.broadcast()
	r.beatAt = time.Now().Add(r.cfg.HeartbeatEvery)
}

func (r *Rep) appendLocal(cmd []byte) int64 {
	r.log = append(r.log, wire.Entry{Term: r.term, Cmd: cmd})
	r.persist()
	idx := r.lastIndex()
	r.match[r.cfg.Self] = idx
	r.advanceCommit()
	return idx
}

func (r *Rep) propose(p proposal) {
	if r.role != leader {
		p.done(ErrNotLeader)
		return
	}
	idx := r.appendLocal(p.cmd)
	if r.pending[idx] != nil || idx > r.applied {
		r.pending[idx] = append(r.pending[idx], p.done)
	} else {
		// Single-replica quorum: the entry already committed and
		// applied inside appendLocal.
		p.done(nil)
		return
	}
	r.broadcast()
	r.beatAt = time.Now().Add(r.cfg.HeartbeatEvery)
}

func (r *Rep) broadcast() {
	for p := 0; p < r.cfg.N; p++ {
		if p != r.cfg.Self {
			r.sendAppend(p)
		}
	}
}

func (r *Rep) sendAppend(to int) {
	prev := r.next[to] - 1
	if prev < 0 {
		prev = 0
	}
	var entries []wire.Entry
	if n := r.lastIndex() - prev; n > 0 {
		if n > maxBatch {
			n = maxBatch
		}
		entries = append(entries, r.log[prev:prev+n]...)
	}
	r.cfg.Send(to, &wire.Msg{
		Kind: wire.KAppend, Term: r.term,
		LogIndex: prev, LogTerm: r.termAt(prev),
		Commit: r.commit, Entries: entries,
	})
}

func (r *Rep) advanceCommit() {
	for idx := r.commit + 1; idx <= r.lastIndex(); idx++ {
		if r.termAt(idx) != r.term {
			continue // only entries of the current term commit by counting
		}
		n := 0
		for p := 0; p < r.cfg.N; p++ {
			if r.match[p] >= idx {
				n++
			}
		}
		if n > r.cfg.N/2 {
			r.commit = idx
		}
	}
	r.applyCommitted()
}

func (r *Rep) applyCommitted() {
	for r.applied < r.commit {
		r.applied++
		e := r.log[r.applied-1]
		bump(r.cfg.Counters.Commits)
		if r.cfg.Apply != nil {
			r.cfg.Apply(r.applied, e.Cmd)
		}
		if cbs := r.pending[r.applied]; cbs != nil {
			delete(r.pending, r.applied)
			for _, cb := range cbs {
				cb(nil)
			}
		}
	}
}

func (r *Rep) step(m *wire.Msg) {
	if m.Term > r.term {
		ldr := -1
		if m.Kind == wire.KAppend {
			ldr = int(m.From)
		}
		r.adoptTerm(m.Term, ldr)
	}
	switch m.Kind {
	case wire.KVoteReq:
		r.onVoteReq(m)
	case wire.KVoteResp:
		r.onVoteResp(m)
	case wire.KAppend:
		r.onAppend(m)
	case wire.KAppendAck:
		r.onAppendAck(m)
	}
}

func (r *Rep) onVoteReq(m *wire.Msg) {
	granted := false
	if m.Term == r.term && (r.votedFor == -1 || r.votedFor == m.From) {
		last := r.lastIndex()
		upToDate := m.LogTerm > r.termAt(last) ||
			(m.LogTerm == r.termAt(last) && m.LogIndex >= last)
		if upToDate {
			granted = true
			if r.votedFor != m.From {
				r.votedFor = m.From
				r.persist()
			}
			r.resetElectionTimer()
		}
	}
	resp := &wire.Msg{Kind: wire.KVoteResp, Term: r.term}
	if granted {
		resp.Flag = 1
	}
	r.cfg.Send(int(m.From), resp)
}

func (r *Rep) onVoteResp(m *wire.Msg) {
	if r.role != candidate || m.Term != r.term || m.Flag != 1 {
		return
	}
	r.votes[int(m.From)] = true
	if r.wonElection() {
		r.becomeLeader()
	}
}

func (r *Rep) onAppend(m *wire.Msg) {
	if m.Term < r.term {
		r.cfg.Send(int(m.From), &wire.Msg{Kind: wire.KAppendAck, Term: r.term})
		return
	}
	// m.Term == r.term: the sender is the legitimate leader of this term.
	if r.role != follower || r.leader != int(m.From) {
		wasLeader := r.role == leader
		r.role, r.leader = follower, int(m.From)
		r.votes = map[int]bool{}
		if wasLeader {
			r.failPending(ErrDeposed)
		}
		r.updateInfo()
	}
	r.resetElectionTimer()
	prev := m.LogIndex
	if prev > r.lastIndex() || r.termAt(prev) != m.LogTerm {
		// Match-point miss: back the leader up past our shorter/conflicting
		// suffix in one hop.
		hint := prev - 1
		if last := r.lastIndex(); hint > last {
			hint = last
		}
		if hint < 0 {
			hint = 0
		}
		r.cfg.Send(int(m.From), &wire.Msg{
			Kind: wire.KAppendAck, Term: r.term, LogIndex: hint,
		})
		return
	}
	changed := false
	for i, e := range m.Entries {
		idx := prev + int64(i) + 1
		if idx <= r.lastIndex() {
			if r.termAt(idx) == e.Term {
				continue
			}
			r.log = r.log[:idx-1] // conflict: truncate our divergent suffix
		}
		// Clone the command bytes: e.Cmd sub-slices the decoded frame,
		// and the log outlives the frame buffer by the whole run.
		r.log = append(r.log, wire.Entry{Term: e.Term, Cmd: append([]byte(nil), e.Cmd...)})
		changed = true
	}
	if changed {
		r.persist()
	}
	newLast := prev + int64(len(m.Entries))
	if m.Commit > r.commit {
		c := m.Commit
		if last := r.lastIndex(); c > last {
			c = last
		}
		r.commit = c
		r.applyCommitted()
	}
	r.cfg.Send(int(m.From), &wire.Msg{
		Kind: wire.KAppendAck, Term: r.term, LogIndex: newLast, Flag: 1,
	})
}

func (r *Rep) onAppendAck(m *wire.Msg) {
	if r.role != leader || m.Term != r.term {
		return
	}
	from := int(m.From)
	if m.Flag == 1 {
		if m.LogIndex > r.match[from] {
			r.match[from] = m.LogIndex
		}
		if m.LogIndex+1 > r.next[from] {
			r.next[from] = m.LogIndex + 1
		}
		r.advanceCommit()
		if r.next[from] <= r.lastIndex() {
			r.sendAppend(from) // keep a lagging follower streaming
		}
		return
	}
	// Mismatch: adopt the follower's back-up hint and retry.
	hint := m.LogIndex + 1
	if hint < 1 {
		hint = 1
	}
	if hint < r.next[from] {
		r.next[from] = hint
	} else if r.next[from] > 1 {
		r.next[from]--
	}
	r.sendAppend(from)
}
