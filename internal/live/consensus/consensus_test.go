package consensus

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lrcdsm/internal/live/wire"
)

// harness wires N replicas through an in-memory network with cuttable
// links and per-replica apply logs, so protocol behavior is testable
// without the live engine.
type harness struct {
	t       *testing.T
	n       int
	mu      sync.Mutex
	reps    []*Rep
	stables []*Stable
	down    []bool
	cut     map[[2]int]bool
	applied [][]string // per-replica apply log ("idx:cmd")
}

func newHarness(t *testing.T, n int, timeout time.Duration) *harness {
	h := &harness{
		t: t, n: n,
		reps:    make([]*Rep, n),
		stables: make([]*Stable, n),
		down:    make([]bool, n),
		cut:     map[[2]int]bool{},
		applied: make([][]string, n),
	}
	for i := 0; i < n; i++ {
		h.stables[i] = NewStable()
		h.reps[i] = h.build(i, timeout)
		h.reps[i].Start()
	}
	return h
}

func (h *harness) build(i int, timeout time.Duration) *Rep {
	return New(Config{
		Self: i, N: h.n,
		ElectionTimeout: timeout,
		HeartbeatEvery:  timeout / 10,
		Seed:            int64(42 + i),
		Send:            h.sender(i),
		Apply: func(idx int64, cmd []byte) {
			h.mu.Lock()
			h.applied[i] = append(h.applied[i], fmt.Sprintf("%d:%s", idx, cmd))
			h.mu.Unlock()
		},
		Bootstrap: true,
	}, h.stables[i])
}

func (h *harness) sender(from int) func(int, *wire.Msg) {
	return func(to int, m *wire.Msg) {
		h.mu.Lock()
		blocked := h.down[from] || h.down[to] ||
			h.cut[[2]int{from, to}] || h.cut[[2]int{to, from}]
		r := h.reps[to]
		h.mu.Unlock()
		if blocked || r == nil {
			return
		}
		mm := *m
		mm.From = int32(from)
		r.Deliver(&mm)
	}
}

func (h *harness) stopAll() {
	for _, r := range h.reps {
		r.Stop()
	}
}

// kill silences a replica's links and stops it (engine death).
func (h *harness) kill(i int) {
	h.mu.Lock()
	h.down[i] = true
	h.mu.Unlock()
	h.reps[i].Stop()
}

// restart rebuilds replica i over its surviving Stable slot. The apply
// log is reset: a fresh incarnation rebuilds its state machine by
// replaying the replicated log from index 1, so "exactly once" holds
// per replica lifetime, not across restarts.
func (h *harness) restart(i int, timeout time.Duration) {
	r := h.build(i, timeout)
	h.mu.Lock()
	h.reps[i] = r
	h.down[i] = false
	h.applied[i] = nil
	h.mu.Unlock()
	r.Start()
}

// waitLeader polls until exactly one live replica claims leadership and
// returns its id.
func (h *harness) waitLeader(exclude ...int) int {
	excluded := map[int]bool{}
	for _, e := range exclude {
		excluded[e] = true
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < h.n; i++ {
			h.mu.Lock()
			dead := h.down[i]
			r := h.reps[i]
			h.mu.Unlock()
			if dead || excluded[i] {
				continue
			}
			if info := r.Leader(); info.IsLeader {
				return i
			}
		}
		time.Sleep(time.Millisecond)
	}
	h.t.Fatal("no leader elected within 10s")
	return -1
}

// proposeOK proposes on replica i and waits for commit.
func (h *harness) proposeOK(i int, cmd string) error {
	errc := make(chan error, 1)
	h.reps[i].Propose([]byte(cmd), func(err error) { errc <- err })
	select {
	case err := <-errc:
		return err
	case <-time.After(10 * time.Second):
		return fmt.Errorf("proposal %q on %d did not resolve", cmd, i)
	}
}

// waitApplied polls until replica i's apply log contains cmd.
func (h *harness) waitApplied(i int, cmd string) {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		h.mu.Lock()
		for _, a := range h.applied[i] {
			if strings.HasSuffix(a, ":"+cmd) {
				h.mu.Unlock()
				return
			}
		}
		h.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.t.Fatalf("replica %d never applied %q (log: %v)", i, cmd, h.applied[i])
}

// TestBootstrapCommit: a cold 3-replica cluster needs no election —
// node 0 leads term 1 — and a committed command applies on every
// replica in log order.
func TestBootstrapCommit(t *testing.T) {
	h := newHarness(t, 3, 200*time.Millisecond)
	defer h.stopAll()

	if ld := h.waitLeader(); ld != 0 {
		t.Fatalf("bootstrap leader = %d, want 0", ld)
	}
	for k := 0; k < 5; k++ {
		if err := h.proposeOK(0, fmt.Sprintf("cmd-%d", k)); err != nil {
			t.Fatalf("propose cmd-%d: %v", k, err)
		}
	}
	for i := 0; i < 3; i++ {
		h.waitApplied(i, "cmd-4")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := 1; i < 3; i++ {
		if fmt.Sprint(h.applied[i]) != fmt.Sprint(h.applied[0]) {
			t.Fatalf("replica %d apply order diverged:\n %v\nvs\n %v", i, h.applied[i], h.applied[0])
		}
	}
}

// TestProposeOnFollowerRejected: a follower refuses proposals with
// ErrNotLeader so callers redirect instead of committing nothing.
func TestProposeOnFollowerRejected(t *testing.T) {
	h := newHarness(t, 3, 200*time.Millisecond)
	defer h.stopAll()
	h.waitLeader()
	if err := h.proposeOK(1, "nope"); err != ErrNotLeader {
		t.Fatalf("follower proposal returned %v, want ErrNotLeader", err)
	}
}

// TestLeaderFailover: killing the bootstrap leader elects a survivor,
// which commits new commands on the remaining majority.
func TestLeaderFailover(t *testing.T) {
	h := newHarness(t, 3, 100*time.Millisecond)
	defer h.stopAll()

	h.waitLeader()
	if err := h.proposeOK(0, "before"); err != nil {
		t.Fatalf("pre-crash propose: %v", err)
	}
	h.kill(0)
	ld := h.waitLeader(0)
	if ld == 0 {
		t.Fatal("dead node claimed leadership")
	}
	if err := h.proposeOK(ld, "after"); err != nil {
		t.Fatalf("post-failover propose on %d: %v", ld, err)
	}
	for _, i := range []int{1, 2} {
		h.waitApplied(i, "before")
		h.waitApplied(i, "after")
	}
}

// TestRestartCatchUp: the killed bootstrap leader restarts over its
// Stable slot as a follower, adopts the new leader's term, and catches
// up on entries committed while it was down — including entries its
// old incarnation never saw.
func TestRestartCatchUp(t *testing.T) {
	h := newHarness(t, 3, 100*time.Millisecond)
	defer h.stopAll()

	h.waitLeader()
	if err := h.proposeOK(0, "epoch0"); err != nil {
		t.Fatal(err)
	}
	h.kill(0)
	ld := h.waitLeader(0)
	if err := h.proposeOK(ld, "while-down"); err != nil {
		t.Fatal(err)
	}
	h.restart(0, 100*time.Millisecond)
	h.waitApplied(0, "epoch0")
	h.waitApplied(0, "while-down")

	// The restarted replica must not have double-applied anything.
	h.mu.Lock()
	seen := map[string]int{}
	for _, a := range h.applied[0] {
		seen[a]++
	}
	h.mu.Unlock()
	for a, n := range seen {
		if n != 1 {
			t.Fatalf("entry %q applied %d times on restarted replica", a, n)
		}
	}
}

// TestPartitionedLeaderDeposed: cutting the leader away from both
// followers elects a new leader; proposals on the stale leader fail
// rather than commit, and after the partition heals the old leader
// adopts the higher term and converges on the survivors' log.
func TestPartitionedLeaderDeposed(t *testing.T) {
	h := newHarness(t, 3, 100*time.Millisecond)
	defer h.stopAll()

	h.waitLeader()
	if err := h.proposeOK(0, "shared"); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	h.cut[[2]int{0, 1}] = true
	h.cut[[2]int{0, 2}] = true
	h.mu.Unlock()

	ld := h.waitLeader(0)
	if err := h.proposeOK(ld, "majority-side"); err != nil {
		t.Fatalf("majority-side propose: %v", err)
	}
	// The stale leader can still accept a proposal into its log, but it
	// must never commit: the callback must resolve with an error once
	// the healed partition deposes it.
	errc := make(chan error, 1)
	h.reps[0].Propose([]byte("stale-side"), func(err error) { errc <- err })

	h.mu.Lock()
	delete(h.cut, [2]int{0, 1})
	delete(h.cut, [2]int{0, 2})
	h.mu.Unlock()

	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("minority-partition proposal committed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stale proposal never resolved after heal")
	}
	h.waitApplied(0, "majority-side")
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, a := range h.applied[0] {
		if strings.HasSuffix(a, ":stale-side") {
			t.Fatalf("stale leader's uncommitted entry was applied: %v", h.applied[0])
		}
	}
}

// TestTermsMonotonicAcrossRestart: a restarted replica resumes from its
// persisted term, so it can never grant a second vote in a term its
// previous incarnation already voted in.
func TestTermsMonotonicAcrossRestart(t *testing.T) {
	h := newHarness(t, 3, 100*time.Millisecond)
	defer h.stopAll()
	h.waitLeader()
	h.kill(1)
	before := h.reps[1].Leader().Term
	h.restart(1, 100*time.Millisecond)
	if after := h.reps[1].Leader().Term; after < before {
		t.Fatalf("restarted replica forgot its term: %d < %d", after, before)
	}
}
