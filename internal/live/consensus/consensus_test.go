package consensus

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lrcdsm/internal/live/wire"
)

// repCounters mirrors the node stat fields a replica bumps, so tests
// can assert on compaction/snapshot/membership activity without a node.
type repCounters struct {
	terms, elections, commits int64
	compactions, snapInstalls int64
	confChanges, quarantines  int64
}

// harness wires N replicas through an in-memory network with cuttable
// links and per-replica apply logs, so protocol behavior is testable
// without the live engine. The "state machine" under replication is the
// apply log itself: snapshots serialize it newline-joined, so a replica
// seeded by snapshot install resumes with the exact prefix the leader
// had applied.
type harness struct {
	t            *testing.T
	n            int
	compactEvery int64
	voters       []int
	mu           sync.Mutex
	reps         []*Rep
	stables      []*Stable
	counters     []repCounters
	down         []bool
	cut          map[[2]int]bool
	applied      [][]string // per-replica apply log ("idx:cmd")
}

func newHarness(t *testing.T, n int, timeout time.Duration) *harness {
	return newHarnessOpt(t, n, timeout, 0, nil)
}

// newHarnessOpt builds a cluster with log compaction every compactEvery
// applied entries (0 disables) and an initial voting membership (nil:
// all n nodes vote).
func newHarnessOpt(t *testing.T, n int, timeout time.Duration, compactEvery int64, voters []int) *harness {
	h := &harness{
		t: t, n: n,
		compactEvery: compactEvery,
		voters:       voters,
		reps:         make([]*Rep, n),
		stables:      make([]*Stable, n),
		counters:     make([]repCounters, n),
		down:         make([]bool, n),
		cut:          map[[2]int]bool{},
		applied:      make([][]string, n),
	}
	for i := 0; i < n; i++ {
		h.stables[i] = NewStable()
		h.reps[i] = h.build(i, timeout)
		h.reps[i].Start()
	}
	return h
}

func (h *harness) build(i int, timeout time.Duration) *Rep {
	c := &h.counters[i]
	return New(Config{
		Self: i, N: h.n,
		Voters:          h.voters,
		ElectionTimeout: timeout,
		HeartbeatEvery:  timeout / 10,
		Seed:            int64(42 + i),
		CompactEvery:    h.compactEvery,
		Send:            h.sender(i),
		Apply: func(idx int64, cmd []byte) {
			h.mu.Lock()
			h.applied[i] = append(h.applied[i], fmt.Sprintf("%d:%s", idx, cmd))
			h.mu.Unlock()
		},
		SnapshotState: func() []byte {
			h.mu.Lock()
			defer h.mu.Unlock()
			return []byte(strings.Join(h.applied[i], "\n"))
		},
		InstallState: func(app []byte) {
			h.mu.Lock()
			defer h.mu.Unlock()
			if len(app) == 0 {
				h.applied[i] = nil
			} else {
				h.applied[i] = strings.Split(string(app), "\n")
			}
		},
		Counters: Counters{
			Terms: &c.terms, Elections: &c.elections, Commits: &c.commits,
			Compactions: &c.compactions, SnapInstalls: &c.snapInstalls,
			ConfChanges: &c.confChanges, Quarantines: &c.quarantines,
		},
		Bootstrap: true,
	}, h.stables[i])
}

func (h *harness) sender(from int) func(int, *wire.Msg) {
	return func(to int, m *wire.Msg) {
		h.mu.Lock()
		blocked := h.down[from] || h.down[to] ||
			h.cut[[2]int{from, to}] || h.cut[[2]int{to, from}]
		r := h.reps[to]
		h.mu.Unlock()
		if blocked || r == nil {
			return
		}
		mm := *m
		mm.From = int32(from)
		r.Deliver(&mm)
	}
}

func (h *harness) stopAll() {
	for _, r := range h.reps {
		r.Stop()
	}
}

// kill silences a replica's links and stops it (engine death).
func (h *harness) kill(i int) {
	h.mu.Lock()
	h.down[i] = true
	h.mu.Unlock()
	h.reps[i].Stop()
}

// restart rebuilds replica i over its surviving Stable slot. The apply
// log is reset: a fresh incarnation rebuilds its state machine by
// replaying the replicated log from index 1, so "exactly once" holds
// per replica lifetime, not across restarts.
func (h *harness) restart(i int, timeout time.Duration) {
	r := h.build(i, timeout)
	h.mu.Lock()
	h.reps[i] = r
	h.down[i] = false
	h.applied[i] = nil
	h.mu.Unlock()
	r.Start()
}

// restartFresh rebuilds replica i over a brand-new Stable slot — the
// live analogue of losing the durable state entirely (disk
// replacement). The replica must be re-seeded by the leader.
func (h *harness) restartFresh(i int, timeout time.Duration) {
	h.stables[i] = NewStable()
	h.restart(i, timeout)
}

// proposeConfOK proposes a membership change on replica i and waits for
// it to resolve.
func (h *harness) proposeConfOK(i int, add bool, node int) error {
	errc := make(chan error, 1)
	h.reps[i].ProposeConf(add, node, func(err error) { errc <- err })
	select {
	case err := <-errc:
		return err
	case <-time.After(10 * time.Second):
		return fmt.Errorf("conf change (add=%v node=%d) on %d did not resolve", add, node, i)
	}
}

// waitLeader polls until exactly one live replica claims leadership and
// returns its id.
func (h *harness) waitLeader(exclude ...int) int {
	excluded := map[int]bool{}
	for _, e := range exclude {
		excluded[e] = true
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < h.n; i++ {
			h.mu.Lock()
			dead := h.down[i]
			r := h.reps[i]
			h.mu.Unlock()
			if dead || excluded[i] {
				continue
			}
			if info := r.Leader(); info.IsLeader {
				return i
			}
		}
		time.Sleep(time.Millisecond)
	}
	h.t.Fatal("no leader elected within 10s")
	return -1
}

// proposeOK proposes on replica i and waits for commit.
func (h *harness) proposeOK(i int, cmd string) error {
	errc := make(chan error, 1)
	h.reps[i].Propose([]byte(cmd), func(err error) { errc <- err })
	select {
	case err := <-errc:
		return err
	case <-time.After(10 * time.Second):
		return fmt.Errorf("proposal %q on %d did not resolve", cmd, i)
	}
}

// waitApplied polls until replica i's apply log contains cmd.
func (h *harness) waitApplied(i int, cmd string) {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		h.mu.Lock()
		for _, a := range h.applied[i] {
			if strings.HasSuffix(a, ":"+cmd) {
				h.mu.Unlock()
				return
			}
		}
		h.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.t.Fatalf("replica %d never applied %q (log: %v)", i, cmd, h.applied[i])
}

// TestBootstrapCommit: a cold 3-replica cluster needs no election —
// node 0 leads term 1 — and a committed command applies on every
// replica in log order.
func TestBootstrapCommit(t *testing.T) {
	h := newHarness(t, 3, 200*time.Millisecond)
	defer h.stopAll()

	if ld := h.waitLeader(); ld != 0 {
		t.Fatalf("bootstrap leader = %d, want 0", ld)
	}
	for k := 0; k < 5; k++ {
		if err := h.proposeOK(0, fmt.Sprintf("cmd-%d", k)); err != nil {
			t.Fatalf("propose cmd-%d: %v", k, err)
		}
	}
	for i := 0; i < 3; i++ {
		h.waitApplied(i, "cmd-4")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := 1; i < 3; i++ {
		if fmt.Sprint(h.applied[i]) != fmt.Sprint(h.applied[0]) {
			t.Fatalf("replica %d apply order diverged:\n %v\nvs\n %v", i, h.applied[i], h.applied[0])
		}
	}
}

// TestProposeOnFollowerRejected: a follower refuses proposals with
// ErrNotLeader so callers redirect instead of committing nothing.
func TestProposeOnFollowerRejected(t *testing.T) {
	h := newHarness(t, 3, 200*time.Millisecond)
	defer h.stopAll()
	h.waitLeader()
	if err := h.proposeOK(1, "nope"); err != ErrNotLeader {
		t.Fatalf("follower proposal returned %v, want ErrNotLeader", err)
	}
}

// TestLeaderFailover: killing the bootstrap leader elects a survivor,
// which commits new commands on the remaining majority.
func TestLeaderFailover(t *testing.T) {
	h := newHarness(t, 3, 100*time.Millisecond)
	defer h.stopAll()

	h.waitLeader()
	if err := h.proposeOK(0, "before"); err != nil {
		t.Fatalf("pre-crash propose: %v", err)
	}
	h.kill(0)
	ld := h.waitLeader(0)
	if ld == 0 {
		t.Fatal("dead node claimed leadership")
	}
	if err := h.proposeOK(ld, "after"); err != nil {
		t.Fatalf("post-failover propose on %d: %v", ld, err)
	}
	for _, i := range []int{1, 2} {
		h.waitApplied(i, "before")
		h.waitApplied(i, "after")
	}
}

// TestRestartCatchUp: the killed bootstrap leader restarts over its
// Stable slot as a follower, adopts the new leader's term, and catches
// up on entries committed while it was down — including entries its
// old incarnation never saw.
func TestRestartCatchUp(t *testing.T) {
	h := newHarness(t, 3, 100*time.Millisecond)
	defer h.stopAll()

	h.waitLeader()
	if err := h.proposeOK(0, "epoch0"); err != nil {
		t.Fatal(err)
	}
	h.kill(0)
	ld := h.waitLeader(0)
	if err := h.proposeOK(ld, "while-down"); err != nil {
		t.Fatal(err)
	}
	h.restart(0, 100*time.Millisecond)
	h.waitApplied(0, "epoch0")
	h.waitApplied(0, "while-down")

	// The restarted replica must not have double-applied anything.
	h.mu.Lock()
	seen := map[string]int{}
	for _, a := range h.applied[0] {
		seen[a]++
	}
	h.mu.Unlock()
	for a, n := range seen {
		if n != 1 {
			t.Fatalf("entry %q applied %d times on restarted replica", a, n)
		}
	}
}

// TestPartitionedLeaderDeposed: cutting the leader away from both
// followers elects a new leader; proposals on the stale leader fail
// rather than commit, and after the partition heals the old leader
// adopts the higher term and converges on the survivors' log.
func TestPartitionedLeaderDeposed(t *testing.T) {
	h := newHarness(t, 3, 100*time.Millisecond)
	defer h.stopAll()

	h.waitLeader()
	if err := h.proposeOK(0, "shared"); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	h.cut[[2]int{0, 1}] = true
	h.cut[[2]int{0, 2}] = true
	h.mu.Unlock()

	ld := h.waitLeader(0)
	if err := h.proposeOK(ld, "majority-side"); err != nil {
		t.Fatalf("majority-side propose: %v", err)
	}
	// The stale leader can still accept a proposal into its log, but it
	// must never commit: the callback must resolve with an error once
	// the healed partition deposes it.
	errc := make(chan error, 1)
	h.reps[0].Propose([]byte("stale-side"), func(err error) { errc <- err })

	h.mu.Lock()
	delete(h.cut, [2]int{0, 1})
	delete(h.cut, [2]int{0, 2})
	h.mu.Unlock()

	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("minority-partition proposal committed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stale proposal never resolved after heal")
	}
	h.waitApplied(0, "majority-side")
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, a := range h.applied[0] {
		if strings.HasSuffix(a, ":stale-side") {
			t.Fatalf("stale leader's uncommitted entry was applied: %v", h.applied[0])
		}
	}
}

// TestCompactionBoundsLog: with CompactEvery=8, a 40-command run folds
// the applied prefix into snapshots on every replica, the persisted log
// stays within 2x the threshold, and the apply order still converges.
func TestCompactionBoundsLog(t *testing.T) {
	h := newHarnessOpt(t, 3, 200*time.Millisecond, 8, nil)
	defer h.stopAll()

	h.waitLeader()
	for k := 0; k < 40; k++ {
		if err := h.proposeOK(0, fmt.Sprintf("cmd-%d", k)); err != nil {
			t.Fatalf("propose cmd-%d: %v", k, err)
		}
	}
	for i := 0; i < 3; i++ {
		h.waitApplied(i, "cmd-39")
	}
	// Compaction runs synchronously after apply; give the tail batch a
	// moment to persist its snapshot on every replica.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 3; i++ {
		for h.stables[i].SnapIndex() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if si := h.stables[i].SnapIndex(); si == 0 {
			t.Fatalf("replica %d never compacted", i)
		}
		if ll := h.stables[i].LogLen(); ll > 16 {
			t.Fatalf("replica %d persisted log holds %d entries, want <= 16 (2x threshold)", i, ll)
		}
	}
	if c := atomic.LoadInt64(&h.counters[0].compactions); c == 0 {
		t.Fatal("leader's compaction counter never moved")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := 1; i < 3; i++ {
		if fmt.Sprint(h.applied[i]) != fmt.Sprint(h.applied[0]) {
			t.Fatalf("replica %d apply order diverged under compaction:\n %v\nvs\n %v", i, h.applied[i], h.applied[0])
		}
	}
}

// TestSnapshotCatchUp: a replica that loses its durable slot while the
// leader compacts past its last entry cannot be caught up by replay —
// the leader must stream its snapshot, and the re-seeded replica
// converges on the survivors' state.
func TestSnapshotCatchUp(t *testing.T) {
	h := newHarnessOpt(t, 3, 100*time.Millisecond, 4, nil)
	defer h.stopAll()

	h.waitLeader()
	for k := 0; k < 4; k++ {
		if err := h.proposeOK(0, fmt.Sprintf("pre-%d", k)); err != nil {
			t.Fatal(err)
		}
	}
	h.kill(1)
	for k := 0; k < 12; k++ {
		if err := h.proposeOK(0, fmt.Sprintf("post-%d", k)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.stables[0].SnapIndex() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.stables[0].SnapIndex() < 5 {
		t.Fatalf("leader never compacted past the dead replica's log (snapIndex=%d)", h.stables[0].SnapIndex())
	}

	h.restartFresh(1, 100*time.Millisecond)
	h.waitApplied(1, "post-11")
	if n := atomic.LoadInt64(&h.counters[1].snapInstalls); n == 0 {
		t.Fatal("re-seeded replica caught up without a snapshot install")
	}
	h.waitApplied(2, "post-11")
	h.mu.Lock()
	defer h.mu.Unlock()
	if fmt.Sprint(h.applied[1]) != fmt.Sprint(h.applied[2]) {
		t.Fatalf("snapshot-seeded replica diverged:\n %v\nvs\n %v", h.applied[1], h.applied[2])
	}
}

// TestMembershipAddServesFailover: a non-voting spare is promoted by a
// committed config change, catches up on the full log, and then keeps
// the cluster available through a leader crash — the scenario a live
// cluster uses to grow 3->5 or replace a dead replica without restart.
func TestMembershipAddServesFailover(t *testing.T) {
	h := newHarnessOpt(t, 4, 100*time.Millisecond, 0, []int{0, 1, 2})
	defer h.stopAll()

	h.waitLeader()
	if err := h.proposeOK(0, "before-add"); err != nil {
		t.Fatal(err)
	}
	if err := h.proposeConfOK(0, true, 3); err != nil {
		t.Fatalf("add replica 3: %v", err)
	}
	if err := h.proposeOK(0, "after-add"); err != nil {
		t.Fatal(err)
	}
	// The promoted replica replays the whole log, including entries
	// committed before it had a vote.
	h.waitApplied(3, "before-add")
	h.waitApplied(3, "after-add")
	if c := atomic.LoadInt64(&h.counters[0].confChanges); c == 0 {
		t.Fatal("leader's conf-change counter never moved")
	}

	h.kill(0)
	ld := h.waitLeader(0)
	if err := h.proposeOK(ld, "post-failover"); err != nil {
		t.Fatalf("post-failover propose on %d: %v", ld, err)
	}
	h.waitApplied(3, "post-failover")
}

// TestMembershipRemoveFloor: removal works one server at a time but is
// refused once it would leave fewer than three voters — the smallest
// set that still tolerates a fault.
func TestMembershipRemoveFloor(t *testing.T) {
	h := newHarnessOpt(t, 4, 100*time.Millisecond, 0, nil)
	defer h.stopAll()

	h.waitLeader()
	if err := h.proposeConfOK(0, false, 3); err != nil {
		t.Fatalf("remove replica 3 from a 4-voter set: %v", err)
	}
	if err := h.proposeConfOK(0, false, 2); err != ErrConfInvalid {
		t.Fatalf("removal below 3 voters returned %v, want ErrConfInvalid", err)
	}
	// The shrunken set still commits.
	if err := h.proposeOK(0, "three-voters"); err != nil {
		t.Fatal(err)
	}
}

// TestConfPendingRejected: only one membership change may be in flight;
// a second proposal while the first is uncommitted fails fast with
// ErrConfPending instead of queueing behind an unknown outcome.
func TestConfPendingRejected(t *testing.T) {
	h := newHarnessOpt(t, 4, 100*time.Millisecond, 0, []int{0, 1, 2})
	defer h.stopAll()

	h.waitLeader()
	// Isolate the leader so its first change stays uncommitted.
	h.mu.Lock()
	for _, p := range []int{1, 2, 3} {
		h.cut[[2]int{0, p}] = true
	}
	h.mu.Unlock()

	firstc := make(chan error, 1)
	h.reps[0].ProposeConf(true, 3, func(err error) { firstc <- err })
	if err := h.proposeConfOK(0, false, 1); err != ErrConfPending {
		t.Fatalf("second conf change returned %v, want ErrConfPending", err)
	}

	h.mu.Lock()
	for _, p := range []int{1, 2, 3} {
		delete(h.cut, [2]int{0, p})
	}
	h.mu.Unlock()
	// After the heal the stalled change resolves one way or the other
	// (commits, or fails when a higher term deposes the old leader).
	select {
	case <-firstc:
	case <-time.After(10 * time.Second):
		t.Fatal("isolated conf change never resolved after heal")
	}
}

// TestQuarantineReseed: a corrupted Stable slot is quarantined at load
// — the replica comes back fenced and empty instead of diverging on
// torn state — and the leader re-seeds it by snapshot. Once seeded the
// fence lifts: the replica votes in a later election, proving the
// quarantine is a recovery path and not a permanent demotion.
func TestQuarantineReseed(t *testing.T) {
	h := newHarnessOpt(t, 3, 100*time.Millisecond, 4, nil)
	defer h.stopAll()

	h.waitLeader()
	for k := 0; k < 12; k++ {
		if err := h.proposeOK(0, fmt.Sprintf("cmd-%d", k)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.stables[0].SnapIndex() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.stables[0].SnapIndex() == 0 {
		t.Fatal("leader never compacted")
	}

	h.kill(1)
	if !h.stables[1].Corrupt() {
		t.Fatal("stable slot was empty; nothing to corrupt")
	}
	h.restart(1, 100*time.Millisecond)
	if q := h.stables[1].Quarantines(); q != 1 {
		t.Fatalf("quarantine count = %d, want 1", q)
	}
	h.waitApplied(1, "cmd-11")
	if n := atomic.LoadInt64(&h.counters[1].snapInstalls); n == 0 {
		t.Fatal("quarantined replica was not re-seeded by snapshot")
	}

	// The re-seeded replica must be able to carry an election again.
	h.kill(0)
	ld := h.waitLeader(0)
	if err := h.proposeOK(ld, "after-quarantine"); err != nil {
		t.Fatalf("post-quarantine propose on %d: %v", ld, err)
	}
	h.waitApplied(1, "after-quarantine")
}

// TestTermsMonotonicAcrossRestart: a restarted replica resumes from its
// persisted term, so it can never grant a second vote in a term its
// previous incarnation already voted in.
func TestTermsMonotonicAcrossRestart(t *testing.T) {
	h := newHarness(t, 3, 100*time.Millisecond)
	defer h.stopAll()
	h.waitLeader()
	h.kill(1)
	before := h.reps[1].Leader().Term
	h.restart(1, 100*time.Millisecond)
	if after := h.reps[1].Leader().Term; after < before {
		t.Fatalf("restarted replica forgot its term: %d < %d", after, before)
	}
}
