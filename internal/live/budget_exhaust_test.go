package live

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
	"lrcdsm/internal/live/chaos"
	"lrcdsm/internal/live/node"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/live/wire"
	"lrcdsm/internal/page"
)

// postRecoveryKiller kills a node a few frames after the cluster has
// completed a rejoin: it arms on the first KResume frame (the restarted
// node asking to re-enter the run) and fires once the target has sent n
// more frames of its own. Observer-driven, so the kill is guaranteed to
// land after the restart budget has been spent — unlike an op-count
// schedule, it cannot race the rollback and take out the quorum itself.
type postRecoveryKiller struct {
	kill   func()
	target int
	n      int64
	armed  atomic.Bool
	seen   atomic.Int64
	fired  atomic.Bool
}

func (k *postRecoveryKiller) MsgSent(from, to int, kind wire.Kind, bytes int) {
	if kind == wire.KResume {
		k.armed.Store(true)
		return
	}
	if !k.armed.Load() || from != k.target {
		return
	}
	if k.seen.Add(1) >= k.n && k.fired.CompareAndSwap(false, true) {
		k.kill()
	}
}

func (k *postRecoveryKiller) PageFault(int, page.ID)               {}
func (k *postRecoveryKiller) IntervalClosed(int, int32, []page.ID) {}
func (k *postRecoveryKiller) DiffApplied(int, page.ID, int, int32) {}
func (k *postRecoveryKiller) Invalidated(int, page.ID)             {}
func (k *postRecoveryKiller) BarrierDeparted(int, int64)           {}

// TestRestartBudgetExhaustedUnderQuorum is the degradation claim for
// the replicated control plane: once the restart budget is spent, the
// next kill must still terminate the run with the structured
// PeerDownError abort — promptly, whichever replica happens to be
// judging at that point. The rows vary who dies and when: a follower
// after the coordinator was revived (so an elected successor judges the
// second death), the coordinator last (so the abort races a fresh
// election — the "half-elected leader" window), and the coordinator
// twice. A hang here would mean an exhausted cluster waits forever on
// a node that can no longer be restarted.
func TestRestartBudgetExhaustedUnderQuorum(t *testing.T) {
	cases := []struct {
		name    string
		crashes []chaos.Crash
		second  int // postRecoveryKiller target (-1: both kills on the chaos schedule)
		victim  int // node the final abort must name
	}{
		{
			name: "coordinator-then-follower",
			crashes: []chaos.Crash{
				{Node: 0, AtOp: 30, Local: true, RestartAfter: 5 * time.Millisecond},
			},
			second: 1,
			victim: 1,
		},
		{
			name: "follower-then-coordinator",
			crashes: []chaos.Crash{
				{Node: 1, AtOp: 30, Local: true, RestartAfter: 5 * time.Millisecond},
				{Node: 0, AtOp: 90, Local: true},
			},
			second: -1,
			victim: 0,
		},
		{
			name: "coordinator-twice",
			crashes: []chaos.Crash{
				{Node: 0, AtOp: 30, Local: true, RestartAfter: 5 * time.Millisecond},
				{Node: 0, AtOp: 60, Local: true},
			},
			second: -1,
			victim: 0,
		},
	}
	for i, tc := range cases {
		tc, seed := tc, int64(21+i)
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			app, err := harness.NewApp("jacobi", harness.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			var cl *Cluster
			fcfg := chaos.Config{Seed: seed, Crashes: tc.crashes}
			fcfg.OnCrash = func(n int, d time.Duration) { cl.Kill(n, d) }
			nw := chaos.WrapNet(transport.NewInprocNet(4), fcfg)
			cfg := failoverConfig(4, core.LH)
			cfg.Net = nw
			var killer *postRecoveryKiller
			if tc.second >= 0 {
				killer = &postRecoveryKiller{target: tc.second, n: 10}
				killer.kill = func() { cl.Kill(tc.second, 0) }
				cfg.Observer = killer
			}
			cl, err = New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			app.Configure(cl)

			t0 := time.Now()
			_, runErr := cl.RunSupervised(func(w core.Worker) { app.Worker(w) }, RecoverOptions{
				MaxRestarts:     1,
				CheckpointEvery: 1,
				Replicate:       true,
				Seed:            seed,
			})
			elapsed := time.Since(t0)

			kills := nw.Counters().Crashes
			if killer != nil && killer.fired.Load() {
				kills++
			}
			if kills < 2 {
				t.Fatalf("only %d kills fired — the schedule exercised nothing (err: %v)", kills, runErr)
			}
			if runErr == nil {
				t.Fatal("second kill with an exhausted restart budget reported success")
			}
			var pd *node.PeerDownError
			if !errors.As(runErr, &pd) {
				t.Fatalf("want *node.PeerDownError, got %T: %v", runErr, runErr)
			}
			if pd.Node != tc.victim {
				t.Errorf("abort names node %d, want %d (the unrestartable victim)", pd.Node, tc.victim)
			}
			if elapsed > 45*time.Second {
				t.Errorf("abort took %v — the exhausted quorum hung instead of degrading", elapsed)
			}
			t.Logf("degraded in %v: %v", elapsed, runErr)
		})
	}
}
