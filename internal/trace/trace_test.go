package trace

import (
	"strings"
	"testing"

	"lrcdsm/internal/sim"
)

func int64SimTime(i int) sim.Time { return sim.Time(i) }

func TestDisabledLogDropsSilently(t *testing.T) {
	var l Log
	l.Add(1, 0, LockRequest, 5, -1)
	if l.Enabled() {
		t.Fatal("zero log should be disabled")
	}
	if got := l.Events(); got != nil {
		t.Fatalf("events = %v", got)
	}
	if l.Dropped() != 1 {
		t.Fatalf("dropped = %d", l.Dropped())
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	if l.Enabled() {
		t.Fatal("nil log enabled")
	}
	if l.Events() != nil || l.Dropped() != 0 {
		t.Fatal("nil log should be inert")
	}
}

func TestRingKeepsLatest(t *testing.T) {
	l := New(3)
	for i := 0; i < 5; i++ {
		l.Add(int64SimTime(i), 0, PageFault, int32(i), -1)
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, e := range evs {
		if int(e.Arg) != i+2 {
			t.Fatalf("events = %v (want args 2,3,4)", evs)
		}
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d", l.Dropped())
	}
}

func TestChronologicalOrderAcrossWrap(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Add(int64SimTime(i * 7), 1, MsgSend, int32(i), 2)
	}
	evs := l.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("out of order: %v", evs)
		}
	}
}

func TestDumpAndSummary(t *testing.T) {
	l := New(16)
	l.Add(10, 0, LockRequest, 1, -1)
	l.Add(20, 1, LockGrant, 1, 0)
	l.Add(30, 1, PageFault, 9, -1)
	var sb strings.Builder
	l.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"lock-req", "lock-grant", "fault", "peer=p0"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	s := l.Summarize()
	if s.ByKind[LockRequest] != 1 || s.ByProc[1] != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.Span != [2]sim.Time{10, 30} {
		t.Errorf("span = %v", s.Span)
	}
	sb.Reset()
	s.WriteSummary(&sb)
	if !strings.Contains(sb.String(), "lock-req") {
		t.Errorf("summary render: %s", sb.String())
	}
}

func TestKindString(t *testing.T) {
	if LockRequest.String() != "lock-req" || Kind(200).String() == "" {
		t.Fatal("kind names")
	}
}
