// Package trace records protocol-level events of a DSM run in a bounded
// ring and renders them as a per-processor timeline — the tooling one
// needs to see *why* a protocol behaves as it does (lock chains, fault
// storms, invalidation rounds) rather than just the aggregate counters.
package trace

import (
	"fmt"
	"io"

	"lrcdsm/internal/sim"
)

// Kind classifies a traced event.
type Kind uint8

// Event kinds, in rough lifecycle order.
const (
	LockRequest Kind = iota
	LockGrant
	LockRelease
	BarrierArrive
	BarrierDepart
	PageFault
	PageValid
	Invalidate
	DiffApplied
	MsgSend
)

var kindNames = [...]string{
	LockRequest:   "lock-req",
	LockGrant:     "lock-grant",
	LockRelease:   "lock-rel",
	BarrierArrive: "bar-arrive",
	BarrierDepart: "bar-depart",
	PageFault:     "fault",
	PageValid:     "valid",
	Invalidate:    "inval",
	DiffApplied:   "diff",
	MsgSend:       "send",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one protocol-level occurrence.
type Event struct {
	At   sim.Time
	Proc int16
	Kind Kind
	// Arg is the lock id, page id, barrier id, or message kind depending
	// on Kind; Peer is the other processor involved (-1 if none).
	Arg  int32
	Peer int16
}

// String renders one event.
func (e Event) String() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("%12d p%-2d %-10s %-6d peer=p%d", e.At, e.Proc, e.Kind, e.Arg, e.Peer)
	}
	return fmt.Sprintf("%12d p%-2d %-10s %-6d", e.At, e.Proc, e.Kind, e.Arg)
}

// Log is a bounded ring of events. The zero value is a disabled log that
// drops everything, so tracing costs one branch when off.
type Log struct {
	buf     []Event
	next    int
	wrapped bool
	dropped int64
}

// New returns a log holding the last capacity events.
func New(capacity int) *Log {
	if capacity <= 0 {
		return &Log{}
	}
	return &Log{buf: make([]Event, 0, capacity)}
}

// Enabled reports whether the log records anything.
func (l *Log) Enabled() bool { return l != nil && cap(l.buf) > 0 }

// Add records an event (dropping the oldest beyond capacity).
func (l *Log) Add(at sim.Time, proc int, kind Kind, arg int32, peer int) {
	if !l.Enabled() {
		if l != nil {
			l.dropped++
		}
		return
	}
	e := Event{At: at, Proc: int16(proc), Kind: kind, Arg: arg, Peer: int16(peer)}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % cap(l.buf)
	l.wrapped = true
	l.dropped++
}

// Events returns the recorded events in chronological order.
func (l *Log) Events() []Event {
	if l == nil || len(l.buf) == 0 {
		return nil
	}
	if !l.wrapped {
		out := make([]Event, len(l.buf))
		copy(out, l.buf)
		return out
	}
	out := make([]Event, 0, cap(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Dropped returns how many events were discarded (capacity overflow or
// disabled log).
func (l *Log) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Dump writes every recorded event to w.
func (l *Log) Dump(w io.Writer) {
	for _, e := range l.Events() {
		fmt.Fprintln(w, e)
	}
}

// Summary tallies events by kind and processor.
type Summary struct {
	ByKind map[Kind]int
	ByProc map[int16]int
	Span   [2]sim.Time
}

// Summarize builds a Summary of the recorded window.
func (l *Log) Summarize() Summary {
	s := Summary{ByKind: map[Kind]int{}, ByProc: map[int16]int{}}
	evs := l.Events()
	for i, e := range evs {
		s.ByKind[e.Kind]++
		s.ByProc[e.Proc]++
		if i == 0 {
			s.Span[0] = e.At
		}
		s.Span[1] = e.At
	}
	return s
}

// WriteSummary renders the summary.
func (s Summary) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "trace window: cycles %d..%d\n", s.Span[0], s.Span[1])
	for k := Kind(0); int(k) < len(kindNames); k++ {
		if n := s.ByKind[k]; n > 0 {
			fmt.Fprintf(w, "  %-10s %d\n", k, n)
		}
	}
}
