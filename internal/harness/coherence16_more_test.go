package harness

import (
	"testing"

	"lrcdsm/internal/core"
)

// TestAllProtocolsCoherence16 runs every workload under every protocol at
// 16 processors (bench scale) with the read-coherence checker enabled:
// every shared read of these fully synchronized programs must return the
// happened-before-latest value. This is the strongest correctness net in
// the suite — it catches protocol races that result verification can miss.
func TestAllProtocolsCoherence16(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, app := range []string{"water", "cholesky"} {
		for _, prot := range core.Protocols {
			app, prot := app, prot
			t.Run(app+"/"+prot.String(), func(t *testing.T) {
				spec := DefaultSpec(app, ScaleBench)
				spec.Protocol = prot
				cfg := core.DefaultConfig()
				cfg.Protocol = spec.Protocol
				cfg.Procs = spec.Procs
				cfg.Net = spec.Net
				cfg.MaxSharedBytes = 64 << 20
				cfg.DebugCheckReads = true
				a, err := NewApp(spec.App, spec.Scale)
				if err != nil {
					t.Fatal(err)
				}
				sys, err := core.NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				a.Configure(sys)
				if _, err := sys.Run(func(p *core.Proc) { a.Worker(p) }); err != nil {
					t.Fatal(err)
				}
				if err := a.Verify(sys); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
