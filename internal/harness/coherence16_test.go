package harness

import (
	"testing"

	"lrcdsm/internal/core"
)

// TestEIWaterCoherence16 runs the EI protocol at 16 processors with the
// read-coherence checker: the race between page fetches and invalidation
// flushes exercised here is the subtlest part of the eager protocol.
func TestEIWaterCoherence16(t *testing.T) {
	spec := DefaultSpec("water", ScaleBench)
	spec.Protocol = core.EI
	cfg := core.DefaultConfig()
	cfg.Protocol = spec.Protocol
	cfg.Procs = spec.Procs
	cfg.Net = spec.Net
	cfg.MaxSharedBytes = 64 << 20
	cfg.DebugCheckReads = true
	app, err := NewApp(spec.App, spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app.Configure(sys)
	if _, err := sys.Run(func(p *core.Proc) { app.Worker(p) }); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(sys); err != nil {
		t.Fatal(err)
	}
}
