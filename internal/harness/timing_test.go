package harness

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestTiming reports wall-clock cost of paper-scale runs. Opt-in: set
// LRCDSM_TIMING=1 (paper-scale runs take minutes).
func TestTiming(t *testing.T) {
	if os.Getenv("LRCDSM_TIMING") == "" {
		t.Skip("set LRCDSM_TIMING=1 to run paper-scale timing")
	}
	for _, app := range AppNames {
		spec := DefaultSpec(app, ScalePaper)
		start := time.Now()
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%-10s wall=%-12v cycles=%-12d msgs=%-8d sync%%=%.0f\n",
			app, time.Since(start).Round(time.Millisecond), res.Stats.Cycles, res.Stats.Msgs, 100*res.Stats.SyncShare())
	}
}
