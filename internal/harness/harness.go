// Package harness builds, runs, verifies and reports the paper's
// experiments: one entry point per figure and table of the evaluation
// section (Figures 6–18, Tables 1–5), plus the message-classification
// statistics quoted in the text and the ablations called out in DESIGN.md.
package harness

import (
	"fmt"
	"strings"

	"lrcdsm/internal/apps/cholesky"
	"lrcdsm/internal/apps/jacobi"
	"lrcdsm/internal/apps/tsp"
	"lrcdsm/internal/apps/water"
	"lrcdsm/internal/core"
	"lrcdsm/internal/network"
)

// App is the interface every workload implements.
type App interface {
	Name() string
	Configure(s *core.System)
	Worker(p *core.Proc)
	Verify(s *core.System) error
}

// Scale selects problem sizes: the paper's sizes, a reduced size for
// benchmarks, or a minimal size for tests.
type Scale int

const (
	// ScalePaper uses the paper's inputs: Jacobi 512×512, TSP 18 cities,
	// Water 288 molecules × 2 steps, Cholesky ≈1806 columns.
	ScalePaper Scale = iota
	// ScaleBench uses reduced inputs with the same qualitative behaviour,
	// sized so a full protocol × processor sweep runs in seconds.
	ScaleBench
	// ScaleTest is minimal, for unit tests of the harness itself.
	ScaleTest
)

// ParseScale converts a name to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "paper":
		return ScalePaper, nil
	case "bench":
		return ScaleBench, nil
	case "test":
		return ScaleTest, nil
	}
	return 0, fmt.Errorf("harness: unknown scale %q", s)
}

// AppNames lists the workloads in the paper's order.
var AppNames = []string{"jacobi", "tsp", "water", "cholesky"}

// NewApp builds a workload at the given scale.
func NewApp(name string, scale Scale) (App, error) {
	switch name {
	case "jacobi":
		switch scale {
		case ScalePaper:
			return jacobi.New(jacobi.Default()), nil
		case ScaleBench:
			return jacobi.New(jacobi.Params{N: 128, Iters: 5, PointCycles: 10}), nil
		default:
			return jacobi.New(jacobi.Small()), nil
		}
	case "tsp":
		switch scale {
		case ScalePaper:
			return tsp.New(tsp.Default()), nil
		case ScaleBench:
			return tsp.New(tsp.Params{Cities: 12, PrefixDepth: 2, NodeCycles: 40, Seed: 1}), nil
		default:
			return tsp.New(tsp.Small()), nil
		}
	case "water":
		switch scale {
		case ScalePaper:
			return water.New(water.Default()), nil
		case ScaleBench:
			return water.New(water.Params{Molecules: 192, Steps: 1, Cutoff: 0.3, PairCycles: 8000, MoveCycles: 2000, Seed: 1}), nil
		default:
			return water.New(water.Small()), nil
		}
	case "cholesky":
		switch scale {
		case ScalePaper:
			return cholesky.New(cholesky.Default()), nil
		case ScaleBench:
			return cholesky.New(cholesky.Params{Grid: 16, FlopCycles: 4, SpinCycles: 500}), nil
		default:
			return cholesky.New(cholesky.Small()), nil
		}
	}
	return nil, fmt.Errorf("harness: unknown app %q", name)
}

// Spec describes one simulation run.
type Spec struct {
	App            string
	Scale          Scale
	Protocol       core.Protocol
	Procs          int
	Net            network.Params
	ClockMHz       float64
	PageSize       int
	OverheadFactor float64
}

// DefaultSpec returns the paper's base configuration for an app: 16
// processors at 40 MHz on the 100 Mbit/s ATM, 4096-byte pages, normal
// overhead.
func DefaultSpec(app string, scale Scale) Spec {
	return Spec{
		App:            app,
		Scale:          scale,
		Protocol:       core.LH,
		Procs:          16,
		Net:            network.ATMNet(100, core.DefaultClockMHz),
		ClockMHz:       core.DefaultClockMHz,
		PageSize:       core.DefaultPageSize,
		OverheadFactor: 1,
	}
}

// Result is the outcome of one run.
type Result struct {
	Spec  Spec
	Stats *core.RunStats
}

// Run executes one spec: build the system and workload, run, verify.
func Run(spec Spec) (*Result, error) {
	cfg := core.DefaultConfig()
	cfg.Protocol = spec.Protocol
	cfg.Procs = spec.Procs
	cfg.Net = spec.Net
	cfg.Net.ClockMHz = spec.ClockMHz
	cfg.ClockMHz = spec.ClockMHz
	cfg.PageSize = spec.PageSize
	cfg.OverheadFactor = spec.OverheadFactor
	cfg.MaxSharedBytes = 64 << 20
	app, err := NewApp(spec.App, spec.Scale)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	app.Configure(sys)
	stats, err := sys.Run(app.Worker)
	if err != nil {
		return nil, fmt.Errorf("harness: %s/%v/%dp: %w", spec.App, spec.Protocol, spec.Procs, err)
	}
	if err := app.Verify(sys); err != nil {
		return nil, fmt.Errorf("harness: %s/%v/%dp failed verification: %w", spec.App, spec.Protocol, spec.Procs, err)
	}
	return &Result{Spec: spec, Stats: stats}, nil
}

// Runner caches uniprocessor baselines so speedups across a sweep share
// the same denominators.
type Runner struct {
	bases map[string]*Result
}

// NewRunner returns an empty runner.
func NewRunner() *Runner { return &Runner{bases: make(map[string]*Result)} }

func baseKey(s Spec) string {
	return fmt.Sprintf("%s|%d|%v|%.0f|%d|%.1f", s.App, s.Scale, s.Net.Kind, s.ClockMHz, s.PageSize, s.OverheadFactor)
}

// Speedup runs the spec and returns result plus speedup relative to the
// cached 1-processor run of the same configuration.
func (r *Runner) Speedup(spec Spec) (*Result, float64, error) {
	res, err := Run(spec)
	if err != nil {
		return nil, 0, err
	}
	key := baseKey(spec)
	base, ok := r.bases[key]
	if !ok {
		bspec := spec
		bspec.Procs = 1
		base, err = Run(bspec)
		if err != nil {
			return nil, 0, err
		}
		r.bases[key] = base
	}
	return res, float64(base.Stats.Cycles) / float64(res.Stats.Cycles), nil
}

// Table is a rendered experiment: a title, column headers, and rows of
// cells (first cell of each row is its label).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Cell retrieves a cell by row label and column name ("" if absent).
func (t *Table) Cell(rowLabel, col string) string {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		return ""
	}
	for _, row := range t.Rows {
		if row[0] == rowLabel && ci < len(row) {
			return row[ci]
		}
	}
	return ""
}

