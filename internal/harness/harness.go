// Package harness builds, runs, verifies and reports the paper's
// experiments: one entry point per figure and table of the evaluation
// section (Figures 6–18, Tables 1–5), plus the message-classification
// statistics quoted in the text and the ablations called out in DESIGN.md.
package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"lrcdsm/internal/apps/cholesky"
	"lrcdsm/internal/apps/jacobi"
	"lrcdsm/internal/apps/taskqueue"
	"lrcdsm/internal/apps/tsp"
	"lrcdsm/internal/apps/water"
	"lrcdsm/internal/check"
	"lrcdsm/internal/core"
	"lrcdsm/internal/network"
)

// App is the interface every workload implements. Workloads are written
// against the engine-neutral core.Mem/core.Worker/core.Peeker interfaces,
// so the same App runs on the deterministic simulator (this harness) and
// on the live runtime (internal/live).
type App interface {
	Name() string
	Configure(s core.Mem)
	Worker(p core.Worker)
	Verify(s core.Peeker) error
}

// ResultApp is implemented by workloads that declare schedule-independent
// result regions for the runtime invariant checker's memory-equivalence
// comparison against a 1-processor reference run.
type ResultApp interface {
	App
	ResultRegions() []core.ResultRegion
}

// Scale selects problem sizes: the paper's sizes, a reduced size for
// benchmarks, or a minimal size for tests.
type Scale int

const (
	// ScalePaper uses the paper's inputs: Jacobi 512×512, TSP 18 cities,
	// Water 288 molecules × 2 steps, Cholesky ≈1806 columns.
	ScalePaper Scale = iota
	// ScaleBench uses reduced inputs with the same qualitative behaviour,
	// sized so a full protocol × processor sweep runs in seconds.
	ScaleBench
	// ScaleTest is minimal, for unit tests of the harness itself.
	ScaleTest
)

// ParseScale converts a name to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "paper":
		return ScalePaper, nil
	case "bench":
		return ScaleBench, nil
	case "test":
		return ScaleTest, nil
	}
	return 0, fmt.Errorf("harness: unknown scale %q", s)
}

// AppNames lists the workloads in the paper's order.
var AppNames = []string{"jacobi", "tsp", "water", "cholesky"}

// NewApp builds a workload at the given scale.
func NewApp(name string, scale Scale) (App, error) {
	switch name {
	case "jacobi":
		switch scale {
		case ScalePaper:
			return jacobi.New(jacobi.Default()), nil
		case ScaleBench:
			return jacobi.New(jacobi.Params{N: 128, Iters: 5, PointCycles: 10}), nil
		default:
			return jacobi.New(jacobi.Small()), nil
		}
	case "tsp":
		switch scale {
		case ScalePaper:
			return tsp.New(tsp.Default()), nil
		case ScaleBench:
			return tsp.New(tsp.Params{Cities: 12, PrefixDepth: 2, NodeCycles: 40, Seed: 1}), nil
		default:
			return tsp.New(tsp.Small()), nil
		}
	case "water":
		switch scale {
		case ScalePaper:
			return water.New(water.Default()), nil
		case ScaleBench:
			return water.New(water.Params{Molecules: 192, Steps: 1, Cutoff: 0.3, PairCycles: 8000, MoveCycles: 2000, Seed: 1}), nil
		default:
			return water.New(water.Small()), nil
		}
	case "cholesky":
		switch scale {
		case ScalePaper:
			return cholesky.New(cholesky.Default()), nil
		case ScaleBench:
			return cholesky.New(cholesky.Params{Grid: 16, FlopCycles: 4, SpinCycles: 500}), nil
		default:
			return cholesky.New(cholesky.Small()), nil
		}
	case "taskqueue":
		// Promoted from examples/taskqueue; not in AppNames because it
		// is this reproduction's own probe, not one of the paper's four
		// figure workloads.
		switch scale {
		case ScalePaper:
			return taskqueue.New(taskqueue.Default()), nil
		case ScaleBench:
			return taskqueue.New(taskqueue.Params{Tasks: 120, Grain: 10_000}), nil
		default:
			return taskqueue.New(taskqueue.Small()), nil
		}
	}
	return nil, fmt.Errorf("harness: unknown app %q", name)
}

// Spec describes one simulation run.
type Spec struct {
	App            string
	Scale          Scale
	Protocol       core.Protocol
	Procs          int
	Net            network.Params
	ClockMHz       float64
	PageSize       int
	OverheadFactor float64
	// Check enables the runtime invariant checker: the run is observed by
	// check.New and, for ResultApp workloads with more than one processor,
	// its final memory is compared against a 1-processor reference run.
	// Violations turn into a Run error.
	Check bool
}

// DefaultSpec returns the paper's base configuration for an app: 16
// processors at 40 MHz on the 100 Mbit/s ATM, 4096-byte pages, normal
// overhead.
func DefaultSpec(app string, scale Scale) Spec {
	return Spec{
		App:            app,
		Scale:          scale,
		Protocol:       core.LH,
		Procs:          16,
		Net:            network.ATMNet(100, core.DefaultClockMHz),
		ClockMHz:       core.DefaultClockMHz,
		PageSize:       core.DefaultPageSize,
		OverheadFactor: 1,
	}
}

// Result is the outcome of one run.
type Result struct {
	Spec  Spec
	Stats *core.RunStats
}

// Run executes one spec: build the system and workload, run, verify. With
// Spec.Check set, the run is additionally observed by the invariant
// checker and any violation is returned as an error.
func Run(spec Spec) (*Result, error) {
	if spec.Check {
		res, violations, err := CheckedRun(spec)
		if err != nil {
			return nil, err
		}
		if len(violations) > 0 {
			return nil, fmt.Errorf("harness: %s/%v/%dp: %d invariant violation(s), first: %s",
				spec.App, spec.Protocol, spec.Procs, len(violations), violations[0].String())
		}
		return res, nil
	}
	res, _, _, err := runSpec(spec, nil)
	return res, err
}

// runSpec builds the system and workload, runs, verifies, and returns the
// finished system and app alongside the result so callers can inspect
// final memory.
func runSpec(spec Spec, obs core.Observer) (*Result, *core.System, App, error) {
	cfg := core.DefaultConfig()
	cfg.Protocol = spec.Protocol
	cfg.Procs = spec.Procs
	cfg.Net = spec.Net
	cfg.Net.ClockMHz = spec.ClockMHz
	cfg.ClockMHz = spec.ClockMHz
	cfg.PageSize = spec.PageSize
	cfg.OverheadFactor = spec.OverheadFactor
	cfg.MaxSharedBytes = 64 << 20
	cfg.Observer = obs
	app, err := NewApp(spec.App, spec.Scale)
	if err != nil {
		return nil, nil, nil, err
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	app.Configure(sys)
	stats, err := sys.Run(func(p *core.Proc) { app.Worker(p) })
	if err != nil {
		return nil, nil, nil, fmt.Errorf("harness: %s/%v/%dp: %w", spec.App, spec.Protocol, spec.Procs, err)
	}
	if err := app.Verify(sys); err != nil {
		return nil, nil, nil, fmt.Errorf("harness: %s/%v/%dp failed verification: %w", spec.App, spec.Protocol, spec.Procs, err)
	}
	return &Result{Spec: spec, Stats: stats}, sys, app, nil
}

// CheckedRun executes one spec under the runtime invariant checker and
// returns the run's violations: protocol-invariant breaches observed
// during the run plus, for ResultApp workloads with Procs > 1, any
// mismatch between the run's final memory and a 1-processor reference run
// over the app's declared result regions. An error means the run itself
// failed; violations are reported separately so callers can print all of
// them.
func CheckedRun(spec Spec) (*Result, []check.Violation, error) {
	chk := check.New(spec.Procs)
	res, sys, app, err := runSpec(spec, chk)
	if err != nil {
		return nil, nil, err
	}
	violations := chk.Violations()
	if ra, ok := app.(ResultApp); ok && spec.Procs > 1 {
		ref := spec
		ref.Procs = 1
		ref.Check = false
		_, refSys, _, err := runSpec(ref, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("harness: reference run: %w", err)
		}
		violations = append(violations, check.CompareRegions(sys, refSys, ra.ResultRegions())...)
	}
	check.SortViolations(violations)
	return res, violations, nil
}

// Runner caches uniprocessor baselines so speedups across a sweep share
// the same denominators, and owns the worker pool that executes
// independent sweep cells concurrently. Each Run builds a private
// core.System, so cells only share the baseline cache, which is
// singleflight: concurrent requests for the same baseline wait for one
// run rather than stampeding.
type Runner struct {
	workers int
	check   bool
	mu      sync.Mutex
	bases   map[string]*baseCell
}

// baseCell is one memoized 1-processor baseline. The first requester runs
// it inside once; later requesters block on once.Do until it is filled.
type baseCell struct {
	once sync.Once
	res  *Result
	err  error
}

// NewRunner returns a runner with one worker per available CPU.
func NewRunner() *Runner { return NewRunnerN(0) }

// NewRunnerN returns a runner with the given number of workers; n <= 0
// selects runtime.GOMAXPROCS(0). With one worker every sweep runs
// serially on the calling goroutine.
func NewRunnerN(n int) *Runner {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: n, bases: make(map[string]*baseCell)}
}

// Workers returns the size of the runner's worker pool.
func (r *Runner) Workers() int { return r.workers }

// EnableCheck makes every subsequent run of this runner execute under the
// runtime invariant checker (Spec.Check). Call before the first run so
// memoized baselines are checked too.
func (r *Runner) EnableCheck() { r.check = true }

// baseKey deliberately excludes the protocol: a 1-processor run never
// communicates, so all protocols share one baseline per configuration.
func baseKey(s Spec) string {
	return fmt.Sprintf("%s|%d|%v|%.0f|%d|%.1f", s.App, s.Scale, s.Net.Kind, s.ClockMHz, s.PageSize, s.OverheadFactor)
}

// baseline returns the memoized 1-processor run for spec's configuration.
func (r *Runner) baseline(spec Spec) (*Result, error) {
	key := baseKey(spec)
	r.mu.Lock()
	cell, ok := r.bases[key]
	if !ok {
		cell = new(baseCell)
		r.bases[key] = cell
	}
	r.mu.Unlock()
	cell.once.Do(func() {
		bspec := spec
		bspec.Procs = 1
		bspec.Check = r.check
		cell.res, cell.err = Run(bspec)
	})
	return cell.res, cell.err
}

// Speedup runs the spec and returns result plus speedup relative to the
// memoized 1-processor run of the same configuration. The baseline is
// obtained first so that concurrent cells of a cold sweep block on one
// shared baseline run instead of each paying for the N-processor run
// before discovering the baseline is still missing.
func (r *Runner) Speedup(spec Spec) (*Result, float64, error) {
	base, err := r.baseline(spec)
	if err != nil {
		return nil, 0, err
	}
	if spec.Procs == 1 {
		// The baseline is this run (the simulation is deterministic), so
		// don't pay for it twice; restamp the spec since the baseline may
		// have been created under a different protocol's request.
		res := &Result{Spec: spec, Stats: base.Stats}
		return res, 1.0, nil
	}
	spec.Check = r.check
	res, err := Run(spec)
	if err != nil {
		return nil, 0, err
	}
	return res, float64(base.Stats.Cycles) / float64(res.Stats.Cycles), nil
}

// RunCells executes jobs 0..n-1 on the runner's worker pool and returns
// the lowest-indexed error, if any. Jobs must be independent; callers
// assemble results into tables afterwards, indexed by job number, so
// output order never depends on completion order. With one worker (or a
// single job) everything runs serially on the calling goroutine.
func (r *Runner) RunCells(n int, job func(i int) error) error {
	w := r.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Table is a rendered experiment: a title, column headers, and rows of
// cells (first cell of each row is its label).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Cell retrieves a cell by row label and column name ("" if absent).
func (t *Table) Cell(rowLabel, col string) string {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		return ""
	}
	for _, row := range t.Rows {
		if row[0] == rowLabel && ci < len(row) {
			return row[ci]
		}
	}
	return ""
}

