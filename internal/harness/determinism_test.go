package harness

import (
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/network"
)

// The simulator must be bit-for-bit deterministic: exactly one simulated
// entity executes at a time inside each engine, so rerunning a spec —
// even with other simulations running concurrently on other OS threads —
// yields identical statistics. This is the property the parallel
// experiment harness rests on.
func TestRunDeterministicAcrossRepeats(t *testing.T) {
	for _, app := range []string{"jacobi", "water"} {
		for _, prot := range core.Protocols {
			spec := DefaultSpec(app, ScaleBench)
			spec.Protocol = prot
			spec.Procs = 4
			first, err := Run(spec)
			if err != nil {
				t.Fatalf("%s/%v: %v", app, prot, err)
			}
			second, err := Run(spec)
			if err != nil {
				t.Fatalf("%s/%v rerun: %v", app, prot, err)
			}
			a, b := first.Stats, second.Stats
			if a.Cycles != b.Cycles || a.Msgs != b.Msgs || a.DataBytes != b.DataBytes {
				t.Errorf("%s/%v not deterministic: cycles %d/%d msgs %d/%d bytes %d/%d",
					app, prot, a.Cycles, b.Cycles, a.Msgs, b.Msgs, a.DataBytes, b.DataBytes)
			}
			if a.SyncMsgs != b.SyncMsgs || a.DiffsCreated != b.DiffsCreated {
				t.Errorf("%s/%v secondary stats diverge: sync %d/%d diffs %d/%d",
					app, prot, a.SyncMsgs, b.SyncMsgs, a.DiffsCreated, b.DiffsCreated)
			}
		}
	}
}

// A parallel sweep must render byte-identical tables to a serial one:
// cells are assembled by index, never by completion order, and the
// singleflight baseline cache hands every cell the same denominator.
func TestAppFiguresSerialParallelIdentical(t *testing.T) {
	procs := []int{1, 2, 4}
	net := network.ATMNet(100, core.DefaultClockMHz)
	serial, err := AppFigures(NewRunnerN(1), "jacobi", ScaleBench, procs, net, "det")
	if err != nil {
		t.Fatal(err)
	}
	par, err := AppFigures(NewRunnerN(8), "jacobi", ScaleBench, procs, net, "det")
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name string
		s, p *Table
	}{
		{"speedup", serial.Speedup, par.Speedup},
		{"msgs", serial.Msgs, par.Msgs},
		{"data", serial.DataKB, par.DataKB},
	} {
		if got, want := pair.p.String(), pair.s.String(); got != want {
			t.Errorf("parallel %s table differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				pair.name, want, got)
		}
	}
}

// The 1-processor column is served straight from the baseline cache, so
// its speedup is exactly 1 and the runner performs one baseline run per
// configuration no matter how many protocols sweep it.
func TestSpeedupBaselineSingleflight(t *testing.T) {
	r := NewRunnerN(4)
	specs := make([]Spec, len(core.Protocols))
	for i, prot := range core.Protocols {
		specs[i] = DefaultSpec("jacobi", ScaleTest)
		specs[i].Protocol = prot
		specs[i].Procs = 1
	}
	sus := make([]float64, len(specs))
	err := r.RunCells(len(specs), func(i int) error {
		_, su, err := r.Speedup(specs[i])
		sus[i] = su
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, su := range sus {
		if su != 1.0 {
			t.Errorf("%v: 1-processor speedup = %v, want exactly 1", core.Protocols[i], su)
		}
	}
	if len(r.bases) != 1 {
		t.Errorf("bases = %d, want 1 (singleflight per configuration)", len(r.bases))
	}
}
