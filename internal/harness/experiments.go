package harness

import (
	"fmt"

	"lrcdsm/internal/apps/taskqueue"
	"lrcdsm/internal/core"
	"lrcdsm/internal/network"
)

// DefaultProcs is the processor-count axis used by the paper's figures.
var DefaultProcs = []int{1, 2, 4, 8, 16}

// FigureSet bundles the three per-application plots the paper shows for
// each workload on ATM: speedup, message count, and data volume — e.g.
// Figures 7–9 for Jacobi, 10–12 for TSP, 13–15 for Water, 16–18 for
// Cholesky. Rows are protocols, columns are processor counts.
type FigureSet struct {
	App     string
	Speedup *Table
	Msgs    *Table
	DataKB  *Table
}

// sweepCell is the outcome of one (row, column) cell of a sweep, filled
// in by the worker pool and assembled into tables afterwards.
type sweepCell struct {
	res     *Result
	speedup float64
}

// AppFigures runs the full protocol × processor sweep for one application
// on the given network and renders the three plots. Cells execute on the
// runner's worker pool; tables are assembled in row-major cell order, so
// the rendered output is identical for any worker count.
func AppFigures(r *Runner, app string, scale Scale, procs []int, net network.Params, title string) (*FigureSet, error) {
	cols := []string{"protocol"}
	for _, p := range procs {
		cols = append(cols, fmt.Sprintf("%dp", p))
	}
	fs := &FigureSet{
		App:     app,
		Speedup: &Table{Title: title + " — speedup", Columns: cols},
		Msgs:    &Table{Title: title + " — messages", Columns: cols},
		DataKB:  &Table{Title: title + " — data (KB)", Columns: cols},
	}
	np := len(procs)
	cells := make([]sweepCell, len(core.Protocols)*np)
	err := r.RunCells(len(cells), func(i int) error {
		spec := DefaultSpec(app, scale)
		spec.Protocol = core.Protocols[i/np]
		spec.Procs = procs[i%np]
		spec.Net = net
		res, speedup, err := r.Speedup(spec)
		if err != nil {
			return err
		}
		cells[i] = sweepCell{res, speedup}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, prot := range core.Protocols {
		su := []string{prot.String()}
		ms := []string{prot.String()}
		da := []string{prot.String()}
		for ni := range procs {
			c := cells[pi*np+ni]
			su = append(su, fmt.Sprintf("%.2f", c.speedup))
			ms = append(ms, fmt.Sprintf("%d", c.res.Stats.Msgs))
			da = append(da, fmt.Sprintf("%.0f", c.res.Stats.DataKB()))
		}
		fs.Speedup.Rows = append(fs.Speedup.Rows, su)
		fs.Msgs.Rows = append(fs.Msgs.Rows, ms)
		fs.DataKB.Rows = append(fs.DataKB.Rows, da)
	}
	return fs, nil
}

// Figure6 reproduces "Speedup for Jacobi on Ethernet": the shared medium
// saturates, so speedup peaks around 8 processors and declines at 16.
func Figure6(r *Runner, scale Scale) (*Table, error) {
	fs, err := AppFigures(r, "jacobi", scale, DefaultProcs,
		network.Ethernet10(core.DefaultClockMHz, true), "Figure 6: Jacobi on 10 Mbit Ethernet")
	if err != nil {
		return nil, err
	}
	return fs.Speedup, nil
}

// Figures7to9 reproduces the Jacobi-on-ATM plots.
func Figures7to9(r *Runner, scale Scale) (*FigureSet, error) {
	return AppFigures(r, "jacobi", scale, DefaultProcs,
		network.ATMNet(100, core.DefaultClockMHz), "Figures 7-9: Jacobi on 100 Mbit ATM")
}

// Figures10to12 reproduces the TSP-on-ATM plots.
func Figures10to12(r *Runner, scale Scale) (*FigureSet, error) {
	return AppFigures(r, "tsp", scale, DefaultProcs,
		network.ATMNet(100, core.DefaultClockMHz), "Figures 10-12: TSP on 100 Mbit ATM")
}

// Figures13to15 reproduces the Water-on-ATM plots.
func Figures13to15(r *Runner, scale Scale) (*FigureSet, error) {
	return AppFigures(r, "water", scale, DefaultProcs,
		network.ATMNet(100, core.DefaultClockMHz), "Figures 13-15: Water on 100 Mbit ATM")
}

// Figures16to18 reproduces the Cholesky-on-ATM plots.
func Figures16to18(r *Runner, scale Scale) (*FigureSet, error) {
	return AppFigures(r, "cholesky", scale, DefaultProcs,
		network.ATMNet(100, core.DefaultClockMHz), "Figures 16-18: Cholesky on 100 Mbit ATM")
}

// Table2Networks lists the five network configurations of Table 2.
func Table2Networks(clockMHz float64) []struct {
	Name string
	Net  network.Params
} {
	return []struct {
		Name string
		Net  network.Params
	}{
		{"10 Mbit Ethernet w/ Coll", network.Ethernet10(clockMHz, true)},
		{"10 Mbit Ethernet w/o Coll", network.Ethernet10(clockMHz, false)},
		{"10 Mbit ATM", network.ATMNet(10, clockMHz)},
		{"100 Mbit ATM", network.ATMNet(100, clockMHz)},
		{"1 Gbit ATM", network.ATMNet(1000, clockMHz)},
	}
}

// Table2 reproduces "Speedups With Different Network Characteristics"
// (LH, 16 processors): Jacobi and Water across five networks.
func Table2(r *Runner, scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Table 2: Speedups with different network characteristics (LH, 16 processors)",
		Columns: []string{"network", "Jacobi", "Water"},
	}
	nets := Table2Networks(core.DefaultClockMHz)
	apps := []string{"jacobi", "water"}
	cells := make([]sweepCell, len(nets)*len(apps))
	err := r.RunCells(len(cells), func(i int) error {
		spec := DefaultSpec(apps[i%len(apps)], scale)
		spec.Net = nets[i/len(apps)].Net
		res, speedup, err := r.Speedup(spec)
		if err != nil {
			return err
		}
		cells[i] = sweepCell{res, speedup}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ni, nc := range nets {
		row := []string{nc.Name}
		for ai := range apps {
			row = append(row, fmt.Sprintf("%.2f", cells[ni*len(apps)+ai].speedup))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table3 reproduces "Speedups With Varying Software Overhead" (16
// processors): zero, normal, and double per-message software overhead for
// every application and protocol.
func Table3(r *Runner, scale Scale) (*Table, error) {
	cols := []string{"prog/overhead"}
	for _, p := range core.Protocols {
		cols = append(cols, p.String())
	}
	t := &Table{Title: "Table 3: Speedups with varying software overhead (16 processors)", Columns: cols}
	overheads := []struct {
		name   string
		factor float64
	}{{"Zero", 0}, {"Normal", 1}, {"Double", 2}}
	nprot := len(core.Protocols)
	rows := len(AppNames) * len(overheads)
	cells := make([]sweepCell, rows*nprot)
	err := r.RunCells(len(cells), func(i int) error {
		row, pi := i/nprot, i%nprot
		spec := DefaultSpec(AppNames[row/len(overheads)], scale)
		spec.Protocol = core.Protocols[pi]
		spec.OverheadFactor = overheads[row%len(overheads)].factor
		res, speedup, err := r.Speedup(spec)
		if err != nil {
			return err
		}
		cells[i] = sweepCell{res, speedup}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ai, app := range AppNames {
		for oi, ov := range overheads {
			rowIdx := ai*len(overheads) + oi
			row := []string{fmt.Sprintf("%s/%s", app, ov.name)}
			for pi := range core.Protocols {
				row = append(row, fmt.Sprintf("%.2f", cells[rowIdx*nprot+pi].speedup))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Table4 reproduces "Speedups with Different Processor Speeds" (LH; 16
// processors, Cholesky at 8): 20–80 MHz.
func Table4(r *Runner, scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Table 4: Speedups with different processor speeds (LH, 16 processors; Cholesky 8)",
		Columns: []string{"MHz", "Jacobi", "TSP", "Water", "Cholesky"},
	}
	speeds := []float64{20, 40, 60, 80}
	na := len(AppNames)
	cells := make([]sweepCell, len(speeds)*na)
	err := r.RunCells(len(cells), func(i int) error {
		mhz := speeds[i/na]
		app := AppNames[i%na]
		spec := DefaultSpec(app, scale)
		spec.ClockMHz = mhz
		spec.Net = network.ATMNet(100, mhz)
		if app == "cholesky" {
			spec.Procs = 8
		}
		res, speedup, err := r.Speedup(spec)
		if err != nil {
			return err
		}
		cells[i] = sweepCell{res, speedup}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for mi, mhz := range speeds {
		row := []string{fmt.Sprintf("%.0f", mhz)}
		for ai := range AppNames {
			row = append(row, fmt.Sprintf("%.2f", cells[mi*na+ai].speedup))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table5 reproduces "Effect on Speedup of Reducing the Page Size to 1024
// bytes" (LH): 8 and 16 processors, 4096- vs 1024-byte pages.
func Table5(r *Runner, scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Table 5: Effect of page size (LH)",
		Columns: []string{"procs/page", "Jacobi", "TSP", "Water", "Cholesky"},
	}
	procCounts := []int{8, 16}
	pageSizes := []int{4096, 1024}
	na := len(AppNames)
	rows := len(procCounts) * len(pageSizes)
	cells := make([]sweepCell, rows*na)
	err := r.RunCells(len(cells), func(i int) error {
		row, ai := i/na, i%na
		spec := DefaultSpec(AppNames[ai], scale)
		spec.Procs = procCounts[row/len(pageSizes)]
		spec.PageSize = pageSizes[row%len(pageSizes)]
		res, speedup, err := r.Speedup(spec)
		if err != nil {
			return err
		}
		cells[i] = sweepCell{res, speedup}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ri, procs := range procCounts {
		for si, ps := range pageSizes {
			rowIdx := ri*len(pageSizes) + si
			row := []string{fmt.Sprintf("%dp/%dB", procs, ps)}
			for ai := range AppNames {
				row = append(row, fmt.Sprintf("%.2f", cells[rowIdx*na+ai].speedup))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// SyncStats reproduces the message-classification statistics quoted in
// Section 6.2: the share of messages used for synchronization and the
// share of time spent waiting on locks, per application (LH, 16
// processors).
func SyncStats(r *Runner, scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Section 6.2 statistics (LH, 16 processors)",
		Columns: []string{"app", "msgs", "sync msgs", "sync %", "grants w/ data", "lock wait %"},
	}
	cells := make([]sweepCell, len(AppNames))
	err := r.RunCells(len(cells), func(i int) error {
		res, speedup, err := r.Speedup(DefaultSpec(AppNames[i], scale))
		if err != nil {
			return err
		}
		cells[i] = sweepCell{res, speedup}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, app := range AppNames {
		st := cells[i].res.Stats
		// mean per-processor share of time spent acquiring locks (the
		// paper's Cholesky metric: "84% of each processor's time")
		var lockShare float64
		for i := range st.PerProc {
			lockShare += st.PerProc[i].LockShare()
		}
		if len(st.PerProc) > 0 {
			lockShare /= float64(len(st.PerProc))
		}
		t.Rows = append(t.Rows, []string{
			app,
			fmt.Sprintf("%d", st.Msgs),
			fmt.Sprintf("%d", st.SyncMsgs),
			fmt.Sprintf("%.0f%%", 100*st.SyncShare()),
			fmt.Sprintf("%d", st.SyncDataMsgs),
			fmt.Sprintf("%.0f%%", 100*lockShare),
		})
	}
	return t, nil
}

// ReacquireExperiment demonstrates Section 6.2's closing observation:
// "When a lock is reacquired by the same processor before another
// processor acquires it, the lazy protocols have an advantage over the
// eager protocols. An eager protocol must distribute diffs at every lock
// release; lazy release consistency permits us to avoid external
// communication when the same lock is reacquired." One processor
// repeatedly locks, writes and unlocks a hot structure that others merely
// cache; the eager protocols flush per release, the lazy ones are silent.
func ReacquireExperiment(procs, rounds int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Lock reacquisition (one writer, %d reacquires, %d processors caching)", rounds, procs),
		Columns: []string{"protocol", "msgs", "data KB", "cycles"},
	}
	for _, prot := range core.Protocols {
		cfg := core.DefaultConfig()
		cfg.Protocol = prot
		cfg.Procs = procs
		cfg.Net = network.ATMNet(100, core.DefaultClockMHz)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		a := sys.AllocPage(64)
		lk := sys.NewLock()
		bar := sys.NewBarrier()
		st, err := sys.Run(func(p *core.Proc) {
			_ = p.ReadF64(a) // everyone caches the hot page
			p.Barrier(bar)
			if p.ID() == procs-1 { // a non-manager writer: remote first acquire
				for i := 0; i < rounds; i++ {
					p.Lock(lk)
					p.WriteF64(a, float64(i))
					p.Unlock(lk)
					p.Compute(2_000)
				}
			}
			p.Barrier(bar)
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			prot.String(),
			fmt.Sprintf("%d", st.Msgs),
			fmt.Sprintf("%.1f", st.DataKB()),
			fmt.Sprintf("%d", st.Cycles),
		})
	}
	return t, nil
}

// TaskQueueFigures runs the promoted task-queue workload through the
// standard protocol × processor sweep on ATM — the same three plots the
// paper's four workloads get, for the queue's all-synchronization
// sharing pattern.
func TaskQueueFigures(r *Runner, scale Scale) (*FigureSet, error) {
	return AppFigures(r, "taskqueue", scale, DefaultProcs,
		network.ATMNet(100, core.DefaultClockMHz), "Task queue on ATM")
}

// TaskQueueGrain sweeps the task granularity at a fixed processor count
// (the examples/taskqueue demonstration, now regenerable): coarse tasks
// scale, fine tasks drown in lock-acquisition latency, and the lazy
// protocols hold their advantage longest. Rows are grains, one speedup
// column per protocol.
func TaskQueueGrain(r *Runner, scale Scale) (*Table, error) {
	const procs = 8
	tasks, grains := 200, []int64{1_000, 10_000, 100_000, 1_000_000}
	switch scale {
	case ScaleBench:
		tasks, grains = 120, []int64{1_000, 10_000, 100_000}
	case ScaleTest:
		tasks, grains = 24, []int64{200, 2_000}
	}
	prots := []core.Protocol{core.LH, core.LI, core.EU}
	t := &Table{
		Title:   fmt.Sprintf("Task-queue granularity (%d tasks, %d processors, ATM) — speedup", tasks, procs),
		Columns: []string{"grain (cycles)"},
	}
	for _, prot := range prots {
		t.Columns = append(t.Columns, prot.String())
	}
	run := func(prot core.Protocol, np int, grain int64) (int64, error) {
		cfg := core.DefaultConfig()
		cfg.Protocol = prot
		cfg.Procs = np
		cfg.Net = network.ATMNet(100, core.DefaultClockMHz)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return 0, err
		}
		app := taskqueue.New(taskqueue.Params{Tasks: tasks, Grain: grain})
		app.Configure(sys)
		stats, err := sys.Run(func(p *core.Proc) { app.Worker(p) })
		if err != nil {
			return 0, err
		}
		if err := app.Verify(sys); err != nil {
			return 0, fmt.Errorf("taskqueue/%v/%dp grain %d: %w", prot, np, grain, err)
		}
		return int64(stats.Cycles), nil
	}
	cells := make([]float64, len(grains)*len(prots))
	err := r.RunCells(len(cells), func(i int) error {
		grain, prot := grains[i/len(prots)], prots[i%len(prots)]
		base, err := run(prot, 1, grain)
		if err != nil {
			return err
		}
		par, err := run(prot, procs, grain)
		if err != nil {
			return err
		}
		cells[i] = float64(base) / float64(par)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for gi, grain := range grains {
		row := []string{fmt.Sprintf("%d", grain)}
		for pi := range prots {
			row = append(row, fmt.Sprintf("%.2f", cells[gi*len(prots)+pi]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
