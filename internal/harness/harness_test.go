package harness

import (
	"strconv"
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/network"
)

func cell(t *testing.T, tb *Table, row, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Cell(row, col), 64)
	if err != nil {
		t.Fatalf("cell (%s, %s) = %q: %v", row, col, tb.Cell(row, col), err)
	}
	return v
}

func TestRunAllAppsAllProtocolsTestScale(t *testing.T) {
	for _, app := range AppNames {
		for _, prot := range core.Protocols {
			spec := DefaultSpec(app, ScaleTest)
			spec.Protocol = prot
			spec.Procs = 4
			if _, err := Run(spec); err != nil {
				t.Errorf("%s/%v: %v", app, prot, err)
			}
		}
	}
}

func TestSpeedupBaselineCached(t *testing.T) {
	r := NewRunner()
	spec := DefaultSpec("jacobi", ScaleTest)
	spec.Procs = 4
	_, s1, err := r.Speedup(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.bases) != 1 {
		t.Fatalf("bases = %d, want 1", len(r.bases))
	}
	spec.Protocol = core.EI
	_, _, err = r.Speedup(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.bases) != 1 {
		t.Fatalf("protocol change must reuse the baseline (bases = %d)", len(r.bases))
	}
	if s1 <= 0 {
		t.Fatalf("speedup = %v", s1)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"k", "v"},
		Rows:    [][]string{{"a", "1"}, {"b", "2"}},
	}
	out := tb.String()
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	if tb.Cell("b", "v") != "2" {
		t.Fatalf("Cell = %q", tb.Cell("b", "v"))
	}
	if tb.Cell("zz", "v") != "" || tb.Cell("a", "zz") != "" {
		t.Fatal("missing cells must be empty")
	}
}

func TestParseScale(t *testing.T) {
	for _, name := range []string{"paper", "bench", "test"} {
		if _, err := ParseScale(name); err != nil {
			t.Errorf("ParseScale(%q): %v", name, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestNewAppUnknown(t *testing.T) {
	if _, err := NewApp("doom", ScaleTest); err == nil {
		t.Error("unknown app accepted")
	}
}

// ---- experiment shape assertions (the reproduction targets) ----

// Shape: on Ethernet, Jacobi's speedup does not scale past the medium's
// saturation point — 16 processors are no better than 8 — while on ATM it
// keeps improving (Figure 6 vs Figure 7).
func TestShapeEthernetSaturates(t *testing.T) {
	r := NewRunner()
	procs := []int{1, 8, 16}
	eth, err := AppFigures(r, "jacobi", ScaleBench, procs,
		network.Ethernet10(core.DefaultClockMHz, true), "eth")
	if err != nil {
		t.Fatal(err)
	}
	atm, err := AppFigures(r, "jacobi", ScaleBench, procs,
		network.ATMNet(100, core.DefaultClockMHz), "atm")
	if err != nil {
		t.Fatal(err)
	}
	eth8 := cell(t, eth.Speedup, "LH", "8p")
	eth16 := cell(t, eth.Speedup, "LH", "16p")
	atm8 := cell(t, atm.Speedup, "LH", "8p")
	atm16 := cell(t, atm.Speedup, "LH", "16p")
	if eth16 > eth8*1.1 {
		t.Errorf("Ethernet should saturate: speedup 8p=%.2f 16p=%.2f", eth8, eth16)
	}
	if atm16 <= eth16 {
		t.Errorf("ATM@16p (%.2f) must beat Ethernet@16p (%.2f)", atm16, eth16)
	}
	if atm16 <= atm8 {
		t.Errorf("ATM should keep scaling: 8p=%.2f 16p=%.2f", atm8, atm16)
	}
}

// Shape: for Water at 16 processors, LH is the best protocol and EU the
// worst, with EU sending far more messages (Figures 13–14).
func TestShapeWaterProtocolRanking(t *testing.T) {
	r := NewRunner()
	fs, err := AppFigures(r, "water", ScaleBench, []int{1, 16},
		network.ATMNet(100, core.DefaultClockMHz), "water")
	if err != nil {
		t.Fatal(err)
	}
	lh := cell(t, fs.Speedup, "LH", "16p")
	eu := cell(t, fs.Speedup, "EU", "16p")
	li := cell(t, fs.Speedup, "LI", "16p")
	if lh < eu {
		t.Errorf("LH (%.2f) must beat EU (%.2f) on Water", lh, eu)
	}
	if lh < li {
		t.Errorf("LH (%.2f) should be at least LI (%.2f) on Water", lh, li)
	}
	lhMsgs := cell(t, fs.Msgs, "LH", "16p")
	euMsgs := cell(t, fs.Msgs, "EU", "16p")
	if euMsgs < 2*lhMsgs {
		t.Errorf("EU messages (%.0f) should dwarf LH's (%.0f)", euMsgs, lhMsgs)
	}
	// EI moves the most data (whole pages on every miss).
	eiData := cell(t, fs.DataKB, "EI", "16p")
	lhData := cell(t, fs.DataKB, "LH", "16p")
	if eiData < 2*lhData {
		t.Errorf("EI data (%.0f KB) should dwarf LH's (%.0f KB)", eiData, lhData)
	}
}

// Shape: Cholesky achieves almost no speedup under any protocol, and its
// traffic is dominated by synchronization (Figure 16, Section 6.2).
func TestShapeCholeskySyncBound(t *testing.T) {
	r := NewRunner()
	for _, prot := range core.Protocols {
		spec := DefaultSpec("cholesky", ScaleBench)
		spec.Protocol = prot
		spec.Procs = 16
		res, speedup, err := r.Speedup(spec)
		if err != nil {
			t.Fatal(err)
		}
		if speedup > 3 {
			t.Errorf("%v: Cholesky speedup %.2f is implausibly high", prot, speedup)
		}
		if prot == core.LH && res.Stats.SyncShare() < 0.5 {
			t.Errorf("sync share %.2f, expected domination", res.Stats.SyncShare())
		}
	}
}

// Shape: increasing processor speed makes communication relatively more
// expensive, so Water's speedup falls from 20 MHz to 80 MHz (Table 4).
func TestShapeProcessorSpeed(t *testing.T) {
	r := NewRunner()
	get := func(mhz float64) float64 {
		spec := DefaultSpec("water", ScaleBench)
		spec.ClockMHz = mhz
		spec.Net = network.ATMNet(100, mhz)
		_, s, err := r.Speedup(spec)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	slow, fast := get(20), get(80)
	if fast > slow {
		t.Errorf("faster processors should reduce Water speedup: 20MHz=%.2f 80MHz=%.2f", slow, fast)
	}
}

// Shape: removing the software overhead improves every protocol (Table 3's
// Zero rows always dominate Normal).
func TestShapeZeroOverheadHelps(t *testing.T) {
	r := NewRunner()
	get := func(factor float64) float64 {
		spec := DefaultSpec("water", ScaleBench)
		spec.OverheadFactor = factor
		_, s, err := r.Speedup(spec)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	zero, normal, double := get(0), get(1), get(2)
	if zero < normal || normal < double {
		t.Errorf("speedups must fall with overhead: zero=%.2f normal=%.2f double=%.2f",
			zero, normal, double)
	}
}

// Shape: lock reacquisition is free for the lazy protocols and costs a
// flush per release for the eager ones (Section 6.2's closing point).
func TestShapeLazyReacquireAdvantage(t *testing.T) {
	tb, err := ReacquireExperiment(4, 20)
	if err != nil {
		t.Fatal(err)
	}
	lh := cell(t, tb, "LH", "msgs")
	eu := cell(t, tb, "EU", "msgs")
	ei := cell(t, tb, "EI", "msgs")
	// EU flushes to every cacher per release; EI's first release empties
	// the copyset, so its later releases only re-invalidate the owner.
	if eu < 4*lh || ei < 2*lh {
		t.Errorf("eager reacquires should flood: LH=%v EU=%v EI=%v", lh, eu, ei)
	}
}

// TestTaskQueueApp covers the promoted task-queue workload (not in
// AppNames: it is this reproduction's own probe, not a paper figure) —
// every protocol at 4 processors, plus one checked run whose final
// memory is compared against a 1-processor reference.
func TestTaskQueueApp(t *testing.T) {
	for _, prot := range core.Protocols {
		spec := DefaultSpec("taskqueue", ScaleTest)
		spec.Protocol = prot
		spec.Procs = 4
		if _, err := Run(spec); err != nil {
			t.Errorf("taskqueue/%v: %v", prot, err)
		}
	}
	spec := DefaultSpec("taskqueue", ScaleTest)
	spec.Procs = 4
	spec.Check = true
	if _, err := Run(spec); err != nil {
		t.Errorf("taskqueue checked run: %v", err)
	}
}

// TestTaskQueueGrainShape pins the workload's qualitative claim at test
// scale: coarser tasks always speed up at least as well as finer ones
// under the lazy hybrid protocol.
func TestTaskQueueGrainShape(t *testing.T) {
	tb, err := TaskQueueGrain(NewRunnerN(0), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 2 {
		t.Fatalf("grain sweep produced %d rows", len(tb.Rows))
	}
	fine := cell(t, tb, tb.Rows[0][0], "LH")
	coarse := cell(t, tb, tb.Rows[len(tb.Rows)-1][0], "LH")
	if coarse < fine {
		t.Errorf("LH speedup fell from %.2f to %.2f as grain coarsened", fine, coarse)
	}
}
