package vc

import "testing"

func BenchmarkJoin(b *testing.B) {
	x, y := New(16), New(16)
	for i := range y {
		y[i] = int32(i)
	}
	for i := 0; i < b.N; i++ {
		x.Join(y)
	}
}

func BenchmarkCovers(b *testing.B) {
	x, y := New(16), New(16)
	for i := range x {
		x[i] = int32(i + 1)
		y[i] = int32(i)
	}
	for i := 0; i < b.N; i++ {
		if !x.Covers(y) {
			b.Fatal("cover")
		}
	}
}
