package vc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(4)
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want 4", v.Len())
	}
	for i := 0; i < 4; i++ {
		if v.Get(i) != 0 {
			t.Errorf("slot %d = %d, want 0", i, v.Get(i))
		}
	}
}

func TestTick(t *testing.T) {
	v := New(3)
	if got := v.Tick(1); got != 1 {
		t.Fatalf("first Tick = %d, want 1", got)
	}
	if got := v.Tick(1); got != 2 {
		t.Fatalf("second Tick = %d, want 2", got)
	}
	if v.Get(0) != 0 || v.Get(2) != 0 {
		t.Errorf("Tick modified other slots: %v", v)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := New(2)
	v.Set(0, 5)
	c := v.Clone()
	c.Set(0, 9)
	if v.Get(0) != 5 {
		t.Errorf("Clone aliases original: %v", v)
	}
}

func TestCoversAndConcurrent(t *testing.T) {
	a := VC{2, 0, 1}
	b := VC{1, 0, 1}
	if !a.Covers(b) {
		t.Errorf("%v should cover %v", a, b)
	}
	if b.Covers(a) {
		t.Errorf("%v should not cover %v", b, a)
	}
	c := VC{0, 3, 0}
	if !a.Concurrent(c) || !c.Concurrent(a) {
		t.Errorf("%v and %v should be concurrent", a, c)
	}
	if a.Concurrent(a.Clone()) {
		t.Errorf("a vector is not concurrent with itself")
	}
}

func TestJoin(t *testing.T) {
	a := VC{2, 0, 1}
	b := VC{1, 3, 1}
	a.Join(b)
	want := VC{2, 3, 1}
	if !a.Equal(want) {
		t.Errorf("Join = %v, want %v", a, want)
	}
	if !a.Covers(b) {
		t.Errorf("join must cover both operands")
	}
}

func TestCoversInterval(t *testing.T) {
	v := VC{0, 4, 0}
	if !v.CoversInterval(1, 4) {
		t.Errorf("should cover interval 4 of proc 1")
	}
	if v.CoversInterval(1, 5) {
		t.Errorf("should not cover interval 5 of proc 1")
	}
	if !v.CoversInterval(0, 0) {
		t.Errorf("zero vector covers interval 0")
	}
}

func TestString(t *testing.T) {
	v := VC{1, 0, 2}
	if got := v.String(); got != "<1 0 2>" {
		t.Errorf("String = %q", got)
	}
}

func randVC(r *rand.Rand, n int) VC {
	v := New(n)
	for i := range v {
		v[i] = int32(r.Intn(5))
	}
	return v
}

// Property: Join is the least upper bound — it covers both inputs, and any
// vector covering both inputs covers the join.
func TestQuickJoinIsLUB(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a, b := randVC(r, n), randVC(r, n)
		j := a.Clone()
		j.Join(b)
		if !j.Covers(a) || !j.Covers(b) {
			return false
		}
		// any upper bound covers j
		u := New(n)
		for i := range u {
			u[i] = a[i]
			if b[i] > u[i] {
				u[i] = b[i]
			}
			u[i] += int32(r.Intn(3))
		}
		return u.Covers(j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Covers is a partial order (reflexive, antisymmetric, transitive).
func TestQuickCoversPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a, b, c := randVC(r, n), randVC(r, n), randVC(r, n)
		if !a.Covers(a) {
			return false
		}
		if a.Covers(b) && b.Covers(a) && !a.Equal(b) {
			return false
		}
		if a.Covers(b) && b.Covers(c) && !a.Covers(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ticking my own slot makes the result strictly newer, never
// covered by the old value.
func TestQuickTickAdvances(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		v := randVC(r, n)
		old := v.Clone()
		p := r.Intn(n)
		v.Tick(p)
		return v.Covers(old) && !old.Covers(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
