// Package vc implements vector timestamps for the happened-before-1
// partial order used by lazy release consistency (Keleher et al., ISCA'92).
//
// A vector timestamp V assigns to each processor p the index of the most
// recent interval of p whose effects are known. The happened-before-1
// relation between intervals is exactly the pointwise order on their
// timestamps: interval a precedes interval b iff a.VC <= b.VC and a != b.
package vc

import "fmt"

// VC is a vector timestamp. Index i holds the latest interval index of
// processor i that is covered. The zero value of a fixed length (all zeros)
// covers nothing.
type VC []int32

// New returns a zero vector timestamp for n processors.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Len returns the number of processor slots.
func (v VC) Len() int { return len(v) }

// Get returns the interval index covered for processor p.
func (v VC) Get(p int) int32 { return v[p] }

// Set records that intervals of processor p up to and including idx are covered.
func (v VC) Set(p int, idx int32) { v[p] = idx }

// Tick advances processor p's own slot by one and returns the new index.
func (v VC) Tick(p int) int32 {
	v[p]++
	return v[p]
}

// Join folds other into v, taking the pointwise maximum.
func (v VC) Join(other VC) {
	for i, o := range other {
		if o > v[i] {
			v[i] = o
		}
	}
}

// Covers reports whether v >= other pointwise, i.e. everything other has
// seen is also seen by v.
func (v VC) Covers(other VC) bool {
	for i, o := range other {
		if v[i] < o {
			return false
		}
	}
	return true
}

// CoversInterval reports whether v covers interval idx of processor p.
func (v VC) CoversInterval(p int, idx int32) bool { return v[p] >= idx }

// Concurrent reports whether neither vector covers the other.
func (v VC) Concurrent(other VC) bool {
	return !v.Covers(other) && !other.Covers(v)
}

// Equal reports whether the two vectors are identical.
func (v VC) Equal(other VC) bool {
	if len(v) != len(other) {
		return false
	}
	for i := range v {
		if v[i] != other[i] {
			return false
		}
	}
	return true
}

// Sum returns the total number of intervals covered. It is used only as a
// deterministic tiebreaker when ordering concurrent intervals of
// data-race-free programs (where concurrent diffs touch disjoint words and
// therefore commute).
func (v VC) Sum() int64 {
	var s int64
	for _, x := range v {
		s += int64(x)
	}
	return s
}

// String formats the vector as e.g. "<0 3 1>".
func (v VC) String() string {
	s := "<"
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprint(x)
	}
	return s + ">"
}
