package cachesim

import "testing"

// BenchmarkAccessHit measures the fast path charged on every shared access.
func BenchmarkAccessHit(b *testing.B) {
	c := Default()
	c.Access(64)
	for i := 0; i < b.N; i++ {
		c.Access(64)
	}
}

// BenchmarkAccessStream measures a sequential sweep (Jacobi-like).
func BenchmarkAccessStream(b *testing.B) {
	c := Default()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i*8) & (1<<20 - 1))
	}
}
