// Package cachesim models the per-processor data cache of the paper's
// architectural model: a 64 KByte direct-mapped cache with a 12-cycle
// memory latency on a miss and infinite local memory (no capacity misses at
// the memory level).
package cachesim

import "lrcdsm/internal/sim"

// Default parameters from the paper's architectural model (Section 5.2).
const (
	DefaultSizeBytes   = 64 * 1024
	DefaultLineBytes   = 32
	DefaultHitCycles   = 1
	DefaultMissPenalty = 12
)

// Cache is a direct-mapped cache addressed by global shared-memory address.
type Cache struct {
	lineShift uint
	mask      int64
	tags      []int64 // tag per line, -1 when empty

	hitCycles   sim.Time
	missPenalty sim.Time

	hits   int64
	misses int64
}

// New returns a direct-mapped cache. sizeBytes and lineBytes must be powers
// of two with sizeBytes >= lineBytes.
func New(sizeBytes, lineBytes int, hitCycles, missPenalty sim.Time) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || sizeBytes%lineBytes != 0 ||
		lineBytes&(lineBytes-1) != 0 || sizeBytes&(sizeBytes-1) != 0 {
		panic("cachesim: size and line must be powers of two")
	}
	n := sizeBytes / lineBytes
	c := &Cache{
		mask:        int64(n - 1),
		tags:        make([]int64, n),
		hitCycles:   hitCycles,
		missPenalty: missPenalty,
	}
	for lineBytes > 1 {
		lineBytes >>= 1
		c.lineShift++
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// Default returns a cache with the paper's parameters.
func Default() *Cache {
	return New(DefaultSizeBytes, DefaultLineBytes, DefaultHitCycles, DefaultMissPenalty)
}

// Access models a load or store to the given byte address and returns its
// cost in cycles.
func (c *Cache) Access(addr int64) sim.Time {
	line := addr >> c.lineShift
	idx := line & c.mask
	if c.tags[idx] == line {
		c.hits++
		return c.hitCycles
	}
	c.tags[idx] = line
	c.misses++
	return c.hitCycles + c.missPenalty
}

// InvalidateRange evicts all lines covering [addr, addr+n): used when a DSM
// page is replaced underneath the cache (a fresh copy or applied diffs must
// not hit stale cache lines).
func (c *Cache) InvalidateRange(addr int64, n int) {
	first := addr >> c.lineShift
	last := (addr + int64(n) - 1) >> c.lineShift
	for line := first; line <= last; line++ {
		idx := line & c.mask
		if c.tags[idx] == line {
			c.tags[idx] = -1
		}
	}
}

// Hits returns the number of cache hits observed.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of cache misses observed.
func (c *Cache) Misses() int64 { return c.misses }
