package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	c := Default()
	if got := c.Access(0); got != DefaultHitCycles+DefaultMissPenalty {
		t.Errorf("cold access = %d cycles", got)
	}
	if got := c.Access(8); got != DefaultHitCycles {
		t.Errorf("same-line access = %d cycles, want hit", got)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestConflictMiss(t *testing.T) {
	c := Default()
	c.Access(0)
	c.Access(DefaultSizeBytes) // maps to same line in a direct-mapped cache
	if got := c.Access(0); got != DefaultHitCycles+DefaultMissPenalty {
		t.Errorf("conflicting line should have evicted: %d cycles", got)
	}
}

func TestLineGranularity(t *testing.T) {
	c := Default()
	c.Access(100)
	if got := c.Access(100 - 100%DefaultLineBytes); got != DefaultHitCycles {
		t.Errorf("line start should hit: %d", got)
	}
	if got := c.Access(100 + DefaultLineBytes); got == DefaultHitCycles {
		t.Errorf("next line should miss")
	}
}

func TestInvalidateRange(t *testing.T) {
	c := Default()
	for a := int64(0); a < 4096; a += DefaultLineBytes {
		c.Access(a)
	}
	c.InvalidateRange(0, 4096)
	if got := c.Access(64); got != DefaultHitCycles+DefaultMissPenalty {
		t.Errorf("invalidated line should miss: %d", got)
	}
}

func TestInvalidateRangeLeavesOthers(t *testing.T) {
	c := Default()
	c.Access(0)
	c.Access(8192)
	c.InvalidateRange(0, 4096)
	if got := c.Access(8192); got != DefaultHitCycles {
		t.Errorf("untouched line should still hit: %d", got)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1000, 32, 1, 12)
}

// Property: repeating any access sequence entirely within a working set
// smaller than the cache yields all hits on the second pass when addresses
// are line-disjoint modulo the cache size.
func TestQuickSecondPassHits(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := Default()
		// choose distinct lines within one cache-sized window
		nAddrs := 1 + r.Intn(100)
		addrs := make([]int64, nAddrs)
		for i := range addrs {
			addrs[i] = int64(r.Intn(DefaultSizeBytes/DefaultLineBytes)) * DefaultLineBytes
		}
		for _, a := range addrs {
			c.Access(a)
		}
		for _, a := range addrs {
			if c.Access(a) != DefaultHitCycles {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hits+misses equals total accesses.
func TestQuickAccountingBalances(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := Default()
		n := r.Intn(500)
		for i := 0; i < n; i++ {
			c.Access(int64(r.Intn(1 << 20)))
		}
		return c.Hits()+c.Misses() == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
