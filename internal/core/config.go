package core

import (
	"fmt"

	"lrcdsm/internal/network"
	"lrcdsm/internal/sim"
)

// Protocol selects one of the five release-consistency protocols.
type Protocol int

const (
	// LH is the paper's new lazy hybrid protocol: the lock grant piggybacks
	// diffs for pages the releaser believes the acquirer caches; other
	// noticed pages are invalidated.
	LH Protocol = iota
	// LI is lazy invalidate: write notices on the grant, invalidation of
	// noticed pages, data moves only on access misses.
	LI
	// LU is lazy update: never invalidates; an acquire does not complete
	// until all diffs named by incoming write notices for locally cached
	// pages have been obtained.
	LU
	// EI is eager invalidate (Munin-style): at a release, invalidations are
	// flushed to all cachers of modified pages.
	EI
	// EU is eager update: at a release, diffs are flushed to all cachers of
	// modified pages.
	EU
)

// Protocols lists all five protocols in the paper's presentation order.
var Protocols = []Protocol{LH, LI, LU, EI, EU}

func (p Protocol) String() string {
	switch p {
	case LH:
		return "LH"
	case LI:
		return "LI"
	case LU:
		return "LU"
	case EI:
		return "EI"
	case EU:
		return "EU"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Lazy reports whether the protocol propagates consistency information at
// acquires (lazily) rather than at releases (eagerly).
func (p Protocol) Lazy() bool { return p == LH || p == LI || p == LU }

// ParseProtocol converts a protocol name ("LH", "li", ...) to a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range Protocols {
		if eqFold(p.String(), s) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown protocol %q", s)
}

func eqFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Architectural defaults from Section 5.2 of the paper (OCR-reconstructed;
// see DESIGN.md).
const (
	DefaultPageSize     = 4096
	DefaultClockMHz     = 40
	DefaultCacheBytes   = 64 * 1024
	DefaultCacheLine    = 32
	DefaultMemLatency   = 12
	DefaultFixedOverhead = 1000 // cycles per message per end
)

// Config describes one simulated DSM system.
type Config struct {
	Protocol Protocol
	Procs    int
	PageSize int

	ClockMHz float64        // processor clock; scales network cycle costs
	Net      network.Params // network model

	// OverheadFactor scales the per-message software overhead: 0 for the
	// "Zero", 1 for "Normal" and 2 for "Double" rows of Table 3.
	OverheadFactor float64

	// FixedOverheadCycles is the per-message fixed cost at each end
	// (operating system, user-level handler dispatch, DSM bookkeeping).
	FixedOverheadCycles sim.Time

	// CacheBytes/CacheLine/MemLatencyCycles configure the per-processor
	// cache model; CacheBytes = 0 disables it (1-cycle accesses).
	CacheBytes       int
	CacheLine        int
	MemLatencyCycles sim.Time

	// MaxSharedBytes bounds the shared address space (allocator capacity).
	MaxSharedBytes int

	// DebugCheckReads makes every shared read compare against the oracle
	// image and panic on mismatch. Only sound for fully synchronized
	// programs (no benign races): used by tests to localize coherence bugs.
	DebugCheckReads bool

	// TraceCapacity enables protocol event tracing, keeping the most
	// recent events in a ring of this size (see internal/trace; exposed
	// through System.Trace and dsmsim's -trace flag). Zero disables.
	TraceCapacity int

	// Observer, when non-nil, receives protocol events for runtime
	// invariant checking (see internal/check). It adds a few branches to
	// the protocol hot paths; production sweeps leave it nil.
	Observer Observer

	// CentralizedLocks is an ablation of the paper's distributed lock
	// queue: the token returns to the statically assigned manager at every
	// release (consistency information is relayed through the manager),
	// instead of being granted releaser-to-acquirer. Costs an extra message
	// per release and an extra acquire/release pair of consistency
	// processing at the manager.
	CentralizedLocks bool
}

// DefaultConfig returns the paper's base configuration: 16 processors at
// 40 MHz, 4096-byte pages, 100 Mbit/s ATM, normal software overhead.
func DefaultConfig() Config {
	return Config{
		Protocol:            LH,
		Procs:               16,
		PageSize:            DefaultPageSize,
		ClockMHz:            DefaultClockMHz,
		Net:                 network.ATMNet(100, DefaultClockMHz),
		OverheadFactor:      1,
		FixedOverheadCycles: DefaultFixedOverhead,
		CacheBytes:          DefaultCacheBytes,
		CacheLine:           DefaultCacheLine,
		MemLatencyCycles:    DefaultMemLatency,
		MaxSharedBytes:      64 << 20,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Procs < 1 || c.Procs > 64:
		return fmt.Errorf("core: Procs = %d, want 1..64", c.Procs)
	case c.PageSize < 64 || c.PageSize&(c.PageSize-1) != 0:
		return fmt.Errorf("core: PageSize = %d, want power of two >= 64", c.PageSize)
	case c.ClockMHz <= 0:
		return fmt.Errorf("core: ClockMHz = %v", c.ClockMHz)
	case c.OverheadFactor < 0:
		return fmt.Errorf("core: OverheadFactor = %v", c.OverheadFactor)
	case c.MaxSharedBytes < c.PageSize:
		return fmt.Errorf("core: MaxSharedBytes = %d too small", c.MaxSharedBytes)
	}
	return nil
}

// messageOverheadCycles is the software overhead charged at one end of a
// message carrying payloadBytes of shared data. The paper charges
// 1000 + len·1.5/4 cycles per end, and models the lazy implementation's
// extra complexity by doubling the per-byte term at both ends.
func (c Config) messageOverheadCycles(payloadBytes int) sim.Time {
	perByte := 1.5 / 4.0
	if c.Protocol.Lazy() {
		perByte *= 2
	}
	cycles := (float64(c.FixedOverheadCycles) + float64(payloadBytes)*perByte) * c.OverheadFactor
	return sim.Time(cycles)
}

// diffCreationCycles is the cost of creating a diff of one page: four
// cycles per (4-byte) word per page, i.e. one cycle per byte.
func (c Config) diffCreationCycles() sim.Time {
	return sim.Time(c.PageSize)
}
