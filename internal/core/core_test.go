package core

import (
	"testing"

	"lrcdsm/internal/network"
)

// testConfig returns a small, fast configuration for micro-programs.
func testConfig(prot Protocol, procs int) Config {
	cfg := DefaultConfig()
	cfg.Protocol = prot
	cfg.Procs = procs
	cfg.PageSize = 256
	cfg.MaxSharedBytes = 1 << 20
	cfg.Net = network.ATMNet(100, DefaultClockMHz)
	return cfg
}

func mustSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, s *System, worker func(*Proc)) *RunStats {
	t.Helper()
	st, err := s.Run(worker)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSingleProcReadWrite(t *testing.T) {
	s := mustSystem(t, testConfig(LH, 1))
	a := s.Alloc(64)
	s.InitF64(a, 1.5)
	st := run(t, s, func(p *Proc) {
		if got := p.ReadF64(a); got != 1.5 {
			t.Errorf("initial read = %v", got)
		}
		p.WriteF64(a+8, 2.5)
		if got := p.ReadF64(a + 8); got != 2.5 {
			t.Errorf("read back = %v", got)
		}
	})
	if s.PeekF64(a+8) != 2.5 {
		t.Errorf("oracle = %v", s.PeekF64(a+8))
	}
	if st.Msgs != 0 {
		t.Errorf("single proc sent %d messages", st.Msgs)
	}
}

// A lock-protected counter incremented by every processor must end at the
// exact total under every protocol: the core release-consistency guarantee.
func TestLockProtectedCounterAllProtocols(t *testing.T) {
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			const procs, iters = 4, 10
			s := mustSystem(t, testConfig(prot, procs))
			a := s.Alloc(8)
			lk := s.NewLock()
			run(t, s, func(p *Proc) {
				for i := 0; i < iters; i++ {
					p.Lock(lk)
					p.WriteI64(a, p.ReadI64(a)+1)
					p.Unlock(lk)
					p.Compute(500)
				}
			})
			if got := s.PeekI64(a); got != procs*iters {
				t.Errorf("counter = %d, want %d", got, procs*iters)
			}
		})
	}
}

// Barrier-ordered producer/consumer: proc 0 writes, everyone reads after
// the barrier.
func TestBarrierPublishesAllProtocols(t *testing.T) {
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			const procs = 4
			s := mustSystem(t, testConfig(prot, procs))
			a := s.Alloc(8 * procs)
			bar := s.NewBarrier()
			bad := make([]bool, procs)
			run(t, s, func(p *Proc) {
				p.WriteF64(a+Addr(8*p.ID()), float64(p.ID()+1))
				p.Barrier(bar)
				sum := 0.0
				for i := 0; i < procs; i++ {
					sum += p.ReadF64(a + Addr(8*i))
				}
				if sum != 10 {
					bad[p.ID()] = true
				}
			})
			for i, b := range bad {
				if b {
					t.Errorf("proc %d read wrong sum after barrier", i)
				}
			}
		})
	}
}

// Concurrent writers to disjoint words of the same page (false sharing)
// must both survive the barrier merge — the multiple-writer property.
func TestFalseSharingMergesAllProtocols(t *testing.T) {
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			const procs = 4
			s := mustSystem(t, testConfig(prot, procs))
			a := s.Alloc(8 * procs) // all words on one 256-byte page
			bar := s.NewBarrier()
			bad := make([]bool, procs)
			run(t, s, func(p *Proc) {
				p.WriteF64(a+Addr(8*p.ID()), float64(100+p.ID()))
				p.Barrier(bar)
				for i := 0; i < procs; i++ {
					if p.ReadF64(a+Addr(8*i)) != float64(100+i) {
						bad[p.ID()] = true
					}
				}
			})
			for i, b := range bad {
				if b {
					t.Errorf("proc %d lost a concurrent write", i)
				}
			}
		})
	}
}

// Migratory data under a lock: the classic LRC pattern. Every protocol
// must move the new value with (or after) the lock.
func TestMigratoryDataAllProtocols(t *testing.T) {
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			const procs = 3
			const rounds = 6
			s := mustSystem(t, testConfig(prot, procs))
			a := s.Alloc(8)
			lk := s.NewLock()
			bad := make([]bool, procs)
			run(t, s, func(p *Proc) {
				for r := 0; r < rounds; r++ {
					p.Lock(lk)
					v := p.ReadI64(a)
					p.WriteI64(a, v+1)
					p.Unlock(lk)
					p.Compute(1000 * int64(p.ID()+1))
				}
			})
			if got := s.PeekI64(a); got != procs*rounds {
				t.Errorf("final = %d, want %d", got, procs*rounds)
			}
			for i, b := range bad {
				if b {
					t.Errorf("proc %d saw torn value", i)
				}
			}
		})
	}
}

// Lock reacquisition by the same processor must not generate messages
// under the lazy protocols.
func TestLocalReacquireNoMessages(t *testing.T) {
	for _, prot := range []Protocol{LH, LI, LU} {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			s := mustSystem(t, testConfig(prot, 2))
			a := s.Alloc(8)
			lk := s.NewLock() // lock 0: manager/initial holder is proc 0
			st := run(t, s, func(p *Proc) {
				if p.ID() != 0 {
					return
				}
				for i := 0; i < 5; i++ {
					p.Lock(lk)
					p.WriteI64(a, int64(i))
					p.Unlock(lk)
				}
			})
			if st.Msgs != 0 {
				t.Errorf("%d messages for local reacquires", st.Msgs)
			}
			if st.LocalReacquires != 5 {
				t.Errorf("LocalReacquires = %d, want 5", st.LocalReacquires)
			}
		})
	}
}

// Table 1: a remote lock acquisition costs 3 messages for LH and LI
// (request, forward, grant) when no diffs must be fetched.
func TestLockMessageCostTable1(t *testing.T) {
	for _, prot := range []Protocol{LH, LI, EI, EU} {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			s := mustSystem(t, testConfig(prot, 4))
			lk := s.NewLocks(4) // lock ids 0..3; use lock 2 -> manager proc 2
			_ = lk
			st := run(t, s, func(p *Proc) {
				if p.ID() != 0 {
					return
				}
				p.Lock(2)
				p.Unlock(2)
			})
			// proc 0 acquires lock 2: req to manager 2, fwd handled locally
			// at 2 (manager==holder), grant to 0 => 2 messages here.
			if st.LockMsgs != 2 {
				t.Errorf("lock messages = %d, want 2 (req+grant, manager is holder)", st.LockMsgs)
			}
		})
	}
}

// Table 1: an access miss on an unmodified page costs 2 messages
// (request to the owner, page reply).
func TestMissMessageCost(t *testing.T) {
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			cfg := testConfig(prot, 2)
			s := mustSystem(t, cfg)
			a := s.AllocPage(8) // page 0? AllocPage from brk 0 -> page 0, owner 0
			s.InitF64(a, 7)
			bad := false
			st := run(t, s, func(p *Proc) {
				if p.ID() == 1 {
					if p.ReadF64(a) != 7 {
						bad = true
					}
				}
			})
			if bad {
				t.Fatal("read wrong value")
			}
			if st.MissMsgs != 2 {
				t.Errorf("miss messages = %d, want 2", st.MissMsgs)
			}
			if st.AccessMisses != 1 {
				t.Errorf("misses = %d, want 1", st.AccessMisses)
			}
			if st.DataBytes != int64(cfg.PageSize) {
				t.Errorf("data bytes = %d, want one page (%d)", st.DataBytes, cfg.PageSize)
			}
		})
	}
}

// The eager protocols flush at release: after EU's release, the other
// cacher's copy is updated in place and its subsequent read needs no miss;
// after EI's release, the other cacher is invalidated and must re-fetch.
func TestEagerReleaseSemantics(t *testing.T) {
	build := func(prot Protocol) (*System, Addr, int, int) {
		s := mustSystem(t, testConfig(prot, 2))
		a := s.AllocPage(16)
		lk := s.NewLock()
		bar := s.NewBarrier()
		return s, a, lk, bar
	}
	t.Run("EU-update-in-place", func(t *testing.T) {
		s, a, lk, bar := build(EU)
		st := run(t, s, func(p *Proc) {
			if p.ID() == 1 {
				_ = p.ReadF64(a) // join the copyset
			}
			p.Barrier(bar)
			if p.ID() == 0 {
				p.Lock(lk)
				p.WriteF64(a, 42)
				p.Unlock(lk) // pushes the diff to proc 1
			}
			p.Barrier(bar)
			if p.ID() == 1 && p.ReadF64(a) != 42 {
				t.Errorf("proc 1 missed the update")
			}
		})
		if st.AccessMisses != 1 { // only proc 1's initial read
			t.Errorf("EU misses = %d, want 1", st.AccessMisses)
		}
	})
	t.Run("EI-invalidate", func(t *testing.T) {
		s, a, lk, bar := build(EI)
		st := run(t, s, func(p *Proc) {
			if p.ID() == 1 {
				_ = p.ReadF64(a)
			}
			p.Barrier(bar)
			if p.ID() == 0 {
				p.Lock(lk)
				p.WriteF64(a, 42)
				p.Unlock(lk) // invalidates proc 1
			}
			p.Barrier(bar)
			if p.ID() == 1 && p.ReadF64(a) != 42 {
				t.Errorf("proc 1 read stale data after invalidation")
			}
		})
		if st.AccessMisses != 2 { // initial read + refetch after invalidation
			t.Errorf("EI misses = %d, want 2", st.AccessMisses)
		}
	})
}

// LH piggybacks diffs on the grant when the releaser knows the acquirer
// caches the page, so the acquirer's next read does not miss; LI
// invalidates, so it does.
func TestHybridAvoidsMissLIInvalidates(t *testing.T) {
	trial := func(prot Protocol) (misses int64, syncData int64) {
		cfg := testConfig(prot, 2)
		s, err := NewSystem(cfg)
		if err != nil {
			panic(err)
		}
		a := s.AllocPage(16)
		lk := s.NewLock()
		st, err := s.Run(func(p *Proc) {
			if p.ID() == 1 {
				_ = p.ReadF64(a) // cache the page; proc 0 (owner) learns
				p.Compute(3_000_000)
				p.Lock(lk) // well after proc 0's release: grant brings notices
				if p.ReadF64(a) != 9 {
					panic("stale read after acquire")
				}
				p.Unlock(lk)
			} else {
				p.Compute(500_000)
				p.Lock(lk)
				p.WriteF64(a, 9)
				p.Unlock(lk)
			}
		})
		if err != nil {
			panic(err)
		}
		return st.AccessMisses, st.SyncDataMsgs
	}
	lhMiss, lhData := trial(LH)
	liMiss, liData := trial(LI)
	if lhMiss >= liMiss {
		t.Errorf("LH misses (%d) should be fewer than LI (%d)", lhMiss, liMiss)
	}
	if lhData == 0 {
		t.Errorf("LH grant should have carried data")
	}
	if liData != 0 {
		t.Errorf("LI grants must not carry data, got %d", liData)
	}
	_ = lhData
}

// Deterministic replay: identical configurations produce identical cycle
// counts and message counts.
func TestDeterministicRuns(t *testing.T) {
	trial := func() (int64, int64) {
		s, err := NewSystem(testConfig(LH, 4))
		if err != nil {
			panic(err)
		}
		a := s.Alloc(256)
		lk := s.NewLock()
		bar := s.NewBarrier()
		st, err := s.Run(func(p *Proc) {
			for i := 0; i < 8; i++ {
				p.Lock(lk)
				p.WriteI64(a+Addr(8*(i%4)), p.ReadI64(a)+int64(p.ID()))
				p.Unlock(lk)
				p.Compute(int64(100 * (p.ID() + 1)))
				p.Barrier(bar)
			}
		})
		if err != nil {
			panic(err)
		}
		return int64(st.Cycles), st.Msgs
	}
	c1, m1 := trial()
	c2, m2 := trial()
	if c1 != c2 || m1 != m2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", c1, m1, c2, m2)
	}
}

// Barrier message count: 2(n-1) sync messages per episode for LI (no
// pushes, no data).
func TestBarrierMessageCountLI(t *testing.T) {
	const procs = 5
	s := mustSystem(t, testConfig(LI, procs))
	bar := s.NewBarrier()
	st := run(t, s, func(p *Proc) {
		p.Compute(int64(p.ID()) * 50)
		p.Barrier(bar)
	})
	want := int64(2 * (procs - 1))
	if st.BarrierMsgs != want {
		t.Errorf("barrier messages = %d, want %d", st.BarrierMsgs, want)
	}
	if st.SyncMsgs != want || st.DataMsgs != 0 {
		t.Errorf("sync=%d data=%d, want %d/0", st.SyncMsgs, st.DataMsgs, want)
	}
}

// Unsynchronized reads may be stale under lazy protocols but must never be
// torn, and a subsequent acquire must expose the fresh value (the TSP
// bound pattern).
func TestStaleReadThenAcquireFreshens(t *testing.T) {
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			s := mustSystem(t, testConfig(prot, 2))
			a := s.Alloc(8)
			lk := s.NewLock()
			bar := s.NewBarrier()
			bad := false
			run(t, s, func(p *Proc) {
				if p.ID() == 1 {
					_ = p.ReadF64(a)
				}
				p.Barrier(bar)
				if p.ID() == 0 {
					p.Lock(lk)
					p.WriteF64(a, 5)
					p.Unlock(lk)
				}
				p.Barrier(bar)
				if p.ID() == 1 {
					v := p.ReadF64(a) // racy read: any committed value OK
					if v != 0 && v != 5 {
						bad = true
					}
					p.Lock(lk)
					if p.ReadF64(a) != 5 {
						bad = true
					}
					p.Unlock(lk)
				}
			})
			if bad {
				t.Error("torn or stale-after-acquire read")
			}
		})
	}
}

// Chained lock handoff through three processors preserves migratory
// updates and exercises the distributed queue (request while held).
func TestLockQueueUnderContention(t *testing.T) {
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			const procs = 4
			s := mustSystem(t, testConfig(prot, procs))
			a := s.Alloc(8)
			lk := s.NewLock()
			run(t, s, func(p *Proc) {
				// everyone contends at nearly the same time
				p.Compute(int64(p.ID()))
				p.Lock(lk)
				p.WriteI64(a, p.ReadI64(a)+10)
				p.Compute(20000) // hold the lock while others queue
				p.Unlock(lk)
			})
			if got := s.PeekI64(a); got != procs*10 {
				t.Errorf("sum = %d, want %d", got, procs*10)
			}
		})
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := cfg
	bad.Procs = 0
	if bad.Validate() == nil {
		t.Error("Procs=0 accepted")
	}
	bad = cfg
	bad.PageSize = 1000
	if bad.Validate() == nil {
		t.Error("non-power-of-two page accepted")
	}
}

func TestParseProtocol(t *testing.T) {
	for _, p := range Protocols {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProtocol(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseProtocol("xx"); err == nil {
		t.Error("bad name accepted")
	}
}

func TestRunTwiceFails(t *testing.T) {
	s := mustSystem(t, testConfig(LH, 1))
	run(t, s, func(p *Proc) {})
	if _, err := s.Run(func(p *Proc) {}); err == nil {
		t.Error("second Run should fail")
	}
}

// Heavy false sharing with per-word locks on a single page: every counter
// must be exact under every protocol. This is the Water force-accumulation
// pattern distilled.
func TestFalseSharingCountersAllProtocols(t *testing.T) {
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			const procs, words, iters = 4, 4, 12
			s := mustSystem(t, testConfig(prot, procs))
			a := s.Alloc(8 * words)
			lk := s.NewLocks(words)
			_ = lk
			run(t, s, func(p *Proc) {
				for r := 0; r < iters; r++ {
					for j := 0; j < words; j++ {
						p.Lock(j)
						addr := a + Addr(8*j)
						p.WriteI64(addr, p.ReadI64(addr)+1)
						p.Unlock(j)
					}
					p.Compute(int64(37 * (p.ID() + 1)))
				}
			})
			for j := 0; j < words; j++ {
				if got := s.PeekI64(a + Addr(8*j)); got != procs*iters {
					t.Errorf("counter %d = %d, want %d", j, got, procs*iters)
				}
			}
		})
	}
}

// Same pattern with barriers interleaved, mixing the lock-release and
// barrier-winner paths of EI.
func TestFalseSharingCountersWithBarriers(t *testing.T) {
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			const procs, words, iters = 4, 4, 6
			s := mustSystem(t, testConfig(prot, procs))
			a := s.Alloc(8 * (words + procs))
			s.NewLocks(words)
			bar := s.NewBarrier()
			run(t, s, func(p *Proc) {
				for r := 0; r < iters; r++ {
					// unlocked single-writer word on the same page
					own := a + Addr(8*(words+p.ID()))
					p.WriteI64(own, p.ReadI64(own)+1)
					for j := 0; j < words; j++ {
						p.Lock(j)
						addr := a + Addr(8*j)
						p.WriteI64(addr, p.ReadI64(addr)+1)
						p.Unlock(j)
					}
					p.Barrier(bar)
				}
			})
			for j := 0; j < words; j++ {
				if got := s.PeekI64(a + Addr(8*j)); got != procs*iters {
					t.Errorf("counter %d = %d, want %d", j, got, procs*iters)
				}
			}
			for q := 0; q < procs; q++ {
				if got := s.PeekI64(a + Addr(8*(words+q))); got != iters {
					t.Errorf("own word %d = %d, want %d", q, got, iters)
				}
			}
		})
	}
}

// The centralized-lock ablation must preserve correctness while costing
// extra messages per release (the token always returns to the manager).
func TestCentralizedLocksAblation(t *testing.T) {
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			const procs, iters = 4, 8
			run1 := func(central bool) (int64, int64) {
				cfg := testConfig(prot, procs)
				cfg.CentralizedLocks = central
				s := mustSystem(t, cfg)
				a := s.Alloc(8)
				lk := s.NewLock()
				st := run(t, s, func(p *Proc) {
					for i := 0; i < iters; i++ {
						p.Lock(lk)
						p.WriteI64(a, p.ReadI64(a)+1)
						p.Unlock(lk)
						p.Compute(3000)
					}
				})
				if got := s.PeekI64(a); got != procs*iters {
					t.Fatalf("central=%v: counter = %d, want %d", central, got, procs*iters)
				}
				return st.Msgs, int64(st.Cycles)
			}
			dMsgs, _ := run1(false)
			cMsgs, _ := run1(true)
			if cMsgs <= dMsgs {
				t.Errorf("centralized (%d msgs) should cost more than distributed (%d)", cMsgs, dMsgs)
			}
		})
	}
}
