package core

import (
	"lrcdsm/internal/page"
	"lrcdsm/internal/vc"
)

// grantInfo is the consistency content of a lock grant: the releaser's
// vector time, the write notices (interval records) the acquirer has not
// seen, and — for LH and LU — piggybacked diffs.
type grantInfo struct {
	vt    vc.VC
	recs  []*intervalRec
	diffs []taggedDiff
}

// protocolImpl is the per-protocol behaviour behind the five protocols.
// Methods marked "proc ctx" run on the application processor's goroutine
// and may advance its clock and block; the others run in event-handler
// context at the named processor.
type protocolImpl interface {
	// releaseFlush performs the eager protocols' release-time work
	// (flushing updates or invalidations and awaiting acknowledgements).
	// Proc ctx, called by Unlock before any queued grant.
	releaseFlush(p *Proc)

	// buildGrant assembles the grant's consistency content at releaser r
	// for acquirer `to` whose vector time is acqVT.
	buildGrant(r *Proc, to int, acqVT vc.VC) *grantInfo

	// applyGrant performs the acquire-side actions at p and eventually
	// calls wake (possibly deferred: LU must first fetch diffs).
	applyGrant(p *Proc, g *grantInfo, wake func())

	// barrierPush performs the pre-arrival work at p (closing the interval,
	// pushing updates) and returns the arrival's consistency content.
	// Proc ctx; may block (LU/EU acknowledgements).
	barrierPush(p *Proc) *arrival

	// applyDepart performs the departure-side actions at p and eventually
	// calls wake (possibly deferred: LU fetches, EI winners await flushes).
	applyDepart(p *Proc, d *departInfo, wake func())

	// handleMiss resolves an access fault on pg. Proc ctx; blocks until the
	// page is valid.
	handleMiss(p *Proc, pg page.ID)

	// handlePageReq serves (or forwards) a page copy request at p.
	handlePageReq(p *Proc, m *msg)

	// handleUpdate applies a pushed update at p and acknowledges if asked.
	handleUpdate(p *Proc, m *msg)
}
