package core

import (
	"testing"

	"lrcdsm/internal/network"
)

// Table 1 of the paper gives analytic message costs per shared-memory
// operation. These tests verify them empirically on crafted microprograms.
//
//	            Access Miss   Lock      Unlock   Barrier
//	LH          2m            3         0        2(n-1)+u
//	LI          2m            3         0        2(n-1)
//	LU          2m            3+2h      0        2(n-1)+2u
//	EI          2 or 3        3         2c       2(n-1)+v
//	EU          2             3         2c       2(n-1)+2u

func table1Config(prot Protocol, procs int) Config {
	cfg := DefaultConfig()
	cfg.Protocol = prot
	cfg.Procs = procs
	cfg.PageSize = 256
	cfg.MaxSharedBytes = 1 << 20
	cfg.Net = network.ATMNet(100, DefaultClockMHz)
	return cfg
}

// Remote lock acquisition with a distinct manager and holder: exactly 3
// messages (request → manager, forward → holder, grant → requester).
func TestTable1LockThreeMessages(t *testing.T) {
	for _, prot := range []Protocol{LH, LI, LU, EI, EU} {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			s := mustSystem(t, table1Config(prot, 4))
			s.NewLocks(4)
			st := run(t, s, func(p *Proc) {
				switch p.ID() {
				case 1:
					// become the holder of lock 2 (manager is proc 2)
					p.Lock(2)
					p.Compute(200_000)
					p.Unlock(2)
				case 0:
					// request while proc 1 holds: full 3-message path
					p.Compute(50_000)
					p.Lock(2)
					p.Unlock(2)
				}
			})
			// proc 1's acquisition: req+grant (manager is holder) = 2;
			// proc 0's: req -> manager 2 -> forward -> 1 -> grant = 3.
			if st.LockMsgs != 5 {
				t.Errorf("lock messages = %d, want 5 (2 + 3)", st.LockMsgs)
			}
		})
	}
}

// Unlock is free for the lazy protocols and costs 2c (invalidate/update +
// ack per cacher) for the eager ones.
func TestTable1UnlockCost(t *testing.T) {
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			const procs = 4
			s := mustSystem(t, table1Config(prot, procs))
			a := s.AllocPage(8)
			s.NewLock()
			bar := s.NewBarrier()
			st := run(t, s, func(p *Proc) {
				_ = p.ReadF64(a) // everyone caches the page
				p.Barrier(bar)
				if p.ID() == 1 {
					p.Lock(0)
					p.WriteF64(a, 1)
					p.Unlock(0)
				}
			})
			// Messages attributed to the release flush:
			rel := st.Msgs - st.LockMsgs - st.BarrierMsgs - st.MissMsgs
			switch {
			case prot.Lazy():
				if rel != 0 {
					t.Errorf("lazy unlock sent %d messages, want 0", rel)
				}
			default:
				// c = 3 other cachers (+ owner already among them):
				// 2c = 6 (one inval/update + ack each); allow an extra
				// discovery round.
				if rel < 6 || rel > 10 {
					t.Errorf("eager unlock sent %d messages, want ~2c=6", rel)
				}
			}
		})
	}
}

// An access miss on a page with one concurrent last modifier costs 2m = 2
// messages under the lazy protocols.
func TestTable1MissTwoMessagesLazy(t *testing.T) {
	for _, prot := range []Protocol{LH, LI, LU} {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			s := mustSystem(t, table1Config(prot, 2))
			a := s.AllocPage(8)
			s.NewLock()
			st := run(t, s, func(p *Proc) {
				if p.ID() == 0 {
					p.Lock(0)
					p.WriteF64(a, 2)
					p.Unlock(0)
				} else {
					p.Compute(400_000)
					p.Lock(0) // brings the notice
					_ = p.ReadF64(a)
					p.Unlock(0)
				}
			})
			// Proc 1 never cached the page, so even LH cannot piggyback
			// (the acquirer is not in the releaser's copyset): the read
			// faults and fetches with 2 messages (m = 1 modifier).
			if st.MissMsgs != 2 {
				t.Errorf("miss messages = %d, want 2", st.MissMsgs)
			}
		})
	}
}

// When the acquirer does cache the page, LH's grant carries the diff and
// the subsequent read does not miss, while LI invalidates and refaults.
func TestTable1LHPiggybackRemovesMiss(t *testing.T) {
	trial := func(prot Protocol) int64 {
		s, err := NewSystem(table1Config(prot, 2))
		if err != nil {
			panic(err)
		}
		a := s.AllocPage(8)
		s.NewLock()
		st, err := s.Run(func(p *Proc) {
			if p.ID() == 1 {
				_ = p.ReadF64(a) // join the copyset first
				p.Compute(900_000)
				p.Lock(0)
				if p.ReadF64(a) != 2 {
					panic("stale read under lock")
				}
				p.Unlock(0)
			} else {
				p.Compute(300_000)
				p.Lock(0)
				p.WriteF64(a, 2)
				p.Unlock(0)
			}
		})
		if err != nil {
			panic(err)
		}
		return st.AccessMisses
	}
	if lh := trial(LH); lh != 1 { // only the initial cold read
		t.Errorf("LH misses = %d, want 1", lh)
	}
	if li := trial(LI); li != 2 { // cold read + refault after invalidation
		t.Errorf("LI misses = %d, want 2", li)
	}
}

// Barrier cost: 2(n-1) sync messages, plus u update pushes for LH (no
// acks) and 2u for LU/EU (with acks).
func TestTable1BarrierCost(t *testing.T) {
	const procs = 4
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			s := mustSystem(t, table1Config(prot, procs))
			a := s.AllocPage(8 * procs)
			bar := s.NewBarrier()
			st := run(t, s, func(p *Proc) {
				_ = p.ReadF64(a + Addr(8*p.ID())) // everyone caches the page
				p.Barrier(bar)
				p.WriteF64(a+Addr(8*p.ID()), 1) // everyone modifies it
				p.Barrier(bar)
			})
			syncPerBarrier := int64(2 * (procs - 1))
			if st.BarrierMsgs < 2*syncPerBarrier {
				t.Errorf("barrier messages = %d, want >= %d", st.BarrierMsgs, 2*syncPerBarrier)
			}
			switch prot {
			case LI:
				// no pushes at all
				if st.BarrierMsgs != 2*syncPerBarrier {
					t.Errorf("LI barrier messages = %d, want exactly %d",
						st.BarrierMsgs, 2*syncPerBarrier)
				}
			case EI:
				// v = 3 excess invalidators forward diffs to the winner
				if st.BarrierMsgs != 2*syncPerBarrier+3 {
					t.Errorf("EI barrier messages = %d, want %d (2(n-1) per episode + v=3)",
						st.BarrierMsgs, 2*syncPerBarrier+3)
				}
			case LH:
				// u pushes, unacknowledged: one per (pusher, cacher) pair
				pushes := st.BarrierMsgs - 2*syncPerBarrier
				if pushes <= 0 || pushes > int64(procs*(procs-1)) {
					t.Errorf("LH pushes = %d, want in (0, %d]", pushes, procs*(procs-1))
				}
			case LU, EU:
				// 2u: pushes plus acknowledgements — an even count
				pushes := st.BarrierMsgs - 2*syncPerBarrier
				if pushes <= 0 || pushes%2 != 0 {
					t.Errorf("%v pushes+acks = %d, want positive even", prot, pushes)
				}
			}
		})
	}
}
