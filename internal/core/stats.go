package core

import (
	"fmt"

	"lrcdsm/internal/network"
	"lrcdsm/internal/sim"
)

// MsgClass classifies a message for the paper's traffic breakdowns
// (e.g. "83% of the messages required by Water ... were for
// synchronization").
type MsgClass int

const (
	// ClassSync covers lock requests/forwards/grants and barrier
	// arrivals/departures.
	ClassSync MsgClass = iota
	// ClassData covers page and diff requests and replies, update pushes,
	// invalidations, and their acknowledgements.
	ClassData
)

// RunStats aggregates everything measured during one simulation run.
type RunStats struct {
	Protocol Protocol
	Procs    int

	// Cycles is the elapsed virtual time: the maximum processor clock at
	// completion.
	Cycles sim.Time

	// Message counters.
	Msgs          int64 // total messages
	SyncMsgs      int64 // ClassSync messages
	DataMsgs      int64 // ClassData messages
	SyncDataMsgs  int64 // sync messages that carried shared data (LH/LU grants)
	LockMsgs      int64 // messages attributable to lock acquisition
	BarrierMsgs   int64
	MissMsgs      int64 // messages attributable to access misses

	// DataBytes is the shared data moved (diff and page payloads only;
	// consistency metadata is not counted, as in the paper).
	DataBytes int64

	AccessMisses int64
	PageFetches  int64
	DiffsCreated int64
	DiffsApplied int64
	TwinsCreated int64

	LockAcquires    int64
	LocalReacquires int64
	LockWaitCycles  sim.Time
	BarrierEpisodes int64
	BarrierWaitCycles sim.Time
	MissWaitCycles    sim.Time
	FlushWaitCycles   sim.Time // eager releases blocked on acknowledgements

	// PerProc breaks the elapsed time of each processor down by activity;
	// the residue of Cycles minus the wait categories is computation plus
	// local memory access.
	PerProc []ProcStats

	// HandlerCycles is the software overhead charged for message handling,
	// summed over both ends of every message.
	HandlerCycles sim.Time
	// DiffCycles is the computation charged for diff creation.
	DiffCycles sim.Time

	CacheHits   int64
	CacheMisses int64
	SharedReads  int64
	SharedWrites int64

	Network network.Stats
}

// ProcStats is one processor's share of the run.
type ProcStats struct {
	Cycles       sim.Time // the processor's final clock
	LockWait     sim.Time
	BarrierWait  sim.Time
	MissWait     sim.Time
	FlushWait    sim.Time
	LockAcquires int64
	Misses       int64
}

// BusyShare returns the fraction of the processor's time not spent waiting
// on synchronization or faults.
func (p *ProcStats) BusyShare() float64 {
	if p.Cycles == 0 {
		return 0
	}
	wait := p.LockWait + p.BarrierWait + p.MissWait + p.FlushWait
	return float64(p.Cycles-wait) / float64(p.Cycles)
}

// LockShare returns the fraction of the processor's time spent acquiring
// locks — the paper's "84% of each processor's time was spent acquiring
// locks" metric for Cholesky.
func (p *ProcStats) LockShare() float64 {
	if p.Cycles == 0 {
		return 0
	}
	return float64(p.LockWait) / float64(p.Cycles)
}

// DataKB returns the shared data volume in kilobytes.
func (s *RunStats) DataKB() float64 { return float64(s.DataBytes) / 1024 }

// SyncShare returns the fraction of messages used for synchronization.
func (s *RunStats) SyncShare() float64 {
	if s.Msgs == 0 {
		return 0
	}
	return float64(s.SyncMsgs) / float64(s.Msgs)
}

// Seconds converts the elapsed cycles to seconds at the given clock.
func (s *RunStats) Seconds(clockMHz float64) float64 {
	return float64(s.Cycles) / (clockMHz * 1e6)
}

// String summarizes the run.
func (s *RunStats) String() string {
	return fmt.Sprintf("%s p=%d cycles=%d msgs=%d (sync %.0f%%) data=%.1fKB misses=%d",
		s.Protocol, s.Procs, s.Cycles, s.Msgs, 100*s.SyncShare(), s.DataKB(), s.AccessMisses)
}
