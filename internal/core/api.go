package core

// The interfaces below decouple the workloads from the simulator so the
// same application code runs on both execution engines: the deterministic
// simulator (core.System / core.Proc) and the live runtime
// (live.Cluster / node.Node). They cover exactly the operations the four
// paper workloads use; both engines satisfy them, checked by the
// compile-time assertions at the bottom.

// Mem is the pre-run configuration surface of a DSM machine: shared-memory
// allocation, initial-image stores, and synchronization-object allocation.
// All calls must happen before the machine runs.
type Mem interface {
	// Alloc reserves n bytes of shared memory (8-byte aligned).
	Alloc(n int) Addr
	// AllocPage reserves n bytes starting on a fresh page boundary.
	AllocPage(n int) Addr
	// InitF64/InitI64/InitU64 store into the initial shared-memory image.
	InitF64(a Addr, v float64)
	InitI64(a Addr, v int64)
	InitU64(a Addr, v uint64)
	// NewLock allocates one lock; NewLocks allocates n with consecutive
	// ids, returning the first. NewBarrier allocates a global barrier.
	NewLock() int
	NewLocks(n int) int
	NewBarrier() int
	// Procs returns the number of processors (nodes) the machine runs.
	Procs() int
}

// Worker is the per-processor execution surface handed to application
// workers: shared-memory access and synchronization.
type Worker interface {
	// ID returns the processor's id in [0, N); N the processor count.
	ID() int
	N() int
	// Typed shared-memory accessors.
	ReadF64(a Addr) float64
	WriteF64(a Addr, v float64)
	ReadI64(a Addr) int64
	WriteI64(a Addr, v int64)
	ReadU64(a Addr) uint64
	WriteU64(a Addr, v uint64)
	// Compute charges n cycles of private computation (a no-op on engines
	// that run in real time).
	Compute(n int64)
	// Lock/Unlock acquire and release an exclusive lock; Barrier joins a
	// global barrier episode.
	Lock(id int)
	Unlock(id int)
	Barrier(id int)
}

// Peeker reads the authoritative final memory image after a run; used by
// workload verification and the result-region equivalence checker.
type Peeker interface {
	PeekF64(a Addr) float64
	PeekI64(a Addr) int64
	PeekU64(a Addr) uint64
}

// Procs returns the number of simulated processors.
func (s *System) Procs() int { return s.cfg.Procs }

var (
	_ Mem    = (*System)(nil)
	_ Peeker = (*System)(nil)
	_ Worker = (*Proc)(nil)
)
