// Package core implements the paper's primary contribution: a software
// distributed shared memory supporting release consistency under five
// multiple-writer protocols over a simulated network.
//
// # Protocol walkthrough
//
// Memory is divided into pages. Each simulated processor holds private
// copies of the pages it uses; a copy is either valid (readable) or
// invalid (the next access faults). The first write to a valid page in a
// synchronization interval snapshots the page into a twin; when the
// interval closes (at a release or barrier arrival) the twin is compared
// with the current contents to produce a diff — a run-length encoding of
// the modified words. Diffs are what travels: concurrent writers to
// disjoint words of one page (false sharing) merge instead of fighting
// over ownership.
//
// The five protocols differ in when and where consistency information
// moves:
//
//   - EU (eager update): at every release, the releaser sends its diffs to
//     every processor in the modified pages' copysets and waits for
//     acknowledgements. Copies stay valid everywhere; releases are
//     expensive.
//   - EI (eager invalidate): like EU but sends invalidations instead of
//     data; a target with a dirty twin returns its own words on the
//     acknowledgement. Misses re-fetch whole pages.
//   - LI (lazy invalidate): nothing moves at a release. The next acquire
//     of a lock carries write notices — (processor, interval) pairs tagged
//     with vector timestamps — for every interval the acquirer has not
//     seen; the acquirer invalidates the noticed pages. Data moves only on
//     access misses, as diffs pulled from the concurrent last modifiers.
//   - LU (lazy update): like LI, but the acquire does not complete until
//     the diffs for every noticed, locally cached page have been fetched
//     (batched, one request per concurrent last modifier). Pages are never
//     invalidated.
//   - LH (lazy hybrid, the paper's contribution): like LI, but the grant
//     piggybacks the diffs of noticed pages the releaser believes the
//     acquirer caches (per its copyset) and that it can serve; only the
//     remaining noticed pages are invalidated. One message pair per lock
//     transfer, like LI, with most of LU's miss avoidance.
//
// Locks use a distributed queue (request to a static manager, forward to
// the current holder, grant directly to the requester); reacquiring a
// token still held locally is free — the lazy protocols' signature
// advantage. Barriers use a master that gathers arrivals (releases) and
// broadcasts departures (acquires of everyone's intervals); LH and LU
// additionally push fresh diffs to cachers before arriving, and EI
// designates a winner per concurrently modified page, with losers
// forwarding their diffs.
//
// # Correctness machinery
//
// The subtle parts, each guarded by tests in this package:
//
//   - Happened-before ordering of diff application. Diffs can arrive out
//     of order; applying an old diff over a newer dominating one would
//     resurrect dead values. Application is gated on noticed predecessors
//     (canApply), repaired by re-applying dominating applied diffs
//     (repairDominators), and short-circuited by the page's adopted
//     coverage vector (a full copy reflects intervals the requester has no
//     records of).
//   - Exact applied-interval tracking. Per page and writer the
//     incorporated intervals are a contiguous base plus a sorted overflow
//     list; the base advances only through index ranges where the notice
//     set is provably complete (at or below the processor's vector time).
//   - Eager race control. Invalidation flushes serialize per page, the
//     page owner defers requests during a flush, in-flight fetches are
//     poisoned by invalidations/updates and retried with fresh reply
//     tokens, and barrier winners are chosen among currently valid
//     holders.
//
// Simulation-level validation backs all of this: a write-through oracle
// records the happened-before-final value of every word, and
// Config.DebugCheckReads makes every read of a fully synchronized program
// assert against it.
package core
