package core

import (
	"lrcdsm/internal/page"
	"lrcdsm/internal/vc"
)

// Observer receives protocol-level events as the simulation executes. It
// exists for runtime invariant checking (internal/check): the hooks expose
// exactly the state transitions the release-consistency invariants are
// stated over, so a checker can maintain an independent shadow of the
// protocol's bookkeeping and cross-validate it. All callbacks are invoked
// from the (serialized) simulation; implementations must not retain the
// slices they are handed beyond the call unless documented otherwise.
//
// A nil Config.Observer disables all hooks at negligible cost.
type Observer interface {
	// TwinCreated fires when a write fault twins a page: proc is about to
	// modify pg within its current interval.
	TwinCreated(proc int, pg page.ID)

	// IntervalClosed fires when a lazy protocol closes an interval: idx is
	// the new interval index of proc, vt the interval's vector timestamp
	// (an immutable snapshot), and pages the pages whose modifications the
	// interval's write notices cover.
	IntervalClosed(proc int, idx int32, vt vc.VC, pages []page.ID)

	// EagerFlushed fires when an eager protocol ends a modification
	// episode: epoch is proc's private flush counter and pages the pages
	// whose diffs were produced.
	EagerFlushed(proc int, epoch int32, pages []page.ID)

	// ClockAdvanced fires after proc's vector clock changes (interval
	// close, or joining consistency information at an acquire). vt is a
	// snapshot owned by the observer.
	ClockAdvanced(proc int, vt vc.VC)

	// DiffApplied fires when proc incorporates writer's interval idx into
	// its copy of pg (by applying the diff, or by adopting a copy that
	// already covers it). vt is the interval's immutable timestamp; it is
	// nil for the eager protocols, which carry no vector clocks.
	DiffApplied(proc int, pg page.ID, writer int, idx int32, vt vc.VC)

	// CopyAdopted fires when proc installs a fetched page image: copyVT is
	// the per-writer interval base the copy incorporates and cover the
	// server's full coverage vector (both snapshots owned by the observer;
	// either may be nil under the eager protocols).
	CopyAdopted(proc int, pg page.ID, copyVT []int32, cover vc.VC)

	// BarrierDeparted fires when proc departs a barrier episode with the
	// barrier's merged vector time (a snapshot owned by the observer; nil
	// under the eager protocols).
	BarrierDeparted(proc int, episode int64, vt vc.VC)
}

// ResultRegion names a shared-memory range whose end-of-run contents are a
// deterministic function of the program input, independent of processor
// count — up to floating-point summation order when Float is set. The
// runtime checker compares these regions against a 1-processor reference
// run; scratch whose final contents legitimately depend on scheduling
// (task queues, cursors) is simply not declared.
type ResultRegion struct {
	Name  string
	Base  Addr
	Words int  // 8-byte words starting at Base
	Float bool // compare as float64 with relative tolerance
}

// observerHooks is embedded in System to keep call sites one-liners.
func (s *System) obsTwinCreated(proc int, pg page.ID) {
	if s.obs != nil {
		s.obs.TwinCreated(proc, pg)
	}
}

func (s *System) obsIntervalClosed(rec *intervalRec) {
	if s.obs != nil {
		s.obs.IntervalClosed(rec.proc, rec.idx, rec.vt, rec.pages)
	}
}

func (s *System) obsEagerFlushed(proc int, epoch int32, pages []page.ID) {
	if s.obs != nil {
		s.obs.EagerFlushed(proc, epoch, pages)
	}
}

func (s *System) obsClockAdvanced(p *Proc) {
	if s.obs != nil {
		s.obs.ClockAdvanced(p.id, p.vt.Clone())
	}
}

func (s *System) obsDiffApplied(proc int, td taggedDiff) {
	if s.obs != nil {
		s.obs.DiffApplied(proc, td.pg, td.rec.proc, td.rec.idx, td.rec.vt)
	}
}

func (s *System) obsCopyAdopted(proc int, pg page.ID, copyVT []int32, cover []int32) {
	if s.obs != nil {
		var vtc []int32
		if copyVT != nil {
			vtc = append([]int32(nil), copyVT...)
		}
		var cvc vc.VC
		if cover != nil {
			cvc = vc.VC(cover).Clone()
		}
		s.obs.CopyAdopted(proc, pg, vtc, cvc)
	}
}

func (s *System) obsBarrierDeparted(proc int, d *departInfo) {
	if s.obs != nil {
		var vt vc.VC
		if d.vt != nil {
			vt = d.vt.Clone()
		}
		s.obs.BarrierDeparted(proc, d.episode, vt)
	}
}
