package core

import (
	"fmt"
	"math"

	"lrcdsm/internal/cachesim"
	"lrcdsm/internal/page"
	"lrcdsm/internal/sim"
	"lrcdsm/internal/trace"
	"lrcdsm/internal/vc"
)

// pageState is one processor's view of one shared page.
type pageState struct {
	data  page.Buf // local copy; nil until first fetched (or owner's initial copy)
	twin  page.Buf // non-nil while dirty in the current interval
	valid bool

	// copyVT[w] is the contiguous base of writer w's incorporated diffs:
	// every noticed interval of w with index <= copyVT[w] is applied.
	// Intervals can arrive and apply out of order (a barrier push or grant
	// can carry a later interval before its predecessors' notices), so
	// indices applied above the base live in extraApplied until the gap
	// closes (lazy protocols).
	copyVT       []int32
	extraApplied [][]int32
	// coverVC is the join of the vector times of everything reflected in
	// the copy (applied diffs and adopted full copies); adoptVC is the
	// portion adopted wholesale from page replies, whose content is
	// complete even for intervals we have no records of.
	coverVC vc.VC
	adoptVC vc.VC
	// notices[w] lists interval indices of writer w with write notices on
	// this page, sorted ascending (lazy protocols).
	notices [][]int32

	// copyset is the (approximate) set of processors believed to cache this
	// page, as a bitmask.
	copyset uint64

	// lastWriterHint is the most recent processor known to have modified
	// the page (EI miss forwarding); -1 when unknown.
	lastWriterHint int32
}

func (ps *pageState) ensureCopyVT(n int) {
	if ps.copyVT == nil {
		ps.copyVT = make([]int32, n)
	}
}

func (ps *pageState) ensureNotices(n int) {
	if ps.notices == nil {
		ps.notices = make([][]int32, n)
	}
}

// applied reports whether writer w's interval idx is incorporated in the
// local copy.
func (ps *pageState) applied(w int, idx int32) bool {
	if ps.copyVT != nil && idx <= ps.copyVT[w] {
		return true
	}
	if ps.extraApplied == nil {
		return false
	}
	for _, x := range ps.extraApplied[w] {
		if x == idx {
			return true
		}
	}
	return false
}

// markApplied records that writer w's interval idx is incorporated.
// Implemented on Proc (not pageState) because safe promotion of the
// contiguous base needs the processor's vector time: below vt[w] the notice
// set for w is provably complete (interval records travel with vector-time
// joins), so the base may advance through un-noticed indices there; above
// it an unknown interval could still arrive, so applied indices stay in the
// overflow list.
func (p *Proc) markApplied(pg page.ID, w int, idx int32) {
	n := p.nprocs()
	ps := &p.pages[pg]
	ps.ensureCopyVT(n)
	if idx <= ps.copyVT[w] {
		return
	}
	if ps.extraApplied == nil {
		ps.extraApplied = make([][]int32, n)
	}
	xs := ps.extraApplied[w]
	pos := len(xs)
	dup := false
	for i, x := range xs {
		if x == idx {
			dup = true
			break
		}
		if x > idx {
			pos = i
			break
		}
	}
	if !dup {
		xs = append(xs, 0)
		copy(xs[pos+1:], xs[pos:])
		xs[pos] = idx
		ps.extraApplied[w] = xs
	}
	p.promoteApplied(pg, w)
}

// promoteApplied advances writer w's contiguous applied base on page pg as
// far as the processor's knowledge allows.
func (p *Proc) promoteApplied(pg page.ID, w int) {
	ps := &p.pages[pg]
	if ps.copyVT == nil || ps.extraApplied == nil {
		return
	}
	limit := p.vt.Get(w)
	if limit <= ps.copyVT[w] {
		return
	}
	inExtra := func(i int32) bool {
		for _, x := range ps.extraApplied[w] {
			if x == i {
				return true
			}
		}
		return false
	}
	newBase := limit
	if ps.notices != nil {
		for _, ni := range noticesAbove(ps.notices[w], ps.copyVT[w]) {
			if ni > limit {
				break
			}
			if inExtra(ni) {
				continue
			}
			// first unapplied noticed interval blocks the base just below it
			newBase = ni - 1
			break
		}
	}
	if newBase <= ps.copyVT[w] {
		return
	}
	ps.copyVT[w] = newBase
	keep := ps.extraApplied[w][:0]
	for _, x := range ps.extraApplied[w] {
		if x > newBase {
			keep = append(keep, x)
		}
	}
	ps.extraApplied[w] = keep
}

// procLockState is one processor's view of one lock in the distributed
// queue: whether it holds the token, whether the application holds the
// lock, and the single queued requester forwarded to it by the manager.
type procLockState struct {
	present bool
	held    bool
	nextReq int
	nextVT  vc.VC
	// queue holds waiters at the manager in centralized-lock mode.
	queue []lockWaiter
}

// lockWaiter is a queued lock requester (centralized-lock ablation).
type lockWaiter struct {
	req int
	vt  vc.VC
}

// fetchOp tracks an in-progress access-miss or acquire-time diff fetch.
type fetchOp struct {
	pg       page.ID
	pending  int
	gotData  []byte
	gotVT    []int32
	gotCover []int32
	gotCS    uint64
	diffs    []taggedDiff
	rounds   int
	attr     attr
	blocked  bool  // processor blocked waiting for this fetch
	poisoned bool  // page was invalidated/updated while the fetch was in flight
	token    int64 // correlation for replies (bumped on poisoned retries)
	onDone   func()
}

// flushOp tracks an in-progress eager flush (updates or invalidations with
// acknowledgements, possibly over multiple rounds as copysets close).
type flushOp struct {
	pending int
	// sentTo[pg] is the set of processors already sent to for that page.
	sentTo map[page.ID]uint64
	// readded[pg] is the set of processors that re-joined the copyset
	// (fetched through us) after the flush began; they must survive the
	// completion-time removal of invalidated members.
	readded map[page.ID]uint64
	// tds[pg] carries every diff being flushed for that page; a single
	// update message per (page, target) carries the whole group (the
	// paper's per-cacher update count). pgOrder lists tds' keys in first-
	// seen order so completion-time bookkeeping iterates deterministically.
	tds        map[page.ID][]taggedDiff
	pgOrder    []page.ID
	invalidate bool
	attr       attr
	onDone     func()
}

// Proc is a simulated processor with its DSM state. Application workers
// receive a *Proc and perform all shared-memory and synchronization
// operations through it.
type Proc struct {
	id    int
	sys   *System
	sp    *sim.Proc
	cache *cachesim.Cache

	pages      []pageState
	vt         vc.VC
	recsByProc [][]*intervalRec // known interval records per creator, by index
	recByKey   map[int64]*intervalRec
	modList    []page.ID

	eagerEpoch int32
	pushedUpTo int32 // own interval index already pushed at a barrier (LH/LU)

	locks []procLockState

	fetch      *fetchOp
	luFetch    *luFetchOp
	flush      *flushOp
	fetchToken int64

	// EI barrier state: diffs to forward if designated a loser, expected
	// loser flushes per page when designated a winner (page requests are
	// deferred until the merge completes), and flushes that arrived before
	// our own departure (tracked per barrier episode).
	eiLoserDiffs    []taggedDiff
	eiFlushPending  map[page.ID]int
	eiEarlyFlush    map[page.ID]int
	eiEarlyEpisode  int64
	eiFlushTotal    int
	deferredPageReqs []*msg
	barWaiting      bool

	// per-processor accounting
	pstats ProcStats

	// episodeSeen is the latest barrier episode this processor has departed
	// (eager protocols). A page request from a processor that already
	// departed a later episode must not be served from our stale copy; it
	// is deferred until our own departure (deferredEpisodeReqs).
	episodeSeen         int64
	deferredEpisodeReqs []*msg
}

// acquireFlushTokens blocks until this processor holds the system-wide
// flush token of every listed page, preventing two invalidation flushes on
// the same page from racing. All-or-nothing acquisition (no hold-and-wait),
// so no deadlock is possible.
func (p *Proc) acquireFlushTokens(pgs []page.ID) {
	s := p.sys
	for {
		busy := page.ID(-1)
		for _, pg := range pgs {
			if _, held := s.flushBusy[pg]; held {
				busy = pg
				break
			}
		}
		if busy < 0 {
			for _, pg := range pgs {
				s.flushBusy[pg] = p.id
			}
			return
		}
		s.flushWaiters[busy] = append(s.flushWaiters[busy], p)
		p.sp.Block()
	}
}

// releaseFlushTokens frees the pages' flush tokens, retries waiting
// flushers, and replays page requests the owner deferred during the flush.
func (p *Proc) releaseFlushTokens(pgs []page.ID) {
	s := p.sys
	at := p.sp.Clock()
	for _, pg := range pgs {
		delete(s.flushBusy, pg)
		if reqs := s.flushDeferred[pg]; len(reqs) > 0 {
			delete(s.flushDeferred, pg)
			owner := s.procs[s.pageOwner(pg)]
			for _, m := range reqs {
				s.prot.handlePageReq(owner, m)
			}
		}
		ws := s.flushWaiters[pg]
		if len(ws) == 0 {
			continue
		}
		delete(s.flushWaiters, pg)
		for _, w := range ws {
			w.sp.Wake(at)
		}
	}
}

func newProc(s *System, id int) *Proc {
	p := &Proc{
		id:       id,
		sys:      s,
		sp:       s.eng.Procs()[id],
		pages:    make([]pageState, s.npages),
		vt:       vc.New(s.cfg.Procs),
		recByKey: make(map[int64]*intervalRec),
		recsByProc: make([][]*intervalRec, s.cfg.Procs),
	}
	for i := range p.pages {
		p.pages[i].lastWriterHint = -1
	}
	if s.cfg.CacheBytes > 0 {
		p.cache = cachesim.New(s.cfg.CacheBytes, s.cfg.CacheLine, 1, s.cfg.MemLatencyCycles)
	} else {
		p.cache = cachesim.New(64, 64, 1, 0)
	}
	// Locks are allocated before Run; size lazily at Run. To keep the
	// zero-value usable we allocate when the system starts (see Run), but
	// workers may also reference locks allocated later, so allocate for the
	// maximum now if known.
	return p
}

func (p *Proc) nprocs() int { return p.sys.cfg.Procs }

// ID returns the processor's id, in [0, N).
func (p *Proc) ID() int { return p.id }

// N returns the number of processors in the system.
func (p *Proc) N() int { return p.sys.cfg.Procs }

// Clock returns the processor's local virtual time in cycles.
func (p *Proc) Clock() sim.Time { return p.sp.Clock() }

// Compute charges n cycles of private computation.
func (p *Proc) Compute(n int64) { p.sp.Advance(sim.Time(n)) }

func (p *Proc) chargeDiffCreation() {
	c := p.sys.cfg.diffCreationCycles()
	p.sys.stats.DiffCycles += c
	p.sys.stats.DiffsCreated++
	p.sp.Advance(c)
}

// ---- shared-memory access ----

func (p *Proc) access(a Addr, write bool) (*pageState, int) {
	pg := p.sys.pageOf(a)
	if int(pg) >= p.sys.npages || a < 0 {
		panic(fmt.Sprintf("core: address %d out of range", a))
	}
	ps := &p.pages[pg]
	if !ps.valid {
		p.miss(pg)
	}
	p.sp.Advance(p.cache.Access(int64(a)))
	if write {
		if ps.twin == nil {
			ps.twin = page.NewTwin(ps.data)
			p.modList = append(p.modList, pg)
			p.sys.stats.TwinsCreated++
			p.sys.obsTwinCreated(p.id, pg)
		}
		p.sys.stats.SharedWrites++
	} else {
		p.sys.stats.SharedReads++
		if p.sys.cfg.DebugCheckReads {
			off := int(a) & (p.sys.cfg.PageSize - 1)
			want := p.sys.oraclePage(pg).U64(off)
			if got := ps.data.U64(off); got != want {
				panic(fmt.Sprintf("core: debug: proc %d reads stale word addr=%d page=%d off=%d t=%d got=%x want=%x satisfied=%v copyVT=%v notices=%v",
					p.id, a, pg, off, p.sp.Clock(), got, want, p.noticesSatisfied(pg), ps.copyVT, ps.notices))
			}
		}
	}
	return ps, int(a) & (p.sys.cfg.PageSize - 1)
}

// ReadF64 reads a shared float64.
func (p *Proc) ReadF64(a Addr) float64 {
	ps, off := p.access(a, false)
	return ps.data.F64(off)
}

// WriteF64 writes a shared float64.
func (p *Proc) WriteF64(a Addr, v float64) { p.WriteU64(a, math.Float64bits(v)) }

// ReadI64 reads a shared int64.
func (p *Proc) ReadI64(a Addr) int64 { return int64(p.ReadU64(a)) }

// WriteI64 writes a shared int64.
func (p *Proc) WriteI64(a Addr, v int64) { p.WriteU64(a, uint64(v)) }

// ReadU64 reads a shared raw word.
func (p *Proc) ReadU64(a Addr) uint64 {
	ps, off := p.access(a, false)
	return ps.data.U64(off)
}

// WriteU64 writes a shared raw word.
func (p *Proc) WriteU64(a Addr, v uint64) {
	ps, off := p.access(a, true)
	ps.data.PutU64(off, v)
	// Mirror into the oracle image: conflicting writes of data-race-free
	// programs reach here in happened-before order, so the oracle holds the
	// true final memory state for validation.
	p.sys.oraclePage(p.sys.pageOf(a)).PutU64(off, v)
}

// miss resolves an access fault on pg through the protocol. On return the
// page is valid. Runs in processor context and blocks.
func (p *Proc) miss(pg page.ID) {
	if p.sys.trace.Enabled() {
		p.sys.trace.Add(p.sp.Clock(), p.id, trace.PageFault, int32(pg), -1)
	}
	start := p.sp.Clock()
	defer func() {
		d := p.sp.Clock() - start
		p.sys.stats.MissWaitCycles += d
		p.pstats.MissWait += d
		p.pstats.Misses++
	}()
	for tries := 0; ; tries++ {
		p.sp.Interact()
		p.sys.stats.AccessMisses++
		p.sys.prot.handleMiss(p, pg)
		if p.pages[pg].valid {
			return
		}
		// An invalidation can land between fetch completion and this
		// processor resuming; refault, as a real DSM would.
		if tries > 64 {
			panic(fmt.Sprintf("core: proc %d: page %d cannot be made valid", p.id, pg))
		}
	}
}

// pageAddr returns the base byte address of a page.
func (p *Proc) pageAddr(pg page.ID) int64 { return int64(pg) << p.sys.pageShift }

// canApply reports whether the diff's happened-before predecessors on this
// page are all incorporated in the local copy. Applying a diff before an
// older one it dominates would let the older one later clobber its words,
// so application strictly follows happened-before order per page.
func (p *Proc) canApply(td taggedDiff) bool {
	ps := &p.pages[td.pg]
	if ps.notices == nil {
		return true
	}
	for w := 0; w < p.nprocs(); w++ {
		ns := ps.notices[w]
		if len(ns) == 0 {
			continue
		}
		limit := td.rec.vt.Get(w)
		if w == td.rec.proc {
			limit = td.rec.idx - 1
		}
		var base int32
		if ps.copyVT != nil {
			base = ps.copyVT[w]
		}
		// every noticed interval of w at or below the limit must be applied
		// (everything at or below the contiguous base already is)
		for _, ni := range noticesAbove(ns, base) {
			if ni > limit {
				break
			}
			if !ps.applied(w, ni) {
				return false
			}
		}
	}
	return true
}

// applyTagged applies a received diff to the local copy (and to the twin if
// the page is dirty, so that locally created diffs keep describing only
// local writes), updating the copy timestamp. It reports whether the diff
// was (or already had been) incorporated; false means a happened-before
// predecessor is still missing and the diff must be retried after it
// arrives.
func (p *Proc) applyTagged(td taggedDiff) bool {
	ps := &p.pages[td.pg]
	if ps.data == nil {
		// Not a cacher: the data cannot be incorporated, so the copy
		// timestamp must not advance (a later fetch still needs this diff).
		return false
	}
	ps.ensureCopyVT(p.nprocs())
	if ps.applied(td.rec.proc, td.rec.idx) {
		return true // already incorporated
	}
	if ps.adoptVC != nil && ps.adoptVC.Covers(td.rec.vt) {
		// The adopted copy already reflects a state that includes this
		// interval; applying its (older) words would regress newer ones.
		p.markApplied(td.pg, td.rec.proc, td.rec.idx)
		p.sys.obsDiffApplied(p.id, td)
		return true
	}
	if !p.canApply(td) {
		return false
	}
	d := td.diff()
	d.Apply(ps.data)
	if ps.twin != nil {
		d.Apply(ps.twin)
	}
	if p.sys.trace.Enabled() {
		p.sys.trace.Add(p.sys.eng.Now(), p.id, trace.DiffApplied, int32(td.pg), td.rec.proc)
	}
	p.cache.InvalidateRange(p.pageAddr(td.pg), p.sys.cfg.PageSize)
	p.markApplied(td.pg, td.rec.proc, td.rec.idx)
	if ps.coverVC == nil {
		ps.coverVC = vc.New(p.nprocs())
	}
	ps.coverVC.Join(td.rec.vt)
	p.sys.stats.DiffsApplied++
	p.sys.obsDiffApplied(p.id, td)
	p.repairDominators(td)
	return true
}

// repairDominators re-applies, in happened-before order, every
// already-incorporated diff that dominates the one just applied. Updates
// pushed at barriers can arrive in any order, so an older diff may land
// after a newer one that overwrote the same words; re-applying the
// dominating diffs restores their values (concurrent diffs of data-race-
// free programs touch disjoint words and need no repair).
func (p *Proc) repairDominators(td taggedDiff) {
	ps := &p.pages[td.pg]
	if ps.notices == nil {
		return
	}
	var redo []taggedDiff
	for w := 0; w < p.nprocs(); w++ {
		for _, i := range ps.notices[w] {
			if w == td.rec.proc && i == td.rec.idx {
				continue
			}
			if !ps.applied(w, i) {
				continue // not yet incorporated
			}
			rec := p.recByKey[recKey(w, i)]
			if rec.vt.Covers(td.rec.vt) {
				redo = append(redo, taggedDiff{rec: rec, pg: td.pg})
			}
		}
	}
	if len(redo) == 0 {
		return
	}
	sortDiffsHB(redo)
	for _, r := range redo {
		d := r.diff()
		d.Apply(ps.data)
		if ps.twin != nil {
			d.Apply(ps.twin)
		}
	}
}

// applyBatch applies a set of diffs in happened-before order, iterating to
// a fixpoint so that diffs unlocked by earlier applications are also
// incorporated. Diffs whose predecessors are absent from the batch remain
// unapplied (their pages stay unsatisfied and are fetched on demand).
func (p *Proc) applyBatch(tds []taggedDiff) {
	sortDiffsHB(tds)
	for progress := true; progress; {
		progress = false
		for _, td := range tds {
			ps := &p.pages[td.pg]
			if ps.data == nil {
				continue
			}
			if ps.applied(td.rec.proc, td.rec.idx) {
				continue
			}
			if p.applyTagged(td) {
				progress = true
			}
		}
	}
}

// noticesSatisfied reports whether every write notice known for pg has been
// incorporated into the local copy.
func (p *Proc) noticesSatisfied(pg page.ID) bool {
	ps := &p.pages[pg]
	if ps.notices == nil {
		return true
	}
	for w := 0; w < p.nprocs(); w++ {
		var base int32
		if ps.copyVT != nil {
			base = ps.copyVT[w]
		}
		for _, ni := range noticesAbove(ps.notices[w], base) {
			if !ps.applied(w, ni) {
				return false
			}
		}
	}
	return true
}

// ---- fetch machinery (access misses, LU acquire fetches) ----

// startFetch issues the page/diff requests described by the plan and blocks
// the processor (onDone == nil) or defers completion to onDone (handler
// context, LU acquire).
func (p *Proc) startFetch(pg page.ID, needCopy bool, a attr, onDone func()) {
	p.fetchToken++
	f := &fetchOp{pg: pg, attr: a, onDone: onDone, token: p.fetchToken}
	p.fetch = f
	lms := p.lastModifiers(pg)
	ps := &p.pages[pg]

	if needCopy {
		// Ask the best-informed last modifier (or the owner) for the page.
		target := p.sys.pageOwner(pg)
		var bestRec *intervalRec
		var bestSum int64 = -1
		for _, r := range lms {
			if s := r.vt.Sum(); s > bestSum {
				bestSum = s
				bestRec = r
				target = r.proc
			}
		}
		if target == p.id {
			panic(fmt.Sprintf("core: proc %d fetching page %d from itself", p.id, pg))
		}
		f.pending++
		p.sys.stats.PageFetches++
		p.sendOrHandlerSend(onDone == nil, &msg{
			kind: mPageReq, src: p.id, dst: target, class: ClassData, attr: a, pg: pg,
			token: f.token,
		})
		// Diffs from the other concurrent last modifiers, assuming the page
		// copy will cover what its server knew (any residual gap is closed
		// by the fallback round in completeFetchRound).
		for _, r := range lms {
			if r.proc == target || r.proc == p.id {
				continue
			}
			have := make([]int32, p.nprocs())
			for w := range have {
				have[w] = bestVTEntry(ps.copyVT, w)
				if bestRec != nil && bestRec.vt.Get(w) > have[w] {
					have[w] = bestRec.vt.Get(w)
				}
			}
			f.pending++
			p.sendOrHandlerSend(onDone == nil, &msg{
				kind: mDiffReq, src: p.id, dst: r.proc, class: ClassData, attr: a,
				pg: pg, vt: have, need: p.noticeMaxes(pg), token: f.token,
			})
		}
	} else {
		// Have a copy (possibly invalid): only diffs are needed. Query the
		// concurrent last modifiers; each can serve every diff that
		// happened-before its own modification.
		for _, r := range lms {
			if r.proc == p.id {
				continue
			}
			have := make([]int32, p.nprocs())
			copy(have, ps.copyVT)
			f.pending++
			p.sendOrHandlerSend(onDone == nil, &msg{
				kind: mDiffReq, src: p.id, dst: r.proc, class: ClassData, attr: a,
				pg: pg, vt: have, need: p.noticeMaxes(pg), token: f.token,
			})
		}
		if f.pending == 0 && !p.noticesSatisfied(pg) {
			// Every last modifier is this processor itself (its own later
			// write dominates), yet earlier concurrent diffs are missing —
			// ask each missing interval's creator directly.
			for w := 0; w < p.nprocs(); w++ {
				ns := ps.notices[w]
				if len(ns) == 0 || w == p.id {
					continue
				}
				var have int32
				if ps.copyVT != nil {
					have = ps.copyVT[w]
				}
				if ns[len(ns)-1] <= have {
					continue
				}
				hv := make([]int32, p.nprocs())
				if ps.copyVT != nil {
					copy(hv, ps.copyVT)
				}
				f.pending++
				p.sendOrHandlerSend(onDone == nil, &msg{
					kind: mDiffReq, src: p.id, dst: w, class: ClassData, attr: a,
					pg: pg, vt: hv, need: p.noticeMaxes(pg), token: f.token,
				})
			}
		}
	}
	if f.pending == 0 {
		// Nothing to fetch: all notices already satisfied.
		p.finishFetch()
		return
	}
	if onDone == nil {
		f.blocked = true
		p.sp.Block()
	}
}

// hasAllFrom reports whether the local copy already covers every noticed
// interval up to and including rec for its writer.
func (p *Proc) hasAllFrom(pg page.ID, rec *intervalRec) bool {
	ps := &p.pages[pg]
	return ps.copyVT != nil && ps.copyVT[rec.proc] >= rec.idx
}

func bestVTEntry(v []int32, w int) int32 {
	if v == nil {
		return 0
	}
	return v[w]
}

// sendOrHandlerSend picks the correct send path for the current context.
func (p *Proc) sendOrHandlerSend(procCtx bool, m *msg) {
	if procCtx {
		p.sendFromProc(m)
	} else {
		p.sys.sendFromHandler(m)
	}
}

// handleFetchReply processes a page or diff reply for the in-progress fetch.
func (p *Proc) handleFetchReply(m *msg) {
	f := p.fetch
	if f == nil || f.pg != m.pg {
		panic(fmt.Sprintf("core: proc %d unexpected fetch reply for page %d", p.id, m.pg))
	}
	if m.token != f.token {
		return // stale reply from before a poisoned retry
	}
	if m.kind == mPageReply {
		f.gotData = m.data
		f.gotVT = m.vt
		f.gotCover = m.coverVT
		f.gotCS = m.copyset
	}
	f.diffs = append(f.diffs, m.diffs...)
	f.pending--
	if f.pending > 0 {
		return
	}
	p.completeFetchRound()
}

// completeFetchRound applies everything received; if notices remain
// unsatisfied it launches a fallback round asking each missing diff's
// creator directly (whose own diffs are always available).
func (p *Proc) completeFetchRound() {
	f := p.fetch
	ps := &p.pages[f.pg]
	if f.gotData != nil {
		if ps.data == nil {
			ps.data = f.gotData
		} else if ps.twin == nil {
			copy(ps.data, f.gotData)
		} else {
			// Refetch over a dirty page (eager write fault after an
			// invalidation): rebase our uncommitted words onto the fresh
			// copy, which becomes the new twin.
			own := page.MakeDiff(f.pg, ps.twin, ps.data)
			copy(ps.data, f.gotData)
			copy(ps.twin, f.gotData)
			own.Apply(ps.data)
		}
		ps.ensureCopyVT(p.nprocs())
		if f.gotVT != nil {
			for w, idx := range f.gotVT {
				if idx > ps.copyVT[w] {
					ps.copyVT[w] = idx
				}
			}
		}
		if f.gotCover != nil {
			ps.adoptVC = vc.VC(f.gotCover).Clone()
			if ps.coverVC == nil {
				ps.coverVC = vc.New(p.nprocs())
			}
			ps.coverVC.Join(ps.adoptVC)
		}
		ps.copyset |= f.gotCS | 1<<uint(p.id)
		p.sys.obsCopyAdopted(p.id, f.pg, f.gotVT, f.gotCover)
		f.gotData = nil
		p.cache.InvalidateRange(p.pageAddr(f.pg), p.sys.cfg.PageSize)
	}
	// Diffs travel with their interval records (a server can return diffs
	// beyond the requester's knowledge): install the notices first so
	// ordering, repair and validity checks see them.
	for _, td := range f.diffs {
		p.insertRec(td.rec)
	}
	p.applyBatch(f.diffs)
	f.diffs = nil
	if !p.noticesSatisfied(f.pg) && p.sys.cfg.Protocol.Lazy() {
		f.rounds++
		if f.rounds > 8 {
			var detail string
			for w := 0; w < p.nprocs(); w++ {
				for _, ni := range ps.notices[w] {
					if !ps.applied(w, ni) {
						rec := p.recByKey[recKey(w, ni)]
						detail += fmt.Sprintf(" missing=(%d,%d) vt=%v canApply=%v", w, ni, rec.vt, p.canApply(taggedDiff{rec: rec, pg: f.pg}))
					}
				}
			}
			panic(fmt.Sprintf("core: proc %d cannot satisfy notices for page %d:%s", p.id, f.pg, detail))
		}
		// Fallback: ask each missing interval's creator directly.
		sent := uint64(0)
		for w := 0; w < p.nprocs(); w++ {
			ns := ps.notices[w]
			if len(ns) == 0 || w == p.id {
				continue
			}
			if ns[len(ns)-1] > ps.copyVT[w] && sent&(1<<uint(w)) == 0 {
				sent |= 1 << uint(w)
				have := make([]int32, p.nprocs())
				copy(have, ps.copyVT)
				f.pending++
				p.sys.sendFromHandler(&msg{
					kind: mDiffReq, src: p.id, dst: w, class: ClassData, attr: f.attr,
					pg: f.pg, vt: have, need: p.noticeMaxes(f.pg), token: f.token,
				})
			}
		}
		if f.pending > 0 {
			return
		}
	}
	p.finishFetch()
}

// finishFetch validates the page and resumes the processor (or invokes the
// deferred completion). When the fetch completed synchronously in processor
// context, the processor never blocked and needs no wake. A fetch poisoned
// by a concurrent eager invalidation/update retries instead of installing a
// possibly stale copy.
func (p *Proc) finishFetch() {
	f := p.fetch
	if f.poisoned && !p.sys.cfg.Protocol.Lazy() {
		f.poisoned = false
		f.pending = 1
		f.gotData = nil
		f.diffs = nil
		p.fetchToken++
		f.token = p.fetchToken
		p.sys.stats.PageFetches++
		p.sys.sendFromHandler(&msg{kind: mPageReq, src: p.id, dst: p.sys.pageOwner(f.pg),
			class: ClassData, attr: f.attr, pg: f.pg, episode: p.episodeSeen, token: f.token})
		return
	}
	p.fetch = nil
	ps := &p.pages[f.pg]
	ps.valid = true
	ps.copyset |= 1 << uint(p.id)
	if p.sys.trace.Enabled() {
		p.sys.trace.Add(p.sys.eng.Now(), p.id, trace.PageValid, int32(f.pg), -1)
	}
	if f.onDone != nil {
		f.onDone()
		return
	}
	if f.blocked {
		p.sp.Wake(p.sys.eng.Now())
	}
}

// ---- flush machinery (eager releases/barrier pushes, lazy barrier pushes) ----

// batchedPush sends all given diffs to every cacher in one message per
// target processor (the paper's barrier-push accounting: u counts target
// processors, not page-target pairs). Cachers the copysets miss simply
// fault later — the write notices travel with the barrier departure.
// Runs in processor context; blocks for acknowledgements when withAcks.
func (p *Proc) batchedPush(tds []taggedDiff, withAcks bool, a attr) {
	perTarget := make(map[int][]taggedDiff)
	var order []int
	for _, td := range tds {
		targets := p.pages[td.pg].copyset &^ (1 << uint(p.id))
		for w := 0; w < p.nprocs(); w++ {
			if targets&(1<<uint(w)) == 0 {
				continue
			}
			if perTarget[w] == nil {
				order = append(order, w)
			}
			perTarget[w] = append(perTarget[w], td)
		}
	}
	if len(order) == 0 {
		return
	}
	fl := &flushOp{
		sentTo:  make(map[page.ID]uint64),
		readded: make(map[page.ID]uint64),
		tds:     make(map[page.ID][]taggedDiff),
		attr:    a,
	}
	p.flush = fl
	for _, w := range order {
		group := perTarget[w]
		m := &msg{kind: mUpdate, src: p.id, dst: w, class: ClassData, attr: a,
			pg: -1, diffs: group, payload: diffsPayloadBytes(group), flag: withAcks}
		if withAcks {
			fl.pending++
		}
		p.sendFromProc(m)
	}
	if !withAcks || fl.pending == 0 {
		p.flush = nil
		return
	}
	start := p.sp.Clock()
	p.sp.Block()
	d := p.sp.Clock() - start
	p.sys.stats.FlushWaitCycles += d
	p.pstats.FlushWait += d
}

// startFlush sends the diffs (or invalidations) for the given tagged diffs
// to every processor in the page's copyset, tracking acknowledgements and
// extending to newly discovered cachers in further rounds. withAcks selects
// whether the operation blocks until acknowledged (EU/EI releases, EU/LU
// barrier pushes) or is fire-and-forget (LH barrier pushes). Runs in
// processor context.
func (p *Proc) startFlush(tds []taggedDiff, invalidate, withAcks bool, a attr) {
	fl := &flushOp{
		sentTo:     make(map[page.ID]uint64),
		readded:    make(map[page.ID]uint64),
		tds:        make(map[page.ID][]taggedDiff),
		invalidate: invalidate,
		attr:       a,
	}
	for _, td := range tds {
		if _, ok := fl.tds[td.pg]; !ok {
			fl.pgOrder = append(fl.pgOrder, td.pg)
		}
		fl.tds[td.pg] = append(fl.tds[td.pg], td)
	}
	p.flush = fl
	for _, pg := range fl.pgOrder {
		group := fl.tds[pg]
		targets := p.pages[pg].copyset &^ (1 << uint(p.id))
		if invalidate {
			// Always inform the page's owner so its last-writer hint stays
			// fresh — the owner is the serialization point for miss
			// forwarding, and stale hints could otherwise form cycles.
			if o := p.sys.pageOwner(pg); o != p.id {
				targets |= 1 << uint(o)
			}
		}
		fl.sentTo[pg] = targets | 1<<uint(p.id)
		for w := 0; w < p.nprocs(); w++ {
			if targets&(1<<uint(w)) == 0 {
				continue
			}
			m := &msg{src: p.id, dst: w, class: ClassData, attr: a, pg: pg, flag: withAcks}
			if invalidate {
				m.kind = mInval
			} else {
				m.kind = mUpdate
				m.diffs = group
				m.payload = diffsPayloadBytes(group)
			}
			if withAcks {
				fl.pending++
			}
			p.sendFromProc(m)
		}
	}
	if !withAcks || fl.pending == 0 {
		p.flush = nil
		return
	}
	start := p.sp.Clock()
	p.sp.Block()
	d := p.sp.Clock() - start
	p.sys.stats.FlushWaitCycles += d
	p.pstats.FlushWait += d
}

// handleFlushAck processes an update/invalidation acknowledgement: unions
// the responder's copyset and starts another round for newly discovered
// cachers.
func (p *Proc) handleFlushAck(m *msg) {
	fl := p.flush
	if fl == nil {
		panic(fmt.Sprintf("core: proc %d unexpected flush ack", p.id))
	}
	if m.pg < 0 {
		// batched push acknowledgement: no per-page bookkeeping
		fl.pending--
		if fl.pending == 0 {
			p.flush = nil
			p.sp.Wake(p.sys.eng.Now())
		}
		return
	}
	ps := &p.pages[m.pg]
	// An EI invalidation ack may carry the target's flushed dirty words.
	for _, td := range m.diffs {
		d := td.diff()
		if ps.data != nil {
			d.Apply(ps.data)
			if ps.twin != nil {
				d.Apply(ps.twin)
			}
			p.cache.InvalidateRange(p.pageAddr(m.pg), p.sys.cfg.PageSize)
		}
	}
	if !fl.invalidate {
		ps.copyset |= m.copyset
	}
	// Another round for cachers we did not know about.
	if more := (m.copyset &^ fl.sentTo[m.pg]) &^ (1 << uint(p.id)); more != 0 && m.flag {
		fl.sentTo[m.pg] |= more
		group := fl.tds[m.pg]
		for w := 0; w < p.nprocs(); w++ {
			if more&(1<<uint(w)) == 0 {
				continue
			}
			mm := &msg{src: p.id, dst: w, class: ClassData, attr: fl.attr, pg: m.pg, flag: true}
			if fl.invalidate {
				mm.kind = mInval
			} else {
				mm.kind = mUpdate
				mm.diffs = group
				mm.payload = diffsPayloadBytes(group)
			}
			fl.pending++
			p.sys.sendFromHandler(mm)
		}
	}
	fl.pending--
	if fl.pending == 0 {
		if fl.invalidate {
			// Remove exactly the processors we invalidated; anyone who
			// re-fetched (through the owner) after the flush began must
			// stay in the copyset or it would never be invalidated again.
			for _, pg := range fl.pgOrder {
				ps := &p.pages[pg]
				ps.copyset = (ps.copyset &^ (fl.sentTo[pg] &^ fl.readded[pg])) | 1<<uint(p.id)
			}
		}
		p.flush = nil
		p.sp.Wake(p.sys.eng.Now())
	}
}

// handleDiffReq serves a diff request: every diff this processor may serve
// for the page beyond the requester's coverage.
func (s *System) handleDiffReq(p *Proc, m *msg) {
	p.pages[m.pg].copyset |= 1 << uint(m.src) // "... and diff requests"
	ds := p.servableDiffs(m.pg, m.vt, m.need)
	s.sendFromHandler(&msg{
		kind: mDiffReply, src: p.id, dst: m.src, class: ClassData, attr: m.attr,
		pg: m.pg, diffs: ds, payload: diffsPayloadBytes(ds), token: m.token,
	})
}

// handleInval processes an EI invalidation: drop validity, flush dirty
// words back on the acknowledgement, and report our copyset.
func (s *System) handleInval(p *Proc, m *msg) {
	ps := &p.pages[m.pg]
	if s.trace.Enabled() {
		s.trace.Add(s.eng.Now(), p.id, trace.Invalidate, int32(m.pg), m.src)
	}
	if p.fetch != nil && p.fetch.pg == m.pg {
		// A reply in flight may predate this invalidation: poison the fetch
		// so it retries rather than installing a stale copy as valid.
		p.fetch.poisoned = true
	}
	ack := &msg{kind: mInvalAck, src: p.id, dst: m.src, class: ClassData, attr: m.attr,
		pg: m.pg, copyset: ps.copyset, flag: m.flag}
	if ps.data != nil && ps.valid {
		if ps.twin == nil {
			// Between barrier arrival and departure our pending diff lives
			// in the loser set; the invalidator must still learn our words.
			for _, td := range p.eiLoserDiffs {
				if td.pg == m.pg {
					ack.diffs = []taggedDiff{td}
					ack.payload = td.diff().SizeBytes()
					break
				}
			}
		}
		if ps.twin != nil {
			// Dirty under another lock (false sharing): flush our words to
			// the invalidator so they are not lost; keep the twin so our
			// release still publishes them.
			p.eagerEpoch++
			rec := &intervalRec{proc: p.id, idx: p.eagerEpoch,
				pages: []page.ID{m.pg}, diffs: map[page.ID]page.Diff{}}
			d := page.MakeDiff(m.pg, ps.twin, ps.data)
			rec.diffs[m.pg] = d
			s.stats.DiffsCreated++
			s.stats.DiffCycles += s.cfg.diffCreationCycles()
			ack.diffs = []taggedDiff{{rec: rec, pg: m.pg}}
			ack.payload = d.SizeBytes()
		}
		ps.valid = false
	}
	// The invalidator is the freshest known writer even if our copy was
	// already invalid — stale hints would otherwise form forwarding cycles.
	ps.lastWriterHint = int32(m.src)
	ps.copyset = (1 << uint(m.src)) | (1 << uint(p.id))
	s.sendFromHandler(ack)
}

// handleDiffFlush applies an EI barrier loser's diff at the winner. The
// winner defers page-serving and its own departure until the merge of all
// expected loser diffs completes.
func (s *System) handleDiffFlush(p *Proc, m *msg) {
	ps := &p.pages[m.pg]
	for _, td := range m.diffs {
		d := td.diff()
		if ps.data != nil {
			d.Apply(ps.data)
			if ps.twin != nil {
				d.Apply(ps.twin)
			}
			p.cache.InvalidateRange(p.pageAddr(m.pg), s.cfg.PageSize)
		}
		s.stats.DiffsApplied++
	}
	if p.eiFlushPending != nil && p.eiFlushPending[m.pg] > 0 {
		p.eiFlushPending[m.pg]--
		p.eiFlushTotal--
		if p.eiFlushPending[m.pg] == 0 {
			p.serveDeferredPageReqs(m.pg)
		}
		if p.eiFlushTotal == 0 && p.barWaiting {
			p.barWaiting = false
			p.eiFlushPending = nil
			p.sp.Wake(s.eng.Now())
		}
		return
	}
	// Flush arrived before our own departure designated us winner; count it
	// against the episode it belongs to.
	if p.eiEarlyFlush == nil || p.eiEarlyEpisode != m.episode {
		p.eiEarlyFlush = make(map[page.ID]int)
		p.eiEarlyEpisode = m.episode
	}
	p.eiEarlyFlush[m.pg]++
}

// replayEpisodeReqs replays page requests deferred until this processor's
// barrier departure caught up with the requesters'.
func (p *Proc) replayEpisodeReqs() {
	if len(p.deferredEpisodeReqs) == 0 {
		return
	}
	reqs := p.deferredEpisodeReqs
	p.deferredEpisodeReqs = nil
	for _, m := range reqs {
		p.sys.prot.handlePageReq(p, m)
	}
}

// serveDeferredPageReqs replays page requests that were queued while a
// barrier merge on pg was incomplete.
func (p *Proc) serveDeferredPageReqs(pg page.ID) {
	var keep []*msg
	for _, m := range p.deferredPageReqs {
		if m.pg == pg {
			p.sys.prot.handlePageReq(p, m)
		} else {
			keep = append(keep, m)
		}
	}
	p.deferredPageReqs = keep
}

// noteCopysetJoin records that w (re-)joined the copyset of pg while a
// flush may be in progress, so flush completion does not erase it.
func (p *Proc) noteCopysetJoin(pg page.ID, w int) {
	p.pages[pg].copyset |= 1 << uint(w)
	if p.flush != nil && p.flush.invalidate {
		if _, ok := p.flush.tds[pg]; ok {
			p.flush.readded[pg] |= 1 << uint(w)
		}
	}
}
