package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lrcdsm/internal/page"
	"lrcdsm/internal/vc"
)

// newBareProc builds a processor outside a running system, for unit tests
// of the bookkeeping machinery.
func newBareProc(t *testing.T, nprocs int) *Proc {
	t.Helper()
	cfg := testConfig(LH, nprocs)
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.procs[0]
}

// Property: applied() reflects exactly the set of marked intervals, under
// any interleaving of notice insertion and application, and the contiguous
// base never claims an unapplied noticed interval.
func TestQuickAppliedSetExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := newBareProc(t, 4)
		const pg = page.ID(0)
		const writer = 1
		p.pages[pg].data = page.NewBuf(256)

		// a random set of intervals, with notices and applications arriving
		// in arbitrary interleaved order
		n := 1 + r.Intn(12)
		idxs := r.Perm(20)[:n]
		marked := map[int32]bool{}
		noticed := map[int32]bool{}
		// the processor's vector time bounds safe promotion
		p.vt.Set(writer, int32(r.Intn(22)))

		steps := r.Perm(2 * n)
		for _, st := range steps {
			idx := int32(idxs[st%n] + 1)
			if st < n {
				// insert a notice via a synthetic record
				if !noticed[idx] {
					noticed[idx] = true
					p.insertRec(&intervalRec{
						proc: writer, idx: idx, vt: vc.New(4),
						pages: []page.ID{pg},
						diffs: map[page.ID]page.Diff{pg: {}},
					})
				}
			} else {
				marked[idx] = true
				p.markApplied(pg, writer, idx)
			}
		}
		ps := &p.pages[pg]
		for i := int32(1); i <= 21; i++ {
			got := ps.applied(writer, i)
			want := marked[i]
			if got && !want {
				// the base may legitimately cover un-marked indices only
				// below the vector time AND only where no notice exists
				if noticed[i] || i > p.vt.Get(writer) {
					return false
				}
			}
			if want && !got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the contiguous base never exceeds the processor's vector time
// for the writer unless set directly by the writer's own close, and the
// overflow list stays sorted and above the base.
func TestQuickPromotionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := newBareProc(t, 3)
		const pg = page.ID(0)
		const writer = 2
		p.pages[pg].data = page.NewBuf(256)
		p.vt.Set(writer, int32(r.Intn(15)))
		for i := 0; i < 10; i++ {
			idx := int32(1 + r.Intn(18))
			if r.Intn(2) == 0 {
				p.insertRec(&intervalRec{
					proc: writer, idx: idx, vt: vc.New(3),
					pages: []page.ID{pg},
					diffs: map[page.ID]page.Diff{pg: {}},
				})
			}
			p.markApplied(pg, writer, idx)
		}
		ps := &p.pages[pg]
		if ps.copyVT[writer] > p.vt.Get(writer) {
			return false
		}
		if ps.extraApplied != nil {
			xs := ps.extraApplied[writer]
			for i, x := range xs {
				if x <= ps.copyVT[writer] {
					return false
				}
				if i > 0 && xs[i-1] >= x {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: notices stay sorted ascending per writer regardless of record
// arrival order.
func TestQuickNoticesSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := newBareProc(t, 2)
		const pg = page.ID(1)
		for _, idx := range r.Perm(15) {
			p.insertRec(&intervalRec{
				proc: 1, idx: int32(idx + 1), vt: vc.New(2),
				pages: []page.ID{pg},
				diffs: map[page.ID]page.Diff{pg: {}},
			})
		}
		ns := p.pages[pg].notices[1]
		if len(ns) != 15 {
			return false
		}
		for i := 1; i < len(ns); i++ {
			if ns[i] <= ns[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: recsNotCoveredBy returns exactly the records above the given
// vector time, for random record sets.
func TestQuickRecsNotCovered(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := newBareProc(t, 4)
		total := 0
		for w := 1; w < 4; w++ {
			n := r.Intn(8)
			for i := 1; i <= n; i++ {
				p.insertRec(&intervalRec{proc: w, idx: int32(i), vt: vc.New(4)})
				total++
			}
		}
		v := vc.New(4)
		for w := 0; w < 4; w++ {
			v.Set(w, int32(r.Intn(9)))
		}
		got := p.recsNotCoveredBy(v)
		want := 0
		for w := 1; w < 4; w++ {
			for i := 1; i <= len(p.recsByProc[w]); i++ {
				if int32(i) > v.Get(w) {
					want++
				}
			}
		}
		if len(got) != want {
			return false
		}
		for _, rec := range got {
			if rec.idx <= v.Get(rec.proc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
