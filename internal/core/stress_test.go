package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// stressProgram is a randomized but deterministic mixed workload: each
// processor performs a seeded sequence of lock-protected counter
// increments, unlocked single-writer updates, barrier phases, and private
// computation. All cross-processor effects are commutative (counter
// additions), so the final memory state is protocol-independent and exactly
// checkable.
type stressProgram struct {
	procs    int
	counters int
	words    int // single-writer words per proc
	rounds   int
	seed     int64
}

func (sp stressProgram) run(t *testing.T, prot Protocol) *RunStats {
	t.Helper()
	cfg := testConfig(prot, sp.procs)
	s := mustSystem(t, cfg)
	ctrs := s.AllocPage(8 * sp.counters)
	own := s.AllocPage(8 * sp.procs * sp.words)
	s.NewLocks(sp.counters)
	bar := s.NewBarrier()

	expected := make([]int64, sp.counters)
	ownExpected := make([][]int64, sp.procs)
	type op struct{ kind, arg, val int }
	plans := make([][]op, sp.procs)
	for id := 0; id < sp.procs; id++ {
		r := rand.New(rand.NewSource(sp.seed + int64(id)))
		ownExpected[id] = make([]int64, sp.words)
		for round := 0; round < sp.rounds; round++ {
			n := 3 + r.Intn(6)
			for i := 0; i < n; i++ {
				switch r.Intn(3) {
				case 0:
					c := r.Intn(sp.counters)
					plans[id] = append(plans[id], op{kind: 0, arg: c})
					expected[c]++
				case 1:
					w := r.Intn(sp.words)
					v := r.Intn(1000)
					plans[id] = append(plans[id], op{kind: 1, arg: w, val: v})
					ownExpected[id][w] += int64(v)
				case 2:
					plans[id] = append(plans[id], op{kind: 2, val: 100 + r.Intn(5000)})
				}
			}
			plans[id] = append(plans[id], op{kind: 3})
		}
	}

	st, err := s.Run(func(p *Proc) {
		for _, o := range plans[p.ID()] {
			switch o.kind {
			case 0:
				p.Lock(o.arg)
				a := ctrs + Addr(8*o.arg)
				p.WriteI64(a, p.ReadI64(a)+1)
				p.Unlock(o.arg)
			case 1:
				a := own + Addr(8*(p.ID()*sp.words+o.arg))
				p.WriteI64(a, p.ReadI64(a)+int64(o.val))
			case 2:
				p.Compute(int64(o.val))
			case 3:
				p.Barrier(bar)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < sp.counters; c++ {
		if got := s.PeekI64(ctrs + Addr(8*c)); got != expected[c] {
			t.Errorf("%v: counter %d = %d, want %d", prot, c, got, expected[c])
		}
	}
	for id := 0; id < sp.procs; id++ {
		for w := 0; w < sp.words; w++ {
			a := own + Addr(8*(id*sp.words+w))
			if got := s.PeekI64(a); got != ownExpected[id][w] {
				t.Errorf("%v: own[%d][%d] = %d, want %d", prot, id, w, got, ownExpected[id][w])
			}
		}
	}
	return st
}

// TestStressRandomProgramsAllProtocols runs several random seeds through
// every protocol; counters and single-writer sums must be exact.
func TestStressRandomProgramsAllProtocols(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		sp := stressProgram{procs: 5, counters: 6, words: 4, rounds: 4, seed: seed * 977}
		for _, prot := range Protocols {
			prot, sp := prot, sp
			t.Run(fmt.Sprintf("seed%d/%v", sp.seed, prot), func(t *testing.T) {
				sp.run(t, prot)
			})
		}
	}
}

// TestStressDeterministic: the same stress program yields bit-identical
// cycle and message counts across runs.
func TestStressDeterministic(t *testing.T) {
	sp := stressProgram{procs: 4, counters: 4, words: 3, rounds: 3, seed: 4242}
	a := sp.run(t, LH)
	b := sp.run(t, LH)
	if a.Cycles != b.Cycles || a.Msgs != b.Msgs || a.DataBytes != b.DataBytes {
		t.Errorf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)",
			a.Cycles, a.Msgs, a.DataBytes, b.Cycles, b.Msgs, b.DataBytes)
	}
}

// TestStressSmallPages runs the stress program with 64-byte pages, the
// harshest false-sharing regime.
func TestStressSmallPages(t *testing.T) {
	for _, prot := range Protocols {
		prot := prot
		t.Run(prot.String(), func(t *testing.T) {
			cfg := testConfig(prot, 4)
			cfg.PageSize = 64
			s := mustSystem(t, cfg)
			a := s.Alloc(8 * 16) // 16 counters over 2 pages
			s.NewLocks(16)
			st, err := s.Run(func(p *Proc) {
				for i := 0; i < 10; i++ {
					c := (p.ID() + i) % 16
					p.Lock(c)
					addr := a + Addr(8*c)
					p.WriteI64(addr, p.ReadI64(addr)+1)
					p.Unlock(c)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			_ = st
			for c := 0; c < 16; c++ {
				want := int64(0)
				for id := 0; id < 4; id++ {
					for i := 0; i < 10; i++ {
						if (id+i)%16 == c {
							want++
						}
					}
				}
				if got := s.PeekI64(a + Addr(8*c)); got != want {
					t.Errorf("counter %d = %d, want %d", c, got, want)
				}
			}
		})
	}
}
