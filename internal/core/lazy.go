package core

import (
	"fmt"

	"lrcdsm/internal/page"
	"lrcdsm/internal/vc"
)

// lazyProto implements lazy release consistency (Keleher et al., ISCA'92)
// in its three variants:
//
//   - LI (lazy invalidate): the lock grant carries write notices; the
//     acquirer invalidates the pages for which it receives notices with
//     larger timestamps; data moves only in response to access misses.
//   - LU (lazy update): never invalidates; an acquire does not succeed
//     until all diffs described by the new write notices for locally
//     cached pages have been obtained, fetched from the concurrent last
//     modifiers when not piggybacked.
//   - LH (lazy hybrid, this paper's contribution): the releaser piggybacks
//     on the grant, in addition to write notices, the diffs of pages it
//     believes the acquirer caches (its copyset); the acquirer invalidates
//     the noticed pages for which no diffs were included. A single message
//     pair, like LI, with the reduced miss rate of LU.
var debugNoPush = false

type lazyProto struct {
	kind Protocol
}

// releaseFlush is not used by the lazy protocols: Unlock closes the
// interval instead, and consistency information moves at the next acquire.
func (l *lazyProto) releaseFlush(p *Proc) {}

func (l *lazyProto) buildGrant(r *Proc, to int, acqVT vc.VC) *grantInfo {
	if acqVT == nil {
		acqVT = vc.New(r.nprocs())
	}
	g := &grantInfo{vt: r.vt.Clone(), recs: r.recsNotCoveredBy(acqVT)}
	if l.kind == LH || l.kind == LU {
		for _, rec := range g.recs {
			for _, pg := range rec.pages {
				if r.pages[pg].copyset&(1<<uint(to)) != 0 && r.hasDiff(rec, pg) {
					g.diffs = append(g.diffs, taggedDiff{rec: rec, pg: pg})
				}
			}
		}
		sortDiffsHB(g.diffs)
	}
	return g
}

func (l *lazyProto) applyGrant(p *Proc, g *grantInfo, wake func()) {
	if g == nil {
		wake()
		return
	}
	touched := p.absorbConsistency(g.vt, g.recs, g.diffs)
	if l.kind == LU {
		if need := p.unsatisfiedCached(touched); len(need) > 0 {
			p.startLUFetch(need, attrLock, wake)
			return
		}
	}
	wake()
}

func (l *lazyProto) barrierPush(p *Proc) *arrival {
	s := p.sys
	p.closeInterval()
	if l.kind != LI {
		// Push updates for our not-yet-pushed intervals to every processor
		// believed to cache the modified pages. LU waits for the data to be
		// acknowledged (2u messages), LH pushes without acknowledgement (u).
		var tds []taggedDiff
		own := p.recsByProc[p.id]
		for _, rec := range own {
			if rec.idx <= p.pushedUpTo {
				continue
			}
			for _, pg := range rec.pages {
				tds = append(tds, taggedDiff{rec: rec, pg: pg})
			}
		}
		p.pushedUpTo = p.vt.Get(p.id)
		if len(tds) > 0 && debugNoPush == false {
			p.batchedPush(tds, l.kind == LU, attrBarrier)
		}
	}
	return &arrival{recs: p.recsNotCoveredBy(s.bar.baseVT), vt: p.vt.Clone()}
}

func (l *lazyProto) applyDepart(p *Proc, d *departInfo, wake func()) {
	touched := p.absorbConsistency(d.vt, d.recs, nil)
	if l.kind == LU {
		if need := p.unsatisfiedCached(touched); len(need) > 0 {
			p.startLUFetch(need, attrBarrier, wake)
			return
		}
	}
	wake()
}

// absorbConsistency installs incoming write notices and piggybacked diffs,
// joins the vector clock, and recomputes validity of every touched cached
// page (valid iff every known notice is incorporated). Returns the touched
// pages in deterministic order.
func (p *Proc) absorbConsistency(v vc.VC, recs []*intervalRec, diffs []taggedDiff) []page.ID {
	for _, rec := range recs {
		p.insertRec(rec)
	}
	if v != nil {
		p.vt.Join(v)
		p.sys.obsClockAdvanced(p)
	}
	p.applyBatch(diffs)
	var touched []page.ID
	seen := make(map[page.ID]bool)
	for _, rec := range recs {
		for _, pg := range rec.pages {
			if !seen[pg] {
				seen[pg] = true
				touched = append(touched, pg)
			}
		}
	}
	for _, pg := range touched {
		ps := &p.pages[pg]
		if ps.data == nil {
			continue
		}
		ps.valid = p.noticesSatisfied(pg)
	}
	return touched
}

// unsatisfiedCached returns the cached pages among touched whose notices
// are not yet incorporated — the pages LU must update before the acquire
// completes.
func (p *Proc) unsatisfiedCached(touched []page.ID) []page.ID {
	var out []page.ID
	for _, pg := range touched {
		if p.pages[pg].data != nil && !p.noticesSatisfied(pg) {
			out = append(out, pg)
		}
	}
	return out
}

func (l *lazyProto) handleMiss(p *Proc, pg page.ID) {
	p.startFetch(pg, p.pages[pg].data == nil, attrMiss, nil)
}

// handlePageReq serves a page copy: the committed image (the twin when the
// page is dirty) plus the copy's coverage timestamp and the server's
// copyset.
func (l *lazyProto) handlePageReq(p *Proc, m *msg) {
	s := p.sys
	ps := &p.pages[m.pg]
	if ps.data == nil {
		panic(fmt.Sprintf("core: proc %d asked for page %d it never cached", p.id, m.pg))
	}
	src := ps.data
	if ps.twin != nil {
		src = ps.twin
	}
	img := page.Twin(src)
	var vtc []int32
	if ps.copyVT != nil {
		vtc = make([]int32, len(ps.copyVT))
		copy(vtc, ps.copyVT)
	}
	var cover []int32
	if ps.coverVC != nil {
		cover = []int32(ps.coverVC.Clone())
	}
	ps.copyset |= 1 << uint(m.src)
	s.sendFromHandler(&msg{kind: mPageReply, src: p.id, dst: m.src,
		class: ClassData, attr: m.attr, pg: m.pg, token: m.token,
		data: img, vt: vtc, coverVT: cover, copyset: ps.copyset, payload: s.cfg.PageSize})
}

// handleUpdate applies a pushed diff (LH/LU barrier pushes), revalidating
// the page when it becomes fully covered.
func (l *lazyProto) handleUpdate(p *Proc, m *msg) {
	s := p.sys
	// The pushed diffs bring their write notices along, so ordering (and
	// later validity checks) see them; a batched push can span pages.
	for _, td := range m.diffs {
		p.insertRec(td.rec)
	}
	p.applyBatch(m.diffs)
	seen := make(map[page.ID]bool)
	for _, td := range m.diffs {
		if seen[td.pg] {
			continue
		}
		seen[td.pg] = true
		ps := &p.pages[td.pg]
		if ps.data != nil && !ps.valid && p.noticesSatisfied(td.pg) {
			ps.valid = true
		}
		ps.copyset |= 1 << uint(m.src)
	}
	if m.flag {
		ack := &msg{kind: mUpdateAck, src: p.id, dst: m.src,
			class: ClassData, attr: m.attr, pg: m.pg, flag: true}
		if m.pg >= 0 {
			ack.copyset = p.pages[m.pg].copyset
		}
		s.sendFromHandler(ack)
	}
}

// ---- LU batched diff fetch ----

// luFetchOp tracks an in-progress LU acquire-time fetch covering multiple
// pages, batched per target processor (one request per concurrent last
// modifier — the "2h" term in Table 1's LU lock cost).
type luFetchOp struct {
	pages   []page.ID
	pending int
	got     []taggedDiff
	rounds  int
	attr    attr
	onDone  func()
}

// startLUFetch fetches, in handler context, every diff needed to satisfy
// the notices of the given cached pages, then revalidates them and calls
// onDone.
func (p *Proc) startLUFetch(pages []page.ID, a attr, onDone func()) {
	if p.luFetch != nil {
		panic(fmt.Sprintf("core: proc %d has overlapping LU fetches", p.id))
	}
	op := &luFetchOp{pages: pages, attr: a, onDone: onDone}
	p.luFetch = op
	var order []int
	byTarget := make(map[int]*msg)
	for _, pg := range pages {
		ps := &p.pages[pg]
		for _, r := range p.lastModifiers(pg) {
			if r.proc == p.id || p.hasAllFrom(pg, r) {
				continue
			}
			m := byTarget[r.proc]
			if m == nil {
				m = &msg{kind: mBatchDiffReq, src: p.id, dst: r.proc,
					class: ClassData, attr: a}
				byTarget[r.proc] = m
				order = append(order, r.proc)
			}
			dup := false
			for _, q := range m.pgs {
				if q == pg {
					dup = true
					break
				}
			}
			if !dup {
				have := make([]int32, p.nprocs())
				if ps.copyVT != nil {
					copy(have, ps.copyVT)
				}
				m.pgs = append(m.pgs, pg)
				m.vts = append(m.vts, have)
				m.needs = append(m.needs, p.noticeMaxes(pg))
			}
		}
	}
	op.pending = len(order)
	for _, t := range order {
		p.sys.sendFromHandler(byTarget[t])
	}
	if op.pending == 0 {
		p.luContinue()
	}
}

// handleBatchDiffReq serves a multi-page diff request.
func (s *System) handleBatchDiffReq(p *Proc, m *msg) {
	var ds []taggedDiff
	for i, pg := range m.pgs {
		p.pages[pg].copyset |= 1 << uint(m.src)
		var need []int32
		if m.needs != nil {
			need = m.needs[i]
		}
		ds = append(ds, p.servableDiffs(pg, m.vts[i], need)...)
	}
	s.sendFromHandler(&msg{kind: mBatchDiffReply, src: p.id, dst: m.src,
		class: ClassData, attr: m.attr, diffs: ds, payload: diffsPayloadBytes(ds)})
}

func (p *Proc) handleBatchDiffReply(m *msg) {
	op := p.luFetch
	if op == nil {
		panic(fmt.Sprintf("core: proc %d unexpected batch diff reply", p.id))
	}
	op.got = append(op.got, m.diffs...)
	op.pending--
	if op.pending > 0 {
		return
	}
	for _, td := range op.got {
		p.insertRec(td.rec)
	}
	p.applyBatch(op.got)
	op.got = nil
	p.luContinue()
}

// luContinue launches a fallback round for any still-unsatisfied page,
// querying each missing interval's creator directly, or completes the
// fetch.
func (p *Proc) luContinue() {
	op := p.luFetch
	var order []int
	byTarget := make(map[int]*msg)
	for _, pg := range op.pages {
		ps := &p.pages[pg]
		if p.noticesSatisfied(pg) {
			continue
		}
		for w := 0; w < p.nprocs(); w++ {
			ns := ps.notices[w]
			if len(ns) == 0 || w == p.id {
				continue
			}
			var have int32
			if ps.copyVT != nil {
				have = ps.copyVT[w]
			}
			if ns[len(ns)-1] <= have {
				continue
			}
			m := byTarget[w]
			if m == nil {
				m = &msg{kind: mBatchDiffReq, src: p.id, dst: w, class: ClassData, attr: op.attr}
				byTarget[w] = m
				order = append(order, w)
			}
			hv := make([]int32, p.nprocs())
			if ps.copyVT != nil {
				copy(hv, ps.copyVT)
			}
			m.pgs = append(m.pgs, pg)
			m.vts = append(m.vts, hv)
			m.needs = append(m.needs, p.noticeMaxes(pg))
		}
	}
	if len(order) > 0 {
		op.rounds++
		if op.rounds > 8 {
			panic(fmt.Sprintf("core: proc %d cannot complete LU fetch", p.id))
		}
		op.pending = len(order)
		for _, t := range order {
			p.sys.sendFromHandler(byTarget[t])
		}
		return
	}
	p.finishLUFetch()
}

func (p *Proc) finishLUFetch() {
	op := p.luFetch
	p.luFetch = nil
	for _, pg := range op.pages {
		ps := &p.pages[pg]
		if ps.data != nil && !p.noticesSatisfied(pg) {
			panic(fmt.Sprintf("core: proc %d LU fetch left page %d unsatisfied", p.id, pg))
		}
		if ps.data != nil {
			ps.valid = true
		}
	}
	op.onDone()
}
