package core

import (
	"fmt"
	"math/bits"

	"lrcdsm/internal/page"
	"lrcdsm/internal/vc"
)

// eagerProto implements the eager protocols, modelled on Munin's
// multiple-writer protocol: a processor delays propagating its
// modifications of shared data until it comes to a release, at which point
// write notices — together with diffs in the EU protocol — are flushed to
// all other processors that cache the modified pages, possibly taking
// multiple rounds if the local copysets are not up to date. A release is
// delayed until all modifications have been acknowledged.
type eagerProto struct {
	update bool // true: EU, false: EI
}

func (e *eagerProto) releaseFlush(p *Proc) {
	if len(p.modList) == 0 {
		return
	}
	if e.update {
		// EU also serializes its update flushes per page and lets the owner
		// defer page requests meanwhile: a fetch served from a copy the
		// in-flight flush has not reached yet would otherwise install stale
		// data that no later update corrects.
		pgs := append([]page.ID(nil), p.modList...)
		p.acquireFlushTokens(pgs)
		p.startFlush(p.flushModified(), false, true, attrRelease)
		p.releaseFlushTokens(pgs)
		return
	}
	// EI: serialize invalidation flushes per page — two releasers racing on
	// a falsely shared page would otherwise invalidate each other and leave
	// no valid copy anywhere — and refetch any dirty page invalidated under
	// us so the post-release holder's copy is complete.
	pgs := append([]page.ID(nil), p.modList...)
	p.acquireFlushTokens(pgs)
	for _, pg := range pgs {
		if !p.pages[pg].valid {
			p.miss(pg)
		}
	}
	tds := p.flushModified()
	p.startFlush(tds, true, true, attrRelease)
	p.releaseFlushTokens(pgs)
}

// buildGrant: an eager acquire consists solely of locating the processor
// that executed the corresponding release and transferring the
// synchronization variable; no consistency information moves.
func (e *eagerProto) buildGrant(r *Proc, to int, acqVT vc.VC) *grantInfo { return nil }

func (e *eagerProto) applyGrant(p *Proc, g *grantInfo, wake func()) { wake() }

func (e *eagerProto) barrierPush(p *Proc) *arrival {
	tds := p.flushModified()
	if e.update {
		// EU: flush modifications to all other cachers of locally modified
		// pages before sending the arrival message (2u messages). EU never
		// invalidates, so correctness depends on reaching *every* cacher:
		// the per-page flush closes the copyset over acknowledgement
		// rounds, unlike the lazy barrier pushes whose missed cachers are
		// caught by the departure's write notices.
		if len(tds) > 0 {
			pgs := make([]page.ID, 0, len(tds))
			seen := make(map[page.ID]bool)
			for _, td := range tds {
				if !seen[td.pg] {
					seen[td.pg] = true
					pgs = append(pgs, td.pg)
				}
			}
			p.acquireFlushTokens(pgs)
			p.startFlush(tds, false, true, attrBarrier)
			p.releaseFlushTokens(pgs)
		}
		return &arrival{}
	}
	// EI: report the modified pages to the master, which will designate a
	// winner per concurrently modified page; keep the diffs in case this
	// processor loses and must forward them.
	p.eiLoserDiffs = tds
	a := &arrival{}
	for _, td := range tds {
		a.eiPages = append(a.eiPages, td.pg)
	}
	return a
}

func (e *eagerProto) applyDepart(p *Proc, d *departInfo, wake func()) {
	p.episodeSeen = d.episode
	defer p.replayEpisodeReqs()
	if e.update {
		wake()
		return
	}
	s := p.sys
	pending := make(map[page.ID]int)
	total := 0
	for _, ep := range d.eiPages {
		ps := &p.pages[ep.pg]
		mine := ep.mods&(1<<uint(p.id)) != 0
		switch {
		case ep.winner == p.id:
			if !ps.valid {
				// The master verified validity when it designated us and
				// our departure outruns any later invalidation on this
				// destination's FIFO port; reaching here is a bug.
				panic(fmt.Sprintf("core: EI winner %d invalid for page %d", p.id, ep.pg))
			}
			// Winner: retain the only valid copy; await the modifiers'
			// diffs (all of them if we did not modify the page ourselves).
			n := bits.OnesCount64(ep.mods)
			if mine {
				n--
			}
			if p.eiEarlyEpisode == d.episode {
				if early := p.eiEarlyFlush[ep.pg]; early > 0 {
					n -= early
					delete(p.eiEarlyFlush, ep.pg)
				}
			}
			if n > 0 {
				pending[ep.pg] = n
				total += n
			}
			ps.copyset = 1 << uint(p.id)
			ps.lastWriterHint = int32(p.id)
		case mine:
			// Loser: forward our modifications to the winner, invalidate.
			var td taggedDiff
			found := false
			for _, cand := range p.eiLoserDiffs {
				if cand.pg == ep.pg {
					td = cand
					found = true
					break
				}
			}
			if !found {
				panic(fmt.Sprintf("core: EI loser %d missing diff for page %d", p.id, ep.pg))
			}
			s.sendFromHandler(&msg{kind: mDiffFlush, src: p.id, dst: ep.winner,
				class: ClassData, attr: attrBarrier, pg: ep.pg, episode: d.episode,
				diffs: []taggedDiff{td}, payload: td.diff().SizeBytes()})
			ps.valid = false
			ps.copyset = 1 << uint(ep.winner)
			ps.lastWriterHint = int32(ep.winner)
		default:
			// Cacher (or bystander): the page was modified elsewhere.
			ps.valid = false
			ps.copyset = 1 << uint(ep.winner)
			ps.lastWriterHint = int32(ep.winner)
		}
	}
	p.eiLoserDiffs = nil
	if total > 0 {
		p.eiFlushPending = pending
		p.eiFlushTotal = total
		p.barWaiting = true
		return // handleDiffFlush wakes when the last loser diff arrives
	}
	wake()
}

func (e *eagerProto) handleMiss(p *Proc, pg page.ID) {
	p.fetchToken++
	f := &fetchOp{pg: pg, attr: attrMiss, blocked: true, token: p.fetchToken}
	p.fetch = f
	f.pending = 1
	p.sys.stats.PageFetches++
	p.sendFromProc(&msg{kind: mPageReq, src: p.id, dst: p.sys.pageOwner(pg),
		class: ClassData, attr: attrMiss, pg: pg, episode: p.episodeSeen, token: f.token})
	p.sp.Block()
}

// handlePageReq serves a whole-page copy ("EI moves significantly more
// data than the other protocols because its access misses cause entire
// pages to be transmitted, rather than diffs"). The owner forwards the
// request to a processor with a valid copy when its own is invalid (the
// "2 or 3" messages of Table 1).
func (e *eagerProto) handlePageReq(p *Proc, m *msg) {
	s := p.sys
	ps := &p.pages[m.pg]
	if p.eiFlushPending != nil && p.eiFlushPending[m.pg] > 0 {
		// Barrier merge in progress: serve once the losers' diffs arrive.
		p.deferredPageReqs = append(p.deferredPageReqs, m)
		return
	}
	if m.episode > p.episodeSeen {
		// The requester departed a barrier we have not yet processed: our
		// copy may be stale-valid. Serve after our own departure.
		p.deferredEpisodeReqs = append(p.deferredEpisodeReqs, m)
		return
	}
	if holder, held := s.flushBusy[m.pg]; held && p.id == s.pageOwner(m.pg) && holder != m.src {
		// An invalidation flush is in progress: forwarding now could reach
		// a stale copy the flush has not invalidated yet. Serve when the
		// flush completes (the owner's hint then names the releaser). The
		// holder's own pre-flush refetch must pass or it would deadlock.
		s.flushDeferred[m.pg] = append(s.flushDeferred[m.pg], m)
		return
	}
	if ps.data == nil || !ps.valid {
		hint := ps.lastWriterHint
		if hint < 0 || int(hint) == p.id {
			panic(fmt.Sprintf("core: proc %d cannot serve or forward page %d", p.id, m.pg))
		}
		if m.hops > 4*s.cfg.Procs {
			panic(fmt.Sprintf("core: page request for %d forwarded %d times", m.pg, m.hops))
		}
		p.noteCopysetJoin(m.pg, m.src)
		fwd := *m
		fwd.dst = int(hint)
		fwd.hops++
		s.sendFromHandler(&fwd)
		return
	}
	p.noteCopysetJoin(m.pg, m.src)
	img := page.Twin(ps.data)
	s.sendFromHandler(&msg{kind: mPageReply, src: p.id, dst: m.src,
		class: ClassData, attr: m.attr, pg: m.pg, token: m.token,
		data: img, copyset: ps.copyset, payload: s.cfg.PageSize})
}

func (e *eagerProto) handleUpdate(p *Proc, m *msg) {
	s := p.sys
	if p.fetch != nil {
		for _, td := range m.diffs {
			if p.fetch.pg == td.pg {
				// The page reply in flight predates this update; refetch.
				p.fetch.poisoned = true
				break
			}
		}
	}
	for _, td := range m.diffs {
		tps := &p.pages[td.pg]
		if tps.data == nil {
			continue
		}
		d := td.diff()
		d.Apply(tps.data)
		if tps.twin != nil {
			d.Apply(tps.twin)
		}
		s.stats.DiffsApplied++
		p.cache.InvalidateRange(p.pageAddr(td.pg), s.cfg.PageSize)
		tps.copyset |= 1 << uint(m.src)
	}
	if m.flag {
		ack := &msg{kind: mUpdateAck, src: p.id, dst: m.src,
			class: ClassData, attr: m.attr, pg: m.pg, flag: true}
		if m.pg >= 0 {
			ack.copyset = p.pages[m.pg].copyset
		}
		s.sendFromHandler(ack)
	}
}
