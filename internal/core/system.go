package core

import (
	"fmt"
	"math"

	"lrcdsm/internal/network"
	"lrcdsm/internal/page"
	"lrcdsm/internal/sim"
	"lrcdsm/internal/trace"
)

// Addr is a byte address in the shared virtual address space.
type Addr int64

// System is one simulated DSM machine: a set of processors, a network, a
// shared page-based address space, and a consistency protocol. A System is
// used once: allocate and initialize shared memory, then call Run.
type System struct {
	cfg   Config
	eng   *sim.Engine
	net   network.Network
	procs []*Proc
	prot  protocolImpl

	pageShift uint
	npages    int
	oracle    []page.Buf // authoritative final image, also the initial image

	brk      Addr
	nlocks   int
	nbars    int
	lockTail []int   // distributed-queue tail per lock, kept at the lock's owner
	ownerOf  []int32 // block page-ownership map, built at Run
	allocs   [][2]page.ID // page ranges of Alloc/AllocPage calls

	bar barrierEpisode

	// flushBusy serializes EI invalidation flushes per page: two releasers
	// concurrently invalidating the same (falsely shared) page would
	// otherwise invalidate each other and leave no valid copy anywhere.
	// Page requests reaching the owner during a flush are deferred until it
	// completes, so a fetch can never install a copy from a server the
	// flush has not reached yet.
	flushBusy     map[page.ID]int // token holder per page; absent = free
	flushWaiters  map[page.ID][]*Proc
	flushDeferred map[page.ID][]*msg

	trace *trace.Log
	obs   Observer

	stats RunStats
	ran   bool
}

// Trace returns the protocol event log (enabled via Config.TraceCapacity).
func (s *System) Trace() *trace.Log { return s.trace }

// NewSystem builds a DSM system from the configuration.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:          cfg,
		net:          network.New(cfg.Net),
		eng:          sim.New(cfg.Procs),
		flushBusy:     make(map[page.ID]int),
		flushWaiters:  make(map[page.ID][]*Proc),
		flushDeferred: make(map[page.ID][]*msg),
		trace:         trace.New(cfg.TraceCapacity),
		obs:           cfg.Observer,
	}
	for ps := cfg.PageSize; ps > 1; ps >>= 1 {
		s.pageShift++
	}
	s.npages = cfg.MaxSharedBytes / cfg.PageSize
	s.oracle = make([]page.Buf, s.npages)
	switch cfg.Protocol {
	case EI, EU:
		s.prot = &eagerProto{update: cfg.Protocol == EU}
	case LI, LU, LH:
		s.prot = &lazyProto{kind: cfg.Protocol}
	default:
		return nil, fmt.Errorf("core: unknown protocol %v", cfg.Protocol)
	}
	for i := 0; i < cfg.Procs; i++ {
		s.procs = append(s.procs, newProc(s, i))
	}
	s.stats.Protocol = cfg.Protocol
	s.stats.Procs = cfg.Procs
	return s, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// pageOwner returns the statically assigned owner of a page. Ownership is
// assigned in contiguous blocks over the allocated region (set at Run),
// which approximates the first-touch/allocation-site assignment of real
// DSMs: a band-partitioned application mostly owns its own pages.
func (s *System) pageOwner(pg page.ID) int {
	if int(pg) < len(s.ownerOf) {
		return int(s.ownerOf[pg])
	}
	return int(pg) % s.cfg.Procs
}

// pageOf returns the page containing a.
func (s *System) pageOf(a Addr) page.ID { return page.ID(a >> s.pageShift) }

// Alloc reserves n bytes of shared memory (8-byte aligned) and returns the
// base address. Must be called before Run.
func (s *System) Alloc(n int) Addr {
	a := (s.brk + 7) &^ 7
	s.brk = a + Addr(n)
	if int(s.brk) > s.cfg.MaxSharedBytes {
		panic(fmt.Sprintf("core: shared memory exhausted (%d > %d)", s.brk, s.cfg.MaxSharedBytes))
	}
	s.allocs = append(s.allocs, [2]page.ID{s.pageOf(a), s.pageOf(s.brk - 1)})
	return a
}

// AllocPage reserves n bytes starting on a fresh page boundary. Aligning
// unrelated data to page boundaries is how applications avoid gratuitous
// false sharing (and packing them together is how Water gets its
// characteristic false sharing).
func (s *System) AllocPage(n int) Addr {
	ps := Addr(s.cfg.PageSize)
	a := (s.brk + ps - 1) &^ (ps - 1)
	s.brk = a + Addr(n)
	if int(s.brk) > s.cfg.MaxSharedBytes {
		panic(fmt.Sprintf("core: shared memory exhausted (%d > %d)", s.brk, s.cfg.MaxSharedBytes))
	}
	s.allocs = append(s.allocs, [2]page.ID{s.pageOf(a), s.pageOf(s.brk - 1)})
	return a
}

// NewLock allocates a synchronization lock and returns its id. The lock's
// manager (static owner) is lock id mod processors.
func (s *System) NewLock() int {
	id := s.nlocks
	s.nlocks++
	return id
}

// NewLocks allocates n locks with consecutive ids and returns the first.
func (s *System) NewLocks(n int) int {
	id := s.nlocks
	s.nlocks += n
	return id
}

// NewBarrier allocates a global barrier and returns its id.
func (s *System) NewBarrier() int {
	id := s.nbars
	s.nbars++
	return id
}

func (s *System) oraclePage(pg page.ID) page.Buf {
	if s.oracle[pg] == nil {
		s.oracle[pg] = page.NewBuf(s.cfg.PageSize)
	}
	return s.oracle[pg]
}

// InitF64 stores a float64 into the initial shared-memory image. Must be
// called before Run; the contents become the pages' initial state.
func (s *System) InitF64(a Addr, v float64) { s.InitU64(a, math.Float64bits(v)) }

// InitI64 stores an int64 into the initial shared-memory image.
func (s *System) InitI64(a Addr, v int64) { s.InitU64(a, uint64(v)) }

// InitU64 stores a raw 8-byte word into the initial shared-memory image.
func (s *System) InitU64(a Addr, v uint64) {
	if s.ran {
		panic("core: Init after Run")
	}
	s.oraclePage(s.pageOf(a)).PutU64(int(a)&(s.cfg.PageSize-1), v)
}

// PeekF64 reads a float64 from the authoritative memory image. Before Run
// it returns the initial image; after Run, the final state of memory (every
// write performed by any processor, in happened-before order).
func (s *System) PeekF64(a Addr) float64 { return math.Float64frombits(s.PeekU64(a)) }

// PeekI64 reads an int64 from the authoritative memory image.
func (s *System) PeekI64(a Addr) int64 { return int64(s.PeekU64(a)) }

// PeekU64 reads a raw word from the authoritative memory image.
func (s *System) PeekU64(a Addr) uint64 {
	return s.oraclePage(s.pageOf(a)).U64(int(a) & (s.cfg.PageSize - 1))
}

// Run executes worker on every simulated processor and returns the run's
// statistics. The initial memory image is placed at each page's owner; all
// other processors start with no copies.
func (s *System) Run(worker func(*Proc)) (*RunStats, error) {
	if s.ran {
		return nil, fmt.Errorf("core: System already ran")
	}
	s.ran = true
	s.lockTail = make([]int, s.nlocks)
	for _, p := range s.procs {
		p.locks = make([]procLockState, s.nlocks)
		for i := range p.locks {
			p.locks[i].nextReq = -1
		}
	}
	for i := range s.lockTail {
		owner := i % s.cfg.Procs
		s.lockTail[i] = owner
		s.procs[owner].locks[i].present = true
	}
	s.bar.reset(s.cfg.Procs)
	// Assign block ownership over the allocated region, then place the
	// initial copies at the owners.
	lastPage := s.pageOf(s.brk - 1)
	if s.brk == 0 {
		lastPage = -1
	}
	// Ownership is block-assigned within each allocation (first allocation
	// wins for pages shared by small allocations), so a band-partitioned
	// array is owned by the processors that use it.
	s.ownerOf = make([]int32, lastPage+1)
	for i := range s.ownerOf {
		s.ownerOf[i] = -1
	}
	for _, r := range s.allocs {
		span := int(r[1]-r[0]) + 1
		for pg := r[0]; pg <= r[1]; pg++ {
			if s.ownerOf[pg] == -1 {
				s.ownerOf[pg] = int32(int(pg-r[0]) * s.cfg.Procs / span)
			}
		}
	}
	for pg := page.ID(0); pg <= lastPage; pg++ {
		if s.ownerOf[pg] == -1 {
			s.ownerOf[pg] = int32(int(pg) % s.cfg.Procs)
		}
	}
	for pg := page.ID(0); pg <= lastPage; pg++ {
		owner := s.procs[s.pageOwner(pg)]
		ps := &owner.pages[pg]
		ps.data = page.Buf(page.Twin(s.oraclePage(pg)))
		ps.valid = true
		ps.copyset = 1 << uint(owner.id)
	}
	err := s.eng.Run(func(sp *sim.Proc) {
		worker(s.procs[sp.ID])
	})
	if err != nil {
		return nil, err
	}
	for _, p := range s.procs {
		if p.sp.Clock() > s.stats.Cycles {
			s.stats.Cycles = p.sp.Clock()
		}
		s.stats.CacheHits += p.cache.Hits()
		s.stats.CacheMisses += p.cache.Misses()
		p.pstats.Cycles = p.sp.Clock()
		s.stats.PerProc = append(s.stats.PerProc, p.pstats)
	}
	s.stats.Network = *s.net.Stats()
	return &s.stats, nil
}

// Stats returns the (possibly in-progress) statistics.
func (s *System) Stats() *RunStats { return &s.stats }

// FinalImage returns a copy of the authoritative shared-memory image over
// the allocated region [0, Brk): every write performed by any processor,
// incorporated in happened-before order. Used by the runtime checker to
// compare runs against a 1-processor reference.
func (s *System) FinalImage() []byte {
	out := make([]byte, s.brk)
	ps := s.cfg.PageSize
	for off := 0; off < len(out); off += ps {
		pg := s.oraclePage(page.ID(off >> s.pageShift))
		copy(out[off:], pg)
	}
	return out
}

// Brk returns the current top of the shared allocation.
func (s *System) Brk() Addr { return s.brk }

// ---- messaging ----

// attr attributes a message to the operation that caused it.
type attr int

const (
	attrLock attr = iota
	attrBarrier
	attrMiss
	attrRelease
)

type msgKind int

const (
	mLockReq msgKind = iota
	mLockFwd
	mLockGrant
	mBarArrive
	mBarDepart
	mPageReq
	mPageReply
	mDiffReq
	mDiffReply
	mUpdate
	mUpdateAck
	mInval
	mInvalAck
	mDiffFlush
	mBatchDiffReq
	mBatchDiffReply
)

// msg is a protocol message. Only the fields relevant to its kind are set.
type msg struct {
	kind     msgKind
	src, dst int
	class    MsgClass
	attr     attr
	payload  int // shared-data payload bytes (diffs, pages)

	lock    int
	pg      page.ID
	vt      []int32 // requester VT (lock req) / grant VT / page-reply copy VT
	recs    []*intervalRec
	diffs   []taggedDiff
	data    []byte // page image (page reply)
	copyset uint64
	flag    bool // context-dependent: e.g. "acknowledge me" on updates
	depart  *departInfo
	grant   *grantInfo
	hops    int
	episode int64 // barrier episode (EI loser diff flushes)

	// batch diff requests (LU acquires): pages and per-page coverage
	pgs []page.ID
	vts [][]int32

	// page replies: the copy's full coverage vector
	coverVT []int32

	// diff requests: per-writer cap on served interval indices, so replies
	// never inject intervals beyond the requester's acquire (which would
	// turn the fetch into a moving target). Parallel to vt (single-page
	// requests) or vts (batch requests).
	need  []int32
	needs [][]int32

	// token correlates page/diff replies with the fetch that issued the
	// request, so a reply that was overtaken by an invalidation (and whose
	// fetch was poisoned and re-issued) cannot complete the retry.
	token int64
}

// sendFromProc transmits m from processor p's context. The sender-side
// software overhead is charged to p's clock, then the message enters the
// network at p's (globally minimal) time.
func (p *Proc) sendFromProc(m *msg) {
	sw := p.sys.cfg.messageOverheadCycles(m.payload)
	p.sys.stats.HandlerCycles += sw
	p.sp.Advance(sw)
	p.sp.Interact()
	p.sys.transmit(p.sp.Clock(), m)
}

// sendFromHandler transmits m from an event-handler context at the current
// virtual time plus the sender-side software overhead.
func (s *System) sendFromHandler(m *msg) { s.sendAt(s.eng.Now(), m) }

// sendAt transmits m with the sender-side software overhead charged
// starting at time t.
func (s *System) sendAt(t sim.Time, m *msg) {
	sw := s.cfg.messageOverheadCycles(m.payload)
	s.stats.HandlerCycles += sw
	t += sw
	s.eng.Schedule(t, func() { s.transmit(t, m) })
}

// transmit puts m on the wire at time t and schedules its handler at the
// destination after wire time plus the receiver-side software overhead.
func (s *System) transmit(t sim.Time, m *msg) {
	if s.trace.Enabled() {
		s.trace.Add(t, m.src, trace.MsgSend, int32(m.kind), m.dst)
	}
	s.countMsg(m)
	deliver, _ := s.net.Send(t, m.src, m.dst, m.payload)
	sw := s.cfg.messageOverheadCycles(m.payload)
	s.stats.HandlerCycles += sw
	s.eng.Schedule(deliver+sw, func() { s.handle(m) })
}

func (s *System) countMsg(m *msg) {
	s.stats.Msgs++
	s.stats.DataBytes += int64(m.payload)
	switch m.class {
	case ClassSync:
		s.stats.SyncMsgs++
		if m.payload > 0 {
			s.stats.SyncDataMsgs++
		}
	case ClassData:
		s.stats.DataMsgs++
	}
	switch m.attr {
	case attrLock:
		s.stats.LockMsgs++
	case attrBarrier:
		s.stats.BarrierMsgs++
	case attrMiss:
		s.stats.MissMsgs++
	}
}

// handle dispatches a delivered message at its destination.
func (s *System) handle(m *msg) {
	dst := s.procs[m.dst]
	switch m.kind {
	case mLockReq:
		s.handleLockReq(m)
	case mLockFwd:
		s.handleLockFwd(dst, m)
	case mLockGrant:
		s.handleLockGrant(dst, m)
	case mBarArrive:
		s.handleBarArrive(m)
	case mBarDepart:
		s.handleBarDepart(dst, m)
	case mPageReq:
		s.prot.handlePageReq(dst, m)
	case mPageReply:
		dst.handleFetchReply(m)
	case mDiffReq:
		s.handleDiffReq(dst, m)
	case mDiffReply:
		dst.handleFetchReply(m)
	case mUpdate:
		s.prot.handleUpdate(dst, m)
	case mUpdateAck, mInvalAck:
		dst.handleFlushAck(m)
	case mInval:
		s.handleInval(dst, m)
	case mDiffFlush:
		s.handleDiffFlush(dst, m)
	case mBatchDiffReq:
		s.handleBatchDiffReq(dst, m)
	case mBatchDiffReply:
		dst.handleBatchDiffReply(m)
	default:
		panic(fmt.Sprintf("core: unhandled message kind %d", m.kind))
	}
}
