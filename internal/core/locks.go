package core

import (
	"fmt"

	"lrcdsm/internal/trace"
	"lrcdsm/internal/vc"
)

// Locks use a distributed queue: every lock has a statically assigned
// manager (owner) that tracks the queue tail. A requester sends its request
// to the manager, which forwards it to the tail; the tail grants the lock
// directly to the requester when it releases (or immediately if it holds
// the token released). Three messages per remote acquisition — the paper's
// "processors acquire locks by sending a request to the statically assigned
// owner, who forwards the request on to the current holder".
//
// Reacquiring a lock the processor still has the token for requires no
// communication at all — the lazy-protocol advantage the paper highlights
// ("lazy release consistency permits us to avoid external communication
// when the same lock is reacquired").

// lockManager returns the lock's statically assigned manager.
func (s *System) lockManager(lock int) int { return lock % s.cfg.Procs }

// Lock acquires an exclusive lock, performing the protocol's
// acquire-side consistency actions.
func (p *Proc) Lock(lock int) {
	if lock < 0 || lock >= p.sys.nlocks {
		panic(fmt.Sprintf("core: lock %d out of range", lock))
	}
	p.sp.Interact()
	ls := &p.locks[lock]
	if ls.held {
		panic(fmt.Sprintf("core: proc %d double-acquires lock %d", p.id, lock))
	}
	p.sys.stats.LockAcquires++
	if p.sys.trace.Enabled() {
		p.sys.trace.Add(p.sp.Clock(), p.id, trace.LockRequest, int32(lock), -1)
	}
	if ls.present {
		if ls.nextReq != -1 {
			// Token is promised to a queued requester; this cannot happen
			// because releases grant immediately.
			panic(fmt.Sprintf("core: proc %d has token for lock %d with queued request", p.id, lock))
		}
		ls.held = true
		p.sys.stats.LocalReacquires++
		return
	}
	start := p.sp.Clock()
	m := &msg{kind: mLockReq, src: p.id, dst: p.sys.lockManager(lock),
		class: ClassSync, attr: attrLock, lock: lock}
	if p.sys.cfg.Protocol.Lazy() {
		m.vt = []int32(p.vt.Clone())
	}
	p.sendFromProc(m)
	p.sp.Block()
	d := p.sp.Clock() - start
	p.sys.stats.LockWaitCycles += d
	p.pstats.LockWait += d
	p.pstats.LockAcquires++
}

// Unlock releases the lock: the protocol's release-side consistency
// actions run first (closing the interval; eager protocols flush), then a
// queued requester, if any, is granted.
func (p *Proc) Unlock(lock int) {
	if lock < 0 || lock >= p.sys.nlocks {
		panic(fmt.Sprintf("core: lock %d out of range", lock))
	}
	p.sp.Interact()
	ls := &p.locks[lock]
	if !ls.held {
		panic(fmt.Sprintf("core: proc %d releases lock %d it does not hold", p.id, lock))
	}
	if p.sys.trace.Enabled() {
		p.sys.trace.Add(p.sp.Clock(), p.id, trace.LockRelease, int32(lock), -1)
	}
	if p.sys.cfg.Protocol.Lazy() {
		p.closeInterval()
	} else {
		p.sys.prot.releaseFlush(p)
	}
	ls.held = false
	if p.sys.cfg.CentralizedLocks {
		mgr := p.sys.lockManager(lock)
		if p.id == mgr && len(ls.queue) > 0 {
			w := ls.queue[0]
			ls.queue = ls.queue[1:]
			ls.present = false
			p.grantLock(lock, w.req, w.vt, true)
			return
		}
		if p.id != mgr {
			// Return the token to the manager; the consistency information
			// travels with it (the manager performs an acquire).
			ls.present = false
			g := p.sys.prot.buildGrant(p, mgr, p.sys.procs[mgr].vt)
			m := &msg{kind: mLockGrant, src: p.id, dst: mgr, class: ClassSync,
				attr: attrLock, lock: lock, grant: g, flag: true}
			if g != nil {
				m.payload = diffsPayloadBytes(g.diffs)
			}
			p.sendFromProc(m)
		}
		return
	}
	if ls.nextReq != -1 {
		req, reqVT := ls.nextReq, ls.nextVT
		ls.nextReq = -1
		ls.nextVT = nil
		ls.present = false
		p.grantLock(lock, req, reqVT, true)
	}
}

// grantLock builds and sends the grant message carrying the protocol's
// consistency information. procCtx selects the send path.
func (p *Proc) grantLock(lock, to int, reqVT vc.VC, procCtx bool) {
	g := p.sys.prot.buildGrant(p, to, reqVT)
	m := &msg{kind: mLockGrant, src: p.id, dst: to, class: ClassSync, attr: attrLock,
		lock: lock, grant: g}
	if g != nil {
		m.payload = diffsPayloadBytes(g.diffs)
	}
	if procCtx {
		p.sendFromProc(m)
	} else {
		p.sys.sendFromHandler(m)
	}
}

// handleLockReq runs at the lock's manager: forward the request to the
// current queue tail (distributed mode) or queue/grant it here
// (centralized-lock ablation).
func (s *System) handleLockReq(m *msg) {
	if s.cfg.CentralizedLocks {
		mgr := s.procs[m.dst]
		ls := &mgr.locks[m.lock]
		if ls.present && !ls.held {
			ls.present = false
			mgr.grantLock(m.lock, m.src, vc.VC(m.vt), false)
			return
		}
		ls.queue = append(ls.queue, lockWaiter{req: m.src, vt: vc.VC(m.vt)})
		return
	}
	tail := s.lockTail[m.lock]
	s.lockTail[m.lock] = m.src
	if tail == m.src {
		panic(fmt.Sprintf("core: proc %d requests lock %d it is the tail of", m.src, m.lock))
	}
	fwd := &msg{kind: mLockFwd, src: m.dst, dst: tail, class: ClassSync, attr: attrLock,
		lock: m.lock, vt: m.vt}
	// The request's original source must survive the forward.
	fwd.hops = m.src
	if tail == m.dst {
		// The manager itself is the tail: handle locally, no extra message.
		s.handleLockFwd(s.procs[tail], fwd)
		return
	}
	s.sendFromHandler(fwd)
}

// handleLockFwd runs at the queue tail: grant immediately if the token is
// free, otherwise queue the requester for the next release.
func (s *System) handleLockFwd(p *Proc, m *msg) {
	requester := m.hops
	ls := &p.locks[m.lock]
	if ls.nextReq != -1 {
		panic(fmt.Sprintf("core: proc %d already has a queued request for lock %d", p.id, m.lock))
	}
	if ls.present && !ls.held {
		ls.present = false
		p.grantLock(m.lock, requester, vc.VC(m.vt), false)
		return
	}
	ls.nextReq = requester
	ls.nextVT = vc.VC(m.vt)
}

// handleLockGrant runs at the requester: install the token, perform the
// protocol's acquire actions, and resume the processor.
func (s *System) handleLockGrant(p *Proc, m *msg) {
	ls := &p.locks[m.lock]
	if m.flag {
		// Token returned to the manager (centralized-lock ablation): absorb
		// the consistency information, then serve the next queued waiter.
		ls.present = true
		s.prot.applyGrant(p, m.grant, func() {
			if len(ls.queue) > 0 && ls.present && !ls.held {
				w := ls.queue[0]
				ls.queue = ls.queue[1:]
				ls.present = false
				p.grantLock(m.lock, w.req, w.vt, false)
			}
		})
		return
	}
	ls.present = true
	ls.held = true
	if s.trace.Enabled() {
		s.trace.Add(s.eng.Now(), p.id, trace.LockGrant, int32(m.lock), m.src)
	}
	s.prot.applyGrant(p, m.grant, func() { p.sp.Wake(s.eng.Now()) })
}
