package core

import (
	"sort"

	"lrcdsm/internal/page"
	"lrcdsm/internal/vc"
)

// intervalRec describes one closed interval of one processor: the interval's
// vector timestamp and the pages it modified, together with the diffs
// produced at the interval's close. Records are immutable once created and
// are shared by pointer; *possessing* a record (having received its write
// notices) is distinct from possessing its diffs, which a processor may only
// serve if it created or applied them (tracked by per-page copy timestamps).
type intervalRec struct {
	proc  int
	idx   int32
	vt    vc.VC
	pages []page.ID
	diffs map[page.ID]page.Diff
}

func recKey(proc int, idx int32) int64 { return int64(proc)<<32 | int64(idx) }

// taggedDiff is a diff labelled with the interval that produced it, as
// transmitted in updates, grants and diff replies.
type taggedDiff struct {
	rec *intervalRec
	pg  page.ID
}

func (t taggedDiff) diff() page.Diff { return t.rec.diffs[t.pg] }

// sortDiffsHB orders tagged diffs by a linear extension of happened-before-1
// (vector-sum order: if a happened-before b then sum(a.vt) < sum(b.vt)).
// Concurrent diffs of data-race-free programs touch disjoint words, so any
// deterministic order among them is sound; ties break on (proc, idx).
func sortDiffsHB(ds []taggedDiff) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].rec, ds[j].rec
		as, bs := a.vt.Sum(), b.vt.Sum()
		if as != bs {
			return as < bs
		}
		if a.proc != b.proc {
			return a.proc < b.proc
		}
		if a.idx != b.idx {
			return a.idx < b.idx
		}
		return ds[i].pg < ds[j].pg
	})
}

// diffsPayloadBytes sums the transmitted payload of a diff set.
func diffsPayloadBytes(ds []taggedDiff) int {
	n := 0
	for _, d := range ds {
		n += d.diff().SizeBytes()
	}
	return n
}

// closeInterval ends the processor's current interval if it modified any
// pages: it advances the processor's slot in its vector clock, produces and
// stores diffs for every twinned page (charging the paper's diff-creation
// cost), and records the interval so its write notices can be communicated.
// Returns nil if the interval was empty. Used by the lazy protocols; the
// eager protocols use flushModified instead.
func (p *Proc) closeInterval() *intervalRec {
	if len(p.modList) == 0 {
		return nil
	}
	idx := p.vt.Tick(p.id)
	rec := &intervalRec{
		proc:  p.id,
		idx:   idx,
		vt:    p.vt.Clone(),
		pages: p.modList,
		diffs: make(map[page.ID]page.Diff, len(p.modList)),
	}
	for _, pg := range p.modList {
		ps := &p.pages[pg]
		d := page.MakeDiff(pg, ps.twin, ps.data)
		rec.diffs[pg] = d
		page.FreeTwin(ps.twin)
		ps.twin = nil
		p.chargeDiffCreation()
		// Our own copy contains our own writes.
		ps.ensureCopyVT(p.nprocs())
		ps.copyVT[p.id] = idx
		if ps.coverVC == nil {
			ps.coverVC = vc.New(p.nprocs())
		}
		ps.coverVC.Join(rec.vt)
	}
	p.modList = nil
	p.insertRec(rec)
	p.sys.obsIntervalClosed(rec)
	p.sys.obsClockAdvanced(p)
	return rec
}

// flushModified ends the current modification episode for the eager
// protocols: it produces diffs for every twinned page and returns them,
// clearing the twins. No vector clocks are involved.
func (p *Proc) flushModified() []taggedDiff {
	if len(p.modList) == 0 {
		return nil
	}
	// Eager protocols have no interval records; fabricate an anonymous
	// record to carry the diffs (idx ticks a private counter so records
	// remain unique).
	p.eagerEpoch++
	rec := &intervalRec{
		proc:  p.id,
		idx:   p.eagerEpoch,
		pages: p.modList,
		diffs: make(map[page.ID]page.Diff, len(p.modList)),
	}
	var out []taggedDiff
	for _, pg := range p.modList {
		ps := &p.pages[pg]
		d := page.MakeDiff(pg, ps.twin, ps.data)
		rec.diffs[pg] = d
		page.FreeTwin(ps.twin)
		ps.twin = nil
		p.chargeDiffCreation()
		out = append(out, taggedDiff{rec: rec, pg: pg})
	}
	p.modList = nil
	p.sys.obsEagerFlushed(p.id, rec.idx, rec.pages)
	return out
}

// noticesAbove returns the suffix of the sorted notice list with indices
// strictly greater than x.
func noticesAbove(ns []int32, x int32) []int32 {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] > x })
	return ns[i:]
}

// insertRec stores a received (or locally created) interval record and
// indexes its write notices per page. Idempotent.
func (p *Proc) insertRec(rec *intervalRec) {
	k := recKey(rec.proc, rec.idx)
	if _, ok := p.recByKey[k]; ok {
		return
	}
	p.recByKey[k] = rec
	rs := p.recsByProc[rec.proc]
	pos := len(rs)
	for pos > 0 && rs[pos-1].idx > rec.idx {
		pos--
	}
	rs = append(rs, nil)
	copy(rs[pos+1:], rs[pos:])
	rs[pos] = rec
	p.recsByProc[rec.proc] = rs
	for _, pg := range rec.pages {
		ps := &p.pages[pg]
		ps.ensureNotices(p.nprocs())
		ns := ps.notices[rec.proc]
		ipos := sort.Search(len(ns), func(i int) bool { return ns[i] > rec.idx })
		ns = append(ns, 0)
		copy(ns[ipos+1:], ns[ipos:])
		ns[ipos] = rec.idx
		ps.notices[rec.proc] = ns
		// The writer evidently has a copy: copysets are "updated according
		// to subsequent write notices" (paper, Section 4).
		ps.copyset |= 1 << uint(rec.proc)
	}
}

// recsNotCoveredBy returns, ordered by creator then interval index, every
// interval record known to p that is not already covered by the given
// vector time (i.e. the write notices the peer has not yet seen).
func (p *Proc) recsNotCoveredBy(v vc.VC) []*intervalRec {
	var out []*intervalRec
	for w := 0; w < p.nprocs(); w++ {
		rs := p.recsByProc[w]
		i := sort.Search(len(rs), func(i int) bool { return rs[i].idx > v.Get(w) })
		out = append(out, rs[i:]...)
	}
	return out
}

// lastModifiers returns the concurrent last modifiers of a page as known to
// p: the set of writers whose most recent noticed interval on the page is
// not happened-before any other writer's most recent noticed interval.
func (p *Proc) lastModifiers(pg page.ID) []*intervalRec {
	ps := &p.pages[pg]
	if ps.notices == nil {
		return nil
	}
	var cands []*intervalRec
	for w := 0; w < p.nprocs(); w++ {
		ns := ps.notices[w]
		if len(ns) == 0 {
			continue
		}
		cands = append(cands, p.recByKey[recKey(w, ns[len(ns)-1])])
	}
	var out []*intervalRec
	for _, c := range cands {
		dominated := false
		for _, o := range cands {
			if o != c && o.vt.Covers(c.vt) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// neededDiffs returns, in HB order, the tagged diffs p must apply to bring
// its copy of pg up to date with every write notice it knows about.
func (p *Proc) neededDiffs(pg page.ID) []taggedDiff {
	ps := &p.pages[pg]
	if ps.notices == nil {
		return nil
	}
	var out []taggedDiff
	for w := 0; w < p.nprocs(); w++ {
		var base int32
		if ps.copyVT != nil {
			base = ps.copyVT[w]
		}
		for _, idx := range noticesAbove(ps.notices[w], base) {
			if !ps.applied(w, idx) {
				out = append(out, taggedDiff{rec: p.recByKey[recKey(w, idx)], pg: pg})
			}
		}
	}
	sortDiffsHB(out)
	return out
}

// hasDiff reports whether p can legitimately serve the diff of rec for pg:
// p created it, or has applied it into its own copy.
func (p *Proc) hasDiff(rec *intervalRec, pg page.ID) bool {
	if rec.proc == p.id {
		return true
	}
	return p.pages[pg].applied(rec.proc, rec.idx)
}

// servableDiffs returns the diffs p can serve for pg beyond the requester's
// coverage haveVT and at or below its need cap, in HB order. A nil need
// serves everything available.
func (p *Proc) servableDiffs(pg page.ID, haveVT, need []int32) []taggedDiff {
	ps := &p.pages[pg]
	if ps.notices == nil {
		return nil
	}
	var out []taggedDiff
	for w := 0; w < p.nprocs(); w++ {
		for _, idx := range noticesAbove(ps.notices[w], haveVT[w]) {
			if need != nil && idx > need[w] {
				break
			}
			rec := p.recByKey[recKey(w, idx)]
			if p.hasDiff(rec, pg) {
				out = append(out, taggedDiff{rec: rec, pg: pg})
			}
		}
	}
	sortDiffsHB(out)
	return out
}

// noticeMaxes returns the per-writer maximum noticed interval on pg — the
// cap a fetch needs to satisfy the page.
func (p *Proc) noticeMaxes(pg page.ID) []int32 {
	out := make([]int32, p.nprocs())
	ps := &p.pages[pg]
	if ps.notices == nil {
		return out
	}
	for w := 0; w < p.nprocs(); w++ {
		if ns := ps.notices[w]; len(ns) > 0 {
			out[w] = ns[len(ns)-1]
		}
	}
	return out
}
