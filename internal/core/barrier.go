package core

import (
	"fmt"
	"sort"

	"lrcdsm/internal/page"
	"lrcdsm/internal/trace"
	"lrcdsm/internal/vc"
)

// Barriers are implemented with a barrier master (processor 0) that
// collects arrival messages and distributes departure messages. In terms of
// consistency, a barrier arrival is modelled as a release, and a departure
// as an acquire of every other processor's intervals (Section 4 of the
// paper). 2(n-1) messages, plus the protocol-specific update pushes before
// arrival (LH: u, LU/EU: 2u) or the EI loser-to-winner diff flushes (v).

const barrierMaster = 0

// eiPage describes one page modified during an EI barrier episode: the set
// of modifiers and the designated winner, the only processor that retains a
// valid copy ("the master designates one processor as the winner for each
// page ... the losers forward their modifications to the winner and
// invalidate their local copies").
type eiPage struct {
	pg     page.ID
	mods   uint64
	winner int
}

// departInfo is the consistency content of a barrier departure.
type departInfo struct {
	vt      vc.VC
	recs    []*intervalRec
	eiPages []eiPage
	episode int64
}

// barrierEpisode is the master-side state of the in-progress barrier.
type barrierEpisode struct {
	n       int
	arrived int
	recs    []*intervalRec
	seen    map[int64]bool
	vt      vc.VC
	eiMods  map[page.ID]uint64
	baseVT  vc.VC // joined VT as of the previous departure
	episode int64
}

func (b *barrierEpisode) reset(n int) {
	b.n = n
	b.arrived = 0
	b.recs = nil
	b.seen = make(map[int64]bool)
	b.vt = vc.New(n)
	b.eiMods = make(map[page.ID]uint64)
	if b.baseVT == nil {
		b.baseVT = vc.New(n)
	}
}

// Barrier joins the global barrier. All processors must call it; the id
// identifies the barrier variable for the application's bookkeeping only
// (episodes are global synchronization points).
func (p *Proc) Barrier(id int) {
	if id < 0 || id >= p.sys.nbars {
		panic(fmt.Sprintf("core: barrier %d out of range", id))
	}
	s := p.sys
	p.sp.Interact()
	start := p.sp.Clock()
	s.stats.BarrierEpisodes++
	if s.trace.Enabled() {
		s.trace.Add(start, p.id, trace.BarrierArrive, int32(id), -1)
	}

	// Protocol-specific pre-arrival work (closing the interval, pushing
	// updates, preparing EI loser diffs). May advance the clock and block.
	arr := s.prot.barrierPush(p)
	arr.src = p.id

	if p.id == barrierMaster {
		// Process the master's own arrival as an event so the master is
		// parked before departures (or flushes) try to wake it.
		at := p.sp.Clock()
		s.eng.Schedule(at, func() { s.barrierArrive(arr) })
	} else {
		m := &msg{kind: mBarArrive, src: p.id, dst: barrierMaster,
			class: ClassSync, attr: attrBarrier, recs: arr.recs, vt: []int32(arr.vt)}
		if arr.eiPages != nil {
			m.pgs = arr.eiPages
		}
		p.sendFromProc(m)
	}
	p.sp.Block()
	d := p.sp.Clock() - start
	s.stats.BarrierWaitCycles += d
	p.pstats.BarrierWait += d
}

// arrival is the consistency content of a barrier arrival.
type arrival struct {
	src     int
	recs    []*intervalRec
	vt      vc.VC
	eiPages []page.ID
}

// handleBarArrive unmarshals a remote arrival at the master.
func (s *System) handleBarArrive(m *msg) {
	s.barrierArrive(&arrival{src: m.src, recs: m.recs, vt: vc.VC(m.vt), eiPages: m.pgs})
}

// barrierArrive accumulates one arrival; the last one triggers departures.
func (s *System) barrierArrive(a *arrival) {
	b := &s.bar
	b.arrived++
	for _, r := range a.recs {
		k := recKey(r.proc, r.idx)
		if !b.seen[k] {
			b.seen[k] = true
			b.recs = append(b.recs, r)
		}
	}
	if a.vt != nil {
		b.vt.Join(a.vt)
	}
	for _, pg := range a.eiPages {
		b.eiMods[pg] |= 1 << uint(a.src)
	}
	if b.arrived < b.n {
		return
	}

	b.episode++
	d := &departInfo{vt: b.vt.Clone(), recs: b.recs, episode: b.episode}
	if len(b.eiMods) > 0 {
		pgs := make([]page.ID, 0, len(b.eiMods))
		for pg := range b.eiMods {
			pgs = append(pgs, pg)
		}
		sort.Slice(pgs, func(i, j int) bool { return pgs[i] < pgs[j] })
		for _, pg := range pgs {
			mods := b.eiMods[pg]
			// Designate the winner among processors whose copy is valid
			// right now: every processor is blocked at the barrier at this
			// instant, so validity is frozen. A modifier can have been
			// invalidated between its last write and the barrier by a
			// concurrent lock release on a falsely shared page, so the
			// lowest-id valid holder (preferring modifiers) wins; the
			// winner's departure is delivered before any post-barrier
			// invalidation can reach it, so it claims winnerhood valid.
			winner := -1
			for w := 0; w < b.n; w++ {
				if mods&(1<<uint(w)) != 0 && s.procs[w].pages[pg].valid {
					winner = w
					break
				}
			}
			if winner < 0 {
				for w := 0; w < b.n; w++ {
					if s.procs[w].pages[pg].valid {
						winner = w
						break
					}
				}
			}
			if winner < 0 {
				// no valid copy anywhere would be a protocol bug
				for w := 0; w < b.n; w++ {
					if mods&(1<<uint(w)) != 0 {
						winner = w
						break
					}
				}
			}
			d.eiPages = append(d.eiPages, eiPage{pg: pg, mods: mods, winner: winner})
		}
	}
	b.baseVT = d.vt.Clone()
	b.reset(b.n)
	b.baseVT = d.vt.Clone()

	for i := 0; i < s.cfg.Procs; i++ {
		if i == barrierMaster {
			continue
		}
		s.sendFromHandler(&msg{kind: mBarDepart, src: barrierMaster, dst: i,
			class: ClassSync, attr: attrBarrier, depart: d})
	}
	// The master's own departure is local.
	mp := s.procs[barrierMaster]
	s.obsBarrierDeparted(mp.id, d)
	s.prot.applyDepart(mp, d, func() { mp.sp.Wake(s.eng.Now()) })
}

// handleBarDepart performs the departure (acquire) at a processor.
func (s *System) handleBarDepart(p *Proc, m *msg) {
	if s.trace.Enabled() {
		s.trace.Add(s.eng.Now(), p.id, trace.BarrierDepart, int32(m.depart.episode), -1)
	}
	s.obsBarrierDeparted(p.id, m.depart)
	s.prot.applyDepart(p, m.depart, func() { p.sp.Wake(s.eng.Now()) })
}
