package page

import "testing"

func benchPage(dirtyWords int) (twin, cur Buf) {
	cur = NewBuf(4096)
	for i := range cur {
		cur[i] = byte(i * 31)
	}
	twin = Buf(Twin(cur))
	for w := 0; w < dirtyWords; w++ {
		cur.PutU64((w*37%512)*8, uint64(w)*0x9E3779B97F4A7C15)
	}
	return
}

// BenchmarkMakeDiffSparse diffs a 4 KB page with ~3% dirty words (the
// common protocol case: one molecule's force words).
func BenchmarkMakeDiffSparse(b *testing.B) {
	twin, cur := benchPage(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := MakeDiff(0, twin, cur)
		if d.Empty() {
			b.Fatal("diff empty")
		}
	}
}

// BenchmarkMakeDiffDense diffs a fully rewritten page (barrier-phase
// owner updates).
func BenchmarkMakeDiffDense(b *testing.B) {
	twin, cur := benchPage(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MakeDiff(0, twin, cur)
	}
}

// BenchmarkApplyDiff applies a sparse diff.
func BenchmarkApplyDiff(b *testing.B) {
	twin, cur := benchPage(16)
	d := MakeDiff(0, twin, cur)
	dst := NewBuf(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Apply(dst)
	}
}
