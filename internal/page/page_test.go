package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDiffEmptyWhenUnchanged(t *testing.T) {
	cur := NewBuf(128)
	for i := 0; i < 128; i++ {
		cur[i] = byte(i)
	}
	twin := Twin(cur)
	d := MakeDiff(1, twin, cur)
	if !d.Empty() {
		t.Fatalf("diff of identical pages not empty: %+v", d)
	}
	if d.SizeBytes() != 0 {
		t.Errorf("SizeBytes = %d, want 0", d.SizeBytes())
	}
}

func TestDiffSingleWord(t *testing.T) {
	cur := NewBuf(256)
	twin := Twin(cur)
	cur.PutU64(64, 0xdeadbeef)
	d := MakeDiff(3, twin, cur)
	if len(d.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(d.Runs))
	}
	if d.Runs[0].Off != 8 || len(d.Runs[0].Words) != 1 {
		t.Fatalf("run = %+v", d.Runs[0])
	}
	if d.WordCount() != 1 {
		t.Errorf("WordCount = %d", d.WordCount())
	}
	if d.SizeBytes() != WordSize+runHeaderBytes {
		t.Errorf("SizeBytes = %d", d.SizeBytes())
	}
}

func TestDiffCoalescesAdjacentWords(t *testing.T) {
	cur := NewBuf(256)
	twin := Twin(cur)
	cur.PutU64(0, 1)
	cur.PutU64(8, 2)
	cur.PutU64(16, 3)
	cur.PutU64(80, 9)
	d := MakeDiff(0, twin, cur)
	if len(d.Runs) != 2 {
		t.Fatalf("runs = %d, want 2 (%+v)", len(d.Runs), d.Runs)
	}
	if d.Runs[0].Off != 0 || len(d.Runs[0].Words) != 3 {
		t.Errorf("first run = %+v", d.Runs[0])
	}
	if d.Runs[1].Off != 10 || len(d.Runs[1].Words) != 1 {
		t.Errorf("second run = %+v", d.Runs[1])
	}
}

func TestApplyReconstructs(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	orig := NewBuf(512)
	r.Read(orig)
	twin := Buf(Twin(orig))
	cur := Buf(Twin(orig))
	for i := 0; i < 20; i++ {
		cur.PutU64(r.Intn(64)*8, r.Uint64())
	}
	d := MakeDiff(7, twin, cur)
	got := Buf(Twin(orig))
	d.Apply(got)
	if !bytes.Equal(got, cur) {
		t.Fatalf("apply(diff) did not reconstruct modified page")
	}
}

func TestDisjointDiffsCommute(t *testing.T) {
	base := NewBuf(256)
	a := Buf(Twin(base))
	b := Buf(Twin(base))
	a.PutU64(0, 11)
	b.PutU64(128, 22)
	da := MakeDiff(0, base, a)
	db := MakeDiff(0, base, b)

	ab := Buf(Twin(base))
	da.Apply(ab)
	db.Apply(ab)
	ba := Buf(Twin(base))
	db.Apply(ba)
	da.Apply(ba)
	if !bytes.Equal(ab, ba) {
		t.Fatal("disjoint diffs do not commute")
	}
}

func TestBufAccessors(t *testing.T) {
	b := NewBuf(64)
	b.PutF64(16, 3.25)
	if got := b.F64(16); got != 3.25 {
		t.Errorf("F64 = %v", got)
	}
	b.PutU64(0, 99)
	if got := b.U64(0); got != 99 {
		t.Errorf("U64 = %v", got)
	}
}

func TestMakeDiffLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	MakeDiff(0, make([]byte, 8), make([]byte, 16))
}

// Property: for random modifications, applying the diff to the twin
// reconstructs the current page exactly.
func TestQuickDiffRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := (1 + r.Intn(64)) * WordSize
		base := NewBuf(size)
		r.Read(base)
		cur := Buf(Twin(base))
		for i := 0; i < r.Intn(2*size/WordSize); i++ {
			cur.PutU64(r.Intn(size/WordSize)*WordSize, r.Uint64())
		}
		d := MakeDiff(0, base, cur)
		got := Buf(Twin(base))
		d.Apply(got)
		return bytes.Equal(got, cur)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: diff size is monotone — it never exceeds page size plus headers
// and is zero only for identical pages.
func TestQuickDiffSizeBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := (1 + r.Intn(64)) * WordSize
		base := NewBuf(size)
		r.Read(base)
		cur := Buf(Twin(base))
		n := r.Intn(size / WordSize)
		for i := 0; i < n; i++ {
			cur.PutU64(r.Intn(size/WordSize)*WordSize, r.Uint64())
		}
		d := MakeDiff(0, base, cur)
		if bytes.Equal(base, cur) != d.Empty() {
			return false
		}
		maxWords := size / WordSize
		return d.WordCount() <= maxWords &&
			d.SizeBytes() <= maxWords*WordSize+maxWords*runHeaderBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
