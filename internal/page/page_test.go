package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDiffEmptyWhenUnchanged(t *testing.T) {
	cur := NewBuf(128)
	for i := 0; i < 128; i++ {
		cur[i] = byte(i)
	}
	twin := Twin(cur)
	d := MakeDiff(1, twin, cur)
	if !d.Empty() {
		t.Fatalf("diff of identical pages not empty: %+v", d)
	}
	if d.SizeBytes() != 0 {
		t.Errorf("SizeBytes = %d, want 0", d.SizeBytes())
	}
}

func TestDiffSingleWord(t *testing.T) {
	cur := NewBuf(256)
	twin := Twin(cur)
	cur.PutU64(64, 0xdeadbeef)
	d := MakeDiff(3, twin, cur)
	if len(d.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(d.Runs))
	}
	if d.Runs[0].Off != 8 || len(d.Runs[0].Words) != 1 {
		t.Fatalf("run = %+v", d.Runs[0])
	}
	if d.WordCount() != 1 {
		t.Errorf("WordCount = %d", d.WordCount())
	}
	if d.SizeBytes() != WordSize+runHeaderBytes {
		t.Errorf("SizeBytes = %d", d.SizeBytes())
	}
}

func TestDiffCoalescesAdjacentWords(t *testing.T) {
	cur := NewBuf(256)
	twin := Twin(cur)
	cur.PutU64(0, 1)
	cur.PutU64(8, 2)
	cur.PutU64(16, 3)
	cur.PutU64(80, 9)
	d := MakeDiff(0, twin, cur)
	if len(d.Runs) != 2 {
		t.Fatalf("runs = %d, want 2 (%+v)", len(d.Runs), d.Runs)
	}
	if d.Runs[0].Off != 0 || len(d.Runs[0].Words) != 3 {
		t.Errorf("first run = %+v", d.Runs[0])
	}
	if d.Runs[1].Off != 10 || len(d.Runs[1].Words) != 1 {
		t.Errorf("second run = %+v", d.Runs[1])
	}
}

func TestApplyReconstructs(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	orig := NewBuf(512)
	r.Read(orig)
	twin := Buf(Twin(orig))
	cur := Buf(Twin(orig))
	for i := 0; i < 20; i++ {
		cur.PutU64(r.Intn(64)*8, r.Uint64())
	}
	d := MakeDiff(7, twin, cur)
	got := Buf(Twin(orig))
	d.Apply(got)
	if !bytes.Equal(got, cur) {
		t.Fatalf("apply(diff) did not reconstruct modified page")
	}
}

func TestDisjointDiffsCommute(t *testing.T) {
	base := NewBuf(256)
	a := Buf(Twin(base))
	b := Buf(Twin(base))
	a.PutU64(0, 11)
	b.PutU64(128, 22)
	da := MakeDiff(0, base, a)
	db := MakeDiff(0, base, b)

	ab := Buf(Twin(base))
	da.Apply(ab)
	db.Apply(ab)
	ba := Buf(Twin(base))
	db.Apply(ba)
	da.Apply(ba)
	if !bytes.Equal(ab, ba) {
		t.Fatal("disjoint diffs do not commute")
	}
}

// ---- edge cases of the chunk-skipping run scanner ----

func TestDiffRunAtPageStart(t *testing.T) {
	cur := NewBuf(4096)
	twin := Twin(cur)
	cur.PutU64(0, 1)
	cur.PutU64(8, 2)
	d := MakeDiff(0, twin, cur)
	if len(d.Runs) != 1 || d.Runs[0].Off != 0 || len(d.Runs[0].Words) != 2 {
		t.Fatalf("run at page start: %+v", d.Runs)
	}
}

func TestDiffRunAtPageEnd(t *testing.T) {
	cur := NewBuf(4096)
	twin := Twin(cur)
	last := len(cur)/WordSize - 1
	cur.PutU64((last-1)*WordSize, 7)
	cur.PutU64(last*WordSize, 8)
	d := MakeDiff(0, twin, cur)
	if len(d.Runs) != 1 || int(d.Runs[0].Off) != last-1 || len(d.Runs[0].Words) != 2 {
		t.Fatalf("run at page end: %+v", d.Runs)
	}
}

func TestDiffWholePageModified(t *testing.T) {
	cur := NewBuf(256)
	twin := Twin(cur)
	for w := 0; w < 32; w++ {
		cur.PutU64(w*WordSize, uint64(w+1))
	}
	d := MakeDiff(0, twin, cur)
	if len(d.Runs) != 1 || d.Runs[0].Off != 0 || len(d.Runs[0].Words) != 32 {
		t.Fatalf("whole-page run: %d runs, first %+v", len(d.Runs), d.Runs[0])
	}
}

// Runs separated by exactly one unmodified word must stay distinct — the
// unmodified word is the run delimiter and must not be transmitted.
func TestDiffAdjacentRunsOneWordGap(t *testing.T) {
	cur := NewBuf(4096)
	twin := Twin(cur)
	cur.PutU64(16*WordSize, 1)
	cur.PutU64(17*WordSize, 2)
	// word 18 unmodified
	cur.PutU64(19*WordSize, 3)
	d := MakeDiff(0, twin, cur)
	if len(d.Runs) != 2 {
		t.Fatalf("runs = %d, want 2 (%+v)", len(d.Runs), d.Runs)
	}
	if d.Runs[0].Off != 16 || len(d.Runs[0].Words) != 2 {
		t.Errorf("first run = %+v", d.Runs[0])
	}
	if d.Runs[1].Off != 19 || len(d.Runs[1].Words) != 1 {
		t.Errorf("second run = %+v", d.Runs[1])
	}
	if d.WordCount() != 3 {
		t.Errorf("WordCount = %d, want 3", d.WordCount())
	}
}

// A run crossing a chunk (cache-line) boundary must not be split by the
// fast-skip path.
func TestDiffRunCrossesChunkBoundary(t *testing.T) {
	cur := NewBuf(4096)
	twin := Twin(cur)
	for w := chunkWords - 2; w < chunkWords+2; w++ {
		cur.PutU64(w*WordSize, uint64(w))
	}
	d := MakeDiff(0, twin, cur)
	if len(d.Runs) != 1 || int(d.Runs[0].Off) != chunkWords-2 || len(d.Runs[0].Words) != 4 {
		t.Fatalf("chunk-straddling run: %+v", d.Runs)
	}
}

// Pages smaller than one chunk must fall back to the word scan.
func TestDiffPageSmallerThanChunk(t *testing.T) {
	cur := NewBuf(2 * WordSize)
	twin := Twin(cur)
	cur.PutU64(WordSize, 9)
	d := MakeDiff(0, twin, cur)
	if len(d.Runs) != 1 || d.Runs[0].Off != 1 || len(d.Runs[0].Words) != 1 {
		t.Fatalf("sub-chunk page: %+v", d.Runs)
	}
}

// Property: MakeDiff + Apply round-trips two completely random page pairs:
// applying diff(a→b) to a copy of a reconstructs b exactly.
func TestQuickDiffRoundTripRandomPairs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := (1 + r.Intn(96)) * WordSize
		a := NewBuf(size)
		b := NewBuf(size)
		r.Read(a)
		r.Read(b)
		d := MakeDiff(0, a, b)
		got := Buf(Twin(a))
		d.Apply(got)
		return bytes.Equal(got, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ---- pooled twins ----

func TestNewTwinCopiesAndIsIndependent(t *testing.T) {
	data := NewBuf(256)
	for i := range data {
		data[i] = byte(i)
	}
	tw := NewTwin(data)
	if !bytes.Equal(tw, data) {
		t.Fatal("twin does not match its source")
	}
	data.PutU64(0, 0xffff)
	if tw.U64(0) == 0xffff {
		t.Fatal("twin aliases its source")
	}
	FreeTwin(tw)
	// A recycled buffer must still come back fully overwritten.
	tw2 := NewTwin(data)
	if !bytes.Equal(tw2, data) {
		t.Fatal("recycled twin not fully overwritten")
	}
	FreeTwin(tw2)
}

func TestFreeTwinNilIsNoop(t *testing.T) {
	FreeTwin(nil) // must not panic
}

// Diffs must not alias the twin they were computed from: the twin is
// recycled immediately after MakeDiff.
func TestDiffDoesNotAliasTwin(t *testing.T) {
	data := NewBuf(256)
	tw := NewTwin(data)
	cur := Buf(Twin(data))
	cur.PutU64(64, 42)
	d := MakeDiff(0, tw, cur)
	FreeTwin(tw)
	// Scribble over the recycled buffer via a fresh twin of the same size.
	junk := NewBuf(256)
	for i := range junk {
		junk[i] = 0xee
	}
	_ = NewTwin(junk)
	if d.Runs[0].Words[0] != 42 {
		t.Fatalf("diff word clobbered after FreeTwin: %x", d.Runs[0].Words[0])
	}
}

func TestBufAccessors(t *testing.T) {
	b := NewBuf(64)
	b.PutF64(16, 3.25)
	if got := b.F64(16); got != 3.25 {
		t.Errorf("F64 = %v", got)
	}
	b.PutU64(0, 99)
	if got := b.U64(0); got != 99 {
		t.Errorf("U64 = %v", got)
	}
}

func TestMakeDiffLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	MakeDiff(0, make([]byte, 8), make([]byte, 16))
}

// Property: for random modifications, applying the diff to the twin
// reconstructs the current page exactly.
func TestQuickDiffRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := (1 + r.Intn(64)) * WordSize
		base := NewBuf(size)
		r.Read(base)
		cur := Buf(Twin(base))
		for i := 0; i < r.Intn(2*size/WordSize); i++ {
			cur.PutU64(r.Intn(size/WordSize)*WordSize, r.Uint64())
		}
		d := MakeDiff(0, base, cur)
		got := Buf(Twin(base))
		d.Apply(got)
		return bytes.Equal(got, cur)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: diff size is monotone — it never exceeds page size plus headers
// and is zero only for identical pages.
func TestQuickDiffSizeBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := (1 + r.Intn(64)) * WordSize
		base := NewBuf(size)
		r.Read(base)
		cur := Buf(Twin(base))
		n := r.Intn(size / WordSize)
		for i := 0; i < n; i++ {
			cur.PutU64(r.Intn(size/WordSize)*WordSize, r.Uint64())
		}
		d := MakeDiff(0, base, cur)
		if bytes.Equal(base, cur) != d.Empty() {
			return false
		}
		maxWords := size / WordSize
		return d.WordCount() <= maxWords &&
			d.SizeBytes() <= maxWords*WordSize+maxWords*runHeaderBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
