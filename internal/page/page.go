// Package page implements the page-level data machinery of a
// multiple-writer software DSM: page buffers, write twins, and run-length
// encoded word diffs.
//
// A twin is a copy of a page taken at the first write in an interval. At the
// end of the interval the twin is compared against the current contents to
// produce a diff: a run-length encoding of the modified words. Sending diffs
// instead of whole pages greatly reduces data traffic and lets concurrent
// modifications by multiple writers be merged into a single version
// (Carter et al., SOSP'91; Keleher et al., ISCA'92).
package page

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ID identifies a shared page.
type ID int32

// WordSize is the diffing granularity in bytes. Diffs compare and transmit
// 8-byte words; the paper's 32-bit machine diffed 4-byte words, which only
// changes constant factors in diff sizes, not protocol behaviour.
const WordSize = 8

// Run is a maximal run of consecutive modified words.
type Run struct {
	Off   int32    // word offset within the page
	Words []uint64 // new values
}

// Diff is the set of words of one page modified during one interval.
type Diff struct {
	Page ID
	Runs []Run
}

// runHeaderBytes is the accounting cost of one run header (offset+length)
// when a diff is transmitted.
const runHeaderBytes = 4

// Twin returns an independent copy of data, to be diffed against later.
func Twin(data []byte) []byte {
	t := make([]byte, len(data))
	copy(t, data)
	return t
}

// MakeDiff computes the run-length encoded difference between twin (the
// page contents at the start of the interval) and cur (the contents now).
// Both must have the same length, a multiple of WordSize.
func MakeDiff(id ID, twin, cur []byte) Diff {
	if len(twin) != len(cur) {
		panic(fmt.Sprintf("page: MakeDiff length mismatch %d != %d", len(twin), len(cur)))
	}
	if len(cur)%WordSize != 0 {
		panic(fmt.Sprintf("page: size %d not a multiple of word size", len(cur)))
	}
	d := Diff{Page: id}
	words := len(cur) / WordSize
	i := 0
	for i < words {
		off := i * WordSize
		if wordEq(twin[off:off+WordSize], cur[off:off+WordSize]) {
			i++
			continue
		}
		// start of a run
		start := i
		for i < words {
			o := i * WordSize
			if wordEq(twin[o:o+WordSize], cur[o:o+WordSize]) {
				break
			}
			i++
		}
		run := Run{Off: int32(start), Words: make([]uint64, i-start)}
		for w := start; w < i; w++ {
			run.Words[w-start] = binary.LittleEndian.Uint64(cur[w*WordSize:])
		}
		d.Runs = append(d.Runs, run)
	}
	return d
}

func wordEq(a, b []byte) bool {
	return binary.LittleEndian.Uint64(a) == binary.LittleEndian.Uint64(b)
}

// Apply writes the diff's runs into dst, which must be at least as large as
// the diffed page.
func (d Diff) Apply(dst []byte) {
	for _, r := range d.Runs {
		for i, w := range r.Words {
			off := (int(r.Off) + i) * WordSize
			binary.LittleEndian.PutUint64(dst[off:], w)
		}
	}
}

// Empty reports whether the diff carries no modified words.
func (d Diff) Empty() bool { return len(d.Runs) == 0 }

// WordCount returns the number of modified words carried.
func (d Diff) WordCount() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Words)
	}
	return n
}

// SizeBytes returns the transmitted payload size of the diff: the modified
// words plus a small per-run header. Protocol-specific consistency
// information is deliberately not counted, matching the paper's accounting
// ("only the actual shared data moved by the protocols is included in
// message lengths").
func (d Diff) SizeBytes() int {
	return d.WordCount()*WordSize + len(d.Runs)*runHeaderBytes
}

// Buf is a page-sized buffer with typed word accessors.
type Buf []byte

// NewBuf returns a zeroed page buffer of the given size.
func NewBuf(size int) Buf { return make(Buf, size) }

// U64 reads the 8-byte word at byte offset off.
func (b Buf) U64(off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }

// PutU64 stores an 8-byte word at byte offset off.
func (b Buf) PutU64(off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }

// F64 reads a float64 at byte offset off.
func (b Buf) F64(off int) float64 { return math.Float64frombits(b.U64(off)) }

// PutF64 stores a float64 at byte offset off.
func (b Buf) PutF64(off int, v float64) { b.PutU64(off, math.Float64bits(v)) }
