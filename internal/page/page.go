// Package page implements the page-level data machinery of a
// multiple-writer software DSM: page buffers, write twins, and run-length
// encoded word diffs.
//
// A twin is a copy of a page taken at the first write in an interval. At the
// end of the interval the twin is compared against the current contents to
// produce a diff: a run-length encoding of the modified words. Sending diffs
// instead of whole pages greatly reduces data traffic and lets concurrent
// modifications by multiple writers be merged into a single version
// (Carter et al., SOSP'91; Keleher et al., ISCA'92).
package page

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// ID identifies a shared page.
type ID int32

// WordSize is the diffing granularity in bytes. Diffs compare and transmit
// 8-byte words; the paper's 32-bit machine diffed 4-byte words, which only
// changes constant factors in diff sizes, not protocol behaviour.
const WordSize = 8

// Run is a maximal run of consecutive modified words.
type Run struct {
	Off   int32    // word offset within the page
	Words []uint64 // new values
}

// Diff is the set of words of one page modified during one interval.
type Diff struct {
	Page ID
	Runs []Run
}

// runHeaderBytes is the accounting cost of one run header (offset+length)
// when a diff is transmitted.
const runHeaderBytes = 4

// Twin returns an independent copy of data, to be diffed against later.
func Twin(data []byte) []byte {
	t := make([]byte, len(data))
	copy(t, data)
	return t
}

// twinPools caches page-sized buffers per size class. A write interval
// churns one twin per dirtied page — across a sweep that is millions of
// page-sized allocations the garbage collector otherwise has to chase.
// sync.Pool is safe under the parallel experiment harness, where many
// simulations (all with the same page size) run concurrently.
var twinPools sync.Map // int -> *sync.Pool

func twinPool(size int) *sync.Pool {
	if p, ok := twinPools.Load(size); ok {
		return p.(*sync.Pool)
	}
	p, _ := twinPools.LoadOrStore(size, &sync.Pool{
		New: func() any { return make([]byte, size) },
	})
	return p.(*sync.Pool)
}

// NewTwin returns a copy of data backed by a pooled buffer. The caller owns
// it until FreeTwin; pooled contents are fully overwritten by the copy.
func NewTwin(data []byte) Buf {
	b := twinPool(len(data)).Get().([]byte)
	copy(b, data)
	return b //dsmlint:ignore poolsafe ownership transfers to the caller until FreeTwin
}

// FreeTwin recycles a twin obtained from NewTwin. The buffer must not be
// referenced afterwards (MakeDiff copies modified words out, so diffs never
// alias their twin).
func FreeTwin(b Buf) {
	if b != nil {
		twinPool(len(b)).Put([]byte(b))
	}
}

// chunkBytes is the fast-skip granularity of MakeDiff: a cache-line-sized
// block compared with eight unrolled word loads before falling back to
// word-granularity run detection. Unrolled compares beat bytes.Equal for
// this fixed tiny size — no call into memequal, and a mismatch in the
// first words exits immediately.
const chunkBytes = 64

const chunkWords = chunkBytes / WordSize

// diffScratch is reusable working storage for MakeDiff: modified words and
// packed (start, length) run spans accumulate here during the scan, so in
// steady state a diff performs exactly two allocations (the exact-size word
// array and Run headers) no matter how fragmented the modifications are.
type diffScratch struct {
	vals  []uint64
	spans []int64
}

var diffScratchPool = sync.Pool{New: func() any { return new(diffScratch) }}

// MakeDiff computes the run-length encoded difference between twin (the
// page contents at the start of the interval) and cur (the contents now).
// Both must have the same length, a multiple of WordSize.
func MakeDiff(id ID, twin, cur []byte) Diff {
	if len(twin) != len(cur) {
		panic(fmt.Sprintf("page: MakeDiff length mismatch %d != %d", len(twin), len(cur)))
	}
	if len(cur)%WordSize != 0 {
		panic(fmt.Sprintf("page: size %d not a multiple of word size", len(cur)))
	}
	d := Diff{Page: id}
	words := len(cur) / WordSize
	sc := diffScratchPool.Get().(*diffScratch)
	vals, spans := sc.vals[:0], sc.spans[:0]
	i := 0
	for i < words {
		off := i * WordSize
		// Fast-skip unmodified cache-line-sized regions (the chunkEq
		// compare, spelled out because the call is beyond the inlining
		// budget). Skipping equal words early never moves a run boundary,
		// so diffs stay byte-identical to the plain word-by-word scan.
		if i+chunkWords <= words {
			t, c := twin[off:off+chunkBytes], cur[off:off+chunkBytes]
			if binary.LittleEndian.Uint64(t) == binary.LittleEndian.Uint64(c) &&
				binary.LittleEndian.Uint64(t[8:]) == binary.LittleEndian.Uint64(c[8:]) &&
				binary.LittleEndian.Uint64(t[16:]) == binary.LittleEndian.Uint64(c[16:]) &&
				binary.LittleEndian.Uint64(t[24:]) == binary.LittleEndian.Uint64(c[24:]) &&
				binary.LittleEndian.Uint64(t[32:]) == binary.LittleEndian.Uint64(c[32:]) &&
				binary.LittleEndian.Uint64(t[40:]) == binary.LittleEndian.Uint64(c[40:]) &&
				binary.LittleEndian.Uint64(t[48:]) == binary.LittleEndian.Uint64(c[48:]) &&
				binary.LittleEndian.Uint64(t[56:]) == binary.LittleEndian.Uint64(c[56:]) {
				i += chunkWords
				continue
			}
		}
		if wordEq(twin[off:off+WordSize], cur[off:off+WordSize]) {
			i++
			continue
		}
		// start of a run
		start := i
		for i < words {
			o := i * WordSize
			if wordEq(twin[o:o+WordSize], cur[o:o+WordSize]) {
				break
			}
			vals = append(vals, binary.LittleEndian.Uint64(cur[o:]))
			i++
		}
		spans = append(spans, int64(start)<<32|int64(i-start))
	}
	if len(spans) > 0 {
		out := make([]uint64, len(vals))
		copy(out, vals)
		d.Runs = make([]Run, len(spans))
		pos := 0
		for k, sp := range spans {
			n := int(int32(sp))
			d.Runs[k] = Run{Off: int32(sp >> 32), Words: out[pos : pos+n : pos+n]}
			pos += n
		}
	}
	sc.vals, sc.spans = vals, spans
	diffScratchPool.Put(sc)
	return d
}

func wordEq(a, b []byte) bool {
	return binary.LittleEndian.Uint64(a) == binary.LittleEndian.Uint64(b)
}

// Apply writes the diff's runs into dst, which must be at least as large as
// the diffed page.
func (d Diff) Apply(dst []byte) {
	for _, r := range d.Runs {
		for i, w := range r.Words {
			off := (int(r.Off) + i) * WordSize
			binary.LittleEndian.PutUint64(dst[off:], w)
		}
	}
}

// Empty reports whether the diff carries no modified words.
func (d Diff) Empty() bool { return len(d.Runs) == 0 }

// WordCount returns the number of modified words carried.
func (d Diff) WordCount() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Words)
	}
	return n
}

// SizeBytes returns the transmitted payload size of the diff: the modified
// words plus a small per-run header. Protocol-specific consistency
// information is deliberately not counted, matching the paper's accounting
// ("only the actual shared data moved by the protocols is included in
// message lengths").
func (d Diff) SizeBytes() int {
	return d.WordCount()*WordSize + len(d.Runs)*runHeaderBytes
}

// Buf is a page-sized buffer with typed word accessors.
type Buf []byte

// NewBuf returns a zeroed page buffer of the given size.
func NewBuf(size int) Buf { return make(Buf, size) }

// U64 reads the 8-byte word at byte offset off.
func (b Buf) U64(off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }

// PutU64 stores an 8-byte word at byte offset off.
func (b Buf) PutU64(off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }

// F64 reads a float64 at byte offset off.
func (b Buf) F64(off int) float64 { return math.Float64frombits(b.U64(off)) }

// PutF64 stores a float64 at byte offset off.
func (b Buf) PutF64(off int, v float64) { b.PutU64(off, math.Float64bits(v)) }
