// Package spd provides sparse symmetric positive definite matrices and the
// symbolic Cholesky factorization machinery the Cholesky workload builds
// on. The paper runs SPLASH Cholesky on the Boeing/Harwell matrix
// `bcsstk14`; since that input file is not shipped here, we substitute a
// 2-D grid Laplacian of comparable order and density, which preserves the
// property that matters for the study: a sparse factorization with
// fine-grained column-level dependencies and a high ratio of
// synchronization to computation.
package spd

import (
	"fmt"
	"math"
)

// Matrix is a sparse SPD matrix stored by columns, lower triangle including
// the diagonal, row indices sorted ascending within each column.
type Matrix struct {
	N      int
	Colptr []int32   // length N+1
	Rowidx []int32   // row index per nonzero
	Values []float64 // value per nonzero
}

// NNZ returns the stored nonzero count (lower triangle).
func (m *Matrix) NNZ() int { return len(m.Rowidx) }

// At returns the (i, j) entry for i >= j (lower triangle), 0 if absent.
func (m *Matrix) At(i, j int) float64 {
	for k := m.Colptr[j]; k < m.Colptr[j+1]; k++ {
		if int(m.Rowidx[k]) == i {
			return m.Values[k]
		}
	}
	return 0
}

// GridLaplacian returns the 5-point Laplacian of a k×k grid (n = k²
// unknowns) with the diagonal boosted for strict positive definiteness.
// With natural ordering (index = r·k + c) the below-diagonal neighbors of
// column j are j+1 (east) and j+k (south), already ascending.
func GridLaplacian(k int) *Matrix {
	n := k * k
	m := &Matrix{N: n, Colptr: make([]int32, n+1)}
	for j := 0; j < n; j++ {
		r, c := j/k, j%k
		m.Colptr[j] = int32(len(m.Rowidx))
		m.Rowidx = append(m.Rowidx, int32(j))
		m.Values = append(m.Values, 4.5)
		if c+1 < k {
			m.Rowidx = append(m.Rowidx, int32(j+1))
			m.Values = append(m.Values, -1)
		}
		if r+1 < k {
			m.Rowidx = append(m.Rowidx, int32(j+k))
			m.Values = append(m.Values, -1)
		}
	}
	m.Colptr[n] = int32(len(m.Rowidx))
	return m
}

// Symbolic is the result of symbolic factorization: the nonzero structure
// of the Cholesky factor L (lower triangle including the diagonal, rows
// ascending within columns) and the elimination tree.
type Symbolic struct {
	N      int
	Colptr []int32
	Rowidx []int32
	Parent []int32 // elimination tree; -1 at roots
}

// NNZ returns the factor's stored nonzero count.
func (s *Symbolic) NNZ() int { return len(s.Rowidx) }

// RowPos returns, for column j, a map from row index to offset within the
// column (used to scatter updates).
func (s *Symbolic) RowPos(j int) map[int32]int32 {
	out := make(map[int32]int32, s.Colptr[j+1]-s.Colptr[j])
	for k := s.Colptr[j]; k < s.Colptr[j+1]; k++ {
		out[s.Rowidx[k]] = k - s.Colptr[j]
	}
	return out
}

// Analyze computes the elimination tree and the factor structure of a.
func Analyze(a *Matrix) *Symbolic {
	n := a.N
	parent := make([]int32, n)
	ancestor := make([]int32, n)
	for j := range parent {
		parent[j] = -1
		ancestor[j] = -1
	}
	// Liu's elimination-tree algorithm with path compression. Entries must
	// be visited in row order: entry (i, j), i > j, is row i's entry in
	// column j; walk the partially built tree from j toward i.
	rows := make([][]int32, n)
	for j := 0; j < n; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			if i := a.Rowidx[p]; int(i) > j {
				rows[i] = append(rows[i], int32(j))
			}
		}
	}
	for i := 0; i < n; i++ {
		for _, j := range rows[i] {
			k := j
			for k != -1 && k < int32(i) {
				next := ancestor[k]
				ancestor[k] = int32(i)
				if next == -1 {
					parent[k] = int32(i)
					break
				}
				k = next
			}
		}
	}
	// Column structures: struct(L_j) = struct(A_j) ∪ (∪_children struct(L_c) \ {c}).
	children := make([][]int32, n)
	for j := 0; j < n; j++ {
		if parent[j] != -1 {
			children[parent[j]] = append(children[parent[j]], int32(j))
		}
	}
	s := &Symbolic{N: n, Colptr: make([]int32, n+1), Parent: parent}
	colrows := make([][]int32, n)
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	for j := 0; j < n; j++ {
		var rows []int32
		mark[j] = int32(j)
		rows = append(rows, int32(j))
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := a.Rowidx[p]
			if int(i) > j && mark[i] != int32(j) {
				mark[i] = int32(j)
				rows = append(rows, i)
			}
		}
		for _, c := range children[j] {
			for _, i := range colrows[c] {
				if int(i) > j && mark[i] != int32(j) {
					mark[i] = int32(j)
					rows = append(rows, i)
				}
			}
		}
		sortInt32(rows)
		colrows[j] = rows
	}
	for j := 0; j < n; j++ {
		s.Colptr[j] = int32(len(s.Rowidx))
		s.Rowidx = append(s.Rowidx, colrows[j]...)
	}
	s.Colptr[n] = int32(len(s.Rowidx))
	return s
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Factor computes the numeric Cholesky factor sequentially (right-looking,
// the same update order class as the parallel workload) and returns the
// values aligned with the symbolic structure.
func Factor(a *Matrix, s *Symbolic) []float64 {
	n := a.N
	vals := make([]float64, s.NNZ())
	// scatter A into L's structure
	for j := 0; j < n; j++ {
		pos := s.RowPos(j)
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			off, ok := pos[a.Rowidx[p]]
			if !ok {
				panic(fmt.Sprintf("spd: A entry (%d,%d) outside factor structure", a.Rowidx[p], j))
			}
			vals[s.Colptr[j]+off] = a.Values[p]
		}
	}
	rowpos := make([]map[int32]int32, n)
	for j := 0; j < n; j++ {
		rowpos[j] = s.RowPos(j)
	}
	for k := 0; k < n; k++ {
		Cdiv(s, vals, k)
		// cmod(j, k) for each j in struct(k), j > k
		for p := s.Colptr[k] + 1; p < s.Colptr[k+1]; p++ {
			Cmod(s, vals, int(s.Rowidx[p]), k, rowpos[int(s.Rowidx[p])])
		}
	}
	return vals
}

// Cdiv performs the column division step on column k: the diagonal becomes
// its square root and the subdiagonal entries are divided by it.
func Cdiv(s *Symbolic, vals []float64, k int) {
	d := vals[s.Colptr[k]]
	if d <= 0 {
		panic(fmt.Sprintf("spd: non-positive pivot %v at column %d", d, k))
	}
	d = math.Sqrt(d)
	vals[s.Colptr[k]] = d
	for p := s.Colptr[k] + 1; p < s.Colptr[k+1]; p++ {
		vals[p] /= d
	}
}

// Cmod applies the update of completed column k to column j (j in
// struct(k), j > k): L[:][j] -= L[j][k] * L[:][k] over the shared rows.
func Cmod(s *Symbolic, vals []float64, j, k int, rowposJ map[int32]int32) {
	// find L[j][k]
	var ljk float64
	start := int32(-1)
	for p := s.Colptr[k]; p < s.Colptr[k+1]; p++ {
		if int(s.Rowidx[p]) == j {
			ljk = vals[p]
			start = p
			break
		}
	}
	if start < 0 {
		panic(fmt.Sprintf("spd: cmod(%d,%d) but L[%d][%d] not in structure", j, k, j, k))
	}
	for p := start; p < s.Colptr[k+1]; p++ {
		i := s.Rowidx[p]
		off, ok := rowposJ[i]
		if !ok {
			panic(fmt.Sprintf("spd: fill (%d,%d) missing from symbolic structure", i, j))
		}
		vals[s.Colptr[j]+off] -= ljk * vals[p]
	}
}

