package spd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridLaplacianShape(t *testing.T) {
	m := GridLaplacian(3)
	if m.N != 9 {
		t.Fatalf("N = %d", m.N)
	}
	// interior structure: col 0 has diag + east + south
	if m.At(0, 0) != 4.5 || m.At(1, 0) != -1 || m.At(3, 0) != -1 {
		t.Errorf("column 0 wrong: %v %v %v", m.At(0, 0), m.At(1, 0), m.At(3, 0))
	}
	// last column: only the diagonal
	if m.Colptr[9]-m.Colptr[8] != 1 {
		t.Errorf("last column has %d entries", m.Colptr[9]-m.Colptr[8])
	}
	// rows ascending within columns
	for j := 0; j < m.N; j++ {
		for p := m.Colptr[j] + 1; p < m.Colptr[j+1]; p++ {
			if m.Rowidx[p] <= m.Rowidx[p-1] {
				t.Fatalf("rows not ascending in column %d", j)
			}
		}
	}
}

func TestAnalyzeContainsA(t *testing.T) {
	a := GridLaplacian(5)
	s := Analyze(a)
	for j := 0; j < a.N; j++ {
		pos := s.RowPos(j)
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			if _, ok := pos[a.Rowidx[p]]; !ok {
				t.Fatalf("A entry (%d,%d) missing from L structure", a.Rowidx[p], j)
			}
		}
	}
	if s.NNZ() < a.NNZ() {
		t.Fatalf("factor has fewer nonzeros (%d) than A (%d)", s.NNZ(), a.NNZ())
	}
}

func TestEliminationTreeMonotone(t *testing.T) {
	a := GridLaplacian(6)
	s := Analyze(a)
	for j, p := range s.Parent {
		if p != -1 && int(p) <= j {
			t.Fatalf("parent[%d] = %d not above the node", j, p)
		}
	}
	if s.Parent[a.N-1] != -1 {
		t.Errorf("last column should be a root")
	}
}

// The factor must reproduce A: L·Lᵀ == A within tolerance.
func TestFactorReconstructsA(t *testing.T) {
	for _, k := range []int{2, 3, 5, 8} {
		a := GridLaplacian(k)
		s := Analyze(a)
		vals := Factor(a, s)
		n := a.N
		// dense L for checking
		L := make([][]float64, n)
		for i := range L {
			L[i] = make([]float64, n)
		}
		for j := 0; j < n; j++ {
			for p := s.Colptr[j]; p < s.Colptr[j+1]; p++ {
				L[s.Rowidx[p]][j] = vals[p]
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				var sum float64
				for q := 0; q <= j; q++ {
					sum += L[i][q] * L[j][q]
				}
				want := a.At(i, j)
				if math.Abs(sum-want) > 1e-9 {
					t.Fatalf("k=%d: (L·Lᵀ)[%d][%d] = %v, want %v", k, i, j, sum, want)
				}
			}
		}
	}
}

func TestDiagonalPositive(t *testing.T) {
	a := GridLaplacian(7)
	s := Analyze(a)
	vals := Factor(a, s)
	for j := 0; j < a.N; j++ {
		if vals[s.Colptr[j]] <= 0 {
			t.Fatalf("L[%d][%d] = %v", j, j, vals[s.Colptr[j]])
		}
	}
}

// Property: the factor structure is closed under the elimination tree —
// for every off-diagonal entry (i, j) of L, i also appears in column
// parent(j).
func TestQuickStructureClosure(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(7)
		a := GridLaplacian(k)
		s := Analyze(a)
		for j := 0; j < s.N; j++ {
			par := s.Parent[j]
			if par == -1 {
				continue
			}
			pos := s.RowPos(int(par))
			for p := s.Colptr[j] + 1; p < s.Colptr[j+1]; p++ {
				i := s.Rowidx[p]
				if i == par {
					continue
				}
				if _, ok := pos[i]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
