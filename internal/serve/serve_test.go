package serve_test

import (
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/serve"
	"lrcdsm/internal/serve/loadgen"
)

// serveRun is one completed cluster + load: the finished cluster for
// Peek-based comparison, the load result, and the run stats.
type serveRun struct {
	cl    *live.Cluster
	res   *loadgen.Result
	stats *live.Stats
}

// runServe brings up a serving cluster, drives it with the load, shuts
// down, and returns everything needed for verification. drv wraps the
// in-proc server into the per-client driver (nil = in-proc direct).
func runServe(t *testing.T, nodes int, trs []transport.Transport, scfg serve.Config,
	lcfg loadgen.Config, mkDrv func(*serve.Server) func(int) (loadgen.Driver, error)) *serveRun {
	t.Helper()
	cl, err := live.New(live.Config{
		Nodes:      nodes,
		Protocol:   core.LH,
		Transports: trs,
		RPCTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := serve.NewStore(cl, scfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(st)
	type out struct {
		stats *live.Stats
		err   error
	}
	done := make(chan out, 1)
	go func() {
		stats, rerr := cl.Run(srv.NodeWorker)
		done <- out{stats, rerr}
	}()
	mk := func(int) (loadgen.Driver, error) { return srv, nil }
	if mkDrv != nil {
		mk = mkDrv(srv)
	}
	res, lerr := loadgen.Run(lcfg, mk)
	srv.Shutdown()
	o := <-done
	if lerr != nil {
		t.Fatalf("%d nodes: load: %v", nodes, lerr)
	}
	if o.err != nil {
		t.Fatalf("%d nodes: cluster run: %v", nodes, o.err)
	}
	if res.Violations != 0 {
		t.Fatalf("%d nodes: %d read-your-writes violations", nodes, res.Violations)
	}
	return &serveRun{cl: cl, res: res, stats: o.stats}
}

// compareKeys checks every key's final value against a 1-node reference
// run of the same deterministic load.
func compareKeys(t *testing.T, scfg serve.Config, got, ref *serveRun, keys uint64) {
	t.Helper()
	// Both runs share the store layout (same config on the same
	// allocation order), so the same KeyAddr applies to both.
	st, err := serve.NewStore(probeMem{}, scfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for k := uint64(0); k < keys; k++ {
		a := st.KeyAddr(k)
		if g, r := got.cl.PeekU64(a), ref.cl.PeekU64(a); g != r {
			if bad < 5 {
				t.Errorf("key %d: got %#x, 1-node reference %#x", k, g, r)
			}
			bad++
		}
	}
	if bad > 5 {
		t.Errorf("... and %d more mismatched keys", bad-5)
	}
}

// probeMem is a do-nothing core.Mem used to rebuild a Store's address
// arithmetic without a cluster (the layout is deterministic: one page
// allocation from address 0 upward, mirroring the live cluster's
// allocator order).
type probeMem struct{}

func (probeMem) Alloc(n int) core.Addr            { return 0 }
func (probeMem) AllocPage(n int) core.Addr        { return 0 }
func (probeMem) InitF64(core.Addr, float64)       {}
func (probeMem) InitI64(core.Addr, int64)         {}
func (probeMem) InitU64(core.Addr, uint64)        {}
func (probeMem) NewLock() int                     { return 0 }
func (probeMem) NewLocks(n int) int               { return 0 }
func (probeMem) NewBarrier() int                  { return 0 }
func (probeMem) Procs() int                       { return 1 }

func testServeCfg() serve.Config {
	return serve.Config{Keys: 1 << 10, KeysPerPage: 64, Shards: 16, Workers: 2, QueueDepth: 128}
}

func testLoadCfg(mix loadgen.Mix) loadgen.Config {
	return loadgen.Config{
		Clients: 8, Workers: 4, Keys: 1 << 10, Ops: 4000, Seed: 77,
		Mix: mix, Partition: true, Verify: true,
	}
}

// TestServeInprocVsReference is the serving smoke: a multi-node in-proc
// cluster under uniform and zipfian mixes, verified two ways — live
// read-your-writes per client, and every key's final value against a
// 1-node reference run of the same deterministic load.
func TestServeInprocVsReference(t *testing.T) {
	for _, mix := range []loadgen.Mix{
		{Name: "update-uniform", ReadFrac: 0.5, Dist: "uniform"},
		{Name: "read-heavy-zipf", ReadFrac: 0.95, Dist: "zipfian", Theta: 0.99},
	} {
		mix := mix
		t.Run(mix.Name, func(t *testing.T) {
			t.Parallel()
			scfg, lcfg := testServeCfg(), testLoadCfg(mix)
			got := runServe(t, 2, nil, scfg, lcfg, nil)
			ref := runServe(t, 1, nil, scfg, lcfg, nil)
			compareKeys(t, scfg, got, ref, lcfg.Keys)
			if got.res.Ops != lcfg.Ops {
				t.Errorf("ran %d ops, want %d", got.res.Ops, lcfg.Ops)
			}
			// The verify sweep re-reads every written key through the same
			// server, so the serve counters see Ops + VerifiedKeys.
			if want := lcfg.Ops + got.res.VerifiedKeys; got.stats.Total.ServeGets+got.stats.Total.ServePuts != want {
				t.Errorf("serve counters %d gets + %d puts, want %d (ops + sweep)",
					got.stats.Total.ServeGets, got.stats.Total.ServePuts, want)
			}
			if got.stats.Total.ServePuts != got.res.Puts {
				t.Errorf("serve_puts = %d, load issued %d puts", got.stats.Total.ServePuts, got.res.Puts)
			}
			if got.res.Latency == nil || got.res.Latency.Count != lcfg.Ops {
				t.Errorf("latency histogram missing ops: %+v", got.res.Latency)
			}
		})
	}
}

// TestServeAnyRouting sends every operation to a round-robin node
// instead of the shard's affinity home, exercising lock forwarding and
// remote diff pulls, and still must match the reference.
func TestServeAnyRouting(t *testing.T) {
	scfg, lcfg := testServeCfg(), testLoadCfg(loadgen.Mix{Name: "update-uniform", ReadFrac: 0.5, Dist: "uniform"})
	scfg.Route = "any"
	got := runServe(t, 3, nil, scfg, lcfg, nil)
	ref := runServe(t, 1, nil, scfg, lcfg, nil)
	compareKeys(t, scfg, got, ref, lcfg.Keys)
	if got.stats.Total.LockForwards == 0 && got.stats.Total.LockHandoffs == 0 {
		t.Error("any-routing exercised no lock forwarding or handoffs")
	}
}

// TestServeTCPTransport runs the cluster's nodes over real TCP loopback
// sockets (the transport under the DSM protocol, not the frontend).
func TestServeTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP sockets in -short")
	}
	nodes := 2
	trs, err := transport.NewTCPLoopbackNet(nodes, transport.TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scfg, lcfg := testServeCfg(), testLoadCfg(loadgen.Mix{Name: "update-uniform", ReadFrac: 0.5, Dist: "uniform"})
	lcfg.Ops = 2000
	got := runServe(t, nodes, trs.Transports(), scfg, lcfg, nil)
	ref := runServe(t, 1, nil, scfg, lcfg, nil)
	compareKeys(t, scfg, got, ref, lcfg.Keys)
}

// TestServeFrontendTCP drives the cluster through the TCP frontend —
// one connection per client — and must match the in-proc reference.
func TestServeFrontendTCP(t *testing.T) {
	scfg, lcfg := testServeCfg(), testLoadCfg(loadgen.Mix{Name: "update-uniform", ReadFrac: 0.5, Dist: "uniform"})
	lcfg.Ops = 2000
	var fe *serve.Frontend
	var clients []*serve.Client
	got := runServe(t, 2, nil, scfg, lcfg, func(srv *serve.Server) func(int) (loadgen.Driver, error) {
		var err error
		fe, err = serve.ServeTCP(srv, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return func(int) (loadgen.Driver, error) {
			cl, derr := serve.Dial(fe.Addr())
			if derr == nil {
				clients = append(clients, cl)
			}
			return cl, derr
		}
	})
	for _, cl := range clients {
		cl.Close()
	}
	fe.Close()
	ref := runServe(t, 1, nil, scfg, lcfg, nil)
	compareKeys(t, scfg, got, ref, lcfg.Keys)
}

// TestServeDurable runs the group-commit episode loop under the
// supervisor with no crash: every acknowledgment waits for a stable
// checkpoint, and the results still match the direct reference.
func TestServeDurable(t *testing.T) {
	scfg := testServeCfg()
	scfg.Durable = true
	lcfg := testLoadCfg(loadgen.Mix{Name: "update-uniform", ReadFrac: 0.5, Dist: "uniform"})
	lcfg.Ops = 600
	lcfg.Clients = 4

	cl, err := live.New(live.Config{
		Nodes: 2, Protocol: core.LH, RPCTimeout: 60 * time.Second,
		Net: transport.NewInprocNet(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := serve.NewStore(cl, scfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(st)
	type out struct {
		stats *live.Stats
		err   error
	}
	done := make(chan out, 1)
	go func() {
		stats, rerr := cl.RunSupervised(srv.NodeWorker, live.RecoverOptions{
			MaxRestarts: 2, CheckpointEvery: 1, Replicate: true, Seed: 1,
		})
		done <- out{stats, rerr}
	}()
	res, lerr := loadgen.Run(lcfg, func(int) (loadgen.Driver, error) { return srv, nil })
	srv.Shutdown()
	o := <-done
	if lerr != nil {
		t.Fatalf("load: %v", lerr)
	}
	if o.err != nil {
		t.Fatalf("cluster: %v", o.err)
	}
	if res.Violations != 0 {
		t.Fatalf("%d violations in durable mode", res.Violations)
	}
	if o.stats.Total.CheckpointsTaken == 0 {
		t.Error("durable run took no checkpoints")
	}
	ref := runServe(t, 1, nil, testServeCfg(), lcfg, nil)
	gotRun := &serveRun{cl: cl, res: res, stats: o.stats}
	compareKeys(t, scfg, gotRun, ref, lcfg.Keys)
}

// TestServeConfigValidation pins the config error paths.
func TestServeConfigValidation(t *testing.T) {
	cl, err := live.New(live.Config{Nodes: 1, Protocol: core.LH})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []serve.Config{
		{Keys: 1000},                        // not a power of two
		{Keys: 64, KeysPerPage: 3},          // page size not divisible
		{Keys: 64, KeysPerPage: 4096},       // < 8-byte slots
		{Keys: 64, Route: "everywhere"},     // unknown route
	} {
		if _, serr := serve.NewStore(cl, bad); serr == nil {
			t.Errorf("config %+v accepted, want error", bad)
		}
	}
	if _, serr := serve.NewStore(cl, serve.Config{}); serr != nil {
		t.Errorf("default config rejected: %v", serr)
	}
}
