package serve_test

import (
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live"
	"lrcdsm/internal/live/chaos"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/serve"
	"lrcdsm/internal/serve/loadgen"
)

// TestServeChaosSoak is the serving availability claim: a supervised
// durable cluster loses a serving node mid-load (killed by the chaos
// schedule, restarted by the supervisor) and no acknowledged write is
// lost — every client's read-your-writes history stays intact through
// the crash, and the final sweep re-reads every acked key. Group-commit
// acks make this possible: an operation is only acknowledged once a
// checkpoint at or after its episode is stable, so rollback can never
// undo an acked write.
func TestServeChaosSoak(t *testing.T) {
	const nodes = 3
	scfg := serve.Config{
		Keys: 1 << 9, KeysPerPage: 64, Shards: 12,
		Durable: true, QueueDepth: 256,
	}
	lcfg := loadgen.Config{
		Clients: 6, Workers: 6, Keys: 1 << 9, Ops: 900, Seed: 1234,
		Mix:       loadgen.Mix{Name: "update-uniform", ReadFrac: 0.5, Dist: "uniform"},
		Partition: true, Verify: true,
	}

	// Kill node 1 (never node 0, the manager) once real serving traffic
	// is flowing: Local counts the victim's own frames — barrier
	// arrivals, flushes, checkpoint traffic — so the kill lands inside
	// its episode loop.
	fcfg := chaos.Config{
		Seed: 42,
		Crashes: []chaos.Crash{
			{Node: 1, AtOp: 400, Local: true, RestartAfter: 5 * time.Millisecond},
		},
	}
	var cl *live.Cluster
	fcfg.OnCrash = func(n int, d time.Duration) { cl.Kill(n, d) }
	nw := chaos.WrapNet(transport.NewInprocNet(nodes), fcfg)

	cl, err := live.New(live.Config{
		Nodes: nodes, Protocol: core.LH, RPCTimeout: 60 * time.Second,
		Net: nw,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := serve.NewStore(cl, scfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(st)
	type out struct {
		stats *live.Stats
		err   error
	}
	done := make(chan out, 1)
	go func() {
		stats, rerr := cl.RunSupervised(srv.NodeWorker, live.RecoverOptions{
			MaxRestarts: 3, CheckpointEvery: 1, Replicate: true, Seed: 7,
		})
		done <- out{stats, rerr}
	}()
	res, lerr := loadgen.Run(lcfg, func(int) (loadgen.Driver, error) { return srv, nil })
	srv.Shutdown()
	o := <-done
	if lerr != nil {
		t.Fatalf("load: %v (faults %+v)", lerr, nw.Counters())
	}
	if o.err != nil {
		t.Fatalf("cluster: %v (faults %+v)", o.err, nw.Counters())
	}
	if res.Violations != 0 {
		t.Fatalf("%d acknowledged writes lost across the crash", res.Violations)
	}
	if c := nw.Counters().Crashes; c == 0 {
		t.Fatal("crash schedule fired no kills — the soak exercised nothing")
	}
	if o.stats.Restarts == 0 {
		t.Error("kill fired but the supervisor recorded no restarts")
	}
	if o.stats.Total.CheckpointsTaken == 0 {
		t.Error("durable soak took no checkpoints")
	}
	if res.Ops != lcfg.Ops {
		t.Errorf("ran %d ops, want %d", res.Ops, lcfg.Ops)
	}

	// The surviving image must equal a fault-free 1-node reference of
	// the same deterministic load.
	ref := runServe(t, 1, nil, serve.Config{
		Keys: scfg.Keys, KeysPerPage: scfg.KeysPerPage, Shards: scfg.Shards,
		QueueDepth: scfg.QueueDepth,
	}, lcfg, nil)
	compareKeys(t, scfg, &serveRun{cl: cl, res: res, stats: o.stats}, ref, lcfg.Keys)
}
