// TCP frontend: a minimal request/response wire for driving a serve
// cluster from another process. One connection carries one client's
// sequential operations — request [op:1][key:8][val:8], response
// [status:1][val:8] with an error message appended ([len:2][msg]) on
// failure — so a remote load generator opens one connection per client.
package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

const (
	reqLen  = 17
	respLen = 9

	opGet = 0
	opPut = 1

	statusOK  = 0
	statusErr = 1
)

// Frontend accepts TCP connections and forwards their operations to the
// server's dispatcher.
type Frontend struct {
	ln     net.Listener
	sv     *Server
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeTCP starts a frontend on addr (e.g. "127.0.0.1:0") for sv.
func ServeTCP(sv *Server, addr string) (*Frontend, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: frontend listen: %w", err)
	}
	f := &Frontend{ln: ln, sv: sv, conns: make(map[net.Conn]struct{})}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the frontend's listen address.
func (f *Frontend) Addr() string { return f.ln.Addr().String() }

// Close stops accepting, closes every connection and waits for the
// connection handlers to drain. Call before Server.Shutdown so no
// in-flight request gets stranded in a closing dispatcher.
func (f *Frontend) Close() {
	f.mu.Lock()
	f.closed = true
	conns := make([]net.Conn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	f.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	f.wg.Wait()
}

func (f *Frontend) acceptLoop() {
	defer f.wg.Done()
	for {
		c, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			c.Close()
			return
		}
		f.conns[c] = struct{}{}
		f.mu.Unlock()
		f.wg.Add(1)
		go f.handle(c)
	}
}

func (f *Frontend) handle(c net.Conn) {
	defer f.wg.Done()
	defer func() {
		f.mu.Lock()
		delete(f.conns, c)
		f.mu.Unlock()
		c.Close()
	}()
	var req [reqLen]byte
	for {
		if _, err := io.ReadFull(c, req[:]); err != nil {
			return // client gone or frontend closing
		}
		put := req[0] == opPut
		key := binary.LittleEndian.Uint64(req[1:9])
		val := binary.LittleEndian.Uint64(req[9:17])
		got, err := f.sv.Do(put, key, val)
		var resp []byte
		if err != nil {
			msg := err.Error()
			if len(msg) > 1<<15 {
				msg = msg[:1<<15]
			}
			resp = make([]byte, respLen+2+len(msg))
			resp[0] = statusErr
			binary.LittleEndian.PutUint16(resp[respLen:], uint16(len(msg)))
			copy(resp[respLen+2:], msg)
		} else {
			resp = make([]byte, respLen)
			resp[0] = statusOK
			binary.LittleEndian.PutUint64(resp[1:9], got)
		}
		if _, werr := c.Write(resp); werr != nil {
			return
		}
	}
}

// Client is one TCP connection to a frontend; it implements the load
// generator's Driver for one sequential client.
type Client struct {
	c   net.Conn
	req [reqLen]byte
}

// Dial connects a client to a frontend address.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial frontend: %w", err)
	}
	return &Client{c: c}, nil
}

// Do issues one operation over the connection and waits for its
// response.
func (cl *Client) Do(put bool, key, val uint64) (uint64, error) {
	cl.req[0] = opGet
	if put {
		cl.req[0] = opPut
	}
	binary.LittleEndian.PutUint64(cl.req[1:9], key)
	binary.LittleEndian.PutUint64(cl.req[9:17], val)
	if _, err := cl.c.Write(cl.req[:]); err != nil {
		return 0, fmt.Errorf("serve: client write: %w", err)
	}
	var resp [respLen]byte
	if _, err := io.ReadFull(cl.c, resp[:]); err != nil {
		return 0, fmt.Errorf("serve: client read: %w", err)
	}
	if resp[0] == statusErr {
		var ln [2]byte
		if _, err := io.ReadFull(cl.c, ln[:]); err != nil {
			return 0, fmt.Errorf("serve: client read error frame: %w", err)
		}
		msg := make([]byte, binary.LittleEndian.Uint16(ln[:]))
		if _, err := io.ReadFull(cl.c, msg); err != nil {
			return 0, fmt.Errorf("serve: client read error frame: %w", err)
		}
		return 0, fmt.Errorf("serve: remote: %s", msg)
	}
	return binary.LittleEndian.Uint64(resp[1:9]), nil
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }
