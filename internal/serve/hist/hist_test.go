package hist

import (
	"sync"
	"testing"
)

// TestBucketBoundaries pins the bucket math: every value must land in a
// bucket whose [lo, hi) range contains it, octave and sub-bucket edges
// must start fresh buckets exactly at their boundary value, and the
// under/overflow buckets must catch the extremes.
func TestBucketBoundaries(t *testing.T) {
	for _, ns := range []int64{0, 1, 127, 128, 129, 255, 256, 288, 1000,
		4095, 4096, 65536, 1e6, 1e9, (1 << 42) - 1, 1 << 42, 1 << 50} {
		i := bucketOf(ns)
		lo, hi := bucketBounds(i)
		if ns < lo || ns >= hi {
			t.Errorf("value %d landed in bucket %d = [%d, %d)", ns, i, lo, hi)
		}
	}
	// Exact edges: the first tracked value opens bucket 1 at lo=128; an
	// octave boundary (256) and a sub-bucket boundary within the octave
	// (256 + one sub-bucket width = 288) must be their buckets' lo.
	for _, edge := range []int64{128, 256, 288, 4096} {
		lo, _ := bucketBounds(bucketOf(edge))
		if lo != edge {
			t.Errorf("edge value %d: bucket lo = %d, want the edge itself", edge, lo)
		}
	}
	if bucketOf(127) != 0 {
		t.Errorf("127ns should underflow into bucket 0, got %d", bucketOf(127))
	}
	if got := bucketOf(1 << 50); got != nBuckets-1 {
		t.Errorf("2^50ns should overflow into bucket %d, got %d", nBuckets-1, got)
	}
	if bucketOf(-5) != 0 {
		t.Errorf("negative duration should clamp into bucket 0, got %d", bucketOf(-5))
	}
	// Buckets must tile the range with no gaps: each bucket's hi is the
	// next bucket's lo.
	for i := 0; i < nBuckets-1; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between bucket %d (hi %d) and %d (lo %d)", i, hi, i+1, lo)
		}
	}
}

// TestQuantileInterpolation checks the quantile estimator against a
// known uniform ramp: every quantile must be within one bucket's
// relative error (12.5% at 8 sub-buckets per octave) of the true value,
// estimates must be monotone in q, and the extremes must be exact.
func TestQuantileInterpolation(t *testing.T) {
	var h Hist
	const n = 1000
	for i := int64(1); i <= n; i++ {
		h.Record(i * 1000) // 1µs .. 1ms ramp
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.99} {
		want := q * n * 1000
		got := float64(h.Quantile(q))
		if rel := (got - want) / want; rel > 0.13 || rel < -0.13 {
			t.Errorf("Q(%.2f) = %.0f, want %.0f ± 13%%", q, got, want)
		}
	}
	prev := int64(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("Q(%.3f) = %d < previous %d; quantiles must be monotone", q, v, prev)
		}
		prev = v
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Errorf("Q(1) = %d, want the exact max %d", got, h.Max())
	}
	if got, want := h.Mean(), float64(n+1)*1000/2; got != want {
		t.Errorf("mean = %f, want exact %f (tracked outside the buckets)", got, want)
	}
}

// TestQuantileSingleBucket: with all mass in one bucket the interpolated
// estimate must stay within that bucket's bounds and Q(1) must be exact.
func TestQuantileSingleBucket(t *testing.T) {
	var h Hist
	h.Record(1000)
	h.Record(1000)
	lo, hi := bucketBounds(bucketOf(1000))
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); v < lo || v >= hi {
			t.Errorf("Q(%.1f) = %d escaped bucket [%d, %d)", q, v, lo, hi)
		}
	}
	if h.Quantile(1) != 1000 {
		t.Errorf("Q(1) = %d, want max-tightened 1000", h.Quantile(1))
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 {
		t.Errorf("empty histogram Q(0.5) = %d, want 0", empty.Quantile(0.5))
	}
}

// TestMergeAndBuckets: merging two histograms must be equivalent to
// recording everything into one, and Buckets must cover every count.
func TestMergeAndBuckets(t *testing.T) {
	var a, b, both Hist
	for i := int64(1); i <= 100; i++ {
		a.Record(i * 500)
		both.Record(i * 500)
	}
	for i := int64(1); i <= 50; i++ {
		b.Record(i * 90000)
		both.Record(i * 90000)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Max() != both.Max() || a.Mean() != both.Mean() {
		t.Fatalf("merge digest (%d, %d, %f) != direct (%d, %d, %f)",
			a.Count(), a.Max(), a.Mean(), both.Count(), both.Max(), both.Mean())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("merged Q(%.2f) = %d, direct = %d", q, a.Quantile(q), both.Quantile(q))
		}
	}
	var sum int64
	for _, bk := range a.Buckets() {
		if bk.Count <= 0 || bk.LoNs >= bk.HiNs {
			t.Errorf("malformed bucket %+v", bk)
		}
		sum += bk.Count
	}
	if sum != a.Count() {
		t.Errorf("bucket counts sum to %d, histogram count is %d", sum, a.Count())
	}
	s := a.Summarize()
	if s.Count != a.Count() || s.P50Ns != a.Quantile(0.5) || s.MaxNs != a.Max() {
		t.Errorf("summary disagrees with histogram: %+v", s)
	}
}

// TestConcurrentRecord drives Record from many goroutines (meaningful
// under -race) and checks no observation is lost.
func TestConcurrentRecord(t *testing.T) {
	var h Hist
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}
