// Package hist implements a fixed-bucket log-scale latency histogram in
// the HdrHistogram style: each power-of-two octave of nanoseconds is
// split into a fixed number of linear sub-buckets, so relative error is
// bounded (~12.5% at 8 sub-buckets) while the whole range from 128ns to
// ~73 minutes fits in a few hundred int64 counters. Recording is a
// single atomic add, so many goroutines share one histogram without
// coordination; reading methods (Quantile, Buckets, Summary) take a
// moment-in-time view and may run concurrently with recording.
package hist

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

const (
	// subBits splits every octave into 1<<subBits linear sub-buckets.
	subBits  = 3
	subCount = 1 << subBits

	// minExp / maxExp bound the tracked range: values below 2^minExp ns
	// land in the underflow bucket, values at or above 2^maxExp ns in
	// the overflow bucket.
	minExp = 7  // 128 ns
	maxExp = 42 // ~73 min

	nBuckets = (maxExp-minExp)*subCount + 2 // + underflow + overflow
)

// Hist is a concurrent fixed-bucket log-scale histogram of nanosecond
// durations. The zero value is ready to use.
type Hist struct {
	counts [nBuckets]int64
	count  int64
	sum    int64
	max    int64
}

// bucketOf maps a duration to its bucket index. Negative durations
// (clock weirdness) clamp into the underflow bucket.
func bucketOf(ns int64) int {
	if ns < 1<<minExp {
		return 0
	}
	exp := bits.Len64(uint64(ns)) - 1 // floor(log2 ns), >= minExp
	if exp >= maxExp {
		return nBuckets - 1
	}
	sub := int(ns>>(uint(exp)-subBits)) & (subCount - 1)
	return 1 + (exp-minExp)*subCount + sub
}

// bucketBounds returns the [lo, hi) nanosecond range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	switch {
	case i == 0:
		return 0, 1 << minExp
	case i >= nBuckets-1:
		return 1 << maxExp, 1 << 62
	}
	i--
	exp := minExp + i/subCount
	sub := i % subCount
	width := int64(1) << (uint(exp) - subBits)
	lo = int64(1)<<uint(exp) + int64(sub)*width
	return lo, lo + width
}

// Record adds one observation of ns nanoseconds.
func (h *Hist) Record(ns int64) {
	atomic.AddInt64(&h.counts[bucketOf(ns)], 1)
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, ns)
	for {
		old := atomic.LoadInt64(&h.max)
		if ns <= old || atomic.CompareAndSwapInt64(&h.max, old, ns) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return atomic.LoadInt64(&h.count) }

// Mean returns the exact mean of recorded observations (the sum is
// tracked separately from the buckets), or 0 with no observations.
func (h *Hist) Mean() float64 {
	n := atomic.LoadInt64(&h.count)
	if n == 0 {
		return 0
	}
	return float64(atomic.LoadInt64(&h.sum)) / float64(n)
}

// Max returns the exact maximum recorded observation.
func (h *Hist) Max() int64 { return atomic.LoadInt64(&h.max) }

// Merge folds other's observations into h.
func (h *Hist) Merge(other *Hist) {
	for i := range other.counts {
		if c := atomic.LoadInt64(&other.counts[i]); c != 0 {
			atomic.AddInt64(&h.counts[i], c)
		}
	}
	atomic.AddInt64(&h.count, atomic.LoadInt64(&other.count))
	atomic.AddInt64(&h.sum, atomic.LoadInt64(&other.sum))
	om := other.Max()
	for {
		old := atomic.LoadInt64(&h.max)
		if om <= old || atomic.CompareAndSwapInt64(&h.max, old, om) {
			return
		}
	}
}

// Quantile returns the value at quantile q in [0, 1], interpolated
// linearly within the holding bucket. Returns 0 with no observations.
func (h *Hist) Quantile(q float64) int64 {
	total := atomic.LoadInt64(&h.count)
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total-1) // 0-based fractional rank
	var cum int64
	for i := 0; i < nBuckets; i++ {
		c := atomic.LoadInt64(&h.counts[i])
		if c == 0 {
			continue
		}
		if float64(cum+c)-1 >= rank {
			lo, hi := bucketBounds(i)
			if mx := h.Max(); hi > mx && mx >= lo {
				hi = mx + 1 // tighten the top bucket to the observed max
			}
			// Interpolate across the bucket's occupied positions.
			frac := 0.0
			if c > 1 {
				frac = (rank - float64(cum)) / float64(c-1)
			}
			return lo + int64(frac*float64(hi-1-lo))
		}
		cum += c
	}
	return h.Max()
}

// Bucket is one non-empty histogram bucket for reporting: the value
// range [LoNs, HiNs) and its count.
type Bucket struct {
	LoNs  int64 `json:"lo_ns"`
	HiNs  int64 `json:"hi_ns"`
	Count int64 `json:"count"`
}

// Buckets returns the non-empty buckets in value order.
func (h *Hist) Buckets() []Bucket {
	var out []Bucket
	for i := 0; i < nBuckets; i++ {
		c := atomic.LoadInt64(&h.counts[i])
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		out = append(out, Bucket{LoNs: lo, HiNs: hi, Count: c})
	}
	return out
}

// Summary is the JSON-facing digest of a histogram: count, mean, tail
// quantiles, max, and the non-empty buckets.
type Summary struct {
	Count  int64    `json:"count"`
	MeanNs float64  `json:"mean_ns"`
	P50Ns  int64    `json:"p50_ns"`
	P90Ns  int64    `json:"p90_ns"`
	P99Ns  int64    `json:"p99_ns"`
	P999Ns int64    `json:"p999_ns"`
	MaxNs  int64    `json:"max_ns"`
	Bkts   []Bucket `json:"buckets,omitempty"`
}

// Summarize digests the histogram for reporting.
func (h *Hist) Summarize() *Summary {
	return &Summary{
		Count:  h.Count(),
		MeanNs: h.Mean(),
		P50Ns:  h.Quantile(0.50),
		P90Ns:  h.Quantile(0.90),
		P99Ns:  h.Quantile(0.99),
		P999Ns: h.Quantile(0.999),
		MaxNs:  h.Max(),
		Bkts:   h.Buckets(),
	}
}

// String renders the digest compactly for text reports.
func (s *Summary) String() string {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return fmt.Sprintf("n=%d mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms p999=%.3fms max=%.3fms",
		s.Count, s.MeanNs/1e6, ms(s.P50Ns), ms(s.P90Ns), ms(s.P99Ns), ms(s.P999Ns), ms(s.MaxNs))
}
