// Package serve layers a sharded get/put key-value API on the live LRC
// DSM engine: keys hash to slots packed into DSM pages (configurable
// keys-per-page), contiguous page runs form shards, and each shard is
// guarded by one lock from the distributed lock plane — so mutual
// exclusion, write-notice propagation and diff transfer give every
// operation release-consistent (linearizable per key) semantics with no
// serving-specific protocol code. Each serving node runs a pool of
// executor goroutines pulling requests from per-node dispatch queues; a
// shard is pinned to one executor per node, so a shard's lock is never
// acquired concurrently from two goroutines of the same node (the lock
// plane tracks one holder per node), while different nodes contend
// through the ordinary home/forward/handoff path.
//
// Two execution modes:
//
//   - Direct (default): operations are acknowledged as soon as the
//     shard lock is released. This is the throughput/latency
//     configuration benchmarked by `make bench-serve`.
//   - Durable: a single executor per node executes operations between
//     barrier episodes and acknowledges an operation only once the
//     barrier-aligned checkpoint covering it is stable on every node
//     (group commit). Under the PR 5 supervisor this makes acknowledged
//     writes survive node crashes: a rolled-back operation is still
//     pending, is re-executed after replay, and is acknowledged exactly
//     once.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/serve/hist"
)

// Config shapes the key space and the serving pools.
type Config struct {
	// Keys is the key-space size; must be a power of two (the slot
	// scrambler is a bijection over [0, Keys)).
	Keys uint64
	// KeysPerPage packs this many slots into each DSM page; the page
	// size must divide evenly into slots of >= 8 bytes.
	KeysPerPage int
	// Shards is the number of shard locks; capped at the page count so a
	// shard always owns whole pages (two shards never share a page).
	Shards int
	// Workers is the executor-goroutine pool size per node (direct mode;
	// durable mode always runs one executor on the node's worker).
	Workers int
	// Batch caps how many queued operations an executor drains and
	// groups by shard in one sweep.
	Batch int
	// QueueDepth is each dispatch queue's buffer.
	QueueDepth int
	// Route picks the serving node for an operation: "affinity" sends a
	// shard to the node owning its first page's home (lock and data home
	// mostly local), "any" round-robins (exercises forwarding and remote
	// diff pulls).
	Route string
	// Durable enables the group-commit episode loop; see the package
	// comment. CkptEvery must match the supervisor's CheckpointEvery.
	Durable   bool
	CkptEvery int64
}

func (c Config) withDefaults(pagesz int) (Config, error) {
	if c.Keys == 0 {
		c.Keys = 1 << 15
	}
	if c.Keys&(c.Keys-1) != 0 {
		return c, fmt.Errorf("serve: Keys = %d, want a power of two", c.Keys)
	}
	if c.KeysPerPage == 0 {
		c.KeysPerPage = pagesz / 64
	}
	if c.KeysPerPage < 1 || pagesz%c.KeysPerPage != 0 || pagesz/c.KeysPerPage < 8 {
		return c, fmt.Errorf("serve: KeysPerPage = %d does not pack page size %d into >= 8-byte slots",
			c.KeysPerPage, pagesz)
	}
	npages := (c.Keys + uint64(c.KeysPerPage) - 1) / uint64(c.KeysPerPage)
	if c.Shards == 0 {
		c.Shards = 64
	}
	if uint64(c.Shards) > npages {
		c.Shards = int(npages)
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Durable {
		c.Workers = 1
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.Route == "" {
		c.Route = "affinity"
	}
	if c.Route != "affinity" && c.Route != "any" {
		return c, fmt.Errorf("serve: Route = %q, want affinity or any", c.Route)
	}
	if c.CkptEvery <= 0 {
		c.CkptEvery = 1
	}
	return c, nil
}

// Store is the shared-memory layout of the key space: the value array,
// the shard locks, the barrier (durable mode) and the stop word. Build
// it with NewStore during cluster configuration, before Run.
type Store struct {
	cfg    Config
	nodes  int
	pagesz int
	stride uint64 // bytes per slot
	kpp    uint64
	npages uint64
	base   core.Addr
	stop   core.Addr // durable-mode shutdown word, its own page
	lock0  int       // first of cfg.Shards consecutive shard locks
	bar    int       // durable-mode episode barrier
}

// NewStore allocates the serving layout in m's shared memory. The page
// size is taken from m when it exposes one (the live cluster does).
func NewStore(m core.Mem, cfg Config) (*Store, error) {
	pagesz := core.DefaultPageSize
	if ps, ok := m.(interface{ PageSize() int }); ok {
		pagesz = ps.PageSize()
	}
	cfg, err := cfg.withDefaults(pagesz)
	if err != nil {
		return nil, err
	}
	st := &Store{
		cfg:    cfg,
		nodes:  m.Procs(),
		pagesz: pagesz,
		kpp:    uint64(cfg.KeysPerPage),
		stride: uint64(pagesz / cfg.KeysPerPage),
	}
	st.npages = (cfg.Keys + st.kpp - 1) / st.kpp
	st.base = m.AllocPage(int(st.npages) * pagesz)
	st.stop = m.AllocPage(8)
	st.lock0 = m.NewLocks(cfg.Shards)
	st.bar = m.NewBarrier()
	return st, nil
}

// slotOf scrambles a key into its slot: multiplication by an odd
// constant is a bijection mod the power-of-two key space, so distinct
// keys never collide while neighboring keys scatter across pages.
func (st *Store) slotOf(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) & (st.cfg.Keys - 1)
}

// pageOf returns the page index (within the value array) holding slot.
func (st *Store) pageOf(slot uint64) uint64 { return slot / st.kpp }

// addrOf returns the slot's shared-memory address.
func (st *Store) addrOf(slot uint64) core.Addr {
	return st.base + core.Addr(st.pageOf(slot)*uint64(st.pagesz)+(slot%st.kpp)*st.stride)
}

// shardOf block-maps pages onto shards, so a shard owns a contiguous
// page run and two shards never share a page (no cross-shard false
// sharing through twins/diffs).
func (st *Store) shardOf(pg uint64) int {
	return int(pg * uint64(st.cfg.Shards) / st.npages)
}

// shardNode is the affinity route for a shard: the home node of its
// first page. The value array is one allocation, and the cluster
// block-assigns page homes within an allocation with the same
// `index*nodes/span` map, so this lands the shard where its lock home
// and (most of) its page homes already are.
func (st *Store) shardNode(shard int) int {
	firstPg := (uint64(shard)*st.npages + uint64(st.cfg.Shards) - 1) / uint64(st.cfg.Shards)
	return int(firstPg * uint64(st.nodes) / st.npages)
}

// lockOf returns the DSM lock id guarding shard.
func (st *Store) lockOf(shard int) int { return st.lock0 + shard }

// KeyAddr returns the shared-memory address holding key's value —
// for post-run verification against a reference cluster via Peek.
func (st *Store) KeyAddr(key uint64) core.Addr { return st.addrOf(st.slotOf(key)) }

// Pages returns the value array's page count.
func (st *Store) Pages() int { return int(st.npages) }

// Resolved returns the configuration after defaulting, so callers can
// report the shard count, slot density and routing actually in effect.
func (st *Store) Resolved() Config { return st.cfg }

// op is one queued operation.
type op struct {
	put     bool
	key     uint64
	val     uint64
	shard   int
	episode int64  // durable mode: execution episode, for the ack floor
	ackVal  uint64 // durable mode: result of the (latest) execution
	resp    chan opResult
}

type opResult struct {
	val uint64
	err error
}

// serveCounter is the optional per-node stats hook (implemented by the
// live node).
type serveCounter interface {
	CountServe(gets, puts, lockWaitNs int64)
}

// replayer is the optional rollback-replay probe (implemented by the
// live node); during replay the lock plane no-ops and reads are
// scratch, so the durable loop must not execute client operations.
type replayer interface{ Replaying() bool }

// laner is the optional per-goroutine token-lane hook (implemented by
// the live node): each executor goroutine acquires locks through its
// own lane so the lock plane's per-(origin, lane) duplicate windows
// keep their one-outstanding, strictly-increasing token invariant.
type laner interface {
	LaneWorker(lane int) core.Worker
}

// Server dispatches operations to per-node executor pools over a
// configured Store. One Server serves one cluster run; Do may be called
// from any goroutine and implements the load generator's Driver.
type Server struct {
	st     *Store
	cfg    Config
	queues [][]chan *op // [node][executor]
	// relMu serializes lock releases per node: an Unlock publishes a
	// release VT covering every interval the node closed so far, so a
	// concurrent executor's in-flight (unacknowledged) home flush could
	// otherwise be covered by another executor's release and read stale
	// at the next acquirer. Acquires are not serialized.
	relMu []sync.Mutex
	hist  hist.Hist
	rr    atomic.Uint64 // round-robin cursor for Route == "any"

	stopping atomic.Bool
	stopCh   chan struct{} // closed by Shutdown: executors drain and exit
	failedCh chan struct{} // closed on executor failure: Do unblocks with an error
	failOnce sync.Once
	stopOnce sync.Once

	errMu    sync.Mutex
	firstErr error
	panicVal any

	// pending, per node, holds durable-mode operations executed but not
	// yet covered by a stable checkpoint. Owned by the node's worker
	// goroutine; supervisor restarts serialize incarnations.
	pending [][]*op
}

// NewServer builds the dispatcher for a store.
func NewServer(st *Store) *Server {
	s := &Server{
		st:       st,
		cfg:      st.cfg,
		queues:   make([][]chan *op, st.nodes),
		relMu:    make([]sync.Mutex, st.nodes),
		pending:  make([][]*op, st.nodes),
		stopCh:   make(chan struct{}),
		failedCh: make(chan struct{}),
	}
	for n := range s.queues {
		s.queues[n] = make([]chan *op, st.cfg.Workers)
		for e := range s.queues[n] {
			s.queues[n][e] = make(chan *op, st.cfg.QueueDepth)
		}
	}
	return s
}

// Store returns the server's shared-memory layout.
func (s *Server) Store() *Store { return s.st }

// HistSummary digests the server-side latency histogram (enqueue to
// acknowledgment, as observed at the dispatcher).
func (s *Server) HistSummary() *hist.Summary { return s.hist.Summarize() }

// executorOf pins a shard to one executor per node.
func (s *Server) executorOf(shard int) int { return shard % s.cfg.Workers }

// nodeOf routes a shard to its serving node.
func (s *Server) nodeOf(shard int) int {
	if s.cfg.Route == "any" {
		return int(s.rr.Add(1) % uint64(s.st.nodes))
	}
	return s.st.shardNode(shard)
}

// Do executes one get (put=false, val ignored) or put and returns the
// read value (gets) or the stored value (puts). It blocks until the
// operation is acknowledged — in durable mode, until its checkpoint is
// stable cluster-wide.
func (s *Server) Do(put bool, key, val uint64) (uint64, error) {
	if s.stopping.Load() {
		return 0, fmt.Errorf("serve: server is shut down")
	}
	slot := s.st.slotOf(key)
	shard := s.st.shardOf(s.st.pageOf(slot))
	o := &op{put: put, key: key, val: val, shard: shard, resp: make(chan opResult, 1)}
	start := time.Now()
	select {
	case s.queues[s.nodeOf(shard)][s.executorOf(shard)] <- o:
	case <-s.failedCh:
		return 0, s.err()
	case <-s.stopCh:
		return 0, fmt.Errorf("serve: server is shut down")
	}
	select {
	case r := <-o.resp:
		s.hist.Record(time.Since(start).Nanoseconds())
		return r.val, r.err
	case <-s.failedCh:
		return 0, s.err()
	}
}

// Shutdown stops the server: new operations are rejected, executors
// drain their queues and the NodeWorkers return (letting the cluster
// run complete). Call after the load completes.
func (s *Server) Shutdown() {
	s.stopping.Store(true)
	s.stopOnce.Do(func() { close(s.stopCh) })
}

func (s *Server) err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.firstErr != nil {
		return s.firstErr
	}
	return fmt.Errorf("serve: server failed")
}

// fail records an executor failure and unblocks every caller.
func (s *Server) fail(panicVal any, err error) {
	s.errMu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
		s.panicVal = panicVal
	}
	s.errMu.Unlock()
	s.failOnce.Do(func() { close(s.failedCh) })
}

// NodeWorker is the cluster worker function: run one serving node until
// Shutdown. Direct mode spawns the executor pool and waits; durable
// mode runs the group-commit episode loop on the worker goroutine
// itself (the supervisor re-invokes it per incarnation, and the loop is
// re-entrant: un-acknowledged operations survive in s.pending and are
// re-executed after replay).
func (s *Server) NodeWorker(w core.Worker) {
	if s.cfg.Durable {
		s.runDurable(w)
		return
	}
	node := w.ID()
	var wg sync.WaitGroup
	for e := 0; e < s.cfg.Workers; e++ {
		ew := w
		if ln, ok := w.(laner); ok {
			ew = ln.LaneWorker(e + 1) // lane 0 is the node's own worker goroutine
		}
		wg.Add(1)
		go func(e int, ew core.Worker) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					s.fail(r, fmt.Errorf("serve: node %d executor %d: %v", node, e, r))
				}
			}()
			s.execLoop(ew, node, e)
		}(e, ew)
	}
	wg.Wait()
	// An engine panic (abort, peer-down) happened on an executor
	// goroutine; re-raise it here so the cluster's worker recovery sees
	// the structured error, not a wedged run.
	s.errMu.Lock()
	pv := s.panicVal
	s.errMu.Unlock()
	if pv != nil {
		panic(pv)
	}
}

// execLoop drains one executor queue until shutdown (direct mode).
func (s *Server) execLoop(w core.Worker, node, e int) {
	q := s.queues[node][e]
	for {
		var batch []*op
		select {
		case o := <-q:
			batch = append(batch, o)
		case <-s.stopCh:
			// Drain what's already queued, then exit.
			for {
				select {
				case o := <-q:
					batch = append(batch, o)
				default:
					s.execBatch(w, node, batch)
					return
				}
			}
		case <-s.failedCh:
			return
		}
		for len(batch) < s.cfg.Batch {
			select {
			case o := <-q:
				batch = append(batch, o)
			default:
				goto run
			}
		}
	run:
		s.execBatch(w, node, batch)
	}
}

// execBatch groups a drained batch by shard (stable, preserving arrival
// order within a shard) and executes each shard's run under one
// lock/unlock pair.
func (s *Server) execBatch(w core.Worker, node int, batch []*op) {
	if len(batch) == 0 {
		return
	}
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].shard < batch[j].shard })
	var gets, puts, lockWait int64
	for i := 0; i < len(batch); {
		j := i
		for j < len(batch) && batch[j].shard == batch[i].shard {
			j++
		}
		lk := s.st.lockOf(batch[i].shard)
		t0 := time.Now()
		w.Lock(lk)
		lockWait += time.Since(t0).Nanoseconds()
		for _, o := range batch[i:j] {
			r := s.execOne(w, o)
			o.resp <- r
			if o.put {
				puts++
			} else {
				gets++
			}
		}
		s.relMu[node].Lock()
		w.Unlock(lk)
		s.relMu[node].Unlock()
		i = j
	}
	if sc, ok := w.(serveCounter); ok {
		sc.CountServe(gets, puts, lockWait)
	}
}

// execOne performs the shared-memory access for one operation; the
// caller holds the shard lock.
func (s *Server) execOne(w core.Worker, o *op) opResult {
	addr := s.st.addrOf(s.st.slotOf(o.key))
	if o.put {
		w.WriteU64(addr, o.val)
		return opResult{val: o.val}
	}
	return opResult{val: w.ReadU64(addr)}
}

// stableFloor is the highest exec tag (the local barrier count at
// execution time) whose effects a cluster-wide stable checkpoint is
// guaranteed to cover after this node departs its bars'th barrier. An
// op tagged E runs in engine episode E+1 and is first covered by the
// flagged crossing ceil((E+1)/CkptEvery)*CkptEvery. Each node captures
// that checkpoint AFTER departing the flagged barrier and confirms it
// with a blocking ckpt-done RPC before arriving at the next one — so
// departing crossing `bars` only proves every node confirmed flagged
// crossings <= bars-1. Acking against the flagged crossing itself (off
// by one) loses acknowledged writes when a crash rolls back to the
// previous cut.
func (s *Server) stableFloor(bars int64) int64 {
	f := bars - 1
	f -= f % s.cfg.CkptEvery // newest flagged crossing everyone confirmed
	return f - 1             // tags E <= f-1 have cover(E) <= f
}

// runDurable is the group-commit episode loop (durable mode): execute a
// quantum of operations, cross the barrier (which captures and
// stabilizes the checkpoint), then acknowledge every operation whose
// episode the stable checkpoint covers. After a crash the supervisor
// rolls every node back to the stable episode and re-invokes this
// worker: the replay loop crosses suppressed barriers until the engine
// is live again, then every still-pending (never-acknowledged)
// operation is re-executed — a put rewrites the same value, a get
// re-reads — and acknowledged exactly once.
func (s *Server) runDurable(w core.Worker) {
	node := w.ID()
	q := s.queues[node][0]
	var bars int64
	if rp, ok := w.(replayer); ok {
		for rp.Replaying() {
			w.Barrier(s.st.bar)
			bars++
		}
	}
	redo := s.pending[node] // un-acked survivors from the previous incarnation
	s.pending[node] = nil
	for {
		// Quantum: re-executions first (in original order), then fresh
		// operations up to the batch cap. Waiting briefly for the first
		// fresh op keeps idle nodes from spinning barriers; busy nodes
		// just wait for them at the barrier.
		batch := redo
		redo = nil
		if len(batch) == 0 && !s.stopping.Load() {
			select {
			case o := <-q:
				batch = append(batch, o)
			case <-time.After(200 * time.Microsecond):
			case <-s.failedCh:
				return
			}
		}
		for len(batch) < s.cfg.Batch {
			select {
			case o := <-q:
				batch = append(batch, o)
			default:
				goto exec
			}
		}
	exec:
		// Pend the whole batch before touching the DSM: a rollback
		// interrupt arrives as a panic out of a node operation, and
		// anything already dequeued must survive in pending to be
		// re-executed next incarnation, never lost.
		for _, o := range batch {
			o.episode = bars
		}
		s.pending[node] = append(s.pending[node], batch...)
		var gets, puts, lockWait int64
		for _, o := range batch {
			lk := s.st.lockOf(o.shard)
			t0 := time.Now()
			w.Lock(lk)
			lockWait += time.Since(t0).Nanoseconds()
			o.exec(w, s)
			s.relMu[node].Lock()
			w.Unlock(lk)
			s.relMu[node].Unlock()
			if o.put {
				puts++
			} else {
				gets++
			}
		}
		if sc, ok := w.(serveCounter); ok && gets+puts > 0 {
			sc.CountServe(gets, puts, lockWait)
		}
		if node == 0 && s.stopping.Load() && w.ReadU64(s.st.stop) == 0 {
			// All clients are done (Shutdown follows the load), so the
			// queues and pendings are quiescing; raise the cluster-wide
			// stop flag. The barrier propagates it to every node.
			w.WriteU64(s.st.stop, 1)
		}
		w.Barrier(s.st.bar)
		bars++
		// Acknowledge everything the now-stable checkpoint covers.
		floor := s.stableFloor(bars)
		keep := s.pending[node][:0]
		for _, o := range s.pending[node] {
			if o.episode <= floor {
				o.resp <- opResult{val: o.ackVal}
			} else {
				keep = append(keep, o)
			}
		}
		s.pending[node] = keep
		if w.ReadU64(s.st.stop) == 1 && len(s.pending[node]) == 0 && len(q) == 0 {
			// Every node reads the stop word at the same episode, and
			// Shutdown precedes it, so queues and pendings are empty
			// cluster-wide: all nodes exit after the same barrier.
			return
		}
	}
}

// exec performs o's access and records the result for the deferred ack
// (durable mode re-executes, so the result field is overwritten, and
// the final execution's value is what gets acknowledged).
func (o *op) exec(w core.Worker, s *Server) {
	addr := s.st.addrOf(s.st.slotOf(o.key))
	if o.put {
		w.WriteU64(addr, o.val)
		o.ackVal = o.val
		return
	}
	o.ackVal = w.ReadU64(addr)
}
