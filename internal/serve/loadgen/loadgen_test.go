package loadgen

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync"
	"testing"
)

// encodeReqs serializes a request sequence to bytes, so determinism
// tests can assert byte-identical streams rather than DeepEqual.
func encodeReqs(reqs []Req) []byte {
	var buf bytes.Buffer
	for _, rq := range reqs {
		op := byte(0)
		if rq.Put {
			op = 1
		}
		buf.WriteByte(op)
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], rq.Key)
		buf.Write(w[:])
		binary.LittleEndian.PutUint64(w[:], rq.Val)
		buf.Write(w[:])
		binary.LittleEndian.PutUint64(w[:], uint64(rq.At))
		buf.Write(w[:])
	}
	return buf.Bytes()
}

// recDriver records the requests it receives, per client.
type recDriver struct {
	mu   *sync.Mutex
	seqs map[int][]Req
	c    int
}

func (d *recDriver) Do(put bool, key, val uint64) (uint64, error) {
	d.mu.Lock()
	d.seqs[d.c] = append(d.seqs[d.c], Req{Put: put, Key: key, Val: val})
	d.mu.Unlock()
	return val, nil
}

// TestDeterminismAcrossWorkers: the same seed + mix must yield
// byte-identical per-client request sequences no matter how many worker
// goroutines multiplex the clients, and those are exactly the sequences
// a run actually issues.
func TestDeterminismAcrossWorkers(t *testing.T) {
	for _, mix := range []Mix{
		{Name: "read-heavy-uniform", ReadFrac: 0.95, Dist: "uniform"},
		{Name: "update-zipf", ReadFrac: 0.5, Dist: "zipfian", Theta: 0.99},
	} {
		cfg := Config{Clients: 7, Keys: 1 << 10, Ops: 700, Seed: 42, Mix: mix}
		want := make(map[int][]byte)
		for c := 0; c < cfg.Clients; c++ {
			want[c] = encodeReqs(ClientReqs(cfg, c))
			if len(want[c]) == 0 {
				t.Fatalf("%s: client %d generated no requests", mix.Name, c)
			}
		}
		for _, workers := range []int{1, 3, 8} {
			cfg.Workers = workers
			mu := &sync.Mutex{}
			seqs := make(map[int][]Req)
			res, err := Run(cfg, func(c int) (Driver, error) {
				return &recDriver{mu: mu, seqs: seqs, c: c}, nil
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", mix.Name, workers, err)
			}
			if res.Ops != cfg.Ops {
				t.Fatalf("%s workers=%d: ran %d ops, want %d", mix.Name, workers, res.Ops, cfg.Ops)
			}
			for c := 0; c < cfg.Clients; c++ {
				// Issued sequences have no At; regenerate to compare apples
				// to apples by re-encoding without schedule offsets.
				gen := ClientReqs(cfg, c)
				if len(gen) != len(seqs[c]) {
					t.Fatalf("%s workers=%d client %d: issued %d ops, generated %d",
						mix.Name, workers, c, len(seqs[c]), len(gen))
				}
				for i, rq := range seqs[c] {
					if rq.Put != gen[i].Put || rq.Key != gen[i].Key || rq.Val != gen[i].Val {
						t.Fatalf("%s workers=%d client %d op %d: issued %+v, generated %+v",
							mix.Name, workers, c, i, rq, gen[i])
					}
				}
				if got := encodeReqs(gen); !bytes.Equal(got, want[c]) {
					t.Fatalf("%s workers=%d client %d: regenerated sequence differs from reference",
						mix.Name, workers, c)
				}
			}
		}
	}
}

// TestZipfianSkew: with theta=0.99 the most popular ranks must dominate
// (YCSB-style skew), every draw must stay in range, and a different
// theta must change the sequence.
func TestZipfianSkew(t *testing.T) {
	const n, draws = 1024, 200000
	z := newZipf(n, 0.99)
	rng := &splitmix64{s: 12345}
	counts := make([]int64, n)
	for i := 0; i < draws; i++ {
		r := z.next(rng)
		if r >= n {
			t.Fatalf("draw %d out of range [0, %d)", r, n)
		}
		counts[r]++
	}
	// Under zipf(0.99, 1024), P(rank 0) = 1/zeta ≈ 13%; the top 16 ranks
	// carry ≈ 45% of the mass. Allow generous slack.
	if frac := float64(counts[0]) / draws; frac < 0.08 {
		t.Errorf("rank 0 got %.1f%% of draws, want the zipf head (>8%%)", frac*100)
	}
	var top16 int64
	for i := 0; i < 16; i++ {
		top16 += counts[i]
	}
	if frac := float64(top16) / draws; frac < 0.30 {
		t.Errorf("top 16 ranks got %.1f%% of draws, want > 30%%", frac*100)
	}
	// Sanity: ranks must be roughly monotone decreasing in popularity
	// head vs tail.
	var tail int64
	for i := n / 2; i < n; i++ {
		tail += counts[i]
	}
	if tail >= top16 {
		t.Errorf("bottom half (%d draws) outweighs top 16 (%d); not zipfian", tail, top16)
	}
}

// TestZipfianZetaCache: repeated generators for the same (n, theta) must
// agree (the memoized zeta must not drift), and zeta must match a direct
// summation.
func TestZipfianZetaCache(t *testing.T) {
	want := 0.0
	for i := 1; i <= 512; i++ {
		want += 1 / math.Pow(float64(i), 0.75)
	}
	if got := zeta(512, 0.75); math.Abs(got-want) > 1e-9 {
		t.Fatalf("zeta(512, 0.75) = %v, want %v", got, want)
	}
	if got := zeta(512, 0.75); math.Abs(got-want) > 1e-9 {
		t.Fatalf("cached zeta(512, 0.75) = %v, want %v", got, want)
	}
	a, b := newZipf(512, 0.75), newZipf(512, 0.75)
	ra, rb := &splitmix64{s: 7}, &splitmix64{s: 7}
	for i := 0; i < 1000; i++ {
		if x, y := a.next(ra), b.next(rb); x != y {
			t.Fatalf("draw %d: generators for identical params disagree (%d vs %d)", i, x, y)
		}
	}
}

// TestPartitionRanges: partition mode must tile the key space exactly
// once across clients, and every generated key must stay in its
// client's slice.
func TestPartitionRanges(t *testing.T) {
	cfg := Config{Clients: 5, Keys: 64, Ops: 500, Seed: 9,
		Mix: Mix{ReadFrac: 0.5, Dist: "zipfian", Theta: 0.99}, Partition: true}
	var covered uint64
	for c := 0; c < cfg.Clients; c++ {
		lo, span := clientRange(cfg, c)
		covered += span
		for _, rq := range ClientReqs(cfg, c) {
			if rq.Key < lo || rq.Key >= lo+span {
				t.Fatalf("client %d key %d outside its range [%d, %d)", c, rq.Key, lo, lo+span)
			}
		}
	}
	if covered != cfg.Keys {
		t.Fatalf("client ranges cover %d keys, want %d", covered, cfg.Keys)
	}
}

// TestOpSplit: cfg.Ops must split across clients with no loss.
func TestOpSplit(t *testing.T) {
	cfg := Config{Clients: 7, Keys: 8, Ops: 1000, Seed: 1, Mix: Mix{ReadFrac: 1, Dist: "uniform"}}
	var total int64
	for c := 0; c < cfg.Clients; c++ {
		n := clientOps(cfg, c)
		total += n
		if got := len(ClientReqs(cfg, c)); int64(got) != n {
			t.Fatalf("client %d generated %d reqs, clientOps says %d", c, got, n)
		}
	}
	if total != cfg.Ops {
		t.Fatalf("ops split to %d, want %d", total, cfg.Ops)
	}
}

// memDriver is a trivial in-memory KV store shared by all clients.
type memDriver struct {
	mu *sync.Mutex
	m  map[uint64]uint64
}

func (d *memDriver) Do(put bool, key, val uint64) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if put {
		d.m[key] = val
		return val, nil
	}
	return d.m[key], nil
}

// TestVerifyAgainstMemoryStore: a correct store must pass the
// read-your-writes verification with zero violations, open loop and
// closed loop alike.
func TestVerifyAgainstMemoryStore(t *testing.T) {
	for _, rate := range []float64{0, 200000} {
		cfg := Config{Clients: 4, Workers: 2, Keys: 256, Ops: 2000, Seed: 3, Rate: rate,
			Mix: Mix{Name: "update", ReadFrac: 0.5, Dist: "uniform"}, Partition: true, Verify: true}
		store := &memDriver{mu: &sync.Mutex{}, m: make(map[uint64]uint64)}
		res, err := Run(cfg, func(int) (Driver, error) { return store, nil })
		if err != nil {
			t.Fatalf("rate=%v: %v", rate, err)
		}
		if res.Violations != 0 {
			t.Fatalf("rate=%v: %d read-your-writes violations against a correct store", rate, res.Violations)
		}
		if res.VerifiedKeys == 0 {
			t.Fatalf("rate=%v: verify sweep checked no keys", rate)
		}
		if res.Ops != cfg.Ops || res.Gets+res.Puts != res.Ops {
			t.Fatalf("rate=%v: ops=%d gets=%d puts=%d, want %d total", rate, res.Ops, res.Gets, res.Puts, cfg.Ops)
		}
		if res.Latency == nil || res.Latency.Count != cfg.Ops {
			t.Fatalf("rate=%v: latency histogram missing or short: %+v", rate, res.Latency)
		}
	}
	// Verify without Partition must be rejected.
	bad := Config{Clients: 2, Keys: 8, Ops: 10, Verify: true, Mix: Mix{Dist: "uniform"}}
	if _, err := Run(bad, func(int) (Driver, error) { return &memDriver{mu: &sync.Mutex{}, m: map[uint64]uint64{}}, nil }); err == nil {
		t.Fatal("Verify without Partition should be rejected")
	}
}

// lossyDriver drops every put's effect after the first 100 ops.
type lossyDriver struct {
	mu  *sync.Mutex
	m   map[uint64]uint64
	ops int
}

func (d *lossyDriver) Do(put bool, key, val uint64) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ops++
	if put {
		if d.ops <= 100 {
			d.m[key] = val
		}
		return val, nil // acknowledged but (beyond 100 ops) silently dropped
	}
	return d.m[key], nil
}

// TestVerifyCatchesLostWrites: a store that acknowledges writes and then
// loses them must produce violations.
func TestVerifyCatchesLostWrites(t *testing.T) {
	cfg := Config{Clients: 2, Keys: 64, Ops: 1000, Seed: 5,
		Mix: Mix{ReadFrac: 0.3, Dist: "uniform"}, Partition: true, Verify: true}
	store := &lossyDriver{mu: &sync.Mutex{}, m: make(map[uint64]uint64)}
	res, err := Run(cfg, func(int) (Driver, error) { return store, nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("lossy store produced zero violations; verification is toothless")
	}
}

// TestOpenLoopSchedule: open-loop sequences must carry strictly
// increasing scheduled times with a mean gap near the configured rate.
func TestOpenLoopSchedule(t *testing.T) {
	cfg := Config{Clients: 2, Keys: 16, Ops: 4000, Seed: 11, Rate: 100000,
		Mix: Mix{ReadFrac: 1, Dist: "uniform"}}
	for c := 0; c < cfg.Clients; c++ {
		reqs := ClientReqs(cfg, c)
		prev := int64(-1)
		for i, rq := range reqs {
			if int64(rq.At) <= prev {
				t.Fatalf("client %d op %d: At %v not increasing", c, i, rq.At)
			}
			prev = int64(rq.At)
		}
		// Mean inter-arrival should approximate Clients/Rate = 20µs.
		mean := float64(reqs[len(reqs)-1].At) / float64(len(reqs))
		if mean < 10e3 || mean > 40e3 {
			t.Errorf("client %d mean gap %.0fns, want ≈20000ns", c, mean)
		}
	}
}
