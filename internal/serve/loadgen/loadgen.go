// Package loadgen drives a get/put key-value service with a seeded,
// deterministic YCSB-style workload: every client's request sequence —
// operation kinds, keys (uniform or zipfian), values, and open-loop
// issue schedule — is a pure function of (config, client id), so the
// same seed and mix produce byte-identical request streams no matter
// how many worker goroutines multiplex the clients. Latency is recorded
// per operation into a fixed-bucket log-scale histogram; in open-loop
// mode (a target offered rate) latency is measured from the operation's
// scheduled start, so queueing delay from a saturated server is charged
// to the operation (coordinated-omission correction) instead of
// silently stretching the schedule.
package loadgen

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lrcdsm/internal/serve/hist"
)

// Mix names a workload mix: the read fraction and the key-choice
// distribution ("uniform" or "zipfian" with parameter Theta).
type Mix struct {
	Name     string  `json:"name"`
	ReadFrac float64 `json:"read_frac"`
	Dist     string  `json:"dist"`
	Theta    float64 `json:"theta,omitempty"`
}

// Config parameterizes one load-generation run.
type Config struct {
	// Clients is the number of logical clients, each issuing its
	// requests sequentially (at most one outstanding operation).
	Clients int
	// Workers is the number of goroutines multiplexing the clients
	// (default: one per client, capped at 64). The per-client request
	// sequences do not depend on it.
	Workers int
	// Keys is the key-space size; keys are in [0, Keys).
	Keys uint64
	// Ops is the total operation count, split evenly across clients.
	Ops int64
	// Rate is the target offered rate in ops/sec across all clients;
	// 0 or negative runs closed-loop (each client issues back-to-back).
	Rate float64
	// Seed drives every random choice.
	Seed int64
	// Mix selects the read fraction and key distribution.
	Mix Mix
	// Partition confines client c to its own slice of the key space, so
	// the final value of every key is deterministic (required by Verify
	// and by cross-cluster reference checks).
	Partition bool
	// Verify tracks every acknowledged put and checks read-your-writes
	// per client during the run, plus a final sweep reading back every
	// written key. Requires Partition.
	Verify bool
}

// Req is one generated request.
type Req struct {
	Put bool
	Key uint64
	Val uint64
	// At is the scheduled issue offset from the run start (open loop
	// only; zero in closed-loop mode).
	At time.Duration
}

// ValOf encodes (client, seq) into a nonzero put value, so a read can
// be traced back to the exact write that produced it.
func ValOf(client int, seq int64) uint64 {
	return uint64(client+1)<<40 | uint64(seq+1)
}

// splitmix64 is the per-client deterministic random stream.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (r *splitmix64) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// ---- zipfian ----

// zipfGen draws ranks in [0, n) with P(rank) ∝ 1/(rank+1)^theta, using
// the standard YCSB/Gray rejection-free formula. The zeta constants are
// memoized per (n, theta) — computing zeta(n) is O(n).
type zipfGen struct {
	n                 uint64
	theta             float64
	alpha, zetan, eta float64
	half              float64 // 0.5^theta
}

var (
	zetaMu    sync.Mutex
	zetaCache = map[[2]uint64]float64{} // {n, bits(theta)} -> zeta(n, theta)
)

func zeta(n uint64, theta float64) float64 {
	key := [2]uint64{n, math.Float64bits(theta)}
	zetaMu.Lock()
	z, ok := zetaCache[key]
	zetaMu.Unlock()
	if ok {
		return z
	}
	for i := uint64(1); i <= n; i++ {
		z += 1 / math.Pow(float64(i), theta)
	}
	zetaMu.Lock()
	zetaCache[key] = z
	zetaMu.Unlock()
	return z
}

func newZipf(n uint64, theta float64) *zipfGen {
	z := &zipfGen{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.half = math.Pow(0.5, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func (z *zipfGen) next(r *splitmix64) uint64 {
	u := r.float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	rank := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// ---- sequence generation ----

// clientRange returns client c's key range [lo, lo+span): the whole key
// space, or its private slice under Partition.
func clientRange(cfg Config, c int) (lo, span uint64) {
	if !cfg.Partition {
		return 0, cfg.Keys
	}
	n := uint64(cfg.Clients)
	lo = uint64(c) * cfg.Keys / n
	return lo, uint64(c+1)*cfg.Keys/n - lo
}

// clientOps returns how many of cfg.Ops client c issues.
func clientOps(cfg Config, c int) int64 {
	n := int64(cfg.Clients)
	base := cfg.Ops / n
	if int64(c) < cfg.Ops%n {
		base++
	}
	return base
}

// ClientReqs generates client c's full request sequence. It is a pure
// function of (cfg, c): worker count, wall-clock time and the other
// clients never influence it, which is what makes runs reproducible and
// cross-cluster reference checks meaningful.
func ClientReqs(cfg Config, c int) []Req {
	rng := &splitmix64{s: uint64(cfg.Seed)*0x9E3779B97F4A7C15 + uint64(c+1)*0xD1B54A32D192ED03}
	lo, span := clientRange(cfg, c)
	if span == 0 {
		span = 1 // degenerate partition (more clients than keys)
	}
	var zf *zipfGen
	if cfg.Mix.Dist == "zipfian" {
		theta := cfg.Mix.Theta
		if theta <= 0 || theta >= 1 {
			theta = 0.99
		}
		zf = newZipf(span, theta)
	}
	nops := clientOps(cfg, c)
	var meanGap float64 // ns between this client's requests (open loop)
	if cfg.Rate > 0 {
		meanGap = float64(cfg.Clients) / cfg.Rate * 1e9
	}
	reqs := make([]Req, 0, nops)
	var at time.Duration
	for i := int64(0); i < nops; i++ {
		var rank uint64
		if zf != nil {
			rank = zf.next(rng)
		} else {
			rank = rng.next() % span
		}
		put := rng.float64() >= cfg.Mix.ReadFrac
		rq := Req{Put: put, Key: lo + rank}
		if put {
			rq.Val = ValOf(c, i)
		}
		if meanGap > 0 {
			// Poisson arrivals: exponential inter-arrival gaps.
			u := rng.float64()
			if u < 1e-12 {
				u = 1e-12
			}
			at += time.Duration(-math.Log(u) * meanGap)
			rq.At = at
		}
		reqs = append(reqs, rq)
	}
	return reqs
}

// ---- run ----

// Driver issues one operation against the service and returns the read
// value (gets) or the echoed value (puts). Implementations: the in-proc
// serve.Server, or a TCP frontend client. A Driver is used by one
// client goroutine at a time.
type Driver interface {
	Do(put bool, key, val uint64) (uint64, error)
}

// Result is the outcome of a load run.
type Result struct {
	Mix          Mix           `json:"mix"`
	Clients      int           `json:"clients"`
	Workers      int           `json:"workers"`
	TargetRate   float64       `json:"target_rate,omitempty"`
	Ops          int64         `json:"ops"`
	Gets         int64         `json:"gets"`
	Puts         int64         `json:"puts"`
	ElapsedNs    int64         `json:"elapsed_ns"`
	OpsPerSec    float64       `json:"ops_per_sec"`
	Latency      *hist.Summary `json:"latency"`
	Violations   int64         `json:"violations"`
	VerifiedKeys int64         `json:"verified_keys,omitempty"`
}

// clientState is one client's run-time state, owned by the worker the
// client is assigned to.
type clientState struct {
	id   int
	reqs []Req
	next int
	drv  Driver
	last map[uint64]uint64 // key -> last acknowledged put value (Verify)
}

// Run executes the configured load against drivers built by mk (one per
// client) and returns the aggregate result. The first driver error
// aborts the run. With cfg.Verify, Violations counts read-your-writes
// failures observed during the run and final-sweep mismatches; zero
// violations means no acknowledged write was lost.
func Run(cfg Config, mk func(client int) (Driver, error)) (*Result, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("loadgen: Clients = %d, want >= 1", cfg.Clients)
	}
	if cfg.Keys == 0 {
		return nil, fmt.Errorf("loadgen: Keys = 0")
	}
	if cfg.Verify && !cfg.Partition {
		return nil, fmt.Errorf("loadgen: Verify requires Partition (shared keys have no deterministic owner)")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = cfg.Clients
		if workers > 64 {
			workers = 64
		}
	}
	if workers > cfg.Clients {
		workers = cfg.Clients
	}

	clients := make([]*clientState, cfg.Clients)
	for c := range clients {
		drv, err := mk(c)
		if err != nil {
			return nil, fmt.Errorf("loadgen: driver for client %d: %w", c, err)
		}
		clients[c] = &clientState{id: c, reqs: ClientReqs(cfg, c), drv: drv}
		if cfg.Verify {
			clients[c].last = make(map[uint64]uint64)
		}
	}

	var (
		h          hist.Hist
		gets, puts atomic.Int64
		violations atomic.Int64
		abort      atomic.Bool
		errMu      sync.Mutex
		firstErr   error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abort.Store(true)
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		mine := make([]*clientState, 0, cfg.Clients/workers+1)
		for c := w; c < cfg.Clients; c += workers {
			mine = append(mine, clients[c])
		}
		wg.Add(1)
		go func(mine []*clientState) {
			defer wg.Done()
			if cfg.Rate > 0 {
				runOpen(cfg, mine, t0, &h, &gets, &puts, &violations, &abort, fail)
			} else {
				runClosed(cfg, mine, &h, &gets, &puts, &violations, &abort, fail)
			}
		}(mine)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	res := &Result{
		Mix:        cfg.Mix,
		Clients:    cfg.Clients,
		Workers:    workers,
		TargetRate: cfg.Rate,
		Gets:       gets.Load(),
		Puts:       puts.Load(),
		ElapsedNs:  elapsed.Nanoseconds(),
		Violations: violations.Load(),
	}
	res.Ops = res.Gets + res.Puts
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err == nil && cfg.Verify {
		// Final sweep: every acknowledged put must still read back, even
		// after crashes and rollbacks mid-run.
		var verified int64
		for _, cs := range clients {
			keys := make([]uint64, 0, len(cs.last))
			for k := range cs.last {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, k := range keys {
				got, gerr := cs.drv.Do(false, k, 0)
				if gerr != nil {
					err = fmt.Errorf("loadgen: verify sweep, client %d key %d: %w", cs.id, k, gerr)
					break
				}
				if got != cs.last[k] {
					violations.Add(1)
				}
				verified++
			}
			if err != nil {
				break
			}
		}
		res.VerifiedKeys = verified
		res.Violations = violations.Load()
	}
	res.Latency = h.Summarize()
	return res, err
}

// runClosed issues each client's requests back-to-back, interleaving
// the worker's clients round-robin so they progress together. Latency
// is the operation's own duration.
func runClosed(cfg Config, mine []*clientState, h *hist.Hist,
	gets, puts, violations *atomic.Int64, abort *atomic.Bool, fail func(error)) {
	active := len(mine)
	for active > 0 && !abort.Load() {
		active = 0
		for _, cs := range mine {
			if cs.next >= len(cs.reqs) {
				continue
			}
			if abort.Load() {
				return
			}
			rq := cs.reqs[cs.next]
			start := time.Now()
			if !doOne(cs, rq, gets, puts, violations, fail) {
				return
			}
			h.Record(time.Since(start).Nanoseconds())
			cs.next++
			if cs.next < len(cs.reqs) {
				active++
			}
		}
	}
}

// openHeap orders the worker's clients by their next request's
// scheduled time.
type openHeap []*clientState

func (o openHeap) Len() int { return len(o) }
func (o openHeap) Less(i, j int) bool {
	return o[i].reqs[o[i].next].At < o[j].reqs[o[j].next].At
}
func (o openHeap) Swap(i, j int)      { o[i], o[j] = o[j], o[i] }
func (o *openHeap) Push(x any)        { *o = append(*o, x.(*clientState)) }
func (o *openHeap) Pop() any          { old := *o; n := len(old); x := old[n-1]; *o = old[:n-1]; return x }

// runOpen issues requests on their open-loop schedule: the earliest
// scheduled client goes next, the worker sleeps until its slot, and
// latency is measured from the scheduled start — an operation delayed
// because the server (or a busy predecessor on the same client) fell
// behind is charged its full queueing delay.
func runOpen(cfg Config, mine []*clientState, t0 time.Time, h *hist.Hist,
	gets, puts, violations *atomic.Int64, abort *atomic.Bool, fail func(error)) {
	hp := make(openHeap, 0, len(mine))
	for _, cs := range mine {
		if len(cs.reqs) > 0 {
			hp = append(hp, cs)
		}
	}
	heap.Init(&hp)
	for hp.Len() > 0 && !abort.Load() {
		cs := hp[0]
		rq := cs.reqs[cs.next]
		if wait := time.Until(t0.Add(rq.At)); wait > 0 {
			time.Sleep(wait)
		}
		if abort.Load() {
			return
		}
		if !doOne(cs, rq, gets, puts, violations, fail) {
			return
		}
		h.Record(time.Since(t0.Add(rq.At)).Nanoseconds())
		cs.next++
		if cs.next >= len(cs.reqs) {
			heap.Pop(&hp)
		} else {
			heap.Fix(&hp, 0)
		}
	}
}

// doOne issues one request and applies the verify bookkeeping; false
// means the run is aborting on a driver error.
func doOne(cs *clientState, rq Req, gets, puts, violations *atomic.Int64, fail func(error)) bool {
	got, err := cs.drv.Do(rq.Put, rq.Key, rq.Val)
	if err != nil {
		fail(fmt.Errorf("loadgen: client %d op %d: %w", cs.id, cs.next, err))
		return false
	}
	if rq.Put {
		puts.Add(1)
		if cs.last != nil {
			cs.last[rq.Key] = rq.Val
		}
	} else {
		gets.Add(1)
		if cs.last != nil {
			want, wrote := cs.last[rq.Key]
			if (wrote && got != want) || (!wrote && got != 0) {
				violations.Add(1)
			}
		}
	}
	return true
}
