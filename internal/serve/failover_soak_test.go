package serve_test

import (
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live"
	"lrcdsm/internal/live/chaos"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/serve"
	"lrcdsm/internal/serve/loadgen"
)

// TestServeFailoverSoak is the control-plane availability claim: the
// victim is node 0 itself — manager, barrier root, bootstrap leader of
// the replicated manager quorum — killed while durable serving traffic
// is in flight. The surviving replicas elect a new leader, roll back to
// the stable checkpoint committed on the replicated log, and the
// group-commit ack rule keeps its promise across the failover: zero
// acknowledged writes lost, final image byte-equal to a fault-free
// 1-node reference.
func TestServeFailoverSoak(t *testing.T) {
	const nodes = 3
	scfg := serve.Config{
		Keys: 1 << 9, KeysPerPage: 64, Shards: 12,
		Durable: true, QueueDepth: 256,
	}
	lcfg := loadgen.Config{
		Clients: 6, Workers: 6, Keys: 1 << 9, Ops: 900, Seed: 4321,
		Mix:       loadgen.Mix{Name: "update-uniform", ReadFrac: 0.5, Dist: "uniform"},
		Partition: true, Verify: true,
	}

	fcfg := chaos.Config{
		Seed: 43,
		Crashes: []chaos.Crash{
			{Node: 0, AtOp: 400, Local: true, RestartAfter: 5 * time.Millisecond},
		},
	}
	var cl *live.Cluster
	fcfg.OnCrash = func(n int, d time.Duration) { cl.Kill(n, d) }
	nw := chaos.WrapNet(transport.NewInprocNet(nodes), fcfg)

	cl, err := live.New(live.Config{
		Nodes: nodes, Protocol: core.LH, RPCTimeout: 60 * time.Second,
		RetryBase: 10 * time.Millisecond, RetryMax: 100 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: 2 * time.Second,
		Net: nw,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := serve.NewStore(cl, scfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(st)
	type out struct {
		stats *live.Stats
		err   error
	}
	done := make(chan out, 1)
	go func() {
		stats, rerr := cl.RunSupervised(srv.NodeWorker, live.RecoverOptions{
			MaxRestarts: 3, CheckpointEvery: 1, Replicate: true, Seed: 9,
		})
		done <- out{stats, rerr}
	}()
	res, lerr := loadgen.Run(lcfg, func(int) (loadgen.Driver, error) { return srv, nil })
	srv.Shutdown()
	o := <-done
	if lerr != nil {
		t.Fatalf("load: %v (faults %+v)", lerr, nw.Counters())
	}
	if o.err != nil {
		t.Fatalf("cluster: %v (faults %+v)", o.err, nw.Counters())
	}
	if res.Violations != 0 {
		t.Fatalf("%d acknowledged writes lost across the coordinator failover", res.Violations)
	}
	if c := nw.Counters().Crashes; c == 0 {
		t.Fatal("crash schedule fired no kills — the soak exercised nothing")
	}
	if o.stats.Restarts == 0 {
		t.Error("kill fired but the supervisor recorded no restarts")
	}
	if o.stats.Total.ConsensusElections == 0 {
		t.Error("coordinator died but no replica recorded an election")
	}
	if o.stats.Total.ConsensusCommits == 0 {
		t.Error("replicated manager recorded no committed commands")
	}
	t.Logf("failover: terms=%d elections=%d commits=%d redirects=%d restarts=%d",
		o.stats.Total.ConsensusTerms, o.stats.Total.ConsensusElections,
		o.stats.Total.ConsensusCommits, o.stats.Total.LeaderRedirects, o.stats.Restarts)

	ref := runServe(t, 1, nil, serve.Config{
		Keys: scfg.Keys, KeysPerPage: scfg.KeysPerPage, Shards: scfg.Shards,
		QueueDepth: scfg.QueueDepth,
	}, lcfg, nil)
	compareKeys(t, scfg, &serveRun{cl: cl, res: res, stats: o.stats}, ref, lcfg.Keys)
}
