package serve_test

import (
	"os"
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live"
	"lrcdsm/internal/live/consensus"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/serve"
	"lrcdsm/internal/serve/loadgen"
)

// TestEnduranceServe is the serving half of the long-haul soak: a
// durable 4-node serving cluster absorbs repeated coordinator kills in
// the middle of an open-loop load, and every acknowledged write must
// still be present — byte-identical to a fault-free 1-node reference —
// while the replicated consensus log stays bounded by compaction.
// Opt-in via DSM_ENDURANCE=1, like TestEndurance in internal/live;
// `make endurance` runs both.
func TestEnduranceServe(t *testing.T) {
	if os.Getenv("DSM_ENDURANCE") == "" {
		t.Skip("set DSM_ENDURANCE=1 to run the long-haul soak")
	}
	const compactEvery = 8
	scfg := testServeCfg()
	scfg.Durable = true
	lcfg := testLoadCfg(loadgen.Mix{Name: "update-uniform", ReadFrac: 0.5, Dist: "uniform"})
	lcfg.Ops = 1200
	lcfg.Clients = 4

	nodes := 4
	stables := make([]*consensus.Stable, nodes)
	for i := range stables {
		stables[i] = consensus.NewStable()
	}
	cl, err := live.New(live.Config{
		Nodes: nodes, Protocol: core.LH, RPCTimeout: 60 * time.Second,
		Net: transport.NewInprocNet(nodes),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := serve.NewStore(cl, scfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(st)

	type out struct {
		stats *live.Stats
		err   error
	}
	done := make(chan out, 1)
	go func() {
		stats, rerr := cl.RunSupervised(srv.NodeWorker, live.RecoverOptions{
			MaxRestarts: 4, CheckpointEvery: 1, Replicate: true, Seed: 7,
			Stables: stables, CompactEvery: compactEvery,
		})
		done <- out{stats, rerr}
	}()

	// Kill the coordinator three times while the load is in flight,
	// and sample the replicas' durable log length throughout.
	stopKill := make(chan struct{})
	killed := make(chan int, 1)
	go func() {
		kills, maxLog := 0, 0
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		next := time.After(200 * time.Millisecond)
		for {
			select {
			case <-tick.C:
				for _, s := range stables {
					if ll := s.LogLen(); ll > maxLog {
						maxLog = ll
					}
				}
			case <-next:
				if kills < 3 {
					cl.Kill(0, 5*time.Millisecond)
					kills++
					next = time.After(300 * time.Millisecond)
				}
			case <-stopKill:
				if maxLog > 2*compactEvery {
					t.Errorf("consensus log reached %d entries, bound is %d (2x compaction threshold)",
						maxLog, 2*compactEvery)
				}
				killed <- kills
				return
			}
		}
	}()

	res, lerr := loadgen.Run(lcfg, func(int) (loadgen.Driver, error) { return srv, nil })
	close(stopKill)
	kills := <-killed
	srv.Shutdown()
	o := <-done
	if lerr != nil {
		t.Fatalf("load: %v", lerr)
	}
	if o.err != nil {
		t.Fatalf("cluster (after %d kills): %v", kills, o.err)
	}
	if res.Violations != 0 {
		t.Fatalf("%d read-your-writes violations under kills", res.Violations)
	}
	if kills == 0 {
		t.Fatal("the load finished before a single coordinator kill fired")
	}
	if o.stats.Total.CheckpointsTaken == 0 {
		t.Error("durable run took no checkpoints")
	}
	if o.stats.Total.ConsensusCompactions == 0 {
		t.Error("no replica compacted the consensus log")
	}

	ref := runServe(t, 1, nil, testServeCfg(), lcfg, nil)
	gotRun := &serveRun{cl: cl, res: res, stats: o.stats}
	compareKeys(t, scfg, gotRun, ref, lcfg.Keys)
	t.Logf("served %d ops across %d coordinator kills (%d checkpoints, %d compactions)",
		res.Ops, kills, o.stats.Total.CheckpointsTaken, o.stats.Total.ConsensusCompactions)
}
